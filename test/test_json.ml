(* Tests for the JSON encoder/parser and the analysis/schedule encoders. *)

open Helpers

let j = Rtfmt.Json.parse
let s = Rtfmt.Json.to_string

let print_parse_roundtrip () =
  let value =
    Rtfmt.Json.(
      Obj
        [
          ("name", Str "T1");
          ("count", Int (-3));
          ("flag", Bool true);
          ("nothing", Null);
          ("items", List [ Int 1; Int 2; Str "x" ]);
          ("empty_list", List []);
          ("empty_obj", Obj []);
        ])
  in
  check_string "roundtrip" (s value) (s (j (s value)));
  check_string "compact roundtrip" (s value)
    (s (j (s ~indent:false value)))

let escaping () =
  let tricky = "quote\" backslash\\ newline\n tab\t" in
  match j (s (Rtfmt.Json.Str tricky)) with
  | Rtfmt.Json.Str back -> check_string "escapes survive" tricky back
  | _ -> Alcotest.fail "expected string"

let unicode_escapes () =
  let str text =
    match j text with
    | Rtfmt.Json.Str back -> back
    | _ -> Alcotest.fail ("expected string from " ^ text)
  in
  (* \uXXXX beyond ASCII decodes to UTF-8 (pre-fix: every such escape
     collapsed to "?"). *)
  check_string "2-byte sequence" "caf\xc3\xa9" (str {|"caf\u00e9"|});
  check_string "3-byte sequence" "\xe4\xb8\xad" (str {|"\u4e2d"|});
  check_string "surrogate pair is one astral code point" "\xf0\x9f\x98\x80"
    (str {|"\ud83d\ude00"|});
  check_string "ASCII escapes unchanged" "A" (str {|"\u0041"|});
  (* decoded non-ASCII survives a write/parse round trip: the writer
     passes UTF-8 bytes through verbatim *)
  check_string "unicode round trip" "caf\xc3\xa9 \xf0\x9f\x98\x80"
    (str (s (Rtfmt.Json.Str (str {|"caf\u00e9 \ud83d\ude00"|}))));
  let bad text =
    match j text with
    | exception Rtfmt.Json.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ text)
  in
  bad {|"\ud83d"|};
  (* lone high surrogate *)
  bad {|"\ude00"|};
  (* lone low surrogate *)
  bad {|"\ud83dA"|};
  (* high surrogate not followed by a low one *)
  bad {|"\ud83dx"|};
  bad {|"\u00g1"|};
  bad {|"\u12"|}

let parse_errors () =
  let bad text =
    match j text with
    | exception Rtfmt.Json.Parse_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ text)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "1.5";
  (* floats are rejected: everything here is integral *)
  bad "[1] trailing"

let member_access () =
  let v = j "{\"a\": 1, \"b\": [true]}" in
  (match Rtfmt.Json.member "a" v with
  | Rtfmt.Json.Int 1 -> ()
  | _ -> Alcotest.fail "member a");
  match Rtfmt.Json.member "missing" v with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let analysis_encoding () =
  let a = Rtlb.Analysis.run Rtlb.Paper_example.shared Rtlb.Paper_example.app in
  let v = Rtfmt.Json.of_analysis a in
  (* The encoding parses back and carries the headline facts. *)
  let v = j (s v) in
  (match Rtfmt.Json.member "tasks" v with
  | Rtfmt.Json.Int 15 -> ()
  | _ -> Alcotest.fail "tasks");
  (match Rtfmt.Json.member "feasible_windows" v with
  | Rtfmt.Json.Bool true -> ()
  | _ -> Alcotest.fail "feasible");
  (match Rtfmt.Json.member "bounds" v with
  | Rtfmt.Json.List bounds ->
      check_int "three bounds" 3 (List.length bounds);
      List.iter
        (fun b ->
          match
            (Rtfmt.Json.member "resource" b, Rtfmt.Json.member "lb" b)
          with
          | Rtfmt.Json.Str r, Rtfmt.Json.Int lb ->
              check_int ("lb " ^ r) (Rtlb.Analysis.bound_for a r) lb
          | _ -> Alcotest.fail "bound shape")
        bounds
  | _ -> Alcotest.fail "bounds");
  match Rtfmt.Json.member "cost" v with
  | Rtfmt.Json.Obj _ as cost -> (
      match Rtfmt.Json.member "model" cost with
      | Rtfmt.Json.Str "shared" -> ()
      | _ -> Alcotest.fail "cost model")
  | _ -> Alcotest.fail "cost"

let schedule_encoding () =
  let app = Rtlb.Paper_example.app in
  let platform =
    Sched.Platform.shared ~procs:[ ("P1", 3); ("P2", 2) ] ~resources:[ ("r1", 2) ]
  in
  match Sched.List_scheduler.run app platform with
  | Error _ -> Alcotest.fail "setup"
  | Ok schedule -> (
      match j (s (Rtfmt.Json.of_schedule app schedule)) with
      | Rtfmt.Json.List entries ->
          check_int "all tasks present" 15 (List.length entries);
          List.iter
            (fun e ->
              match
                (Rtfmt.Json.member "start" e, Rtfmt.Json.member "finish" e)
              with
              | Rtfmt.Json.Int st, Rtfmt.Json.Int fi ->
                  check_bool "start <= finish" true (st <= fi)
              | _ -> Alcotest.fail "entry shape")
            entries
      | _ -> Alcotest.fail "expected list")

let prop_tests =
  [
    qtest ~count:200 "print/parse roundtrips analysis JSON"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let a = Rtlb.Analysis.run (shared_of i) i.app in
        let v = Rtfmt.Json.of_analysis a in
        s v = s (j (s v)));
  ]

let stencil_shape () =
  let cfg =
    { Workload.Gen.default with Workload.Gen.shape = Workload.Gen.Stencil { rows = 3; cols = 4 } }
  in
  let app = Workload.Gen.generate cfg in
  let g = Rtlb.App.graph app in
  check_int "tasks" 12 (Rtlb.App.n_tasks app);
  (* edges: down 2*4, right 3*3 *)
  check_int "edges" 17 (Dag.n_edges g);
  check_int_list "single source" [ 0 ] (Dag.sources g);
  check_int_list "single sink" [ 11 ] (Dag.sinks g);
  (* wavefront critical path = rows + cols - 1 cells *)
  let unit_app =
    Rtlb.App.make
      ~tasks:
        (Array.to_list (Rtlb.App.tasks app)
        |> List.map (fun (t : Rtlb.Task.t) ->
               Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:1 ~deadline:1000
                 ~proc:"P" ()))
      ~edges:
        (Dag.fold_edges g ~init:[] ~f:(fun acc ~src ~dst _ ->
             (src, dst, 0) :: acc))
  in
  check_int "wavefront depth" 6 (Rtlb.App.critical_time unit_app)

let preemptive_gantt () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:4 ~deadline:10 ~proc:"P" ~preemptive:true ();
          Rtlb.Task.make ~id:1 ~compute:3 ~deadline:5 ~proc:"P" ~preemptive:true ();
        ]
      ~edges:[]
  in
  match Sched.Preemptive.run app ~procs:[ ("P", 1) ] with
  | Error _ -> Alcotest.fail "expected feasible"
  | Ok schedule ->
      let out = Sched.Gantt.render_preemptive app ~procs:[ ("P", 1) ] schedule in
      check_bool "row label" true (string_contains ~needle:"P#0" out);
      check_bool "task drawn" true (string_contains ~needle:"T2" out)

let suite =
  [
    ( "json-and-misc",
      [
        Alcotest.test_case "print/parse roundtrip" `Quick print_parse_roundtrip;
        Alcotest.test_case "escaping" `Quick escaping;
        Alcotest.test_case "unicode escapes" `Quick unicode_escapes;
        Alcotest.test_case "parse errors" `Quick parse_errors;
        Alcotest.test_case "member access" `Quick member_access;
        Alcotest.test_case "analysis encoding" `Quick analysis_encoding;
        Alcotest.test_case "schedule encoding" `Quick schedule_encoding;
        Alcotest.test_case "stencil workload" `Quick stencil_shape;
        Alcotest.test_case "preemptive gantt" `Quick preemptive_gantt;
      ]
      @ prop_tests );
  ]
