(* Tests for the designer-facing extensions: Gantt charts, demand
   profiles, sensitivity sweeps, completion-time bounds, the preemptive
   EDF scheduler, and the candidate-point policy ablation. *)

open Helpers

let paper = Rtlb.Paper_example.app
let windows = Rtlb.Est_lct.compute Rtlb.Paper_example.shared paper
let est = windows.Rtlb.Est_lct.est
let lct = windows.Rtlb.Est_lct.lct

(* ---------------- Gantt ---------------- *)

let gantt_renders () =
  let platform =
    Sched.Platform.shared ~procs:[ ("P1", 3); ("P2", 2) ] ~resources:[ ("r1", 2) ]
  in
  match Sched.List_scheduler.run paper platform with
  | Error _ -> Alcotest.fail "setup"
  | Ok s ->
      let out = Sched.Gantt.render ~show_resources:true paper platform s in
      List.iter
        (fun needle ->
          check_bool ("gantt mentions " ^ needle) true
            (string_contains ~needle out))
        [ "P1#0"; "P1#2"; "P2#1"; "r1#1"; "T15"; "|" ];
      (* every task name appears somewhere *)
      Array.iter
        (fun (t : Rtlb.Task.t) ->
          if t.Rtlb.Task.compute > 0 then
            check_bool (t.Rtlb.Task.name ^ " drawn") true
              (string_contains ~needle:t.Rtlb.Task.name out))
        (Rtlb.App.tasks paper)

let gantt_scales () =
  let tasks =
    [ Rtlb.Task.make ~id:0 ~compute:500 ~deadline:1000 ~proc:"P" () ]
  in
  let app = Rtlb.App.make ~tasks ~edges:[] in
  let platform = Sched.Platform.shared ~procs:[ ("P", 1) ] ~resources:[] in
  match Sched.List_scheduler.run app platform with
  | Error _ -> Alcotest.fail "setup"
  | Ok s ->
      let out = Sched.Gantt.render ~width:50 app platform s in
      check_bool "scaling note present" true
        (string_contains ~needle:"time units)" out)

(* ---------------- Demand profiles ---------------- *)

let demand_profile () =
  let profile = Rtlb.Demand.sliding ~est ~lct paper ~resource:"P1" ~window:3 in
  check_string "resource" "P1" profile.Rtlb.Demand.d_resource;
  (match profile.Rtlb.Demand.d_peak with
  | None -> Alcotest.fail "expected a peak"
  | Some p ->
      (* [3,6] carries demand 9 -> 3 units, the Step 3 maximum *)
      check_int "peak units" 3 p.Rtlb.Demand.d_units);
  (* the sliding profile is part of the render *)
  let text = Rtlb.Demand.render profile in
  check_bool "render has bars" true (string_contains ~needle:"###" text)

let demand_peak_matches_bound () =
  List.iter
    (fun r ->
      let b = Rtlb.Lower_bound.for_resource ~est ~lct paper r in
      match Rtlb.Demand.peak_over_all_windows ~est ~lct paper ~resource:r with
      | None -> Alcotest.fail "expected peak"
      | Some p ->
          check_int ("peak = LB for " ^ r) b.Rtlb.Lower_bound.lb
            p.Rtlb.Demand.d_units)
    [ "P1"; "P2"; "r1" ]

let demand_errors () =
  match Rtlb.Demand.sliding ~est ~lct paper ~resource:"P1" ~window:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---------------- Sensitivity ---------------- *)

let sensitivity_on_example () =
  let samples =
    Rtlb.Sensitivity.deadline_sweep Rtlb.Paper_example.shared paper
      ~factors:[ 1.0; 2.0; 4.0 ]
  in
  check_int "three samples" 3 (List.length samples);
  let at f =
    List.find (fun s -> s.Rtlb.Sensitivity.s_factor = f) samples
  in
  check_bool "baseline feasible" true (at 1.0).Rtlb.Sensitivity.s_feasible;
  Alcotest.(check (list (pair string int)))
    "baseline bounds are the Step 3 bounds"
    Rtlb.Paper_example.expected_bounds
    (at 1.0).Rtlb.Sensitivity.s_bounds;
  (* relaxing deadlines can only lower the cost bound *)
  let cost f =
    Option.value ~default:max_int (at f).Rtlb.Sensitivity.s_shared_cost
  in
  check_bool "cost monotone 1->2" true (cost 2.0 <= cost 1.0);
  check_bool "cost monotone 2->4" true (cost 4.0 <= cost 2.0);
  let text = Rtlb.Sensitivity.render samples in
  check_bool "render lists resources" true (string_contains ~needle:"LB_P1" text)

let sensitivity_detects_infeasible () =
  let samples =
    Rtlb.Sensitivity.deadline_sweep Rtlb.Paper_example.shared paper
      ~factors:[ 0.5 ]
  in
  match samples with
  | [ s ] -> check_bool "half deadlines infeasible" false s.Rtlb.Sensitivity.s_feasible
  | _ -> Alcotest.fail "one sample expected"

let scale_exact_rational () =
  let one_task deadline =
    Rtlb.App.make
      ~tasks:[ Rtlb.Task.make ~id:0 ~compute:0 ~deadline ~proc:"P" () ]
      ~edges:[]
  in
  let scaled factor deadline =
    let app = Rtlb.Sensitivity.scale_deadlines (one_task deadline) ~factor in
    (Rtlb.App.task app 0).Rtlb.Task.deadline
  in
  (* the motivating bug: 0.1 * 30 must be exactly 3, not ceil(3.0000...4)
     = 4 *)
  check_int "0.1 * 30 = 3" 3 (scaled 0.1 30);
  (* the scaled deadline is ceil(n*d / den) for every factor n/den on a
     grid of deadlines, with no float round-off creeping in *)
  let grid =
    [
      (1, 10); (3, 10); (2, 3); (4, 5); (9, 10); (1, 1); (11, 10); (5, 4);
      (3, 2); (137, 100); (2, 1);
    ]
  in
  List.iter
    (fun (num, den) ->
      let factor = float_of_int num /. float_of_int den in
      for d = 1 to 60 do
        let expected = ((num * d) + den - 1) / den in
        check_int
          (Printf.sprintf "%d/%d * %d" num den d)
          expected
          (scaled factor d)
      done)
    grid

let scale_floors_at_window () =
  let app = Rtlb.Sensitivity.scale_deadlines paper ~factor:0.01 in
  Array.iter
    (fun (t : Rtlb.Task.t) ->
      check_bool "deadline >= release + compute" true
        (t.Rtlb.Task.deadline >= t.Rtlb.Task.release + t.Rtlb.Task.compute))
    (Rtlb.App.tasks app)

(* ---------------- Time bounds ---------------- *)

let timebound_single_processor () =
  (* Two independent C=4 tasks on one processor: cannot finish before 8;
     on two processors: 4. *)
  let app =
    Rtlb.App.make
      ~tasks:
        (List.init 2 (fun id ->
             Rtlb.Task.make ~id ~compute:4 ~deadline:100 ~proc:"P" ()))
      ~edges:[]
  in
  let system = Rtlb.System.shared ~costs:[ ("P", 1) ] in
  let bound caps =
    match
      Rtlb.Time_bound.minimum_completion_time system app
        ~capacity:(fun _ -> caps)
    with
    | Some tb -> tb.Rtlb.Time_bound.tb_omega
    | None -> -1
  in
  check_int "one processor" 8 (bound 1);
  check_int "two processors" 4 (bound 2)

let timebound_on_example () =
  let system = Rtlb.Paper_example.shared in
  let capacity = function "P1" -> 3 | "P2" -> 2 | "r1" -> 2 | _ -> 0 in
  match Rtlb.Time_bound.minimum_completion_time system paper ~capacity with
  | None -> Alcotest.fail "expected a bound"
  | Some tb ->
      (* The paper's deadlines (36) admit a feasible schedule on this
         platform, so the time bound cannot exceed 36. *)
      check_bool "omega <= 36" true (tb.Rtlb.Time_bound.tb_omega <= 36);
      check_bool "omega >= longest chain" true (tb.Rtlb.Time_bound.tb_omega >= 22);
      (* all bounds fit the capacity at omega *)
      List.iter
        (fun (r, lb) ->
          check_bool ("fits " ^ r) true (lb <= capacity r))
        tb.Rtlb.Time_bound.tb_bounds

let timebound_zero_capacity () =
  let system = Rtlb.Paper_example.shared in
  check_bool "zero capacity rejected" true
    (Rtlb.Time_bound.minimum_completion_time system paper ~capacity:(fun _ -> 0)
    = None)

(* ---------------- Preemptive EDF ---------------- *)

let staggered outer_compute =
  Rtlb.App.make
    ~tasks:
      [
        Rtlb.Task.make ~id:0 ~compute:outer_compute ~deadline:12 ~proc:"P"
          ~preemptive:true ();
        Rtlb.Task.make ~id:1 ~compute:outer_compute ~deadline:12 ~proc:"P"
          ~preemptive:true ();
        Rtlb.Task.make ~id:2 ~compute:6 ~release:2 ~deadline:10 ~proc:"P"
          ~preemptive:true ();
      ]
    ~edges:[]

let preemptive_basic () =
  (* 2 outer [0,12] C7 + 1 inner [2,10] C6: EDF packs this on 2
     processors; 1 cannot hold the 20 units of work. *)
  let app = staggered 7 in
  check_bool "2 procs suffice preemptively" true
    (Sched.Preemptive.feasible app ~procs:[ ("P", 2) ]);
  check_bool "1 proc does not" false
    (Sched.Preemptive.feasible app ~procs:[ ("P", 1) ]);
  (* and the preemptive bound agrees *)
  let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
  check_int "LB_P preemptive" 2 (Rtlb.Analysis.bound_for a "P")

let edf_not_optimal_but_horn_is () =
  (* With C8 outers the set is still feasible on 2 processors (Horn's
     flow proves it; so does the Theorem 3 bound) but global EDF misses
     it — the classic multiprocessor-EDF non-optimality. *)
  let app = staggered 8 in
  check_bool "EDF misses the feasible set" false
    (Sched.Preemptive.feasible app ~procs:[ ("P", 2) ]);
  let jobs = Sched.Horn.of_app app in
  check_bool "Horn: feasible on 2" true (Sched.Horn.feasible ~jobs ~m:2);
  check_bool "Horn: infeasible on 1" false (Sched.Horn.feasible ~jobs ~m:1);
  check_int "Horn minimum" 2 (Sched.Horn.min_processors ~jobs);
  check_int "Theorem 3 bound matches" 2 (Sched.Horn.density_bound ~jobs)

let preemptive_respects_precedence () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:3 ~deadline:20 ~proc:"P" ~preemptive:true ();
          Rtlb.Task.make ~id:1 ~compute:4 ~deadline:20 ~proc:"P" ~preemptive:true ();
        ]
      ~edges:[ (0, 1, 5) ]
  in
  match Sched.Preemptive.run app ~procs:[ ("P", 2) ] with
  | Error _ -> Alcotest.fail "expected feasible"
  | Ok s ->
      (match Sched.Preemptive.check app ~procs:[ ("P", 2) ] s with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es));
      (* successor starts only after message: 3 + 5 = 8 *)
      (match s.(1) with
      | first :: _ -> check_int "message delay honoured" 8 first.Sched.Preemptive.p_start
      | [] -> Alcotest.fail "no slices")

let preemptive_rejects_resources () =
  let app =
    Rtlb.App.make
      ~tasks:
        [ Rtlb.Task.make ~id:0 ~compute:1 ~deadline:5 ~proc:"P" ~resources:[ "r" ] () ]
      ~edges:[]
  in
  match Sched.Preemptive.run app ~procs:[ ("P", 1) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let preemptive_nonpreemptive_tasks_run_whole () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:6 ~deadline:20 ~proc:"P" ();
          Rtlb.Task.make ~id:1 ~compute:2 ~deadline:7 ~proc:"P" ();
        ]
      ~edges:[]
  in
  (* EDF prefers task 1 (deadline 7); task 0, once started, must not be
     split around it. *)
  match Sched.Preemptive.run app ~procs:[ ("P", 1) ] with
  | Error _ -> Alcotest.fail "expected feasible"
  | Ok s ->
      check_int "task 0 in one slice" 1 (List.length s.(0));
      match Sched.Preemptive.check app ~procs:[ ("P", 1) ] s with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es)

(* ---------------- Candidate-point policies ---------------- *)

let enriched_points_superset () =
  let compute =
    Array.init (Rtlb.App.n_tasks paper) (fun i ->
        (Rtlb.App.task paper i).Rtlb.Task.compute)
  in
  let tasks = Rtlb.App.tasks_using paper "P1" in
  let basic = Rtlb.Lower_bound.candidate_points ~est ~lct tasks ~lo:0 ~hi:36 in
  let rich =
    Rtlb.Lower_bound.candidate_points ~policy:`Enriched ~est ~lct ~compute
      tasks ~lo:0 ~hi:36
  in
  check_bool "superset" true (List.for_all (fun p -> List.mem p rich) basic);
  check_bool "strictly more points" true (List.length rich > List.length basic)

(* ---------------- Properties ---------------- *)

let prop_tests =
  [
    qtest ~count:100 "enriched points never lower a bound"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
        List.for_all
          (fun r ->
            let basic = Rtlb.Lower_bound.for_resource ~est ~lct i.app r in
            let rich =
              Rtlb.Lower_bound.for_resource ~policy:`Enriched ~est ~lct i.app r
            in
            rich.Rtlb.Lower_bound.lb >= basic.Rtlb.Lower_bound.lb)
          (Rtlb.App.resource_set i.app));
    qtest ~count:60 "preemptive EDF schedules always pass their checker"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        (* strip resources and force preemptive tasks *)
        let app =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:t.Rtlb.Task.compute
                       ~release:t.Rtlb.Task.release ~deadline:t.Rtlb.Task.deadline
                       ~proc:t.Rtlb.Task.proc ~preemptive:true ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst m -> (src, dst, m) :: acc))
        in
        let procs =
          Array.to_list (Rtlb.App.tasks app)
          |> List.map (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.proc)
          |> List.sort_uniq String.compare
          |> List.map (fun p -> (p, Rtlb.App.n_tasks app))
        in
        match Sched.Preemptive.run app ~procs with
        | Error _ -> true
        | Ok s -> Sched.Preemptive.check app ~procs s = Ok ());
    qtest ~count:40 "preemptive bound sound against preemptive EDF"
      (arb_instance ~max_tasks:8 ()) (fun i ->
        (* if EDF schedules on k processors of the (single) type, then
           LB <= k *)
        let app =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:t.Rtlb.Task.compute
                       ~release:t.Rtlb.Task.release ~deadline:t.Rtlb.Task.deadline
                       ~proc:"P" ~preemptive:true ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst m -> (src, dst, m) :: acc))
        in
        let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
        let lb = Rtlb.Analysis.bound_for a "P" in
        let rec min_k k =
          if k > Rtlb.App.n_tasks app then None
          else if Sched.Preemptive.feasible app ~procs:[ ("P", k) ] then Some k
          else min_k (k + 1)
        in
        match min_k 1 with None -> true | Some k -> lb <= k);
    qtest ~count:60 "time bound consistent: passes omega, fails omega-1"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        (* capacity = the analysis bounds themselves: a platform that the
           bounds allow *)
        let capacity r =
          match
            List.find_opt
              (fun (b : Rtlb.Lower_bound.bound) ->
                String.equal b.Rtlb.Lower_bound.resource r)
              a.Rtlb.Analysis.bounds
          with
          | Some b -> max 1 b.Rtlb.Lower_bound.lb
          | None -> 1
        in
        match Rtlb.Time_bound.minimum_completion_time system i.app ~capacity with
        | None -> false
        | Some tb ->
            (* omega never beats the obvious floor, and the horizon the
               deadlines allow must be >= it when bounds fit *)
            let floor_ =
              Array.fold_left
                (fun acc (t : Rtlb.Task.t) ->
                  max acc (t.Rtlb.Task.release + t.Rtlb.Task.compute))
                1 (Rtlb.App.tasks i.app)
            in
            tb.Rtlb.Time_bound.tb_omega >= floor_
            && tb.Rtlb.Time_bound.tb_omega <= Rtlb.App.horizon i.app);
  ]

let suite =
  [
    ( "extensions",
      [
        Alcotest.test_case "gantt renders the example" `Quick gantt_renders;
        Alcotest.test_case "gantt scales long horizons" `Quick gantt_scales;
        Alcotest.test_case "demand profile" `Quick demand_profile;
        Alcotest.test_case "demand peak = LB" `Quick demand_peak_matches_bound;
        Alcotest.test_case "demand errors" `Quick demand_errors;
        Alcotest.test_case "sensitivity sweep" `Quick sensitivity_on_example;
        Alcotest.test_case "sensitivity infeasible" `Quick
          sensitivity_detects_infeasible;
        Alcotest.test_case "deadline scaling is exact-rational" `Quick
          scale_exact_rational;
        Alcotest.test_case "deadline scaling floors" `Quick scale_floors_at_window;
        Alcotest.test_case "time bound: single pool" `Quick
          timebound_single_processor;
        Alcotest.test_case "time bound: paper example" `Quick timebound_on_example;
        Alcotest.test_case "time bound: zero capacity" `Quick
          timebound_zero_capacity;
        Alcotest.test_case "preemptive EDF: staggered family" `Quick
          preemptive_basic;
        Alcotest.test_case "preemptive EDF: precedence" `Quick
          preemptive_respects_precedence;
        Alcotest.test_case "preemptive EDF: resources rejected" `Quick
          preemptive_rejects_resources;
        Alcotest.test_case "preemptive EDF: non-preemptive run whole" `Quick
          preemptive_nonpreemptive_tasks_run_whole;
        Alcotest.test_case "enriched candidate points" `Quick
          enriched_points_superset;
      ]
      @ prop_tests );
  ]
