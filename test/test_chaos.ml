(* Chaos and robustness suite: the Supervisor retry/heal/degrade ladder
   under seeded fault plans, checkpoint round-trips and staleness, the
   kill-at-checkpoint -> resume bit-identity property, atomic writes
   under injected failures, and the RTLB_CHAOS plan syntax.

   Every test arms its own plan and disarms in a Fun.protect finaliser,
   so plans never leak across tests (disarm also resets the
   Pool.For_testing hooks). *)

open Helpers
module Pool = Rtlb_par.Pool
module Chaos = Rtlb_par.Chaos
module Supervisor = Rtlb_par.Supervisor
module Tracer = Rtlb_obs.Tracer

let test_jobs = max 4 (Pool.default_jobs ())
let paper = Rtlb.Paper_example.app

let with_chaos plan f =
  Chaos.arm plan;
  Fun.protect ~finally:Chaos.disarm f

(* Small backoffs so retry rounds don't busy-wait for milliseconds. *)
let fast_policy =
  {
    Supervisor.default_policy with
    Supervisor.backoff_ns = 1_000L;
    max_backoff_ns = 4_000L;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rm path = try Sys.remove path with Sys_error _ -> ()

let with_temp_file f =
  let path = Filename.temp_file "rtlb_chaos" ".json" in
  rm path;
  (* tests exercise the fresh-run (no file) path first *)
  Fun.protect ~finally:(fun () -> rm path) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

let none_count out =
  Array.fold_left (fun a -> function None -> a + 1 | Some _ -> a) 0 out

let supervisor_identity () =
  let input = Array.init 300 Fun.id in
  let want = Array.map (fun i -> Some ((i * i) + 1)) input in
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let results, o =
        Supervisor.supervise ~pool (fun i -> (i * i) + 1) input
      in
      check_bool "fault-free run is `Complete" true
        (o.Supervisor.o_status = `Complete);
      check_bool "fault-free run at Full level" true
        (o.Supervisor.o_level = Supervisor.Full);
      check_int "no retries" 0 o.Supervisor.o_retries;
      check_int "no restarts" 0 o.Supervisor.o_restarts;
      check_int "no drops" 0 o.Supervisor.o_dropped;
      check_bool "bit-identical to a plain map" true (results = want));
  (* without a pool: sequential execution is not degradation *)
  let results, o = Supervisor.supervise (fun i -> (i * i) + 1) input in
  check_bool "pool-less run is `Complete at Full" true
    (o.Supervisor.o_status = `Complete && o.Supervisor.o_level = Supervisor.Full);
  check_bool "pool-less run bit-identical" true (results = want)

let supervisor_transient_retry () =
  (* A fault that fires twice at job index 7: both executions are
     re-done, the run converges to `Complete, and the retry accounting
     covers every transient fire. *)
  with_chaos
    { Chaos.seed = 0; faults = [ Chaos.Raise_at { index = 7; times = 2 } ] }
    (fun () ->
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          let input = Array.init 300 Fun.id in
          let tracer = Tracer.make () in
          let results, o =
            Supervisor.supervise ~policy:fast_policy ~pool ~tracer
              (fun i -> i * 3)
              input
          in
          check_int "both shots fired" 2 (Chaos.fired_transient ());
          check_bool "transients retried to `Complete" true
            (o.Supervisor.o_status = `Complete);
          check_bool "retries cover the transient fires" true
            (o.Supervisor.o_retries >= 2);
          check_int "Retries counter matches the outcome"
            o.Supervisor.o_retries
            (Tracer.counter tracer Tracer.Retries);
          check_int "each fire recorded as a worker error" 2
            (Tracer.counter tracer Tracer.Worker_errors);
          check_bool "bit-identical despite the faults" true
            (results = Array.map (fun i -> Some (i * 3)) input)))

let supervisor_worker_kill_heals () =
  (* A worker dies mid-run (or the submitter absorbs the abort — it
     never dies); either way the run converges to `Complete with the
     pool back at full size and the killed execution redone. *)
  with_chaos
    { Chaos.seed = 0; faults = [ Chaos.Kill_worker_at { index = 5 } ] }
    (fun () ->
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          let before = Pool.size pool in
          let input = Array.init 300 Fun.id in
          let tracer = Tracer.make () in
          let results, o =
            Supervisor.supervise ~policy:fast_policy ~pool ~tracer
              (fun i -> i + 100)
              input
          in
          check_int "the kill fired" 1 (Chaos.fired_worker_kills ());
          check_bool "healed run is `Complete" true
            (o.Supervisor.o_status = `Complete);
          check_bool "at most one respawn" true (o.Supervisor.o_restarts <= 1);
          check_int "Worker_restarts counter matches the outcome"
            o.Supervisor.o_restarts
            (Tracer.counter tracer Tracer.Worker_restarts);
          check_int "pool back at full size" before (Pool.size pool);
          check_int "no dead workers left" 0 (Pool.dead_workers pool);
          check_bool "killed execution was redone" true
            (o.Supervisor.o_retries >= 1);
          check_bool "bit-identical despite the death" true
            (results = Array.map (fun i -> Some (i + 100)) input)))

let supervisor_drops_poisoned_item () =
  (* A deterministic failure exhausts its per-item retry budget: the
     item is dropped (never retried forever), everything else is
     computed, and the outcome says exactly what was lost. *)
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let policy = { fast_policy with Supervisor.max_item_retries = 1 } in
      let input = Array.init 64 Fun.id in
      let results, o =
        Supervisor.supervise ~policy ~pool
          (fun i -> if i = 13 then failwith "poisoned" else i * 2)
          input
      in
      check_bool "poisoned run is `Degraded" true
        (o.Supervisor.o_status = `Degraded);
      check_int "exactly one drop" 1 o.Supervisor.o_dropped;
      check_int "the drop was retried once" 1 o.Supervisor.o_retries;
      (match o.Supervisor.o_errors with
      | [ (13, msg) ] ->
          check_bool "the drop records its error" true
            (string_contains ~needle:"poisoned" msg)
      | _ -> Alcotest.fail "expected exactly the poisoned index in o_errors");
      check_bool "only the poisoned slot is empty" true
        (Array.for_all
           (fun i ->
             if i = 13 then results.(i) = None else results.(i) = Some (i * 2))
           input);
      check_bool "coverage accounts for the drop" true
        (Float.abs (Supervisor.coverage 64 o -. (63.0 /. 64.0)) < 1e-12))

let supervisor_deadline_is_partial () =
  Pool.with_pool ~jobs:test_jobs (fun pool ->
      let results, o =
        Supervisor.supervise ~pool ~deadline_ns:(Pool.now_ns ()) Fun.id
          (Array.init 100 Fun.id)
      in
      check_bool "expired deadline is `Partial" true
        (o.Supervisor.o_status = `Partial);
      check_int "abandoned slots are not drops" 0 o.Supervisor.o_dropped;
      check_bool "unexecuted slots are None" true (none_count results > 0))

(* Any survived seeded plan yields either a `Complete run bit-identical
   to the fault-free map, or a well-formed `Degraded one: every
   non-dropped slot bit-identical, drops = empty slots = listed errors,
   coverage consistent.  Retry/restart counters agree with the tracer. *)
let check_seeded_plan seed =
  with_chaos (Chaos.plan_of_seed seed) (fun () ->
      (* the pool is created while the plan is armed, so Spawn_fail
         faults hit the spawn path *)
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          let input = Array.init 300 Fun.id in
          let want i = (i * 7) + 1 in
          let tracer = Tracer.make () in
          let results, o =
            Supervisor.supervise ~policy:fast_policy ~pool ~tracer want input
          in
          let sp fmt = Printf.ksprintf (fun s -> s) fmt in
          check_int
            (sp "seed %d: Retries counter = outcome" seed)
            o.Supervisor.o_retries
            (Tracer.counter tracer Tracer.Retries);
          check_int
            (sp "seed %d: Worker_restarts counter = outcome" seed)
            o.Supervisor.o_restarts
            (Tracer.counter tracer Tracer.Worker_restarts);
          check_int
            (sp "seed %d: drops = listed errors" seed)
            o.Supervisor.o_dropped
            (List.length o.Supervisor.o_errors);
          match o.Supervisor.o_status with
          | `Partial ->
              Alcotest.failf "seed %d: `Partial without deadline or cancel"
                seed
          | `Complete ->
              check_bool
                (sp "seed %d: `Complete is bit-identical" seed)
                true
                (results = Array.map (fun i -> Some (want i)) input);
              check_int (sp "seed %d: `Complete has no drops" seed) 0
                o.Supervisor.o_dropped;
              check_bool
                (sp "seed %d: retries (%d) cover transient fires (%d)" seed
                   o.Supervisor.o_retries (Chaos.fired_transient ()))
                true
                (o.Supervisor.o_retries >= Chaos.fired_transient ())
          | `Degraded ->
              check_int
                (sp "seed %d: drops = empty slots" seed)
                o.Supervisor.o_dropped (none_count results);
              Array.iteri
                (fun i v ->
                  match v with
                  | None -> ()
                  | Some v ->
                      check_int
                        (sp "seed %d: surviving slot %d bit-identical" seed i)
                        (want i) v)
                results;
              check_bool
                (sp "seed %d: coverage consistent" seed)
                true
                (Float.abs
                   (Supervisor.coverage 300 o
                   -. (float_of_int (300 - o.Supervisor.o_dropped) /. 300.0))
                < 1e-12)))

let supervisor_seeded_plans () =
  List.iter check_seeded_plan [ 1; 2; 3; 4; 5; 6 ]

let supervisor_spawn_fail_plan () =
  (* All spawns fail: the pool degenerates to the submitting domain and
     the supervised map still completes (Full — the pool never had more). *)
  with_chaos
    { Chaos.seed = 0; faults = [ Chaos.Spawn_fail 64 ] }
    (fun () ->
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          check_int "every spawn failed" 1 (Pool.size pool);
          let input = Array.init 100 Fun.id in
          let results, o =
            Supervisor.supervise ~policy:fast_policy ~pool (fun i -> i * 5)
              input
          in
          check_bool "degenerate pool still completes" true
            (o.Supervisor.o_status = `Complete);
          check_bool "bit-identical on the degenerate pool" true
            (results = Array.map (fun i -> Some (i * 5)) input)))

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let checkpoint_roundtrip () =
  let open Rtfmt in
  let ck = Checkpoint.create ~kind:"test" ~fingerprint:"abc123" in
  let ck = Checkpoint.add ck ~key:"a" (Json.Int 1) in
  let ck = Checkpoint.add ck ~key:"b" (Json.Str "two") in
  let ck = Checkpoint.add ck ~key:"a" (Json.Int 3) in
  check_bool "add replaces and appends" true
    (Checkpoint.entries ck
    = [ ("b", Json.Str "two"); ("a", Json.Int 3) ]);
  check_bool "find returns the latest value" true
    (Checkpoint.find ck "a" = Some (Json.Int 3));
  check_bool "find on a missing key" true (Checkpoint.find ck "zzz" = None);
  (match Checkpoint.of_json (Checkpoint.to_json ck) with
  | Ok ck' ->
      check_string "kind round-trips" (Checkpoint.kind ck)
        (Checkpoint.kind ck');
      check_string "fingerprint round-trips" (Checkpoint.fingerprint ck)
        (Checkpoint.fingerprint ck');
      check_bool "entries round-trip in order" true
        (Checkpoint.entries ck = Checkpoint.entries ck')
  | Error e -> Alcotest.fail e);
  check_bool "validate accepts matching kind+fingerprint" true
    (Checkpoint.validate ~kind:"test" ~fingerprint:"abc123" ck = Ok ());
  (match Checkpoint.validate ~kind:"other" ~fingerprint:"abc123" ck with
  | Error e ->
      check_bool "kind mismatch reported" true
        (string_contains ~needle:"kind" e)
  | Ok () -> Alcotest.fail "kind mismatch accepted");
  (match Checkpoint.validate ~kind:"test" ~fingerprint:"deadbeef" ck with
  | Error e ->
      check_bool "stale fingerprint reported" true
        (string_contains ~needle:"fingerprint" e)
  | Ok () -> Alcotest.fail "stale fingerprint accepted")

let checkpoint_save_load () =
  let open Rtfmt in
  with_temp_file (fun path ->
      check_bool "no file reads as a fresh run" true
        (Checkpoint.load path = Ok None);
      let tracer = Tracer.make () in
      let ck = Checkpoint.create ~kind:"test" ~fingerprint:"fp" in
      let ck = Checkpoint.add ck ~key:"k" (Json.Int 42) in
      Checkpoint.save ~tracer path ck;
      check_int "save bumps Checkpoints_written" 1
        (Tracer.counter tracer Tracer.Checkpoints_written);
      (match Checkpoint.load path with
      | Ok (Some ck') ->
          check_bool "reloaded checkpoint identical" true
            (Checkpoint.kind ck' = "test"
            && Checkpoint.fingerprint ck' = "fp"
            && Checkpoint.entries ck' = [ ("k", Json.Int 42) ])
      | Ok None -> Alcotest.fail "saved checkpoint not found"
      | Error e -> Alcotest.fail e);
      Rtfmt.write_string_atomic path "{ not json";
      (match Checkpoint.load path with
      | Error e ->
          check_bool "corrupt file reported, not crashed" true
            (string_contains ~needle:"corrupt" e)
      | Ok _ -> Alcotest.fail "corrupt checkpoint accepted");
      Checkpoint.remove path;
      check_bool "removed checkpoint reads as fresh" true
        (Checkpoint.load path = Ok None))

let sample_json_roundtrip () =
  let samples =
    [
      {
        Rtlb.Sensitivity.s_factor = 0.1;
        s_feasible = true;
        s_bounds = [ ("r1", 3); ("r2", 0) ];
        s_shared_cost = Some 7;
        s_partial = false;
      };
      {
        Rtlb.Sensitivity.s_factor = 1.0 /. 3.0;
        s_feasible = false;
        s_bounds = [];
        s_shared_cost = None;
        s_partial = true;
      };
      {
        Rtlb.Sensitivity.s_factor = 2.5;
        s_feasible = true;
        s_bounds = [ ("bus", 12) ];
        s_shared_cost = Some 0;
        s_partial = false;
      };
    ]
  in
  List.iter
    (fun s ->
      match Rtfmt.Checkpoint.sample_of_json (Rtfmt.Checkpoint.sample_to_json s) with
      | Ok s' ->
          check_bool "sample round-trips exactly" true
            (s = s'
            && Int64.bits_of_float s.Rtlb.Sensitivity.s_factor
               = Int64.bits_of_float s'.Rtlb.Sensitivity.s_factor)
      | Error e -> Alcotest.fail e)
    samples

(* ------------------------------------------------------------------ *)
(* Kill at checkpoint -> resume                                        *)
(* ------------------------------------------------------------------ *)

(* The CLI's persistence loop, distilled: save after every computed
   sample, consult the checkpoint before computing a factor. *)
let sweep_with_checkpoint ?tracer system app ~factors ~path =
  let fingerprint = Rtlb.Incremental.instance_fingerprint system app in
  let loaded =
    match Rtfmt.Checkpoint.load path with
    | Ok (Some ck)
      when Rtfmt.Checkpoint.validate ~kind:"test-sweep" ~fingerprint ck = Ok ()
      ->
        ck
    | _ -> Rtfmt.Checkpoint.create ~kind:"test-sweep" ~fingerprint
  in
  let state = ref loaded in
  let resume factor =
    match Rtfmt.Checkpoint.find !state (Rtfmt.Checkpoint.factor_key factor) with
    | None -> None
    | Some j -> (
        match Rtfmt.Checkpoint.sample_of_json j with
        | Ok s -> Some s
        | Error _ -> None)
  in
  let on_sample (s : Rtlb.Sensitivity.sample) =
    if not s.Rtlb.Sensitivity.s_partial then begin
      state :=
        Rtfmt.Checkpoint.add !state
          ~key:(Rtfmt.Checkpoint.factor_key s.Rtlb.Sensitivity.s_factor)
          (Rtfmt.Checkpoint.sample_to_json s);
      Rtfmt.Checkpoint.save ?tracer path !state
    end
  in
  Rtlb.Sensitivity.deadline_sweep ?tracer ~on_sample ~resume system app
    ~factors

let factors = [ 0.5; 0.75; 1.0; 1.5; 2.0 ]

let kill_at_checkpoint_resume () =
  let system = Rtlb.Paper_example.shared in
  let reference = Rtlb.Sensitivity.deadline_sweep system paper ~factors in
  with_temp_file (fun path ->
      (* run 1: killed right after the 2nd durable checkpoint write *)
      with_chaos
        { Chaos.seed = 0; faults = [ Chaos.Kill_at_checkpoint 2 ] }
        (fun () ->
          match sweep_with_checkpoint system paper ~factors ~path with
          | _ -> Alcotest.fail "expected the simulated kill to fire"
          | exception Chaos.Killed -> ());
      (match Rtfmt.Checkpoint.load path with
      | Ok (Some ck) ->
          check_int "the kill left exactly the durable prefix" 2
            (List.length (Rtfmt.Checkpoint.entries ck))
      | Ok None -> Alcotest.fail "no checkpoint survived the kill"
      | Error e -> Alcotest.fail e);
      (* run 2: resumed, no chaos *)
      let tracer = Tracer.make () in
      let resumed = sweep_with_checkpoint ~tracer system paper ~factors ~path in
      check_int "both durable samples were resumed, not recomputed" 2
        (Tracer.counter tracer Tracer.Resumes);
      check_bool "resumed sweep bit-identical to uninterrupted" true
        (resumed = reference);
      (* a checkpoint for a different instance is stale, never reused *)
      let other = Rtlb.Sensitivity.scale_deadlines paper ~factor:3.0 in
      let tracer2 = Tracer.make () in
      let fresh = sweep_with_checkpoint ~tracer:tracer2 system other ~factors ~path in
      check_int "stale checkpoint resumed nothing" 0
        (Tracer.counter tracer2 Tracer.Resumes);
      check_bool "stale-checkpoint run recomputed from scratch" true
        (fresh = Rtlb.Sensitivity.deadline_sweep system other ~factors))

(* qcheck property: for random instances, a sweep killed at the 2nd
   checkpoint write and then resumed returns output bit-identical to an
   uninterrupted sweep of the same instance. *)
let kill_resume_prop =
  qtest ~count:25 "kill at checkpoint + resume is bit-identical"
    (arb_instance ~max_tasks:10 ())
    (fun i ->
      let system = shared_of i in
      let reference = Rtlb.Sensitivity.deadline_sweep system i.app ~factors in
      with_temp_file (fun path ->
          (match
             with_chaos
               { Chaos.seed = 0; faults = [ Chaos.Kill_at_checkpoint 2 ] }
               (fun () ->
                 match sweep_with_checkpoint system i.app ~factors ~path with
                 | _ -> `Survived
                 | exception Chaos.Killed -> `Killed)
           with
          | `Killed -> ()
          | `Survived -> failwith "the simulated kill did not fire");
          let resumed = sweep_with_checkpoint system i.app ~factors ~path in
          resumed = reference))

(* ------------------------------------------------------------------ *)
(* Atomic writes                                                       *)
(* ------------------------------------------------------------------ *)

let atomic_write_failure_keeps_destination () =
  with_temp_file (fun path ->
      Fun.protect ~finally:Rtfmt.Atomic_io.For_testing.reset (fun () ->
          Rtfmt.write_string_atomic path "first version";
          check_string "initial write lands" "first version" (read_file path);
          Rtfmt.Atomic_io.For_testing.fail_writes := 1;
          (try
             Rtfmt.write_string_atomic path "second version";
             Alcotest.fail "expected the injected write failure"
           with Sys_error e ->
             check_bool "failure names the temp file" true
               (string_contains ~needle:".tmp" e));
          check_string "destination untouched by the failed write"
            "first version" (read_file path);
          check_bool "temp file cleaned up" false
            (Sys.file_exists (path ^ ".tmp"));
          Rtfmt.write_string_atomic path "second version";
          check_string "subsequent write succeeds" "second version"
            (read_file path)))

(* ------------------------------------------------------------------ *)
(* Plan syntax and seeding                                             *)
(* ------------------------------------------------------------------ *)

let plan_syntax_roundtrip () =
  List.iter
    (fun faults ->
      let plan = { Chaos.seed = 0; faults } in
      let s = Chaos.to_string plan in
      match Chaos.parse s with
      | Ok p -> check_bool (s ^ " round-trips") true (p = plan)
      | Error e -> Alcotest.failf "parse %S failed: %s" s e)
    [
      [ Chaos.Spawn_fail 2 ];
      [ Chaos.Raise_at { index = 7; times = 1 } ];
      [ Chaos.Raise_at { index = 3; times = 4 } ];
      [ Chaos.Kill_worker_at { index = 9 } ];
      [ Chaos.Slow_at { index = 1; spins = 5000 } ];
      [ Chaos.Kill_at_checkpoint 3 ];
      [
        Chaos.Spawn_fail 1;
        Chaos.Raise_at { index = 0; times = 2 };
        Chaos.Kill_at_checkpoint 1;
      ];
      [ Chaos.Bad_frame_at { index = 4 } ];
      [ Chaos.Kill_request_at { index = 2 } ];
      [ Chaos.Slow_client_at { index = 6; ms = 15 } ];
      [
        Chaos.Bad_frame_at { index = 0 };
        Chaos.Kill_request_at { index = 1 };
        Chaos.Slow_client_at { index = 2; ms = 5 };
      ];
    ];
  (match Chaos.parse "seed=5" with
  | Ok p ->
      check_bool "seed=5 expands to plan_of_seed 5" true
        (p = Chaos.plan_of_seed 5)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Chaos.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected %S to be rejected" bad)
    [ ""; "bogus"; "raise@x"; "kill@"; "spawnfail=-1"; "raise@3x"; "seed=no" ]

let plan_syntax_strict () =
  (* Regression: the DSL used to route directive payloads through
     [int_of_string_opt], which accepts OCaml integer literals — so a
     typo like [kill@0x3] silently armed [kill@3] and [seed=1_0]
     silently became [seed=10] instead of being rejected.  Every
     malformed spelling must now fail with an error naming the bad
     token, and nothing may be silently dropped or reinterpreted. *)
  List.iter
    (fun (bad, token) ->
      match Chaos.parse bad with
      | Ok p ->
          Alcotest.failf "expected %S to be rejected, got %S" bad
            (Chaos.to_string p)
      | Error e ->
          check_bool
            (Printf.sprintf "error for %S names the token (%s)" bad e)
            true
            (string_contains ~needle:token e))
    [
      ("kill@0x3", "kill@0x3");
      ("slow@1:0x10", "slow@1:0x10");
      ("spawnfail=0b10", "spawnfail=0b10");
      ("seed=1_0", "seed=1_0");
      ("kill@+3", "kill@+3");
      ("raise@1,killl@2", "killl@2");
      ("badframe@0o7", "badframe@0o7");
      ("slowclient@2:1_0", "slowclient@2:1_0");
    ]

let seeded_plans_deterministic () =
  for seed = 0 to 20 do
    let a = Chaos.plan_of_seed seed and b = Chaos.plan_of_seed seed in
    check_bool (Printf.sprintf "seed %d deterministic" seed) true (a = b);
    let n = List.length a.Chaos.faults in
    check_bool
      (Printf.sprintf "seed %d has 1..3 faults" seed)
      true (n >= 1 && n <= 3)
  done;
  check_bool "consecutive seeds give different plans" true
    (List.exists
       (fun s -> Chaos.plan_of_seed s <> Chaos.plan_of_seed (s + 1))
       [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Chaos x the packed (SoA) engine                                     *)
(* ------------------------------------------------------------------ *)

(* The chaos suite historically only drove the record engine; the
   packed engine shares the pool path, so the same faults must heal to
   the same bit-identical answers (satellite of the serve work — the
   daemon supervises SoA requests exactly like this). *)

let soa_instance () =
  let app = Workload.Gen.layered_frames ~seed:5 ~frames:2 ~tasks_per_frame:20 () in
  (Workload.Gen.frame_system (), app)

let chaos_soa_transient_retry () =
  let system, app = soa_instance () in
  let reference = Rtlb.Soa.analyze system app in
  with_chaos
    { Chaos.seed = 0; faults = [ Chaos.Raise_at { index = 0; times = 2 } ] }
    (fun () ->
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          let results, o =
            Supervisor.supervise ~policy:fast_policy ~pool
              (fun () -> Rtlb.Soa.analyze ~pool system app)
              [| () |]
          in
          check_int "both transient shots fired" 2 (Chaos.fired_transient ());
          check_bool "supervised SoA run converged" true
            (o.Supervisor.o_status = `Complete);
          check_bool "fault-surviving SoA run bit-identical to fault-free"
            true
            (results.(0) = Some reference)))

let chaos_soa_worker_kill_heals () =
  let system, app = soa_instance () in
  let reference = Rtlb.Soa.analyze system app in
  (* the serve daemon's killreq path: the request body's worker dies at
     the start of the computation, the pool heals, the retry answers *)
  with_chaos
    { Chaos.seed = 0; faults = [ Chaos.Kill_request_at { index = 0 } ] }
    (fun () ->
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          let results, o =
            Supervisor.supervise ~policy:fast_policy ~pool
              (fun () ->
                Chaos.on_request 0;
                Rtlb.Soa.analyze ~pool system app)
              [| () |]
          in
          check_int "the kill fired" 1 (Chaos.fired_request_kills ());
          check_bool "healed SoA run converged" true
            (o.Supervisor.o_status = `Complete);
          check_int "no dead workers left" 0 (Pool.dead_workers pool);
          check_bool "healed SoA run bit-identical to fault-free" true
            (results.(0) = Some reference)))

let chaos_soa_degrades_exactly () =
  let system, app = soa_instance () in
  let reference = Rtlb.Soa.analyze system app in
  (* no respawn budget: the ladder steps down instead of healing, and
     the answer must still be exact *)
  let policy = { fast_policy with Supervisor.max_restarts = 0 } in
  with_chaos
    { Chaos.seed = 0; faults = [ Chaos.Kill_request_at { index = 0 } ] }
    (fun () ->
      Pool.with_pool ~jobs:test_jobs (fun pool ->
          let results, o =
            Supervisor.supervise ~policy ~pool
              (fun () ->
                Chaos.on_request 0;
                Rtlb.Soa.analyze ~pool system app)
              [| () |]
          in
          check_int "the kill fired" 1 (Chaos.fired_request_kills ());
          check_bool "ladder stepped below Full" true
            (o.Supervisor.o_level <> Supervisor.Full);
          check_bool "no slots dropped" true (none_count results = 0);
          check_bool "degraded SoA run bit-identical to fault-free" true
            (results.(0) = Some reference)))

let suite =
  [
    ( "chaos",
      [
        Alcotest.test_case "supervisor: fault-free identity" `Quick
          supervisor_identity;
        Alcotest.test_case "supervisor: transient fault retried" `Quick
          supervisor_transient_retry;
        Alcotest.test_case "supervisor: worker death healed" `Quick
          supervisor_worker_kill_heals;
        Alcotest.test_case "supervisor: poisoned item dropped" `Quick
          supervisor_drops_poisoned_item;
        Alcotest.test_case "supervisor: expired deadline is `Partial" `Quick
          supervisor_deadline_is_partial;
        Alcotest.test_case "supervisor: survives seeded plans 1-6" `Quick
          supervisor_seeded_plans;
        Alcotest.test_case "supervisor: total spawn failure" `Quick
          supervisor_spawn_fail_plan;
        Alcotest.test_case "checkpoint: json round-trip + staleness" `Quick
          checkpoint_roundtrip;
        Alcotest.test_case "checkpoint: save/load/corrupt/remove" `Quick
          checkpoint_save_load;
        Alcotest.test_case "checkpoint: sample payload round-trip" `Quick
          sample_json_roundtrip;
        Alcotest.test_case "kill at checkpoint, resume bit-identical" `Quick
          kill_at_checkpoint_resume;
        Alcotest.test_case "atomic write: injected failure is safe" `Quick
          atomic_write_failure_keeps_destination;
        Alcotest.test_case "RTLB_CHAOS syntax round-trips" `Quick
          plan_syntax_roundtrip;
        Alcotest.test_case "RTLB_CHAOS rejects malformed spellings" `Quick
          plan_syntax_strict;
        Alcotest.test_case "seeded plans are deterministic" `Quick
          seeded_plans_deterministic;
        Alcotest.test_case "soa engine: transient faults retried" `Quick
          chaos_soa_transient_retry;
        Alcotest.test_case "soa engine: worker death healed" `Quick
          chaos_soa_worker_kill_heals;
        Alcotest.test_case "soa engine: degraded ladder stays exact" `Quick
          chaos_soa_degrades_exactly;
        kill_resume_prop;
      ] );
  ]
