(* Unit and property tests for the exact rational arithmetic. *)

open Helpers

let r = Rat.make

let check_rat msg expected actual =
  Alcotest.(check string) msg (Rat.to_string expected) (Rat.to_string actual)

let normalisation () =
  check_rat "6/4 = 3/2" (r 3 2) (r 6 4);
  check_rat "-6/4 = -3/2" (r (-3) 2) (r 6 (-4));
  check_rat "0/7 = 0" Rat.zero (r 0 7);
  check_int "num" 3 (Rat.num (r 6 4));
  check_int "den" 2 (Rat.den (r 6 4));
  check_int "den positive" 2 (Rat.den (r (-6) 4))

let arithmetic () =
  check_rat "1/2 + 1/3" (r 5 6) (Rat.add (r 1 2) (r 1 3));
  check_rat "1/2 - 1/3" (r 1 6) (Rat.sub (r 1 2) (r 1 3));
  check_rat "2/3 * 9/4" (r 3 2) (Rat.mul (r 2 3) (r 9 4));
  check_rat "1/2 / 1/4" (r 2 1) (Rat.div (r 1 2) (r 1 4));
  check_rat "neg" (r (-1) 2) (Rat.neg (r 1 2));
  check_rat "abs" (r 1 2) (Rat.abs (r (-1) 2));
  check_rat "inv" (r 3 2) (Rat.inv (r 2 3))

let comparisons () =
  check_bool "1/2 < 2/3" true Rat.(r 1 2 < r 2 3);
  check_bool "-1/2 > -2/3" true Rat.(r (-1) 2 > r (-2) 3);
  check_bool "equal" true (Rat.equal (r 2 4) (r 1 2));
  check_int "sign+" 1 (Rat.sign (r 1 3));
  check_int "sign-" (-1) (Rat.sign (r (-1) 3));
  check_int "sign0" 0 (Rat.sign Rat.zero);
  check_rat "min" (r 1 3) (Rat.min (r 1 3) (r 1 2));
  check_rat "max" (r 1 2) (Rat.max (r 1 3) (r 1 2))

let rounding () =
  check_int "floor 7/2" 3 (Rat.floor (r 7 2));
  check_int "ceil 7/2" 4 (Rat.ceil (r 7 2));
  check_int "floor -7/2" (-4) (Rat.floor (r (-7) 2));
  check_int "ceil -7/2" (-3) (Rat.ceil (r (-7) 2));
  check_int "floor int" 5 (Rat.floor (r 5 1));
  check_int "ceil int" 5 (Rat.ceil (r 5 1));
  check_bool "is_integer 4/2" true (Rat.is_integer (r 4 2));
  check_bool "is_integer 1/2" false (Rat.is_integer (r 1 2));
  check_int "to_int_exn" 2 (Rat.to_int_exn (r 4 2));
  Alcotest.check_raises "to_int_exn fails"
    (Invalid_argument "Rat.to_int_exn: not an integer") (fun () ->
      ignore (Rat.to_int_exn (r 1 2)))

let errors () =
  Alcotest.check_raises "zero denominator" Rat.Division_by_zero (fun () ->
      ignore (r 1 0));
  Alcotest.check_raises "inverse of zero" Rat.Division_by_zero (fun () ->
      ignore (Rat.inv Rat.zero));
  Alcotest.check_raises "overflow detected" Rat.Overflow (fun () ->
      ignore (Rat.mul (r max_int 1) (r max_int 1)))

let float_approx () =
  check_rat "0.1 -> 1/10" (r 1 10) (Rat.approx 0.1);
  check_rat "1.37 -> 137/100" (r 137 100) (Rat.approx 1.37);
  check_rat "0.3333 -> 3333/10000 (not 1/3)" (r 3333 10000) (Rat.approx 0.3333);
  check_rat "2/3 literal" (r 2 3) (Rat.approx (2.0 /. 3.0));
  check_rat "integer" (r 3 1) (Rat.approx 3.0);
  check_rat "zero" Rat.zero (Rat.approx 0.0);
  check_rat "negative" (r (-1) 4) (Rat.approx (-0.25));
  check_bool "NaN rejected" true
    (match Rat.approx Float.nan with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "infinity rejected" true
    (match Rat.approx Float.infinity with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "huge magnitude overflows" true
    (match Rat.approx 1e18 with exception Rat.Overflow -> true | _ -> false)

let approx_props =
  [
    qtest "approx recovers small rationals exactly"
      QCheck.(pair (int_range 1 999) (int_range 1 999))
      (fun (n, d) ->
        Rat.equal (r n d) (Rat.approx (float_of_int n /. float_of_int d)));
  ]

let pp_format () =
  check_string "integer prints bare" "5" (Rat.to_string (r 10 2));
  check_string "fraction prints as n/d" "3/2" (Rat.to_string (r 3 2));
  check_string "negative" "-3/2" (Rat.to_string (r 3 (-2)))

(* Properties over small fractions (kept small to stay far from
   overflow). *)
let arb_rat =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "%d/%d" a b)
    QCheck.Gen.(pair (int_range (-1000) 1000) (int_range 1 1000))

let arb_rat3 = QCheck.triple arb_rat arb_rat arb_rat

let lift (a, b) = r a b

let prop_tests =
  [
    qtest "add commutative" (QCheck.pair arb_rat arb_rat) (fun (x, y) ->
        Rat.equal (Rat.add (lift x) (lift y)) (Rat.add (lift y) (lift x)));
    qtest "mul commutative" (QCheck.pair arb_rat arb_rat) (fun (x, y) ->
        Rat.equal (Rat.mul (lift x) (lift y)) (Rat.mul (lift y) (lift x)));
    qtest "add associative" arb_rat3 (fun (x, y, z) ->
        let x = lift x and y = lift y and z = lift z in
        Rat.equal (Rat.add x (Rat.add y z)) (Rat.add (Rat.add x y) z));
    qtest "distributive" arb_rat3 (fun (x, y, z) ->
        let x = lift x and y = lift y and z = lift z in
        Rat.equal
          (Rat.mul x (Rat.add y z))
          (Rat.add (Rat.mul x y) (Rat.mul x z)));
    qtest "sub then add roundtrips" (QCheck.pair arb_rat arb_rat)
      (fun (x, y) ->
        let x = lift x and y = lift y in
        Rat.equal x (Rat.add (Rat.sub x y) y));
    qtest "compare consistent with to_float" (QCheck.pair arb_rat arb_rat)
      (fun (x, y) ->
        let x = lift x and y = lift y in
        let c = Rat.compare x y in
        let f = compare (Rat.to_float x) (Rat.to_float y) in
        (* floats of small rationals are exact enough for the sign *)
        c = 0 = (f = 0) && (c < 0) = (f < 0));
    qtest "floor <= x <= ceil" arb_rat (fun x ->
        let x = lift x in
        Rat.(of_int (floor x) <= x) && Rat.(x <= of_int (ceil x)));
    qtest "ceil - floor <= 1" arb_rat (fun x ->
        let x = lift x in
        Rat.ceil x - Rat.floor x <= 1);
    qtest "normal form is canonical" (QCheck.pair arb_rat QCheck.small_nat)
      (fun ((a, b), k) ->
        let k = k + 1 in
        Rat.equal (r a b) (r (a * k) (b * k)));
  ]

let suite =
  [
    ( "rat",
      [
        Alcotest.test_case "normalisation" `Quick normalisation;
        Alcotest.test_case "arithmetic" `Quick arithmetic;
        Alcotest.test_case "comparisons" `Quick comparisons;
        Alcotest.test_case "rounding" `Quick rounding;
        Alcotest.test_case "errors" `Quick errors;
        Alcotest.test_case "float approximation" `Quick float_approx;
        Alcotest.test_case "printing" `Quick pp_format;
      ]
      @ approx_props @ prop_tests );
  ]
