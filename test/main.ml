let () =
  Alcotest.run "rtlb"
    (Test_rat.suite @ Test_lp.suite @ Test_dag.suite @ Test_model.suite
   @ Test_overlap.suite @ Test_est_lct.suite @ Test_partition.suite
   @ Test_lower_bound.suite @ Test_cost.suite @ Test_analysis.suite
   @ Test_sched.suite @ Test_baselines.suite @ Test_workload.suite
   @ Test_synth.suite @ Test_rtfmt.suite @ Test_extensions.suite
   @ Test_flow.suite @ Test_periodic.suite @ Test_json.suite
   @ Test_simulator.suite @ Test_slack.suite @ Test_makespan.suite
   @ Test_mutate.suite @ Test_multiunit.suite @ Test_coverage.suite
   @ Test_par.suite @ Test_validate.suite @ Test_obs.suite
   @ Test_incremental.suite @ Test_chaos.suite @ Test_soa.suite
   @ Test_serve.suite @ Test_resilience.suite @ Test_recurrent.suite)
