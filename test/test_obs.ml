(* Tests for the observability layer (lib/obs): the injectable clock,
   the span tracer and its counter glossary, the in-memory stats sink,
   and the Chrome trace_event JSON writer.

   The two headline properties, checked on random instances:

   - counters are consistent: a complete traced analysis reports
     exactly the counts the paper's scan structure predicts
     (candidate_intervals = theta_evals = sum over partition blocks of
     n(n-1)/2 candidate points, tasks_scanned = sum of |block|*(n-1));

   - tracing is write-only: a traced run's Analysis.result is
     bit-identical to the untraced run's. *)

open Helpers

(* ------------------------------------------------------------------ *)
(* Expected counter values, derived from the public API only           *)
(* ------------------------------------------------------------------ *)

type expected = {
  e_intervals : int;  (* Candidate_intervals = Theta_evals *)
  e_scanned : int;  (* Tasks_scanned *)
  e_items : int;  (* executed work items on a complete run *)
}

let expected_counts system app =
  let w = Rtlb.Est_lct.compute system app in
  let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
  let compute =
    Array.init (Rtlb.App.n_tasks app) (fun i ->
        (Rtlb.App.task app i).Rtlb.Task.compute)
  in
  List.fold_left
    (fun acc r ->
      let tasks = Rtlb.App.tasks_using app r in
      let p = Rtlb.Partition.compute ~est ~lct tasks in
      List.fold_left2
        (fun acc block (lo, hi) ->
          if lo >= hi then acc
          else
            let n =
              List.length
                (Rtlb.Lower_bound.candidate_points ~est ~lct ~compute block
                   ~lo ~hi)
            in
            {
              e_intervals = acc.e_intervals + (n * (n - 1) / 2);
              e_scanned = acc.e_scanned + (List.length block * (n - 1));
              e_items = acc.e_items + (n - 1);
            })
        acc p.Rtlb.Partition.blocks p.Rtlb.Partition.spans)
    { e_intervals = 0; e_scanned = 0; e_items = 0 }
    (Rtlb.App.resource_set app)

let traced_run ?pool system app =
  let tracer = Rtlb_obs.Tracer.make ~clock:(Rtlb_obs.Clock.fake ()) () in
  let analysis = Rtlb.Analysis.run ?pool ~tracer system app in
  (tracer, analysis)

let counter = Rtlb_obs.Tracer.counter

let check_counters label tracer expected =
  check_int (label ^ ": candidate_intervals") expected.e_intervals
    (counter tracer Rtlb_obs.Tracer.Candidate_intervals);
  check_int (label ^ ": theta_evals") expected.e_intervals
    (counter tracer Rtlb_obs.Tracer.Theta_evals);
  check_int (label ^ ": tasks_scanned") expected.e_scanned
    (counter tracer Rtlb_obs.Tracer.Tasks_scanned);
  check_int (label ^ ": no deadline cancellations") 0
    (counter tracer Rtlb_obs.Tracer.Deadline_cancels);
  let workers = Rtlb_obs.Tracer.worker_stats tracer in
  let sum f = List.fold_left (fun a w -> a + f w) 0 workers in
  check_int
    (label ^ ": worker items sum to executed work items")
    expected.e_items
    (sum (fun (_, _, items) -> items));
  check_int
    (label ^ ": chunks_claimed = sum of per-worker chunks")
    (counter tracer Rtlb_obs.Tracer.Chunks_claimed)
    (sum (fun (_, chunks, _) -> chunks))

(* ------------------------------------------------------------------ *)
(* Counter consistency                                                 *)
(* ------------------------------------------------------------------ *)

let paper = Rtlb.Paper_example.app

let counters_on_paper_example () =
  let expected = expected_counts Rtlb.Paper_example.shared paper in
  let tracer, _ = traced_run Rtlb.Paper_example.shared paper in
  check_counters "sequential" tracer expected;
  Rtlb_par.Pool.with_pool ~jobs:Test_par.test_jobs (fun pool ->
      let tracer, _ = traced_run ~pool Rtlb.Paper_example.shared paper in
      check_counters "pooled" tracer expected)

let counters_prop =
  qtest ~count:100 "traced counters match the scan plan (random instances)"
    (arb_instance ~max_tasks:14 ()) (fun i ->
      let system = shared_of i in
      let expected = expected_counts system i.app in
      let tracer, _ = traced_run system i.app in
      counter tracer Rtlb_obs.Tracer.Candidate_intervals = expected.e_intervals
      && counter tracer Rtlb_obs.Tracer.Theta_evals = expected.e_intervals
      && counter tracer Rtlb_obs.Tracer.Tasks_scanned = expected.e_scanned
      && List.fold_left
           (fun a (_, _, items) -> a + items)
           0
           (Rtlb_obs.Tracer.worker_stats tracer)
         = expected.e_items)

(* ------------------------------------------------------------------ *)
(* Tracing is write-only telemetry                                     *)
(* ------------------------------------------------------------------ *)

let traced_identical_prop =
  qtest ~count:100 "traced analysis bit-identical to untraced"
    (arb_instance ~max_tasks:14 ()) (fun i ->
      let system = shared_of i in
      let untraced = Rtlb.Analysis.run system i.app in
      let _, traced = traced_run system i.app in
      Test_par.analyses_identical untraced traced)

let traced_identical_pooled () =
  Rtlb_par.Pool.with_pool ~jobs:Test_par.test_jobs (fun pool ->
      List.iter
        (fun system ->
          let untraced = Rtlb.Analysis.run system paper in
          let _, traced = traced_run ~pool system paper in
          check_bool "pooled traced run bit-identical" true
            (Test_par.analyses_identical untraced traced))
        [ Rtlb.Paper_example.shared; Rtlb.Paper_example.dedicated ])

let traced_sensitivity_identical () =
  let factors = [ 0.8; 1.0; 1.5 ] in
  let tracer = Rtlb_obs.Tracer.make ~clock:(Rtlb_obs.Clock.fake ()) () in
  let plain =
    Rtlb.Sensitivity.deadline_sweep Rtlb.Paper_example.shared paper ~factors
  in
  let traced =
    Rtlb.Sensitivity.deadline_sweep ~tracer Rtlb.Paper_example.shared paper
      ~factors
  in
  check_bool "traced sweep = untraced sweep" true (plain = traced);
  (* one "factor %g" span per sweep point, each containing an analysis *)
  let events = Rtlb_obs.Tracer.events tracer in
  List.iter
    (fun f ->
      let name = Printf.sprintf "factor %g" f in
      check_int name 1
        (List.length
           (List.filter
              (fun e -> e.Rtlb_obs.Tracer.ev_name = name)
              events)))
    factors;
  check_int "one analyze span per factor" (List.length factors)
    (List.length
       (List.filter (fun e -> e.Rtlb_obs.Tracer.ev_name = "analyze") events))

(* ------------------------------------------------------------------ *)
(* Span structure                                                      *)
(* ------------------------------------------------------------------ *)

let interval (e : Rtlb_obs.Tracer.event) =
  (e.Rtlb_obs.Tracer.ev_ts_ns, Int64.add e.Rtlb_obs.Tracer.ev_ts_ns e.ev_dur_ns)

(* Two spans on one domain must nest or be disjoint; overlap without
   containment means with_span's lexical scoping was violated. *)
let well_nested events =
  let rec pairs = function
    | [] -> true
    | e :: rest ->
        List.for_all
          (fun e' ->
            let a1, a2 = interval e and b1, b2 = interval e' in
            let disjoint = a2 <= b1 || b2 <= a1 in
            let a_in_b = b1 <= a1 && a2 <= b2 in
            let b_in_a = a1 <= b1 && b2 <= a2 in
            disjoint || a_in_b || b_in_a)
          rest
        && pairs rest
  in
  pairs events

let by_tid events =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = e.Rtlb_obs.Tracer.ev_tid in
      Hashtbl.replace tbl tid (e :: (try Hashtbl.find tbl tid with Not_found -> [])))
    events;
  Hashtbl.fold (fun _ es acc -> es :: acc) tbl []

let contains outer inner =
  let o1, o2 = interval outer and i1, i2 = interval inner in
  o1 <= i1 && i2 <= o2

let find_span name events =
  match
    List.filter (fun e -> e.Rtlb_obs.Tracer.ev_name = name) events
  with
  | [ e ] -> e
  | es ->
      Alcotest.failf "expected exactly one %S span, found %d" name
        (List.length es)

let spans_well_nested () =
  let tracer, _ = traced_run Rtlb.Paper_example.shared paper in
  let events = Rtlb_obs.Tracer.events tracer in
  List.iter
    (fun per_tid ->
      check_bool "per-domain spans are well-nested" true
        (well_nested per_tid))
    (by_tid events);
  let root = find_span "analyze" events in
  List.iter
    (fun name ->
      let child = find_span name events in
      check_bool
        (Printf.sprintf "%S inside \"analyze\"" name)
        true (contains root child))
    [ "est_lct"; "lower_bounds"; "cost" ];
  let lbs = find_span "lower_bounds" events in
  List.iter
    (fun name ->
      check_bool
        (Printf.sprintf "%S inside \"lower_bounds\"" name)
        true
        (contains lbs (find_span name events)))
    [ "plan"; "reduce" ]

let spans_well_nested_pooled () =
  (* Real clock, real pool: nesting must hold per executing domain, and
     the submitter-side spans still nest under the root. *)
  Rtlb_par.Pool.with_pool ~jobs:Test_par.test_jobs (fun pool ->
      let tracer = Rtlb_obs.Tracer.make () in
      let _ = Rtlb.Analysis.run ~pool ~tracer Rtlb.Paper_example.shared paper in
      let events = Rtlb_obs.Tracer.events tracer in
      List.iter
        (fun per_tid ->
          check_bool "pooled per-domain spans are well-nested" true
            (well_nested per_tid))
        (by_tid events);
      let root = find_span "analyze" events in
      let root_tid = root.Rtlb_obs.Tracer.ev_tid in
      List.iter
        (fun e ->
          if e.Rtlb_obs.Tracer.ev_tid = root_tid && e != root then
            check_bool
              (Printf.sprintf "submitter span %S inside the root"
                 e.Rtlb_obs.Tracer.ev_name)
              true (contains root e))
        events)

let with_span_exception_safe () =
  let tracer = Rtlb_obs.Tracer.make ~clock:(Rtlb_obs.Clock.fake ()) () in
  (try
     Rtlb_obs.Tracer.with_span tracer "outer" (fun () ->
         Rtlb_obs.Tracer.with_span tracer "inner" (fun () ->
             failwith "boom"))
   with Failure _ -> ());
  let events = Rtlb_obs.Tracer.events tracer in
  check_int "both spans recorded despite the raise" 2 (List.length events);
  check_bool "raising spans still nest" true
    (contains (find_span "outer" events) (find_span "inner" events))

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON                                             *)
(* ------------------------------------------------------------------ *)

let trace_json () =
  let tracer, _ = traced_run Rtlb.Paper_example.shared paper in
  let json = Rtlb_obs.Trace_event.to_string tracer in
  let parsed = Rtfmt.Json.parse json in
  let events =
    match Rtfmt.Json.member "traceEvents" parsed with
    | Rtfmt.Json.List es -> es
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  check_bool "trace has events" true (events <> []);
  let phases =
    List.map
      (fun ev ->
        (* every event carries the fields the viewers require *)
        let ph =
          match Rtfmt.Json.member "ph" ev with
          | Rtfmt.Json.Str s -> s
          | _ -> Alcotest.fail "ph is not a string"
        in
        List.iter
          (fun field ->
            match Rtfmt.Json.member field ev with
            | Rtfmt.Json.Int _ -> ()
            | _ -> Alcotest.failf "%s is not an integer" field
            | exception Not_found -> Alcotest.failf "missing %s" field)
          [ "ts"; "pid"; "tid" ];
        (match Rtfmt.Json.member "name" ev with
        | Rtfmt.Json.Str _ -> ()
        | _ -> Alcotest.fail "name is not a string");
        if ph = "X" then begin
          match Rtfmt.Json.member "dur" ev with
          | Rtfmt.Json.Int d ->
              check_bool "X event has non-negative dur" true (d >= 0)
          | _ -> Alcotest.fail "X event missing integer dur"
        end;
        ph)
      events
  in
  check_bool "only M/X/C phases" true
    (List.for_all (fun ph -> ph = "M" || ph = "X" || ph = "C") phases);
  check_bool "has a counter snapshot" true (List.mem "C" phases);
  (* the C event carries every glossary counter *)
  let c_event =
    List.find
      (fun ev -> Rtfmt.Json.member "ph" ev = Rtfmt.Json.Str "C")
      events
  in
  let args = Rtfmt.Json.member "args" c_event in
  List.iter
    (fun c ->
      let name = Rtlb_obs.Tracer.counter_name c in
      match Rtfmt.Json.member name args with
      | Rtfmt.Json.Int v ->
          check_int ("C event " ^ name) (counter tracer c) v
      | _ -> Alcotest.failf "counter %s missing from C event" name)
    Rtlb_obs.Tracer.all_counters

let trace_deterministic () =
  let once () =
    let tracer, _ = traced_run Rtlb.Paper_example.shared paper in
    (Rtlb_obs.Trace_event.to_string tracer, Rtlb_obs.Stats.of_tracer tracer)
  in
  let trace_a, stats_a = once () in
  let trace_b, stats_b = once () in
  check_string "fake-clock traces are byte-identical" trace_a trace_b;
  check_bool "fake-clock stats are identical" true (stats_a = stats_b)

(* ------------------------------------------------------------------ *)
(* Stats sink                                                          *)
(* ------------------------------------------------------------------ *)

let stats_aggregation () =
  let tracer = Rtlb_obs.Tracer.make ~clock:(Rtlb_obs.Clock.fake ()) () in
  Rtlb_obs.Tracer.with_span tracer "b" (fun () ->
      Rtlb_obs.Tracer.with_span tracer "a" ignore);
  Rtlb_obs.Tracer.with_span tracer "a" ignore;
  Rtlb_obs.Tracer.add tracer Rtlb_obs.Tracer.Theta_evals 7;
  let s = Rtlb_obs.Stats.of_tracer tracer in
  check_bool "span lines sorted by name" true
    (List.map (fun l -> l.Rtlb_obs.Stats.sl_name) s.Rtlb_obs.Stats.spans
    = [ "a"; "b" ]);
  let line name =
    List.find (fun l -> l.Rtlb_obs.Stats.sl_name = name) s.Rtlb_obs.Stats.spans
  in
  check_int "two spans named a" 2 (line "a").Rtlb_obs.Stats.sl_count;
  check_int "one span named b" 1 (line "b").Rtlb_obs.Stats.sl_count;
  check_bool "span_total_ns of a recorded name" true
    (Rtlb_obs.Stats.span_total_ns s "a" > 0L);
  check_bool "span_total_ns of an absent name" true
    (Rtlb_obs.Stats.span_total_ns s "zzz" = 0L);
  check_bool "every glossary counter present, glossary order" true
    (List.map fst s.Rtlb_obs.Stats.counters
    = List.map Rtlb_obs.Tracer.counter_name Rtlb_obs.Tracer.all_counters);
  check_int "counter value survives aggregation" 7
    (List.assoc "theta_evals" s.Rtlb_obs.Stats.counters);
  let rendered = Rtfmt.Stats_render.render s in
  List.iter
    (fun needle ->
      check_bool
        (Printf.sprintf "render mentions %S" needle)
        true
        (string_contains ~needle rendered))
    [ "-- spans --"; "-- counters --"; "theta_evals"; "7" ]

(* ------------------------------------------------------------------ *)
(* Null tracer and clocks                                              *)
(* ------------------------------------------------------------------ *)

let null_tracer_noop () =
  let t = Rtlb_obs.Tracer.null in
  check_bool "null is disabled" false (Rtlb_obs.Tracer.enabled t);
  check_int "with_span is transparent" 41
    (Rtlb_obs.Tracer.with_span t "x" (fun () -> 41));
  (try
     ignore
       (Rtlb_obs.Tracer.with_span t "x" (fun () ->
            if true then failwith "boom" else 0));
     Alcotest.fail "expected the exception to propagate"
   with Failure _ -> ());
  Rtlb_obs.Tracer.add t Rtlb_obs.Tracer.Theta_evals 5;
  Rtlb_obs.Tracer.record_chunk t ~items:3;
  check_int "null counters read 0" 0
    (counter t Rtlb_obs.Tracer.Theta_evals);
  check_bool "null records no events" true (Rtlb_obs.Tracer.events t = []);
  check_bool "null has no workers" true (Rtlb_obs.Tracer.worker_stats t = [])

let clocks () =
  let a = Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic in
  let b = Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic in
  check_bool "monotonic clock is positive" true (a > 0L);
  check_bool "monotonic clock never goes backwards" true (b >= a);
  check_bool "monotonic is not fake" false
    (Rtlb_obs.Clock.is_fake Rtlb_obs.Clock.monotonic);
  let fake = Rtlb_obs.Clock.fake ~start:100L ~step:10L () in
  check_bool "fake clock starts at start" true
    (Rtlb_obs.Clock.now_ns fake = 100L);
  check_bool "fake clock advances by step" true
    (Rtlb_obs.Clock.now_ns fake = 110L);
  check_bool "fake is fake" true (Rtlb_obs.Clock.is_fake fake)

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "counters match the scan plan (paper example)"
          `Quick counters_on_paper_example;
        Alcotest.test_case "traced run bit-identical (pooled, paper)" `Quick
          traced_identical_pooled;
        Alcotest.test_case "traced sensitivity sweep identical + spanned"
          `Quick traced_sensitivity_identical;
        Alcotest.test_case "spans well-nested (fake clock)" `Quick
          spans_well_nested;
        Alcotest.test_case "spans well-nested (real clock, pooled)" `Quick
          spans_well_nested_pooled;
        Alcotest.test_case "with_span records on exceptions" `Quick
          with_span_exception_safe;
        Alcotest.test_case "trace JSON schema (ph/ts/pid/tid on every event)"
          `Quick trace_json;
        Alcotest.test_case "fake-clock trace is deterministic" `Quick
          trace_deterministic;
        Alcotest.test_case "stats sink aggregation and rendering" `Quick
          stats_aggregation;
        Alcotest.test_case "null tracer is a no-op" `Quick null_tracer_noop;
        Alcotest.test_case "clocks: monotonic and fake" `Quick clocks;
        counters_prop;
        traced_identical_prop;
      ] );
  ]
