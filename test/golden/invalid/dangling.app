# edge to an undeclared task, and a processor the system lacks (E103)
task a compute=1 deadline=10 proc=P2
edge a ghost 0
shared P1=5
