# declared window smaller than the computation time (E102)
task a compute=7 release=2 deadline=8 proc=P
task b compute=1 deadline=10 proc=P
