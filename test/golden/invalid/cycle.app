# precedence cycle: a -> b -> c -> a (E101)
task a compute=1 deadline=10 proc=P
task b compute=1 deadline=10 proc=P
task c compute=1 deadline=10 proc=P
edge a b 0
edge b c 0
edge c a 0
