# periodic and one-shot tasks in the same file (E106)
task fast period=5 compute=1 proc=P
task once compute=1 deadline=10 proc=P
