# duplicate task name and duplicate edge (E105)
task a compute=1 deadline=10 proc=P
task b compute=1 deadline=10 proc=P
task a compute=2 deadline=10 proc=P
edge a b 0
edge a b 3
