# warnings only: milestone task and an unused priced resource — exit 0
task start compute=0 deadline=10 proc=P
task work compute=4 deadline=10 proc=P
edge start work 0
shared P=2 r9=3
