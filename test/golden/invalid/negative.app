# negative compute and negative message size (E104)
task a compute=-1 deadline=10 proc=P
task b compute=1 deadline=10 proc=P
edge a b -4
