# not an appfile directive at all (E100)
task a compute=1 deadline=10 proc=P
frobnicate the widgets
