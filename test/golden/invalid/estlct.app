# task-level windows fine; the Section 4 EST/LCT propagation squeezes
# both endpoints of the edge below their computation times (E102)
task a compute=5 deadline=20 proc=P
task b compute=5 deadline=9 proc=P
edge a b 0
