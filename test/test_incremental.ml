(* The incremental engine's contract is bit-identity: a query against a
   cached handle must equal a cold Analysis.run on the perturbed
   application in every observable field — windows (values, merge sets,
   traces), bounds (values, witnesses, partitions), cost and
   completeness.  The properties below drive random instances through
   random edit sequences, the sweep through random factor lists, and the
   budgeted path through an expired deadline, all against the cold
   reference; units pin the dirty-cone and cache counters. *)

open Helpers

let bound_equal (a : Rtlb.Lower_bound.bound) (b : Rtlb.Lower_bound.bound) =
  a.Rtlb.Lower_bound.resource = b.Rtlb.Lower_bound.resource
  && a.Rtlb.Lower_bound.lb = b.Rtlb.Lower_bound.lb
  && a.Rtlb.Lower_bound.witness = b.Rtlb.Lower_bound.witness
  && a.Rtlb.Lower_bound.partition = b.Rtlb.Lower_bound.partition

let windows_identical (a : Rtlb.Est_lct.t) (b : Rtlb.Est_lct.t) =
  a.Rtlb.Est_lct.est = b.Rtlb.Est_lct.est
  && a.Rtlb.Est_lct.lct = b.Rtlb.Est_lct.lct
  && a.Rtlb.Est_lct.est_merged = b.Rtlb.Est_lct.est_merged
  && a.Rtlb.Est_lct.lct_merged = b.Rtlb.Est_lct.lct_merged
  && a.Rtlb.Est_lct.est_trace = b.Rtlb.Est_lct.est_trace
  && a.Rtlb.Est_lct.lct_trace = b.Rtlb.Est_lct.lct_trace

let analyses_identical (a : Rtlb.Analysis.t) (b : Rtlb.Analysis.t) =
  List.length a.Rtlb.Analysis.bounds = List.length b.Rtlb.Analysis.bounds
  && List.for_all2 bound_equal a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds
  && windows_identical a.Rtlb.Analysis.windows b.Rtlb.Analysis.windows
  && a.Rtlb.Analysis.cost = b.Rtlb.Analysis.cost
  && a.Rtlb.Analysis.completeness = b.Rtlb.Analysis.completeness

(* One random well-formed edit against the current application state:
   choosing each edit valid for the app accumulated so far keeps the
   whole left-to-right [apply] fold well-formed. *)
let gen_edit st app =
  let n = Rtlb.App.n_tasks app in
  let i = Random.State.int st n in
  let t = Rtlb.App.task app i in
  let release = t.Rtlb.Task.release
  and deadline = t.Rtlb.Task.deadline
  and compute = t.Rtlb.Task.compute in
  match Random.State.int st 3 with
  | 0 ->
      Rtlb.Incremental.Set_deadline
        { task = i; deadline = release + compute + Random.State.int st 21 }
  | 1 ->
      Rtlb.Incremental.Set_release
        { task = i; release = Random.State.int st (deadline - compute + 1) }
  | _ ->
      Rtlb.Incremental.Set_compute
        { task = i; compute = Random.State.int st (deadline - release + 1) }

(* Random instances, random cumulative edit sequences: every query
   bit-identical to a cold run on the same perturbed application. *)
let edits_equal_cold =
  qtest ~count:100 "Incremental.query = cold Analysis.run under random edits"
    QCheck.(pair (arb_instance ~max_tasks:10 ()) small_int)
    (fun (i, salt) ->
      let system = shared_of i in
      let st = Random.State.make [| i.config.Workload.Gen.seed; salt |] in
      let handle = Rtlb.Incremental.create system i.app in
      assert (
        analyses_identical
          (Rtlb.Incremental.base handle)
          (Rtlb.Analysis.run system i.app));
      let rec go k edits =
        k = 0
        ||
        let edits = edits @ [ gen_edit st (Rtlb.Incremental.apply i.app edits) ] in
        let app' = Rtlb.Incremental.apply i.app edits in
        let q = Rtlb.Incremental.query handle app' in
        analyses_identical q (Rtlb.Analysis.run system app')
        && go (k - 1) edits
      in
      go (1 + (salt mod 4)) [])

(* The incremental sweep equals the per-factor cold sweep sample by
   sample (floats, bounds, costs, partial flags). *)
let sweep_equals_cold =
  let all_factors =
    [ 0.5; 0.77; 0.8; 0.9; 0.95; 1.0; 1.01; 1.1; 1.25; 1.5; 2.0; 3.3 ]
  in
  qtest ~count:60 "deadline_sweep = deadline_sweep_cold"
    QCheck.(pair (arb_instance ~max_tasks:10 ()) small_int)
    (fun (i, salt) ->
      let st = Random.State.make [| salt |] in
      let factors =
        List.filter (fun _ -> Random.State.bool st) all_factors
      in
      let factors = if factors = [] then [ 1.0 ] else factors in
      let system = shared_of i in
      Rtlb.Sensitivity.deadline_sweep system i.app ~factors
      = Rtlb.Sensitivity.deadline_sweep_cold system i.app ~factors)

(* A handle whose base ran under an expired budget has nothing cached;
   partial results must never poison later queries: an unbudgeted query
   on the same handle is still bit-identical to a cold run. *)
let partial_base_never_poisons () =
  let config =
    {
      Workload.Gen.default with
      Workload.Gen.shape = Workload.Gen.Layered { layers = 4; density = 0.5 };
      n_tasks = 18;
      seed = 7;
      resource_types = [ ("r1", 0.5) ];
    }
  in
  let app = Workload.Gen.generate config in
  let system = Workload.Gen.shared_system config in
  let expired = Int64.sub (Rtlb_par.Pool.now_ns ()) 1L in
  let handle = Rtlb.Incremental.create ~deadline_ns:expired system app in
  check_bool "expired base is partial" true
    (Rtlb.Analysis.is_partial (Rtlb.Incremental.base handle));
  check_int "expired base cached nothing" 0
    (Rtlb.Incremental.cached_blocks handle);
  let edits =
    [ Rtlb.Incremental.Set_deadline
        { task = 0; deadline = (Rtlb.App.task app 0).Rtlb.Task.deadline + 5 } ]
  in
  let app' = Rtlb.Incremental.apply app edits in
  let q1 = Rtlb.Incremental.query ~deadline_ns:expired handle app' in
  check_bool "budgeted query is partial" true (Rtlb.Analysis.is_partial q1);
  let q2 = Rtlb.Incremental.query handle app' in
  check_bool "unbudgeted query = cold run" true
    (analyses_identical q2 (Rtlb.Analysis.run system app'))

(* A chain 0 -> 1 -> 2 -> 3.  Editing the source's deadline dirties only
   the LCT of the source itself (its ancestor cone is a singleton), so
   the counter pins that zero EST recomputations happened; editing the
   sink's deadline dirties the whole ancestor chain. *)
let chain_app () =
  let task id deadline =
    Rtlb.Task.make ~id ~compute:2 ~deadline ~proc:"P1" ()
  in
  Rtlb.App.make
    ~tasks:[ task 0 10; task 1 20; task 2 30; task 3 40 ]
    ~edges:[ (0, 1, 1); (1, 2, 1); (2, 3, 1) ]

let cone_counter_pins_est_reuse () =
  let app = chain_app () in
  let system =
    Rtlb.System.shared_uniform ~resources:(Rtlb.App.resource_set app)
  in
  let handle = Rtlb.Incremental.create system app in
  let traced_cone edits =
    let tracer = Rtlb_obs.Tracer.make () in
    let analysis = Rtlb.Incremental.edit ~tracer handle edits in
    check_bool "edit = cold run" true
      (analyses_identical analysis
         (Rtlb.Analysis.run system
            (Rtlb.Incremental.apply app edits)));
    Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Cone_tasks
  in
  check_int "source deadline edit: 1 LCT recompute, 0 EST" 1
    (traced_cone [ Rtlb.Incremental.Set_deadline { task = 0; deadline = 12 } ]);
  check_int "sink deadline edit: whole ancestor chain" 4
    (traced_cone [ Rtlb.Incremental.Set_deadline { task = 3; deadline = 44 } ]);
  check_int "sink release edit: 1 EST recompute, 0 LCT" 1
    (traced_cone [ Rtlb.Incremental.Set_release { task = 3; release = 1 } ]);
  check_int "source compute edit: descendant EST cone plus itself" 5
    (traced_cone [ Rtlb.Incremental.Set_compute { task = 0; compute = 3 } ])

(* Re-issuing the same query must be served entirely from the cache: no
   Theta evaluations, only hits. *)
let repeat_query_hits_cache () =
  let config =
    { Workload.Gen.default with Workload.Gen.n_tasks = 12; seed = 11 }
  in
  let app = Workload.Gen.generate config in
  let system = Workload.Gen.shared_system config in
  let handle = Rtlb.Incremental.create system app in
  check_bool "base populated the cache" true
    (Rtlb.Incremental.cached_blocks handle > 0);
  let app' =
    Rtlb.Incremental.apply app
      [ Rtlb.Incremental.Set_deadline
          { task = 0; deadline = (Rtlb.App.task app 0).Rtlb.Task.deadline + 3 }
      ]
  in
  ignore (Rtlb.Incremental.query handle app');
  let tracer = Rtlb_obs.Tracer.make () in
  let q = Rtlb.Incremental.query ~tracer handle app' in
  check_int "repeat query scans nothing" 0
    (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Theta_evals);
  check_bool "repeat query reuses blocks" true
    (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Cache_hits > 0);
  check_bool "repeat query still = cold run" true
    (analyses_identical q (Rtlb.Analysis.run system app'))

let apply_validates () =
  let app = chain_app () in
  Alcotest.check_raises "task id out of range"
    (Invalid_argument "Incremental.apply: task 9 outside [0, 4)") (fun () ->
      ignore
        (Rtlb.Incremental.apply app
           [ Rtlb.Incremental.Set_deadline { task = 9; deadline = 5 } ]));
  check_bool "infeasible edit raises" true
    (match
       Rtlb.Incremental.apply app
         [ Rtlb.Incremental.Set_deadline { task = 0; deadline = 1 } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Queries that change anything beyond release/compute/deadline fall
   back to a cold run and still answer correctly. *)
let reshape_falls_back () =
  let app = chain_app () in
  let system =
    Rtlb.System.shared_uniform ~resources:(Rtlb.App.resource_set app)
  in
  let handle = Rtlb.Incremental.create system app in
  let reshaped =
    Rtlb.App.map_tasks app ~f:(fun t ->
        if t.Rtlb.Task.id = 1 then Rtlb.Task.with_preemptive t true else t)
  in
  check_bool "preemptability change answered via cold path" true
    (analyses_identical
       (Rtlb.Incremental.query handle reshaped)
       (Rtlb.Analysis.run system reshaped))

let suite =
  [
    ( "incremental",
      [
        edits_equal_cold;
        sweep_equals_cold;
        Alcotest.test_case "partial base never poisons the cache" `Quick
          partial_base_never_poisons;
        Alcotest.test_case "cone counter pins EST/LCT reuse" `Quick
          cone_counter_pins_est_reuse;
        Alcotest.test_case "repeated query served from cache" `Quick
          repeat_query_hits_cache;
        Alcotest.test_case "apply validates edits" `Quick apply_validates;
        Alcotest.test_case "reshaped query falls back to cold run" `Quick
          reshape_falls_back;
      ] );
  ]
