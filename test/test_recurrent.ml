(* Sporadic DAG model, baselines and the differential "sandwich":
   worked examples reproduced exactly, rfile round-trips, unroll-bridge
   invariants, and qcheck properties pinning
   [lower bound <= exact <= multi-path <= long-paths <= graham] plus the
   feasibility-test agreement directions against the exact scheduler and
   the preemptive EDF simulator. *)

open Helpers
open Recurrent

let vtx name w = { Model.v_name = name; v_wcet = w }

let chain name k w =
  Array.init k (fun i -> vtx (Printf.sprintf "%s%d" name i) w)

(* Two parallel chains of 5 unit vertices: the decomposition covers the
   whole DAG, so the long-paths schedule is exact while the single-path
   bound overcharges. *)
let two_chains =
  Model.dtask ~name:"two_chains" ~period:20
    ~vertices:(Array.append (chain "a" 5 1) (chain "b" 5 1))
    ~edges:
      (List.init 4 (fun i -> (i, i + 1))
      @ List.init 4 (fun i -> (5 + i, 5 + i + 1)))
    ()

(* Star: root(1) fanning out to 9 unit children. *)
let star =
  Model.dtask ~name:"star" ~period:20
    ~vertices:(Array.init 10 (fun i -> vtx (Printf.sprintf "s%d" i) 1))
    ~edges:(List.init 9 (fun i -> (0, i + 1)))
    ()

let worked_two_chains () =
  check_int "len" 5 (Model.len two_chains);
  check_int "vol" 10 (Model.vol two_chains);
  check_int "graham" 8 (Baselines.He_long_paths.graham ~m:2 two_chains);
  check_int "long-paths" 5 (Baselines.He_long_paths.bound ~m:2 two_chains);
  check_int "multi-path" 5 (Baselines.Multi_path.bound ~m:2 two_chains);
  check_int_list "paths" [ 5; 5 ]
    (Baselines.He_long_paths.paths ~m:2 two_chains);
  check_int "closed form" 5
    (Baselines.He_long_paths.value ~m:2 two_chains [ 5; 5 ])

let worked_star () =
  check_int "len" 2 (Model.len star);
  check_int "graham" 6 (Baselines.He_long_paths.graham ~m:2 star);
  check_int "long-paths" 6 (Baselines.He_long_paths.bound ~m:2 star);
  check_int "multi-path" 6 (Baselines.Multi_path.bound ~m:2 star);
  (* on one processor every bound degenerates to the volume *)
  check_int "m=1 graham" 10 (Baselines.He_long_paths.graham ~m:1 star);
  check_int "m=1 long-paths" 10 (Baselines.He_long_paths.bound ~m:1 star)

(* Bonifaci worked example: tau1 = 2-vertex unit chain, T=4, D=3;
   tau2 = 3 independent unit vertices, T=4, D=4; m=2.  Necessary
   conditions hold (U = 5/4), DM certifies both tasks (R = 2, 4) but the
   EDF test's symmetric interference pushes tau1 past its deadline. *)
let bonifaci_set =
  Model.make
    ~tasks:
      [
        Model.dtask ~name:"tau1" ~period:4 ~deadline:3
          ~vertices:(chain "c" 2 1) ~edges:[ (0, 1) ] ();
        Model.dtask ~name:"tau2" ~period:4
          ~vertices:(chain "p" 3 1) ~edges:[] ();
      ]

let worked_bonifaci () =
  check_bool "necessary" true (Baselines.Bonifaci.necessary ~m:2 bonifaci_set);
  check_bool "edf" false (Baselines.Bonifaci.edf_schedulable ~m:2 bonifaci_set);
  check_bool "dm" true (Baselines.Bonifaci.dm_schedulable ~m:2 bonifaci_set);
  Alcotest.(check (list (pair string (option int))))
    "edf bounds"
    [ ("tau1", None); ("tau2", Some 4) ]
    (Baselines.Bonifaci.edf_response_bounds ~m:2 bonifaci_set);
  Alcotest.(check (list (pair string (option int))))
    "dm bounds"
    [ ("tau1", Some 2); ("tau2", Some 4) ]
    (Baselines.Bonifaci.dm_response_bounds ~m:2 bonifaci_set);
  (* on one processor even the necessary conditions fail: U = 5/4 > 1 *)
  check_bool "m=1 necessary" false
    (Baselines.Bonifaci.necessary ~m:1 bonifaci_set)

let classify_cases () =
  check_string "implicit" "implicit" (Model.class_name (Model.classify star));
  let c =
    Model.dtask ~name:"c" ~period:10 ~deadline:7 ~vertices:(chain "v" 1 1)
      ~edges:[] ()
  in
  check_string "constrained" "constrained"
    (Model.class_name (Model.classify c));
  let a =
    Model.dtask ~name:"a" ~period:10 ~deadline:15 ~vertices:(chain "v" 1 1)
      ~edges:[] ()
  in
  check_string "arbitrary" "arbitrary" (Model.class_name (Model.classify a));
  check_string "taskset takes the worst" "arbitrary"
    (Model.class_name (Model.taskset_class (Model.make ~tasks:[ c; a ])));
  check_string "utilisation" "1/10"
    (Rat.to_string (Model.utilisation (Model.make ~tasks:[ c ])))

let model_rejects () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "cycle" (fun () ->
      Model.dtask ~name:"t" ~period:4 ~vertices:(chain "v" 2 1)
        ~edges:[ (0, 1); (1, 0) ] ());
  expect_invalid "wcet over deadline" (fun () ->
      Model.dtask ~name:"t" ~period:4 ~deadline:2 ~vertices:(chain "v" 1 3)
        ~edges:[] ());
  expect_invalid "duplicate vertex" (fun () ->
      Model.dtask ~name:"t" ~period:4
        ~vertices:[| vtx "v" 1; vtx "v" 1 |]
        ~edges:[] ());
  expect_invalid "self loop" (fun () ->
      Model.dtask ~name:"t" ~period:4 ~vertices:(chain "v" 1 1)
        ~edges:[ (0, 0) ] ());
  expect_invalid "duplicate task" (fun () ->
      Model.make
        ~tasks:
          [
            Model.dtask ~name:"t" ~period:4 ~vertices:(chain "v" 1 1)
              ~edges:[] ();
            Model.dtask ~name:"t" ~period:8 ~vertices:(chain "w" 1 1)
              ~edges:[] ();
          ])

(* ---- rfile ---- *)

let rfile_text =
  "# comment\n\
   task flow period=12 deadline=10 proc=P\n\
   vertex read 1\n\
   vertex filter 2\n\
   edge read filter\n\
   \n\
   task tick period=6\n\
   vertex poll 1\n"

let rfile_parse () =
  let m = Rfile.parse rfile_text in
  check_int "tasks" 2 (List.length m.Model.tasks);
  let flow = List.hd m.Model.tasks in
  check_string "name" "flow" flow.Model.dt_name;
  check_int "period" 12 flow.Model.dt_period;
  check_int "deadline" 10 flow.Model.dt_deadline;
  check_int "vol" 3 (Model.vol flow);
  check_int "len" 3 (Model.len flow);
  let tick = List.nth m.Model.tasks 1 in
  check_int "deadline defaults to period" 6 tick.Model.dt_deadline

let rfile_round_trip () =
  let m = Rfile.parse rfile_text in
  let m' = Rfile.parse (Rfile.to_string m) in
  check_string "canonical form is a fixpoint" (Rfile.to_string m)
    (Rfile.to_string m')

let rfile_errors () =
  let expect_line name line text =
    match Rfile.parse text with
    | exception Rfile.Parse_error (l, _) ->
        check_int (name ^ ": line") line l
    | _ -> Alcotest.fail (name ^ ": expected Parse_error")
  in
  expect_line "vertex before task" 1 "vertex v 1\n";
  expect_line "bad period" 2 "# c\ntask t period=0\nvertex v 1\n";
  expect_line "unknown edge endpoint" 4
    "task t period=4\nvertex a 1\nvertex b 1\nedge a missing\n";
  expect_line "cyclic task reported at its task line" 1
    "task t period=8\nvertex a 1\nvertex b 1\nedge a b\nedge b a\n";
  expect_line "empty task" 1 "task t period=4\n"

(* ---- unroll bridge ---- *)

let unroll_bridge () =
  let m = Rfile.parse rfile_text in
  check_int "hyperperiod" 12 (Unroll.hyperperiod m);
  check_int "horizon x3" 36 (Unroll.horizon ~cycles:3 m);
  (* flow: 2 vertices x 1 job; tick: 1 vertex x 2 jobs *)
  check_int "jobs" 4 (Unroll.job_count m);
  check_int "jobs x3" 12 (Unroll.job_count ~cycles:3 m);
  let app = Unroll.to_app m in
  check_int "app tasks = jobs" 4 (Rtlb.App.n_tasks app);
  (* job k of a vertex releases at k*T with absolute deadline k*T + D *)
  let by_name = Hashtbl.create 8 in
  for i = 0 to Rtlb.App.n_tasks app - 1 do
    let t = Rtlb.App.task app i in
    Hashtbl.replace by_name t.Rtlb.Task.name t
  done;
  let job name = Hashtbl.find by_name name in
  check_int "tick.poll@1 release" 6 (job "tick.poll@1").Rtlb.Task.release;
  check_int "tick.poll@1 deadline" 12 (job "tick.poll@1").Rtlb.Task.deadline;
  check_int "flow.read@0 deadline" 10 (job "flow.read@0").Rtlb.Task.deadline;
  (* the one-task app exposes exactly the task's DAG *)
  let ta = Unroll.task_app two_chains in
  check_int "task_app size" 10 (Rtlb.App.n_tasks ta);
  (match Sched.Makespan.minimum ta ~m:2 with
  | Some e -> check_int "two_chains exact" 5 e
  | None -> Alcotest.fail "exact search gave up on two_chains")

(* ---- qcheck: recurrent instances ---- *)

type rinstance = {
  rconfig : Workload.Recurrent_gen.config;
  rm : int;
  model : Model.t;
}

let rconfig_gen ~deadlines =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* tasks = int_range 1 3 in
  let* shape = oneofl shapes in
  let* vertices = int_range 2 8 in
  let* period_stretch = oneofl [ 1.0; 1.5; 2.0; 3.0 ] in
  let* deadline_model = oneofl deadlines in
  let* rm = int_range 1 4 in
  let rconfig =
    {
      Workload.Recurrent_gen.default with
      seed;
      tasks;
      shape;
      vertices;
      period_stretch;
      deadline_model;
    }
  in
  return { rconfig; rm; model = Workload.Recurrent_gen.generate rconfig }

let print_rinstance i =
  Printf.sprintf "seed=%d shape=%s tasks=%d vertices=%d stretch=%f m=%d\n%s"
    i.rconfig.Workload.Recurrent_gen.seed
    (Workload.Gen.shape_name i.rconfig.Workload.Recurrent_gen.shape)
    i.rconfig.Workload.Recurrent_gen.tasks
    i.rconfig.Workload.Recurrent_gen.vertices
    i.rconfig.Workload.Recurrent_gen.period_stretch i.rm
    (Rfile.to_string i.model)

let arb_rinstance ~deadlines =
  QCheck.make ~print:print_rinstance (fun st ->
      QCheck2.Gen.generate1 ~rand:st (rconfig_gen ~deadlines))

let all_deadlines =
  Workload.Recurrent_gen.
    [ Implicit; Constrained 0.8; Constrained 0.5; Arbitrary 1.5 ]

(* The differential sandwich, per task:
   [tb_omega <= exact <= multi-path <= long-paths <= graham].  The exact
   branch-and-bound search occasionally hits its node limit (None); the
   analytic legs are still checked then. *)
let sandwich system_name system i =
  List.for_all
    (fun dt ->
      let m = i.rm in
      let he = Baselines.He_long_paths.bound ~m dt in
      let mp = Baselines.Multi_path.bound ~m dt in
      let gr = Baselines.He_long_paths.graham ~m dt in
      if not (mp <= he && he <= gr) then
        QCheck.Test.fail_reportf "%s: analytic legs: mp=%d he=%d gr=%d"
          system_name mp he gr;
      let app = Unroll.task_app dt in
      match Sched.Makespan.minimum app ~m with
      | None -> true
      | Some exact ->
          let tb =
            match
              Rtlb.Time_bound.minimum_completion_time system app
                ~capacity:(fun _ -> m)
            with
            | Some t -> t.Rtlb.Time_bound.tb_omega
            | None -> 0
          in
          if not (tb <= exact && exact <= mp) then
            QCheck.Test.fail_reportf
              "%s: tb=%d exact=%d mp=%d he=%d gr=%d (task %s)" system_name tb
              exact mp he gr dt.Model.dt_name;
          true)
    i.model.Model.tasks

let shared_system = Rtlb.System.shared ~costs:[ ("P", 1) ]

let dedicated_system =
  Rtlb.System.dedicated [ Rtlb.System.node_type ~name:"N" ~proc:"P" () ]

(* Feasibility agreement: a concrete non-preemptive schedule of the
   unrolled hyperperiod refutes any "infeasible" verdict, and a positive
   EDF claim must survive the preemptive EDF simulator on the densest
   arrival sequence. *)
let feasibility_agreement i =
  let m = i.rm in
  let model = i.model in
  (match
     Sched.Search.backtracking_feasible (Unroll.to_app model)
       (Sched.Platform.shared ~procs:[ ("P", m) ] ~resources:[])
   with
  | Some _ when not (Baselines.Bonifaci.necessary ~m model) ->
      QCheck.Test.fail_reportf
        "exact schedule exists but necessary conditions fail (m=%d)" m
  | _ -> ());
  if Baselines.Bonifaci.edf_schedulable ~m model then begin
    if not (Baselines.Bonifaci.dm_schedulable ~m model) then
      QCheck.Test.fail_reportf "EDF test passed but DM test failed (m=%d)" m;
    if
      not
        (Sched.Preemptive.feasible
           (Unroll.to_app ~preemptive:true model)
           ~procs:[ ("P", m) ])
    then
      QCheck.Test.fail_reportf "EDF claim refuted by the simulator (m=%d)" m
  end;
  true

let round_trip i =
  let s = Rfile.to_string i.model in
  let m' = Rfile.parse s in
  if Rfile.to_string m' <> s then
    QCheck.Test.fail_reportf "rfile round-trip changed the model";
  (* unroll commutes with the round-trip *)
  if Unroll.job_count m' <> Unroll.job_count i.model then
    QCheck.Test.fail_reportf "round-trip changed the job count";
  true

let prop_tests =
  [
    qtest ~count:200 "sandwich holds (shared system)"
      (arb_rinstance ~deadlines:all_deadlines)
      (sandwich "shared" shared_system);
    qtest ~count:200 "sandwich holds (dedicated system)"
      (arb_rinstance ~deadlines:all_deadlines)
      (sandwich "dedicated" dedicated_system);
    qtest ~count:120 "feasibility tests agree with the schedulers"
      (arb_rinstance
         ~deadlines:
           Workload.Recurrent_gen.[ Implicit; Constrained 0.8 ])
      feasibility_agreement;
    qtest ~count:200 "rfile round-trip, unroll commutes"
      (arb_rinstance ~deadlines:all_deadlines)
      round_trip;
  ]

let suite =
  [
    ( "recurrent",
      [
        Alcotest.test_case "worked example: two chains" `Quick
          worked_two_chains;
        Alcotest.test_case "worked example: star" `Quick worked_star;
        Alcotest.test_case "worked example: bonifaci" `Quick worked_bonifaci;
        Alcotest.test_case "deadline classes" `Quick classify_cases;
        Alcotest.test_case "model validation" `Quick model_rejects;
        Alcotest.test_case "rfile parse" `Quick rfile_parse;
        Alcotest.test_case "rfile round-trip" `Quick rfile_round_trip;
        Alcotest.test_case "rfile errors" `Quick rfile_errors;
        Alcotest.test_case "unroll bridge" `Quick unroll_bridge;
      ]
      @ prop_tests );
  ]
