(* Tests for the parallel analysis engine: the Rtlb_par.Pool domain pool
   itself, the prefix-sum Theta kernel against the naive summation, and
   the headline guarantee that Analysis.run ?pool is bit-identical to the
   sequential analysis.

   Pools here are sized from RTLB_JOBS (the CI matrix runs the suite
   once with RTLB_JOBS=4) with a floor of 4 domains, so the parallel
   machinery is exercised even on a single-core runner. *)

open Helpers

let test_jobs = max 4 (Rtlb_par.Pool.default_jobs ())

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let pool_ordering () =
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let got = Rtlb_par.Pool.map_array ~pool (fun i -> (i * i) + 1) input in
          let want = Array.map (fun i -> (i * i) + 1) input in
          check_bool
            (Printf.sprintf "map_array of %d in input order" n)
            true (got = want))
        [ 0; 1; 2; 7; 64; 1000 ];
      let got = Rtlb_par.Pool.map_list ~pool string_of_int [ 3; 1; 2 ] in
      Alcotest.(check (list string)) "map_list order" [ "3"; "1"; "2" ] got)

let pool_uneven_work () =
  (* Work items of very different cost still land in their slots. *)
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      let spin k =
        let acc = ref 0 in
        for i = 1 to k * 1000 do
          acc := !acc + (i mod 7)
        done;
        !acc
      in
      let input = Array.init 50 (fun i -> if i mod 10 = 0 then 40 else 1) in
      let got = Rtlb_par.Pool.map_array ~pool spin input in
      let want = Array.map spin input in
      check_bool "uneven chunks keep ordering" true (got = want))

exception Boom of int

let pool_exception_propagation () =
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      (try
         ignore
           (Rtlb_par.Pool.map_array ~pool
              (fun i -> if i = 57 then raise (Boom i) else i)
              (Array.init 200 (fun i -> i)));
         Alcotest.fail "expected the body's exception to reach the submitter"
       with Boom 57 -> ());
      (* the pool survives a failed job *)
      let got =
        Rtlb_par.Pool.map_array ~pool (fun i -> i + 1) (Array.init 10 Fun.id)
      in
      check_bool "pool usable after exception" true
        (got = Array.init 10 (fun i -> i + 1)))

let pool_nested_submit () =
  (* A body that submits to the same pool must not deadlock: nested
     submits run inline on the calling domain. *)
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      let got =
        Rtlb_par.Pool.map_array ~pool
          (fun i ->
            let inner =
              Rtlb_par.Pool.map_array ~pool
                (fun j -> i + j)
                (Array.init 5 Fun.id)
            in
            Array.fold_left ( + ) 0 inner)
          (Array.init 20 Fun.id)
      in
      let want = Array.init 20 (fun i -> (5 * i) + 10) in
      check_bool "nested submits complete with correct results" true
        (got = want))

let pool_sequential_degenerate () =
  Rtlb_par.Pool.with_pool ~jobs:1 (fun pool ->
      let got =
        Rtlb_par.Pool.map_array ~pool (fun i -> i * 2) (Array.init 9 Fun.id)
      in
      check_bool "1-domain pool runs inline" true
        (got = Array.init 9 (fun i -> i * 2));
      check_int "size of 1-domain pool" 1 (Rtlb_par.Pool.size pool));
  let got = Rtlb_par.Pool.map_list string_of_int [ 1; 2 ] in
  Alcotest.(check (list string)) "no pool means List.map" [ "1"; "2" ] got

(* ------------------------------------------------------------------ *)
(* Theta kernel vs the naive summation                                 *)
(* ------------------------------------------------------------------ *)

let paper = Rtlb.Paper_example.app
let paper_windows = Rtlb.Est_lct.compute Rtlb.Paper_example.shared paper

let kernel_matches_naive_on_paper () =
  let est = paper_windows.Rtlb.Est_lct.est
  and lct = paper_windows.Rtlb.Est_lct.lct in
  List.iter
    (fun r ->
      let tasks = Rtlb.App.tasks_using paper r in
      let lo = List.fold_left (fun a i -> min a est.(i)) max_int tasks in
      let hi = List.fold_left (fun a i -> max a lct.(i)) min_int tasks in
      for t1 = lo to hi - 1 do
        let kernel =
          Rtlb.Lower_bound.Theta_kernel.make ~resource:r ~est ~lct paper tasks
            ~t1
        in
        for t2 = t1 + 1 to hi do
          check_int
            (Printf.sprintf "Theta(%s, %d, %d)" r t1 t2)
            (Rtlb.Lower_bound.theta ~resource:r ~est ~lct paper tasks ~t1 ~t2)
            (Rtlb.Lower_bound.Theta_kernel.eval kernel ~t2)
        done
      done)
    (Rtlb.App.resource_set paper)

let kernel_empty_tasks () =
  let est = paper_windows.Rtlb.Est_lct.est
  and lct = paper_windows.Rtlb.Est_lct.lct in
  (* empty ST_r: the kernel must evaluate to zero demand everywhere *)
  let kernel =
    Rtlb.Lower_bound.Theta_kernel.make ~resource:"bogus" ~est ~lct paper []
      ~t1:0
  in
  List.iter
    (fun t2 ->
      check_int
        (Printf.sprintf "empty ST_r Theta(0, %d) = 0" t2)
        0
        (Rtlb.Lower_bound.Theta_kernel.eval kernel ~t2))
    [ 1; 5; 36; 1000 ]

let kernel_zero_length_windows () =
  (* A milestone task (C = 0) and a task whose window has zero length
     (E = release, L = release + 0 slack with C = 0) contribute nothing;
     an infeasible window (E + C > L) still has a well-defined Theorem 4
     overlap, which the mu gate cuts short — the kernel must agree. *)
  let tasks =
    [
      Rtlb.Task.make ~id:0 ~compute:0 ~release:5 ~deadline:5 ~proc:"P" ();
      Rtlb.Task.make ~id:1 ~compute:4 ~release:2 ~deadline:6 ~proc:"P" ();
      Rtlb.Task.make ~id:2 ~compute:3 ~release:0 ~deadline:10 ~proc:"P"
        ~preemptive:true ();
    ]
  in
  let app = Rtlb.App.make ~tasks ~edges:[] in
  (* task 1's window is squeezed below its computation time (E=2, L=5,
     C=4) — legal for the raw est/lct arrays even though the task model
     would reject such a deadline *)
  let est = [| 5; 2; 0 |] and lct = [| 5; 5; 10 |] in
  let ids = [ 0; 1; 2 ] in
  for t1 = 0 to 9 do
    let kernel = Rtlb.Lower_bound.Theta_kernel.make ~est ~lct app ids ~t1 in
    for t2 = t1 + 1 to 10 do
      check_int
        (Printf.sprintf "edge-case Theta(%d, %d)" t1 t2)
        (Rtlb.Lower_bound.theta ~est ~lct app ids ~t1 ~t2)
        (Rtlb.Lower_bound.Theta_kernel.eval kernel ~t2)
    done
  done

let kernel_prop =
  qtest ~count:300 "Theta kernel = naive theta on random instances"
    (arb_instance ~max_tasks:14 ()) (fun i ->
      let system = shared_of i in
      let w = Rtlb.Est_lct.compute system i.app in
      let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
      List.for_all
        (fun r ->
          let tasks = Rtlb.App.tasks_using i.app r in
          let lo = List.fold_left (fun a t -> min a est.(t)) max_int tasks in
          let hi = List.fold_left (fun a t -> max a lct.(t)) min_int tasks in
          tasks = [] || hi <= lo
          || List.for_all
               (fun t1 ->
                 let kernel =
                   Rtlb.Lower_bound.Theta_kernel.make ~resource:r ~est ~lct
                     i.app tasks ~t1
                 in
                 List.for_all
                   (fun t2 ->
                     t2 <= t1
                     || Rtlb.Lower_bound.Theta_kernel.eval kernel ~t2
                        = Rtlb.Lower_bound.theta ~resource:r ~est ~lct i.app
                            tasks ~t1 ~t2)
                   [ t1 + 1; t1 + 2; (t1 + hi + 1) / 2; hi - 1; hi; hi + 3 ])
               [ lo; lo + 1; (lo + hi) / 2; hi - 1 ])
        (Rtlb.App.resource_set i.app))

(* ------------------------------------------------------------------ *)
(* Parallel analysis = sequential analysis                             *)
(* ------------------------------------------------------------------ *)

let bound_equal (a : Rtlb.Lower_bound.bound) (b : Rtlb.Lower_bound.bound) =
  a.Rtlb.Lower_bound.resource = b.Rtlb.Lower_bound.resource
  && a.Rtlb.Lower_bound.lb = b.Rtlb.Lower_bound.lb
  && a.Rtlb.Lower_bound.witness = b.Rtlb.Lower_bound.witness
  && a.Rtlb.Lower_bound.partition = b.Rtlb.Lower_bound.partition

let analyses_identical (a : Rtlb.Analysis.t) (b : Rtlb.Analysis.t) =
  List.length a.Rtlb.Analysis.bounds = List.length b.Rtlb.Analysis.bounds
  && List.for_all2 bound_equal a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds
  && a.Rtlb.Analysis.windows.Rtlb.Est_lct.est
     = b.Rtlb.Analysis.windows.Rtlb.Est_lct.est
  && a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
     = b.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
  && a.Rtlb.Analysis.cost = b.Rtlb.Analysis.cost

(* Every generator shape, 10 seeds each: 100 applications. *)
let all_shapes =
  [
    Workload.Gen.Layered { layers = 4; density = 0.4 };
    Workload.Gen.Series_parallel;
    Workload.Gen.Fork_join { width = 4 };
    Workload.Gen.Out_tree;
    Workload.Gen.In_tree;
    Workload.Gen.Gauss { size = 4 };
    Workload.Gen.Fft { points = 8 };
    Workload.Gen.Stencil { rows = 3; cols = 4 };
    Workload.Gen.Chain;
    Workload.Gen.Independent;
  ]

let parallel_equals_sequential_all_shapes () =
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      List.iter
        (fun shape ->
          for seed = 1 to 10 do
            let config =
              {
                Workload.Gen.default with
                Workload.Gen.shape;
                seed;
                n_tasks = 12 + (seed mod 3);
                ccr = (if seed mod 2 = 0 then 0.5 else 2.0);
                laxity = (if seed mod 3 = 0 then 1.0 else 1.4);
                resource_types = [ ("r1", 0.4) ];
                preemptive_fraction = (if seed mod 4 = 0 then 0.5 else 0.0);
              }
            in
            let app = Workload.Gen.generate config in
            let system = Workload.Gen.shared_system config in
            let seq = Rtlb.Analysis.run system app in
            let par = Rtlb.Analysis.run ~pool system app in
            check_bool
              (Printf.sprintf "parallel = sequential (%s, seed %d)"
                 (Workload.Gen.shape_name shape)
                 seed)
              true
              (analyses_identical seq par)
          done)
        all_shapes)

let parallel_prop =
  qtest ~count:100 "Analysis.run ?pool bit-identical on random instances"
    (arb_instance ~max_tasks:14 ()) (fun i ->
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          let seq = Rtlb.Analysis.run (shared_of i) i.app in
          let par = Rtlb.Analysis.run ~pool (shared_of i) i.app in
          analyses_identical seq par))

let parallel_sensitivity () =
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      let factors = [ 0.8; 0.9; 1.0; 1.25; 1.5; 2.0 ] in
      let seq =
        Rtlb.Sensitivity.deadline_sweep Rtlb.Paper_example.shared paper ~factors
      in
      let par =
        Rtlb.Sensitivity.deadline_sweep ~pool Rtlb.Paper_example.shared paper
          ~factors
      in
      check_bool "parallel sweep = sequential sweep" true (seq = par))

(* ------------------------------------------------------------------ *)
(* Fault injection and graceful degradation                            *)
(* ------------------------------------------------------------------ *)

let with_injection f =
  Rtlb_par.Pool.For_testing.reset ();
  Fun.protect ~finally:Rtlb_par.Pool.For_testing.reset f

let pool_spawn_failure_shrinks () =
  with_injection (fun () ->
      Rtlb_par.Pool.For_testing.fail_spawns := 2;
      Rtlb_par.Pool.with_pool ~jobs:4 (fun pool ->
          check_int "pool kept the workers it got" 2 (Rtlb_par.Pool.size pool);
          let got =
            Rtlb_par.Pool.map_array ~pool (fun i -> i * 3)
              (Array.init 100 Fun.id)
          in
          check_bool "shrunk pool still correct" true
            (got = Array.init 100 (fun i -> i * 3))))

let pool_spawn_all_fail () =
  with_injection (fun () ->
      Rtlb_par.Pool.For_testing.fail_spawns := 64;
      Rtlb_par.Pool.with_pool ~jobs:8 (fun pool ->
          check_int "all spawns failed: sequential pool" 1
            (Rtlb_par.Pool.size pool);
          let got =
            Rtlb_par.Pool.map_array ~pool (fun i -> i + 7)
              (Array.init 20 Fun.id)
          in
          check_bool "sequential fallback correct" true
            (got = Array.init 20 (fun i -> i + 7))))

let pool_inject_raise () =
  with_injection (fun () ->
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          Rtlb_par.Pool.For_testing.inject :=
            Some (fun i -> if i = 57 then raise (Boom i));
          (try
             ignore
               (Rtlb_par.Pool.map_array ~pool Fun.id (Array.init 200 Fun.id));
             Alcotest.fail "expected the injected exception to propagate"
           with Boom 57 -> ());
          Rtlb_par.Pool.For_testing.inject := None;
          let got =
            Rtlb_par.Pool.map_array ~pool (fun i -> i + 1)
              (Array.init 10 Fun.id)
          in
          check_bool "pool survives an injected worker fault" true
            (got = Array.init 10 (fun i -> i + 1))))

let pool_inject_delay () =
  with_injection (fun () ->
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          Rtlb_par.Pool.For_testing.inject :=
            Some
              (fun _ ->
                for k = 0 to 5_000 do
                  ignore (Sys.opaque_identity k)
                done);
          let got =
            Rtlb_par.Pool.map_array ~pool (fun i -> i * i)
              (Array.init 64 Fun.id)
          in
          check_bool "slowed workers still produce correct results" true
            (got = Array.init 64 (fun i -> i * i))))

let pool_concurrent_failures () =
  (* Two bodies raise in the same job: the first failure is the one
     re-raised, the second must not be silently dropped — it is counted
     in [Worker_failures] and in the [Worker_errors] counter.  A barrier
     holds both raising bodies until both have been claimed, so the
     failures are genuinely concurrent (neither is skipped by the
     post-failure drain). *)
  with_injection (fun () ->
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          let total = 200 in
          let arrived = Atomic.make 0 in
          Rtlb_par.Pool.For_testing.inject :=
            Some
              (fun i ->
                if i = 0 || i = total - 1 then begin
                  Atomic.incr arrived;
                  while Atomic.get arrived < 2 do
                    Domain.cpu_relax ()
                  done;
                  raise (Boom i)
                end);
          let tracer = Rtlb_obs.Tracer.make () in
          (try
             ignore
               (Rtlb_par.Pool.run ~tracer pool ~total (fun _ -> ()));
             Alcotest.fail "expected Worker_failures"
           with
          | Rtlb_par.Pool.Worker_failures (Boom _, 1) as e ->
              check_bool "message mentions the suppressed failure" true
                (string_contains ~needle:"suppressed" (Printexc.to_string e)));
          check_int "both failures hit the Worker_errors counter" 2
            (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Worker_errors);
          Rtlb_par.Pool.For_testing.inject := None;
          let got =
            Rtlb_par.Pool.map_array ~pool (fun i -> i + 1)
              (Array.init 8 Fun.id)
          in
          check_bool "pool usable after concurrent failures" true
            (got = Array.init 8 (fun i -> i + 1))))

let pool_heal_after_worker_abort () =
  (* Worker_abort kills the executing domain mid-run; [dead_workers]
     reports the casualty, [heal] joins and respawns it, and the pool is
     fully usable afterwards.  Whether a worker or the submitting domain
     executes the aborting body is scheduling-dependent (the submitter
     never dies), so the assertions tie [heal] to the observed death
     count instead of pinning it. *)
  with_injection (fun () ->
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          let before = Rtlb_par.Pool.size pool in
          Rtlb_par.Pool.For_testing.inject :=
            Some (fun i -> if i = 31 then raise Rtlb_par.Pool.Worker_abort);
          (try
             ignore
               (Rtlb_par.Pool.map_array ~pool Fun.id (Array.init 64 Fun.id));
             Alcotest.fail "expected Worker_abort to reach the submitter"
           with
          | Rtlb_par.Pool.Worker_abort
          | Rtlb_par.Pool.Worker_failures (Rtlb_par.Pool.Worker_abort, _) ->
              ());
          Rtlb_par.Pool.For_testing.inject := None;
          let dead = Rtlb_par.Pool.dead_workers pool in
          check_bool "at most one casualty" true (dead <= 1);
          check_int "size reflects the death" (before - dead)
            (Rtlb_par.Pool.size pool);
          let healed = Rtlb_par.Pool.heal pool in
          check_int "heal respawns exactly the casualties" dead healed;
          check_int "size restored" before (Rtlb_par.Pool.size pool);
          check_int "no dead workers left" 0
            (Rtlb_par.Pool.dead_workers pool);
          let got =
            Rtlb_par.Pool.map_array ~pool (fun i -> i * 2)
              (Array.init 100 Fun.id)
          in
          check_bool "pool correct after heal" true
            (got = Array.init 100 (fun i -> i * 2))))

let pool_cancel_flag () =
  (* The process-wide cancel flag turns cancellable runs into `Partial
     without executing further bodies; map_array (all-Some invariant)
     and ~cancellable:false runs are immune; reset_cancel restores
     normal operation. *)
  Fun.protect ~finally:Rtlb_par.Pool.reset_cancel (fun () ->
      Rtlb_par.Pool.request_cancel ();
      check_bool "flag visible" true (Rtlb_par.Pool.cancel_requested ());
      let out, status =
        Rtlb_par.Pool.map_array_partial Fun.id (Array.init 20 Fun.id)
      in
      check_bool "cancelled run is `Partial" true (status = `Partial);
      check_bool "cancelled run executed nothing" true
        (Array.for_all (( = ) None) out);
      let got =
        Rtlb_par.Pool.map_array (fun i -> i + 1) (Array.init 20 Fun.id)
      in
      check_bool "map_array immune to the cancel flag" true
        (got = Array.init 20 (fun i -> i + 1));
      let out2, st2 =
        Rtlb_par.Pool.map_array_partial ~cancellable:false Fun.id
          (Array.init 20 Fun.id)
      in
      check_bool "~cancellable:false run completes" true
        (st2 = `Done && Array.for_all Option.is_some out2);
      Rtlb_par.Pool.reset_cancel ();
      let _, st3 = Rtlb_par.Pool.map_array_partial Fun.id (Array.init 5 Fun.id) in
      check_bool "reset_cancel restores `Done" true (st3 = `Done);
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          Rtlb_par.Pool.request_cancel ();
          let _, st =
            Rtlb_par.Pool.map_array_partial ~pool Fun.id
              (Array.init 50 Fun.id)
          in
          check_bool "pooled cancelled run is `Partial" true (st = `Partial);
          Rtlb_par.Pool.reset_cancel ()))

(* ------------------------------------------------------------------ *)
(* Worker-utilization accounting under faults                          *)
(*                                                                     *)
(* The tracer's per-worker chunk table must stay consistent with what  *)
(* actually executed, whatever goes wrong: the per-worker item totals  *)
(* count exactly the bodies that ran to completion (= the [Some] slots *)
(* of map_array_partial), and [Chunks_claimed] equals the sum of the   *)
(* per-worker chunk counts.  No chunk is lost or double-counted.       *)
(* ------------------------------------------------------------------ *)

let worker_sums tracer =
  List.fold_left
    (fun (chunks, items) (_, c, i) -> (chunks + c, items + i))
    (0, 0)
    (Rtlb_obs.Tracer.worker_stats tracer)

let check_chunk_accounting label tracer ~executed =
  let chunks, items = worker_sums tracer in
  check_int (label ^ ": worker items = executed bodies") executed items;
  check_int
    (label ^ ": Chunks_claimed = sum of worker chunks")
    (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Chunks_claimed)
    chunks

let some_count out = Array.fold_left (fun a -> function Some _ -> a + 1 | None -> a) 0 out

let traced_counters_under_spawn_failure () =
  with_injection (fun () ->
      Rtlb_par.Pool.For_testing.fail_spawns := 64;
      Rtlb_par.Pool.with_pool ~jobs:8 (fun pool ->
          let tracer = Rtlb_obs.Tracer.make () in
          let out, status =
            Rtlb_par.Pool.map_array_partial ~pool ~tracer
              (fun i -> i * 2)
              (Array.init 100 Fun.id)
          in
          check_bool "degraded pool completes" true (status = `Done);
          check_int "every body ran" 100 (some_count out);
          check_chunk_accounting "spawn failure" tracer ~executed:100;
          check_int "no cancellations" 0
            (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Deadline_cancels)))

let traced_counters_under_worker_raise () =
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      let tracer = Rtlb_obs.Tracer.make () in
      let out = Array.make 200 false in
      (try
         ignore
           (Rtlb_par.Pool.run ~tracer pool ~total:200 (fun i ->
                if i = 57 then raise (Boom i);
                out.(i) <- true));
         Alcotest.fail "expected the body's exception to propagate"
       with Boom 57 -> ());
      let executed =
        Array.fold_left (fun a ran -> if ran then a + 1 else a) 0 out
      in
      (* the raising body itself is not credited as an executed item *)
      check_chunk_accounting "worker raise" tracer ~executed;
      check_bool "failed job does not count as a deadline cancel" true
        (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Deadline_cancels = 0))

let traced_counters_expired_budget () =
  let input = Array.init 50 Fun.id in
  let check_path label pool =
    let tracer = Rtlb_obs.Tracer.make () in
    let out, status =
      Rtlb_par.Pool.map_array_partial ?pool ~tracer
        ~deadline_ns:(Rtlb_par.Pool.now_ns ())
        Fun.id input
    in
    check_bool (label ^ ": expired budget is `Partial") true
      (status = `Partial);
    check_chunk_accounting label tracer ~executed:(some_count out);
    check_int (label ^ ": exactly one cancellation") 1
      (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Deadline_cancels)
  in
  check_path "inline" None;
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      check_path "pooled" (Some pool))

let traced_counters_midrun_deadline () =
  (* Delay every body so a short budget expires mid-run: however many
     chunks the race lets through, the accounting must balance. *)
  with_injection (fun () ->
      Rtlb_par.Pool.For_testing.inject :=
        Some
          (fun _ ->
            for k = 0 to 20_000 do
              ignore (Sys.opaque_identity k)
            done);
      Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
          let tracer = Rtlb_obs.Tracer.make () in
          let out, status =
            Rtlb_par.Pool.map_array_partial ~pool ~tracer
              ~deadline_ns:(Int64.add (Rtlb_par.Pool.now_ns ()) 2_000_000L)
              Fun.id
              (Array.init 512 Fun.id)
          in
          check_chunk_accounting "mid-run deadline" tracer
            ~executed:(some_count out);
          if status = `Partial then
            check_bool "partial run recorded a cancellation" true
              (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Deadline_cancels
              >= 1)))

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                            *)
(* ------------------------------------------------------------------ *)

let far_deadline () =
  Int64.add (Rtlb_par.Pool.now_ns ()) 60_000_000_000L (* now + 60 s *)

let deadline_expired_is_partial () =
  let input = Array.init 50 Fun.id in
  let check_path label pool =
    let out, status =
      Rtlb_par.Pool.map_array_partial ?pool
        ~deadline_ns:(Rtlb_par.Pool.now_ns ())
        (fun i -> i)
        input
    in
    check_bool (label ^ ": expired budget reports `Partial") true
      (status = `Partial);
    check_bool (label ^ ": nothing executed") true
      (Array.for_all (( = ) None) out)
  in
  check_path "inline" None;
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      check_path "pooled" (Some pool));
  let _, status =
    Rtlb_par.Pool.map_array_partial ~deadline_ns:(Rtlb_par.Pool.now_ns ())
      Fun.id [||]
  in
  check_bool "empty input is `Done even past the deadline" true
    (status = `Done)

let generous_deadline_is_done () =
  let input = Array.init 200 Fun.id in
  let want = Array.map (fun i -> Some (i * 2)) input in
  let check_path label pool =
    let out, status =
      Rtlb_par.Pool.map_array_partial ?pool ~deadline_ns:(far_deadline ())
        (fun i -> i * 2)
        input
    in
    check_bool (label ^ ": generous budget completes") true (status = `Done);
    check_bool (label ^ ": results identical to map_array") true (out = want)
  in
  check_path "inline" None;
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      check_path "pooled" (Some pool))

let analysis_budget_expired () =
  let run ?pool () =
    Rtlb.Analysis.run ?pool ~deadline_ns:(Rtlb_par.Pool.now_ns ())
      Rtlb.Paper_example.shared paper
  in
  let check_analysis label (a : Rtlb.Analysis.t) =
    check_bool (label ^ ": partial") true (Rtlb.Analysis.is_partial a);
    check_bool (label ^ ": coverage 0") true (Rtlb.Analysis.coverage a = 0.0);
    List.iter
      (fun (b : Rtlb.Lower_bound.bound) ->
        check_int
          (Printf.sprintf "%s: LB_%s trivial" label b.Rtlb.Lower_bound.resource)
          0 b.Rtlb.Lower_bound.lb;
        check_bool (label ^ ": no fabricated witness") true
          (b.Rtlb.Lower_bound.witness = None))
      a.Rtlb.Analysis.bounds
  in
  check_analysis "sequential" (run ());
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      check_analysis "pooled" (run ~pool ()))

let analysis_budget_generous_bit_identical () =
  let baseline = Rtlb.Analysis.run Rtlb.Paper_example.shared paper in
  let seq =
    Rtlb.Analysis.run ~deadline_ns:(far_deadline ()) Rtlb.Paper_example.shared
      paper
  in
  check_bool "generous budget is `Complete" false (Rtlb.Analysis.is_partial seq);
  check_bool "generous budget bit-identical (sequential)" true
    (analyses_identical baseline seq);
  Rtlb_par.Pool.with_pool ~jobs:test_jobs (fun pool ->
      let par =
        Rtlb.Analysis.run ~pool ~deadline_ns:(far_deadline ())
          Rtlb.Paper_example.shared paper
      in
      check_bool "generous budget bit-identical (pooled)" true
        (analyses_identical baseline par))

let sensitivity_budget_expired () =
  let samples =
    Rtlb.Sensitivity.deadline_sweep
      ~deadline_ns:(Rtlb_par.Pool.now_ns ())
      Rtlb.Paper_example.shared paper ~factors:[ 1.0; 2.0 ]
  in
  check_bool "every sample flagged partial" true
    (List.for_all (fun s -> s.Rtlb.Sensitivity.s_partial) samples)

(* Chunk boundaries align to cache-line-sized packed-array slices:
   1000 items on 4 domains gives a raw chunk of 63, rounded up to 64
   (8 ints x 8 bytes = one 64-byte line), hence exactly 16 claims. *)
let chunk_cache_line_alignment () =
  Rtlb_par.Pool.with_pool ~jobs:4 (fun pool ->
      if Rtlb_par.Pool.size pool = 4 then begin
        let tracer = Rtlb_obs.Tracer.make () in
        let hits = Atomic.make 0 in
        let status =
          Rtlb_par.Pool.run ~tracer pool ~total:1000 (fun _ ->
              Atomic.incr hits)
        in
        check_bool "run completed" true (status = `Done);
        check_int "all bodies ran" 1000 (Atomic.get hits);
        check_int "aligned chunk count" 16
          (Rtlb_obs.Tracer.counter tracer Rtlb_obs.Tracer.Chunks_claimed)
      end)

let parallel_paper_example () =
  Rtlb_par.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun system ->
          let seq = Rtlb.Analysis.run system paper in
          let par = Rtlb.Analysis.run ~pool system paper in
          check_bool "paper example identical on a 4-domain pool" true
            (analyses_identical seq par))
        [ Rtlb.Paper_example.shared; Rtlb.Paper_example.dedicated ])

let suite =
  [
    ( "par",
      [
        Alcotest.test_case "pool preserves input order" `Quick pool_ordering;
        Alcotest.test_case "pool balances uneven work" `Quick pool_uneven_work;
        Alcotest.test_case "pool propagates exceptions" `Quick
          pool_exception_propagation;
        Alcotest.test_case "pool nested submit is safe" `Quick
          pool_nested_submit;
        Alcotest.test_case "pool sequential degenerate" `Quick
          pool_sequential_degenerate;
        Alcotest.test_case "pool shrinks on spawn failure" `Quick
          pool_spawn_failure_shrinks;
        Alcotest.test_case "pool degrades to sequential when no spawn works"
          `Quick pool_spawn_all_fail;
        Alcotest.test_case "pool propagates injected worker faults" `Quick
          pool_inject_raise;
        Alcotest.test_case "pool correct under injected delays" `Quick
          pool_inject_delay;
        Alcotest.test_case "pool reports concurrent worker failures" `Quick
          pool_concurrent_failures;
        Alcotest.test_case "pool heals after a worker death" `Quick
          pool_heal_after_worker_abort;
        Alcotest.test_case "cancel flag: partial maps, reset" `Quick
          pool_cancel_flag;
        Alcotest.test_case "traced chunk accounting under spawn failure"
          `Quick traced_counters_under_spawn_failure;
        Alcotest.test_case "traced chunk accounting under a worker raise"
          `Quick traced_counters_under_worker_raise;
        Alcotest.test_case "chunk boundaries align to cache lines" `Quick
          chunk_cache_line_alignment;
        Alcotest.test_case "traced chunk accounting: expired budget" `Quick
          traced_counters_expired_budget;
        Alcotest.test_case "traced chunk accounting: mid-run deadline" `Quick
          traced_counters_midrun_deadline;
        Alcotest.test_case "expired deadline yields `Partial" `Quick
          deadline_expired_is_partial;
        Alcotest.test_case "generous deadline yields `Done, identical" `Quick
          generous_deadline_is_done;
        Alcotest.test_case "anytime analysis: expired budget" `Quick
          analysis_budget_expired;
        Alcotest.test_case "anytime analysis: generous budget bit-identical"
          `Quick analysis_budget_generous_bit_identical;
        Alcotest.test_case "anytime sensitivity flags partial samples" `Quick
          sensitivity_budget_expired;
        Alcotest.test_case "kernel = naive theta (paper, exhaustive)" `Quick
          kernel_matches_naive_on_paper;
        Alcotest.test_case "kernel on empty ST_r" `Quick kernel_empty_tasks;
        Alcotest.test_case "kernel on zero-length/infeasible windows" `Quick
          kernel_zero_length_windows;
        Alcotest.test_case "parallel analysis, paper example" `Quick
          parallel_paper_example;
        Alcotest.test_case "parallel = sequential on 100 generated apps"
          `Quick parallel_equals_sequential_all_shapes;
        Alcotest.test_case "parallel sensitivity sweep" `Quick
          parallel_sensitivity;
        kernel_prop;
        parallel_prop;
      ] );
  ]
