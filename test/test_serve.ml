(* Serve-daemon suite: protocol strictness, the warm-handle LRU's
   checkout/checkin discipline, admission control (overload + drain
   refusals), per-request deadline budgets, request isolation, and the
   acceptance storm — 8 concurrent clients replaying a seeded
   server-side chaos plan (malformed frames, mid-request worker kills,
   slow clients, transient raises) against one daemon, asserting the
   daemon survives with zero incorrect answers: every successful reply
   is bit-identical to the one-shot encoders the CLI uses, every
   failure is a structured S3xx error. *)

open Helpers
module Json = Rtfmt.Json
module Server = Rtlb_serve.Server
module Protocol = Rtlb_serve.Protocol
module Cache = Rtlb_serve.Cache
module Chaos = Rtlb_par.Chaos
module Tracer = Rtlb_obs.Tracer

let paper = Rtlb.Paper_example.app
let paper_text = Rtfmt.Appfile.to_string paper

(* Serve resolves a file with no system line to the uniform shared
   model — the reference computations below must do the same. *)
let uniform app =
  Rtlb.System.shared_uniform ~resources:(Rtlb.App.resource_set app)

let with_chaos plan f =
  Chaos.arm plan;
  Fun.protect ~finally:Chaos.disarm f

(* Fresh tracer per server: the counters the stats op snapshots must
   not leak across test cases. *)
let quick_config () =
  {
    Server.default_config with
    Server.jobs = 2;
    workers = 2;
    tracer = Tracer.make ();
  }

let with_server ?config f =
  let config = match config with Some c -> c | None -> quick_config () in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> f t)

(* Submit one frame and block until its reply arrives (replies may come
   from a worker thread). *)
let request t line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit t line (fun reply ->
      Mutex.lock m;
      slot := Some reply;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Json.parse (Option.get !slot)

let frame fields = Protocol.to_line (Json.Obj fields)

let error_code reply =
  match Json.member "code" (Json.member "error" reply) with
  | Json.Str c -> c
  | _ -> "?"

let is_ok reply = Json.member "ok" reply = Json.Bool true
let result_line reply = Protocol.to_line (Json.member "result" reply)

(* ------------------------------------------------------------------ *)
(* Protocol strictness                                                 *)
(* ------------------------------------------------------------------ *)

let protocol_strict () =
  let reject line needle =
    match Protocol.request_of_json (Json.parse line) with
    | Ok _ -> Alcotest.failf "expected %s to be rejected" line
    | Error m ->
        check_bool
          (Printf.sprintf "error for %s mentions %S (got %S)" line needle m)
          true
          (string_contains ~needle m)
  in
  reject {|{"op": "analyze"}|} "app";
  reject {|{"op": "fly", "app": ""}|} "unknown op";
  reject {|{"op": "analyze", "app": "", "surprise": 1}|} "surprise";
  reject {|{"op": "analyze", "app": "", "engine": "simd"}|} "simd";
  reject {|{"op": "analyze", "app": "", "deadline_ms": -1}|} "deadline_ms";
  reject {|{"op": "whatif", "app": ""}|} "edits";
  reject {|{"op": "whatif", "app": "", "edits": []}|} "empty";
  reject {|{"op": "whatif", "app": "", "edits": [{"task": 0}]}|} "one of";
  reject {|{"op": "sensitivity", "app": "", "factors": ["zero"]}|} "factor";
  reject {|{"op": "sensitivity", "app": "", "factors": ["-1"]}|} "-1";
  reject {|{"op": "ping", "app": ""}|} "takes no";
  reject {|{"op": "analyze", "app": "", "factors": [1]}|} "takes no";
  match
    Protocol.request_of_json
      (Json.parse
         {|{"id": 9, "op": "whatif", "app": "x", "engine": "soa",
            "edits": [{"task": 1, "deadline": 12, "release": 2}]}|})
  with
  | Error m -> Alcotest.failf "well-formed request rejected: %s" m
  | Ok req ->
      check_bool "id echoed" true (req.Protocol.id = Json.Int 9);
      check_bool "engine decoded" true (req.Protocol.engine = `Soa);
      check_int "two edits from one object" 2 (List.length req.Protocol.edits)

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)
(* ------------------------------------------------------------------ *)

let cache_lru () =
  let tracer = Tracer.make () in
  let cache = Cache.create ~tracer ~capacity:2 () in
  let system = uniform paper in
  let handle () = Rtlb.Incremental.create system paper in
  Cache.checkin cache "a" (handle ());
  Cache.checkin cache "b" (handle ());
  Cache.checkin cache "c" (handle ());
  check_int "capacity bound holds" 2 (Cache.length cache);
  check_int "one eviction counted" 1 (Tracer.counter tracer Tracer.Evictions);
  check_bool "least-recently-used key evicted" true
    (Cache.checkout cache "a" = None);
  check_bool "fresh key resident" true (Cache.checkout cache "c" <> None);
  (* checkout removes: a second checkout misses (single-user handles) *)
  check_bool "checkout removes the entry" true
    (Cache.checkout cache "c" = None);
  check_int "only b left" 1 (Cache.length cache);
  check_bool "engine tags split the key space" true
    (Cache.key ~engine:`Record system paper
    <> Cache.key ~engine:`Soa system paper)

(* ------------------------------------------------------------------ *)
(* Admission control and drain                                         *)
(* ------------------------------------------------------------------ *)

let overload_rejected () =
  (* A zero-capacity queue rejects every analysis admission — the
     deterministic stand-in for a backlogged daemon. *)
  let config = { (quick_config ()) with Server.queue_capacity = 0 } in
  with_server ~config (fun t ->
      let reply =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "overload reply is an error" false (is_ok reply);
      check_string "overload code" "S303" (error_code reply);
      (match Json.member "retry_after_ms" (Json.member "error" reply) with
      | Json.Int ms -> check_bool "retry hint is positive" true (ms > 0)
      | _ -> Alcotest.fail "S303 carries retry_after_ms");
      (* inline ops still answer under overload *)
      check_bool "ping unaffected" true
        (is_ok (request t (frame [ ("op", Json.Str "ping") ]))))

let drain_refuses () =
  with_server (fun t ->
      let before =
        request t
          (frame [ ("id", Json.Int 1); ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "pre-drain request answered" true (is_ok before);
      Server.drain t;
      let after =
        request t
          (frame [ ("id", Json.Int 2); ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "post-drain request refused" false (is_ok after);
      check_string "drain code" "S306" (error_code after))

let deadline_budget_partial () =
  with_server (fun t ->
      let reply =
        request t
          (frame
             [
               ("op", Json.Str "analyze");
               ("app", Json.Str paper_text);
               ("deadline_ms", Json.Int 0);
             ])
      in
      (* an expired budget yields a valid partial reply, not an error *)
      check_bool "expired budget still answers" true (is_ok reply);
      check_bool "reply is flagged partial" true
        (Json.member "partial" (Json.member "result" reply) = Json.Bool true);
      check_int "partial base analyses are never cached" 0
        (Cache.length (Server.cache t));
      let full =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "full rerun is exhaustive" true
        (Json.member "partial" (Json.member "result" full) = Json.Bool false);
      check_int "exhaustive base analyses are cached" 1
        (Cache.length (Server.cache t)))

(* ------------------------------------------------------------------ *)
(* Request isolation                                                   *)
(* ------------------------------------------------------------------ *)

let isolation () =
  with_server (fun t ->
      let bad_frame = request t "{\"id\": 3, op: broken" in
      check_string "garbage frame -> S300" "S300" (error_code bad_frame);
      let bad_app =
        request t
          (frame [ ("op", Json.Str "analyze"); ("app", Json.Str "task T1 oops\n") ])
      in
      check_string "unparsable app -> S302" "S302" (error_code bad_app);
      check_bool "S302 names the line" true
        (string_contains ~needle:"line 1"
           (match Json.member "message" (Json.member "error" bad_app) with
           | Json.Str m -> m
           | _ -> ""));
      let unhostable =
        request t
          (frame
             [
               ("op", Json.Str "analyze");
               ( "app",
                 Json.Str
                   "task T1 compute=3 deadline=9 proc=P1 res=r1\nnode N1 proc=P2 cost=5\n"
               );
             ])
      in
      check_bool "unhostable app is a structured error" false (is_ok unhostable);
      let bad_edit =
        request t
          (frame
             [
               ("op", Json.Str "whatif");
               ("app", Json.Str paper_text);
               ( "edits",
                 Json.List [ Json.Obj [ ("task", Json.Int 999); ("deadline", Json.Int 5) ] ] );
             ])
      in
      check_string "out-of-range edit -> S301" "S301" (error_code bad_edit);
      (* after all of that, the daemon still answers correctly *)
      let alive =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "daemon survives its worst clients" true (is_ok alive);
      check_string "and still answers exactly"
        (Protocol.to_line (Json.of_analysis (Rtlb.Analysis.run (uniform paper) paper)))
        (result_line alive))

(* ------------------------------------------------------------------ *)
(* Acceptance storm: 8 concurrent clients under a seeded chaos plan    *)
(* ------------------------------------------------------------------ *)

type expect = { e_label : string; e_line : string; e_want : string }

let storm_requests () =
  let apps =
    paper
    :: List.map
         (fun seed ->
           Workload.Gen.layered_frames ~seed ~frames:2 ~tasks_per_frame:12 ())
         [ 3; 4 ]
  in
  List.concat_map
    (fun app ->
      let text = Rtfmt.Appfile.to_string app in
      let system = uniform app in
      let record = Rtlb.Analysis.run system app in
      let soa = Rtlb.Soa.analyze system app in
      let d0 = (Rtlb.App.task app 0).Rtlb.Task.deadline in
      let edits = [ Rtlb.Incremental.Set_deadline { task = 0; deadline = d0 + 7 } ] in
      let edited = Rtlb.Analysis.run system (Rtlb.Incremental.apply app edits) in
      [
        {
          e_label = "analyze/record";
          e_line = frame [ ("op", Json.Str "analyze"); ("app", Json.Str text) ];
          e_want = Protocol.to_line (Json.of_analysis record);
        };
        {
          e_label = "analyze/soa";
          e_line =
            frame
              [
                ("op", Json.Str "analyze");
                ("app", Json.Str text);
                ("engine", Json.Str "soa");
              ];
          e_want = Protocol.to_line (Json.of_analysis soa);
        };
        {
          e_label = "whatif";
          e_line =
            frame
              [
                ("op", Json.Str "whatif");
                ("app", Json.Str text);
                ( "edits",
                  Json.List
                    [
                      Json.Obj
                        [ ("task", Json.Int 0); ("deadline", Json.Int (d0 + 7)) ];
                    ] );
              ];
          e_want = Protocol.to_line (Json.of_whatif ~base:record ~edited);
        };
      ])
    apps

(* Seeds chosen so the two storms together replay every server-side
   fault class: 11 expands to transient raises + a mid-request worker
   kill + two bad frames, 1 to slow clients + a mid-request kill + a
   bad frame (plans are deterministic, see seeded-plan tests). *)
let storm_with ~seed ~kills ~delays () =
  let expects = Array.of_list (storm_requests ()) in
  let clients = 8 and per_client = 5 in
  let plan = Chaos.server_plan_of_seed ~requests:(clients * per_client) seed in
  let frame_no = Atomic.make 0 in
  let sent_garbage = Atomic.make 0 in
  let failures = Atomic.make [] in
  let fail fmt =
    Printf.ksprintf
      (fun m -> Atomic.set failures (m :: Atomic.get failures))
      fmt
  in
  with_chaos plan (fun () ->
      with_server (fun t ->
          let client c =
            for k = 0 to per_client - 1 do
              let idx = Atomic.fetch_and_add frame_no 1 in
              let delay = Chaos.client_delay_ms idx in
              if delay > 0 then Thread.delay (float_of_int delay /. 1000.0);
              if Chaos.frame_corrupt idx then begin
                Atomic.incr sent_garbage;
                let reply = request t "{\"id\": \"broken\", " in
                if error_code reply <> "S300" then
                  fail "client %d frame %d: corrupt frame got %s" c idx
                    (error_code reply)
              end
              else begin
                let e = expects.(((c * per_client) + k) mod Array.length expects) in
                let reply = request t e.e_line in
                if not (is_ok reply) then
                  fail "client %d frame %d (%s): unexpected error %s" c idx
                    e.e_label (error_code reply)
                else if result_line reply <> e.e_want then
                  fail "client %d frame %d (%s): result diverged" c idx
                    e.e_label
              end
            done
          in
          let threads = List.init clients (fun c -> Thread.create client c) in
          List.iter Thread.join threads;
          (match Atomic.get failures with
          | [] -> ()
          | msgs -> Alcotest.fail (String.concat "\n" msgs));
          (* the plan's faults really fired *)
          check_int "every corrupted frame was sent" (Atomic.get sent_garbage)
            (Chaos.fired_bad_frames ());
          check_int "mid-request worker kills fired" kills
            (Chaos.fired_request_kills ());
          check_int "client stalls fired" delays (Chaos.fired_client_delays ());
          (* daemon is still alive and exact after the storm *)
          let alive = request t (frame [ ("op", Json.Str "ping") ]) in
          check_bool "daemon survived the plan" true (is_ok alive);
          let stats =
            request t (frame [ ("op", Json.Str "stats") ])
          in
          let counter name =
            match Json.member name (Json.member "result" stats) with
            | Json.Int n -> n
            | _ -> -1
          in
          let legit = (clients * per_client) - Atomic.get sent_garbage in
          check_int "every legitimate frame was admitted" legit
            (counter "requests_admitted");
          check_bool "every corrupted frame was rejected" true
            (counter "requests_rejected" >= Atomic.get sent_garbage)))

(* ------------------------------------------------------------------ *)
(* Line reader: the frame cap binds buffered bytes, not only lines     *)
(* ------------------------------------------------------------------ *)

(* Regression for the unbounded-buffer bug: a client streaming an
   endless frame with no '\n' used to grow the reader's buffer without
   bound (the cap was only checked on complete lines, which never
   arrived).  Now the reader must report Overflow as soon as the
   buffered newline-free bytes exceed the cap — long before the flood
   ends — with memory bounded by cap + one read chunk. *)
let flood_capped () =
  let module Lr = Rtlb_serve.Line_reader in
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  let max_bytes = 4096 in
  let lr = Lr.create ~max_bytes r in
  let chunk = Bytes.make 1024 'x' in
  let writer =
    Thread.create
      (fun () ->
        (* 16 KiB of newline-free garbage — and the pipe stays OPEN:
           overflow must fire from buffered bytes alone, not from EOF *)
        for _ = 1 to 16 do
          ignore (Unix.write w chunk 0 (Bytes.length chunk))
        done)
      ()
  in
  let event = Lr.read lr ~stop:(fun () -> false) in
  Thread.join writer;
  (match event with
  | Lr.Overflow -> ()
  | Lr.Line _ -> Alcotest.fail "no-newline flood produced a line"
  | Lr.Eof -> Alcotest.fail "no-newline flood reported EOF");
  check_bool "buffered memory stays bounded" true
    (Lr.buffered lr <= max_bytes + 65536);
  (* the reader is poisoned: it keeps refusing, it does not resync *)
  check_bool "overflow is sticky" true
    (Lr.read lr ~stop:(fun () -> false) = Lr.Overflow);
  (* a sane frame on a fresh reader still parses *)
  let lr2 = Lr.create ~max_bytes r in
  ignore (Unix.write_substring w "{\"op\": \"ping\"}\n" 0 15);
  match Lr.read lr2 ~stop:(fun () -> false) with
  | Lr.Line _ -> ()
  | _ -> Alcotest.fail "fresh reader failed on a normal line"

(* The daemon front end answers the flood with S300 and drops the
   connection instead of ballooning. *)
let flood_rejected_end_to_end () =
  let config = { (quick_config ()) with Server.max_frame_bytes = 2048 } in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rtlb-flood-%d.sock" (Unix.getpid ()))
  in
  let t = Server.create ~config () in
  let stop = Atomic.make false in
  let ready = ref false in
  let m = Mutex.create () and c = Condition.create () in
  let server_thread =
    Thread.create
      (fun () ->
        Server.serve t
          ~on_ready:(fun _ ->
            Mutex.lock m;
            ready := true;
            Condition.signal c;
            Mutex.unlock m)
          ~endpoints:[ Server.Unix_path path ]
          ~stop:(fun () -> Atomic.get stop)
          ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server_thread)
  @@ fun () ->
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let flood = Bytes.make 4096 'y' in
  ignore (Unix.write fd flood 0 (Bytes.length flood));
  let lr = Rtlb_serve.Line_reader.create fd in
  (match Rtlb_serve.Line_reader.read lr ~stop:(fun () -> false) with
  | Rtlb_serve.Line_reader.Line reply ->
      check_string "flood refused with S300" "S300"
        (error_code (Json.parse reply))
  | _ -> Alcotest.fail "no reply to the oversized frame");
  (* the daemon closed its end: the next read hits EOF *)
  match Rtlb_serve.Line_reader.read lr ~stop:(fun () -> false) with
  | Rtlb_serve.Line_reader.Eof -> ()
  | _ -> Alcotest.fail "connection was not dropped after overflow"

(* ------------------------------------------------------------------ *)
(* locked_writer: short writes and EAGAIN never truncate or tear       *)
(* ------------------------------------------------------------------ *)

let writer_no_tearing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* non-blocking writer end with a tiny send buffer: big frames MUST
     hit partial writes and EAGAIN (the old writer silently dropped the
     rest of the frame on EAGAIN — truncating or tearing it) *)
  Unix.set_nonblock a;
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let write = Server.locked_writer a in
  let frames_per_thread = 40 and writers = 2 in
  let payload tid k =
    (* ~8 KiB, bigger than the send buffer, tagged per frame *)
    Printf.sprintf "%d:%d:%s" tid k (String.make 8192 (Char.chr (65 + tid)))
  in
  let senders =
    List.init writers (fun tid ->
        Thread.create
          (fun () ->
            for k = 0 to frames_per_thread - 1 do
              write (payload tid k)
            done)
          ())
  in
  (* deliberately slow reader: drain in small sips so the writer keeps
     running into a full buffer *)
  let lr = Rtlb_serve.Line_reader.create b in
  let got = ref [] in
  let expected = writers * frames_per_thread in
  while List.length !got < expected do
    match Rtlb_serve.Line_reader.read lr ~stop:(fun () -> false) with
    | Rtlb_serve.Line_reader.Line l -> got := l :: !got
    | _ -> Alcotest.fail "reader lost the stream"
  done;
  List.iter Thread.join senders;
  let seen = List.sort compare !got in
  let want =
    List.sort compare
      (List.concat_map
         (fun tid -> List.init frames_per_thread (payload tid))
         (List.init writers Fun.id))
  in
  check_int "every frame arrived exactly once" (List.length want)
    (List.length seen);
  List.iter2 (fun w s -> check_string "frame intact (not torn/truncated)" w s)
    want seen

(* ------------------------------------------------------------------ *)
(* retry hints: clamped, depth-aware, never zero or negative           *)
(* ------------------------------------------------------------------ *)

let retry_hint_bounds () =
  check_int "drained queue still hints 25ms" 25
    (Server.retry_hint_ms ~workers:2 ~depth:0);
  check_int "scales with standing depth per worker" 825
    (Server.retry_hint_ms ~workers:2 ~depth:64);
  check_int "upper clamp at 30s" 30_000
    (Server.retry_hint_ms ~workers:1 ~depth:10_000_000);
  check_bool "workers=0 does not divide by zero" true
    (Server.retry_hint_ms ~workers:0 ~depth:0 >= 1);
  check_bool "negative depth cannot go below the floor" true
    (Server.retry_hint_ms ~workers:2 ~depth:(-5) >= 1);
  (* and the S303 reply really carries it *)
  let config = { (quick_config ()) with Server.queue_capacity = 0 } in
  with_server ~config (fun t ->
      let reply =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_string "queue full -> S303" "S303" (error_code reply);
      match Json.member "retry_after_ms" (Json.member "error" reply) with
      | Json.Int ms -> check_bool "hint positive" true (ms >= 1)
      | _ -> Alcotest.fail "S303 without retry_after_ms")

(* ------------------------------------------------------------------ *)
(* Quota: exhaustion and refill against a fake clock                   *)
(* ------------------------------------------------------------------ *)

let quota_schedule () =
  let module Quota = Rtlb_serve.Quota in
  let t_ns = ref 0L in
  let q = Quota.create ~now:(fun () -> !t_ns) ~rate_per_s:2.0 ~burst:2.0 () in
  check_bool "burst admits" true (Quota.take q "alice" = Quota.Admit);
  check_bool "burst admits again" true (Quota.take q "alice" = Quota.Admit);
  (match Quota.take q "alice" with
  | Quota.Admit -> Alcotest.fail "empty bucket admitted"
  | Quota.Reject { retry_after_ms } ->
      (* one token at 2/s = 500ms away, exactly *)
      check_int "hint is the token drip time" 500 retry_after_ms);
  (* other tenants are isolated *)
  check_bool "bob unaffected" true (Quota.take q "bob" = Quota.Admit);
  (* half a second later alice has exactly one token back *)
  t_ns := Int64.add !t_ns 500_000_000L;
  check_bool "refilled token admits" true (Quota.take q "alice" = Quota.Admit);
  (match Quota.take q "alice" with
  | Quota.Admit -> Alcotest.fail "token refilled twice"
  | Quota.Reject { retry_after_ms } ->
      check_int "drained again" 500 retry_after_ms);
  (* a clock that jumps backwards must never drain tokens or crash,
     and the hint stays in [1, 60000] *)
  t_ns := Int64.sub !t_ns 2_000_000_000L;
  (match Quota.take q "alice" with
  | Quota.Admit -> Alcotest.fail "backwards clock minted a token"
  | Quota.Reject { retry_after_ms } ->
      check_bool "hint clamped positive" true
        (retry_after_ms >= 1 && retry_after_ms <= Quota.max_retry_ms));
  (* sub-millisecond deficits round up to 1, never 0 *)
  let fast = Quota.create ~now:(fun () -> 0L) ~rate_per_s:1e6 ~burst:1.0 () in
  ignore (Quota.take fast "x");
  (match Quota.take fast "x" with
  | Quota.Reject { retry_after_ms } -> check_int "floor clamp" 1 retry_after_ms
  | Quota.Admit -> Alcotest.fail "empty fast bucket admitted");
  (* a glacial rate clamps at the 60s ceiling *)
  let slow = Quota.create ~now:(fun () -> 0L) ~rate_per_s:1e-6 ~burst:1.0 () in
  ignore (Quota.take slow "y");
  (match Quota.take slow "y" with
  | Quota.Reject { retry_after_ms } ->
      check_int "ceiling clamp" Quota.max_retry_ms retry_after_ms
  | Quota.Admit -> Alcotest.fail "empty slow bucket admitted");
  check_int "tracked tenants" 2 (Quota.tenants q)

(* end-to-end: over-quota frames get S307 with a hint; other tenants
   keep flowing; the counters record it *)
let quota_s307 () =
  let tracer = Tracer.make () in
  let quota = Rtlb_serve.Quota.create ~rate_per_s:0.001 ~burst:2.0 () in
  let config =
    {
      (quick_config ()) with
      Server.workers = 0;
      jobs = 1;
      tracer;
      quota = Some quota;
    }
  in
  with_server ~config (fun t ->
      let send tenant =
        let replies = ref [] in
        Server.submit t
          (frame
             [
               ("op", Json.Str "analyze");
               ("app", Json.Str paper_text);
               ("tenant", Json.Str tenant);
             ])
          (fun r -> replies := r :: !replies);
        !replies
      in
      ignore (send "alice");
      ignore (send "alice");
      (match send "alice" with
      | [ reply ] ->
          let reply = Json.parse reply in
          check_string "third alice frame -> S307" "S307" (error_code reply);
          (match Json.member "name" (Json.member "error" reply) with
          | Json.Str n -> check_string "stable name" "quota_exceeded" n
          | _ -> Alcotest.fail "S307 without a name");
          (match Json.member "retry_after_ms" (Json.member "error" reply) with
          | Json.Int ms -> check_bool "hint positive" true (ms >= 1)
          | _ -> Alcotest.fail "S307 without retry_after_ms")
      | _ -> Alcotest.fail "over-quota frame was not rejected synchronously");
      check_bool "bob still admitted" true (send "bob" = []);
      (* ping/stats are not metered *)
      check_bool "ping unmetered" true
        (is_ok (request t (frame [ ("op", Json.Str "ping") ])));
      check_int "quota_rejections counted" 1
        (Tracer.counter tracer Tracer.Quota_rejections);
      check_int "also counted as a rejection" 1
        (Tracer.counter tracer Tracer.Requests_rejected);
      (* the queued work still runs to completion *)
      Server.run_pending t;
      check_int "admitted jobs all ran" 3
        (Tracer.counter tracer Tracer.Requests_admitted))

(* ------------------------------------------------------------------ *)
(* Coalescing: batched what-ifs are bit-identical to sequential        *)
(* ------------------------------------------------------------------ *)

(* workers = 0 + run_pending makes the batching deterministic: all N
   compatible what-ifs are queued when the (synchronous) worker pass
   starts, so they form one batch — and every reply must be
   byte-identical to the same frames run under coalesce = false. *)
let coalesce_identity =
  qtest ~count:25 "coalescing: batched replies == sequential replies"
    (arb_instance ~max_tasks:10 ())
    (fun i ->
      let text = Rtfmt.Appfile.to_string i.Helpers.app in
      let d0 = (Rtlb.App.task i.Helpers.app 0).Rtlb.Task.deadline in
      let n = 5 in
      let frames =
        List.init n (fun k ->
            frame
              [
                ("id", Json.Int k);
                ("op", Json.Str "whatif");
                ("app", Json.Str text);
                ( "edits",
                  Json.List
                    [
                      Json.Obj
                        [
                          ("task", Json.Int 0);
                          (* different edits per request: compatibility is
                             per instance, not per edit *)
                          ("deadline", Json.Int (d0 + 1 + k));
                        ];
                    ] );
              ])
      in
      let run ~coalesce =
        let tracer = Tracer.make () in
        let config =
          {
            (quick_config ()) with
            Server.workers = 0;
            jobs = 1;
            tracer;
            coalesce;
          }
        in
        let t = Server.create ~config () in
        Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
        let replies = Array.make n "" in
        List.iteri
          (fun k f -> Server.submit t f (fun r -> replies.(k) <- r))
          frames;
        Server.run_pending t;
        Array.iteri
          (fun k r -> if r = "" then Alcotest.failf "reply %d missing" k)
          replies;
        (replies, Tracer.counter tracer Tracer.Coalesced_queries)
      in
      let batched, coalesced = run ~coalesce:true in
      let sequential, uncoalesced = run ~coalesce:false in
      check_int "all n what-ifs shared one batch" (n - 1) coalesced;
      check_int "coalesce=false batches nothing" 0 uncoalesced;
      Array.iteri
        (fun k b ->
          if b <> sequential.(k) then
            Alcotest.failf "reply %d diverged under coalescing:\n%s\nvs\n%s" k
              b sequential.(k))
        batched;
      true)

(* priority admission: an explicit low-priority cold analysis queued
   first must not delay a warm what-if queued after it *)
let priority_orders_queue () =
  let tracer = Tracer.make () in
  let config =
    { (quick_config ()) with Server.workers = 0; jobs = 1; tracer }
  in
  with_server ~config (fun t ->
      let order = ref [] in
      let submit label fields =
        Server.submit t (frame fields) (fun _ -> order := label :: !order)
      in
      submit "cold-low"
        [
          ("op", Json.Str "analyze");
          ("app", Json.Str paper_text);
          ("priority", Json.Str "low");
        ];
      submit "check-auto-high"
        [ ("op", Json.Str "check"); ("app", Json.Str paper_text) ];
      submit "explicit-high"
        [
          ("op", Json.Str "analyze");
          ("app", Json.Str paper_text);
          ("priority", Json.Str "high");
        ];
      Server.run_pending t;
      check_bool "high-priority work ran before the cold analysis" true
        (!order = [ "cold-low"; "explicit-high"; "check-auto-high" ]))

(* ------------------------------------------------------------------ *)
(* Transports: Unix socket and TCP served simultaneously               *)
(* ------------------------------------------------------------------ *)

let tcp_and_unix () =
  let module Client = Rtlb_serve.Client in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rtlb-test-%d.sock" (Unix.getpid ()))
  in
  let t = Server.create ~config:(quick_config ()) () in
  let stop = Atomic.make false in
  let ready = ref [] in
  let m = Mutex.create () and c = Condition.create () in
  let server_thread =
    Thread.create
      (fun () ->
        Server.serve t
          ~on_ready:(fun addrs ->
            Mutex.lock m;
            ready := addrs;
            Condition.signal c;
            Mutex.unlock m)
          ~endpoints:[ Server.Unix_path path; Server.Tcp ("127.0.0.1", 0) ]
          ~stop:(fun () -> Atomic.get stop)
          ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server_thread)
  @@ fun () ->
  Mutex.lock m;
  while !ready = [] do
    Condition.wait c m
  done;
  let addrs = !ready in
  Mutex.unlock m;
  (match addrs with
  | [ Unix.ADDR_UNIX p; Unix.ADDR_INET (_, port) ] ->
      check_string "unix endpoint reported" path p;
      check_bool "ephemeral TCP port resolved" true (port > 0)
  | _ -> Alcotest.fail "on_ready did not report both endpoints");
  let over_unix = Client.connect_unix ~retry_for:5.0 path in
  let over_tcp =
    match List.nth addrs 1 with
    | addr -> Client.connect_sockaddr ~retry_for:5.0 addr
  in
  Fun.protect
    ~finally:(fun () ->
      Client.close over_unix;
      Client.close over_tcp)
  @@ fun () ->
  check_bool "ping over unix" true (Client.ping over_unix);
  check_bool "ping over tcp" true (Client.ping over_tcp);
  let analyze client =
    match
      Client.call client
        (Json.Obj [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
    with
    | Ok reply when is_ok reply -> result_line reply
    | Ok reply -> Alcotest.failf "analyze failed: %s" (error_code reply)
    | Error e -> Alcotest.failf "transport failure: %s" e
  in
  check_string "both transports serve identical answers" (analyze over_unix)
    (analyze over_tcp);
  (* pipelining with out-of-order completion still matches ids *)
  let replies =
    Client.pipeline over_tcp
      [
        Json.Obj [ ("op", Json.Str "ping") ];
        Json.Obj [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ];
        Json.Obj [ ("op", Json.Str "ping") ];
      ]
  in
  check_int "pipeline answers everything" 3
    (List.length (List.filter Result.is_ok replies))

(* ------------------------------------------------------------------ *)
(* Chaos: the tenantflood directive                                    *)
(* ------------------------------------------------------------------ *)

let tenantflood_dsl () =
  (match Chaos.parse "tenantflood@3:5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
      with_chaos plan (fun () ->
          check_int "other indices unaffected" 0 (Chaos.tenant_flood_burst 2);
          check_int "burst delivered at its index" 5
            (Chaos.tenant_flood_burst 3);
          check_int "one-shot: second probe gets nothing" 0
            (Chaos.tenant_flood_burst 3);
          check_int "fired counter" 1 (Chaos.fired_tenant_floods ())));
  (match Chaos.parse "tenantflood@1" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
      with_chaos plan (fun () ->
          check_int "default burst" 8 (Chaos.tenant_flood_burst 1)));
  (* round-trips through to_string, and bad specs are refused loudly *)
  (match Chaos.parse "tenantflood@2:3" with
  | Ok plan ->
      check_bool "to_string round-trips" true
        (string_contains ~needle:"tenantflood@2:3" (Chaos.to_string plan))
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Chaos.parse "tenantflood@x" with
  | Ok _ -> Alcotest.fail "malformed directive accepted"
  | Error _ -> ()

(* a flood burst from one tenant exhausts its bucket, collects S307s,
   and never starves the well-behaved tenant *)
let tenantflood_quota_storm () =
  let plan =
    match Chaos.parse "tenantflood@2:8" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let tracer = Tracer.make () in
  let quota = Rtlb_serve.Quota.create ~rate_per_s:0.001 ~burst:2.0 () in
  let config = { (quick_config ()) with Server.tracer; quota = Some quota } in
  with_chaos plan (fun () ->
      with_server ~config (fun t ->
          let analyze tenant =
            request t
              (frame
                 [
                   ("op", Json.Str "analyze");
                   ("app", Json.Str paper_text);
                   ("tenant", Json.Str tenant);
                 ])
          in
          check_bool "steady tenant flows before the flood" true
            (is_ok (analyze "steady"));
          let s307 = ref 0 in
          for i = 0 to 4 do
            (* the armed plan floods (burst 8) at request index 2 only *)
            let burst = Chaos.tenant_flood_burst i in
            for _ = 1 to burst do
              let reply = analyze "flood" in
              if is_ok reply then ()
              else begin
                check_string "flood failures are structured S307" "S307"
                  (error_code reply);
                incr s307
              end
            done
          done;
          check_int "the flood fired" 1 (Chaos.fired_tenant_floods ());
          (* burst 2.0, no meaningful refill: 8 flood frames -> 2 admits *)
          check_int "the flood tenant was throttled" 6 !s307;
          check_bool "steady tenant still flows after the flood" true
            (is_ok (analyze "steady"));
          check_int "tracer agrees" !s307
            (Tracer.counter tracer Tracer.Quota_rejections);
          (* quota pressure never poisons the daemon *)
          check_bool "daemon alive" true
            (is_ok (request t (frame [ ("op", Json.Str "ping") ])))))

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "protocol rejects malformed requests" `Quick
          protocol_strict;
        Alcotest.test_case "LRU cache: capacity, eviction, checkout" `Quick
          cache_lru;
        Alcotest.test_case "admission: overload -> S303 + retry hint" `Quick
          overload_rejected;
        Alcotest.test_case "drain: in-flight finish, new refused (S306)"
          `Quick drain_refuses;
        Alcotest.test_case "deadline budget: partial reply, never cached"
          `Quick deadline_budget_partial;
        Alcotest.test_case "isolation: bad frames/apps/edits never kill it"
          `Quick isolation;
        Alcotest.test_case "storm: 8 clients, kills + raises + bad frames"
          `Quick
          (storm_with ~seed:11 ~kills:1 ~delays:0);
        Alcotest.test_case "storm: 8 clients, slow clients + kill + bad frame"
          `Quick
          (storm_with ~seed:1 ~kills:1 ~delays:2);
        Alcotest.test_case "line reader: no-newline flood caps buffered bytes"
          `Quick flood_capped;
        Alcotest.test_case "flood over a socket -> S300 + connection dropped"
          `Quick flood_rejected_end_to_end;
        Alcotest.test_case
          "locked_writer: EAGAIN/short writes never tear frames" `Quick
          writer_no_tearing;
        Alcotest.test_case "retry_after_ms: clamped, depth-aware, never <= 0"
          `Quick retry_hint_bounds;
        Alcotest.test_case "quota: exhaustion and refill on a fake clock"
          `Quick quota_schedule;
        Alcotest.test_case "quota: over-quota tenant -> S307, others flow"
          `Quick quota_s307;
        coalesce_identity;
        Alcotest.test_case "priority: warm/cheap never stuck behind cold"
          `Quick priority_orders_queue;
        Alcotest.test_case "transports: Unix socket and TCP simultaneously"
          `Quick tcp_and_unix;
        Alcotest.test_case "chaos: tenantflood directive parses and fires"
          `Quick tenantflood_dsl;
        Alcotest.test_case "chaos: tenant flood throttled without starvation"
          `Quick tenantflood_quota_storm;
      ] );
  ]
