(* Serve-daemon suite: protocol strictness, the warm-handle LRU's
   checkout/checkin discipline, admission control (overload + drain
   refusals), per-request deadline budgets, request isolation, and the
   acceptance storm — 8 concurrent clients replaying a seeded
   server-side chaos plan (malformed frames, mid-request worker kills,
   slow clients, transient raises) against one daemon, asserting the
   daemon survives with zero incorrect answers: every successful reply
   is bit-identical to the one-shot encoders the CLI uses, every
   failure is a structured S3xx error. *)

open Helpers
module Json = Rtfmt.Json
module Server = Rtlb_serve.Server
module Protocol = Rtlb_serve.Protocol
module Cache = Rtlb_serve.Cache
module Chaos = Rtlb_par.Chaos
module Tracer = Rtlb_obs.Tracer

let paper = Rtlb.Paper_example.app
let paper_text = Rtfmt.Appfile.to_string paper

(* Serve resolves a file with no system line to the uniform shared
   model — the reference computations below must do the same. *)
let uniform app =
  Rtlb.System.shared_uniform ~resources:(Rtlb.App.resource_set app)

let with_chaos plan f =
  Chaos.arm plan;
  Fun.protect ~finally:Chaos.disarm f

(* Fresh tracer per server: the counters the stats op snapshots must
   not leak across test cases. *)
let quick_config () =
  {
    Server.default_config with
    Server.jobs = 2;
    workers = 2;
    tracer = Tracer.make ();
  }

let with_server ?config f =
  let config = match config with Some c -> c | None -> quick_config () in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> f t)

(* Submit one frame and block until its reply arrives (replies may come
   from a worker thread). *)
let request t line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit t line (fun reply ->
      Mutex.lock m;
      slot := Some reply;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Json.parse (Option.get !slot)

let frame fields = Protocol.to_line (Json.Obj fields)

let error_code reply =
  match Json.member "code" (Json.member "error" reply) with
  | Json.Str c -> c
  | _ -> "?"

let is_ok reply = Json.member "ok" reply = Json.Bool true
let result_line reply = Protocol.to_line (Json.member "result" reply)

(* ------------------------------------------------------------------ *)
(* Protocol strictness                                                 *)
(* ------------------------------------------------------------------ *)

let protocol_strict () =
  let reject line needle =
    match Protocol.request_of_json (Json.parse line) with
    | Ok _ -> Alcotest.failf "expected %s to be rejected" line
    | Error m ->
        check_bool
          (Printf.sprintf "error for %s mentions %S (got %S)" line needle m)
          true
          (string_contains ~needle m)
  in
  reject {|{"op": "analyze"}|} "app";
  reject {|{"op": "fly", "app": ""}|} "unknown op";
  reject {|{"op": "analyze", "app": "", "surprise": 1}|} "surprise";
  reject {|{"op": "analyze", "app": "", "engine": "simd"}|} "simd";
  reject {|{"op": "analyze", "app": "", "deadline_ms": -1}|} "deadline_ms";
  reject {|{"op": "whatif", "app": ""}|} "edits";
  reject {|{"op": "whatif", "app": "", "edits": []}|} "empty";
  reject {|{"op": "whatif", "app": "", "edits": [{"task": 0}]}|} "one of";
  reject {|{"op": "sensitivity", "app": "", "factors": ["zero"]}|} "factor";
  reject {|{"op": "sensitivity", "app": "", "factors": ["-1"]}|} "-1";
  reject {|{"op": "ping", "app": ""}|} "takes no";
  reject {|{"op": "analyze", "app": "", "factors": [1]}|} "takes no";
  match
    Protocol.request_of_json
      (Json.parse
         {|{"id": 9, "op": "whatif", "app": "x", "engine": "soa",
            "edits": [{"task": 1, "deadline": 12, "release": 2}]}|})
  with
  | Error m -> Alcotest.failf "well-formed request rejected: %s" m
  | Ok req ->
      check_bool "id echoed" true (req.Protocol.id = Json.Int 9);
      check_bool "engine decoded" true (req.Protocol.engine = `Soa);
      check_int "two edits from one object" 2 (List.length req.Protocol.edits)

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)
(* ------------------------------------------------------------------ *)

let cache_lru () =
  let tracer = Tracer.make () in
  let cache = Cache.create ~tracer ~capacity:2 () in
  let system = uniform paper in
  let handle () = Rtlb.Incremental.create system paper in
  Cache.checkin cache "a" (handle ());
  Cache.checkin cache "b" (handle ());
  Cache.checkin cache "c" (handle ());
  check_int "capacity bound holds" 2 (Cache.length cache);
  check_int "one eviction counted" 1 (Tracer.counter tracer Tracer.Evictions);
  check_bool "least-recently-used key evicted" true
    (Cache.checkout cache "a" = None);
  check_bool "fresh key resident" true (Cache.checkout cache "c" <> None);
  (* checkout removes: a second checkout misses (single-user handles) *)
  check_bool "checkout removes the entry" true
    (Cache.checkout cache "c" = None);
  check_int "only b left" 1 (Cache.length cache);
  check_bool "engine tags split the key space" true
    (Cache.key ~engine:`Record system paper
    <> Cache.key ~engine:`Soa system paper)

(* ------------------------------------------------------------------ *)
(* Admission control and drain                                         *)
(* ------------------------------------------------------------------ *)

let overload_rejected () =
  (* A zero-capacity queue rejects every analysis admission — the
     deterministic stand-in for a backlogged daemon. *)
  let config = { (quick_config ()) with Server.queue_capacity = 0 } in
  with_server ~config (fun t ->
      let reply =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "overload reply is an error" false (is_ok reply);
      check_string "overload code" "S303" (error_code reply);
      (match Json.member "retry_after_ms" (Json.member "error" reply) with
      | Json.Int ms -> check_bool "retry hint is positive" true (ms > 0)
      | _ -> Alcotest.fail "S303 carries retry_after_ms");
      (* inline ops still answer under overload *)
      check_bool "ping unaffected" true
        (is_ok (request t (frame [ ("op", Json.Str "ping") ]))))

let drain_refuses () =
  with_server (fun t ->
      let before =
        request t
          (frame [ ("id", Json.Int 1); ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "pre-drain request answered" true (is_ok before);
      Server.drain t;
      let after =
        request t
          (frame [ ("id", Json.Int 2); ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "post-drain request refused" false (is_ok after);
      check_string "drain code" "S306" (error_code after))

let deadline_budget_partial () =
  with_server (fun t ->
      let reply =
        request t
          (frame
             [
               ("op", Json.Str "analyze");
               ("app", Json.Str paper_text);
               ("deadline_ms", Json.Int 0);
             ])
      in
      (* an expired budget yields a valid partial reply, not an error *)
      check_bool "expired budget still answers" true (is_ok reply);
      check_bool "reply is flagged partial" true
        (Json.member "partial" (Json.member "result" reply) = Json.Bool true);
      check_int "partial base analyses are never cached" 0
        (Cache.length (Server.cache t));
      let full =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "full rerun is exhaustive" true
        (Json.member "partial" (Json.member "result" full) = Json.Bool false);
      check_int "exhaustive base analyses are cached" 1
        (Cache.length (Server.cache t)))

(* ------------------------------------------------------------------ *)
(* Request isolation                                                   *)
(* ------------------------------------------------------------------ *)

let isolation () =
  with_server (fun t ->
      let bad_frame = request t "{\"id\": 3, op: broken" in
      check_string "garbage frame -> S300" "S300" (error_code bad_frame);
      let bad_app =
        request t
          (frame [ ("op", Json.Str "analyze"); ("app", Json.Str "task T1 oops\n") ])
      in
      check_string "unparsable app -> S302" "S302" (error_code bad_app);
      check_bool "S302 names the line" true
        (string_contains ~needle:"line 1"
           (match Json.member "message" (Json.member "error" bad_app) with
           | Json.Str m -> m
           | _ -> ""));
      let unhostable =
        request t
          (frame
             [
               ("op", Json.Str "analyze");
               ( "app",
                 Json.Str
                   "task T1 compute=3 deadline=9 proc=P1 res=r1\nnode N1 proc=P2 cost=5\n"
               );
             ])
      in
      check_bool "unhostable app is a structured error" false (is_ok unhostable);
      let bad_edit =
        request t
          (frame
             [
               ("op", Json.Str "whatif");
               ("app", Json.Str paper_text);
               ( "edits",
                 Json.List [ Json.Obj [ ("task", Json.Int 999); ("deadline", Json.Int 5) ] ] );
             ])
      in
      check_string "out-of-range edit -> S301" "S301" (error_code bad_edit);
      (* after all of that, the daemon still answers correctly *)
      let alive =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "daemon survives its worst clients" true (is_ok alive);
      check_string "and still answers exactly"
        (Protocol.to_line (Json.of_analysis (Rtlb.Analysis.run (uniform paper) paper)))
        (result_line alive))

(* ------------------------------------------------------------------ *)
(* Acceptance storm: 8 concurrent clients under a seeded chaos plan    *)
(* ------------------------------------------------------------------ *)

type expect = { e_label : string; e_line : string; e_want : string }

let storm_requests () =
  let apps =
    paper
    :: List.map
         (fun seed ->
           Workload.Gen.layered_frames ~seed ~frames:2 ~tasks_per_frame:12 ())
         [ 3; 4 ]
  in
  List.concat_map
    (fun app ->
      let text = Rtfmt.Appfile.to_string app in
      let system = uniform app in
      let record = Rtlb.Analysis.run system app in
      let soa = Rtlb.Soa.analyze system app in
      let d0 = (Rtlb.App.task app 0).Rtlb.Task.deadline in
      let edits = [ Rtlb.Incremental.Set_deadline { task = 0; deadline = d0 + 7 } ] in
      let edited = Rtlb.Analysis.run system (Rtlb.Incremental.apply app edits) in
      [
        {
          e_label = "analyze/record";
          e_line = frame [ ("op", Json.Str "analyze"); ("app", Json.Str text) ];
          e_want = Protocol.to_line (Json.of_analysis record);
        };
        {
          e_label = "analyze/soa";
          e_line =
            frame
              [
                ("op", Json.Str "analyze");
                ("app", Json.Str text);
                ("engine", Json.Str "soa");
              ];
          e_want = Protocol.to_line (Json.of_analysis soa);
        };
        {
          e_label = "whatif";
          e_line =
            frame
              [
                ("op", Json.Str "whatif");
                ("app", Json.Str text);
                ( "edits",
                  Json.List
                    [
                      Json.Obj
                        [ ("task", Json.Int 0); ("deadline", Json.Int (d0 + 7)) ];
                    ] );
              ];
          e_want = Protocol.to_line (Json.of_whatif ~base:record ~edited);
        };
      ])
    apps

(* Seeds chosen so the two storms together replay every server-side
   fault class: 11 expands to transient raises + a mid-request worker
   kill + two bad frames, 1 to slow clients + a mid-request kill + a
   bad frame (plans are deterministic, see seeded-plan tests). *)
let storm_with ~seed ~kills ~delays () =
  let expects = Array.of_list (storm_requests ()) in
  let clients = 8 and per_client = 5 in
  let plan = Chaos.server_plan_of_seed ~requests:(clients * per_client) seed in
  let frame_no = Atomic.make 0 in
  let sent_garbage = Atomic.make 0 in
  let failures = Atomic.make [] in
  let fail fmt =
    Printf.ksprintf
      (fun m -> Atomic.set failures (m :: Atomic.get failures))
      fmt
  in
  with_chaos plan (fun () ->
      with_server (fun t ->
          let client c =
            for k = 0 to per_client - 1 do
              let idx = Atomic.fetch_and_add frame_no 1 in
              let delay = Chaos.client_delay_ms idx in
              if delay > 0 then Thread.delay (float_of_int delay /. 1000.0);
              if Chaos.frame_corrupt idx then begin
                Atomic.incr sent_garbage;
                let reply = request t "{\"id\": \"broken\", " in
                if error_code reply <> "S300" then
                  fail "client %d frame %d: corrupt frame got %s" c idx
                    (error_code reply)
              end
              else begin
                let e = expects.(((c * per_client) + k) mod Array.length expects) in
                let reply = request t e.e_line in
                if not (is_ok reply) then
                  fail "client %d frame %d (%s): unexpected error %s" c idx
                    e.e_label (error_code reply)
                else if result_line reply <> e.e_want then
                  fail "client %d frame %d (%s): result diverged" c idx
                    e.e_label
              end
            done
          in
          let threads = List.init clients (fun c -> Thread.create client c) in
          List.iter Thread.join threads;
          (match Atomic.get failures with
          | [] -> ()
          | msgs -> Alcotest.fail (String.concat "\n" msgs));
          (* the plan's faults really fired *)
          check_int "every corrupted frame was sent" (Atomic.get sent_garbage)
            (Chaos.fired_bad_frames ());
          check_int "mid-request worker kills fired" kills
            (Chaos.fired_request_kills ());
          check_int "client stalls fired" delays (Chaos.fired_client_delays ());
          (* daemon is still alive and exact after the storm *)
          let alive = request t (frame [ ("op", Json.Str "ping") ]) in
          check_bool "daemon survived the plan" true (is_ok alive);
          let stats =
            request t (frame [ ("op", Json.Str "stats") ])
          in
          let counter name =
            match Json.member name (Json.member "result" stats) with
            | Json.Int n -> n
            | _ -> -1
          in
          let legit = (clients * per_client) - Atomic.get sent_garbage in
          check_int "every legitimate frame was admitted" legit
            (counter "requests_admitted");
          check_bool "every corrupted frame was rejected" true
            (counter "requests_rejected" >= Atomic.get sent_garbage)))

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "protocol rejects malformed requests" `Quick
          protocol_strict;
        Alcotest.test_case "LRU cache: capacity, eviction, checkout" `Quick
          cache_lru;
        Alcotest.test_case "admission: overload -> S303 + retry hint" `Quick
          overload_rejected;
        Alcotest.test_case "drain: in-flight finish, new refused (S306)"
          `Quick drain_refuses;
        Alcotest.test_case "deadline budget: partial reply, never cached"
          `Quick deadline_budget_partial;
        Alcotest.test_case "isolation: bad frames/apps/edits never kill it"
          `Quick isolation;
        Alcotest.test_case "storm: 8 clients, kills + raises + bad frames"
          `Quick
          (storm_with ~seed:11 ~kills:1 ~delays:0);
        Alcotest.test_case "storm: 8 clients, slow clients + kill + bad frame"
          `Quick
          (storm_with ~seed:1 ~kills:1 ~delays:2);
      ] );
  ]
