(* Serve-daemon suite: protocol strictness, the warm-handle LRU's
   checkout/checkin discipline, admission control (overload + drain
   refusals), per-request deadline budgets, request isolation, and the
   acceptance storm — 8 concurrent clients replaying a seeded
   server-side chaos plan (malformed frames, mid-request worker kills,
   slow clients, transient raises) against one daemon, asserting the
   daemon survives with zero incorrect answers: every successful reply
   is bit-identical to the one-shot encoders the CLI uses, every
   failure is a structured S3xx error. *)

open Helpers
module Json = Rtfmt.Json
module Server = Rtlb_serve.Server
module Protocol = Rtlb_serve.Protocol
module Cache = Rtlb_serve.Cache
module Chaos = Rtlb_par.Chaos
module Tracer = Rtlb_obs.Tracer

let paper = Rtlb.Paper_example.app
let paper_text = Rtfmt.Appfile.to_string paper

(* Serve resolves a file with no system line to the uniform shared
   model — the reference computations below must do the same. *)
let uniform app =
  Rtlb.System.shared_uniform ~resources:(Rtlb.App.resource_set app)

let with_chaos plan f =
  Chaos.arm plan;
  Fun.protect ~finally:Chaos.disarm f

(* Fresh tracer per server: the counters the stats op snapshots must
   not leak across test cases. *)
let quick_config () =
  {
    Server.default_config with
    Server.jobs = 2;
    workers = 2;
    tracer = Tracer.make ();
  }

let with_server ?config f =
  let config = match config with Some c -> c | None -> quick_config () in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> f t)

(* Submit one frame and block until its reply arrives (replies may come
   from a worker thread). *)
let request t line =
  let m = Mutex.create () and c = Condition.create () in
  let slot = ref None in
  Server.submit t line (fun reply ->
      Mutex.lock m;
      slot := Some reply;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Json.parse (Option.get !slot)

let frame fields = Protocol.to_line (Json.Obj fields)

let error_code reply =
  match Json.member "code" (Json.member "error" reply) with
  | Json.Str c -> c
  | _ -> "?"

let is_ok reply = Json.member "ok" reply = Json.Bool true
let result_line reply = Protocol.to_line (Json.member "result" reply)

(* ------------------------------------------------------------------ *)
(* Protocol strictness                                                 *)
(* ------------------------------------------------------------------ *)

let protocol_strict () =
  let reject line needle =
    match Protocol.request_of_json (Json.parse line) with
    | Ok _ -> Alcotest.failf "expected %s to be rejected" line
    | Error m ->
        check_bool
          (Printf.sprintf "error for %s mentions %S (got %S)" line needle m)
          true
          (string_contains ~needle m)
  in
  reject {|{"op": "analyze"}|} "app";
  reject {|{"op": "fly", "app": ""}|} "unknown op";
  reject {|{"op": "analyze", "app": "", "surprise": 1}|} "surprise";
  reject {|{"op": "analyze", "app": "", "engine": "simd"}|} "simd";
  reject {|{"op": "analyze", "app": "", "deadline_ms": -1}|} "deadline_ms";
  reject {|{"op": "whatif", "app": ""}|} "edits";
  reject {|{"op": "whatif", "app": "", "edits": []}|} "empty";
  reject {|{"op": "whatif", "app": "", "edits": [{"task": 0}]}|} "one of";
  reject {|{"op": "sensitivity", "app": "", "factors": ["zero"]}|} "factor";
  reject {|{"op": "sensitivity", "app": "", "factors": ["-1"]}|} "-1";
  reject {|{"op": "ping", "app": ""}|} "takes no";
  reject {|{"op": "analyze", "app": "", "factors": [1]}|} "takes no";
  match
    Protocol.request_of_json
      (Json.parse
         {|{"id": 9, "op": "whatif", "app": "x", "engine": "soa",
            "edits": [{"task": 1, "deadline": 12, "release": 2}]}|})
  with
  | Error m -> Alcotest.failf "well-formed request rejected: %s" m
  | Ok req ->
      check_bool "id echoed" true (req.Protocol.id = Json.Int 9);
      check_bool "engine decoded" true (req.Protocol.engine = `Soa);
      check_int "two edits from one object" 2 (List.length req.Protocol.edits)

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)
(* ------------------------------------------------------------------ *)

let cache_lru () =
  let tracer = Tracer.make () in
  let cache = Cache.create ~tracer ~capacity:2 () in
  let system = uniform paper in
  let handle () = Rtlb.Incremental.create system paper in
  Cache.checkin cache "a" (handle ());
  Cache.checkin cache "b" (handle ());
  Cache.checkin cache "c" (handle ());
  check_int "capacity bound holds" 2 (Cache.length cache);
  check_int "one eviction counted" 1 (Tracer.counter tracer Tracer.Evictions);
  check_bool "least-recently-used key evicted" true
    (Cache.checkout cache "a" = None);
  check_bool "fresh key resident" true (Cache.checkout cache "c" <> None);
  (* checkout removes: a second checkout misses (single-user handles) *)
  check_bool "checkout removes the entry" true
    (Cache.checkout cache "c" = None);
  check_int "only b left" 1 (Cache.length cache);
  check_bool "engine tags split the key space" true
    (Cache.key ~engine:`Record system paper
    <> Cache.key ~engine:`Soa system paper)

(* ------------------------------------------------------------------ *)
(* Admission control and drain                                         *)
(* ------------------------------------------------------------------ *)

let overload_rejected () =
  (* A zero-capacity queue rejects every analysis admission — the
     deterministic stand-in for a backlogged daemon. *)
  let config = { (quick_config ()) with Server.queue_capacity = 0 } in
  with_server ~config (fun t ->
      let reply =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "overload reply is an error" false (is_ok reply);
      check_string "overload code" "S303" (error_code reply);
      (match Json.member "retry_after_ms" (Json.member "error" reply) with
      | Json.Int ms -> check_bool "retry hint is positive" true (ms > 0)
      | _ -> Alcotest.fail "S303 carries retry_after_ms");
      (* inline ops still answer under overload *)
      check_bool "ping unaffected" true
        (is_ok (request t (frame [ ("op", Json.Str "ping") ]))))

let drain_refuses () =
  with_server (fun t ->
      let before =
        request t
          (frame [ ("id", Json.Int 1); ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "pre-drain request answered" true (is_ok before);
      Server.drain t;
      let after =
        request t
          (frame [ ("id", Json.Int 2); ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "post-drain request refused" false (is_ok after);
      check_string "drain code" "S306" (error_code after))

let deadline_budget_partial () =
  with_server (fun t ->
      let reply =
        request t
          (frame
             [
               ("op", Json.Str "analyze");
               ("app", Json.Str paper_text);
               ("deadline_ms", Json.Int 0);
             ])
      in
      (* an expired budget yields a valid partial reply, not an error *)
      check_bool "expired budget still answers" true (is_ok reply);
      check_bool "reply is flagged partial" true
        (Json.member "partial" (Json.member "result" reply) = Json.Bool true);
      check_int "partial base analyses are never cached" 0
        (Cache.length (Server.cache t));
      let full =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "full rerun is exhaustive" true
        (Json.member "partial" (Json.member "result" full) = Json.Bool false);
      check_int "exhaustive base analyses are cached" 1
        (Cache.length (Server.cache t)))

(* ------------------------------------------------------------------ *)
(* Request isolation                                                   *)
(* ------------------------------------------------------------------ *)

let isolation () =
  with_server (fun t ->
      let bad_frame = request t "{\"id\": 3, op: broken" in
      check_string "garbage frame -> S300" "S300" (error_code bad_frame);
      let bad_app =
        request t
          (frame [ ("op", Json.Str "analyze"); ("app", Json.Str "task T1 oops\n") ])
      in
      check_string "unparsable app -> S302" "S302" (error_code bad_app);
      check_bool "S302 names the line" true
        (string_contains ~needle:"line 1"
           (match Json.member "message" (Json.member "error" bad_app) with
           | Json.Str m -> m
           | _ -> ""));
      let unhostable =
        request t
          (frame
             [
               ("op", Json.Str "analyze");
               ( "app",
                 Json.Str
                   "task T1 compute=3 deadline=9 proc=P1 res=r1\nnode N1 proc=P2 cost=5\n"
               );
             ])
      in
      check_bool "unhostable app is a structured error" false (is_ok unhostable);
      let bad_edit =
        request t
          (frame
             [
               ("op", Json.Str "whatif");
               ("app", Json.Str paper_text);
               ( "edits",
                 Json.List [ Json.Obj [ ("task", Json.Int 999); ("deadline", Json.Int 5) ] ] );
             ])
      in
      check_string "out-of-range edit -> S301" "S301" (error_code bad_edit);
      (* after all of that, the daemon still answers correctly *)
      let alive =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_bool "daemon survives its worst clients" true (is_ok alive);
      check_string "and still answers exactly"
        (Protocol.to_line (Json.of_analysis (Rtlb.Analysis.run (uniform paper) paper)))
        (result_line alive))

(* ------------------------------------------------------------------ *)
(* Acceptance storm: 8 concurrent clients under a seeded chaos plan    *)
(* ------------------------------------------------------------------ *)

type expect = { e_label : string; e_line : string; e_want : string }

let storm_requests () =
  let apps =
    paper
    :: List.map
         (fun seed ->
           Workload.Gen.layered_frames ~seed ~frames:2 ~tasks_per_frame:12 ())
         [ 3; 4 ]
  in
  List.concat_map
    (fun app ->
      let text = Rtfmt.Appfile.to_string app in
      let system = uniform app in
      let record = Rtlb.Analysis.run system app in
      let soa = Rtlb.Soa.analyze system app in
      let d0 = (Rtlb.App.task app 0).Rtlb.Task.deadline in
      let edits = [ Rtlb.Incremental.Set_deadline { task = 0; deadline = d0 + 7 } ] in
      let edited = Rtlb.Analysis.run system (Rtlb.Incremental.apply app edits) in
      [
        {
          e_label = "analyze/record";
          e_line = frame [ ("op", Json.Str "analyze"); ("app", Json.Str text) ];
          e_want = Protocol.to_line (Json.of_analysis record);
        };
        {
          e_label = "analyze/soa";
          e_line =
            frame
              [
                ("op", Json.Str "analyze");
                ("app", Json.Str text);
                ("engine", Json.Str "soa");
              ];
          e_want = Protocol.to_line (Json.of_analysis soa);
        };
        {
          e_label = "whatif";
          e_line =
            frame
              [
                ("op", Json.Str "whatif");
                ("app", Json.Str text);
                ( "edits",
                  Json.List
                    [
                      Json.Obj
                        [ ("task", Json.Int 0); ("deadline", Json.Int (d0 + 7)) ];
                    ] );
              ];
          e_want = Protocol.to_line (Json.of_whatif ~base:record ~edited);
        };
      ])
    apps

(* Seeds chosen so the two storms together replay every server-side
   fault class: 11 expands to transient raises + a mid-request worker
   kill + two bad frames, 1 to slow clients + a mid-request kill + a
   bad frame (plans are deterministic, see seeded-plan tests). *)
let storm_with ~seed ~kills ~delays () =
  let expects = Array.of_list (storm_requests ()) in
  let clients = 8 and per_client = 5 in
  let plan = Chaos.server_plan_of_seed ~requests:(clients * per_client) seed in
  let frame_no = Atomic.make 0 in
  let sent_garbage = Atomic.make 0 in
  let failures = Atomic.make [] in
  let fail fmt =
    Printf.ksprintf
      (fun m -> Atomic.set failures (m :: Atomic.get failures))
      fmt
  in
  with_chaos plan (fun () ->
      with_server (fun t ->
          let client c =
            for k = 0 to per_client - 1 do
              let idx = Atomic.fetch_and_add frame_no 1 in
              let delay = Chaos.client_delay_ms idx in
              if delay > 0 then Thread.delay (float_of_int delay /. 1000.0);
              if Chaos.frame_corrupt idx then begin
                Atomic.incr sent_garbage;
                let reply = request t "{\"id\": \"broken\", " in
                if error_code reply <> "S300" then
                  fail "client %d frame %d: corrupt frame got %s" c idx
                    (error_code reply)
              end
              else begin
                let e = expects.(((c * per_client) + k) mod Array.length expects) in
                let reply = request t e.e_line in
                if not (is_ok reply) then
                  fail "client %d frame %d (%s): unexpected error %s" c idx
                    e.e_label (error_code reply)
                else if result_line reply <> e.e_want then
                  fail "client %d frame %d (%s): result diverged" c idx
                    e.e_label
              end
            done
          in
          let threads = List.init clients (fun c -> Thread.create client c) in
          List.iter Thread.join threads;
          (match Atomic.get failures with
          | [] -> ()
          | msgs -> Alcotest.fail (String.concat "\n" msgs));
          (* the plan's faults really fired *)
          check_int "every corrupted frame was sent" (Atomic.get sent_garbage)
            (Chaos.fired_bad_frames ());
          check_int "mid-request worker kills fired" kills
            (Chaos.fired_request_kills ());
          check_int "client stalls fired" delays (Chaos.fired_client_delays ());
          (* daemon is still alive and exact after the storm *)
          let alive = request t (frame [ ("op", Json.Str "ping") ]) in
          check_bool "daemon survived the plan" true (is_ok alive);
          let stats =
            request t (frame [ ("op", Json.Str "stats") ])
          in
          let counter name =
            match Json.member name (Json.member "result" stats) with
            | Json.Int n -> n
            | _ -> -1
          in
          let legit = (clients * per_client) - Atomic.get sent_garbage in
          check_int "every legitimate frame was admitted" legit
            (counter "requests_admitted");
          check_bool "every corrupted frame was rejected" true
            (counter "requests_rejected" >= Atomic.get sent_garbage)))

(* ------------------------------------------------------------------ *)
(* Line reader: the frame cap binds buffered bytes, not only lines     *)
(* ------------------------------------------------------------------ *)

(* Regression for the unbounded-buffer bug: a client streaming an
   endless frame with no '\n' used to grow the reader's buffer without
   bound (the cap was only checked on complete lines, which never
   arrived).  Now the reader must report Overflow as soon as the
   buffered newline-free bytes exceed the cap — long before the flood
   ends — with memory bounded by cap + one read chunk. *)
let flood_capped () =
  let module Lr = Rtlb_serve.Line_reader in
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  let max_bytes = 4096 in
  let lr = Lr.create ~max_bytes r in
  let chunk = Bytes.make 1024 'x' in
  let writer =
    Thread.create
      (fun () ->
        (* 16 KiB of newline-free garbage — and the pipe stays OPEN:
           overflow must fire from buffered bytes alone, not from EOF *)
        for _ = 1 to 16 do
          ignore (Unix.write w chunk 0 (Bytes.length chunk))
        done)
      ()
  in
  let event = Lr.read lr ~stop:(fun () -> false) in
  Thread.join writer;
  (match event with
  | Lr.Overflow -> ()
  | Lr.Line _ -> Alcotest.fail "no-newline flood produced a line"
  | Lr.Eof -> Alcotest.fail "no-newline flood reported EOF");
  check_bool "buffered memory stays bounded" true
    (Lr.buffered lr <= max_bytes + 65536);
  (* the reader is poisoned: it keeps refusing, it does not resync *)
  check_bool "overflow is sticky" true
    (Lr.read lr ~stop:(fun () -> false) = Lr.Overflow);
  (* a sane frame on a fresh reader still parses *)
  let lr2 = Lr.create ~max_bytes r in
  ignore (Unix.write_substring w "{\"op\": \"ping\"}\n" 0 15);
  match Lr.read lr2 ~stop:(fun () -> false) with
  | Lr.Line _ -> ()
  | _ -> Alcotest.fail "fresh reader failed on a normal line"

(* The daemon front end answers the flood with S300 and drops the
   connection instead of ballooning. *)
let flood_rejected_end_to_end () =
  let config = { (quick_config ()) with Server.max_frame_bytes = 2048 } in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rtlb-flood-%d.sock" (Unix.getpid ()))
  in
  let t = Server.create ~config () in
  let stop = Atomic.make false in
  let ready = ref false in
  let m = Mutex.create () and c = Condition.create () in
  let server_thread =
    Thread.create
      (fun () ->
        Server.serve t
          ~on_ready:(fun _ ->
            Mutex.lock m;
            ready := true;
            Condition.signal c;
            Mutex.unlock m)
          ~endpoints:[ Server.Unix_path path ]
          ~stop:(fun () -> Atomic.get stop)
          ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server_thread)
  @@ fun () ->
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX path);
  let flood = Bytes.make 4096 'y' in
  ignore (Unix.write fd flood 0 (Bytes.length flood));
  let lr = Rtlb_serve.Line_reader.create fd in
  (match Rtlb_serve.Line_reader.read lr ~stop:(fun () -> false) with
  | Rtlb_serve.Line_reader.Line reply ->
      check_string "flood refused with S300" "S300"
        (error_code (Json.parse reply))
  | _ -> Alcotest.fail "no reply to the oversized frame");
  (* the daemon closed its end: the next read hits EOF *)
  match Rtlb_serve.Line_reader.read lr ~stop:(fun () -> false) with
  | Rtlb_serve.Line_reader.Eof -> ()
  | _ -> Alcotest.fail "connection was not dropped after overflow"

(* ------------------------------------------------------------------ *)
(* locked_writer: short writes and EAGAIN never truncate or tear       *)
(* ------------------------------------------------------------------ *)

let writer_no_tearing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* non-blocking writer end with a tiny send buffer: big frames MUST
     hit partial writes and EAGAIN (the old writer silently dropped the
     rest of the frame on EAGAIN — truncating or tearing it) *)
  Unix.set_nonblock a;
  (try Unix.setsockopt_int a Unix.SO_SNDBUF 4096
   with Unix.Unix_error _ -> ());
  let write = Server.locked_writer a in
  let frames_per_thread = 40 and writers = 2 in
  let payload tid k =
    (* ~8 KiB, bigger than the send buffer, tagged per frame *)
    Printf.sprintf "%d:%d:%s" tid k (String.make 8192 (Char.chr (65 + tid)))
  in
  let senders =
    List.init writers (fun tid ->
        Thread.create
          (fun () ->
            for k = 0 to frames_per_thread - 1 do
              write (payload tid k)
            done)
          ())
  in
  (* deliberately slow reader: drain in small sips so the writer keeps
     running into a full buffer *)
  let lr = Rtlb_serve.Line_reader.create b in
  let got = ref [] in
  let expected = writers * frames_per_thread in
  while List.length !got < expected do
    match Rtlb_serve.Line_reader.read lr ~stop:(fun () -> false) with
    | Rtlb_serve.Line_reader.Line l -> got := l :: !got
    | _ -> Alcotest.fail "reader lost the stream"
  done;
  List.iter Thread.join senders;
  let seen = List.sort compare !got in
  let want =
    List.sort compare
      (List.concat_map
         (fun tid -> List.init frames_per_thread (payload tid))
         (List.init writers Fun.id))
  in
  check_int "every frame arrived exactly once" (List.length want)
    (List.length seen);
  List.iter2 (fun w s -> check_string "frame intact (not torn/truncated)" w s)
    want seen

(* ------------------------------------------------------------------ *)
(* retry hints: clamped, depth-aware, never zero or negative           *)
(* ------------------------------------------------------------------ *)

let retry_hint_bounds () =
  check_int "drained queue still hints 25ms" 25
    (Server.retry_hint_ms ~workers:2 ~depth:0);
  check_int "scales with standing depth per worker" 825
    (Server.retry_hint_ms ~workers:2 ~depth:64);
  check_int "upper clamp at 30s" 30_000
    (Server.retry_hint_ms ~workers:1 ~depth:10_000_000);
  check_bool "workers=0 does not divide by zero" true
    (Server.retry_hint_ms ~workers:0 ~depth:0 >= 1);
  check_bool "negative depth cannot go below the floor" true
    (Server.retry_hint_ms ~workers:2 ~depth:(-5) >= 1);
  (* and the S303 reply really carries it *)
  let config = { (quick_config ()) with Server.queue_capacity = 0 } in
  with_server ~config (fun t ->
      let reply =
        request t (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
      in
      check_string "queue full -> S303" "S303" (error_code reply);
      match Json.member "retry_after_ms" (Json.member "error" reply) with
      | Json.Int ms -> check_bool "hint positive" true (ms >= 1)
      | _ -> Alcotest.fail "S303 without retry_after_ms")

(* ------------------------------------------------------------------ *)
(* Quota: exhaustion and refill against a fake clock                   *)
(* ------------------------------------------------------------------ *)

let quota_schedule () =
  let module Quota = Rtlb_serve.Quota in
  let t_ns = ref 0L in
  let q = Quota.create ~now:(fun () -> !t_ns) ~rate_per_s:2.0 ~burst:2.0 () in
  check_bool "burst admits" true (Quota.take q "alice" = Quota.Admit);
  check_bool "burst admits again" true (Quota.take q "alice" = Quota.Admit);
  (match Quota.take q "alice" with
  | Quota.Admit -> Alcotest.fail "empty bucket admitted"
  | Quota.Reject { retry_after_ms } ->
      (* one token at 2/s = 500ms away, exactly *)
      check_int "hint is the token drip time" 500 retry_after_ms);
  (* other tenants are isolated *)
  check_bool "bob unaffected" true (Quota.take q "bob" = Quota.Admit);
  (* half a second later alice has exactly one token back *)
  t_ns := Int64.add !t_ns 500_000_000L;
  check_bool "refilled token admits" true (Quota.take q "alice" = Quota.Admit);
  (match Quota.take q "alice" with
  | Quota.Admit -> Alcotest.fail "token refilled twice"
  | Quota.Reject { retry_after_ms } ->
      check_int "drained again" 500 retry_after_ms);
  (* a clock that jumps backwards must never drain tokens or crash,
     and the hint stays in [1, 60000] *)
  t_ns := Int64.sub !t_ns 2_000_000_000L;
  (match Quota.take q "alice" with
  | Quota.Admit -> Alcotest.fail "backwards clock minted a token"
  | Quota.Reject { retry_after_ms } ->
      check_bool "hint clamped positive" true
        (retry_after_ms >= 1 && retry_after_ms <= Quota.max_retry_ms));
  (* sub-millisecond deficits round up to 1, never 0 *)
  let fast = Quota.create ~now:(fun () -> 0L) ~rate_per_s:1e6 ~burst:1.0 () in
  ignore (Quota.take fast "x");
  (match Quota.take fast "x" with
  | Quota.Reject { retry_after_ms } -> check_int "floor clamp" 1 retry_after_ms
  | Quota.Admit -> Alcotest.fail "empty fast bucket admitted");
  (* a glacial rate clamps at the 60s ceiling *)
  let slow = Quota.create ~now:(fun () -> 0L) ~rate_per_s:1e-6 ~burst:1.0 () in
  ignore (Quota.take slow "y");
  (match Quota.take slow "y" with
  | Quota.Reject { retry_after_ms } ->
      check_int "ceiling clamp" Quota.max_retry_ms retry_after_ms
  | Quota.Admit -> Alcotest.fail "empty slow bucket admitted");
  check_int "tracked tenants" 2 (Quota.tenants q)

(* end-to-end: over-quota frames get S307 with a hint; other tenants
   keep flowing; the counters record it *)
let quota_s307 () =
  let tracer = Tracer.make () in
  let quota = Rtlb_serve.Quota.create ~rate_per_s:0.001 ~burst:2.0 () in
  let config =
    {
      (quick_config ()) with
      Server.workers = 0;
      jobs = 1;
      tracer;
      quota = Some quota;
    }
  in
  with_server ~config (fun t ->
      let send tenant =
        let replies = ref [] in
        Server.submit t
          (frame
             [
               ("op", Json.Str "analyze");
               ("app", Json.Str paper_text);
               ("tenant", Json.Str tenant);
             ])
          (fun r -> replies := r :: !replies);
        !replies
      in
      ignore (send "alice");
      ignore (send "alice");
      (match send "alice" with
      | [ reply ] ->
          let reply = Json.parse reply in
          check_string "third alice frame -> S307" "S307" (error_code reply);
          (match Json.member "name" (Json.member "error" reply) with
          | Json.Str n -> check_string "stable name" "quota_exceeded" n
          | _ -> Alcotest.fail "S307 without a name");
          (match Json.member "retry_after_ms" (Json.member "error" reply) with
          | Json.Int ms -> check_bool "hint positive" true (ms >= 1)
          | _ -> Alcotest.fail "S307 without retry_after_ms")
      | _ -> Alcotest.fail "over-quota frame was not rejected synchronously");
      check_bool "bob still admitted" true (send "bob" = []);
      (* ping/stats are not metered *)
      check_bool "ping unmetered" true
        (is_ok (request t (frame [ ("op", Json.Str "ping") ])));
      check_int "quota_rejections counted" 1
        (Tracer.counter tracer Tracer.Quota_rejections);
      check_int "also counted as a rejection" 1
        (Tracer.counter tracer Tracer.Requests_rejected);
      (* the queued work still runs to completion *)
      Server.run_pending t;
      check_int "admitted jobs all ran" 3
        (Tracer.counter tracer Tracer.Requests_admitted))

(* ------------------------------------------------------------------ *)
(* Coalescing: batched what-ifs are bit-identical to sequential        *)
(* ------------------------------------------------------------------ *)

(* workers = 0 + run_pending makes the batching deterministic: all N
   compatible what-ifs are queued when the (synchronous) worker pass
   starts, so they form one batch — and every reply must be
   byte-identical to the same frames run under coalesce = false. *)
let coalesce_identity =
  qtest ~count:25 "coalescing: batched replies == sequential replies"
    (arb_instance ~max_tasks:10 ())
    (fun i ->
      let text = Rtfmt.Appfile.to_string i.Helpers.app in
      let d0 = (Rtlb.App.task i.Helpers.app 0).Rtlb.Task.deadline in
      let n = 5 in
      let frames =
        List.init n (fun k ->
            frame
              [
                ("id", Json.Int k);
                ("op", Json.Str "whatif");
                ("app", Json.Str text);
                ( "edits",
                  Json.List
                    [
                      Json.Obj
                        [
                          ("task", Json.Int 0);
                          (* different edits per request: compatibility is
                             per instance, not per edit *)
                          ("deadline", Json.Int (d0 + 1 + k));
                        ];
                    ] );
              ])
      in
      let run ~coalesce =
        let tracer = Tracer.make () in
        let config =
          {
            (quick_config ()) with
            Server.workers = 0;
            jobs = 1;
            tracer;
            coalesce;
          }
        in
        let t = Server.create ~config () in
        Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
        let replies = Array.make n "" in
        List.iteri
          (fun k f -> Server.submit t f (fun r -> replies.(k) <- r))
          frames;
        Server.run_pending t;
        Array.iteri
          (fun k r -> if r = "" then Alcotest.failf "reply %d missing" k)
          replies;
        (replies, Tracer.counter tracer Tracer.Coalesced_queries)
      in
      let batched, coalesced = run ~coalesce:true in
      let sequential, uncoalesced = run ~coalesce:false in
      check_int "all n what-ifs shared one batch" (n - 1) coalesced;
      check_int "coalesce=false batches nothing" 0 uncoalesced;
      Array.iteri
        (fun k b ->
          if b <> sequential.(k) then
            Alcotest.failf "reply %d diverged under coalescing:\n%s\nvs\n%s" k
              b sequential.(k))
        batched;
      true)

(* priority admission: an explicit low-priority cold analysis queued
   first must not delay a warm what-if queued after it *)
let priority_orders_queue () =
  let tracer = Tracer.make () in
  let config =
    { (quick_config ()) with Server.workers = 0; jobs = 1; tracer }
  in
  with_server ~config (fun t ->
      let order = ref [] in
      let submit label fields =
        Server.submit t (frame fields) (fun _ -> order := label :: !order)
      in
      submit "cold-low"
        [
          ("op", Json.Str "analyze");
          ("app", Json.Str paper_text);
          ("priority", Json.Str "low");
        ];
      submit "check-auto-high"
        [ ("op", Json.Str "check"); ("app", Json.Str paper_text) ];
      submit "explicit-high"
        [
          ("op", Json.Str "analyze");
          ("app", Json.Str paper_text);
          ("priority", Json.Str "high");
        ];
      Server.run_pending t;
      check_bool "high-priority work ran before the cold analysis" true
        (!order = [ "cold-low"; "explicit-high"; "check-auto-high" ]))

(* ------------------------------------------------------------------ *)
(* Transports: Unix socket and TCP served simultaneously               *)
(* ------------------------------------------------------------------ *)

let tcp_and_unix () =
  let module Client = Rtlb_serve.Client in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rtlb-test-%d.sock" (Unix.getpid ()))
  in
  let t = Server.create ~config:(quick_config ()) () in
  let stop = Atomic.make false in
  let ready = ref [] in
  let m = Mutex.create () and c = Condition.create () in
  let server_thread =
    Thread.create
      (fun () ->
        Server.serve t
          ~on_ready:(fun addrs ->
            Mutex.lock m;
            ready := addrs;
            Condition.signal c;
            Mutex.unlock m)
          ~endpoints:[ Server.Unix_path path; Server.Tcp ("127.0.0.1", 0) ]
          ~stop:(fun () -> Atomic.get stop)
          ())
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Thread.join server_thread)
  @@ fun () ->
  Mutex.lock m;
  while !ready = [] do
    Condition.wait c m
  done;
  let addrs = !ready in
  Mutex.unlock m;
  (match addrs with
  | [ Unix.ADDR_UNIX p; Unix.ADDR_INET (_, port) ] ->
      check_string "unix endpoint reported" path p;
      check_bool "ephemeral TCP port resolved" true (port > 0)
  | _ -> Alcotest.fail "on_ready did not report both endpoints");
  let over_unix = Client.connect_unix ~retry_for:5.0 path in
  let over_tcp =
    match List.nth addrs 1 with
    | addr -> Client.connect_sockaddr ~retry_for:5.0 addr
  in
  Fun.protect
    ~finally:(fun () ->
      Client.close over_unix;
      Client.close over_tcp)
  @@ fun () ->
  check_bool "ping over unix" true (Client.ping over_unix);
  check_bool "ping over tcp" true (Client.ping over_tcp);
  let analyze client =
    match
      Client.call client
        (Json.Obj [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])
    with
    | Ok reply when is_ok reply -> result_line reply
    | Ok reply -> Alcotest.failf "analyze failed: %s" (error_code reply)
    | Error e -> Alcotest.failf "transport failure: %s" e
  in
  check_string "both transports serve identical answers" (analyze over_unix)
    (analyze over_tcp);
  (* pipelining with out-of-order completion still matches ids *)
  let replies =
    Client.pipeline over_tcp
      [
        Json.Obj [ ("op", Json.Str "ping") ];
        Json.Obj [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ];
        Json.Obj [ ("op", Json.Str "ping") ];
      ]
  in
  check_int "pipeline answers everything" 3
    (List.length (List.filter Result.is_ok replies))

(* ------------------------------------------------------------------ *)
(* Chaos: the tenantflood directive                                    *)
(* ------------------------------------------------------------------ *)

let tenantflood_dsl () =
  (match Chaos.parse "tenantflood@3:5" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
      with_chaos plan (fun () ->
          check_int "other indices unaffected" 0 (Chaos.tenant_flood_burst 2);
          check_int "burst delivered at its index" 5
            (Chaos.tenant_flood_burst 3);
          check_int "one-shot: second probe gets nothing" 0
            (Chaos.tenant_flood_burst 3);
          check_int "fired counter" 1 (Chaos.fired_tenant_floods ())));
  (match Chaos.parse "tenantflood@1" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
      with_chaos plan (fun () ->
          check_int "default burst" 8 (Chaos.tenant_flood_burst 1)));
  (* round-trips through to_string, and bad specs are refused loudly *)
  (match Chaos.parse "tenantflood@2:3" with
  | Ok plan ->
      check_bool "to_string round-trips" true
        (string_contains ~needle:"tenantflood@2:3" (Chaos.to_string plan))
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Chaos.parse "tenantflood@x" with
  | Ok _ -> Alcotest.fail "malformed directive accepted"
  | Error _ -> ()

(* a flood burst from one tenant exhausts its bucket, collects S307s,
   and never starves the well-behaved tenant *)
let tenantflood_quota_storm () =
  let plan =
    match Chaos.parse "tenantflood@2:8" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let tracer = Tracer.make () in
  let quota = Rtlb_serve.Quota.create ~rate_per_s:0.001 ~burst:2.0 () in
  let config = { (quick_config ()) with Server.tracer; quota = Some quota } in
  with_chaos plan (fun () ->
      with_server ~config (fun t ->
          let analyze tenant =
            request t
              (frame
                 [
                   ("op", Json.Str "analyze");
                   ("app", Json.Str paper_text);
                   ("tenant", Json.Str tenant);
                 ])
          in
          check_bool "steady tenant flows before the flood" true
            (is_ok (analyze "steady"));
          let s307 = ref 0 in
          for i = 0 to 4 do
            (* the armed plan floods (burst 8) at request index 2 only *)
            let burst = Chaos.tenant_flood_burst i in
            for _ = 1 to burst do
              let reply = analyze "flood" in
              if is_ok reply then ()
              else begin
                check_string "flood failures are structured S307" "S307"
                  (error_code reply);
                incr s307
              end
            done
          done;
          check_int "the flood fired" 1 (Chaos.fired_tenant_floods ());
          (* burst 2.0, no meaningful refill: 8 flood frames -> 2 admits *)
          check_int "the flood tenant was throttled" 6 !s307;
          check_bool "steady tenant still flows after the flood" true
            (is_ok (analyze "steady"));
          check_int "tracer agrees" !s307
            (Tracer.counter tracer Tracer.Quota_rejections);
          (* quota pressure never poisons the daemon *)
          check_bool "daemon alive" true
            (is_ok (request t (frame [ ("op", Json.Str "ping") ])))))

(* ---- resilience layer ------------------------------------------- *)

module Client = Rtlb_serve.Client
module Breaker = Rtlb_serve.Breaker
module Journal = Rtlb_serve.Journal
module Health = Rtlb_serve.Health

let temp_path suffix =
  let path = Filename.temp_file "rtlb_serve_test" suffix in
  Sys.remove path;
  path

(* satellite: the connect retry loop is jittered exponential backoff
   (was a fixed 5 ms sleep) and an exhausted budget surfaces the
   attempt count instead of the last bare Unix_error *)
let connect_backoff () =
  let path = temp_path ".sock" in
  (* nothing ever listens at [path] *)
  (match Client.connect_unix ~retry_for:0.25 path with
  | _ -> Alcotest.fail "connected to nothing"
  | exception Failure msg ->
      check_bool "attempt count surfaced" true
        (string_contains ~needle:"attempts" msg)
  | exception Unix.Unix_error _ ->
      Alcotest.fail "expected Failure naming the attempt count");
  (* [retry_for = 0] keeps the original contract: immediate raise *)
  match Client.connect_unix path with
  | _ -> Alcotest.fail "connected to nothing"
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* satellite: an error code this client build has never heard of (a
   newer daemon) decodes as a generic server error carrying the raw
   code — never a raise, never a client-breaking protocol addition *)
let decode_forward_compat () =
  let err_reply code =
    Json.Obj
      [
        ("id", Json.Int 1);
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            [
              ("code", Json.Str code);
              ("name", Json.Str "mystery");
              ("message", Json.Str "from the future");
              ("retry_after_ms", Json.Int 7);
            ] );
      ]
  in
  (match Client.decode_error (err_reply "S303") with
  | Some e ->
      check_bool "known code decodes typed" true
        (e.Client.se_code = Some Protocol.Overloaded);
      check_bool "retry hint carried" true (e.Client.se_retry_after_ms = Some 7)
  | None -> Alcotest.fail "S303 reply not recognised as an error");
  (match Client.decode_error (err_reply "S399") with
  | Some e ->
      check_bool "unknown code -> generic variant" true (e.Client.se_code = None);
      check_string "raw code carried" "S399" e.Client.se_code_id;
      check_string "message carried" "from the future" e.Client.se_message
  | None -> Alcotest.fail "synthetic S399 reply not recognised as an error");
  check_bool "ok replies are not errors" true
    (Client.decode_error (Json.Obj [ ("ok", Json.Bool true) ]) = None);
  check_bool "total on junk" true (Client.decode_error Json.Null = None);
  (* ok:false with a malformed error object must still not raise *)
  check_bool "total on malformed errors" true
    (Client.decode_error (Json.Obj [ ("ok", Json.Bool false) ]) <> None)

(* the breaker state machine on a fake clock: closed -> open at the
   threshold -> half-open single probe after the cooldown -> closed on
   probe success / re-open on probe failure *)
let breaker_machine () =
  let now = ref 0L in
  let tracer = Tracer.make () in
  let b =
    Breaker.create
      ~now:(fun () -> !now)
      ~tracer ~threshold:2 ~cooldown_ms:100 ()
  in
  let at_ms ms = Int64.mul (Int64.of_int ms) 1_000_000L in
  check_bool "closed: proceed" true (Breaker.check b "k" = Breaker.Proceed);
  Breaker.failure b "k";
  check_bool "below threshold: still closed" true
    (Breaker.check b "k" = Breaker.Proceed);
  Breaker.failure b "k";
  check_int "trip counted" 1 (Tracer.counter tracer Tracer.Breaker_opens);
  (match Breaker.check b "k" with
  | Breaker.Fast_fail { retry_after_ms } ->
      check_bool "hint within the cooldown" true
        (retry_after_ms >= 1 && retry_after_ms <= 100)
  | _ -> Alcotest.fail "open breaker must fast-fail");
  check_int "open_count sees it" 1 (Breaker.open_count b);
  check_bool "other fingerprints unaffected" true
    (Breaker.check b "other" = Breaker.Proceed);
  now := at_ms 101;
  check_bool "cooldown elapsed: single probe" true
    (Breaker.check b "k" = Breaker.Probe);
  check_int "probe counted" 1 (Tracer.counter tracer Tracer.Breaker_probes);
  (match Breaker.check b "k" with
  | Breaker.Fast_fail _ -> ()
  | _ -> Alcotest.fail "probe in flight: everyone else fast-fails");
  Breaker.failure b "k";
  (match Breaker.check b "k" with
  | Breaker.Fast_fail _ -> ()
  | _ -> Alcotest.fail "failed probe re-opens");
  check_int "re-open counted" 2 (Tracer.counter tracer Tracer.Breaker_opens);
  now := at_ms 300;
  check_bool "second probe window" true (Breaker.check b "k" = Breaker.Probe);
  Breaker.success b "k";
  check_bool "probe success closes" true (Breaker.check b "k" = Breaker.Proceed);
  check_int "nothing open" 0 (Breaker.open_count b)

(* S308 end to end: an instance that keeps failing analysis trips its
   breaker at admission; unrelated requests and the ping/stats ops
   never consult it *)
let breaker_s308 () =
  let tracer = Tracer.make () in
  let breaker = Breaker.create ~tracer ~threshold:2 ~cooldown_ms:60 () in
  let config =
    { (quick_config ()) with Server.tracer; breaker = Some breaker }
  in
  with_server ~config (fun t ->
      let bad () =
        request t
          (frame [ ("op", Json.Str "analyze"); ("app", Json.Str "garbage") ])
      in
      check_string "first failure: S302" "S302" (error_code (bad ()));
      check_string "second failure: S302" "S302" (error_code (bad ()));
      let tripped = bad () in
      check_string "third request fast-fails" "S308" (error_code tripped);
      (match Client.decode_error tripped with
      | Some e ->
          check_bool "S308 carries a retry hint" true
            (e.Client.se_retry_after_ms <> None);
          check_bool "decodes as Circuit_open" true
            (e.Client.se_code = Some Protocol.Circuit_open)
      | None -> Alcotest.fail "S308 reply did not decode");
      check_bool "healthy instances flow" true
        (is_ok
           (request t
              (frame
                 [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])));
      check_bool "ping never consults the breaker" true
        (is_ok (request t (frame [ ("op", Json.Str "ping") ])));
      (* cooldown over: exactly one probe goes through (and fails
         again, re-opening) *)
      ignore (Unix.select [] [] [] 0.08);
      check_string "probe re-runs the analysis" "S302" (error_code (bad ()));
      check_string "failed probe re-opens" "S308" (error_code (bad ()));
      check_bool "breaker trips counted" true
        (Tracer.counter tracer Tracer.Breaker_opens >= 2))

(* journal: record/reopen round-trip, recency order, dedup,
   capacity trim, compaction *)
let journal_roundtrip () =
  let path = temp_path ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let j = Journal.open_ ~capacity:3 path in
  Journal.record j `Record ~app:"a";
  Journal.record j `Soa ~app:"a";
  (* same text, different engine: distinct instances *)
  Journal.record j `Record ~app:"b";
  Journal.record j `Record ~app:"a";
  (* refresh: moves to front *)
  Journal.record j `Record ~app:"a";
  (* duplicate head: no-op *)
  check_int "recency-deduped length" 3 (Journal.length j);
  (match Journal.entries j with
  | [ e1; e2; e3 ] ->
      check_string "most recent first" "a" e1.Journal.je_app;
      check_bool "engine preserved" true (e1.Journal.je_engine = `Record);
      check_string "then b" "b" e2.Journal.je_app;
      check_bool "then the soa one" true (e3.Journal.je_engine = `Soa)
  | es -> Alcotest.failf "expected 3 entries, got %d" (List.length es));
  Journal.close j;
  let j2 = Journal.open_ ~capacity:3 path in
  check_int "reopen preserves the live set" 3 (Journal.length j2);
  check_int "clean file: nothing dropped" 0 (Journal.dropped_tail j2);
  (* capacity trim on reopen *)
  Journal.close j2;
  let j3 = Journal.open_ ~capacity:1 path in
  check_int "tighter capacity trims to most recent" 1 (Journal.length j3);
  (match Journal.entries j3 with
  | [ e ] -> check_string "the survivor is the most recent" "a" e.Journal.je_app
  | _ -> Alcotest.fail "expected 1 entry");
  (* compaction: enough distinct appends to pass max(2*cap, 8) *)
  for i = 0 to 11 do
    Journal.record j3 `Record ~app:(Printf.sprintf "app%d" i)
  done;
  Journal.close j3;
  let stat = Unix.stat path in
  check_bool "log-structured file stays bounded" true
    (stat.Unix.st_size < 4096);
  let j4 = Journal.open_ ~capacity:8 path in
  check_bool "compacted journal reopens clean" true
    (Journal.length j4 >= 1 && Journal.dropped_tail j4 = 0);
  Journal.close j4

(* corrupt tails: garbage lines, checksum mismatches and torn appends
   are dropped together with everything after them, and the clean
   prefix is repaired in place *)
let journal_corrupt_tail () =
  let path = temp_path ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let j = Journal.open_ ~capacity:4 path in
  Journal.record j `Record ~app:"keep1";
  Journal.record j `Record ~app:"keep2";
  Journal.close j;
  (* a torn append: valid-looking JSON with no trailing newline *)
  let append s =
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
    output_string oc s;
    close_out oc
  in
  append "{\"sum\": \"deadbeef\"";
  let j2 = Journal.open_ ~capacity:4 path in
  check_int "torn tail dropped" 1 (Journal.dropped_tail j2);
  check_int "clean prefix kept" 2 (Journal.length j2);
  Journal.close j2;
  (* the repair rewrote the file: reopening is clean again *)
  let j3 = Journal.open_ ~capacity:4 path in
  check_int "repaired file reopens clean" 0 (Journal.dropped_tail j3);
  Journal.close j3;
  (* a checksum mismatch mid-file poisons everything after it *)
  append
    "{\"sum\": \"00000000000000000000000000000000\",\"engine\": \
     \"record\",\"app\": \"evil\"}\n";
  append
    (Rtfmt.Json.to_string ~indent:false
       (Json.Obj
          [
            ("sum", Json.Str (Digest.to_hex (Digest.string "record\x00late")));
            ("engine", Json.Str "record");
            ("app", Json.Str "late");
          ])
    ^ "\n");
  let j4 = Journal.open_ ~capacity:4 path in
  check_int "bad checksum drops itself and the rest" 2
    (Journal.dropped_tail j4);
  check_int "only the trusted prefix survives" 2 (Journal.length j4);
  Journal.close j4;
  (* a corrupt header distrusts the whole file *)
  let oc = open_out_bin path in
  output_string oc "not a journal\n{\"sum\": \"x\"}\n";
  close_out oc;
  let j5 = Journal.open_ ~capacity:4 path in
  check_int "corrupt header: nothing trusted" 0 (Journal.length j5);
  check_bool "everything counted as dropped" true (Journal.dropped_tail j5 >= 2);
  Journal.close j5

(* chaos: the journalcorrupt directive garbles the tail exactly once,
   and the next open drops it — never trusts it *)
let journal_chaos_corrupt () =
  let path = temp_path ".journal" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let plan =
    match Chaos.parse "journalcorrupt@1" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  with_chaos plan (fun () ->
      let j = Journal.open_ ~capacity:4 path in
      Journal.record j `Record ~app:"first";
      Journal.record j `Record ~app:"second";
      (* append #1: garbled after the record *)
      Journal.record j `Record ~app:"third";
      Journal.close j;
      check_int "the corruption fired once" 1 (Chaos.fired_journal_corrupts ()));
  let j2 = Journal.open_ ~capacity:4 path in
  check_bool "the garbled tail was dropped, not trusted" true
    (Journal.dropped_tail j2 >= 1);
  (* "second"'s record line itself is intact (the garbage follows its
     newline), so only the debris and anything after it are lost *)
  check_bool "the trusted prefix survives" true (Journal.length j2 >= 2);
  Journal.close j2

let resilience_dsl () =
  (match Chaos.parse "killserver@3,journalcorrupt@2" with
  | Ok plan ->
      check_bool "killserver round-trips" true
        (string_contains ~needle:"killserver@3" (Chaos.to_string plan));
      check_bool "journalcorrupt round-trips" true
        (string_contains ~needle:"journalcorrupt@2" (Chaos.to_string plan));
      with_chaos plan (fun () ->
          check_bool "wrong index: no fire" true (not (Chaos.server_kill 2));
          check_bool "right index fires" true (Chaos.server_kill 3);
          check_bool "budget is one-shot" true (not (Chaos.server_kill 3));
          check_int "fired counter" 1 (Chaos.fired_server_kills ()))
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Chaos.parse "killserver@x" with
  | Ok _ -> Alcotest.fail "malformed killserver accepted"
  | Error _ -> ());
  match Chaos.parse "journalcorrupt@0x3" with
  | Ok _ -> Alcotest.fail "non-decimal payload accepted"
  | Error _ -> ()

(* the health op, the health file protocol, and the extended stats
   fields (uptime_ms / cache_entries / journal_entries) *)
let health_and_stats () =
  let health_path = temp_path ".health" in
  let journal_path = temp_path ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ health_path; journal_path ])
  @@ fun () ->
  Health.write ~path:health_path Health.Ready;
  check_bool "health file round-trips" true
    (Health.read ~path:health_path = Some Health.Ready);
  Health.write ~path:health_path Health.Degraded;
  check_bool "degraded round-trips" true
    (Health.read ~path:health_path = Some Health.Degraded);
  check_bool "unknown words are not a state" true
    (Health.state_of_name "sideways" = None);
  let journal = Journal.open_ ~capacity:4 journal_path in
  let config =
    {
      (quick_config ()) with
      Server.journal = Some journal;
      health_file = Some health_path;
      generation = 2;
    }
  in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () ->
      Server.shutdown t;
      Journal.close journal)
  @@ fun () ->
  let reply = request t (frame [ ("op", Json.Str "health") ]) in
  check_bool "health op answers ok" true (is_ok reply);
  let result = Json.member "result" reply in
  check_bool "status is ready" true
    (Json.member "status" result = Json.Str "ready");
  check_bool "generation reported" true
    (Json.member "generation" result = Json.Int 2);
  (match Json.member "uptime_ms" result with
  | Json.Int ms -> check_bool "uptime sane" true (ms >= 0)
  | _ -> Alcotest.fail "uptime_ms missing from health");
  check_bool "an analyze lands in the journal" true
    (is_ok
       (request t
          (frame [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ])));
  let stats = request t (frame [ ("op", Json.Str "stats") ]) in
  let sresult = Json.member "result" stats in
  (match Json.member "uptime_ms" sresult with
  | Json.Int ms -> check_bool "stats uptime sane" true (ms >= 0)
  | _ -> Alcotest.fail "uptime_ms missing from stats");
  check_bool "cache_entries pinned" true
    (Json.member "cache_entries" sresult = Json.Int 1);
  check_bool "journal_entries pinned" true
    (Json.member "journal_entries" sresult = Json.Int 1);
  (* server restarts surface as the generation-seeded counter *)
  (match Json.member "server_restarts" sresult with
  | Json.Int n -> check_int "generation seeds server_restarts" 2 n
  | _ -> Alcotest.fail "server_restarts missing from stats");
  Server.drain t;
  check_bool "drain writes the health file" true
    (Health.read ~path:health_path = Some Health.Draining)

(* satellite: qcheck the cache's checkout/checkin discipline against a
   reference LRU model — eviction racing a checked-out handle must
   never hand out a discarded handle, and the eviction counter must
   stay consistent *)
let cache_race_ops =
  let tiny =
    Rtfmt.Appfile.parse
      "task A compute=1 release=0 deadline=4 proc=P1\n\
       task B compute=1 release=0 deadline=4 proc=P1\n"
  in
  let tiny_app = tiny.Rtfmt.Appfile.app in
  let tiny_sys =
    match tiny.Rtfmt.Appfile.system with
    | Some s -> s
    | None -> uniform tiny_app
  in
  let keys = [| "k0"; "k1"; "k2"; "k3" |] in
  let interp ops =
    let tracer = Tracer.make () in
    let cache = Cache.create ~tracer ~capacity:2 () in
    (* model state: LRU order (most recent first) and checked-out
       handles, both tagged with physical identity *)
    let resident = ref [] (* (key, handle) *) in
    let out = ref [] in
    let discarded = ref [] in
    let evictions = ref 0 in
    let ok = ref true in
    let assert_ cond = if not cond then ok := false in
    List.iter
      (fun (op, ki) ->
        let k = keys.(ki mod Array.length keys) in
        match op mod 3 with
        | 0 -> (
            (* acquire: checkout, cold-build on miss *)
            if not (List.mem_assoc k !out) then
              match Cache.checkout cache k with
              | Some h ->
                  assert_ (List.mem_assoc k !resident);
                  assert_ (not (List.exists (fun d -> d == h) !discarded));
                  assert_ (
                    match List.assoc_opt k !resident with
                    | Some m -> m == h
                    | None -> false);
                  resident := List.remove_assoc k !resident;
                  out := (k, h) :: !out
              | None ->
                  assert_ (not (List.mem_assoc k !resident));
                  let h = Rtlb.Incremental.create tiny_sys tiny_app in
                  out := (k, h) :: !out)
        | 1 -> (
            (* release: checkin; model the capacity eviction *)
            match List.assoc_opt k !out with
            | Some h ->
                out := List.remove_assoc k !out;
                Cache.checkin cache k h;
                resident := (k, h) :: List.remove_assoc k !resident;
                let rec split n = function
                  | [] -> ([], [])
                  | l when n = 0 -> ([], l)
                  | x :: rest ->
                      let keep, drop = split (n - 1) rest in
                      (x :: keep, drop)
                in
                let keep, drop = split 2 !resident in
                resident := keep;
                List.iter
                  (fun (_, h) ->
                    discarded := h :: !discarded;
                    incr evictions)
                  drop
            | None -> ())
        | _ -> (
            (* crash: a checked-out handle is never checked back in *)
            match List.assoc_opt k !out with
            | Some h ->
                out := List.remove_assoc k !out;
                Cache.discard cache;
                discarded := h :: !discarded;
                incr evictions
            | None -> ()))
      ops;
    assert_ (Cache.length cache = List.length !resident);
    assert_ (Tracer.counter tracer Tracer.Evictions = !evictions);
    (* every still-resident key must hand back exactly the modelled
       handle, never a discarded one *)
    List.iter
      (fun (k, h) ->
        match Cache.checkout cache k with
        | Some got -> assert_ (got == h)
        | None -> assert_ false)
      !resident;
    !ok
  in
  qtest ~count:60 "cache: eviction vs checkout discipline (model-based)"
    QCheck.(
      list_of_size Gen.(int_range 1 40) (pair (int_bound 2) (int_bound 3)))
    interp

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "protocol rejects malformed requests" `Quick
          protocol_strict;
        Alcotest.test_case "LRU cache: capacity, eviction, checkout" `Quick
          cache_lru;
        Alcotest.test_case "admission: overload -> S303 + retry hint" `Quick
          overload_rejected;
        Alcotest.test_case "drain: in-flight finish, new refused (S306)"
          `Quick drain_refuses;
        Alcotest.test_case "deadline budget: partial reply, never cached"
          `Quick deadline_budget_partial;
        Alcotest.test_case "isolation: bad frames/apps/edits never kill it"
          `Quick isolation;
        Alcotest.test_case "storm: 8 clients, kills + raises + bad frames"
          `Quick
          (storm_with ~seed:11 ~kills:1 ~delays:0);
        Alcotest.test_case "storm: 8 clients, slow clients + kill + bad frame"
          `Quick
          (storm_with ~seed:1 ~kills:1 ~delays:2);
        Alcotest.test_case "line reader: no-newline flood caps buffered bytes"
          `Quick flood_capped;
        Alcotest.test_case "flood over a socket -> S300 + connection dropped"
          `Quick flood_rejected_end_to_end;
        Alcotest.test_case
          "locked_writer: EAGAIN/short writes never tear frames" `Quick
          writer_no_tearing;
        Alcotest.test_case "retry_after_ms: clamped, depth-aware, never <= 0"
          `Quick retry_hint_bounds;
        Alcotest.test_case "quota: exhaustion and refill on a fake clock"
          `Quick quota_schedule;
        Alcotest.test_case "quota: over-quota tenant -> S307, others flow"
          `Quick quota_s307;
        coalesce_identity;
        Alcotest.test_case "priority: warm/cheap never stuck behind cold"
          `Quick priority_orders_queue;
        Alcotest.test_case "transports: Unix socket and TCP simultaneously"
          `Quick tcp_and_unix;
        Alcotest.test_case "chaos: tenantflood directive parses and fires"
          `Quick tenantflood_dsl;
        Alcotest.test_case "chaos: tenant flood throttled without starvation"
          `Quick tenantflood_quota_storm;
        Alcotest.test_case "client: connect backoff surfaces attempt count"
          `Quick connect_backoff;
        Alcotest.test_case "client: unknown S3xx decodes forward-compatibly"
          `Quick decode_forward_compat;
        Alcotest.test_case "breaker: state machine on a fake clock" `Quick
          breaker_machine;
        Alcotest.test_case "breaker: S308 fast-fail end to end" `Quick
          breaker_s308;
        Alcotest.test_case "journal: round-trip, recency, compaction" `Quick
          journal_roundtrip;
        Alcotest.test_case "journal: corrupt tails dropped, never trusted"
          `Quick journal_corrupt_tail;
        Alcotest.test_case "chaos: journalcorrupt garbles exactly once" `Quick
          journal_chaos_corrupt;
        Alcotest.test_case "chaos: killserver/journalcorrupt DSL" `Quick
          resilience_dsl;
        Alcotest.test_case "health: op, file protocol, extended stats" `Quick
          health_and_stats;
        cache_race_ops;
      ] );
  ]
