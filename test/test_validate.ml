(* Tests for the validation & diagnostics subsystem: stable codes with
   source lines from crafted app files, the exhaustive (not fail-fast)
   contract, the corruption properties (every Workload.Mutate corruption
   is caught, every generated instance passes the spec phase), the
   satellite line-number fixes in the strict Appfile parser, and the
   appfile round-trip including systems. *)

open Helpers

let codes ds = List.map (fun d -> d.Rtlb.Validate.d_code) ds
let has_code c ds = List.mem c (codes ds)

let find_code c ds =
  match List.find_opt (fun d -> d.Rtlb.Validate.d_code = c) ds with
  | Some d -> d
  | None ->
      Alcotest.failf "no %s among [%s]" c (String.concat "; " (codes ds))

let check_src src = Rtfmt.Appfile.check (Rtfmt.Appfile.parse_spec src)

(* ------------------------------------------------------------------ *)
(* One crafted file per code, with the line number asserted             *)
(* ------------------------------------------------------------------ *)

let code_cycle () =
  let ds =
    check_src
      "task a compute=1 deadline=10 proc=P\n\
       task b compute=1 deadline=10 proc=P\n\
       edge a b 0\n\
       edge b a 0\n"
  in
  let d = find_code "E101" ds in
  check_bool "cycle names both tasks" true
    (string_contains ~needle:"a" d.Rtlb.Validate.d_message);
  Alcotest.(check (option int))
    "cycle reported at its first edge" (Some 3) d.Rtlb.Validate.d_line

let code_self_loop () =
  let ds =
    check_src "task a compute=1 deadline=10 proc=P\nedge a a 0\n"
  in
  let d = find_code "E101" ds in
  Alcotest.(check (option int)) "self loop line" (Some 2) d.Rtlb.Validate.d_line

let code_task_window () =
  let ds = check_src "task a compute=7 release=2 deadline=8 proc=P\n" in
  let d = find_code "E102" ds in
  Alcotest.(check (option int)) "window line" (Some 1) d.Rtlb.Validate.d_line

let code_estlct_window () =
  (* Task-level windows are fine; only the Section 4 propagation exposes
     that b cannot start before a finishes. *)
  let ds =
    check_src
      "task a compute=5 deadline=20 proc=P\n\
       task b compute=5 deadline=9 proc=P\n\
       edge a b 0\n"
  in
  (* The propagation squeezes both endpoints: a's LCT drops to 4 via the
     backward pass, b's EST rises to 5 via the forward pass. *)
  let e102s = List.filter (fun d -> d.Rtlb.Validate.d_code = "E102") ds in
  let subject_of (d : Rtlb.Validate.diag) =
    (d.Rtlb.Validate.d_subject, d.Rtlb.Validate.d_line)
  in
  check_bool "task a squeezed by the backward pass" true
    (List.mem ("task a", Some 1) (List.map subject_of e102s));
  check_bool "task b squeezed by the forward pass" true
    (List.mem ("task b", Some 2) (List.map subject_of e102s))

let code_dangling_edge () =
  let ds =
    check_src "task a compute=1 deadline=10 proc=P\nedge a ghost 0\n"
  in
  let d = find_code "E103" ds in
  Alcotest.(check (option int)) "edge line" (Some 2) d.Rtlb.Validate.d_line

let code_dangling_proc () =
  let ds =
    check_src "task a compute=1 deadline=10 proc=P2\nshared P1=5\n" in
  check_bool "missing proc cost is E103" true (has_code "E103" ds)

let code_negative_quantity () =
  let ds =
    check_src
      "task a compute=-1 deadline=10 proc=P\n\
       task b compute=1 deadline=10 proc=P\n\
       edge a b -4\n"
  in
  let es = List.filter (fun d -> d.Rtlb.Validate.d_code = "E104") ds in
  check_int "negative compute and negative message both reported" 2
    (List.length es)

let code_duplicate_task () =
  let ds =
    check_src
      "task a compute=1 deadline=10 proc=P\n\
       task a compute=2 deadline=10 proc=P\n"
  in
  let d = find_code "E105" ds in
  Alcotest.(check (option int))
    "duplicate reported at its own line" (Some 2) d.Rtlb.Validate.d_line

let code_duplicate_edge () =
  let ds =
    check_src
      "task a compute=1 deadline=10 proc=P\n\
       task b compute=1 deadline=10 proc=P\n\
       edge a b 0\n\
       edge a b 3\n"
  in
  let d = find_code "E105" ds in
  Alcotest.(check (option int)) "second edge" (Some 4) d.Rtlb.Validate.d_line

let code_mixed_periodic () =
  let ds =
    check_src
      "task a compute=1 period=10 proc=P\n\
       task b compute=1 deadline=10 proc=P\n"
  in
  check_bool "mixed model is E106" true (has_code "E106" ds)

let code_warnings_clean_exit () =
  let ds =
    check_src
      "task a compute=0 deadline=10 proc=P\n\
       task b compute=1 deadline=10 proc=P\n\
       shared P=1 r9=2\n"
  in
  check_bool "zero compute is W201" true (has_code "W201" ds);
  check_bool "unused resource is W202" true (has_code "W202" ds);
  check_bool "warnings are not errors" false (Rtlb.Validate.has_errors ds)

let exhaustive_not_fail_fast () =
  (* One file, many independent problems: all of them must surface. *)
  let ds =
    check_src
      "task a compute=-3 deadline=10 proc=P\n\
       task a compute=1 deadline=10 proc=P\n\
       task b compute=9 release=5 deadline=6 proc=P\n\
       edge a ghost 2\n\
       edge b b 0\n"
  in
  List.iter
    (fun c -> check_bool ("found " ^ c) true (has_code c ds))
    [ "E104"; "E105"; "E102"; "E103"; "E101" ]

let to_string_format () =
  let d =
    {
      Rtlb.Validate.d_code = "E102";
      d_severity = Rtlb.Validate.Error;
      d_subject = "task a";
      d_message = "boom";
      d_line = Some 7;
    }
  in
  check_string "one-line diagnostic format" "app.app:7: E102 task a: boom"
    (Rtlb.Validate.to_string ~file:"app.app" d);
  check_string "prefix shrinks without a line" "E102 task a: boom"
    (Rtlb.Validate.to_string { d with Rtlb.Validate.d_line = None })

(* ------------------------------------------------------------------ *)
(* Strict parser: located errors, no leaked exceptions (satellite)      *)
(* ------------------------------------------------------------------ *)

let expect_parse_error ~line ~needle src =
  match Rtfmt.Appfile.parse src with
  | _ -> Alcotest.failf "parse accepted %S" src
  | exception Rtfmt.Appfile.Parse_error (l, m) ->
      check_int ("line of " ^ needle) line l;
      check_bool
        (Printf.sprintf "message %S mentions %S" m needle)
        true
        (string_contains ~needle m)

let parse_located_errors () =
  expect_parse_error ~line:3 ~needle:"duplicate task name"
    "task a compute=1 deadline=9 proc=P\n\
     task b compute=1 deadline=9 proc=P\n\
     task a compute=2 deadline=9 proc=P\n";
  expect_parse_error ~line:2 ~needle:"unknown task"
    "task a compute=1 deadline=9 proc=P\nedge a ghost 0\n";
  expect_parse_error ~line:2 ~needle:"self loop"
    "task a compute=1 deadline=9 proc=P\nedge a a 0\n";
  expect_parse_error ~line:4 ~needle:"duplicate edge"
    "task a compute=1 deadline=9 proc=P\n\
     task b compute=1 deadline=9 proc=P\n\
     edge a b 0\n\
     edge a b 1\n";
  expect_parse_error ~line:1 ~needle:"task a"
    "task a compute=-1 deadline=9 proc=P\n"

let parse_cycle_is_parse_error () =
  (* Dag.Cycle used to escape Appfile.parse; it must surface as a located
     Parse_error naming the cycle. *)
  expect_parse_error ~line:4 ~needle:"precedence cycle"
    "task a compute=1 deadline=9 proc=P\n\
     task b compute=1 deadline=9 proc=P\n\
     task c compute=1 deadline=9 proc=P\n\
     edge a b 0\n\
     edge b c 0\n\
     edge c a 0\n"

(* ------------------------------------------------------------------ *)
(* Properties over generated instances                                  *)
(* ------------------------------------------------------------------ *)

let spec_phase_accepts_valid =
  qtest "constructed apps never trip the spec phase"
    (arb_instance ()) (fun i ->
      let tasks, edges = Rtlb.Validate.spec_of_app i.app in
      let ds =
        Rtlb.Validate.check_spec ~system:(Some (shared_of i)) ~tasks ~edges
      in
      not (Rtlb.Validate.has_errors ds))

let check_agrees_with_feasibility =
  qtest "has_errors(check) = window infeasibility on valid apps"
    (arb_instance ()) (fun i ->
      let system = shared_of i in
      let ds = Rtlb.Validate.check ~system i.app in
      let infeasible =
        Result.is_error
          (Rtlb.Est_lct.feasible_windows i.app
             (Rtlb.Est_lct.compute system i.app))
      in
      Rtlb.Validate.has_errors ds = infeasible)

let corruptions_always_caught =
  qtest "every corruption yields at least one E* diagnostic"
    (arb_instance ()) (fun i ->
      List.for_all
        (fun c ->
          match Workload.Mutate.corrupt i.app c with
          | None -> true (* instance lacks the structure; nothing to check *)
          | Some (tasks, edges) ->
              let ds = Rtlb.Validate.check_spec ~system:None ~tasks ~edges in
              Rtlb.Validate.has_errors ds
              || QCheck.Test.fail_reportf "corruption %s went undetected"
                   (Workload.Mutate.corruption_name c))
        Workload.Mutate.corruptions)

(* ------------------------------------------------------------------ *)
(* Appfile round-trip, including systems                                *)
(* ------------------------------------------------------------------ *)

let apps_equal a b =
  Rtlb.App.tasks a = Rtlb.App.tasks b
  && Dag.fold_edges (Rtlb.App.graph a) ~init:[] ~f:(fun acc ~src ~dst m ->
         (src, dst, m) :: acc)
     = Dag.fold_edges (Rtlb.App.graph b) ~init:[] ~f:(fun acc ~src ~dst m ->
           (src, dst, m) :: acc)

let roundtrip_with_shared =
  qtest "parse (to_string ~system:shared app) round-trips"
    (arb_instance ()) (fun i ->
      let system = shared_of i in
      let { Rtfmt.Appfile.app; system = sys' } =
        Rtfmt.Appfile.parse (Rtfmt.Appfile.to_string ~system i.app)
      in
      apps_equal i.app app && sys' = Some system)

let roundtrip_with_dedicated =
  qtest "parse (to_string ~system:dedicated app) round-trips"
    (arb_instance ()) (fun i ->
      let system = dedicated_of i in
      let { Rtfmt.Appfile.app; system = sys' } =
        Rtfmt.Appfile.parse (Rtfmt.Appfile.to_string ~system i.app)
      in
      apps_equal i.app app && sys' = Some system)

let roundtrip_spec_is_clean =
  qtest "rendered valid apps pass the full check"
    (arb_instance ()) (fun i ->
      let src = Rtfmt.Appfile.to_string ~system:(shared_of i) i.app in
      let ds = Rtfmt.Appfile.check (Rtfmt.Appfile.parse_spec src) in
      (* E102 may legitimately fire (generated instances can be window-
         infeasible); everything else would be a validator bug. *)
      List.for_all
        (fun (d : Rtlb.Validate.diag) ->
          match d.Rtlb.Validate.d_severity with
          | Rtlb.Validate.Warning -> true
          | Rtlb.Validate.Error -> d.Rtlb.Validate.d_code = "E102")
        ds)

let suite =
  [
    ( "validate",
      [
        Alcotest.test_case "E101 cycle with line" `Quick code_cycle;
        Alcotest.test_case "E101 self loop" `Quick code_self_loop;
        Alcotest.test_case "E102 task-level window" `Quick code_task_window;
        Alcotest.test_case "E102 after EST/LCT propagation" `Quick
          code_estlct_window;
        Alcotest.test_case "E103 dangling edge endpoint" `Quick
          code_dangling_edge;
        Alcotest.test_case "E103 processor missing from system" `Quick
          code_dangling_proc;
        Alcotest.test_case "E104 negative quantities" `Quick
          code_negative_quantity;
        Alcotest.test_case "E105 duplicate task" `Quick code_duplicate_task;
        Alcotest.test_case "E105 duplicate edge" `Quick code_duplicate_edge;
        Alcotest.test_case "E106 mixed periodic/one-shot" `Quick
          code_mixed_periodic;
        Alcotest.test_case "W201/W202 are warnings, not errors" `Quick
          code_warnings_clean_exit;
        Alcotest.test_case "validation is exhaustive, not fail-fast" `Quick
          exhaustive_not_fail_fast;
        Alcotest.test_case "diagnostic line format" `Quick to_string_format;
        Alcotest.test_case "strict parse errors carry source lines" `Quick
          parse_located_errors;
        Alcotest.test_case "cycles are Parse_error, not Dag.Cycle" `Quick
          parse_cycle_is_parse_error;
        spec_phase_accepts_valid;
        check_agrees_with_feasibility;
        corruptions_always_caught;
        roundtrip_with_shared;
        roundtrip_with_dedicated;
        roundtrip_spec_is_clean;
      ] );
  ]
