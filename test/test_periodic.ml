(* Tests for the periodic front end (hyperperiod unrolling). *)

open Helpers

let pt ?(offset = 0) ?deadline ~name ~period ~compute () =
  Rtlb.Periodic.ptask ~name ~period ~offset ~compute ?deadline ~proc:"P" ()

let hyperperiod_lcm () =
  check_int "lcm 5,10,20" 20
    (Rtlb.Periodic.hyperperiod
       [
         pt ~name:"a" ~period:5 ~compute:1 ();
         pt ~name:"b" ~period:10 ~compute:1 ();
         pt ~name:"c" ~period:20 ~compute:1 ();
       ]);
  check_int "lcm coprime" 35
    (Rtlb.Periodic.hyperperiod
       [ pt ~name:"a" ~period:5 ~compute:1 (); pt ~name:"b" ~period:7 ~compute:1 () ]);
  check_int "empty" 1 (Rtlb.Periodic.hyperperiod [])

let hyperperiod_overflow () =
  (* Five coprime 5-digit primes: the true hyperperiod is ~1e25, far past
     max_int.  Pre-fix the fold wrapped silently and handed the bogus
     horizon to unroll. *)
  let primes = [ 99991; 99989; 99971; 99961; 99929 ] in
  let tasks =
    List.mapi
      (fun k p ->
        pt ~name:(Printf.sprintf "t%d" k) ~period:p ~compute:1 ())
      primes
  in
  (match Rtlb.Periodic.hyperperiod tasks with
  | exception Invalid_argument msg ->
      check_bool "message reports the overflow" true
        (string_contains ~needle:"overflow" msg);
      check_bool "message names the offending period" true
        (string_contains ~needle:"99961" msg)
  | h -> Alcotest.fail (Printf.sprintf "expected overflow, got %d" h));
  (* near the edge but representable stays exact *)
  check_int "large but safe lcm" (99991 * 99989)
    (Rtlb.Periodic.hyperperiod
       [ pt ~name:"a" ~period:99991 ~compute:1 ();
         pt ~name:"b" ~period:99989 ~compute:1 () ])

let utilisation_sum () =
  let u =
    Rtlb.Periodic.utilisation
      [ pt ~name:"a" ~period:4 ~compute:2 (); pt ~name:"b" ~period:6 ~compute:3 () ]
  in
  check_string "1/2 + 1/2" "1" (Rat.to_string u)

let ptask_validation () =
  let bad name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail name
  in
  bad "zero period" (fun () -> pt ~name:"x" ~period:0 ~compute:1 ());
  bad "offset too large" (fun () ->
      pt ~name:"x" ~period:5 ~offset:5 ~compute:1 ());
  bad "compute > deadline" (fun () ->
      pt ~name:"x" ~period:5 ~compute:4 ~deadline:3 ())

let unroll_counts () =
  let tasks =
    [ pt ~name:"a" ~period:5 ~compute:1 (); pt ~name:"b" ~period:10 ~compute:2 () ]
  in
  check_int "job count over hyperperiod" 3 (Rtlb.Periodic.job_count tasks);
  let app = Rtlb.Periodic.unroll ~tasks ~edges:[] () in
  check_int "app size" 3 (Rtlb.App.n_tasks app);
  (* releases and absolute deadlines *)
  let a1 = Rtlb.App.task app 1 in
  check_string "job name" "a@1" a1.Rtlb.Task.name;
  check_int "release" 5 a1.Rtlb.Task.release;
  check_int "absolute deadline" 10 a1.Rtlb.Task.deadline

let unroll_horizon () =
  let tasks = [ pt ~name:"a" ~period:5 ~compute:1 () ] in
  check_int "two hyperperiods" 4 (Rtlb.Periodic.job_count ~horizon:20 tasks)

let same_rate_edges () =
  let tasks =
    [ pt ~name:"src" ~period:10 ~compute:2 (); pt ~name:"dst" ~period:10 ~compute:1 () ]
  in
  let app =
    Rtlb.Periodic.unroll ~horizon:30 ~tasks ~edges:[ ("src", "dst", 3) ] ()
  in
  (* job k of src (ids 0..2) feeds job k of dst (ids 3..5) *)
  check_int "edges" 3 (Dag.n_edges (Rtlb.App.graph app));
  check_int "message preserved" 3 (Rtlb.App.message app ~src:0 ~dst:3);
  check_int_list "dst@1 preds" [ 1 ] (Rtlb.App.preds app 4)

let oversampling_edges () =
  (* slow producer (20) feeding fast consumer (5): all four consumer jobs
     in a hyperperiod read producer job 0 *)
  let tasks =
    [ pt ~name:"slow" ~period:20 ~compute:2 (); pt ~name:"fast" ~period:5 ~compute:1 () ]
  in
  let app =
    Rtlb.Periodic.unroll ~tasks ~edges:[ ("slow", "fast", 1) ] ()
  in
  check_int "all consumers wired" 4 (Dag.n_edges (Rtlb.App.graph app));
  check_int_list "slow@0 succs are the four fast jobs" [ 1; 2; 3; 4 ]
    (Rtlb.App.succs app 0)

let undersampling_edges () =
  (* fast producer (5) feeding slow consumer (10): consumer job k reads
     producer job 2k (latest released at or before it) *)
  let tasks =
    [ pt ~name:"fast" ~period:5 ~compute:1 (); pt ~name:"slow" ~period:10 ~compute:2 () ]
  in
  let app =
    Rtlb.Periodic.unroll ~horizon:20 ~tasks ~edges:[ ("fast", "slow", 1) ] ()
  in
  (* fast jobs 0..3 are ids 0..3; slow jobs ids 4,5 *)
  check_int_list "slow@0 reads fast@0" [ 0 ] (Rtlb.App.preds app 4);
  check_int_list "slow@1 reads fast@2" [ 2 ] (Rtlb.App.preds app 5)

let offset_pairing_error () =
  (* consumer released before any producer job exists *)
  let tasks =
    [
      pt ~name:"late" ~period:10 ~offset:5 ~compute:1 ();
      pt ~name:"early" ~period:10 ~compute:1 ();
    ]
  in
  match Rtlb.Periodic.unroll ~tasks ~edges:[ ("late", "early", 1) ] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let duplicate_names () =
  let tasks =
    [ pt ~name:"x" ~period:5 ~compute:1 (); pt ~name:"x" ~period:10 ~compute:1 () ]
  in
  match Rtlb.Periodic.unroll ~tasks ~edges:[] () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let analysis_dominates_utilisation () =
  (* On one processor type, LB_P >= ceil(utilisation): over the interval
     [0, H] every job window is whole, so the demand is U*H. *)
  let tasks =
    [
      pt ~name:"a" ~period:4 ~compute:3 ();
      pt ~name:"b" ~period:8 ~compute:5 ();
      pt ~name:"c" ~period:16 ~compute:6 ();
    ]
  in
  let app = Rtlb.Periodic.unroll ~tasks ~edges:[] () in
  let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
  let u = Rtlb.Periodic.utilisation tasks in
  check_bool "LB >= ceil U" true (Rtlb.Analysis.bound_for a "P" >= Rat.ceil u)

let arb_ptasks =
  let gen st =
    let n = 1 + QCheck.Gen.int_bound 4 st in
    List.init n (fun k ->
        let period = List.nth [ 4; 5; 8; 10; 20 ] (QCheck.Gen.int_bound 4 st) in
        let compute = 1 + QCheck.Gen.int_bound (min 4 (period - 1)) st in
        let offset = QCheck.Gen.int_bound (period - 1) st in
        pt ~name:(Printf.sprintf "t%d" k) ~period ~offset ~compute ())
  in
  let print tasks =
    String.concat ";"
      (List.map
         (fun t ->
           Printf.sprintf "%s(T%d,O%d,C%d)" t.Rtlb.Periodic.pt_name
             t.Rtlb.Periodic.pt_period t.Rtlb.Periodic.pt_offset
             t.Rtlb.Periodic.pt_compute)
         tasks)
  in
  QCheck.make ~print gen

let dbf_values () =
  let tasks =
    [ pt ~name:"a" ~period:5 ~compute:2 ~deadline:4 (); pt ~name:"b" ~period:10 ~compute:3 () ]
  in
  check_int "dbf 0" 0 (Rtlb.Periodic.demand_bound_function tasks 0);
  check_int "dbf 3" 0 (Rtlb.Periodic.demand_bound_function tasks 3);
  check_int "dbf 4" 2 (Rtlb.Periodic.demand_bound_function tasks 4);
  (* t=10: a jobs with deadline <= 10: k=0 (d4), k=1 (d9) -> 4; b job 0 -> 3 *)
  check_int "dbf 10" 7 (Rtlb.Periodic.demand_bound_function tasks 10);
  check_int "dbf 20" 14 (Rtlb.Periodic.demand_bound_function tasks 20)

let edf_feasibility () =
  check_bool "U = 1 implicit feasible" true
    (Rtlb.Periodic.edf_uniprocessor_feasible
       [ pt ~name:"a" ~period:2 ~compute:1 (); pt ~name:"b" ~period:4 ~compute:2 () ]);
  check_bool "U > 1 infeasible" false
    (Rtlb.Periodic.edf_uniprocessor_feasible
       [ pt ~name:"a" ~period:2 ~compute:2 (); pt ~name:"b" ~period:4 ~compute:1 () ]);
  (* constrained deadlines can break feasibility below U = 1 *)
  check_bool "tight deadlines infeasible" false
    (Rtlb.Periodic.edf_uniprocessor_feasible
       [
         pt ~name:"a" ~period:10 ~compute:3 ~deadline:4 ();
         pt ~name:"b" ~period:10 ~compute:3 ~deadline:4 ();
       ]);
  check_bool "empty feasible" true (Rtlb.Periodic.edf_uniprocessor_feasible [])

let prop_tests =
  [
    qtest ~count:150 "unrolled job releases lie in the horizon" arb_ptasks
      (fun tasks ->
        let app = Rtlb.Periodic.unroll ~tasks ~edges:[] () in
        let h = Rtlb.Periodic.hyperperiod tasks in
        Array.for_all
          (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.release < h)
          (Rtlb.App.tasks app));
    qtest ~count:150 "job count matches unroll" arb_ptasks (fun tasks ->
        Rtlb.Periodic.job_count tasks
        = Rtlb.App.n_tasks (Rtlb.Periodic.unroll ~tasks ~edges:[] ()));
    qtest ~count:100 "LB dominates ceil(utilisation)" arb_ptasks (fun tasks ->
        (* the clean steady-state comparison needs synchronous implicit-
           deadline tasks: zero offsets, deadline = period, so one
           hyperperiod carries exactly U*H mandatory work *)
        let tasks =
          List.map
            (fun t ->
              Rtlb.Periodic.ptask ~name:t.Rtlb.Periodic.pt_name
                ~period:t.Rtlb.Periodic.pt_period
                ~compute:t.Rtlb.Periodic.pt_compute ~proc:"P" ())
            tasks
        in
        let app = Rtlb.Periodic.unroll ~tasks ~edges:[] () in
        let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
        Rtlb.Analysis.bound_for a "P"
        >= Rat.ceil (Rtlb.Periodic.utilisation tasks));
    qtest ~count:100
      "synchronous sets: EDF-uniprocessor infeasibility = LB >= 2"
      arb_ptasks (fun tasks ->
        (* synchronous, constrained deadlines, preemptive jobs *)
        let tasks =
          List.map
            (fun t ->
              Rtlb.Periodic.ptask ~name:t.Rtlb.Periodic.pt_name
                ~period:t.Rtlb.Periodic.pt_period
                ~compute:t.Rtlb.Periodic.pt_compute
                ~deadline:
                  (max t.Rtlb.Periodic.pt_compute
                     (t.Rtlb.Periodic.pt_period - 1))
                ~proc:"P" ~preemptive:true ())
            tasks
        in
        let app = Rtlb.Periodic.unroll ~tasks ~edges:[] () in
        let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
        let lb = Rtlb.Analysis.bound_for a "P" in
        Rtlb.Periodic.edf_uniprocessor_feasible tasks = (lb <= 1));
  ]

(* One job per period, exactly, including at the hyperperiod boundary:
   for any horizon that is a whole number of hyperperiods, every task has
   horizon/period jobs — the release at the boundary itself belongs to
   the next cycle.  The recurrent unroller leans on this invariant, so
   pin it across offsets and multi-cycle horizons. *)
let one_job_per_period () =
  let t ~offset = pt ~name:"t" ~period:6 ~offset ~compute:1 () in
  for offset = 0 to 5 do
    let tasks = [ t ~offset ] in
    check_int "hyperperiod is the period" 6 (Rtlb.Periodic.hyperperiod tasks);
    check_int
      (Printf.sprintf "one job at offset %d" offset)
      1
      (Rtlb.Periodic.job_count tasks);
    let app = Rtlb.Periodic.unroll ~tasks ~edges:[] () in
    check_int "unrolled app has one task" 1 (Rtlb.App.n_tasks app);
    check_int "job released at the offset" offset
      (Rtlb.App.task app 0).Rtlb.Task.release;
    (* three hyperperiods: three jobs, one per period, none at 3H *)
    let h3 = Rtlb.Periodic.horizon_of ~cycles:3 tasks in
    check_int "3 cycles horizon" 18 h3;
    check_int
      (Printf.sprintf "three jobs at offset %d" offset)
      3
      (Rtlb.Periodic.job_count ~horizon:h3 tasks)
  done;
  (* the boundary release belongs to the next cycle *)
  check_int "release at horizon excluded" 2
    (Rtlb.Periodic.job_count ~horizon:12
       [ pt ~name:"t" ~period:6 ~compute:1 () ]);
  check_int "release just inside included" 3
    (Rtlb.Periodic.job_count ~horizon:13
       [ pt ~name:"t" ~period:6 ~compute:1 () ])

let horizon_of_overflow () =
  let tasks = [ pt ~name:"t" ~period:(max_int / 2) ~compute:1 () ] in
  (match Rtlb.Periodic.horizon_of ~cycles:4 tasks with
  | exception Invalid_argument msg ->
      check_bool "overflow reported" true
        (string_contains ~needle:"overflow" msg)
  | h -> Alcotest.fail (Printf.sprintf "expected overflow, got %d" h));
  (match Rtlb.Periodic.horizon_of ~cycles:0 tasks with
  | exception Invalid_argument _ -> ()
  | h -> Alcotest.fail (Printf.sprintf "expected cycles error, got %d" h));
  check_int "single cycle is the hyperperiod" (max_int / 2)
    (Rtlb.Periodic.horizon_of tasks)

(* Fail-before-fix: the O_max + 2H feasibility horizon used to wrap for
   hyperperiods near max_int/2; both point loops then collected nothing
   and the vacuous window check declared this demonstrably infeasible
   set (both tasks demand 2^60 by t = 2^60, total 2^61 > 2^60) EDF
   feasible.  Now the overflow raises. *)
let edf_horizon_overflow () =
  let big = 1 lsl 61 in
  let tasks =
    [
      pt ~name:"a" ~period:big ~compute:(big / 2) ~deadline:(big / 2) ();
      pt ~name:"b" ~period:big ~compute:(big / 2) ~deadline:(big / 2) ();
    ]
  in
  match Rtlb.Periodic.edf_uniprocessor_feasible tasks with
  | exception Invalid_argument msg ->
      check_bool "overflow reported" true
        (string_contains ~needle:"overflow" msg)
  | verdict ->
      Alcotest.fail
        (Printf.sprintf "expected horizon overflow, got verdict %b" verdict)

let suite =
  [
    ( "periodic",
      [
        Alcotest.test_case "hyperperiod" `Quick hyperperiod_lcm;
        Alcotest.test_case "hyperperiod overflow" `Quick hyperperiod_overflow;
        Alcotest.test_case "one job per period" `Quick one_job_per_period;
        Alcotest.test_case "horizon_of overflow" `Quick horizon_of_overflow;
        Alcotest.test_case "EDF horizon overflow" `Quick edf_horizon_overflow;
        Alcotest.test_case "utilisation" `Quick utilisation_sum;
        Alcotest.test_case "ptask validation" `Quick ptask_validation;
        Alcotest.test_case "unroll counts" `Quick unroll_counts;
        Alcotest.test_case "explicit horizon" `Quick unroll_horizon;
        Alcotest.test_case "same-rate edges" `Quick same_rate_edges;
        Alcotest.test_case "oversampling edges" `Quick oversampling_edges;
        Alcotest.test_case "undersampling edges" `Quick undersampling_edges;
        Alcotest.test_case "pairing error" `Quick offset_pairing_error;
        Alcotest.test_case "duplicate names" `Quick duplicate_names;
        Alcotest.test_case "dominates utilisation" `Quick
          analysis_dominates_utilisation;
        Alcotest.test_case "demand bound function" `Quick dbf_values;
        Alcotest.test_case "EDF uniprocessor test" `Quick edf_feasibility;
      ]
      @ prop_tests );
  ]
