(* Crash-durability soak: the acceptance test for the process-level
   resilience layer.

   An 8-client seeded storm drives a REAL `rtlb serve --supervised`
   daemon — the actual CLI binary, launched as a separate process —
   whose environment arms a killserver chaos directive, so the serving
   child [_exit]s abruptly mid-storm and the watchdog restarts it over
   the inherited listening socket.  The Failover clients must complete
   the storm with every acknowledged reply delivered exactly once and
   byte-identical to a crash-free in-process run: the
   no-lost-acknowledged-reply invariant.

   The daemon must be a separate executable, not a [Unix.fork] of the
   test process: OCaml 5 forbids fork in any process that has ever
   spawned a domain, and earlier suites in the full test run exercise
   the domain pool.  Driving the shipped binary also makes the soak
   honest end to end — it covers the exact flag surface a deployment
   uses.

   Afterwards, warmth: a restart with the warm-state journal replays
   the storm's instances into the cache (journal_replays > 0) and the
   next analyze of a journaled instance builds nothing cold
   (cold_builds delta 0); the journal-disabled negative variant
   demonstrably serves cold (delta >= 1) — the journal is load-bearing,
   not decorative. *)

open Helpers
module Json = Rtfmt.Json
module Server = Rtlb_serve.Server
module Protocol = Rtlb_serve.Protocol
module Client = Rtlb_serve.Client
module Journal = Rtlb_serve.Journal
module Health = Rtlb_serve.Health
module Tracer = Rtlb_obs.Tracer

let paper_text = Rtfmt.Appfile.to_string Rtlb.Paper_example.app
let clients = 8
let requests_per_client = 6

(* The storm's frames, ids fixed so the crash run and the crash-free
   run are comparable request-for-request.  Engines alternate so the
   journal ends up holding BOTH instances (record and soa paper). *)
let storm_frames client =
  List.init requests_per_client (fun r ->
      Json.Obj
        [
          ("id", Json.Str (Printf.sprintf "c%d-r%d" client r));
          ("op", Json.Str "analyze");
          ("app", Json.Str paper_text);
          ("engine", Json.Str (if (client + r) mod 2 = 0 then "record" else "soa"));
        ])

(* Deterministic reference: the same frames against an in-process
   crash-free server, rendered compactly (the same rendering both the
   socket path and the Failover client's parse+re-render go through). *)
let crash_free_replies () =
  let config =
    {
      Server.default_config with
      Server.workers = 2;
      jobs = 1;
      tracer = Tracer.make ();
    }
  in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () -> Server.shutdown t) @@ fun () ->
  let table = Hashtbl.create 64 in
  for c = 0 to clients - 1 do
    List.iter
      (fun frame ->
        let line = Protocol.to_line frame in
        let m = Mutex.create () and cond = Condition.create () in
        let slot = ref None in
        Server.submit t line (fun reply ->
            Mutex.lock m;
            slot := Some reply;
            Condition.signal cond;
            Mutex.unlock m);
        Mutex.lock m;
        while !slot = None do
          Condition.wait cond m
        done;
        Mutex.unlock m;
        let raw = Option.get !slot in
        let id =
          match frame with
          | Json.Obj fields -> Option.get (List.assoc_opt "id" fields)
          | _ -> assert false
        in
        Hashtbl.replace table (Protocol.to_line id)
          (Protocol.to_line (Json.parse raw)))
      (storm_frames c)
  done;
  table

let wait_for pid =
  let rec go () =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_all path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in_noerr ic;
      s

(* Submit one frame on a workers:0 server and run it on this thread. *)
let request_inline t line =
  let slot = ref None in
  Server.submit t line (fun reply -> slot := Some reply);
  Server.run_pending t;
  match !slot with
  | Some reply -> reply
  | None -> Alcotest.fail "request never answered"

(* The built CLI binary, resolved relative to the test executable so
   the path holds under any cwd dune runs us from. *)
let rtlb_cli =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "rtlb_cli.exe"))

(* The storm through a supervised daemon whose serving child dies at
   admitted request #20 (of 48).  Each watchdog generation re-inherits
   the armed chaos budget (fork copy-on-write), so any generation that
   admits 20 requests dies too — more abrupt deaths, same invariants,
   and always fewer than the crash-loop threshold. *)
let soak ~with_journal () =
  let dir = Filename.temp_file "rtlb_soak" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let journal_path = Filename.concat dir "journal" in
  let health_path = Filename.concat dir "health" in
  let wd_log = Filename.concat dir "wd.log" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ sock; journal_path; health_path; wd_log ];
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* Launch the supervised daemon: the shipped binary, chaos armed via
     the environment, watchdog diagnostics captured on stderr. *)
  let argv =
    [ rtlb_cli; "serve"; "--supervised"; "--socket"; sock; "--health-file";
      health_path; "--workers"; "2"; "--jobs"; "1"; "--cache"; "8";
      "--max-crashes"; "5"; "--crash-window"; "60" ]
    @ (if with_journal then [ "--journal"; journal_path ] else [])
  in
  let env =
    Array.append
      (Array.of_list
         (List.filter
            (fun kv -> not (String.starts_with ~prefix:"RTLB_CHAOS=" kv))
            (Array.to_list (Unix.environment ()))))
      [| "RTLB_CHAOS=killserver@20" |]
  in
  let log_fd =
    Unix.openfile wd_log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
  in
  let wd_pid =
    Unix.create_process_env rtlb_cli (Array.of_list argv) env Unix.stdin
      Unix.stdout log_fd
  in
  Unix.close log_fd;
  (* test process: the reference replies, then the storm *)
  let expected = crash_free_replies () in
  let client_tracer = Tracer.make () in
  let results = Array.make clients [] in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun c ->
            let conn =
              Client.Failover.connect ~tracer:client_tracer ~retry_for:10.0
                [ Unix.ADDR_UNIX sock ]
            in
            Fun.protect ~finally:(fun () -> Client.Failover.close conn)
            @@ fun () ->
            results.(c) <- Client.Failover.pipeline conn (storm_frames c))
          c)
  in
  List.iter Thread.join threads;
  (* every acknowledged reply, exactly once, byte-identical *)
  let answered = ref 0 in
  for c = 0 to clients - 1 do
    List.iteri
      (fun r result ->
        let id = Protocol.to_line (Json.Str (Printf.sprintf "c%d-r%d" c r)) in
        match result with
        | Error msg -> Alcotest.failf "lost reply for %s: %s" id msg
        | Ok reply ->
            incr answered;
            let got = Protocol.to_line reply in
            let want =
              match Hashtbl.find_opt expected id with
              | Some w -> w
              | None -> Alcotest.failf "no reference reply for %s" id
            in
            Alcotest.(check string)
              (Printf.sprintf "reply %s == crash-free run" id)
              want got)
      results.(c)
  done;
  check_int "every request answered" (clients * requests_per_client) !answered;
  check_bool "the endpoint never disappeared (no client gave up)" true
    (Array.for_all (fun rs -> List.length rs = requests_per_client) results);
  check_bool "health file reads ready after the restart" true
    (Health.read ~path:health_path = Some Health.Ready);
  (* drain: SIGTERM to the watchdog forwards to the child; exit 0 *)
  Unix.kill wd_pid Sys.sigterm;
  (match wait_for wd_pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "watchdog exited %d, wanted 0" n
  | _ -> Alcotest.fail "watchdog did not exit cleanly");
  let log = read_all wd_log in
  check_bool "the kill really fired: generation 1 was spawned" true
    (string_contains ~needle:"generation 1" log);
  check_bool "clients failed over (tracer)" true
    (Tracer.counter client_tracer Tracer.Failovers >= 1);
  (* ---- warmth after restart --------------------------------------- *)
  let tracer = Tracer.make () in
  let journal =
    if with_journal then Some (Journal.open_ ~capacity:16 journal_path)
    else None
  in
  let config =
    {
      Server.default_config with
      Server.workers = 0;
      jobs = 1;
      tracer;
      journal;
    }
  in
  let t = Server.create ~config () in
  Fun.protect ~finally:(fun () ->
      Server.shutdown t;
      Option.iter Journal.close journal)
  @@ fun () ->
  Server.run_pending t (* background rehydration, drained to completion *);
  let cold_before = Tracer.counter tracer Tracer.Cold_builds in
  let reply =
    request_inline t
      (Protocol.to_line
         (Json.Obj
            [ ("op", Json.Str "analyze"); ("app", Json.Str paper_text) ]))
  in
  check_bool "post-restart analyze succeeds" true
    (Json.member "ok" (Json.parse reply) = Json.Bool true);
  let cold_delta = Tracer.counter tracer Tracer.Cold_builds - cold_before in
  if with_journal then begin
    check_int "journal replay rebuilt both instances" 2
      (Tracer.counter tracer Tracer.Journal_replays);
    check_int "journaled instance serves warm (no cold build)" 0 cold_delta
  end
  else begin
    check_int "no journal, no replays" 0
      (Tracer.counter tracer Tracer.Journal_replays);
    check_bool "journal disabled: the restart serves cold" true
      (cold_delta >= 1)
  end

let suite =
  [
    ( "resilience",
      [
        Alcotest.test_case
          "soak: watchdog + killserver, zero lost replies, journal warmth"
          `Slow (soak ~with_journal:true);
        Alcotest.test_case
          "soak negative: journal disabled loses warmth (cold restart)" `Slow
          (soak ~with_journal:false);
      ] );
  ]
