(* The packed (structure-of-arrays) engine's contract is value-level
   bit-identity with the record path: windows (est/lct values), bounds
   (values, witnesses, partitions), cost and completeness must all match
   Analysis.run exactly — merge sets and traces are the one documented
   divergence (Soa leaves them empty).  The properties below assert that
   identity over random instances on both system models, round-trip the
   packed representation back to the application, and pin the pruned
   interval scan to the unpruned reference.  Units cover the paper
   example, the examples/ file, the frame-structured scaling workload
   and the domain-pool path. *)

open Helpers

let bound_equal (a : Rtlb.Lower_bound.bound) (b : Rtlb.Lower_bound.bound) =
  a.Rtlb.Lower_bound.resource = b.Rtlb.Lower_bound.resource
  && a.Rtlb.Lower_bound.lb = b.Rtlb.Lower_bound.lb
  && a.Rtlb.Lower_bound.witness = b.Rtlb.Lower_bound.witness
  && a.Rtlb.Lower_bound.partition = b.Rtlb.Lower_bound.partition

(* Everything except merge sets and traces. *)
let values_identical (a : Rtlb.Analysis.t) (b : Rtlb.Analysis.t) =
  a.Rtlb.Analysis.windows.Rtlb.Est_lct.est
  = b.Rtlb.Analysis.windows.Rtlb.Est_lct.est
  && a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
     = b.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
  && List.length a.Rtlb.Analysis.bounds = List.length b.Rtlb.Analysis.bounds
  && List.for_all2 bound_equal a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds
  && a.Rtlb.Analysis.cost = b.Rtlb.Analysis.cost
  && a.Rtlb.Analysis.completeness = b.Rtlb.Analysis.completeness

let roundtrips system app =
  let packed = Rtlb.Soa.pack system app in
  Rtfmt.Appfile.to_string (Rtlb.Soa.unpack packed) = Rtfmt.Appfile.to_string app

(* --- pack -> unpack round-trip ------------------------------------- *)

let roundtrip_random =
  qtest "Soa.unpack (Soa.pack app) round-trips random instances"
    (arb_instance ())
    (fun i -> roundtrips (shared_of i) i.app && roundtrips (dedicated_of i) i.app)

let roundtrip_examples () =
  (* dune runtest runs in test/; dune exec runs in the workspace root. *)
  let path =
    List.find Sys.file_exists
      [ "../examples/paper_example.app"; "examples/paper_example.app" ]
  in
  let { Rtfmt.Appfile.app; system } = Rtfmt.Appfile.parse_file path in
  let system = Option.get system in
  check_bool "examples/paper_example.app round-trips" true (roundtrips system app);
  check_bool "built-in paper example round-trips (shared)" true
    (roundtrips Rtlb.Paper_example.shared Rtlb.Paper_example.app);
  check_bool "built-in paper example round-trips (dedicated)" true
    (roundtrips Rtlb.Paper_example.dedicated Rtlb.Paper_example.app)

(* --- engine identity ----------------------------------------------- *)

let analyze_identical =
  qtest "Soa.analyze = Analysis.run on random instances" (arb_instance ())
    (fun i ->
      values_identical
        (Rtlb.Soa.analyze (shared_of i) i.app)
        (Rtlb.Analysis.run (shared_of i) i.app)
      && values_identical
           (Rtlb.Soa.analyze (dedicated_of i) i.app)
           (Rtlb.Analysis.run (dedicated_of i) i.app))

let paper_example_windows () =
  let a = Rtlb.Soa.analyze Rtlb.Paper_example.shared Rtlb.Paper_example.app in
  Alcotest.(check (array int))
    "paper example est" Rtlb.Paper_example.expected_est
    a.Rtlb.Analysis.windows.Rtlb.Est_lct.est;
  Alcotest.(check (array int))
    "paper example lct" Rtlb.Paper_example.expected_lct_repaired
    a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct;
  check_bool "paper example = record engine" true
    (values_identical a
       (Rtlb.Analysis.run Rtlb.Paper_example.shared Rtlb.Paper_example.app))

(* --- dominance pruning ---------------------------------------------- *)

let pruned_equals_unpruned =
  qtest "pruned interval scan = unpruned reference" (arb_instance ())
    (fun i ->
      let system = shared_of i in
      values_identical
        (Rtlb.Soa.analyze ~prune:true system i.app)
        (Rtlb.Soa.analyze ~prune:false system i.app))

(* --- scaling workload ----------------------------------------------- *)

let frames_identical () =
  let app =
    Workload.Gen.layered_frames ~seed:7 ~frames:10 ~tasks_per_frame:100 ()
  in
  let system = Workload.Gen.frame_system () in
  check_int "frame workload size" 1000 (Rtlb.App.n_tasks app);
  check_bool "frame workload: soa = record" true
    (values_identical (Rtlb.Soa.analyze system app) (Rtlb.Analysis.run system app))

let frames_deterministic () =
  let a = Workload.Gen.layered_frames ~seed:3 ~frames:2 ~tasks_per_frame:40 () in
  let b = Workload.Gen.layered_frames ~seed:3 ~frames:2 ~tasks_per_frame:40 () in
  check_string "same seed, same app" (Rtfmt.Appfile.to_string a)
    (Rtfmt.Appfile.to_string b)

(* --- incremental engine over packed arrays --------------------------- *)

let gen_edit st app =
  let n = Rtlb.App.n_tasks app in
  let i = Random.State.int st n in
  let t = Rtlb.App.task app i in
  let release = t.Rtlb.Task.release
  and deadline = t.Rtlb.Task.deadline
  and compute = t.Rtlb.Task.compute in
  match Random.State.int st 3 with
  | 0 ->
      Rtlb.Incremental.Set_deadline
        { task = i; deadline = release + compute + Random.State.int st 21 }
  | 1 ->
      Rtlb.Incremental.Set_release
        { task = i; release = Random.State.int st (deadline - compute + 1) }
  | _ ->
      Rtlb.Incremental.Set_compute
        { task = i; compute = Random.State.int st (deadline - release + 1) }

let incremental_soa_equals_cold =
  qtest ~count:100 "Incremental ~engine:`Soa = cold run under random edits"
    QCheck.(pair (arb_instance ~max_tasks:10 ()) small_int)
    (fun (i, salt) ->
      let system = shared_of i in
      let st = Random.State.make [| i.config.Workload.Gen.seed; salt |] in
      let handle = Rtlb.Incremental.create ~engine:`Soa system i.app in
      assert (
        values_identical
          (Rtlb.Incremental.base handle)
          (Rtlb.Analysis.run system i.app));
      let rec go k edits =
        k = 0
        ||
        let edits =
          edits @ [ gen_edit st (Rtlb.Incremental.apply i.app edits) ]
        in
        let app' = Rtlb.Incremental.apply i.app edits in
        let q = Rtlb.Incremental.query handle app' in
        values_identical q (Rtlb.Analysis.run system app') && go (k - 1) edits
      in
      go (1 + (salt mod 4)) [])

(* --- domain-pool path ----------------------------------------------- *)

let pool_identical () =
  let app =
    Workload.Gen.layered_frames ~seed:11 ~frames:6 ~tasks_per_frame:50 ()
  in
  let system = Workload.Gen.frame_system () in
  let seq = Rtlb.Soa.analyze system app in
  Rtlb_par.Pool.with_pool ~jobs:4 (fun pool ->
      check_bool "pool = sequential (pruned)" true
        (values_identical (Rtlb.Soa.analyze ~pool system app) seq);
      check_bool "pool = record engine" true
        (values_identical
           (Rtlb.Soa.analyze ~pool system app)
           (Rtlb.Analysis.run system app)))

let suite =
  [
    ( "soa",
      [
        roundtrip_random;
        Alcotest.test_case "round-trip: examples" `Quick roundtrip_examples;
        analyze_identical;
        Alcotest.test_case "paper example windows" `Quick paper_example_windows;
        pruned_equals_unpruned;
        incremental_soa_equals_cold;
        Alcotest.test_case "frame workload identity" `Quick frames_identical;
        Alcotest.test_case "frame workload determinism" `Quick
          frames_deterministic;
        Alcotest.test_case "pool path identity" `Quick pool_identical;
      ] );
  ]
