(* Tests for table rendering and the appfile format. *)

open Helpers

let table_rendering () =
  let t = Rtfmt.Table.create [ "task"; "E"; "L" ] in
  Rtfmt.Table.add_row t [ "T1"; "0"; "3" ];
  Rtfmt.Table.add_int_row t "T2" [ 0; 6 ];
  Rtfmt.Table.add_separator t;
  Rtfmt.Table.add_row t [ "T15"; "30"; "36" ];
  let out = Rtfmt.Table.render t in
  check_string "rendering"
    "| task |  E |  L |\n\
     |------+----+----|\n\
     | T1   |  0 |  3 |\n\
     | T2   |  0 |  6 |\n\
     |------+----+----|\n\
     | T15  | 30 | 36 |\n"
    out

let table_alignment () =
  let t =
    Rtfmt.Table.create
      ~aligns:[ Rtfmt.Table.Centre; Rtfmt.Table.Left ]
      [ "ab"; "x" ]
  in
  Rtfmt.Table.add_row t [ "y"; "long" ];
  check_string "centre and left" "| ab | x    |\n|----+------|\n| y  | long |\n"
    (Rtfmt.Table.render t)

let table_errors () =
  let t = Rtfmt.Table.create [ "a"; "b" ] in
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.add_row: wrong row width") (fun () ->
      Rtfmt.Table.add_row t [ "only-one" ]);
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Rtfmt.Table.create []))

let sample =
  "# demo\n\
   task A compute=3 deadline=20 proc=P1 res=r1\n\
   task B compute=5 release=2 deadline=20 proc=P1 preemptive\n\
   edge A B 4\n\
   shared P1=5 r1=2\n"

let parse_roundtrip () =
  let { Rtfmt.Appfile.app; system } = Rtfmt.Appfile.parse sample in
  check_int "tasks" 2 (Rtlb.App.n_tasks app);
  let a = Rtlb.App.task app 0 and b = Rtlb.App.task app 1 in
  check_string "name" "A" a.Rtlb.Task.name;
  check_int "compute" 3 a.Rtlb.Task.compute;
  Alcotest.(check (list string)) "resources" [ "r1" ] a.Rtlb.Task.resources;
  check_bool "preemptive" true b.Rtlb.Task.preemptive;
  check_int "release" 2 b.Rtlb.Task.release;
  check_int "message" 4 (Rtlb.App.message app ~src:0 ~dst:1);
  (match system with
  | Some s -> check_int "P1 cost" 5 (Rtlb.System.resource_cost s "P1")
  | None -> Alcotest.fail "expected a system");
  (* roundtrip: print then reparse gives the same application *)
  let printed = Rtfmt.Appfile.to_string ?system app in
  let reparsed = Rtfmt.Appfile.parse printed in
  check_string "roundtrip" printed
    (Rtfmt.Appfile.to_string ?system:reparsed.Rtfmt.Appfile.system
       reparsed.Rtfmt.Appfile.app)

let parse_dedicated () =
  let text =
    "task A compute=1 deadline=5 proc=P1 res=r1\n\
     node N1 proc=P1 res=2xr1 cost=7\n"
  in
  let { Rtfmt.Appfile.system; _ } = Rtfmt.Appfile.parse text in
  match system with
  | Some (Rtlb.System.Dedicated [ nt ]) ->
      check_string "name" "N1" nt.Rtlb.System.nt_name;
      check_int "r1 units" 2 (Rtlb.System.node_provides nt "r1");
      check_int "cost" 7 nt.Rtlb.System.nt_cost
  | _ -> Alcotest.fail "expected one node type"

let parse_errors () =
  let expect_error ~line text =
    match Rtfmt.Appfile.parse text with
    | exception Rtfmt.Appfile.Parse_error (l, _) ->
        check_int ("line for " ^ String.escaped text) line l
    | _ -> Alcotest.fail ("expected parse error: " ^ text)
  in
  expect_error ~line:1 "task A proc=P1\n";
  (* missing compute *)
  expect_error ~line:1 "bogus directive\n";
  expect_error ~line:2 "task A compute=1 deadline=5 proc=P\nedge A missing 3\n";
  expect_error ~line:1 "edge A B\n";
  expect_error ~line:1 "task A compute=9 deadline=5 proc=P\n";
  (* infeasible task reported via task check, at the task's own line *)
  expect_error ~line:2
    "task A compute=1 deadline=5 proc=P\n\
     task A compute=1 deadline=5 proc=P\n"

let shared_and_nodes_conflict () =
  match
    Rtfmt.Appfile.parse
      "task A compute=1 deadline=5 proc=P\nshared P=1\nnode N proc=P\n"
  with
  | exception Rtfmt.Appfile.Parse_error (_, _) -> ()
  | _ -> Alcotest.fail "expected conflict error"

let paper_example_roundtrip () =
  let app = Rtlb.Paper_example.app in
  let printed = Rtfmt.Appfile.to_string ~system:Rtlb.Paper_example.dedicated app in
  let { Rtfmt.Appfile.app = app'; system } = Rtfmt.Appfile.parse printed in
  check_int "tasks preserved" (Rtlb.App.n_tasks app) (Rtlb.App.n_tasks app');
  Array.iteri
    (fun i t -> check_bool "task equal" true (Rtlb.Task.equal t (Rtlb.App.task app' i)))
    (Rtlb.App.tasks app);
  match system with
  | Some (Rtlb.System.Dedicated nts) -> check_int "node types" 3 (List.length nts)
  | _ -> Alcotest.fail "expected dedicated system"

let periodic_appfile () =
  let text =
    "task fast period=5 compute=1 proc=P\n\
     task slow period=10 compute=2 deadline=8 proc=P\n\
     edge fast slow 1\n\
     shared P=1\n"
  in
  let { Rtfmt.Appfile.app; system } = Rtfmt.Appfile.parse text in
  (* hyperperiod 10: fast@0, fast@1, slow@0 *)
  check_int "jobs" 3 (Rtlb.App.n_tasks app);
  check_string "job naming" "fast@1" (Rtlb.App.task app 1).Rtlb.Task.name;
  check_int "slow deadline" 8 (Rtlb.App.task app 2).Rtlb.Task.deadline;
  check_int "undersampled edge count" 1 (Dag.n_edges (Rtlb.App.graph app));
  check_bool "system parsed" true (system <> None);
  (* mixing periodic and one-shot tasks is rejected *)
  match
    Rtfmt.Appfile.parse
      "task a period=5 compute=1 proc=P\ntask b compute=1 deadline=9 proc=P\n"
  with
  | exception Rtfmt.Appfile.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected mixing error"

let arb_noise =
  (* printable-ish noise with format keywords sprinkled in, to reach the
     parser's deeper branches *)
  let words =
    [| "task"; "edge"; "node"; "shared"; "compute=3"; "proc=P"; "res=";
       "deadline="; "x"; "=="; "7"; "-1"; "#c"; "periodic"; "period=0";
       "compute=3"; "cost=x"; "res=0xr"; "res=2xr"; "period=5"; "release=-2";
       "deadline=4"; "shared"; "node"; "proc="; "a"; "a" |]
  in
  QCheck.make
    ~print:(fun s -> String.escaped s)
    QCheck.Gen.(
      map (String.concat " ")
        (list_size (int_range 0 30)
           (map (fun i -> words.(i mod Array.length words)) small_nat)))

let prop_tests =
  [
    qtest ~count:500 "parser never crashes, only Parse_error" arb_noise
      (fun text ->
        match Rtfmt.Appfile.parse text with
        | _ -> true
        | exception Rtfmt.Appfile.Parse_error _ -> true
        | exception _ -> false);
    qtest ~count:150 "appfile roundtrips generated instances"
      (arb_instance ~max_tasks:16 ()) (fun i ->
        let printed = Rtfmt.Appfile.to_string i.app in
        let reparsed = (Rtfmt.Appfile.parse printed).Rtfmt.Appfile.app in
        Rtlb.App.n_tasks reparsed = Rtlb.App.n_tasks i.app
        && Array.for_all2 Rtlb.Task.equal (Rtlb.App.tasks i.app)
             (Rtlb.App.tasks reparsed)
        && Rtfmt.Appfile.to_string reparsed = printed);
  ]

let suite =
  [
    ( "rtfmt",
      [
        Alcotest.test_case "table rendering" `Quick table_rendering;
        Alcotest.test_case "table alignment" `Quick table_alignment;
        Alcotest.test_case "table errors" `Quick table_errors;
        Alcotest.test_case "parse and roundtrip" `Quick parse_roundtrip;
        Alcotest.test_case "dedicated node parsing" `Quick parse_dedicated;
        Alcotest.test_case "parse errors carry line numbers" `Quick parse_errors;
        Alcotest.test_case "shared/node conflict" `Quick shared_and_nodes_conflict;
        Alcotest.test_case "paper example roundtrips" `Quick
          paper_example_roundtrip;
        Alcotest.test_case "periodic appfile" `Quick periodic_appfile;
      ]
      @ prop_tests );
  ]
