(* Surface-ship radar scenario (the paper's motivating application [8]):
   an incoming missile must be identified within 200 ms of detection;
   intercept missiles must be engaged within 5 s and launched within
   500 ms of engagement.

   Time unit: 10 ms.  The scenario tracks [n_targets] simultaneous
   threats; each threat runs the detection -> identification -> tracking
   -> engagement -> launch pipeline, sharing signal processors (type
   "dsp"), command computers (type "cmd"), one pool of fire-control
   illuminators and one pool of launchers.

   The analysis answers the sizing question the paper poses: how many
   processors, illuminators and launchers does the requirement level
   demand *at minimum* — before any scheduler is written?

     dune exec examples/radar.exe *)

let n_targets = 4

(* Deadlines, in 10ms ticks, measured from detection at t = 0:
   identification by 20 (200 ms), engagement decision by 500 (5 s),
   launch by 550 (engagement + 500 ms). *)
let identify_deadline = 20

let engage_deadline = 500
let launch_deadline = 550

let build () =
  let tasks = ref [] and edges = ref [] in
  let next_id = ref 0 in
  let add ?release ~name ~compute ~deadline ~proc ?(resources = []) () =
    let id = !next_id in
    incr next_id;
    tasks :=
      Rtlb.Task.make ~id ~name ?release ~compute ~deadline ~proc ~resources ()
      :: !tasks;
    id
  in
  let edge src dst m = edges := (src, dst, m) :: !edges in
  for t = 0 to n_targets - 1 do
    let name s = Printf.sprintf "%s%d" s t in
    (* Staggered detections: a raid does not arrive all at once. *)
    let release = 2 * t in
    let detect =
      add ~release ~name:(name "detect") ~compute:2 ~deadline:identify_deadline
        ~proc:"dsp" ()
    in
    let identify =
      add ~name:(name "ident") ~compute:6 ~deadline:identify_deadline
        ~proc:"dsp" ()
    in
    let track =
      add ~name:(name "track") ~compute:40 ~deadline:engage_deadline
        ~proc:"dsp" ~resources:[ "illuminator" ] ()
    in
    let evaluate =
      add ~name:(name "eval") ~compute:30 ~deadline:engage_deadline
        ~proc:"cmd" ()
    in
    let engage =
      add ~name:(name "engage") ~compute:10 ~deadline:engage_deadline
        ~proc:"cmd" ()
    in
    let launch =
      add ~name:(name "launch") ~compute:25 ~deadline:launch_deadline
        ~proc:"cmd" ~resources:[ "launcher" ] ()
    in
    edge detect identify 1;
    edge identify track 2;
    edge identify evaluate 3;
    edge track engage 2;
    edge evaluate engage 1;
    edge engage launch 1
  done;
  Rtlb.App.make ~tasks:(List.rev !tasks) ~edges:!edges

let () =
  let app = build () in
  let system =
    Rtlb.System.shared
      ~costs:
        [ ("dsp", 120); ("cmd", 80); ("illuminator", 400); ("launcher", 250) ]
  in
  let analysis = Rtlb.Analysis.run system app in
  Format.printf "%a@.@." Rtlb.Analysis.pp analysis;
  Format.printf
    "=> a %d-target raid needs at least %d DSPs, %d command computers,@.   \
     %d illuminator(s) and %d launcher(s); no cheaper ship can meet the \
     timing requirements.@."
    n_targets
    (Rtlb.Analysis.bound_for analysis "dsp")
    (Rtlb.Analysis.bound_for analysis "cmd")
    (Rtlb.Analysis.bound_for analysis "illuminator")
    (Rtlb.Analysis.bound_for analysis "launcher");
  (* Sanity: the sized-at-the-bound platform, handed to the scheduler. *)
  let platform =
    Sched.Platform.of_bounds system app analysis.Rtlb.Analysis.bounds
  in
  Format.printf "scheduling on the bound-sized platform (%a): %s@."
    Sched.Platform.pp platform
    (if Sched.List_scheduler.feasible app platform then
       "feasible — the bound is achieved"
     else "greedy EDF needs more units — the bound is a floor, not a design")
