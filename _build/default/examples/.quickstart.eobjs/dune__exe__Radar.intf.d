examples/radar.mli:
