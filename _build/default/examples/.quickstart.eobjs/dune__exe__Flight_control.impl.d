examples/flight_control.ml: Format List Rtlb Sched Synth
