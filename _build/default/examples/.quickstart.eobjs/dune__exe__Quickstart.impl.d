examples/quickstart.ml: Format Rtlb Sched
