examples/radar.ml: Format List Printf Rtlb Sched
