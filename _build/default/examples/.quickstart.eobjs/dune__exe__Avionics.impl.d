examples/avionics.ml: Format Printf Rat Rtlb Sched
