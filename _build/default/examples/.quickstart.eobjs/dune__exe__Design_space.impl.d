examples/design_space.ml: List Printf Rtfmt Rtlb String Synth
