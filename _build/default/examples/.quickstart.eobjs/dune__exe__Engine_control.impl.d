examples/engine_control.ml: Dag Printf Rat Rtlb Sched
