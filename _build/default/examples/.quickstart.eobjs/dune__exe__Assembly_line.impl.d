examples/assembly_line.ml: Format List Printf Rtlb
