examples/flight_control.mli:
