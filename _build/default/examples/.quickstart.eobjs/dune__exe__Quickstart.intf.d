examples/quickstart.mli:
