examples/avionics.mli:
