examples/assembly_line.mli:
