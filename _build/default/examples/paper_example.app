task T1 compute=3 release=0 deadline=36 proc=P1 res=r1
task T2 compute=6 release=0 deadline=36 proc=P1 res=r1
task T3 compute=3 release=3 deadline=36 proc=P1
task T4 compute=5 release=0 deadline=36 proc=P1
task T5 compute=9 release=0 deadline=36 proc=P1 res=r1
task T6 compute=4 release=0 deadline=36 proc=P2
task T7 compute=6 release=10 deadline=36 proc=P2
task T8 compute=5 release=0 deadline=36 proc=P2
task T9 compute=3 release=0 deadline=36 proc=P1
task T10 compute=8 release=0 deadline=36 proc=P1 res=r1
task T11 compute=2 release=20 deadline=36 proc=P1
task T12 compute=0 release=0 deadline=30 proc=P1
task T13 compute=6 release=0 deadline=30 proc=P1 res=r1
task T14 compute=5 release=0 deadline=30 proc=P1 res=r1
task T15 compute=6 release=0 deadline=36 proc=P1 res=r1
edge T1 T4 2
edge T2 T5 4
edge T3 T6 5
edge T4 T6 3
edge T5 T8 3
edge T5 T9 9
edge T6 T9 1
edge T6 T10 7
edge T7 T10 6
edge T8 T12 7
edge T9 T13 5
edge T9 T14 7
edge T9 T15 4
edge T10 T15 3
edge T11 T15 2
shared P1=5 P2=4 r1=3
