(* Multirate engine controller, analysed over one hyperperiod.

   Three rates (time unit: 1 ms): a 5 ms fuel/ignition loop, a 10 ms
   airflow loop and a 20 ms thermal/diagnostics loop, all on "ecu"
   processors; injector drivers need the "driver" output stage.  The
   periodic front end (Rtlb.Periodic) unrolls one 20 ms hyperperiod into
   the paper's DAG model; the analysis then answers: how many ECUs and
   driver stages must the controller hardware provide at minimum, and is
   that flооr actually schedulable?

     dune exec examples/engine_control.exe *)

let tasks =
  [
    Rtlb.Periodic.ptask ~name:"crank" ~period:5 ~compute:1 ~deadline:2
      ~proc:"ecu" ();
    Rtlb.Periodic.ptask ~name:"fuel" ~period:5 ~compute:2 ~deadline:5
      ~proc:"ecu" ();
    Rtlb.Periodic.ptask ~name:"ignite" ~period:5 ~compute:1 ~deadline:5
      ~proc:"ecu" ~resources:[ "driver" ] ();
    Rtlb.Periodic.ptask ~name:"airflow" ~period:10 ~compute:3 ~deadline:10
      ~proc:"ecu" ();
    Rtlb.Periodic.ptask ~name:"lambda" ~period:10 ~offset:2 ~compute:2
      ~deadline:8 ~proc:"ecu" ();
    Rtlb.Periodic.ptask ~name:"thermal" ~period:20 ~compute:4 ~deadline:20
      ~proc:"ecu" ();
    Rtlb.Periodic.ptask ~name:"diag" ~period:20 ~offset:4 ~compute:3
      ~deadline:16 ~proc:"ecu" ();
  ]

let edges =
  [
    ("crank", "fuel", 0) (* same rate, same core data *);
    ("crank", "ignite", 0);
    ("airflow", "fuel", 1) (* 10ms loop feeds each 5ms job (oversampling) *);
    ("airflow", "lambda", 0);
    ("thermal", "diag", 1);
  ]

let () =
  let hp = Rtlb.Periodic.hyperperiod tasks in
  let u = Rtlb.Periodic.utilisation tasks in
  Printf.printf "hyperperiod: %d ms, utilisation: %s (ceil %d)\n" hp
    (Rat.to_string u) (Rat.ceil u);
  let app = Rtlb.Periodic.unroll ~tasks ~edges () in
  Printf.printf "unrolled: %d jobs, %d job-level edges\n" (Rtlb.App.n_tasks app)
    (Dag.n_edges (Rtlb.App.graph app));
  let system = Rtlb.System.shared ~costs:[ ("ecu", 20); ("driver", 4) ] in
  let analysis = Rtlb.Analysis.run system app in
  let ecus = Rtlb.Analysis.bound_for analysis "ecu" in
  let drivers = Rtlb.Analysis.bound_for analysis "driver" in
  Printf.printf "lower bounds: %d ecu(s) (utilisation alone says %d), %d driver stage(s)\n"
    ecus (Rat.ceil u) drivers;
  (* Validate the floor with the scheduler. *)
  let platform =
    Sched.Platform.shared ~procs:[ ("ecu", ecus) ]
      ~resources:[ ("driver", drivers) ]
  in
  (match Sched.List_scheduler.run app platform with
  | Ok s ->
      Printf.printf "the floor schedules; one hyperperiod:\n%s"
        (Sched.Gantt.render ~width:80 app platform s)
  | Error f ->
      let t = Rtlb.App.task app f.Sched.List_scheduler.f_task in
      Printf.printf
        "greedy EDF cannot pack the floor (%s misses) — the bound is a \
         certified minimum, not a schedule.  Growing the ECU pool:\n"
        t.Rtlb.Task.name;
      let rec grow k =
        if k > Rtlb.App.n_tasks app then
          Printf.printf "  no ECU count suffices for greedy EDF?!\n"
        else
          let p =
            Sched.Platform.shared ~procs:[ ("ecu", k) ]
              ~resources:[ ("driver", drivers) ]
          in
          match Sched.List_scheduler.run app p with
          | Ok s ->
              Printf.printf "  %d ECUs schedule; one hyperperiod:\n%s" k
                (Sched.Gantt.render ~width:80 app p s)
          | Error _ -> grow (k + 1)
      in
      grow (ecus + 1));
  (* What does tightening the thermal deadline cost?  The sensitivity
     sweep shows the knee. *)
  print_string
    (Rtlb.Sensitivity.render
       (Rtlb.Sensitivity.deadline_sweep system app
          ~factors:[ 0.5; 0.75; 1.0; 1.5 ]))
