(* Design-space exploration — the use case the paper opens with: "these
   heuristics often require an estimate of the number and the type of
   processors and resources necessary".

   The radar scenario is scaled from 2 to 6 simultaneous targets; at each
   level we print, side by side:

     - the certified cost floor from the lower-bound analysis,
     - the cheapest system the synthesis search actually finds,
     - the earliest completion time the floor platform could achieve.

   The gap column is exactly the information a designer needs: when it is
   zero the floor is the design; when it is positive, the analysis has
   already ruled out everything cheaper, so the search was tiny.

     dune exec examples/design_space.exe *)

let build n_targets =
  let tasks = ref [] and edges = ref [] in
  let next = ref 0 in
  let add ?release ~name ~compute ~deadline ~proc ?(resources = []) () =
    let id = !next in
    incr next;
    tasks :=
      Rtlb.Task.make ~id ~name ?release ~compute ~deadline ~proc ~resources ()
      :: !tasks;
    id
  in
  let edge a b m = edges := (a, b, m) :: !edges in
  for t = 0 to n_targets - 1 do
    let name s = Printf.sprintf "%s%d" s t in
    let detect =
      add ~release:(2 * t) ~name:(name "detect") ~compute:2 ~deadline:30
        ~proc:"dsp" ()
    in
    let track =
      add ~name:(name "track") ~compute:40 ~deadline:120 ~proc:"dsp"
        ~resources:[ "illuminator" ] ()
    in
    let engage =
      add ~name:(name "engage") ~compute:25 ~deadline:170 ~proc:"cmd"
        ~resources:[ "launcher" ] ()
    in
    edge detect track 2;
    edge track engage 2
  done;
  Rtlb.App.make ~tasks:(List.rev !tasks) ~edges:!edges

let catalogue =
  Rtlb.System.dedicated
    [
      Rtlb.System.node_type ~name:"dsp-i" ~proc:"dsp"
        ~provides:[ ("illuminator", 1) ] ~cost:9 ();
      Rtlb.System.node_type ~name:"dsp" ~proc:"dsp" ~cost:5 ();
      Rtlb.System.node_type ~name:"cmd-l" ~proc:"cmd"
        ~provides:[ ("launcher", 1) ] ~cost:7 ();
    ]

let () =
  let t =
    Rtfmt.Table.create
      [
        "targets"; "LB cost"; "synthesised cost"; "gap"; "sched calls";
        "earliest finish on floor";
      ]
  in
  List.iter
    (fun n ->
      let app = build n in
      let analysis = Rtlb.Analysis.run catalogue app in
      let floor_cost =
        match analysis.Rtlb.Analysis.cost with
        | Rtlb.Cost.Dedicated_cost d -> d.Rtlb.Cost.d_cost
        | _ -> -1
      in
      let s = Synth.search ~system:catalogue app in
      let found_cost, calls =
        match s.Synth.found with
        | Some (_, c) -> (c, s.Synth.sched_calls)
        | None -> (-1, s.Synth.sched_calls)
      in
      let capacity r =
        match
          List.find_opt
            (fun (b : Rtlb.Lower_bound.bound) ->
              String.equal b.Rtlb.Lower_bound.resource r)
            analysis.Rtlb.Analysis.bounds
        with
        | Some b -> max 1 b.Rtlb.Lower_bound.lb
        | None -> 1
      in
      let earliest =
        match
          Rtlb.Time_bound.minimum_completion_time catalogue app ~capacity
        with
        | Some tb -> tb.Rtlb.Time_bound.tb_omega
        | None -> -1
      in
      Rtfmt.Table.add_int_row t (string_of_int n)
        [ floor_cost; found_cost; found_cost - floor_cost; calls; earliest ])
    [ 2; 3; 4; 5; 6 ];
  Rtfmt.Table.print t;
  print_endline
    "(gap = what greedy scheduling costs beyond the certified floor; the\n\
    \ floor already prices every configuration below it out.)"
