(* Quickstart: build a five-task application, run the four-step analysis,
   and validate the bound with the list scheduler.

     dune exec examples/quickstart.exe *)

let () =
  (* A tiny pipeline: two producers feed a fusion step that fans out to
     two consumers, with 25 time units to get everything done. *)
  let tasks =
    [
      Rtlb.Task.make ~id:0 ~name:"sense-a" ~compute:4 ~deadline:25 ~proc:"cpu"
        ~resources:[ "bus" ] ();
      Rtlb.Task.make ~id:1 ~name:"sense-b" ~compute:4 ~deadline:25 ~proc:"cpu"
        ~resources:[ "bus" ] ();
      Rtlb.Task.make ~id:2 ~name:"fuse" ~compute:6 ~deadline:25 ~proc:"cpu" ();
      Rtlb.Task.make ~id:3 ~name:"act" ~compute:5 ~deadline:22 ~proc:"cpu" ();
      Rtlb.Task.make ~id:4 ~name:"log" ~compute:3 ~deadline:25 ~proc:"cpu"
        ~resources:[ "bus" ] ();
    ]
  in
  let edges = [ (0, 2, 2); (1, 2, 2); (2, 3, 1); (2, 4, 3) ] in
  let app = Rtlb.App.make ~tasks ~edges in

  (* Shared model: processors and the I/O bus are priced per unit. *)
  let system = Rtlb.System.shared ~costs:[ ("cpu", 8); ("bus", 2) ] in

  let analysis = Rtlb.Analysis.run system app in
  Format.printf "%a@.@." Rtlb.Analysis.pp analysis;

  (* The bounds say how small a platform could possibly be... *)
  let cpus = Rtlb.Analysis.bound_for analysis "cpu" in
  let buses = Rtlb.Analysis.bound_for analysis "bus" in
  Format.printf "lower bounds: %d cpu(s), %d bus unit(s)@." cpus buses;

  (* ...and the scheduler shows whether that platform actually works. *)
  let platform =
    Sched.Platform.shared ~procs:[ ("cpu", cpus) ] ~resources:[ ("bus", buses) ]
  in
  match Sched.List_scheduler.run app platform with
  | Ok schedule ->
      Format.printf "the bound is tight here — feasible schedule:@.%a@."
        (Sched.Schedule.pp app) schedule
  | Error _ ->
      Format.printf
        "greedy scheduling needs more than the bound on this instance@."
