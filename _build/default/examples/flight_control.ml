(* Flight-control frame synthesis under the dedicated model.

   One 50 ms control frame (time unit: 1 ms) runs sensor acquisition on
   I/O processors, fusion and control laws on flight computers, and
   actuator output back on I/O processors.  The I/O tasks need dedicated
   hardware channels (resource "adc" for acquisition, "servo" for
   output), so nodes come in three flavours: an I/O node with an ADC, an
   I/O node with a servo channel, and a bare flight computer.

   The example shows the paper's intended use in computer-aided design:
   the Section 7 integer program gives a certified minimum system cost,
   and the synthesis search (which must actually schedule the frame)
   starts from — and is pruned by — those bounds.

     dune exec examples/flight_control.exe *)

let frame = 50

let build () =
  let tasks = ref [] and edges = ref [] in
  let next_id = ref 0 in
  let add ~name ~compute ?(deadline = frame) ~proc ?(resources = []) () =
    let id = !next_id in
    incr next_id;
    tasks :=
      Rtlb.Task.make ~id ~name ~compute ~deadline ~proc ~resources ()
      :: !tasks;
    id
  in
  let edge src dst m = edges := (src, dst, m) :: !edges in
  (* Three redundant sensor chains. *)
  let sensors =
    List.map
      (fun s ->
        add ~name:("imu-" ^ s) ~compute:4 ~deadline:12 ~proc:"io"
          ~resources:[ "adc" ] ())
      [ "a"; "b"; "c" ]
  in
  let gps = add ~name:"gps" ~compute:6 ~deadline:15 ~proc:"io" ~resources:[ "adc" ] () in
  let air = add ~name:"airdata" ~compute:5 ~deadline:15 ~proc:"io" ~resources:[ "adc" ] () in
  let fuse = add ~name:"fusion" ~compute:8 ~deadline:30 ~proc:"fc" () in
  List.iter (fun s -> edge s fuse 1) sensors;
  edge gps fuse 2;
  edge air fuse 1;
  let laws =
    List.map
      (fun axis -> add ~name:("law-" ^ axis) ~compute:7 ~deadline:42 ~proc:"fc" ())
      [ "pitch"; "roll"; "yaw" ]
  in
  List.iter (fun l -> edge fuse l 1) laws;
  let monitor = add ~name:"monitor" ~compute:5 ~proc:"fc" () in
  edge fuse monitor 1;
  let outputs =
    List.map
      (fun axis ->
        add ~name:("servo-" ^ axis) ~compute:4 ~proc:"io"
          ~resources:[ "servo" ] ())
      [ "pitch"; "roll"; "yaw" ]
  in
  List.iter2 (fun l o -> edge l o 1) laws outputs;
  Rtlb.App.make ~tasks:(List.rev !tasks) ~edges:!edges

let catalogue =
  Rtlb.System.dedicated
    [
      Rtlb.System.node_type ~name:"io-adc" ~proc:"io" ~provides:[ ("adc", 1) ]
        ~cost:5 ();
      Rtlb.System.node_type ~name:"io-servo" ~proc:"io"
        ~provides:[ ("servo", 1) ] ~cost:4 ();
      Rtlb.System.node_type ~name:"fc" ~proc:"fc" ~cost:9 ();
    ]

let () =
  let app = build () in
  let analysis = Rtlb.Analysis.run catalogue app in
  Format.printf "%a@.@." Rtlb.Analysis.pp analysis;
  let with_lb = Synth.search ~use_lower_bounds:true ~system:catalogue app in
  let without_lb = Synth.search ~use_lower_bounds:false ~system:catalogue app in
  (match with_lb.Synth.found with
  | Some (platform, cost) ->
      Format.printf "synthesised system: %a at cost %d@." Sched.Platform.pp
        platform cost
  | None -> Format.printf "no feasible configuration found@.");
  Format.printf
    "search effort: %d scheduler calls with LB pruning (%d configurations \
     pruned) vs %d without@."
    with_lb.Synth.sched_calls with_lb.Synth.pruned without_lb.Synth.sched_calls;
  match (with_lb.Synth.found, without_lb.Synth.found) with
  | Some (_, a), Some (_, b) when a = b ->
      Format.printf "both searches agree — pruning lost nothing.@."
  | _ -> Format.printf "WARNING: searches disagree@."
