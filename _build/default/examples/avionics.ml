(* Integrated modular avionics frame, exercising every model feature at
   once: two processor types, multi-unit resource demands, a periodic
   multirate front end, and both architectures.

   A 40 ms major frame (1 ms ticks) runs three partitions:
     - flight sampling/control at 10 ms on "core" processors;
     - radar processing at 20 ms on "dsp" processors, each job DMA-ing
       through TWO bus channels simultaneously (multi-unit demand);
     - a 40 ms health monitor on "core".

   The analysis sizes the cabinet: cores, DSPs and bus channels; the
   dedicated model then prices line-replaceable units.

     dune exec examples/avionics.exe *)

let tasks =
  [
    Rtlb.Periodic.ptask ~name:"sample" ~period:10 ~compute:2 ~deadline:4
      ~proc:"core" ();
    Rtlb.Periodic.ptask ~name:"law" ~period:10 ~compute:3 ~deadline:10
      ~proc:"core" ();
    Rtlb.Periodic.ptask ~name:"radar" ~period:20 ~compute:8 ~deadline:16
      ~proc:"dsp" ~resources:[ "bus"; "bus" ] ();
    Rtlb.Periodic.ptask ~name:"fusion" ~period:20 ~compute:4 ~deadline:20
      ~proc:"core" ~resources:[ "bus" ] ();
    Rtlb.Periodic.ptask ~name:"health" ~period:40 ~compute:6 ~deadline:40
      ~proc:"core" ();
  ]

let edges =
  [ ("sample", "law", 0); ("radar", "fusion", 1); ("sample", "fusion", 1) ]

let () =
  Printf.printf "major frame: %d ms, utilisation %s\n"
    (Rtlb.Periodic.hyperperiod tasks)
    (Rat.to_string (Rtlb.Periodic.utilisation tasks));
  let app = Rtlb.Periodic.unroll ~tasks ~edges () in
  Printf.printf "unrolled: %d jobs\n\n" (Rtlb.App.n_tasks app);

  (* Shared cabinet. *)
  let shared =
    Rtlb.System.shared ~costs:[ ("core", 12); ("dsp", 20); ("bus", 3) ]
  in
  let a = Rtlb.Analysis.run shared app in
  Printf.printf "shared cabinet floor: %d core(s), %d dsp(s), %d bus channel(s)\n"
    (Rtlb.Analysis.bound_for a "core")
    (Rtlb.Analysis.bound_for a "dsp")
    (Rtlb.Analysis.bound_for a "bus");
  (match a.Rtlb.Analysis.cost with
  | Rtlb.Cost.Shared_cost { s_cost; _ } ->
      Printf.printf "certified minimum cabinet cost: %d\n\n" s_cost
  | _ -> ());

  (* Line-replaceable units: a compute LRU (core + bus tap), a radar LRU
     (dsp + dual bus taps), a bare core LRU. *)
  let dedicated =
    Rtlb.System.dedicated
      [
        Rtlb.System.node_type ~name:"lru-core" ~proc:"core"
          ~provides:[ ("bus", 1) ] ~cost:15 ();
        Rtlb.System.node_type ~name:"lru-core-bare" ~proc:"core" ~cost:12 ();
        Rtlb.System.node_type ~name:"lru-radar" ~proc:"dsp"
          ~provides:[ ("bus", 2) ] ~cost:26 ();
      ]
  in
  let d = Rtlb.Analysis.run dedicated app in
  Format.printf "dedicated model: %a@.@." Rtlb.Cost.pp_outcome
    d.Rtlb.Analysis.cost;

  (* Validate the shared floor by scheduling one frame on it. *)
  let platform =
    Sched.Platform.of_bounds shared app a.Rtlb.Analysis.bounds
  in
  let lct_priority = Sched.Priorities.make Sched.Priorities.Lct shared app in
  (match Sched.List_scheduler.run ~priority:lct_priority app platform with
  | Ok s ->
      Format.printf
        "the floor flies (with the analysis-LCT dispatch order) — one major \
         frame:@.%s"
        (Sched.Gantt.render ~width:80 ~show_resources:true app platform s)
  | Error f ->
      let t = Rtlb.App.task app f.Sched.List_scheduler.f_task in
      Format.printf
        "the floor itself defeats greedy dispatch (%s misses) — the bound \
         certifies necessity, not greedy sufficiency.@.With one spare core:@."
        t.Rtlb.Task.name;
      let padded =
        Sched.Platform.shared
          ~procs:
            [
              ("core", 1 + Rtlb.Analysis.bound_for a "core");
              ("dsp", Rtlb.Analysis.bound_for a "dsp");
            ]
          ~resources:[ ("bus", Rtlb.Analysis.bound_for a "bus") ]
      in
      (match Sched.List_scheduler.run ~priority:lct_priority app padded with
      | Ok s ->
          print_string
            (Sched.Gantt.render ~width:80 ~show_resources:true app padded s)
      | Error _ -> Format.printf "  (still needs more)@."));
  (* Criticality: which partitions pin the design? *)
  print_newline ();
  print_string (Rtlb.Slack.render app (Rtlb.Slack.analyse a))
