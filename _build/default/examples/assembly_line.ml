(* Industrial process control: an assembly line of inspection stations.

   Parts arrive on a conveyor every [period] ticks; each part must be
   photographed, analysed (preemptively — vision jobs can be time-sliced),
   compared against its CAD model, and accepted/diverted before it leaves
   the station.  Cameras and the diverter gate are physical resources; the
   vision workload runs on "vp" processors, the PLC logic on "plc".

   This example exercises two paper features the others do not:
   preemptive tasks (Theorem 3 overlaps) and release times derived from
   the conveyor's arrival pattern.  It also contrasts the preemptive
   bound with what the non-preemptive analysis of the same line would
   claim (Theorem 4 dominates Theorem 3).

     dune exec examples/assembly_line.exe *)

let parts = 5
let period = 8
let window = 30 (* each part must be decided within 30 ticks of arrival *)

let build () =
  let tasks = ref [] and edges = ref [] in
  let next_id = ref 0 in
  let add ?release ?(preemptive = false) ~name ~compute ~deadline ~proc
      ?(resources = []) () =
    let id = !next_id in
    incr next_id;
    tasks :=
      Rtlb.Task.make ~id ~name ?release ~compute ~deadline ~proc ~resources
        ~preemptive ()
      :: !tasks;
    id
  in
  let edge src dst m = edges := (src, dst, m) :: !edges in
  for p = 0 to parts - 1 do
    let name s = Printf.sprintf "%s%d" s p in
    let arrive = p * period in
    let deadline = arrive + window in
    let photo =
      add ~release:arrive ~name:(name "photo") ~compute:3 ~deadline
        ~proc:"vp" ~resources:[ "camera" ] ()
    in
    let analyse =
      add ~preemptive:true ~name:(name "vision") ~compute:9 ~deadline
        ~proc:"vp" ()
    in
    let compare_ =
      add ~preemptive:true ~name:(name "cad") ~compute:6 ~deadline ~proc:"vp" ()
    in
    let decide =
      add ~name:(name "gate") ~compute:2 ~deadline ~proc:"plc"
        ~resources:[ "diverter" ] ()
    in
    edge photo analyse 2;
    edge analyse compare_ 1;
    edge compare_ decide 1
  done;
  Rtlb.App.make ~tasks:(List.rev !tasks) ~edges:!edges

let () =
  let app = build () in
  let system =
    Rtlb.System.shared
      ~costs:[ ("vp", 30); ("plc", 10); ("camera", 15); ("diverter", 5) ]
  in
  let analysis = Rtlb.Analysis.run system app in
  Format.printf "%a@.@." Rtlb.Analysis.pp analysis;
  (* The same line with preemption forbidden: Theorem 4's overlap is
     pointwise >= Theorem 3's, so no bound may shrink. *)
  let rigid =
    Rtlb.App.map_tasks app ~f:(fun t -> Rtlb.Task.with_preemptive t false)
  in
  let rigid_analysis = Rtlb.Analysis.run system rigid in
  Format.printf "resource       preemptive  non-preemptive@.";
  List.iter2
    (fun (b : Rtlb.Lower_bound.bound) (rb : Rtlb.Lower_bound.bound) ->
      Format.printf "%-12s %10d %15d@." b.Rtlb.Lower_bound.resource
        b.Rtlb.Lower_bound.lb rb.Rtlb.Lower_bound.lb)
    analysis.Rtlb.Analysis.bounds rigid_analysis.Rtlb.Analysis.bounds
