(** Plain-text table rendering for reports and benchmark output. *)

type align = Left | Right | Centre

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest (the common "name, numbers"
    layout).
    @raise Invalid_argument when [aligns] is given with a wrong length. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val add_int_row : t -> string -> int list -> unit
(** Convenience: a label column followed by integers. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string
(** Boxed ASCII rendering, e.g.
    {v
    | task | E  | L  |
    |------+----+----|
    | T1   |  0 |  3 |
    v} *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
