type align = Left | Right | Centre

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
  width : int;
}

let create ?aligns headers =
  if headers = [] then invalid_arg "Table.create: no columns";
  let width = List.length headers in
  let aligns =
    match aligns with
    | None -> Left :: List.init (width - 1) (fun _ -> Right)
    | Some a when List.length a = width -> a
    | Some _ -> invalid_arg "Table.create: wrong number of alignments"
  in
  { headers; aligns; rows = []; width }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg "Table.add_row: wrong row width";
  t.rows <- Cells cells :: t.rows

let add_int_row t label ints =
  add_row t (label :: List.map string_of_int ints)

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let missing = width - n in
    match align with
    | Left -> s ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ s
    | Centre ->
        let l = missing / 2 in
        String.make l ' ' ^ s ^ String.make (missing - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          List.iteri
            (fun i c -> widths.(i) <- max widths.(i) (String.length c))
            cells)
    rows;
  let buf = Buffer.create 256 in
  let line cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) widths.(i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Buffer.add_string buf "|";
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "+";
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "|\n"
  in
  line t.headers;
  rule ();
  List.iter (function Separator -> rule () | Cells c -> line c) rows;
  Buffer.contents buf

let print t = print_string (render t)
