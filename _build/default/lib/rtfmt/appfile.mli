(** A small line-oriented text format for applications and system models,
    used by the CLI and the examples.

    {v
    # comment / blank lines are ignored
    task T1 compute=3 deadline=36 proc=P1 res=r1          # release=0 default
    task T2 compute=6 release=2 deadline=36 proc=P1 res=r1,r2 preemptive
    edge T1 T2 4                                          # message size 4
    shared P1=5 P2=4 r1=3                                 # shared model costs
    node N1 proc=P1 res=r1 cost=10                        # or dedicated nodes
    node N2 proc=P1 cost=6
    v}

    A file may declare either one [shared] line or one or more [node]
    lines (not both).  Task ids are assigned in declaration order. *)

type t = { app : Rtlb.App.t; system : Rtlb.System.t option }

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> t
(** Parse the full text of an application file.
    @raise Parse_error on malformed input. *)

val parse_file : string -> t
(** @raise Parse_error and [Sys_error]. *)

val to_string : ?system:Rtlb.System.t -> Rtlb.App.t -> string
(** Render an application (and optionally a system) in the same format;
    [parse (to_string app)] reconstructs the application. *)
