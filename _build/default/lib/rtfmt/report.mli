(** Full plain-text analysis reports: everything the four steps produced,
    as aligned tables — the CLI's [analyze --full] output and a reusable
    building block for tools on top of the library. *)

val windows_table : Rtlb.Analysis.t -> Table.t
(** task / EST / LCT / window / slack / critical flag. *)

val bounds_table : Rtlb.Analysis.t -> Table.t
(** resource / LB / witness interval / witness demand / partition. *)

val render : ?demand_windows:int -> Rtlb.Analysis.t -> string
(** The complete report: headline, windows table, bounds table, cost
    outcome, criticality summary, and (when [demand_windows] is given) a
    sliding demand profile of that width for every bounded resource. *)
