let windows_table (a : Rtlb.Analysis.t) =
  let t =
    Table.create [ "task"; "E"; "L"; "window"; "slack"; "critical" ]
  in
  let est = a.Rtlb.Analysis.windows.Rtlb.Est_lct.est in
  let lct = a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct in
  Array.iter
    (fun (task : Rtlb.Task.t) ->
      let i = task.Rtlb.Task.id in
      let window = lct.(i) - est.(i) in
      let slack = window - task.Rtlb.Task.compute in
      Table.add_row t
        [
          task.Rtlb.Task.name;
          string_of_int est.(i);
          string_of_int lct.(i);
          string_of_int window;
          string_of_int slack;
          (if slack <= 0 then "*" else "");
        ])
    (Rtlb.App.tasks a.Rtlb.Analysis.app);
  t

let bounds_table (a : Rtlb.Analysis.t) =
  let t = Table.create [ "resource"; "LB"; "witness"; "demand"; "partition" ] in
  let name i = (Rtlb.App.task a.Rtlb.Analysis.app i).Rtlb.Task.name in
  List.iter
    (fun (b : Rtlb.Lower_bound.bound) ->
      let witness, demand =
        match b.Rtlb.Lower_bound.witness with
        | Some w ->
            ( Printf.sprintf "[%d, %d)" w.Rtlb.Lower_bound.w_t1
                w.Rtlb.Lower_bound.w_t2,
              string_of_int w.Rtlb.Lower_bound.w_theta )
        | None -> ("-", "-")
      in
      Table.add_row t
        [
          b.Rtlb.Lower_bound.resource;
          string_of_int b.Rtlb.Lower_bound.lb;
          witness;
          demand;
          String.concat " < "
            (List.map
               (fun block ->
                 "{" ^ String.concat "," (List.map name block) ^ "}")
               b.Rtlb.Lower_bound.partition.Rtlb.Partition.blocks);
        ])
    a.Rtlb.Analysis.bounds;
  t

let render ?demand_windows (a : Rtlb.Analysis.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "lower-bound analysis: %d tasks, %d edges\n"
       (Rtlb.App.n_tasks a.Rtlb.Analysis.app)
       (Dag.n_edges (Rtlb.App.graph a.Rtlb.Analysis.app)));
  (match
     Rtlb.Est_lct.feasible_windows a.Rtlb.Analysis.app a.Rtlb.Analysis.windows
   with
  | Ok () -> ()
  | Error e ->
      Buffer.add_string buf ("INFEASIBLE on this system model: " ^ e ^ "\n"));
  Buffer.add_string buf "\n-- task windows --\n";
  Buffer.add_string buf (Table.render (windows_table a));
  Buffer.add_string buf "\n-- resource bounds --\n";
  Buffer.add_string buf (Table.render (bounds_table a));
  Buffer.add_string buf "\n-- cost --\n";
  Buffer.add_string buf (Format.asprintf "%a@." Rtlb.Cost.pp_outcome a.Rtlb.Analysis.cost);
  Buffer.add_string buf "\n-- criticality --\n";
  Buffer.add_string buf
    (Rtlb.Slack.render a.Rtlb.Analysis.app (Rtlb.Slack.analyse a));
  (match demand_windows with
  | None -> ()
  | Some w ->
      Buffer.add_string buf "\n-- demand profiles --\n";
      List.iter
        (fun (b : Rtlb.Lower_bound.bound) ->
          if b.Rtlb.Lower_bound.lb > 0 then
            Buffer.add_string buf
              (Rtlb.Demand.render
                 (Rtlb.Demand.sliding
                    ~est:a.Rtlb.Analysis.windows.Rtlb.Est_lct.est
                    ~lct:a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
                    a.Rtlb.Analysis.app
                    ~resource:b.Rtlb.Lower_bound.resource ~window:w)))
        a.Rtlb.Analysis.bounds);
  Buffer.contents buf
