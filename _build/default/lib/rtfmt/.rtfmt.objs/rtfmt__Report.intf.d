lib/rtfmt/report.mli: Rtlb Table
