lib/rtfmt/appfile.mli: Rtlb
