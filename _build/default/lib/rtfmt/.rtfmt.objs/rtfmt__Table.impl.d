lib/rtfmt/table.ml: Array Buffer List String
