lib/rtfmt/table.mli:
