lib/rtfmt/appfile.ml: Array Buffer Dag Hashtbl List Option Printf Rtlb String
