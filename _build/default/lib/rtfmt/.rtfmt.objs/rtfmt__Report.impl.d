lib/rtfmt/report.ml: Array Buffer Dag Format List Printf Rtlb String Table
