lib/rtfmt/json.mli: Rtlb Sched
