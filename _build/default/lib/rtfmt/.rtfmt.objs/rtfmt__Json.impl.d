lib/rtfmt/json.ml: Array Buffer Char List Printf Rat Rtlb Sched String
