type t = { app : Rtlb.App.t; system : Rtlb.System.t option }

exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

type pending_task = {
  pt_name : string;
  pt_compute : int;
  pt_release : int;
  pt_deadline : int;
  pt_proc : string;
  pt_resources : string list;
  pt_preemptive : bool;
  pt_period : int option;  (* period= turns the file periodic *)
}

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let key_value line word =
  match String.index_opt word '=' with
  | Some i ->
      Some
        ( String.sub word 0 i,
          String.sub word (i + 1) (String.length word - i - 1) )
  | None ->
      if word = "preemptive" then None
      else fail line "expected key=value, got %S" word

let int_of line what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "%s: not an integer: %S" what s

let parse_task line words =
  match words with
  | name :: rest ->
      let preemptive = List.mem "preemptive" rest in
      let kvs = List.filter_map (key_value line) rest in
      let get k = List.assoc_opt k kvs in
      let compute =
        match get "compute" with
        | Some v -> int_of line "compute" v
        | None -> fail line "task %s: missing compute=" name
      in
      let period_opt = Option.map (int_of line "period") (get "period") in
      let deadline =
        match (get "deadline", period_opt) with
        | Some v, _ -> int_of line "deadline" v
        | None, Some p -> p
        | None, None -> fail line "task %s: missing deadline=" name
      in
      let proc =
        match get "proc" with
        | Some v -> v
        | None -> fail line "task %s: missing proc=" name
      in
      let release =
        match get "release" with Some v -> int_of line "release" v | None -> 0
      in
      let resources =
        match get "res" with
        | Some v ->
            String.split_on_char ',' v
            |> List.filter (( <> ) "")
            |> List.concat_map (fun r ->
                   match String.index_opt r 'x' with
                   | Some i
                     when i > 0 && int_of_string_opt (String.sub r 0 i) <> None
                     ->
                       let count = int_of_string (String.sub r 0 i) in
                       if count < 1 then
                         fail line "task %s: zero resource units" name;
                       List.init count (fun _ ->
                           String.sub r (i + 1) (String.length r - i - 1))
                   | _ -> [ r ])
        | None -> []
      in
      let period = period_opt in
      {
        pt_name = name;
        pt_compute = compute;
        pt_release = release;
        pt_deadline = deadline;
        pt_proc = proc;
        pt_resources = resources;
        pt_preemptive = preemptive;
        pt_period = period;
      }
  | [] -> fail line "task: missing name"

let parse_shared line words =
  let costs =
    List.map
      (fun w ->
        match key_value line w with
        | Some (r, c) -> (r, int_of line "cost" c)
        | None -> fail line "shared: expected RESOURCE=COST")
      words
  in
  try Rtlb.System.shared ~costs
  with Invalid_argument m -> fail line "shared: %s" m

let parse_node line words =
  match words with
  | name :: rest ->
      let kvs = List.filter_map (key_value line) rest in
      let proc =
        match List.assoc_opt "proc" kvs with
        | Some p -> p
        | None -> fail line "node %s: missing proc=" name
      in
      let cost =
        match List.assoc_opt "cost" kvs with
        | Some c -> int_of line "cost" c
        | None -> 1
      in
      let provides =
        match List.assoc_opt "res" kvs with
        | Some v ->
            String.split_on_char ',' v
            |> List.filter (( <> ) "")
            |> List.map (fun r ->
                   match String.index_opt r 'x' with
                   | Some i when i > 0 && int_of_string_opt (String.sub r 0 i) <> None ->
                       let count = int_of_string (String.sub r 0 i) in
                       (String.sub r (i + 1) (String.length r - i - 1), count)
                   | _ -> (r, 1))
        | None -> []
      in
      (try Rtlb.System.node_type ~name ~proc ~provides ~cost ()
       with Invalid_argument m -> fail line "node %s: %s" name m)
  | [] -> fail line "node: missing name"

let parse text =
  let tasks = ref [] and edges = ref [] in
  let shared = ref None and nodes = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let words = split_words (strip_comment raw) in
      match words with
      | [] -> ()
      | "task" :: rest -> tasks := parse_task line rest :: !tasks
      | [ "edge"; src; dst; m ] ->
          edges := (line, src, dst, int_of line "message" m) :: !edges
      | "edge" :: _ -> fail line "edge: expected 'edge SRC DST SIZE'"
      | "shared" :: rest ->
          if !shared <> None then fail line "duplicate shared line";
          shared := Some (parse_shared line rest)
      | "node" :: rest -> nodes := parse_node line rest :: !nodes
      | w :: _ -> fail line "unknown directive %S" w)
    lines;
  let tasks = List.rev !tasks in
  let index = Hashtbl.create 16 in
  List.iteri
    (fun i pt ->
      if Hashtbl.mem index pt.pt_name then
        fail 0 "duplicate task name %s" pt.pt_name;
      Hashtbl.add index pt.pt_name i)
    tasks;
  let periodic = List.exists (fun pt -> pt.pt_period <> None) tasks in
  let app =
    if periodic then begin
      if List.exists (fun pt -> pt.pt_period = None) tasks then
        fail 0 "mixing periodic and one-shot tasks is not supported";
      let ptasks =
        List.map
          (fun pt ->
            try
              Rtlb.Periodic.ptask ~name:pt.pt_name
                ~period:(Option.get pt.pt_period) ~offset:pt.pt_release
                ~compute:pt.pt_compute ~deadline:pt.pt_deadline
                ~proc:pt.pt_proc ~resources:pt.pt_resources
                ~preemptive:pt.pt_preemptive ()
            with Invalid_argument m -> fail 0 "task %s: %s" pt.pt_name m)
          tasks
      in
      let pedges =
        List.rev_map
          (fun (line, src, dst, m) ->
            if not (Hashtbl.mem index src) then fail line "edge: unknown task %s" src;
            if not (Hashtbl.mem index dst) then fail line "edge: unknown task %s" dst;
            (src, dst, m))
          !edges
      in
      try Rtlb.Periodic.unroll ~tasks:ptasks ~edges:pedges ()
      with Invalid_argument m -> fail 0 "%s" m
    end
    else begin
      let task_list =
        List.mapi
          (fun i pt ->
            try
              Rtlb.Task.make ~id:i ~name:pt.pt_name ~compute:pt.pt_compute
                ~release:pt.pt_release ~deadline:pt.pt_deadline ~proc:pt.pt_proc
                ~resources:pt.pt_resources ~preemptive:pt.pt_preemptive ()
            with Invalid_argument m -> fail 0 "task %s: %s" pt.pt_name m)
          tasks
      in
      let edge_list =
        List.rev_map
          (fun (line, src, dst, m) ->
            let find n =
              match Hashtbl.find_opt index n with
              | Some i -> i
              | None -> fail line "edge: unknown task %s" n
            in
            (find src, find dst, m))
          !edges
      in
      try Rtlb.App.make ~tasks:task_list ~edges:edge_list
      with Invalid_argument m -> fail 0 "%s" m
    end
  in
  let system =
    match (!shared, List.rev !nodes) with
    | Some _, _ :: _ -> fail 0 "both shared and node lines present"
    | Some s, [] -> Some s
    | None, [] -> None
    | None, nodes -> (
        try Some (Rtlb.System.dedicated nodes)
        with Invalid_argument m -> fail 0 "%s" m)
  in
  { app; system }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string ?system app =
  let buf = Buffer.create 512 in
  Array.iter
    (fun (task : Rtlb.Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %s compute=%d release=%d deadline=%d proc=%s"
           task.Rtlb.Task.name task.Rtlb.Task.compute task.Rtlb.Task.release
           task.Rtlb.Task.deadline task.Rtlb.Task.proc);
      (match task.Rtlb.Task.demands with
      | [] -> ()
      | ds ->
          Buffer.add_string buf
            (" res="
            ^ String.concat ","
                (List.map
                   (fun (r, k) ->
                     if k = 1 then r else Printf.sprintf "%dx%s" k r)
                   ds)));
      if task.Rtlb.Task.preemptive then Buffer.add_string buf " preemptive";
      Buffer.add_char buf '\n')
    (Rtlb.App.tasks app);
  let name i = (Rtlb.App.task app i).Rtlb.Task.name in
  Dag.fold_edges (Rtlb.App.graph app) ~init:() ~f:(fun () ~src ~dst m ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s %d\n" (name src) (name dst) m));
  (match system with
  | None -> ()
  | Some (Rtlb.System.Shared costs) ->
      Buffer.add_string buf "shared";
      List.iter
        (fun (r, c) -> Buffer.add_string buf (Printf.sprintf " %s=%d" r c))
        costs;
      Buffer.add_char buf '\n'
  | Some (Rtlb.System.Dedicated nts) ->
      List.iter
        (fun (nt : Rtlb.System.node_type) ->
          Buffer.add_string buf
            (Printf.sprintf "node %s proc=%s" nt.Rtlb.System.nt_name
               nt.Rtlb.System.nt_proc);
          (match nt.Rtlb.System.nt_provides with
          | [] -> ()
          | provides ->
              Buffer.add_string buf " res=";
              Buffer.add_string buf
                (String.concat ","
                   (List.map
                      (fun (r, c) ->
                        if c = 1 then r else Printf.sprintf "%dx%s" c r)
                      provides)));
          Buffer.add_string buf
            (Printf.sprintf " cost=%d\n" nt.Rtlb.System.nt_cost))
        nts);
  Buffer.contents buf
