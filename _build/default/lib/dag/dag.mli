(** Directed-acyclic-graph substrate.

    Vertices are the integers [0 .. n-1]; every edge carries an integer
    weight (used by the application model for message sizes).  The
    structure is immutable after construction.

    Provides the graph services the analysis layers need: cycle detection,
    topological orders, predecessor/successor access, reachability and
    weighted longest paths. *)

type t

exception Cycle of int list
(** Raised by {!create} when the edge set contains a cycle; the payload is
    one offending cycle as a vertex list. *)

val create : n:int -> edges:(int * int * int) list -> t
(** [create ~n ~edges] builds a DAG with vertices [0..n-1] and edges
    [(src, dst, weight)].
    @raise Invalid_argument on an out-of-range endpoint, a self loop, or a
      duplicated edge.
    @raise Cycle if the edges are cyclic. *)

val n_vertices : t -> int
val n_edges : t -> int

val succs : t -> int -> (int * int) list
(** [(dst, weight)] pairs, in increasing [dst] order. *)

val preds : t -> int -> (int * int) list
(** [(src, weight)] pairs, in increasing [src] order. *)

val succ_ids : t -> int -> int list
val pred_ids : t -> int -> int list
val edge_weight : t -> src:int -> dst:int -> int option
val sources : t -> int list
(** Vertices without predecessors. *)

val sinks : t -> int list
(** Vertices without successors. *)

val topological_order : t -> int array
(** A topological order (sources first); stable across calls. *)

val reverse_topological_order : t -> int array

val reachable : t -> int -> bool array
(** [reachable g v] marks every vertex reachable from [v] (including [v]). *)

val transitive_closure : t -> bool array array
(** [closure.(i).(j)] iff there is a path from [i] to [j] ([i <> j]). *)

val longest_path_lengths : t -> vertex_weight:(int -> int) -> int array
(** [longest_path_lengths g ~vertex_weight] gives, for each vertex [v], the
    maximum total vertex weight of a path ending at (and including) [v].
    Edge weights are not counted; see {!longest_path_with_edges}. *)

val longest_path_with_edges : t -> vertex_weight:(int -> int) -> int array
(** Same, but each traversed edge also contributes its weight — the
    communication-aware critical path. *)

val critical_path_length : t -> vertex_weight:(int -> int) -> int
(** Maximum over sinks of {!longest_path_lengths}. *)

val map_weights : t -> f:(src:int -> dst:int -> int -> int) -> t

val fold_edges : t -> init:'a -> f:('a -> src:int -> dst:int -> int -> 'a) -> 'a

val to_dot : ?name:string -> ?label:(int -> string) -> t -> string
(** Graphviz rendering (vertex labels default to indices; edge labels are
    weights). *)
