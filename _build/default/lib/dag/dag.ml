type t = {
  n : int;
  succ : (int * int) list array;  (* (dst, weight), sorted by dst *)
  pred : (int * int) list array;  (* (src, weight), sorted by src *)
  n_edges : int;
  topo : int array;
}

exception Cycle of int list

(* Kahn's algorithm; on failure, walks the leftover vertices to report one
   concrete cycle. *)
let topological_sort n succ pred =
  let indegree = Array.map List.length pred in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indegree;
  let order = Array.make n 0 in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!count) <- v;
    incr count;
    List.iter
      (fun (w, _) ->
        indegree.(w) <- indegree.(w) - 1;
        if indegree.(w) = 0 then Queue.add w queue)
      succ.(v)
  done;
  if !count = n then order
  else begin
    (* Find a cycle among vertices with remaining in-degree. *)
    let in_cycle = Array.make n false in
    Array.iteri (fun v d -> if d > 0 then in_cycle.(v) <- true) indegree;
    let start = ref 0 in
    Array.iteri (fun v b -> if b && not in_cycle.(!start) then start := v)
      in_cycle;
    let seen = Array.make n (-1) in
    let rec walk v step path =
      if seen.(v) >= 0 then
        (* Trim the tail before the first repetition. *)
        List.rev (v :: path)
        |> List.filteri (fun i _ -> i >= seen.(v))
      else begin
        seen.(v) <- step;
        let next =
          List.find_map
            (fun (w, _) -> if in_cycle.(w) then Some w else None)
            succ.(v)
        in
        match next with
        | Some w -> walk w (step + 1) (v :: path)
        | None -> List.rev (v :: path)
      end
    in
    raise (Cycle (walk !start 0 []))
  end

let create ~n ~edges =
  if n < 0 then invalid_arg "Dag.create: negative size";
  let succ = Array.make n [] and pred = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (src, dst, w) ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg
          (Printf.sprintf "Dag.create: edge (%d,%d) out of range" src dst);
      if src = dst then
        invalid_arg (Printf.sprintf "Dag.create: self loop on %d" src);
      if Hashtbl.mem seen (src, dst) then
        invalid_arg
          (Printf.sprintf "Dag.create: duplicate edge (%d,%d)" src dst);
      Hashtbl.add seen (src, dst) ();
      succ.(src) <- (dst, w) :: succ.(src);
      pred.(dst) <- (src, w) :: pred.(dst))
    edges;
  let by_fst (a, _) (b, _) = compare a b in
  Array.iteri (fun i l -> succ.(i) <- List.sort by_fst l) succ;
  Array.iteri (fun i l -> pred.(i) <- List.sort by_fst l) pred;
  let topo = topological_sort n succ pred in
  { n; succ; pred; n_edges = List.length edges; topo }

let n_vertices t = t.n
let n_edges t = t.n_edges
let succs t v = t.succ.(v)
let preds t v = t.pred.(v)
let succ_ids t v = List.map fst t.succ.(v)
let pred_ids t v = List.map fst t.pred.(v)

let edge_weight t ~src ~dst =
  List.find_map (fun (d, w) -> if d = dst then Some w else None) t.succ.(src)

let sources t =
  List.init t.n Fun.id |> List.filter (fun v -> t.pred.(v) = [])

let sinks t = List.init t.n Fun.id |> List.filter (fun v -> t.succ.(v) = [])
let topological_order t = Array.copy t.topo

let reverse_topological_order t =
  let n = t.n in
  Array.init n (fun i -> t.topo.(n - 1 - i))

let reachable t v =
  let mark = Array.make t.n false in
  let rec go u =
    if not mark.(u) then begin
      mark.(u) <- true;
      List.iter (fun (w, _) -> go w) t.succ.(u)
    end
  in
  go v;
  mark

let transitive_closure t =
  let closure = Array.init t.n (fun _ -> Array.make t.n false) in
  (* Process in reverse topological order so successors are complete. *)
  Array.iter
    (fun v ->
      List.iter
        (fun (w, _) ->
          closure.(v).(w) <- true;
          for x = 0 to t.n - 1 do
            if closure.(w).(x) then closure.(v).(x) <- true
          done)
        t.succ.(v))
    (reverse_topological_order t);
  closure

let longest_generic t ~vertex_weight ~edge_counts =
  let dist = Array.make t.n 0 in
  Array.iter
    (fun v ->
      let best =
        List.fold_left
          (fun acc (u, w) ->
            let through = dist.(u) + if edge_counts then w else 0 in
            Stdlib.max acc through)
          0 t.pred.(v)
      in
      dist.(v) <- best + vertex_weight v)
    t.topo;
  dist

let longest_path_lengths t ~vertex_weight =
  longest_generic t ~vertex_weight ~edge_counts:false

let longest_path_with_edges t ~vertex_weight =
  longest_generic t ~vertex_weight ~edge_counts:true

let critical_path_length t ~vertex_weight =
  let dist = longest_path_lengths t ~vertex_weight in
  Array.fold_left Stdlib.max 0 dist

let fold_edges t ~init ~f =
  let acc = ref init in
  for src = 0 to t.n - 1 do
    List.iter (fun (dst, w) -> acc := f !acc ~src ~dst w) t.succ.(src)
  done;
  !acc

let map_weights t ~f =
  let edges =
    fold_edges t ~init:[] ~f:(fun acc ~src ~dst w ->
        (src, dst, f ~src ~dst w) :: acc)
  in
  create ~n:t.n ~edges

let to_dot ?(name = "dag") ?label t =
  let buf = Buffer.create 256 in
  let label = Option.value label ~default:string_of_int in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  for v = 0 to t.n - 1 do
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" v (label v))
  done;
  fold_edges t ~init:() ~f:(fun () ~src ~dst w ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d\"];\n" src dst w));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
