lib/workload/mutate.ml: Array Dag List Rtlb
