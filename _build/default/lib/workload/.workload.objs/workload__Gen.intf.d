lib/workload/gen.mli: Rtlb
