lib/workload/prng.mli:
