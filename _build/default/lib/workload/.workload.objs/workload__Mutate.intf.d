lib/workload/mutate.mli: Rtlb
