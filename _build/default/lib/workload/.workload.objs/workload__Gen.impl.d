lib/workload/gen.ml: Array Dag Hashtbl List Prng Rtlb
