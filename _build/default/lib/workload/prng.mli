(** Deterministic pseudo-random numbers (splitmix64).

    Workload generation must be reproducible across runs and platforms, so
    benchmarks and property tests use this self-contained generator rather
    than [Random]. *)

type t

val create : int -> t
(** A generator seeded with the given value. *)

val copy : t -> t

val next : t -> int64
(** Raw 64-bit step. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument when [hi < lo]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** True with the given probability (clamped to [\[0, 1\]]). *)

val float : t -> float -> float
(** Uniform in [\[0, x)]. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val weighted : t -> ('a * float) list -> 'a
(** Pick with the given non-negative weights.
    @raise Invalid_argument when all weights are zero or the list is
    empty. *)

val shuffle : t -> 'a array -> unit
