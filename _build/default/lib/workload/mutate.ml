let rebuild ~tasks ~edges = Rtlb.App.make ~tasks ~edges

let tasks_of app = Array.to_list (Rtlb.App.tasks app)

let edges_of app =
  Dag.fold_edges (Rtlb.App.graph app) ~init:[] ~f:(fun acc ~src ~dst m ->
      (src, dst, m) :: acc)

let with_task app ~task ~f =
  let tasks =
    List.map
      (fun (t : Rtlb.Task.t) -> if t.Rtlb.Task.id = task then f t else t)
      (tasks_of app)
  in
  rebuild ~tasks ~edges:(edges_of app)

let tighten_deadline app ~task ~by =
  let t = Rtlb.App.task app task in
  let deadline = t.Rtlb.Task.deadline - by in
  if t.Rtlb.Task.release + t.Rtlb.Task.compute > deadline then None
  else
    Some
      (with_task app ~task ~f:(fun t -> Rtlb.Task.with_deadline t deadline))

let relax_deadline app ~task ~by =
  let t = Rtlb.App.task app task in
  with_task app ~task ~f:(fun x ->
      Rtlb.Task.with_deadline x (t.Rtlb.Task.deadline + by))

let delay_release app ~task ~by =
  let t = Rtlb.App.task app task in
  let release = t.Rtlb.Task.release + by in
  if release + t.Rtlb.Task.compute > t.Rtlb.Task.deadline then None
  else
    Some
      (with_task app ~task ~f:(fun x ->
           Rtlb.Task.make ~id:x.Rtlb.Task.id ~name:x.Rtlb.Task.name
             ~compute:x.Rtlb.Task.compute ~release
             ~deadline:x.Rtlb.Task.deadline ~proc:x.Rtlb.Task.proc
             ~resources:x.Rtlb.Task.resources
             ~preemptive:x.Rtlb.Task.preemptive ()))

let scale_messages app ~percent =
  let scale m =
    if percent >= 100 then ((m * percent) + 99) / 100 else m * percent / 100
  in
  rebuild ~tasks:(tasks_of app)
    ~edges:(List.map (fun (s, d, m) -> (s, d, scale m)) (edges_of app))

let add_edge app ~src ~dst ~message =
  if src = dst then None
  else if Dag.edge_weight (Rtlb.App.graph app) ~src ~dst <> None then None
  else if (Dag.reachable (Rtlb.App.graph app) dst).(src) then None
  else
    Some
      (rebuild ~tasks:(tasks_of app)
         ~edges:((src, dst, message) :: edges_of app))

let drop_edge app ~src ~dst =
  if Dag.edge_weight (Rtlb.App.graph app) ~src ~dst = None then None
  else
    Some
      (rebuild ~tasks:(tasks_of app)
         ~edges:
           (List.filter (fun (s, d, _) -> (s, d) <> (src, dst)) (edges_of app)))

let zero_communication app =
  rebuild ~tasks:(tasks_of app)
    ~edges:(List.map (fun (s, d, _) -> (s, d, 0)) (edges_of app))
