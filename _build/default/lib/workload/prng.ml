type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): tiny, fast, and passes BigCrush
   when used as a 64-bit stream. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* Keep 62 bits so the value fits OCaml's 63-bit [int]; modulo bias is
     negligible for the small bounds used here. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. max 0.0 w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Prng.weighted: no positive weight";
  let x = float t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.weighted: empty list"
    | [ (v, _) ] -> v
    | (v, w) :: rest ->
        let acc = acc +. max 0.0 w in
        if x < acc then v else go acc rest
  in
  go 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
