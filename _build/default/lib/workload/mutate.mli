(** Structure-preserving instance mutations, for metamorphic testing.

    Each mutation changes an application in a direction with a {e known}
    effect on the analysis: tightening a constraint can only raise lower
    bounds, relaxing one can only lower them.  The test suite applies
    random mutations and checks the predicted monotonicity — a class of
    bug that point tests rarely catch. *)

val tighten_deadline : Rtlb.App.t -> task:int -> by:int -> Rtlb.App.t option
(** Deadline reduced by [by]; [None] when the task's own window would no
    longer fit ([release + compute > deadline]). *)

val relax_deadline : Rtlb.App.t -> task:int -> by:int -> Rtlb.App.t

val delay_release : Rtlb.App.t -> task:int -> by:int -> Rtlb.App.t option
(** Release increased by [by]; [None] when the window would no longer
    fit. *)

val scale_messages : Rtlb.App.t -> percent:int -> Rtlb.App.t
(** Every message size multiplied by [percent/100] (rounded up when
    growing, down when shrinking). *)

val add_edge : Rtlb.App.t -> src:int -> dst:int -> message:int -> Rtlb.App.t option
(** [None] when the edge exists, is a self loop, or would create a
    cycle. *)

val drop_edge : Rtlb.App.t -> src:int -> dst:int -> Rtlb.App.t option
(** [None] when the edge does not exist. *)

val zero_communication : Rtlb.App.t -> Rtlb.App.t
(** All message sizes set to [0] — a pure relaxation. *)
