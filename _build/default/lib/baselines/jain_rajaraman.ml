type t = {
  jr_m : int;
  jr_work_bound : int;
  jr_path_bound : int;
  jr_density_bound : int;
  jr_lower : int;
  jr_upper : int;
}

let ceil_div a b = (a + b - 1) / b

(* Density test at completion target [omega]: windows by longest paths,
   preemptive overlap (a valid relaxation of the non-preemptive model),
   demand of every candidate interval at most [m] times its length. *)
let density_feasible app ~m ~omega =
  let graph = Rtlb.App.graph app in
  let n = Rtlb.App.n_tasks app in
  let compute i = (Rtlb.App.task app i).Rtlb.Task.compute in
  let into = Dag.longest_path_lengths graph ~vertex_weight:compute in
  let est = Array.init n (fun i -> into.(i) - compute i) in
  let tail = Array.make n 0 in
  Array.iter
    (fun i ->
      let best =
        List.fold_left (fun acc j -> max acc tail.(j)) 0 (Dag.succ_ids graph i)
      in
      tail.(i) <- best + compute i)
    (Dag.reverse_topological_order graph);
  let lct = Array.init n (fun i -> omega - (tail.(i) - compute i)) in
  let points =
    (0 :: omega :: Array.to_list est) @ Array.to_list lct
    |> List.filter (fun p -> p >= 0 && p <= omega)
    |> List.sort_uniq compare
    |> Array.of_list
  in
  let np = Array.length points in
  let ok = ref true in
  for a = 0 to np - 2 do
    for b = a + 1 to np - 1 do
      let t1 = points.(a) and t2 = points.(b) in
      let demand = ref 0 in
      for i = 0 to n - 1 do
        demand :=
          !demand
          + Rtlb.Overlap.psi ~preemptive:true ~est:est.(i) ~lct:lct.(i)
              ~compute:(compute i) ~t1 ~t2
      done;
      if !demand > m * (t2 - t1) then ok := false
    done
  done;
  !ok

let analyse app ~m =
  if m <= 0 then invalid_arg "Jain_rajaraman.analyse: m <= 0";
  let n = Rtlb.App.n_tasks app in
  let work =
    List.init n (fun i -> (Rtlb.App.task app i).Rtlb.Task.compute)
    |> List.fold_left ( + ) 0
  in
  let cp = Rtlb.App.critical_time app in
  let work_bound = if work = 0 then 0 else ceil_div work m in
  let lo = max cp work_bound in
  (* The density test is monotone in omega on this model; search upward
     from the naive lower bound. *)
  let rec climb omega =
    if omega >= lo + work then omega
    else if density_feasible app ~m ~omega then omega
    else climb (omega + 1)
  in
  let density = if work = 0 then 0 else climb (max 1 lo) in
  let upper = if work = 0 then 0 else cp + ceil_div (max 0 (work - cp)) m in
  {
    jr_m = m;
    jr_work_bound = work_bound;
    jr_path_bound = cp;
    jr_density_bound = density;
    jr_lower = max density (max work_bound cp);
    jr_upper = upper;
  }
