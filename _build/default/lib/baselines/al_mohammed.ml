type t = { omega : int; est : int array; lct : int array; bound : int }

let compute_of app i = (Rtlb.App.task app i).Rtlb.Task.compute

(* Forward pass: E_i = min over the choice of at most one co-located
   predecessor p of max(E_p + C_p, max_{j <> p} E_j + C_j + m_ji). *)
let est_single_merge app =
  let graph = Rtlb.App.graph app in
  let n = Rtlb.App.n_tasks app in
  let est = Array.make n 0 in
  Array.iter
    (fun i ->
      let preds = Dag.pred_ids graph i in
      let emr j = est.(j) + compute_of app j + Rtlb.App.message app ~src:j ~dst:i in
      let no_merge = List.fold_left (fun acc j -> max acc (emr j)) 0 preds in
      let merged p =
        List.fold_left
          (fun acc j -> if j = p then max acc (est.(j) + compute_of app j) else max acc (emr j))
          0 preds
      in
      let best =
        List.fold_left (fun acc p -> min acc (merged p)) no_merge preds
      in
      est.(i) <- best)
    (Dag.topological_order graph);
  est

let lct_single_merge app ~omega =
  let graph = Rtlb.App.graph app in
  let n = Rtlb.App.n_tasks app in
  let lct = Array.make n 0 in
  Array.iter
    (fun i ->
      let succs = Dag.succ_ids graph i in
      if succs = [] then lct.(i) <- omega
      else begin
        let lms j =
          lct.(j) - compute_of app j - Rtlb.App.message app ~src:i ~dst:j
        in
        let no_merge =
          List.fold_left (fun acc j -> min acc (lms j)) max_int succs
        in
        let merged s =
          List.fold_left
            (fun acc j ->
              if j = s then min acc (lct.(j) - compute_of app j)
              else min acc (lms j))
            max_int succs
        in
        lct.(i) <-
          List.fold_left (fun acc s -> max acc (merged s)) no_merge succs
      end)
    (Dag.reverse_topological_order graph);
  lct

let analyse ?omega app =
  let n = Rtlb.App.n_tasks app in
  let est = est_single_merge app in
  let min_omega =
    let m = ref 0 in
    for i = 0 to n - 1 do
      m := max !m (est.(i) + compute_of app i)
    done;
    !m
  in
  let omega = max min_omega (Option.value ~default:min_omega omega) in
  let lct = lct_single_merge app ~omega in
  let points =
    Array.to_list est @ Array.to_list lct
    |> List.sort_uniq Stdlib.compare
    |> Array.of_list
  in
  let bound = ref 0 in
  let np = Array.length points in
  for a = 0 to np - 2 do
    for b = a + 1 to np - 1 do
      let t1 = points.(a) and t2 = points.(b) in
      let demand = ref 0 in
      for i = 0 to n - 1 do
        demand :=
          !demand
          + Rtlb.Overlap.psi ~preemptive:false ~est:est.(i) ~lct:lct.(i)
              ~compute:(compute_of app i) ~t1 ~t2
      done;
      if !demand > 0 then
        bound := max !bound ((!demand + t2 - t1 - 1) / (t2 - t1))
    done
  done;
  { omega; est; lct; bound = !bound }
