lib/baselines/al_mohammed.ml: Array Dag List Option Rtlb Stdlib
