lib/baselines/fernandez_bussell.mli: Rtlb
