lib/baselines/jain_rajaraman.mli: Rtlb
