lib/baselines/fernandez_bussell.ml: Array Dag List Option Rtlb Stdlib
