lib/baselines/jain_rajaraman.ml: Array Dag List Rtlb
