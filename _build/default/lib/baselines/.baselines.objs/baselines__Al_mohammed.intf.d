lib/baselines/al_mohammed.mli: Rtlb
