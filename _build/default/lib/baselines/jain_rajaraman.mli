(** Jain–Rajaraman (1994) style lower {e and} upper bounds on the length
    of an optimal [m]-processor schedule — the paper's reference [5],
    whose partitioning idea Section 5 adapts.

    Model: non-preemptive tasks with precedence, a single processor type,
    no resources, no communication, no deadlines.  For a given processor
    count [m]:

    - lower bounds: total work spread over [m] machines, the critical
      path, and the strongest of the three — the interval-density bound
      computed by binary search over completion targets with the Section 6
      machinery (windows anchored at the target);
    - upper bound: Graham's list-scheduling guarantee
      [cp + ceil((W - cp) / m)], which a greedy schedule always meets.

    The suite sandwiches the exact optimum (from the branch-and-bound
    makespan search) between the two on random instances. *)

type t = {
  jr_m : int;
  jr_work_bound : int;  (** [ceil(W / m)]. *)
  jr_path_bound : int;  (** Critical path length. *)
  jr_density_bound : int;
      (** Smallest completion target the interval-density test admits. *)
  jr_lower : int;  (** Max of the three. *)
  jr_upper : int;  (** Graham guarantee. *)
}

val analyse : Rtlb.App.t -> m:int -> t
(** Deadlines, processor types, resources and message sizes of [app] are
    ignored (the JR model has none).
    @raise Invalid_argument when [m <= 0]. *)
