(** The Al-Mohammed (1990) communication-aware processor bound, rebuilt
    from its description as the second comparison baseline.

    Al-Mohammed extended Fernandez–Bussell to non-zero communication
    times: when computing a task's earliest start (latest completion), at
    most {e one} immediate predecessor (successor) may be assumed
    co-located with it, avoiding that single message delay at the price of
    sequential execution.  This is exactly the paper's Section 4 merging
    argument restricted to merge sets of size at most one, with a single
    processor type, no resources, no release times, and no deadlines
    (windows are anchored to a completion target [omega]).

    The paper's full analysis generalises the merge to arbitrary mergeable
    sets and folds in deadlines/releases/resources, so on common ground
    the two coincide and elsewhere the paper's windows are never looser —
    property-tested in the suite. *)

type t = {
  omega : int;
  est : int array;
  lct : int array;
  bound : int;
}

val analyse : ?omega:int -> Rtlb.App.t -> t
(** Resource annotations and processor types are ignored; communication
    sizes are honoured.  [omega] defaults to the smallest completion
    target that keeps every window non-empty ([max_i est_i + C_i] after
    the forward pass). *)

val est_single_merge : Rtlb.App.t -> int array
(** Just the forward pass (exposed for the dominance property tests). *)
