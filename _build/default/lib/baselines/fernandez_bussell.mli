(** The Fernandez–Bussell (1973) processor lower bound, implemented from
    their paper's model as the comparison baseline.

    Their setting is the restriction of this paper's model to: a single
    processor type, no resources, zero communication time, non-preemptive
    tasks, no release times, and a common completion target [omega]
    (by default the critical time of the graph).  Task windows come from
    plain longest-path calculations, and the bound is the maximum
    load density [ceil(sum of overlaps / interval length)] over candidate
    intervals — the same Section 6 machinery this paper generalises.

    On instances of that restricted class, the paper's analysis must
    produce exactly this bound; on anything richer (deadlines, resources,
    communication) it must dominate it.  Both facts are property-tested. *)

type t = {
  omega : int;  (** Completion target used. *)
  est : int array;  (** Longest-path earliest start times. *)
  lct : int array;  (** [omega] minus tail longest path. *)
  bound : int;  (** Minimum number of processors. *)
}

val analyse : ?omega:int -> Rtlb.App.t -> t
(** Communication and resource annotations of [app] are ignored (that is
    the baseline's blind spot); processor types are ignored too — every
    task counts toward the single pool.
    @raise Invalid_argument when [omega] is smaller than the critical
    time. *)
