(** Partitioning of the tasks competing for one resource into
    time-disjoint blocks (paper, Section 5, Figure 4).

    The blocks [P_r1 < P_r2 < ... < P_rm] satisfy: every task window
    [\[E_i, L_i\]] of an earlier block ends no later than every window of a
    later block begins, so each block can be analysed independently
    (Theorem 5 shows the block-wise maximum equals the global one). *)

type t = {
  blocks : int list list;  (** Task ids, in chain order. *)
  spans : (int * int) list;  (** [(s_k, f_k)] = (min EST, max LCT) per block. *)
}

val compute : est:int array -> lct:int array -> int list -> t
(** [compute ~est ~lct tasks] partitions [tasks] (typically [ST_r]).  The
    sweep considers tasks by increasing EST; ties are broken by decreasing
    LCT so that a task whose window starts exactly where an earlier window
    ends opens a new block only when no tied task extends the current one
    (this matches the paper's example).  Returns empty blocks list when
    [tasks] is empty. *)

val is_valid : est:int array -> lct:int array -> int list -> t -> bool
(** Checks the three defining conditions: the blocks cover the task set,
    are pairwise disjoint, and are time-ordered ([max L] of a block [<=]
    [min E] of every later block). *)

val pp : names:(int -> string) -> Format.formatter -> t -> unit
