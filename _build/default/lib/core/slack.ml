type task_slack = { ts_task : int; ts_window : int; ts_slack : int }

type report = {
  r_slacks : task_slack list;
  r_critical : int list;
  r_bottlenecks : (string * Lower_bound.witness) list;
}

let criticality ~est ~lct app i =
  let task = App.task app i in
  let window = lct.(i) - est.(i) in
  { ts_task = i; ts_window = window; ts_slack = window - task.Task.compute }

let analyse (a : Analysis.t) =
  let est = a.Analysis.windows.Est_lct.est in
  let lct = a.Analysis.windows.Est_lct.lct in
  let slacks =
    List.init (App.n_tasks a.Analysis.app) (fun i ->
        criticality ~est ~lct a.Analysis.app i)
    |> List.sort (fun x y -> compare (x.ts_slack, x.ts_task) (y.ts_slack, y.ts_task))
  in
  {
    r_slacks = slacks;
    r_critical =
      List.filter_map
        (fun s -> if s.ts_slack <= 0 then Some s.ts_task else None)
        slacks;
    r_bottlenecks =
      List.filter_map
        (fun (b : Lower_bound.bound) ->
          Option.map
            (fun w -> (b.Lower_bound.resource, w))
            b.Lower_bound.witness)
        a.Analysis.bounds;
  }

let render app r =
  let buf = Buffer.create 256 in
  let name i = (App.task app i).Task.name in
  Buffer.add_string buf "critical tasks (zero slack): ";
  Buffer.add_string buf
    (if r.r_critical = [] then "none\n"
     else String.concat ", " (List.map name r.r_critical) ^ "\n");
  Buffer.add_string buf "tightest windows:\n";
  List.iteri
    (fun k s ->
      if k < 5 then
        Buffer.add_string buf
          (Printf.sprintf "  %-8s window %3d, slack %3d\n" (name s.ts_task)
             s.ts_window s.ts_slack))
    r.r_slacks;
  Buffer.add_string buf "bottleneck epochs:\n";
  List.iter
    (fun (resource, (w : Lower_bound.witness)) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s [%d, %d) carries demand %d\n" resource
           w.Lower_bound.w_t1 w.Lower_bound.w_t2 w.Lower_bound.w_theta))
    r.r_bottlenecks;
  Buffer.contents buf
