(** Slack and criticality: which tasks and resources pin the bounds.

    The windows of Section 4 carry more design information than the
    bounds alone: a task whose window barely fits its computation has no
    scheduling freedom at all, and the witness intervals of Section 6
    name the congestion epochs.  This module digests both into a
    designer-facing criticality report. *)

type task_slack = {
  ts_task : int;
  ts_window : int;  (** [L_i - E_i]. *)
  ts_slack : int;  (** [L_i - E_i - C_i]; [0] means no freedom. *)
}

type report = {
  r_slacks : task_slack list;  (** Ascending by slack, ties by id. *)
  r_critical : int list;  (** Tasks with zero slack. *)
  r_bottlenecks : (string * Lower_bound.witness) list;
      (** Per bounded resource, the witness interval that pins [LB_r]. *)
}

val analyse : Analysis.t -> report

val criticality : est:int array -> lct:int array -> App.t -> int -> task_slack

val render : App.t -> report -> string
(** Plain-text criticality report. *)
