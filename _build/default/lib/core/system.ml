type node_type = {
  nt_name : string;
  nt_proc : string;
  nt_provides : (string * int) list;
  nt_cost : int;
}

type t = Shared of (string * int) list | Dedicated of node_type list

let check_assoc what l =
  let names = List.map fst l in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg (Printf.sprintf "System: duplicate %s" what);
  List.iter
    (fun (n, c) ->
      if c < 0 then
        invalid_arg (Printf.sprintf "System: negative count/cost for %s" n))
    l

let shared ~costs =
  check_assoc "resource cost" costs;
  Shared (List.sort (fun (a, _) (b, _) -> String.compare a b) costs)

let shared_uniform ~resources =
  shared ~costs:(List.map (fun r -> (r, 1)) resources)

let node_type ~name ~proc ?(provides = []) ?(cost = 1) () =
  if name = "" || proc = "" then invalid_arg "System.node_type: empty name";
  if cost < 0 then invalid_arg "System.node_type: negative cost";
  check_assoc "node resource" provides;
  List.iter
    (fun (r, c) ->
      if c < 1 then
        invalid_arg (Printf.sprintf "System.node_type: zero units of %s" r))
    provides;
  {
    nt_name = name;
    nt_proc = proc;
    nt_provides = List.sort (fun (a, _) (b, _) -> String.compare a b) provides;
    nt_cost = cost;
  }

let dedicated nts =
  if nts = [] then invalid_arg "System.dedicated: empty catalogue";
  let names = List.map (fun nt -> nt.nt_name) nts in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "System.dedicated: duplicate node-type names";
  Dedicated nts

let resource_cost t r =
  match t with
  | Dedicated _ ->
      invalid_arg "System.resource_cost: dedicated systems cost per node"
  | Shared costs -> (
      match List.assoc_opt r costs with
      | Some c -> c
      | None ->
          invalid_arg
            (Printf.sprintf "System.resource_cost: unknown resource %s" r))

let node_types = function Shared _ -> [] | Dedicated nts -> nts

let node_provides nt r =
  let from_resources =
    match List.assoc_opt r nt.nt_provides with Some c -> c | None -> 0
  in
  if String.equal r nt.nt_proc then from_resources + 1 else from_resources

let node_can_host nt (task : Task.t) =
  String.equal nt.nt_proc task.Task.proc
  && List.for_all
       (fun (r, k) ->
         match List.assoc_opt r nt.nt_provides with
         | Some available -> available >= k
         | None -> false)
       task.Task.demands

let eligible_nodes t task =
  match t with
  | Shared _ -> []
  | Dedicated nts -> List.filter (fun nt -> node_can_host nt task) nts

let merge_pools t app ~center candidates =
  let ct = App.task app center in
  let same_proc =
    List.filter
      (fun j ->
        j <> center
        && String.equal (App.task app j).Task.proc ct.Task.proc)
      candidates
  in
  match t with
  | Shared _ -> if same_proc = [] then [] else [ same_proc ]
  | Dedicated nts ->
      List.filter_map
        (fun nt ->
          if not (node_can_host nt ct) then None
          else
            let pool =
              List.filter (fun j -> node_can_host nt (App.task app j)) same_proc
            in
            if pool = [] then None else Some pool)
        nts
      |> List.sort_uniq compare

let mergeable t app ids =
  match ids with
  | [] | [ _ ] -> true
  | first :: rest -> (
      let proc_of i = (App.task app i).Task.proc in
      let same_proc =
        List.for_all (fun i -> String.equal (proc_of i) (proc_of first)) rest
      in
      same_proc
      &&
      match t with
      | Shared _ -> true
      | Dedicated nts ->
          (* merged tasks run sequentially, so the node must cover each
             task's demand individually (the pointwise maximum, not the
             sum) *)
          List.exists
            (fun nt ->
              String.equal nt.nt_proc (proc_of first)
              && List.for_all
                   (fun i -> node_can_host nt (App.task app i))
                   ids)
            nts)

let validate_for t app =
  match t with
  | Shared _ -> Ok ()
  | Dedicated _ ->
      let missing = ref [] in
      Array.iter
        (fun (task : Task.t) ->
          if eligible_nodes t task = [] then missing := task.Task.name :: !missing)
        (App.tasks app);
      if !missing = [] then Ok ()
      else
        Error
          (Printf.sprintf "no node type can host task(s): %s"
             (String.concat ", " (List.rev !missing)))

let pp ppf = function
  | Shared costs ->
      Format.fprintf ppf "@[<v>shared model:";
      List.iter
        (fun (r, c) -> Format.fprintf ppf "@,  CostR(%s) = %d" r c)
        costs;
      Format.fprintf ppf "@]"
  | Dedicated nts ->
      Format.fprintf ppf "@[<v>dedicated model:";
      List.iter
        (fun nt ->
          Format.fprintf ppf "@,  %s: proc %s%s, CostN = %d" nt.nt_name
            nt.nt_proc
            (String.concat ""
               (List.map
                  (fun (r, c) ->
                    if c = 1 then " +" ^ r
                    else Printf.sprintf " +%dx%s" c r)
                  nt.nt_provides))
            nt.nt_cost)
        nts;
      Format.fprintf ppf "@]"
