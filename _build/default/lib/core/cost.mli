(** Lower bounds on system cost (paper, Section 7).

    Shared model: cost is separable, so the bound is
    [sum_r CostR(r) * LB_r] (Equation 7.1).

    Dedicated model: node counts [x_n] must jointly cover the per-resource
    bounds ([sum_n gamma_nr x_n >= LB_r]) and give every task an eligible
    node ([sum over eta_i of x_n >= 1]); the cost bound is the optimum of
    the resulting integer program, solved exactly with {!Lp.Ilp}.  The LP
    relaxation — the "weaker bound" the paper mentions — is also exposed. *)

type shared = {
  s_terms : (string * int * int) list;
      (** [(resource, CostR, LB_r)] per resource with [LB_r > 0]. *)
  s_cost : int;
}

type dedicated = {
  d_problem : Lp.Problem.t;
  d_counts : (string * int) list;  (** Optimal [x_n] per node-type name. *)
  d_cost : int;
  d_relaxed_cost : Rat.t;  (** Optimum of the LP relaxation. *)
}

type outcome =
  | Shared_cost of shared
  | Dedicated_cost of dedicated
  | No_feasible_system of string
      (** The covering ILP is infeasible (e.g. some task has no eligible
          node type). *)

val shared_bound : System.t -> Lower_bound.bound list -> shared
(** @raise Invalid_argument when the system is dedicated or a bounded
    resource has no declared cost. *)

val dedicated_problem : System.t -> App.t -> Lower_bound.bound list -> Lp.Problem.t
(** The covering integer program (before solving) — exposed for tests and
    for printing the Section 8 formulation. *)

val dedicated_bound : System.t -> App.t -> Lower_bound.bound list -> (dedicated, string) result

val compute : System.t -> App.t -> Lower_bound.bound list -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
