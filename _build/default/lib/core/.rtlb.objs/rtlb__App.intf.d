lib/core/app.mli: Dag Format Task
