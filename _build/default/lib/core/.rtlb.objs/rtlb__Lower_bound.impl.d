lib/core/lower_bound.ml: App Array Format List Overlap Partition Task
