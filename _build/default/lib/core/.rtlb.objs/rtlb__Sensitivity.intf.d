lib/core/sensitivity.mli: App System
