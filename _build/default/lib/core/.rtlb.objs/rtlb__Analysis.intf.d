lib/core/analysis.mli: App Cost Est_lct Format Lower_bound System
