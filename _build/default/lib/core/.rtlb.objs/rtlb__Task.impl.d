lib/core/task.ml: Bool Format List Printf String
