lib/core/slack.mli: Analysis App Lower_bound
