lib/core/est_lct.mli: App Format Stdlib System
