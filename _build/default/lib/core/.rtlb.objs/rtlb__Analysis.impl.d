lib/core/analysis.ml: App Array Cost Est_lct Format List Lower_bound Partition String System Task
