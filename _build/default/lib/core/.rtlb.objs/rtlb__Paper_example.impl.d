lib/core/paper_example.ml: App System Task
