lib/core/demand.ml: App Array Buffer List Lower_bound Printf String
