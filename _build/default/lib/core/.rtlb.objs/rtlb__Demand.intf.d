lib/core/demand.mli: App
