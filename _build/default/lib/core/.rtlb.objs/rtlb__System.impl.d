lib/core/system.ml: App Array Format List Printf String Task
