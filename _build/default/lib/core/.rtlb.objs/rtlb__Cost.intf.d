lib/core/cost.mli: App Format Lower_bound Lp Rat System
