lib/core/seq_schedule.mli:
