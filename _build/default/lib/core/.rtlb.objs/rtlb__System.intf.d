lib/core/system.mli: App Format Task
