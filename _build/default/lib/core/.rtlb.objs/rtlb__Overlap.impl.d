lib/core/overlap.ml: App Array Task
