lib/core/time_bound.mli: App System
