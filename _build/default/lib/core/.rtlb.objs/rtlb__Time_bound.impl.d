lib/core/time_bound.ml: App Array Est_lct List Lower_bound Option Task
