lib/core/partition.ml: Array Format List String
