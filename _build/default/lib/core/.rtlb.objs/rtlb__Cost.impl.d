lib/core/cost.ml: App Array Format List Lower_bound Lp Printf Rat String System
