lib/core/lower_bound.mli: App Format Partition
