lib/core/overlap.mli: App
