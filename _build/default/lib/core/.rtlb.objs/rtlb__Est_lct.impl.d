lib/core/est_lct.ml: App Array Dag Format List Printf Seq_schedule String System Task
