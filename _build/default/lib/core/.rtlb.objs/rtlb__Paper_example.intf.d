lib/core/paper_example.mli: App System
