lib/core/periodic.ml: App Hashtbl List Option Printf Rat String Task
