lib/core/slack.ml: Analysis App Array Buffer Est_lct List Lower_bound Option Printf String Task
