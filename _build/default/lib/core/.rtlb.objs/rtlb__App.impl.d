lib/core/app.ml: Array Dag Format List Printf String Task
