lib/core/sensitivity.ml: Analysis App Buffer Cost List Lower_bound Printf String Task
