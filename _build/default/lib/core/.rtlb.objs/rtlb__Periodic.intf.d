lib/core/periodic.mli: App Rat
