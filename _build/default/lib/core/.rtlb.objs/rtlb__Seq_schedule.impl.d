lib/core/seq_schedule.ml: List
