(** Mandatory execution overlap of a task with a time interval
    (paper, Section 6, Theorems 3 and 4).

    [Psi(i, t1, t2)] is the minimum amount of time task [i] {e must}
    execute inside [\[t1, t2\]] in any schedule that starts it no earlier
    than [E_i] and completes it no later than [L_i].  A preemptive task can
    split its execution around the interval (Theorem 3); a non-preemptive
    task runs in one piece, so its unavoidable presence in the interval is
    also capped by the interval length (Theorem 4). *)

val alpha : int -> int
(** [alpha x = max x 0] (Definition 4). *)

val mu : int -> int
(** [mu x] is [1] when [x > 0], else [0] (Definition 4). *)

val psi : preemptive:bool -> est:int -> lct:int -> compute:int -> t1:int -> t2:int -> int
(** The overlap formula.  @raise Invalid_argument when [t1 >= t2]. *)

val of_task : est:int array -> lct:int array -> App.t -> int -> t1:int -> t2:int -> int
(** {!psi} applied to a task of an application, reading its window from
    the EST/LCT arrays. *)

val brute_force :
  preemptive:bool -> est:int -> lct:int -> compute:int -> t1:int -> t2:int -> int
(** Reference implementation by explicit minimisation over unit-granularity
    placements of the task inside its window; used by tests to validate
    the closed form.  Preemptive placements are the greedy
    earliest-then-latest split, which is optimal for a single interval. *)
