(** Single-processor sequential schedules used inside the EST/LCT merging
    analysis (paper, Section 4: the [ect(A)] and [lst(A)] terms).

    Both functions treat their input as jobs to be run back to back on one
    processor, each constrained by its own earliest start (resp. latest
    completion) time. *)

val ect : (int * int) list -> int
(** [ect jobs] — jobs are [(est, compute)] pairs.  Schedules them in
    non-decreasing [est] order, each starting at the later of its own [est]
    and the previous completion, and returns the completion time of the
    last job: the earliest time a single processor can finish all of them.
    @raise Invalid_argument on an empty list (use the caller's identity
      element instead). *)

val lst : (int * int) list -> int
(** [lst jobs] — jobs are [(lct, compute)] pairs.  Mirror image of {!ect}:
    schedules in non-increasing [lct] order backwards from the deadlines
    and returns the start time of the earliest job — the latest time a
    single processor may begin the set and still meet every [lct].
    @raise Invalid_argument on an empty list. *)
