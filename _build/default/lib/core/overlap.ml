let alpha x = max x 0
let mu x = if x > 0 then 1 else 0

let psi ~preemptive ~est ~lct ~compute ~t1 ~t2 =
  if t1 >= t2 then invalid_arg "Overlap.psi: empty interval";
  if mu (lct - t1) * mu (t2 - est) = 0 then 0
  else
    let head = alpha (compute - (t1 - est)) in
    let tail = alpha (compute - (lct - t2)) in
    let split =
      if preemptive then alpha (compute - (lct - t2) - (t1 - est))
      else t2 - t1
    in
    min (min compute head) (min tail split)

let of_task ~est ~lct app i ~t1 ~t2 =
  let task = App.task app i in
  psi ~preemptive:task.Task.preemptive ~est:est.(i) ~lct:lct.(i)
    ~compute:task.Task.compute ~t1 ~t2

(* Exhaustive minimisation used as the test oracle.  A non-preemptive task
   occupies one window [s, s+C]; a preemptive one can be split arbitrarily,
   and for a single query interval the minimising split packs work at the
   two ends of [E, L], so it suffices to try every (head, tail) partition
   of C between [E, t1] and [t2, L]. *)
let brute_force ~preemptive ~est ~lct ~compute ~t1 ~t2 =
  if t1 >= t2 then invalid_arg "Overlap.brute_force: empty interval";
  let clip a b = max 0 (min b t2 - max a t1) in
  if compute = 0 then 0
  else if not preemptive then begin
    let best = ref max_int in
    for s = est to lct - compute do
      best := min !best (clip s (s + compute))
    done;
    if !best = max_int then 0 else !best
  end
  else if est + compute > lct then 0
  else begin
    (* Split C into a head run at the very start of the window and a tail
       run at its very end; [head + tail = C <= lct - est] guarantees the
       two runs do not overlap.  End-packing is optimal against a single
       query interval, so minimising over all splits is exact. *)
    let best = ref max_int in
    for head = 0 to compute do
      let tail = compute - head in
      let occ = clip est (est + head) + clip (lct - tail) lct in
      best := min !best occ
    done;
    !best
  end
