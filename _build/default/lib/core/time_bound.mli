(** Completion-time lower bounds for a {e given} platform — the converse
    question to [LB_r], in the tradition of Fernandez–Bussell's and
    Jain–Rajaraman's time bounds, answered with this paper's machinery.

    For a common completion target [omega], set every deadline to [omega]
    and run the Section 4–6 analysis; if some [LB_r] exceeds the units the
    platform actually has, no schedule can finish by [omega].  The minimal
    [omega] that passes is therefore a lower bound on the achievable
    makespan on that platform. *)

type t = {
  tb_omega : int;  (** The completion-time lower bound. *)
  tb_bounds : (string * int) list;
      (** Per-resource [LB_r] at [tb_omega] (all within capacity). *)
  tb_binding : string list;
      (** Resources whose capacity is exceeded at [tb_omega - 1] — the
          constraints that pin the bound (empty when the window-
          feasibility condition binds instead). *)
}

val minimum_completion_time :
  System.t -> App.t -> capacity:(string -> int) -> t option
(** [minimum_completion_time system app ~capacity] searches for the
    smallest uniform completion target.  Original deadlines are ignored
    (this is a throughput question); release times are kept.  Returns
    [None] when some used resource has zero capacity.

    The density bound is monotone in [omega] in the exact formulation;
    the finite candidate-point evaluation is checked to be locally
    minimal ([passes omega], [fails omega - 1]). *)
