type t = {
  tasks : Task.t array;
  graph : Dag.t;
  resource_set : string list;  (* cached RES *)
}

let make ~tasks ~edges =
  let n = List.length tasks in
  let arr = Array.make n None in
  List.iter
    (fun (task : Task.t) ->
      if task.Task.id < 0 || task.Task.id >= n then
        invalid_arg
          (Printf.sprintf "App.make: task id %d out of range [0,%d)"
             task.Task.id n);
      if arr.(task.Task.id) <> None then
        invalid_arg
          (Printf.sprintf "App.make: duplicate task id %d" task.Task.id);
      arr.(task.Task.id) <- Some task)
    tasks;
  let tasks =
    Array.map
      (function
        | Some t -> t
        | None -> invalid_arg "App.make: missing task id")
      arr
  in
  List.iter
    (fun (_, _, m) ->
      if m < 0 then invalid_arg "App.make: negative message size")
    edges;
  let graph = Dag.create ~n ~edges in
  let resource_set =
    Array.fold_left
      (fun acc task -> List.rev_append (Task.needs task) acc)
      [] tasks
    |> List.sort_uniq String.compare
  in
  { tasks; graph; resource_set }

let n_tasks t = Array.length t.tasks
let task t i = t.tasks.(i)
let tasks t = Array.copy t.tasks
let graph t = t.graph
let preds t i = Dag.pred_ids t.graph i
let succs t i = Dag.succ_ids t.graph i

let message t ~src ~dst =
  match Dag.edge_weight t.graph ~src ~dst with
  | Some m -> m
  | None -> raise Not_found

let resource_set t = t.resource_set

let tasks_using t r =
  Array.to_list t.tasks
  |> List.filter_map (fun task ->
         if Task.uses task r then Some task.Task.id else None)

let total_work t r =
  tasks_using t r
  |> List.fold_left (fun acc i -> acc + (task t i).Task.compute) 0

let horizon t =
  Array.fold_left (fun acc (task : Task.t) -> max acc task.Task.deadline) 0
    t.tasks

let critical_time t =
  Dag.critical_path_length t.graph ~vertex_weight:(fun i ->
      t.tasks.(i).Task.compute)

let map_tasks t ~f =
  let tasks = Array.map f t.tasks in
  Array.iteri
    (fun i (task : Task.t) ->
      if task.Task.id <> i then invalid_arg "App.map_tasks: id changed")
    tasks;
  { t with tasks }

let to_dot t =
  Dag.to_dot ~name:"application"
    ~label:(fun i -> Format.asprintf "%a" Task.pp t.tasks.(i))
    t.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>application: %d tasks, %d edges" (n_tasks t)
    (Dag.n_edges t.graph);
  Array.iter (fun task -> Format.fprintf ppf "@,  %a" Task.pp task) t.tasks;
  Format.fprintf ppf "@]"
