(** The 15-task application of the paper's Section 8 (Figure 7),
    reconstructed.

    The original figure is an image that did not survive; this instance is
    rebuilt from Table 1 and the worked arithmetic in the text, which pin
    almost every parameter (e.g. [lms_15 = 36 - 6 - 4] fixes [C_15 = 6]
    and [m_9,15 = 4]).  The reconstruction reproduces:

    - every EST in Table 1, and every LCT except the impossible
      [L_11 = 35] (task 11 feeds task 15, so [L_11 <= 30] whatever the
      placement; we obtain 30),
    - the three partitions of Section 8 Step 2 exactly,
    - [LB_P1 = 3], [LB_P2 = 2], [LB_r1 = 2] (Step 3),
    - the dedicated-model ILP and its solution [x = (2, 1, 2)] (Step 4).

    Table 1 also forces [E_12 = L_12 = 30], which is only satisfiable with
    [C_12 = 0]; task 12 is therefore modelled as a milestone task.
    See EXPERIMENTS.md for the cell-by-cell comparison. *)

val app : App.t
(** Task ids [0..14] carry paper names ["T1".."T15"]. *)

val shared : System.t
(** The shared model with the costs used in the Step 4 illustration
    ([CostR(P1) = 5], [CostR(P2) = 4], [CostR(r1) = 3]; the paper leaves
    them symbolic). *)

val dedicated : System.t
(** The catalogue [Lambda = {{P1,r1}, {P1}, {P2}}] with costs
    [10, 6, 7] — any costs with [CostN({P1,r1}) > CostN({P1})] give the
    paper's optimum [x = (2, 1, 2)]. *)

val expected_est : int array
(** Table 1 column [E_i] (paper values). *)

val expected_lct : int array
(** Table 1 column [L_i] (paper values, including the inconsistent
    [L_11 = 35]). *)

val expected_lct_repaired : int array
(** Table 1 [L_i] with the impossible cell repaired to the value implied
    by the rest of the table ([L_11 = 30]). *)

val expected_bounds : (string * int) list
(** [LB] values of Step 3. *)

val expected_dedicated_counts : (string * int) list
(** Step 4 optimum: node-type name to count. *)
