let ect jobs =
  if jobs = [] then invalid_arg "Seq_schedule.ect: empty job set";
  let jobs = List.sort (fun (a, _) (b, _) -> compare a b) jobs in
  List.fold_left
    (fun finish (est, compute) -> max finish est + compute)
    min_int jobs

let lst jobs =
  if jobs = [] then invalid_arg "Seq_schedule.lst: empty job set";
  let jobs = List.sort (fun (a, _) (b, _) -> compare b a) jobs in
  List.fold_left
    (fun start (lct, compute) -> min start lct - compute)
    max_int jobs
