(** Distributed-system models (paper, Section 2.2).

    Two architectures:
    - {b shared}: every resource is reachable from every processor; a task
      may run on any processor of its type.  Costs are per resource/
      processor unit.
    - {b dedicated}: the system is assembled from node types, each a
      processor type plus a fixed bag of resources; a task runs only on a
      node that provides its processor type and all its resources.  Costs
      are per node.

    The model determines {e mergeability} (Definitions 1 and 2): whether a
    set of tasks could execute on one processor/node, which drives the
    EST/LCT merging analysis. *)

type node_type = {
  nt_name : string;
  nt_proc : string;  (** Processor type of the node. *)
  nt_provides : (string * int) list;
      (** Resource units on the node, sorted by name, counts [>= 1];
          does not include the processor itself. *)
  nt_cost : int;  (** [CostN(n)]. *)
}

type t = private
  | Shared of (string * int) list
      (** Unit cost [CostR(r)] per resource/processor type, sorted. *)
  | Dedicated of node_type list

val shared : costs:(string * int) list -> t
(** @raise Invalid_argument on duplicate names or negative costs. *)

val shared_uniform : resources:string list -> t
(** Shared model with unit costs of [1] — convenient when only the
    resource-count bounds matter. *)

val node_type :
  name:string ->
  proc:string ->
  ?provides:(string * int) list ->
  ?cost:int ->
  unit ->
  node_type

val dedicated : node_type list -> t
(** @raise Invalid_argument on duplicate node-type names or an empty
    catalogue. *)

val resource_cost : t -> string -> int
(** Unit cost of a resource in the shared model.
    @raise Invalid_argument on a dedicated system or unknown resource. *)

val node_types : t -> node_type list
(** Catalogue [Lambda] ([] for a shared system). *)

val node_provides : node_type -> string -> int
(** Units of resource [r] on the node; counts the processor type itself as
    one unit (the paper's [gamma_nr]). *)

val node_can_host : node_type -> Task.t -> bool
(** The node has the task's processor type and every resource it needs. *)

val eligible_nodes : t -> Task.t -> node_type list
(** [eta_i]: node types on which the task can execute (dedicated model). *)

val merge_pools : t -> App.t -> center:int -> int list -> int list list
(** [merge_pools system app ~center candidates] splits the candidates that
    are individually mergeable with [center] into {e pools} such that (a)
    every subset of a pool (together with [center]) is mergeable, and (b)
    every set mergeable with [center] is contained in some pool.  For the
    shared model there is one pool (the same-processor candidates); for
    the dedicated model, one pool per node type that can host [center].
    The EST/LCT analysis only needs to search prefix merges inside each
    pool (see {!Est_lct}). *)

val mergeable : t -> App.t -> int list -> bool
(** [mergeable system app ids] — Definitions 1/2: the tasks can all be
    placed on one processor (shared: identical processor types) or on one
    node (dedicated: additionally some node type covers the union of their
    resource needs).  Vacuously true for fewer than two tasks. *)

val validate_for : t -> App.t -> (unit, string) result
(** Checks the paper's standing assumption: every task has at least one
    processor/node of the appropriate kind in the model (for the shared
    model this is trivially true; for the dedicated model each task needs
    an eligible node type). *)

val pp : Format.formatter -> t -> unit
