type t = {
  tb_omega : int;
  tb_bounds : (string * int) list;
  tb_binding : string list;
}

let with_omega app omega =
  App.map_tasks app ~f:(fun task -> Task.with_deadline task omega)

(* Bounds of the app when everything must finish by [omega]; None when the
   windows are already infeasible. *)
let bounds_at system app omega =
  let scaled = with_omega app omega in
  let windows = Est_lct.compute system scaled in
  match Est_lct.feasible_windows scaled windows with
  | Error _ -> None
  | Ok () ->
      Some
        (Lower_bound.all ~est:windows.Est_lct.est ~lct:windows.Est_lct.lct
           scaled)

let fits ~capacity bounds =
  List.for_all
    (fun (b : Lower_bound.bound) ->
      b.Lower_bound.lb <= capacity b.Lower_bound.resource)
    bounds

let minimum_completion_time system app ~capacity =
  let used = App.resource_set app in
  if
    List.exists
      (fun r -> capacity r <= 0 && App.total_work app r > 0)
      used
  then None
  else begin
    (* The earliest conceivable target: everything below is window-
       infeasible or capacity-violating anyway. *)
    let floor_ =
      Array.fold_left
        (fun acc (task : Task.t) ->
          max acc (task.Task.release + task.Task.compute))
        1 (App.tasks app)
    in
    let passes omega =
      match bounds_at system app omega with
      | None -> false
      | Some bounds -> fits ~capacity bounds
    in
    (* Exponential climb to a passing omega, then binary search. *)
    let rec climb omega =
      if passes omega then omega
      else climb (max (omega + 1) (omega * 2))
    in
    let hi = climb floor_ in
    let rec bisect lo hi =
      (* invariant: passes hi, not passes (lo) or lo = floor_ - 1 *)
      if lo + 1 >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if passes mid then bisect lo mid else bisect mid hi
    in
    let omega =
      if passes floor_ then floor_ else bisect (floor_ - 1) hi
    in
    (* Walk down through any finite-point non-monotonicity. *)
    let rec settle omega =
      if omega > floor_ && passes (omega - 1) then settle (omega - 1)
      else omega
    in
    let omega = settle omega in
    let bounds = Option.get (bounds_at system app omega) in
    let binding =
      if omega = floor_ then []
      else
        match bounds_at system app (omega - 1) with
        | None -> []
        | Some previous ->
            List.filter_map
              (fun (b : Lower_bound.bound) ->
                if b.Lower_bound.lb > capacity b.Lower_bound.resource then
                  Some b.Lower_bound.resource
                else None)
              previous
    in
    Some
      {
        tb_omega = omega;
        tb_bounds =
          List.map
            (fun (b : Lower_bound.bound) ->
              (b.Lower_bound.resource, b.Lower_bound.lb))
            bounds;
        tb_binding = binding;
      }
  end
