(** The application model (paper, Section 2.1): a DAG of {!Task.t} whose
    edges carry message sizes [m_ji] (the communication time from a task to
    an immediate successor when the two are placed on different
    processors/nodes). *)

type t

val make : tasks:Task.t list -> edges:(int * int * int) list -> t
(** [make ~tasks ~edges] builds an application.  Task ids must be exactly
    [0 .. n-1]; edges are [(pred, succ, message_size)].
    @raise Invalid_argument on duplicate/missing ids, negative message
      sizes, or malformed edges.
    @raise Dag.Cycle when the precedence relation is cyclic. *)

val n_tasks : t -> int
val task : t -> int -> Task.t
val tasks : t -> Task.t array
val graph : t -> Dag.t

val preds : t -> int -> int list
(** [Pred_i]: immediate predecessors. *)

val succs : t -> int -> int list
(** [Succ_i]: immediate successors. *)

val message : t -> src:int -> dst:int -> int
(** [m_{src,dst}].  @raise Not_found if the edge does not exist. *)

val resource_set : t -> string list
(** The paper's [RES]: every resource and processor type any task uses,
    sorted. *)

val tasks_using : t -> string -> int list
(** [ST_r]: ids of tasks that occupy resource (or processor type) [r],
    in increasing id order. *)

val total_work : t -> string -> int
(** Total computation time of [tasks_using]. *)

val horizon : t -> int
(** The latest deadline in the application. *)

val critical_time : t -> int
(** Longest chain of computation times ignoring communication — the
    classical critical time [omega] used by the Fernandez–Bussell setting. *)

val map_tasks : t -> f:(Task.t -> Task.t) -> t
(** Rebuilds the application with each task transformed; [f] must preserve
    ids.  Used e.g. to flip preemptability for the Theorem 3/4 comparison. *)

val to_dot : t -> string
val pp : Format.formatter -> t -> unit
