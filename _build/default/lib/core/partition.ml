type t = { blocks : int list list; spans : (int * int) list }

let compute ~est ~lct tasks =
  let order =
    List.sort
      (fun a b ->
        let c = compare est.(a) est.(b) in
        if c <> 0 then c
        else
          let c = compare lct.(b) lct.(a) in
          if c <> 0 then c else compare a b)
      tasks
  in
  match order with
  | [] -> { blocks = []; spans = [] }
  | first :: rest ->
      (* Sweep: a task joins the current block iff its window opens before
         the block's latest completion (strict, per Figure 4). *)
      let flush (members, s, f) = (List.rev members, (s, f)) in
      let blocks, current =
        List.fold_left
          (fun (done_, (members, s, f)) i ->
            if est.(i) < f then
              (done_, (i :: members, min s est.(i), max f lct.(i)))
            else (flush (members, s, f) :: done_, ([ i ], est.(i), lct.(i))))
          ([], ([ first ], est.(first), lct.(first)))
          rest
      in
      let all = List.rev (flush current :: blocks) in
      { blocks = List.map fst all; spans = List.map snd all }

let is_valid ~est ~lct tasks t =
  let sorted l = List.sort compare l in
  let covers = sorted (List.concat t.blocks) = sorted tasks in
  let disjoint =
    let all = List.concat t.blocks in
    List.length (List.sort_uniq compare all) = List.length all
  in
  let rec chained = function
    | a :: (b :: _ as rest) ->
        let max_l = List.fold_left (fun acc i -> max acc lct.(i)) min_int a in
        let min_e = List.fold_left (fun acc i -> min acc est.(i)) max_int b in
        max_l <= min_e && chained rest
    | _ -> true
  in
  covers && disjoint && chained t.blocks

let pp ~names ppf t =
  let block ppf ids =
    Format.fprintf ppf "{%s}" (String.concat ", " (List.map names ids))
  in
  Format.fprintf ppf "%s"
    (String.concat " < "
       (List.map (fun b -> Format.asprintf "%a" block b) t.blocks))
