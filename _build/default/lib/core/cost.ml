type shared = { s_terms : (string * int * int) list; s_cost : int }

type dedicated = {
  d_problem : Lp.Problem.t;
  d_counts : (string * int) list;
  d_cost : int;
  d_relaxed_cost : Rat.t;
}

type outcome =
  | Shared_cost of shared
  | Dedicated_cost of dedicated
  | No_feasible_system of string

let shared_bound system bounds =
  let terms =
    List.filter_map
      (fun (b : Lower_bound.bound) ->
        if b.Lower_bound.lb = 0 then None
        else
          Some
            ( b.Lower_bound.resource,
              System.resource_cost system b.Lower_bound.resource,
              b.Lower_bound.lb ))
      bounds
  in
  let s_cost = List.fold_left (fun acc (_, c, lb) -> acc + (c * lb)) 0 terms in
  { s_terms = terms; s_cost }

let dedicated_problem system app bounds =
  let nts = System.node_types system in
  if nts = [] then invalid_arg "Cost.dedicated_problem: not a dedicated system";
  let nts = Array.of_list nts in
  let n = Array.length nts in
  let var_names = Array.map (fun nt -> nt.System.nt_name) nts in
  let objective = Array.map (fun nt -> Rat.of_int nt.System.nt_cost) nts in
  (* Resource coverage: sum_n gamma_nr * x_n >= LB_r. *)
  let resource_rows =
    List.filter_map
      (fun (b : Lower_bound.bound) ->
        if b.Lower_bound.lb = 0 then None
        else
          let row =
            Array.map
              (fun nt ->
                Rat.of_int (System.node_provides nt b.Lower_bound.resource))
              nts
          in
          Some
            (Lp.Problem.constraint_
               ~name:(Printf.sprintf "units of %s" b.Lower_bound.resource)
               row Lp.Problem.Ge
               (Rat.of_int b.Lower_bound.lb)))
      bounds
  in
  (* Task coverage: every distinct eligibility set needs one node. *)
  let eligibility_rows =
    Array.to_list (App.tasks app)
    |> List.map (fun task ->
           List.map
             (fun (nt : System.node_type) -> nt.System.nt_name)
             (System.eligible_nodes system task))
    |> List.sort_uniq compare
    |> List.map (fun eligible ->
           let row =
             Array.map
               (fun nt ->
                 if List.mem nt.System.nt_name eligible then Rat.one
                 else Rat.zero)
               nts
           in
           Lp.Problem.constraint_
             ~name:
               (Printf.sprintf "host among {%s}" (String.concat "," eligible))
             row Lp.Problem.Ge Rat.one)
  in
  ignore n;
  Lp.Problem.make ~var_names ~sense:Lp.Problem.Minimize ~objective
    (resource_rows @ eligibility_rows)

let dedicated_bound system app bounds =
  let problem = dedicated_problem system app bounds in
  match Lp.Ilp.solve problem with
  | Lp.Ilp.Infeasible -> Error "covering integer program is infeasible"
  | Lp.Ilp.Unbounded -> Error "covering integer program is unbounded"
  | Lp.Ilp.Optimal { value; point } ->
      let relaxed =
        match Lp.Ilp.relaxation problem with
        | Lp.Simplex.Optimal { value; _ } -> value
        | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded ->
            (* The relaxation of a feasible bounded IP is feasible/bounded. *)
            assert false
      in
      let names = problem.Lp.Problem.var_names in
      Ok
        {
          d_problem = problem;
          d_counts =
            Array.to_list (Array.mapi (fun i x -> (names.(i), x)) point);
          d_cost = Rat.to_int_exn value;
          d_relaxed_cost = relaxed;
        }

let compute system app bounds =
  match system with
  | System.Shared _ -> Shared_cost (shared_bound system bounds)
  | System.Dedicated _ -> (
      match dedicated_bound system app bounds with
      | Ok d -> Dedicated_cost d
      | Error e -> No_feasible_system e)

let pp_outcome ppf = function
  | No_feasible_system e -> Format.fprintf ppf "no feasible system: %s" e
  | Shared_cost { s_terms; s_cost } ->
      Format.fprintf ppf "shared cost >= %d  =" s_cost;
      List.iteri
        (fun k (r, c, lb) ->
          Format.fprintf ppf "%s %d*CostR(%s={%d})"
            (if k = 0 then "" else " +")
            lb r c)
        s_terms
  | Dedicated_cost { d_counts; d_cost; d_relaxed_cost; _ } ->
      Format.fprintf ppf "dedicated cost >= %d (LP relaxation %a);" d_cost
        Rat.pp d_relaxed_cost;
      List.iter
        (fun (n, x) -> if x > 0 then Format.fprintf ppf " %s x%d" n x)
        d_counts
