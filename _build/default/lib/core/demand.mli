(** Demand profiles: the Section 6 machinery turned into a designer-facing
    view of {e where} a resource is loaded.

    For a resource [r] and a window length [w], the profile gives, at each
    candidate start time [t], the density [ceil(Theta(r, t, t+w) / w)] —
    the number of units of [r] that must exist just to survive that
    window.  [LB_r] is the maximum of these over all window placements
    and lengths; the profile shows which epochs drive it. *)

type point = {
  d_t1 : int;
  d_t2 : int;
  d_theta : int;  (** Mandatory demand on [\[d_t1, d_t2)]. *)
  d_units : int;  (** [ceil(d_theta / (d_t2 - d_t1))]. *)
}

type t = {
  d_resource : string;
  d_window : int;
  d_points : point list;  (** In increasing [d_t1] order. *)
  d_peak : point option;  (** A point attaining the maximum density. *)
}

val sliding :
  est:int array -> lct:int array -> App.t -> resource:string -> window:int -> t
(** Profile of fixed-width windows anchored at every candidate point
    (task ESTs and LCTs).
    @raise Invalid_argument when [window <= 0]. *)

val peak_over_all_windows :
  est:int array -> lct:int array -> App.t -> resource:string -> point option
(** The globally densest interval over all candidate intervals — the
    witness behind [LB_r] (equals {!Lower_bound.for_resource}'s
    witness value). *)

val render : t -> string
(** A small ASCII bar chart, one line per profile point:
    {v 12..20  ####  2 v} *)
