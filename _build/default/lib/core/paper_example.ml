(* Task ids are 0-based; the paper numbers tasks 1..15.  Parameters not
   printed in the paper were chosen so that the analysis reproduces
   Table 1 and the Section 8 results; see the .mli and EXPERIMENTS.md. *)

let t ~id ?release ~compute ?(deadline = 36) ~proc ?resources () =
  Task.make ~id ?release ~compute ~deadline ~proc ?resources ()

let app =
  let p1 = "P1" and p2 = "P2" and r1 = [ "r1" ] in
  App.make
    ~tasks:
      [
        t ~id:0 ~compute:3 ~proc:p1 ~resources:r1 ();
        t ~id:1 ~compute:6 ~proc:p1 ~resources:r1 ();
        t ~id:2 ~release:3 ~compute:3 ~proc:p1 ();
        t ~id:3 ~compute:5 ~proc:p1 ();
        t ~id:4 ~compute:9 ~proc:p1 ~resources:r1 ();
        t ~id:5 ~compute:4 ~proc:p2 ();
        t ~id:6 ~release:10 ~compute:6 ~proc:p2 ();
        t ~id:7 ~compute:5 ~proc:p2 ();
        t ~id:8 ~compute:3 ~proc:p1 ();
        t ~id:9 ~compute:8 ~proc:p1 ~resources:r1 ();
        t ~id:10 ~release:20 ~compute:2 ~proc:p1 ();
        t ~id:11 ~compute:0 ~deadline:30 ~proc:p1 ();
        t ~id:12 ~compute:6 ~deadline:30 ~proc:p1 ~resources:r1 ();
        t ~id:13 ~compute:5 ~deadline:30 ~proc:p1 ~resources:r1 ();
        t ~id:14 ~compute:6 ~proc:p1 ~resources:r1 ();
      ]
    ~edges:
      [
        (0, 3, 2) (* T1 -> T4 *);
        (1, 4, 4) (* T2 -> T5 *);
        (2, 5, 5) (* T3 -> T6 *);
        (3, 5, 3) (* T4 -> T6 *);
        (4, 7, 3) (* T5 -> T8 *);
        (4, 8, 9) (* T5 -> T9 *);
        (5, 8, 1) (* T6 -> T9 *);
        (5, 9, 7) (* T6 -> T10 *);
        (6, 9, 6) (* T7 -> T10 *);
        (7, 11, 7) (* T8 -> T12 *);
        (8, 12, 5) (* T9 -> T13 *);
        (8, 13, 7) (* T9 -> T14 *);
        (8, 14, 4) (* T9 -> T15 *);
        (9, 14, 3) (* T10 -> T15 *);
        (10, 14, 2) (* T11 -> T15 *);
      ]

let shared = System.shared ~costs:[ ("P1", 5); ("P2", 4); ("r1", 3) ]

let dedicated =
  System.dedicated
    [
      System.node_type ~name:"N1" ~proc:"P1" ~provides:[ ("r1", 1) ] ~cost:10 ();
      System.node_type ~name:"N2" ~proc:"P1" ~cost:6 ();
      System.node_type ~name:"N3" ~proc:"P2" ~cost:7 ();
    ]

let expected_est = [| 0; 0; 3; 3; 6; 11; 10; 18; 16; 22; 20; 30; 19; 19; 30 |]
let expected_lct = [| 3; 6; 6; 8; 15; 15; 16; 23; 19; 30; 35; 30; 30; 30; 36 |]

let expected_lct_repaired =
  [| 3; 6; 6; 8; 15; 15; 16; 23; 19; 30; 30; 30; 30; 30; 36 |]

let expected_bounds = [ ("P1", 3); ("P2", 2); ("r1", 2) ]
let expected_dedicated_counts = [ ("N1", 2); ("N2", 1); ("N3", 2) ]
