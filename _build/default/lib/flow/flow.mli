(** Maximum-flow substrate (Dinic's algorithm, integer capacities).

    Built for {!Sched.Horn}'s optimal preemptive-feasibility test, but
    generic: vertices are integers, edges carry integer capacities,
    parallel edges are allowed. *)

type t

val create : n:int -> t
(** A flow network on vertices [0 .. n-1] with no edges. *)

val add_edge : t -> src:int -> dst:int -> capacity:int -> unit
(** Adds a directed edge.  @raise Invalid_argument on out-of-range
    endpoints, a self loop, or negative capacity. *)

val max_flow : t -> source:int -> sink:int -> int
(** Computes the maximum flow; the network keeps the final flow state
    (subsequent calls continue from it, so call once per problem).
    @raise Invalid_argument when [source = sink]. *)

val flow_on_edges : t -> src:int -> dst:int -> int
(** Total flow currently routed on all [src -> dst] edges (after
    {!max_flow}). *)

val min_cut : t -> source:int -> int list
(** Vertices on the source side of a minimum cut (valid after
    {!max_flow}). *)
