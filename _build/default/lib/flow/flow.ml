(* Adjacency with mirrored residual edges: edge k and its reverse k lxor 1
   live in one arena. *)
type t = {
  n : int;
  mutable heads : int list array;  (* vertex -> edge indices *)
  mutable dst : int array;
  mutable cap : int array;  (* residual capacity *)
  mutable cap0 : int array;  (* original capacity *)
  mutable m : int;  (* edges stored (incl. reverses) *)
}

let create ~n =
  if n <= 0 then invalid_arg "Flow.create: empty network";
  {
    n;
    heads = Array.make n [];
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    cap0 = Array.make 16 0;
    m = 0;
  }

let grow t =
  let size = Array.length t.dst in
  if t.m + 2 > size then begin
    let bigger = max 16 (2 * size) in
    let extend a = Array.append a (Array.make (bigger - size) 0) in
    t.dst <- extend t.dst;
    t.cap <- extend t.cap;
    t.cap0 <- extend t.cap0
  end

let add_edge t ~src ~dst ~capacity =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Flow.add_edge: endpoint out of range";
  if src = dst then invalid_arg "Flow.add_edge: self loop";
  if capacity < 0 then invalid_arg "Flow.add_edge: negative capacity";
  grow t;
  let e = t.m in
  t.dst.(e) <- dst;
  t.cap.(e) <- capacity;
  t.cap0.(e) <- capacity;
  t.dst.(e + 1) <- src;
  t.cap.(e + 1) <- 0;
  t.cap0.(e + 1) <- 0;
  t.heads.(src) <- e :: t.heads.(src);
  t.heads.(dst) <- (e + 1) :: t.heads.(dst);
  t.m <- t.m + 2

(* BFS level graph from [source]; [-1] marks unreachable. *)
let levels t ~source =
  let level = Array.make t.n (-1) in
  let queue = Queue.create () in
  level.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun e ->
        let w = t.dst.(e) in
        if t.cap.(e) > 0 && level.(w) < 0 then begin
          level.(w) <- level.(v) + 1;
          Queue.add w queue
        end)
      t.heads.(v)
  done;
  level

let max_flow t ~source ~sink =
  if source = sink then invalid_arg "Flow.max_flow: source = sink";
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let level = levels t ~source in
    if level.(sink) < 0 then continue_ := false
    else begin
      (* iterator state per vertex for the DFS phase *)
      let remaining = Array.map (fun l -> ref l) t.heads in
      let rec push v limit =
        if v = sink then limit
        else begin
          let sent = ref 0 in
          let stop = ref false in
          while (not !stop) && !sent < limit do
            match !(remaining.(v)) with
            | [] -> stop := true
            | e :: rest ->
                let w = t.dst.(e) in
                if t.cap.(e) > 0 && level.(w) = level.(v) + 1 then begin
                  let got = push w (min (limit - !sent) t.cap.(e)) in
                  if got = 0 then remaining.(v) := rest
                  else begin
                    t.cap.(e) <- t.cap.(e) - got;
                    t.cap.(e lxor 1) <- t.cap.(e lxor 1) + got;
                    sent := !sent + got;
                    if t.cap.(e) = 0 then remaining.(v) := rest
                  end
                end
                else remaining.(v) := rest
          done;
          !sent
        end
      in
      let pushed = push source max_int in
      if pushed = 0 then continue_ := false else total := !total + pushed
    end
  done;
  !total

let flow_on_edges t ~src ~dst =
  List.fold_left
    (fun acc e ->
      (* forward edges from src: flow = cap0 - cap *)
      if t.dst.(e) = dst && t.cap0.(e) > 0 then acc + t.cap0.(e) - t.cap.(e)
      else acc)
    0 t.heads.(src)

let min_cut t ~source =
  let level = levels t ~source in
  List.filter (fun v -> level.(v) >= 0) (List.init t.n Fun.id)
