type outcome =
  | Optimal of { value : Rat.t; point : Rat.t array }
  | Infeasible
  | Unbounded

(* Dense tableau:
     [rows.(i)] has [cols] entries plus the right-hand side in [rhs.(i)].
     [basis.(i)] is the column basic in row [i].
   Column layout: structural variables first, then one slack/surplus per
   inequality, then artificials for [Ge]/[Eq] rows.  Bland's rule (smallest
   eligible index, both entering and leaving) prevents cycling. *)

type tableau = {
  rows : Rat.t array array;
  rhs : Rat.t array;
  basis : int array;
  cols : int;
  n_struct : int;
  first_artificial : int;
}

let pivot t ~row ~col =
  let piv = t.rows.(row).(col) in
  let r = t.rows.(row) in
  for j = 0 to t.cols - 1 do
    r.(j) <- Rat.div r.(j) piv
  done;
  t.rhs.(row) <- Rat.div t.rhs.(row) piv;
  for i = 0 to Array.length t.rows - 1 do
    if i <> row then begin
      let f = t.rows.(i).(col) in
      if not (Rat.equal f Rat.zero) then begin
        let ri = t.rows.(i) in
        for j = 0 to t.cols - 1 do
          ri.(j) <- Rat.sub ri.(j) (Rat.mul f r.(j))
        done;
        t.rhs.(i) <- Rat.sub t.rhs.(i) (Rat.mul f t.rhs.(row))
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced-cost row for objective [c] (minimisation):
   [r_j = c_j - sum_i c_basis(i) * rows(i)(j)], and the current objective
   value is [sum_i c_basis(i) * rhs(i)]. *)
let reduced_costs t c =
  let m = Array.length t.rows in
  let red = Array.copy c in
  let value = ref Rat.zero in
  for i = 0 to m - 1 do
    let cb = c.(t.basis.(i)) in
    if not (Rat.equal cb Rat.zero) then begin
      for j = 0 to t.cols - 1 do
        red.(j) <- Rat.sub red.(j) (Rat.mul cb t.rows.(i).(j))
      done;
      value := Rat.add !value (Rat.mul cb t.rhs.(i))
    end
  done;
  (red, !value)

exception Unbounded_lp

(* One simplex phase minimising objective [c]; columns at index
   [>= lock_from] are never allowed to (re)enter the basis. *)
let optimise t c ~lock_from =
  let m = Array.length t.rows in
  let red, value = reduced_costs t c in
  let value = ref value in
  let continue_ = ref true in
  while !continue_ do
    (* Entering column: smallest index with negative reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to Stdlib.min t.cols lock_from - 1 do
         if Rat.(red.(j) < zero) then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then continue_ := false
    else begin
      let col = !entering in
      (* Leaving row: minimum ratio, ties broken by smallest basis index. *)
      let best = ref (-1) in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if Rat.(a > zero) then begin
          let ratio = Rat.div t.rhs.(i) a in
          match !best with
          | -1 -> best := i
          | b ->
              let rb = Rat.div t.rhs.(b) t.rows.(b).(col) in
              let cmp = Rat.compare ratio rb in
              if cmp < 0 || (cmp = 0 && t.basis.(i) < t.basis.(b)) then
                best := i
        end
      done;
      if !best < 0 then raise Unbounded_lp;
      let row = !best in
      let delta = Rat.mul red.(col) (Rat.div t.rhs.(row) t.rows.(row).(col)) in
      value := Rat.add !value delta;
      let piv_row = t.rows.(row) in
      let f = red.(col) in
      pivot t ~row ~col;
      (* [pivot] rescaled the row, so update reduced costs from it. *)
      for j = 0 to t.cols - 1 do
        red.(j) <- Rat.sub red.(j) (Rat.mul f piv_row.(j))
      done
    end
  done;
  !value

let solve (p : Problem.t) =
  let n = Problem.num_vars p in
  (* Normalise to minimisation with non-negative right-hand sides. *)
  let minimise = p.sense = Problem.Minimize in
  let obj =
    if minimise then Array.copy p.objective else Array.map Rat.neg p.objective
  in
  let rows =
    List.map
      (fun (c : Problem.linear_constraint) ->
        if Rat.(c.rhs < zero) then
          ( Array.map Rat.neg c.coeffs,
            (match c.relation with
            | Problem.Le -> Problem.Ge
            | Problem.Ge -> Problem.Le
            | Problem.Eq -> Problem.Eq),
            Rat.neg c.rhs )
        else (Array.copy c.coeffs, c.relation, c.rhs))
      p.constraints
  in
  let m = List.length rows in
  let n_slack =
    List.fold_left
      (fun acc (_, rel, _) -> if rel = Problem.Eq then acc else acc + 1)
      0 rows
  in
  let n_artificial =
    List.fold_left
      (fun acc (_, rel, _) -> if rel = Problem.Le then acc else acc + 1)
      0 rows
  in
  let cols = n + n_slack + n_artificial in
  let t =
    {
      rows = Array.init m (fun _ -> Array.make cols Rat.zero);
      rhs = Array.make m Rat.zero;
      basis = Array.make m 0;
      cols;
      n_struct = n;
      first_artificial = n + n_slack;
    }
  in
  let slack = ref n and artificial = ref (n + n_slack) in
  List.iteri
    (fun i (coeffs, rel, rhs) ->
      Array.blit coeffs 0 t.rows.(i) 0 n;
      t.rhs.(i) <- rhs;
      (match rel with
      | Problem.Le ->
          t.rows.(i).(!slack) <- Rat.one;
          t.basis.(i) <- !slack;
          incr slack
      | Problem.Ge ->
          t.rows.(i).(!slack) <- Rat.minus_one;
          incr slack;
          t.rows.(i).(!artificial) <- Rat.one;
          t.basis.(i) <- !artificial;
          incr artificial
      | Problem.Eq ->
          t.rows.(i).(!artificial) <- Rat.one;
          t.basis.(i) <- !artificial;
          incr artificial))
    rows;
  ignore t.n_struct;
  try
    (* Phase 1: minimise the sum of artificial variables. *)
    if n_artificial > 0 then begin
      let c1 = Array.make cols Rat.zero in
      for j = t.first_artificial to cols - 1 do
        c1.(j) <- Rat.one
      done;
      let v1 = optimise t c1 ~lock_from:cols in
      if Rat.(v1 > zero) then raise Exit;
      (* Drive any artificial still basic (at value 0) out of the basis. *)
      for i = 0 to m - 1 do
        if t.basis.(i) >= t.first_artificial then begin
          let j = ref 0 and found = ref false in
          while (not !found) && !j < t.first_artificial do
            if not (Rat.equal t.rows.(i).(!j) Rat.zero) then found := true
            else incr j
          done;
          (* A row with no eligible pivot is redundant; the artificial stays
             basic at zero, which is harmless once its column is locked. *)
          if !found then pivot t ~row:i ~col:!j
        end
      done
    end;
    (* Phase 2: the real objective, artificial columns locked out. *)
    let c2 = Array.make cols Rat.zero in
    Array.blit obj 0 c2 0 n;
    let value = optimise t c2 ~lock_from:t.first_artificial in
    let point = Array.make n Rat.zero in
    for i = 0 to m - 1 do
      if t.basis.(i) < n then point.(t.basis.(i)) <- t.rhs.(i)
    done;
    let value = if minimise then value else Rat.neg value in
    Optimal { value; point }
  with
  | Exit -> Infeasible
  | Unbounded_lp -> Unbounded

let pp_outcome ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal { value; point } ->
      Format.fprintf ppf "optimal %a at (%s)" Rat.pp value
        (String.concat ", " (Array.to_list (Array.map Rat.to_string point)))
