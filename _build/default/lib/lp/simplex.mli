(** Exact two-phase simplex over rationals.

    Solves {!Problem.t} instances (non-negative variables, [Le]/[Ge]/[Eq]
    constraints) using a dense tableau and Bland's anti-cycling pivot rule,
    so termination is guaranteed and — thanks to {!Rat} arithmetic — results
    are exact. *)

type outcome =
  | Optimal of { value : Rat.t; point : Rat.t array }
      (** Optimal objective value and an optimal vertex. *)
  | Infeasible
  | Unbounded

val solve : Problem.t -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
