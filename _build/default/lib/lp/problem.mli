(** Linear-program descriptions.

    A problem is an objective over [num_vars] non-negative decision
    variables together with a list of linear constraints.  Variables are
    identified by index; optional names are carried for reporting.

    This representation is deliberately dense ([Rat.t array] rows): the
    programs produced by the dedicated-model cost analysis have at most a
    few dozen variables, so clarity wins over sparsity. *)

type relation = Le | Ge | Eq

type linear_constraint = {
  coeffs : Rat.t array;  (** One coefficient per variable. *)
  relation : relation;
  rhs : Rat.t;
  cname : string;  (** For diagnostics; may be empty. *)
}

type sense = Minimize | Maximize

type t = {
  var_names : string array;
  sense : sense;
  objective : Rat.t array;
  constraints : linear_constraint list;
}

val num_vars : t -> int

val make :
  ?var_names:string array ->
  sense:sense ->
  objective:Rat.t array ->
  linear_constraint list ->
  t
(** Builds a problem, checking that every row has exactly as many
    coefficients as the objective.
    @raise Invalid_argument on a ragged row or empty objective. *)

val constraint_ :
  ?name:string -> Rat.t array -> relation -> Rat.t -> linear_constraint

val of_ints :
  ?var_names:string array ->
  sense:sense ->
  objective:int array ->
  (int array * relation * int) list ->
  t
(** Convenience wrapper building everything from integers. *)

val eval_objective : t -> Rat.t array -> Rat.t

val satisfies : t -> Rat.t array -> bool
(** [satisfies p x] checks non-negativity and every constraint of [p]
    against the point [x]. *)

val pp : Format.formatter -> t -> unit

val to_lp_format : t -> string
(** CPLEX-LP-format rendering (readable by glpsol, lp_solve, CPLEX,
    Gurobi, ...) with a [General] section declaring every variable
    integer — so the dedicated-model programs can be cross-checked
    against external solvers. *)
