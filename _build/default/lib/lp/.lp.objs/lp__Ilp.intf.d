lib/lp/ilp.mli: Format Problem Rat Simplex
