lib/lp/problem.mli: Format Rat
