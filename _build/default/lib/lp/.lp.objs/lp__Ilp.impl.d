lib/lp/ilp.ml: Array Format Option Problem Rat Simplex String
