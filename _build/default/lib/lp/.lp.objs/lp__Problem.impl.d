lib/lp/problem.ml: Array Buffer Format List Printf Rat String
