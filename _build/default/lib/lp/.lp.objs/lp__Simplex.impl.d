lib/lp/simplex.ml: Array Format List Problem Rat Stdlib String
