lib/lp/simplex.mli: Format Problem Rat
