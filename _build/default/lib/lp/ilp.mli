(** Exact pure-integer linear programming by branch and bound.

    All decision variables are required to take non-negative integer
    values.  The relaxation at every node is solved with {!Simplex}, so
    bounds are exact and the returned optimum is provably optimal.

    This is the solver behind the paper's Section 7 dedicated-model cost
    bound; it also exposes the LP relaxation the paper mentions as the
    "weaker bound" alternative. *)

type outcome =
  | Optimal of { value : Rat.t; point : int array }
  | Infeasible
  | Unbounded  (** The relaxation is unbounded. *)

exception Node_limit
(** Raised when the search exceeds [max_nodes] relaxations. *)

val solve : ?max_nodes:int -> Problem.t -> outcome
(** [solve p] optimises [p] over non-negative integer points.
    [max_nodes] (default [200_000]) bounds the number of branch-and-bound
    nodes explored.  @raise Node_limit if exceeded. *)

val relaxation : Problem.t -> Simplex.outcome
(** The plain LP relaxation of [p] (paper: the weaker, non-integral cost
    bound). *)

val pp_outcome : Format.formatter -> outcome -> unit
