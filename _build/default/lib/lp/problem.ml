type relation = Le | Ge | Eq

type linear_constraint = {
  coeffs : Rat.t array;
  relation : relation;
  rhs : Rat.t;
  cname : string;
}

type sense = Minimize | Maximize

type t = {
  var_names : string array;
  sense : sense;
  objective : Rat.t array;
  constraints : linear_constraint list;
}

let num_vars t = Array.length t.objective

let make ?var_names ~sense ~objective constraints =
  let n = Array.length objective in
  if n = 0 then invalid_arg "Lp.Problem.make: empty objective";
  List.iter
    (fun c ->
      if Array.length c.coeffs <> n then
        invalid_arg "Lp.Problem.make: ragged constraint row")
    constraints;
  let var_names =
    match var_names with
    | Some names when Array.length names = n -> names
    | Some _ -> invalid_arg "Lp.Problem.make: wrong number of names"
    | None -> Array.init n (fun i -> Printf.sprintf "x%d" i)
  in
  { var_names; sense; objective; constraints }

let constraint_ ?(name = "") coeffs relation rhs =
  { coeffs; relation; rhs; cname = name }

let of_ints ?var_names ~sense ~objective rows =
  let objective = Array.map Rat.of_int objective in
  let constraints =
    List.map
      (fun (row, relation, rhs) ->
        constraint_ (Array.map Rat.of_int row) relation (Rat.of_int rhs))
      rows
  in
  make ?var_names ~sense ~objective constraints

let dot a x =
  let acc = ref Rat.zero in
  Array.iteri (fun i c -> acc := Rat.add !acc (Rat.mul c x.(i))) a;
  !acc

let eval_objective t x = dot t.objective x

let satisfies t x =
  Array.length x = num_vars t
  && Array.for_all (fun v -> Rat.(v >= zero)) x
  && List.for_all
       (fun c ->
         let lhs = dot c.coeffs x in
         match c.relation with
         | Le -> Rat.(lhs <= c.rhs)
         | Ge -> Rat.(lhs >= c.rhs)
         | Eq -> Rat.(lhs = c.rhs))
       t.constraints

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>%s"
    (match t.sense with Minimize -> "min" | Maximize -> "max");
  Array.iteri
    (fun i c ->
      if not (Rat.equal c Rat.zero) then
        fprintf ppf " %s%a*%s"
          (if Rat.sign c >= 0 then "+" else "")
          Rat.pp c t.var_names.(i))
    t.objective;
  List.iter
    (fun c ->
      fprintf ppf "@,  ";
      Array.iteri
        (fun i v ->
          if not (Rat.equal v Rat.zero) then
            fprintf ppf "%s%a*%s "
              (if Rat.sign v >= 0 then "+" else "")
              Rat.pp v t.var_names.(i))
        c.coeffs;
      fprintf ppf "%s %a"
        (match c.relation with Le -> "<=" | Ge -> ">=" | Eq -> "=")
        Rat.pp c.rhs;
      if c.cname <> "" then fprintf ppf "  (%s)" c.cname)
    t.constraints;
  fprintf ppf "@]"

let to_lp_format t =
  let buf = Buffer.create 512 in
  let term c name =
    if Rat.is_integer c then Printf.sprintf "%d %s" (Rat.num c) name
    else Printf.sprintf "%d/%d %s" (Rat.num c) (Rat.den c) name
  in
  let row coeffs =
    let parts = ref [] in
    Array.iteri
      (fun i c ->
        if not (Rat.equal c Rat.zero) then
          parts :=
            (if Rat.sign c >= 0 && !parts <> [] then
               "+ " ^ term c t.var_names.(i)
             else term c t.var_names.(i))
            :: !parts)
      coeffs;
    if !parts = [] then "0 " ^ t.var_names.(0) else String.concat " " (List.rev !parts)
  in
  Buffer.add_string buf
    (match t.sense with Minimize -> "Minimize\n" | Maximize -> "Maximize\n");
  Buffer.add_string buf (" obj: " ^ row t.objective ^ "\n");
  Buffer.add_string buf "Subject To\n";
  List.iteri
    (fun k (c : linear_constraint) ->
      Buffer.add_string buf
        (Printf.sprintf " c%d: %s %s %s\n" k (row c.coeffs)
           (match c.relation with Le -> "<=" | Ge -> ">=" | Eq -> "=")
           (Rat.to_string c.rhs)))
    t.constraints;
  Buffer.add_string buf "General\n";
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n ^ "\n")) t.var_names;
  Buffer.add_string buf "End\n";
  Buffer.contents buf
