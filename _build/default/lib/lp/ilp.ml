type outcome =
  | Optimal of { value : Rat.t; point : int array }
  | Infeasible
  | Unbounded

exception Node_limit

let relaxation = Simplex.solve

(* Branch on the variable whose fractional part is closest to 1/2. *)
let pick_fractional point =
  let best = ref None in
  Array.iteri
    (fun i v ->
      if not (Rat.is_integer v) then begin
        let frac = Rat.sub v (Rat.of_int (Rat.floor v)) in
        let dist = Rat.abs (Rat.sub frac (Rat.make 1 2)) in
        match !best with
        | Some (_, d) when Rat.(d <= dist) -> ()
        | _ -> best := Some (i, dist)
      end)
    point;
  Option.map fst !best

let unit_row n i coeff =
  let row = Array.make n Rat.zero in
  row.(i) <- coeff;
  row

let solve ?(max_nodes = 200_000) (p : Problem.t) =
  let n = Problem.num_vars p in
  let minimise = p.sense = Problem.Minimize in
  let incumbent = ref None in
  let nodes = ref 0 in
  let better value =
    match !incumbent with
    | None -> true
    | Some (best, _) ->
        if minimise then Rat.(value < best) else Rat.(value > best)
  in
  (* [extra] is the list of branching bound constraints added on this path. *)
  let rec explore extra =
    incr nodes;
    if !nodes > max_nodes then raise Node_limit;
    let sub = { p with Problem.constraints = extra @ p.constraints } in
    match Simplex.solve sub with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        (* Only possible at the root for a pure-integer minimisation over a
           rational polyhedron; surfaced to the caller via an exception. *)
        raise Exit
    | Simplex.Optimal { value; point } ->
        if better value then begin
          match pick_fractional point with
          | None ->
              let ipoint = Array.map Rat.to_int_exn point in
              if better value then incumbent := Some (value, ipoint)
          | Some i ->
              let lo = Rat.floor point.(i) in
              let le =
                Problem.constraint_ ~name:"branch-le"
                  (unit_row n i Rat.one) Problem.Le (Rat.of_int lo)
              in
              let ge =
                Problem.constraint_ ~name:"branch-ge"
                  (unit_row n i Rat.one) Problem.Ge
                  (Rat.of_int (lo + 1))
              in
              (* For covering-style minimisations the up branch tends to
                 contain the integer optimum, so explore it first to obtain
                 an incumbent early. *)
              if minimise then begin
                explore (ge :: extra);
                explore (le :: extra)
              end
              else begin
                explore (le :: extra);
                explore (ge :: extra)
              end
        end
  in
  match explore [] with
  | () -> (
      match !incumbent with
      | None -> Infeasible
      | Some (value, point) -> Optimal { value; point })
  | exception Exit -> Unbounded

let pp_outcome ppf = function
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
  | Optimal { value; point } ->
      Format.fprintf ppf "optimal %a at (%s)" Rat.pp value
        (String.concat ", "
           (Array.to_list (Array.map string_of_int point)))
