type stats = {
  found : (Sched.Platform.t * int) option;
  sched_calls : int;
  pruned : int;
  expanded : int;
}

module Frontier = Map.Make (Int)

let search ?(use_lower_bounds = true) ?priority ?(max_expanded = 20_000)
    ~system app =
  let node_types =
    match Rtlb.System.node_types system with
    | [] -> invalid_arg "Synth.search: not a dedicated system"
    | nts -> Array.of_list nts
  in
  let k = Array.length node_types in
  let cap = max 1 (Rtlb.App.n_tasks app) in
  let cost counts =
    let acc = ref 0 in
    Array.iteri
      (fun d c -> acc := !acc + (c * node_types.(d).Rtlb.System.nt_cost))
      counts;
    !acc
  in
  (* The admissible filter from the paper's analysis. *)
  let windows = Rtlb.Est_lct.compute system app in
  let bounds =
    Rtlb.Lower_bound.all ~est:windows.Rtlb.Est_lct.est
      ~lct:windows.Rtlb.Est_lct.lct app
  in
  let eligibility =
    Array.to_list (Rtlb.App.tasks app)
    |> List.map (fun task ->
           Array.map
             (fun nt -> Rtlb.System.node_can_host nt task)
             node_types)
    |> List.sort_uniq compare
  in
  let admissible counts =
    List.for_all
      (fun (b : Rtlb.Lower_bound.bound) ->
        let supply = ref 0 in
        Array.iteri
          (fun d c ->
            supply :=
              !supply
              + (c
                * Rtlb.System.node_provides node_types.(d)
                    b.Rtlb.Lower_bound.resource))
          counts;
        !supply >= b.Rtlb.Lower_bound.lb)
      bounds
    && List.for_all
         (fun mask ->
           let covered = ref false in
           Array.iteri (fun d c -> if c > 0 && mask.(d) then covered := true) counts;
           !covered)
         eligibility
  in
  let platform_of counts =
    Sched.Platform.dedicated
      (List.filter_map
         (fun d ->
           if counts.(d) > 0 then Some (node_types.(d), counts.(d)) else None)
         (List.init k Fun.id))
  in
  let feasible counts =
    Array.exists (fun c -> c > 0) counts
    && Sched.List_scheduler.feasible ?priority app (platform_of counts)
  in
  let module Visited = Set.Make (struct
    type t = int array

    let compare = compare
  end) in
  let visited = ref Visited.empty in
  let frontier = ref Frontier.empty in
  let push counts =
    if not (Visited.mem counts !visited) then begin
      visited := Visited.add counts !visited;
      let c = cost counts in
      frontier :=
        Frontier.update c
          (function None -> Some [ counts ] | Some l -> Some (counts :: l))
          !frontier
    end
  in
  push (Array.make k 0);
  let sched_calls = ref 0 and pruned = ref 0 and expanded = ref 0 in
  let result = ref None in
  (try
     while !result = None && !expanded < max_expanded do
       match Frontier.min_binding_opt !frontier with
       | None -> raise Exit
       | Some (c, configs) -> (
           match configs with
           | [] ->
               frontier := Frontier.remove c !frontier
           | counts :: rest ->
               frontier := Frontier.add c rest !frontier;
               incr expanded;
               let ok =
                 if use_lower_bounds && not (admissible counts) then begin
                   incr pruned;
                   false
                 end
                 else begin
                   incr sched_calls;
                   feasible counts
                 end
               in
               if ok then result := Some (platform_of counts, cost counts)
               else
                 Array.iteri
                   (fun d v ->
                     if v < cap then begin
                       let next = Array.copy counts in
                       next.(d) <- v + 1;
                       push next
                     end)
                   counts)
     done
   with Exit -> ());
  {
    found = !result;
    sched_calls = !sched_calls;
    pruned = !pruned;
    expanded = !expanded;
  }
