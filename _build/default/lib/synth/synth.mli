(** Architectural synthesis of dedicated systems — the paper's motivating
    application (Section 1: the bounds "reduce the search times for
    computer-aided synthesis of distributed real-time systems").

    [search] looks for a minimum-cost multiset of nodes (drawn from a
    dedicated catalogue) on which the list scheduler can meet every
    constraint, by uniform-cost search over node-count vectors.  The
    paper's lower bounds are {e admissible}: a configuration violating
    [sum_n gamma_nr x_n >= LB_r] (or task coverage) cannot be feasible, so
    filtering on them skips scheduler invocations without changing the
    result.  The benchmark compares the invocation counts with and
    without the filter. *)

type stats = {
  found : (Sched.Platform.t * int) option;
      (** Cheapest feasible configuration and its cost. *)
  sched_calls : int;  (** List-scheduler invocations performed. *)
  pruned : int;  (** Configurations skipped by the lower-bound filter. *)
  expanded : int;  (** Configurations popped from the frontier. *)
}

val search :
  ?use_lower_bounds:bool ->
  ?priority:(int -> int) ->
  ?max_expanded:int ->
  system:Rtlb.System.t ->
  Rtlb.App.t ->
  stats
(** [use_lower_bounds] defaults to [true]; [max_expanded] (default
    [20_000]) bounds the configurations examined.
    @raise Invalid_argument when [system] is not dedicated. *)
