(** Busy-interval timeline of one exclusive unit (a processor instance, a
    node instance, or one unit of a shared resource).

    Intervals are half-open [\[start, finish)]; zero-length intervals are
    accepted and occupy nothing. *)

type t

val empty : t

val busy_intervals : t -> (int * int) list
(** Sorted, pairwise-disjoint. *)

val is_free : t -> start:int -> finish:int -> bool

val add : t -> start:int -> finish:int -> t
(** @raise Invalid_argument when the interval overlaps an existing busy
    interval or [finish < start]. *)

val earliest_gap : t -> from:int -> duration:int -> int
(** The earliest [s >= from] such that [\[s, s + duration)] is free. *)

val pp : Format.formatter -> t -> unit
