(** Preemptive EDF scheduling on a pool of processors — the validation
    counterpart of the Theorem 3 (preemptive) overlap bounds.

    Unit-quantum simulation: at every time step the earliest-deadline
    ready tasks occupy the processors of their type; preemptive tasks may
    be suspended and migrated freely, non-preemptive tasks keep their
    processor until they complete.  Message delays are charged on every
    precedence edge (conservative: as if producer and consumer were never
    co-located), so a feasible result here is feasible under any
    placement-aware accounting.

    Restriction: tasks must not require shared resources (a preempted
    task cannot safely release an exclusive resource mid-service); apps
    with resource-using tasks are rejected. *)

type slice = {
  p_task : int;
  p_start : int;
  p_finish : int;  (** Half-open [\[p_start, p_finish)]. *)
  p_proc : string * int;  (** Processor type and instance. *)
}

type schedule = slice list array
(** Per task, its execution slices in increasing start order. *)

val run :
  Rtlb.App.t -> procs:(string * int) list -> (schedule, int) result
(** [Error i] names the first task that missed its deadline.
    @raise Invalid_argument when some task uses resources, or some task's
      processor type has no units. *)

val check :
  Rtlb.App.t -> procs:(string * int) list -> schedule -> (unit, string list) result
(** Independent validation: slice totals equal computation times, slices
    respect arrival (release + latest predecessor finish + message) and
    deadline, processors are never double-booked, tasks never run on two
    processors at once, and non-preemptive tasks run in one piece. *)

val feasible : Rtlb.App.t -> procs:(string * int) list -> bool

val total_slices : schedule -> int
(** Number of slices (preemption count + task count). *)
