let validate app m =
  ignore app;
  if m <= 0 then invalid_arg "Makespan: m <= 0"

let greedy app ~m =
  validate app m;
  let graph = Rtlb.App.graph app in
  let free = Array.make m 0 in
  let finish = Array.make (Rtlb.App.n_tasks app) 0 in
  Array.iter
    (fun i ->
      let ready =
        List.fold_left
          (fun acc p -> max acc finish.(p))
          0 (Dag.pred_ids graph i)
      in
      (* earliest-available machine *)
      let best = ref 0 in
      for k = 1 to m - 1 do
        if free.(k) < free.(!best) then best := k
      done;
      let start = max ready free.(!best) in
      let f = start + (Rtlb.App.task app i).Rtlb.Task.compute in
      free.(!best) <- f;
      finish.(i) <- f)
    (Dag.topological_order graph);
  Array.fold_left max 0 finish

let minimum ?(node_limit = 500_000) app ~m =
  validate app m;
  let n = Rtlb.App.n_tasks app in
  let graph = Rtlb.App.graph app in
  let compute i = (Rtlb.App.task app i).Rtlb.Task.compute in
  let total = List.fold_left ( + ) 0 (List.init n compute) in
  let cp = Rtlb.App.critical_time app in
  let lower = max cp (if total = 0 then 0 else (total + m - 1) / m) in
  let best = ref (greedy app ~m) in
  let budget = ref node_limit in
  (* Remaining critical path from each task: admissible completion bound. *)
  let tail = Array.make n 0 in
  Array.iter
    (fun i ->
      let t =
        List.fold_left (fun acc j -> max acc tail.(j)) 0 (Dag.succ_ids graph i)
      in
      tail.(i) <- t + compute i)
    (Dag.reverse_topological_order graph);
  let finish = Array.make n (-1) in
  (* DFS over (ready task, machine) choices — the active-schedule search:
     semi-active timing per machine sequence, every ready task branched,
     machines deduplicated by availability.  Active schedules contain an
     optimal one for makespan, so the search is exact within budget. *)
  let free = Array.make m 0 in
  let exception Out_of_budget in
  let rec place placed current_makespan =
    if !budget <= 0 then raise Out_of_budget;
    decr budget;
    if placed = n then best := min !best current_makespan
    else
      for i = 0 to n - 1 do
        if
          finish.(i) < 0
          && List.for_all (fun p -> finish.(p) >= 0) (Dag.pred_ids graph i)
        then begin
          let ready =
            List.fold_left
              (fun acc p -> max acc finish.(p))
              0 (Dag.pred_ids graph i)
          in
          (* deduplicate machines with identical availability *)
          let tried = ref [] in
          for k = 0 to m - 1 do
            if not (List.mem free.(k) !tried) then begin
              tried := free.(k) :: !tried;
              let start = max ready free.(k) in
              let f = start + compute i in
              (* admissible: the chain below [i] still has to run *)
              let optimistic = max current_makespan (start + tail.(i)) in
              if optimistic < !best then begin
                let saved = free.(k) in
                free.(k) <- f;
                finish.(i) <- f;
                place (placed + 1) (max current_makespan f);
                free.(k) <- saved;
                finish.(i) <- -1
              end
            end
          done
        end
      done
  in
  match place 0 0 with
  | () -> Some (max lower !best)
  | exception Out_of_budget -> None
