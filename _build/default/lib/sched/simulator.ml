type outcome = {
  o_finished : bool;
  o_makespan : int;
  o_first_miss : int option;
  o_schedule : Schedule.t option;
}

let wcet app i = (Rtlb.App.task app i).Rtlb.Task.compute

let scaled app ~percent i =
  let c = (Rtlb.App.task app i).Rtlb.Task.compute in
  max 0 (min c (((c * percent) + 99) / 100))

(* Host inventory as mutable "free at time" state is not enough: online
   non-preemptive dispatch only ever starts work at the current instant,
   so it suffices to track, per host/unit, whether it is busy and until
   when. *)
type unit_state = { mutable busy_until : int }

let run_online ?priority ~actual app platform =
  let n = Rtlb.App.n_tasks app in
  let priority =
    match priority with
    | Some p -> p
    | None -> fun i -> (Rtlb.App.task app i).Rtlb.Task.deadline
  in
  begin
    (* validate actual times *)
    for i = 0 to n - 1 do
      let a = actual i in
      if a < 0 || a > wcet app i then
        invalid_arg "Simulator.run_online: actual time outside [0, WCET]"
    done
  end;
  let hosts =
      match platform with
      | Platform.Shared_platform { procs; _ } ->
          List.concat_map
            (fun (p, count) ->
              List.init count (fun k ->
                  (Schedule.On_proc (p, k), { busy_until = 0 })))
            procs
      | Platform.Dedicated_platform nodes ->
          List.concat_map
            (fun ((nt : Rtlb.System.node_type), count) ->
              List.init count (fun k ->
                  ( Schedule.On_node (nt.Rtlb.System.nt_name, k),
                    { busy_until = 0 } )))
            nodes
    in
    let pools =
      match platform with
      | Platform.Shared_platform { resources; _ } ->
          List.map
            (fun (r, count) ->
              (r, Array.init count (fun _ -> { busy_until = 0 })))
            resources
      | Platform.Dedicated_platform _ -> []
    in
    let capable (task : Rtlb.Task.t) host =
      match (platform, host) with
      | Platform.Shared_platform _, Schedule.On_proc (p, _) ->
          String.equal p task.Rtlb.Task.proc
      | Platform.Dedicated_platform nodes, Schedule.On_node (name, _) ->
          List.exists
            (fun ((nt : Rtlb.System.node_type), _) ->
              String.equal nt.Rtlb.System.nt_name name
              && Rtlb.System.node_can_host nt task)
            nodes
      | _ -> false
    in
    let entry : Schedule.entry option array = Array.make n None in
    let finish_time = Array.make n max_int in
    let first_miss = ref None in
    (* ready time of a task, computable once all preds are dispatched *)
    let arrival i host =
      List.fold_left
        (fun acc p ->
          match entry.(p) with
          | None -> max_int
          | Some pe ->
              let m =
                if Schedule.host_equal pe.Schedule.e_host host then 0
                else Rtlb.App.message app ~src:p ~dst:i
              in
              max acc (finish_time.(p) + m))
        (Rtlb.App.task app i).Rtlb.Task.release
        (Rtlb.App.preds app i)
    in
    let unscheduled () =
      List.filter (fun i -> entry.(i) = None) (List.init n Fun.id)
    in
    let now = ref 0 in
    let progress = ref true in
    while unscheduled () <> [] && !progress do
      progress := false;
      (* tasks whose predecessors are all dispatched and whose messages
         have arrived for at least one free capable host at [now] *)
      let ready =
        unscheduled ()
        |> List.filter (fun i ->
               List.for_all (fun p -> entry.(p) <> None) (Rtlb.App.preds app i))
        |> List.sort (fun a b -> compare (priority a, a) (priority b, b))
      in
      let dispatched_one = ref false in
      List.iter
        (fun i ->
          if entry.(i) = None then begin
            let task = Rtlb.App.task app i in
            let free_hosts =
              List.filter
                (fun (h, st) ->
                  capable task h && st.busy_until <= !now
                  && arrival i h <= !now)
                hosts
            in
            let resource_units () =
              (* k free units of each needed resource, shared model only *)
              match platform with
              | Platform.Dedicated_platform _ -> Some []
              | Platform.Shared_platform _ ->
                  List.fold_left
                    (fun acc (r, k) ->
                      match acc with
                      | None -> None
                      | Some chosen -> (
                          match List.assoc_opt r pools with
                          | None -> None
                          | Some units ->
                              let free = ref [] in
                              Array.iteri
                                (fun u st ->
                                  if
                                    st.busy_until <= !now
                                    && List.length !free < k
                                  then free := (r, u) :: !free)
                                units;
                              if List.length !free = k then
                                Some (!free @ chosen)
                              else None))
                    (Some []) task.Rtlb.Task.demands
            in
            match (free_hosts, resource_units ()) with
            | (host, st) :: _, Some units ->
                let d = actual i in
                st.busy_until <- !now + d;
                List.iter
                  (fun (r, u) ->
                    (List.assoc r pools).(u).busy_until <- !now + d)
                  units;
                entry.(i) <-
                  Some
                    {
                      Schedule.e_task = i;
                      e_start = !now;
                      e_host = host;
                      e_resource_units = units;
                    };
                finish_time.(i) <- !now + d;
                if !now + d > task.Rtlb.Task.deadline && !first_miss = None
                then first_miss := Some i;
                dispatched_one := true
            | _ -> ()
          end)
        ready;
      if !dispatched_one then progress := true
      else begin
        (* advance time to the next event: a host/unit freeing up or a
           message arriving *)
        let next = ref max_int in
        List.iter
          (fun (_, st) -> if st.busy_until > !now then next := min !next st.busy_until)
          hosts;
        List.iter
          (fun (_, units) ->
            Array.iter
              (fun st ->
                if st.busy_until > !now then next := min !next st.busy_until)
              units)
          pools;
        List.iter
          (fun i ->
            if
              entry.(i) = None
              && List.for_all (fun p -> entry.(p) <> None) (Rtlb.App.preds app i)
            then
              List.iter
                (fun (h, _) ->
                  if capable (Rtlb.App.task app i) h then begin
                    let a = arrival i h in
                    if a > !now && a < !next then next := a
                  end)
                hosts)
          (unscheduled ());
        if !next = max_int then progress := false
        else begin
          now := !next;
          progress := true
        end
      end
    done;
    let all_done = unscheduled () = [] in
    let makespan =
      Array.fold_left
        (fun acc f -> if f = max_int then acc else max acc f)
        0 finish_time
    in
    {
      o_finished = all_done && !first_miss = None;
      o_makespan = makespan;
      o_first_miss = !first_miss;
      o_schedule =
        (if all_done then Some (Array.map Option.get entry) else None);
    }
