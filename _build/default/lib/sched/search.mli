(** Platform-sizing searches built on the list scheduler.

    These provide the {e upper} bounds that the paper's lower bounds are
    validated and measured against: if a schedule exists on a platform
    with [k] units of resource [r], then the true minimum is at most [k],
    and soundness demands [LB_r <= k]. *)

type report = {
  platform : Platform.t;  (** Smallest feasible platform found. *)
  tested : int;  (** Feasibility tests performed. *)
}

val min_shared_platform :
  ?priority:(int -> int) ->
  ?max_extra:int ->
  Rtlb.App.t ->
  report option
(** Searches shared platforms in order of increasing total unit count,
    starting from one unit of every processor type and resource the
    application mentions, growing any dimension by one at a time
    (uniform-cost search).  Returns the first platform the list scheduler
    can schedule feasibly, or [None] if none is found within
    [max_extra] (default [32]) added units over the start point.

    The result is an upper bound on the optimal platform: the greedy
    scheduler may miss feasible platforms, never the reverse. *)

val min_units_for :
  ?priority:(int -> int) ->
  Rtlb.App.t ->
  resource:string ->
  generous:(string -> int) ->
  int option
(** Smallest [k] such that the list scheduler succeeds with [k] units of
    [resource] while every other dimension is fixed at [generous] — the
    single-resource profile used by the tightness experiment. *)

val backtracking_feasible :
  ?node_limit:int -> Rtlb.App.t -> Platform.t -> Schedule.t option
(** Exhaustive branch-and-bound over (ready task, host) placements with
    earliest-start insertion, LCT-window pruning and a node budget
    (default [200_000]).  Finds schedules greedy EDF misses; still
    restricted to non-idling placements, so [None] does not certify
    infeasibility (documented limitation of non-preemptive search). *)
