(** Schedules and an independent feasibility checker.

    A schedule assigns every task a start time and a host (one processor
    instance plus, in the shared model, one unit of each resource it
    needs; or one node instance in the dedicated model).  Execution is
    non-preemptive: a feasible non-preemptive schedule is also feasible
    when some tasks are allowed to preempt, so schedulers built on this
    representation give valid upper bounds for both settings. *)

type host =
  | On_proc of string * int  (** Processor type and instance index. *)
  | On_node of string * int  (** Node-type name and instance index. *)

type entry = {
  e_task : int;
  e_start : int;
  e_host : host;
  e_resource_units : (string * int) list;
      (** Shared model: the resource unit index used for each required
          resource.  Empty in the dedicated model. *)
}

type t = entry array
(** Indexed by task id. *)

val finish : Rtlb.App.t -> entry -> int
val host_equal : host -> host -> bool

val makespan : Rtlb.App.t -> t -> int

val check : Rtlb.App.t -> Platform.t -> t -> (unit, string list) result
(** Verifies, from scratch and independently of any scheduler:
    - every task appears once, with [e_start >= release] and
      [finish <= deadline];
    - hosts exist on the platform and can run their tasks;
    - no two tasks overlap on the same processor/node instance;
    - precedence with communication: a successor on a different host
      starts no earlier than [finish + m], on the same host no earlier
      than [finish];
    - shared resources: no unit is used by two overlapping tasks, and
      every task holds one unit of each resource it needs.

    Returns all violations found. *)

val pp : Rtlb.App.t -> Format.formatter -> t -> unit
