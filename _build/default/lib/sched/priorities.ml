type policy = Deadline | Lct | Least_slack | Longest_work_first

let all = [ Deadline; Lct; Least_slack; Longest_work_first ]

let name = function
  | Deadline -> "deadline (EDF)"
  | Lct -> "analysis LCT"
  | Least_slack -> "least slack"
  | Longest_work_first -> "longest work first"

let make policy system app =
  match policy with
  | Deadline -> fun i -> (Rtlb.App.task app i).Rtlb.Task.deadline
  | Longest_work_first -> fun i -> -(Rtlb.App.task app i).Rtlb.Task.compute
  | Lct ->
      let w = Rtlb.Est_lct.compute system app in
      fun i -> w.Rtlb.Est_lct.lct.(i)
  | Least_slack ->
      let w = Rtlb.Est_lct.compute system app in
      fun i ->
        w.Rtlb.Est_lct.lct.(i) - w.Rtlb.Est_lct.est.(i)
        - (Rtlb.App.task app i).Rtlb.Task.compute
