type slice = {
  p_task : int;
  p_start : int;
  p_finish : int;
  p_proc : string * int;
}

type schedule = slice list array

let validate_input app procs =
  Array.iter
    (fun (task : Rtlb.Task.t) ->
      if task.Rtlb.Task.resources <> [] then
        invalid_arg
          ("Preemptive.run: task uses shared resources: " ^ task.Rtlb.Task.name);
      match List.assoc_opt task.Rtlb.Task.proc procs with
      | Some c when c > 0 -> ()
      | _ ->
          invalid_arg
            ("Preemptive.run: no processors of type " ^ task.Rtlb.Task.proc))
    (Rtlb.App.tasks app)

(* Completion time of a task = end of its last slice. *)
let finish_of slices =
  List.fold_left (fun acc s -> max acc s.p_finish) 0 slices

let arrival app finishes i =
  List.fold_left
    (fun acc p ->
      max acc (finishes.(p) + Rtlb.App.message app ~src:p ~dst:i))
    (Rtlb.App.task app i).Rtlb.Task.release
    (Rtlb.App.preds app i)

let run app ~procs =
  validate_input app procs;
  let n = Rtlb.App.n_tasks app in
  let remaining =
    Array.init n (fun i -> (Rtlb.App.task app i).Rtlb.Task.compute)
  in
  let slices = Array.make n [] in
  let finishes = Array.make n max_int in
  (* Track completion properly: a task is complete when remaining = 0.
     Zero-compute (milestone) tasks complete the instant their inputs are
     all available; settle the initial chains in topological order. *)
  let complete i = remaining.(i) = 0 in
  Array.iter
    (fun i ->
      if
        remaining.(i) = 0
        && List.for_all
             (fun p -> finishes.(p) < max_int)
             (Rtlb.App.preds app i)
      then finishes.(i) <- arrival app finishes i)
    (Dag.topological_order (Rtlb.App.graph app));
  let horizon = Rtlb.App.horizon app in
  (* Non-preemptive tasks hold their processor between quanta. *)
  let pinned = Array.make n None in
  let missed = ref None in
  let t = ref 0 in
  let done_count () =
    Array.fold_left (fun acc r -> acc + if r = 0 then 1 else 0) 0 remaining
  in
  while !missed = None && done_count () < n && !t < horizon do
    let now = !t in
    (* Free units per processor type at this quantum. *)
    let free = Hashtbl.create 4 in
    List.iter (fun (p, c) -> Hashtbl.replace free p (List.init c Fun.id)) procs;
    let take p preferred =
      match Hashtbl.find_opt free p with
      | None | Some [] -> None
      | Some units -> (
          match preferred with
          | Some u when List.mem u units ->
              Hashtbl.replace free p (List.filter (( <> ) u) units);
              Some u
          | Some _ -> None (* pinned unit busy: cannot happen *)
          | None ->
              let u = List.hd units in
              Hashtbl.replace free p (List.tl units);
              Some u)
    in
    (* Pinned (running non-preemptive) tasks go first, on their unit. *)
    let running_now = ref [] in
    Array.iteri
      (fun i pin ->
        match pin with
        | Some (p, u) when not (complete i) ->
            (match take p (Some u) with
            | Some u -> running_now := (i, (p, u)) :: !running_now
            | None -> assert false)
        | _ -> ())
      pinned;
    (* Ready preemptible work by EDF. *)
    let ready =
      List.init n Fun.id
      |> List.filter (fun i ->
             (not (complete i))
             && pinned.(i) = None
             && List.for_all
                  (fun p -> complete p && finishes.(p) < max_int)
                  (Rtlb.App.preds app i)
             && arrival app finishes i <= now)
      |> List.sort (fun a b ->
             compare
               ((Rtlb.App.task app a).Rtlb.Task.deadline, a)
               ((Rtlb.App.task app b).Rtlb.Task.deadline, b))
    in
    List.iter
      (fun i ->
        let task = Rtlb.App.task app i in
        match take task.Rtlb.Task.proc None with
        | None -> ()
        | Some u ->
            running_now := (i, (task.Rtlb.Task.proc, u)) :: !running_now;
            if not task.Rtlb.Task.preemptive then
              pinned.(i) <- Some (task.Rtlb.Task.proc, u))
      ready;
    (* Execute one quantum. *)
    List.iter
      (fun (i, proc) ->
        remaining.(i) <- remaining.(i) - 1;
        (* extend the last slice when contiguous on the same unit *)
        (slices.(i) <-
          (match slices.(i) with
          | { p_finish; p_proc; _ } :: _ as all
            when p_finish = now && p_proc = proc -> (
              match all with
              | head :: rest -> { head with p_finish = now + 1 } :: rest
              | [] -> assert false)
          | other ->
              { p_task = i; p_start = now; p_finish = now + 1; p_proc = proc }
              :: other));
        if remaining.(i) = 0 then begin
          finishes.(i) <- now + 1;
          pinned.(i) <- None;
          if now + 1 > (Rtlb.App.task app i).Rtlb.Task.deadline then
            missed := Some i;
          (* newly enabled zero-compute successors complete instantly *)
          Array.iter
            (fun j ->
              if
                remaining.(j) = 0
                && finishes.(j) = max_int
                && List.for_all
                     (fun p -> complete p && finishes.(p) < max_int)
                     (Rtlb.App.preds app j)
              then finishes.(j) <- arrival app finishes j)
            (Dag.topological_order (Rtlb.App.graph app))
        end)
      !running_now;
    (* Deadline misses for tasks still incomplete past their deadline. *)
    Array.iteri
      (fun i r ->
        if r > 0 && now + 1 > (Rtlb.App.task app i).Rtlb.Task.deadline then
          if !missed = None then missed := Some i)
      remaining;
    incr t
  done;
  match !missed with
  | Some i -> Error i
  | None ->
      if done_count () < n then
        (* ran out of horizon: some task cannot make its deadline *)
        Error
          (Option.get
             (List.find_opt
                (fun i -> remaining.(i) > 0)
                (List.init n Fun.id)))
      else Ok (Array.map List.rev slices)

let check app ~procs schedule =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let n = Rtlb.App.n_tasks app in
  if Array.length schedule <> n then err "wrong number of tasks"
  else begin
    let finishes = Array.map finish_of schedule in
    Array.iteri
      (fun i task_slices ->
        let task = Rtlb.App.task app i in
        let total =
          List.fold_left (fun acc s -> acc + s.p_finish - s.p_start) 0 task_slices
        in
        if total <> task.Rtlb.Task.compute then
          err "%s executed %d of %d units" task.Rtlb.Task.name total
            task.Rtlb.Task.compute;
        let arrive = arrival app finishes i in
        List.iter
          (fun s ->
            if s.p_task <> i then err "slice of task %d filed under %d" s.p_task i;
            if s.p_start < arrive then
              err "%s runs at %d before arrival %d" task.Rtlb.Task.name
                s.p_start arrive;
            if s.p_finish > task.Rtlb.Task.deadline then
              err "%s runs past deadline %d" task.Rtlb.Task.name
                task.Rtlb.Task.deadline;
            let p, u = s.p_proc in
            if not (String.equal p task.Rtlb.Task.proc) then
              err "%s on wrong processor type %s" task.Rtlb.Task.name p;
            match List.assoc_opt p procs with
            | Some c when u >= 0 && u < c -> ()
            | _ -> err "%s on nonexistent unit %s#%d" task.Rtlb.Task.name p u)
          task_slices;
        if (not task.Rtlb.Task.preemptive) && task.Rtlb.Task.compute > 0 then
          if List.length task_slices <> 1 then
            err "non-preemptive %s split into %d slices" task.Rtlb.Task.name
              (List.length task_slices))
      schedule;
    (* No double-booking: pairwise slice overlap on same unit, and no task
       self-overlap across units. *)
    let all = Array.to_list schedule |> List.concat in
    let overlap a b = max a.p_start b.p_start < min a.p_finish b.p_finish in
    List.iteri
      (fun k a ->
        List.iteri
          (fun k' b ->
            if k < k' && overlap a b then begin
              if a.p_proc = b.p_proc then
                err "unit %s#%d double-booked at %d" (fst a.p_proc)
                  (snd a.p_proc)
                  (max a.p_start b.p_start);
              if a.p_task = b.p_task then
                err "task %d runs on two units at once" a.p_task
            end)
          all)
      all
  end;
  if !problems = [] then Ok () else Error (List.rev !problems)

let feasible app ~procs =
  match run app ~procs with
  | Error _ -> false
  | Ok s -> check app ~procs s = Ok ()

let total_slices schedule =
  Array.fold_left (fun acc l -> acc + List.length l) 0 schedule
