let host_label = function
  | Schedule.On_proc (p, k) -> Printf.sprintf "%s#%d" p k
  | Schedule.On_node (n, k) -> Printf.sprintf "%s#%d" n k

(* Rows: (label, occupant per time unit).  Occupant is the short task
   name or "" when idle. *)
let rows_of app platform schedule ~show_resources =
  let horizon = max 1 (Schedule.makespan app schedule) in
  let hosts =
    match platform with
    | Platform.Shared_platform { procs; _ } ->
        List.concat_map
          (fun (p, count) ->
            List.init count (fun k -> Schedule.On_proc (p, k)))
          procs
    | Platform.Dedicated_platform nodes ->
        List.concat_map
          (fun ((nt : Rtlb.System.node_type), count) ->
            List.init count (fun k ->
                Schedule.On_node (nt.Rtlb.System.nt_name, k)))
          nodes
  in
  let host_rows =
    List.map
      (fun host ->
        let cells = Array.make horizon "" in
        Array.iter
          (fun (e : Schedule.entry) ->
            if Schedule.host_equal e.Schedule.e_host host then
              let name = (Rtlb.App.task app e.Schedule.e_task).Rtlb.Task.name in
              for t = e.Schedule.e_start to Schedule.finish app e - 1 do
                cells.(t) <- name
              done)
          schedule;
        (host_label host, cells))
      hosts
  in
  let resource_rows =
    if not show_resources then []
    else
      match platform with
      | Platform.Dedicated_platform _ -> []
      | Platform.Shared_platform { resources; _ } ->
          List.concat_map
            (fun (r, count) ->
              List.init count (fun u ->
                  let cells = Array.make horizon "" in
                  Array.iter
                    (fun (e : Schedule.entry) ->
                      if
                        List.exists
                          (fun (r', u') -> String.equal r r' && u = u')
                          e.Schedule.e_resource_units
                      then
                        let name =
                          (Rtlb.App.task app e.Schedule.e_task).Rtlb.Task.name
                        in
                        for t = e.Schedule.e_start to Schedule.finish app e - 1 do
                          cells.(t) <- name
                        done)
                    schedule;
                  (Printf.sprintf "%s#%d" r u, cells)))
            resources
  in
  (horizon, host_rows @ resource_rows)

let render_rows ?(width = 100) (horizon, rows) =
  let per_column = (horizon + width - 1) / width in
  let columns = (horizon + per_column - 1) / per_column in
  let cell_width =
    List.fold_left
      (fun acc (_, cells) ->
        Array.fold_left (fun acc c -> max acc (String.length c)) acc cells)
      1 rows
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buf = Buffer.create 1024 in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  (* Time ruler every 5 columns. *)
  Buffer.add_string buf (pad label_width "");
  Buffer.add_string buf "  ";
  for c = 0 to columns - 1 do
    let label =
      if c mod 5 = 0 then string_of_int (c * per_column) else ""
    in
    Buffer.add_string buf (pad (cell_width + 1) label)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string buf (pad label_width label);
      Buffer.add_string buf " |";
      for c = 0 to columns - 1 do
        (* With scaling, show the occupant of the first busy unit in the
           column. *)
        let occupant = ref "" in
        for t = c * per_column to min horizon (c * per_column + per_column) - 1 do
          if !occupant = "" && cells.(t) <> "" then occupant := cells.(t)
        done;
        let s = if !occupant = "" then "." else !occupant in
        Buffer.add_string buf (pad cell_width s);
        Buffer.add_char buf (if c = columns - 1 then '|' else ' ')
      done;
      Buffer.add_char buf '\n')
    rows;
  if per_column > 1 then
    Buffer.add_string buf
      (Printf.sprintf "(one column = %d time units)\n" per_column);
  Buffer.contents buf


let render ?width ?show_resources app platform schedule =
  let horizon, rows =
    rows_of app platform schedule
      ~show_resources:(Option.value ~default:false show_resources)
  in
  render_rows ?width (horizon, rows)

let render_preemptive ?width app ~procs schedule =
  let horizon =
    max 1
      (Array.fold_left
         (fun acc slices ->
           List.fold_left
             (fun acc (s : Preemptive.slice) -> max acc s.Preemptive.p_finish)
             acc slices)
         0 schedule)
  in
  let rows =
    List.concat_map
      (fun (p, count) ->
        List.init count (fun u ->
            let cells = Array.make horizon "" in
            Array.iteri
              (fun i slices ->
                List.iter
                  (fun (s : Preemptive.slice) ->
                    if s.Preemptive.p_proc = (p, u) then
                      for t = s.Preemptive.p_start to s.Preemptive.p_finish - 1 do
                        cells.(t) <- (Rtlb.App.task app i).Rtlb.Task.name
                      done)
                  slices)
              schedule;
            (Printf.sprintf "%s#%d" p u, cells)))
      procs
  in
  render_rows ?width (horizon, rows)


(* Colour per task, deterministic from the id: evenly spaced hues with
   fixed saturation/lightness keep adjacent tasks distinguishable. *)
let svg_colour i =
  let hue = i * 67 mod 360 in
  Printf.sprintf "hsl(%d, 62%%, 62%%)" hue

let render_svg ?(show_resources = false) app platform schedule =
  let horizon, rows = rows_of app platform schedule ~show_resources in
  ignore rows;
  let lane_height = 26 and lane_gap = 6 and left = 90 in
  let px_per_tick = max 6 (min 28 (900 / max 1 horizon)) in
  let lanes =
    (let base =
       match platform with
       | Platform.Shared_platform { procs; _ } ->
           List.concat_map
             (fun (p, count) ->
               List.init count (fun k -> `Host (Schedule.On_proc (p, k))))
             procs
       | Platform.Dedicated_platform nodes ->
           List.concat_map
             (fun ((nt : Rtlb.System.node_type), count) ->
               List.init count (fun k ->
                   `Host (Schedule.On_node (nt.Rtlb.System.nt_name, k))))
             nodes
     in
     let resource_lanes =
       if not show_resources then []
       else
         match platform with
         | Platform.Dedicated_platform _ -> []
         | Platform.Shared_platform { resources; _ } ->
             List.concat_map
               (fun (r, count) -> List.init count (fun u -> `Unit (r, u)))
               resources
     in
     base @ resource_lanes)
  in
  let width = left + (horizon * px_per_tick) + 20 in
  let height = (List.length lanes * (lane_height + lane_gap)) + 40 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"monospace\" font-size=\"11\">\n"
       width height);
  let lane_y idx = 10 + (idx * (lane_height + lane_gap)) in
  (* lanes and labels *)
  List.iteri
    (fun idx lane ->
      let label =
        match lane with
        | `Host h -> host_label h
        | `Unit (r, u) -> Printf.sprintf "%s#%d" r u
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"4\" y=\"%d\">%s</text><rect x=\"%d\" y=\"%d\" \
            width=\"%d\" height=\"%d\" fill=\"#f2f2f2\"/>\n"
           (lane_y idx + 17) label left (lane_y idx)
           (horizon * px_per_tick) lane_height))
    lanes;
  (* task boxes *)
  Array.iter
    (fun (e : Schedule.entry) ->
      let task = Rtlb.App.task app e.Schedule.e_task in
      if task.Rtlb.Task.compute > 0 then begin
        let finish = Schedule.finish app e in
        let late = finish > task.Rtlb.Task.deadline in
        let fill =
          if late then "hsl(0, 85%, 55%)" else svg_colour e.Schedule.e_task
        in
        let draw idx =
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
                fill=\"%s\" stroke=\"#333\"/><text x=\"%d\" y=\"%d\">%s</text>\n"
               (left + (e.Schedule.e_start * px_per_tick))
               (lane_y idx)
               ((finish - e.Schedule.e_start) * px_per_tick)
               lane_height fill
               (left + (e.Schedule.e_start * px_per_tick) + 3)
               (lane_y idx + 17) task.Rtlb.Task.name)
        in
        List.iteri
          (fun idx lane ->
            match lane with
            | `Host h when Schedule.host_equal h e.Schedule.e_host -> draw idx
            | `Unit (r, u)
              when List.exists
                     (fun (r', u') -> String.equal r r' && u = u')
                     e.Schedule.e_resource_units ->
                draw idx
            | _ -> ())
          lanes
      end)
    schedule;
  (* axis *)
  let axis_y = height - 18 in
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#333\"/>\n"
       left axis_y (left + (horizon * px_per_tick)) axis_y);
  let step = max 1 (horizon / 10) in
  let t = ref 0 in
  while !t <= horizon do
    Buffer.add_string buf
      (Printf.sprintf "<text x=\"%d\" y=\"%d\">%d</text>\n"
         (left + (!t * px_per_tick))
         (axis_y + 14) !t);
    t := !t + step
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
