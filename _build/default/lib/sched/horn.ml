type job = { j_release : int; j_deadline : int; j_compute : int }

let validate jobs m =
  if m <= 0 then invalid_arg "Horn: m <= 0";
  List.iter
    (fun j ->
      if j.j_release < 0 || j.j_compute < 0 then
        invalid_arg "Horn: negative job field";
      if j.j_release + j.j_compute > j.j_deadline then
        invalid_arg "Horn: job window smaller than its computation")
    jobs

let feasible ~jobs ~m =
  validate jobs m;
  let jobs = List.filter (fun j -> j.j_compute > 0) jobs in
  if jobs = [] then true
  else begin
    let points =
      List.concat_map (fun j -> [ j.j_release; j.j_deadline ]) jobs
      |> List.sort_uniq compare
      |> Array.of_list
    in
    let n_jobs = List.length jobs in
    let n_intervals = Array.length points - 1 in
    (* vertex layout: 0 = source, 1 = sink, 2.. jobs, then intervals *)
    let source = 0 and sink = 1 in
    let job_v k = 2 + k in
    let interval_v l = 2 + n_jobs + l in
    let net = Flow.create ~n:(2 + n_jobs + n_intervals) in
    let total = ref 0 in
    List.iteri
      (fun k j ->
        total := !total + j.j_compute;
        Flow.add_edge net ~src:source ~dst:(job_v k) ~capacity:j.j_compute;
        for l = 0 to n_intervals - 1 do
          let t1 = points.(l) and t2 = points.(l + 1) in
          if j.j_release <= t1 && t2 <= j.j_deadline then
            Flow.add_edge net ~src:(job_v k) ~dst:(interval_v l)
              ~capacity:(t2 - t1)
        done)
      jobs;
    for l = 0 to n_intervals - 1 do
      Flow.add_edge net ~src:(interval_v l) ~dst:sink
        ~capacity:(m * (points.(l + 1) - points.(l)))
    done;
    Flow.max_flow net ~source ~sink = !total
  end

let min_processors ~jobs =
  let jobs = List.filter (fun j -> j.j_compute > 0) jobs in
  if jobs = [] then 0
  else begin
    let hi = List.length jobs in
    let rec bisect lo hi =
      (* invariant: infeasible at lo (or lo = 0), feasible at hi *)
      if lo + 1 >= hi then hi
      else
        let mid = (lo + hi) / 2 in
        if feasible ~jobs ~m:mid then bisect lo mid else bisect mid hi
    in
    if feasible ~jobs ~m:1 then 1 else bisect 1 hi
  end

let of_app app =
  Array.to_list (Rtlb.App.tasks app)
  |> List.map (fun (t : Rtlb.Task.t) ->
         {
           j_release = t.Rtlb.Task.release;
           j_deadline = t.Rtlb.Task.deadline;
           j_compute = t.Rtlb.Task.compute;
         })

let density_bound ~jobs =
  let jobs = List.filter (fun j -> j.j_compute > 0) jobs in
  match jobs with
  | [] -> 0
  | _ ->
      let points =
        List.concat_map (fun j -> [ j.j_release; j.j_deadline ]) jobs
        |> List.sort_uniq compare
        |> Array.of_list
      in
      let np = Array.length points in
      let best = ref 0 in
      for a = 0 to np - 2 do
        for b = a + 1 to np - 1 do
          let t1 = points.(a) and t2 = points.(b) in
          let demand =
            List.fold_left
              (fun acc j ->
                acc
                + Rtlb.Overlap.psi ~preemptive:true ~est:j.j_release
                    ~lct:j.j_deadline ~compute:j.j_compute ~t1 ~t2)
              0 jobs
          in
          best := max !best ((demand + t2 - t1 - 1) / (t2 - t1))
        done
      done;
      !best
