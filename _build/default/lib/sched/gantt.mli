(** ASCII Gantt charts for schedules.

    One row per host instance (and per shared-resource unit when
    requested), one column per time unit, with task names packed into
    their execution intervals:

    {v
    P1#0  |T1 T1 T1 T4 T4 T4 T4 T4 .  .  |
    P1#1  |T2 T2 T2 T2 T2 T2 T5 T5 T5 T5|
    v} *)

val render :
  ?width:int ->
  ?show_resources:bool ->
  Rtlb.App.t ->
  Platform.t ->
  Schedule.t ->
  string
(** [render app platform schedule] draws the schedule.  [width] (default
    [100]) caps the number of time columns; longer horizons are scaled by
    whole-number time-per-column factors.  [show_resources] (default
    [false]) adds one row per shared-resource unit. *)

val render_preemptive :
  ?width:int -> Rtlb.App.t -> procs:(string * int) list -> Preemptive.schedule -> string
(** Gantt chart of a preemptive schedule (one row per processor instance;
    tasks may appear in several slices). *)

val render_svg :
  ?show_resources:bool -> Rtlb.App.t -> Platform.t -> Schedule.t -> string
(** Standalone SVG rendering of the schedule: one lane per host instance
    (and resource unit when requested), deadline-violating tasks in red,
    a time axis underneath.  Deterministic output, suitable for golden
    testing and for piping to a file from the CLI. *)
