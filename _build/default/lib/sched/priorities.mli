(** Priority policies for the list scheduler — including ones derived
    from the paper's own analysis.

    A priority maps each task to a key; smaller keys dispatch first.  The
    interesting question, measured in experiment E11: how much does
    priority quality affect whether the {e bound-sized} platform is
    actually schedulable?  Analysis-derived keys (LCT, least window
    slack) see communication and co-location effects that the raw
    deadline cannot. *)

type policy =
  | Deadline  (** Plain EDF on absolute deadlines. *)
  | Lct  (** Latest completion time from the Section 4 analysis. *)
  | Least_slack  (** [L_i - E_i - C_i]: tightest-window first. *)
  | Longest_work_first  (** Classic LPT, as a non-analysis control. *)

val all : policy list
val name : policy -> string

val make : policy -> Rtlb.System.t -> Rtlb.App.t -> int -> int
(** Instantiate the key function for an application (the analysis-based
    policies run {!Rtlb.Est_lct} once at construction). *)
