type report = { platform : Platform.t; tested : int }

let dimensions app =
  let tasks = Array.to_list (Rtlb.App.tasks app) in
  let procs =
    List.map (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.proc) tasks
    |> List.sort_uniq String.compare
  in
  let resources =
    List.concat_map (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.resources) tasks
    |> List.sort_uniq String.compare
  in
  (procs, resources)

let min_shared_platform ?priority ?(max_extra = 32) app =
  let procs, resources = dimensions app in
  let dims = Array.of_list (procs @ resources) in
  let n_procs = List.length procs in
  let start = Array.make (Array.length dims) 1 in
  let platform_of counts =
    let assoc lo hi =
      List.init (hi - lo) (fun k -> (dims.(lo + k), counts.(lo + k)))
    in
    Platform.shared ~procs:(assoc 0 n_procs)
      ~resources:(assoc n_procs (Array.length dims))
  in
  (* Uniform-cost search on total added units. *)
  let module Key = struct
    type t = int array

    let compare = compare
  end in
  let module Visited = Set.Make (Key) in
  let queue = ref [ (0, start) ] (* sorted by added units *) in
  let visited = ref Visited.empty in
  let tested = ref 0 in
  let rec loop () =
    match !queue with
    | [] -> None
    | (extra, counts) :: rest ->
        queue := rest;
        if Visited.mem counts !visited then loop ()
        else begin
          visited := Visited.add counts !visited;
          incr tested;
          if List_scheduler.feasible ?priority app (platform_of counts) then
            Some { platform = platform_of counts; tested = !tested }
          else if extra >= max_extra then loop ()
          else begin
            Array.iteri
              (fun d _ ->
                let next = Array.copy counts in
                next.(d) <- next.(d) + 1;
                queue :=
                  List.merge
                    (fun (a, _) (b, _) -> compare a b)
                    !queue
                    [ (extra + 1, next) ])
              counts;
            loop ()
          end
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Backtracking feasibility search                                     *)
(* ------------------------------------------------------------------ *)

type fstate = {
  hosts : (Schedule.host * Timeline.t) list;
  pools : (string * Timeline.t list) list;
  placed : Schedule.entry option array;
}

let capable_hosts platform (task : Rtlb.Task.t) hosts =
  match platform with
  | Platform.Shared_platform _ ->
      List.filter
        (fun (h, _) ->
          match h with
          | Schedule.On_proc (p, _) -> String.equal p task.Rtlb.Task.proc
          | Schedule.On_node _ -> false)
        hosts
  | Platform.Dedicated_platform nodes ->
      let ok name =
        List.exists
          (fun ((nt : Rtlb.System.node_type), _) ->
            String.equal nt.Rtlb.System.nt_name name
            && Rtlb.System.node_can_host nt task)
          nodes
      in
      List.filter
        (fun (h, _) ->
          match h with
          | Schedule.On_node (name, _) -> ok name
          | Schedule.On_proc _ -> false)
        hosts

let initial_state app platform =
  let hosts =
    match platform with
    | Platform.Shared_platform { procs; _ } ->
        List.concat_map
          (fun (p, count) ->
            List.init count (fun k -> (Schedule.On_proc (p, k), Timeline.empty)))
          procs
    | Platform.Dedicated_platform nodes ->
        List.concat_map
          (fun ((nt : Rtlb.System.node_type), count) ->
            List.init count (fun k ->
                (Schedule.On_node (nt.Rtlb.System.nt_name, k), Timeline.empty)))
          nodes
  in
  let pools =
    match platform with
    | Platform.Shared_platform { resources; _ } ->
        List.map
          (fun (r, count) -> (r, List.init count (fun _ -> Timeline.empty)))
          resources
    | Platform.Dedicated_platform _ -> []
  in
  { hosts; pools; placed = Array.make (Rtlb.App.n_tasks app) None }

(* Earliest joint start on functional state; returns (start, unit choices
   covering every (resource, k) demand). *)
let joint_start state line ~needs ~from ~duration =
  let rec settle s =
    let s_host = Timeline.earliest_gap line ~from:s ~duration in
    let s', units =
      List.fold_left
        (fun (acc, units) (r, k) ->
          let pool = List.assoc r state.pools in
          let gaps =
            List.mapi
              (fun u tl -> (Timeline.earliest_gap tl ~from:acc ~duration, u))
              pool
            |> List.sort compare
          in
          let rec take n worst chosen = function
            | (g, u) :: rest when n > 0 ->
                take (n - 1) (max worst g) ((r, u) :: chosen) rest
            | _ -> (worst, chosen)
          in
          let t_k, chosen = take k acc [] gaps in
          (max acc t_k, chosen @ units))
        (s_host, []) needs
    in
    if s' = s_host then (s_host, List.rev units) else settle s'
  in
  settle from

let commit state app i host units start =
  let task = Rtlb.App.task app i in
  let finish = start + task.Rtlb.Task.compute in
  let hosts =
    List.map
      (fun (h, tl) ->
        if Schedule.host_equal h host then (h, Timeline.add tl ~start ~finish)
        else (h, tl))
      state.hosts
  in
  let pools =
    List.map
      (fun (r, tls) ->
        match List.assoc_opt r units with
        | None -> (r, tls)
        | Some u ->
            ( r,
              List.mapi
                (fun idx tl ->
                  if idx = u then Timeline.add tl ~start ~finish else tl)
                tls ))
      state.pools
  in
  let placed = Array.copy state.placed in
  placed.(i) <-
    Some
      { Schedule.e_task = i; e_start = start; e_host = host; e_resource_units = units };
  { hosts; pools; placed }

let backtracking_feasible ?(node_limit = 200_000) app platform =
  let n = Rtlb.App.n_tasks app in
  let budget = ref node_limit in
  let state0 = initial_state app platform in
  (* Ensure every task has some capable host and non-empty resource
     pools. *)
  let unhostable (task : Rtlb.Task.t) =
    capable_hosts platform task state0.hosts = []
    ||
    match platform with
    | Platform.Dedicated_platform _ -> false
    | Platform.Shared_platform _ ->
        List.exists
          (fun (r, k) ->
            match List.assoc_opt r state0.pools with
            | Some units -> List.length units < k
            | None -> true)
          task.Rtlb.Task.demands
  in
  if Array.exists unhostable (Rtlb.App.tasks app) then None
  else
    let rec dfs state count =
      if count = n then
        Some (Array.map Option.get state.placed)
      else if !budget <= 0 then None
      else begin
        decr budget;
        let ready =
          List.init n Fun.id
          |> List.filter (fun i ->
                 state.placed.(i) = None
                 && List.for_all
                      (fun p -> state.placed.(p) <> None)
                      (Rtlb.App.preds app i))
          |> List.sort (fun a b ->
                 compare
                   (Rtlb.App.task app a).Rtlb.Task.deadline
                   (Rtlb.App.task app b).Rtlb.Task.deadline)
        in
        let try_task i =
          let task = Rtlb.App.task app i in
          let needs =
            match platform with
            | Platform.Shared_platform _ -> task.Rtlb.Task.demands
            | Platform.Dedicated_platform _ -> []
          in
          (* Prune symmetric host instances: same type, same timeline. *)
          let candidates =
            capable_hosts platform task state.hosts
            |> List.fold_left
                 (fun acc (h, tl) ->
                   let type_of = function
                     | Schedule.On_proc (p, _) -> "p:" ^ p
                     | Schedule.On_node (nm, _) -> "n:" ^ nm
                   in
                   if
                     List.exists
                       (fun (h', tl') ->
                         String.equal (type_of h) (type_of h') && tl = tl')
                       acc
                   then acc
                   else (h, tl) :: acc)
                 []
            |> List.rev
          in
          let placements =
            List.filter_map
              (fun (host, line) ->
                let ready_time =
                  List.fold_left
                    (fun acc p ->
                      let pe = Option.get state.placed.(p) in
                      let arrival =
                        Schedule.finish app pe
                        + (if Schedule.host_equal pe.Schedule.e_host host
                           then 0
                           else Rtlb.App.message app ~src:p ~dst:i)
                      in
                      max acc arrival)
                    task.Rtlb.Task.release (Rtlb.App.preds app i)
                in
                let start, units =
                  joint_start state line ~needs ~from:ready_time
                    ~duration:task.Rtlb.Task.compute
                in
                if start + task.Rtlb.Task.compute > task.Rtlb.Task.deadline
                then None
                else
                  let load =
                    List.fold_left
                      (fun acc (b, e) -> acc + e - b)
                      0
                      (Timeline.busy_intervals line)
                  in
                  Some (start, load, host, units))
              candidates
            (* Earliest start first (least-loaded host on ties) so the
               first descent reproduces the strongest greedy. *)
            |> List.sort (fun (s1, l1, _, _) (s2, l2, _, _) ->
                   compare (s1, l1) (s2, l2))
          in
          List.find_map
            (fun (start, _, host, units) ->
              dfs (commit state app i host units start) (count + 1))
            placements
        in
        List.find_map try_task ready
      end
    in
    match dfs state0 0 with
    | Some schedule -> (
        match Schedule.check app platform schedule with
        | Ok () -> Some schedule
        | Error _ -> None)
    | None -> None

(* Smallest unit count of [resource] at which a schedule is found; the
   greedy list scheduler is tried first, then the backtracking search. *)
let min_units_for ?priority app ~resource ~generous =
  let procs, resources = dimensions app in
  let cap = max 1 (Rtlb.App.n_tasks app) in
  let build k =
    let count d = if String.equal d resource then k else generous d in
    Platform.shared
      ~procs:(List.map (fun p -> (p, count p)) procs)
      ~resources:(List.map (fun r -> (r, count r)) resources)
  in
  let uses_resource = List.mem resource procs || List.mem resource resources in
  if not uses_resource then None
  else
    let rec try_k k =
      if k > cap then None
      else if List_scheduler.feasible ?priority app (build k) then Some k
      else if backtracking_feasible ~node_limit:50_000 app (build k) <> None
      then Some k
      else try_k (k + 1)
    in
    try_k 1

