lib/sched/makespan.mli: Rtlb
