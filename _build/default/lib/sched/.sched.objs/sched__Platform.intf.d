lib/sched/platform.mli: Format Rtlb
