lib/sched/simulator.mli: Platform Rtlb Schedule
