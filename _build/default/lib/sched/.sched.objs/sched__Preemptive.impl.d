lib/sched/preemptive.ml: Array Dag Fun Hashtbl List Option Printf Rtlb String
