lib/sched/priorities.mli: Rtlb
