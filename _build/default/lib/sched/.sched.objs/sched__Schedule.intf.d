lib/sched/schedule.mli: Format Platform Rtlb
