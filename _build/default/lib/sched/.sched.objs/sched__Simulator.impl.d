lib/sched/simulator.ml: Array Fun List Option Platform Rtlb Schedule String
