lib/sched/priorities.ml: Array Rtlb
