lib/sched/search.mli: Platform Rtlb Schedule
