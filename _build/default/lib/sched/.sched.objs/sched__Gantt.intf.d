lib/sched/gantt.mli: Platform Preemptive Rtlb Schedule
