lib/sched/list_scheduler.ml: Array Fun List Option Platform Rtlb Schedule String Timeline
