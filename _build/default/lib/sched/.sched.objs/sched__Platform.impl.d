lib/sched/platform.ml: Array Format Hashtbl List Option Printf Rtlb String
