lib/sched/preemptive.mli: Rtlb
