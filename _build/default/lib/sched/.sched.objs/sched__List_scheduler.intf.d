lib/sched/list_scheduler.mli: Platform Rtlb Schedule
