lib/sched/timeline.ml: Format List Printf String
