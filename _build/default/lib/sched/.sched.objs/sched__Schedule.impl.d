lib/sched/schedule.ml: Array Dag Format List Option Platform Printf Rtlb String
