lib/sched/horn.ml: Array Flow List Rtlb
