lib/sched/search.ml: Array Fun List List_scheduler Option Platform Rtlb Schedule Set String Timeline
