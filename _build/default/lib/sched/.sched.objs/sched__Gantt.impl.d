lib/sched/gantt.ml: Array Buffer List Option Platform Preemptive Printf Rtlb Schedule String
