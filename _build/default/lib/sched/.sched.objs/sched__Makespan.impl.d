lib/sched/makespan.ml: Array Dag List Rtlb
