lib/sched/horn.mli: Rtlb
