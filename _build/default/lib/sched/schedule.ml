type host = On_proc of string * int | On_node of string * int

type entry = {
  e_task : int;
  e_start : int;
  e_host : host;
  e_resource_units : (string * int) list;
}

type t = entry array

let finish app e = e.e_start + (Rtlb.App.task app e.e_task).Rtlb.Task.compute

let host_equal a b =
  match (a, b) with
  | On_proc (p1, i1), On_proc (p2, i2) -> String.equal p1 p2 && i1 = i2
  | On_node (n1, i1), On_node (n2, i2) -> String.equal n1 n2 && i1 = i2
  | On_proc _, On_node _ | On_node _, On_proc _ -> false

let makespan app t =
  Array.fold_left (fun acc e -> max acc (finish app e)) 0 t

let overlaps app a b =
  let s1 = a.e_start and f1 = finish app a in
  let s2 = b.e_start and f2 = finish app b in
  max s1 s2 < min f1 f2

let check app platform t =
  let problems = ref [] in
  let err fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let n = Rtlb.App.n_tasks app in
  if Array.length t <> n then
    err "schedule has %d entries for %d tasks" (Array.length t) n
  else begin
    Array.iteri
      (fun i e ->
        let task = Rtlb.App.task app i in
        if e.e_task <> i then err "entry %d describes task %d" i e.e_task;
        if e.e_start < task.Rtlb.Task.release then
          err "%s starts at %d before release %d" task.Rtlb.Task.name
            e.e_start task.Rtlb.Task.release;
        if finish app e > task.Rtlb.Task.deadline then
          err "%s finishes at %d after deadline %d" task.Rtlb.Task.name
            (finish app e) task.Rtlb.Task.deadline;
        (* Host validity. *)
        (match (platform, e.e_host) with
        | Platform.Shared_platform { procs; _ }, On_proc (p, k) ->
            if not (String.equal p task.Rtlb.Task.proc) then
              err "%s placed on processor type %s, needs %s"
                task.Rtlb.Task.name p task.Rtlb.Task.proc;
            let avail =
              Option.value ~default:0 (List.assoc_opt p procs)
            in
            if k < 0 || k >= avail then
              err "%s placed on %s#%d but only %d exist"
                task.Rtlb.Task.name p k avail
        | Platform.Dedicated_platform nodes, On_node (name, k) -> (
            match
              List.find_opt
                (fun ((nt : Rtlb.System.node_type), _) ->
                  String.equal nt.Rtlb.System.nt_name name)
                nodes
            with
            | None -> err "%s placed on unknown node type %s" task.Rtlb.Task.name name
            | Some (nt, count) ->
                if k < 0 || k >= count then
                  err "%s placed on %s#%d but only %d exist"
                    task.Rtlb.Task.name name k count;
                if not (Rtlb.System.node_can_host nt task) then
                  err "node type %s cannot host %s" name task.Rtlb.Task.name)
        | Platform.Shared_platform _, On_node _ ->
            err "%s on a node in a shared platform" task.Rtlb.Task.name
        | Platform.Dedicated_platform _, On_proc _ ->
            err "%s on a bare processor in a dedicated platform"
              task.Rtlb.Task.name);
        (* Shared-model resource units held. *)
        match platform with
        | Platform.Shared_platform { resources; _ } ->
            List.iter
              (fun (r, k) ->
                let held =
                  List.filter_map
                    (fun (r', u) -> if String.equal r r' then Some u else None)
                    e.e_resource_units
                in
                if List.length (List.sort_uniq compare held) <> k then
                  err "%s holds %d unit(s) of %s, needs %d"
                    task.Rtlb.Task.name
                    (List.length (List.sort_uniq compare held))
                    r k;
                let avail =
                  Option.value ~default:0 (List.assoc_opt r resources)
                in
                List.iter
                  (fun u ->
                    if u < 0 || u >= avail then
                      err "%s holds %s#%d but only %d exist"
                        task.Rtlb.Task.name r u avail)
                  held)
              task.Rtlb.Task.demands
        | Platform.Dedicated_platform _ ->
            if e.e_resource_units <> [] then
              err "%s holds shared resource units in a dedicated platform"
                task.Rtlb.Task.name)
      t;
    (* Mutual exclusion on hosts and resource units. *)
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if overlaps app t.(i) t.(j) then begin
          if host_equal t.(i).e_host t.(j).e_host then
            err "tasks %d and %d overlap on the same host" i j;
          List.iter
            (fun (r, u) ->
              if
                List.exists
                  (fun (r', u') -> String.equal r r' && u = u')
                  t.(j).e_resource_units
              then
                err "tasks %d and %d overlap on resource unit %s#%d" i j r u)
            t.(i).e_resource_units
        end
      done
    done;
    (* Precedence and communication. *)
    Dag.fold_edges (Rtlb.App.graph app) ~init:() ~f:(fun () ~src ~dst m ->
        let gap =
          if host_equal t.(src).e_host t.(dst).e_host then 0 else m
        in
        if t.(dst).e_start < finish app t.(src) + gap then
          err "task %d starts at %d before message from %d arrives at %d" dst
            t.(dst).e_start src
            (finish app t.(src) + gap))
  end;
  if !problems = [] then Ok () else Error (List.rev !problems)

let pp app ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun e ->
      let task = Rtlb.App.task app e.e_task in
      Format.fprintf ppf "%-6s [%d, %d) on %s@," task.Rtlb.Task.name e.e_start
        (finish app e)
        (match e.e_host with
        | On_proc (p, k) -> Printf.sprintf "%s#%d" p k
        | On_node (nm, k) -> Printf.sprintf "%s#%d" nm k))
    t;
  Format.fprintf ppf "@]"
