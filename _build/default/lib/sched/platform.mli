(** Concrete platform instances the schedulers run against.

    A platform is a system model with multiplicities filled in: so many
    processors of each type plus so many units of each resource (shared
    architecture), or so many nodes of each node type (dedicated
    architecture). *)

type t =
  | Shared_platform of {
      procs : (string * int) list;  (** Processor instances per type. *)
      resources : (string * int) list;  (** Units per resource type. *)
    }
  | Dedicated_platform of (Rtlb.System.node_type * int) list

val shared : procs:(string * int) list -> resources:(string * int) list -> t
(** @raise Invalid_argument on duplicates or negative counts. *)

val dedicated : (Rtlb.System.node_type * int) list -> t

val units : t -> string -> int
(** Total units of a resource or processor type available anywhere in the
    platform (for a dedicated platform, summed over nodes — the quantity
    the paper's [LB_r] bounds from below). *)

val cost : system:Rtlb.System.t -> t -> int
(** Cost of the platform under the matching cost model.
    @raise Invalid_argument when platform and system architectures
    disagree. *)

val generous : Rtlb.System.t -> Rtlb.App.t -> t
(** A platform trivially large enough for any feasible application: one
    processor (or eligible node) per task.  Useful as a feasibility
    sanity check and as a search upper bound. *)

val of_bounds : Rtlb.System.t -> Rtlb.App.t -> Rtlb.Lower_bound.bound list -> t
(** The smallest platform the lower bounds allow: exactly [LB_r] units of
    every resource (shared model), or for the dedicated model a
    cost-minimal node mix covering the bounds — i.e. the Section 7
    optimum.  @raise Invalid_argument when the covering problem is
    infeasible. *)

val pp : Format.formatter -> t -> unit
