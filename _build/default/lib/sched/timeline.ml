(* Sorted list of disjoint non-empty busy intervals. *)
type t = (int * int) list

let empty = []
let busy_intervals t = t

let is_free t ~start ~finish =
  if finish < start then invalid_arg "Timeline.is_free: negative interval";
  start = finish
  || List.for_all (fun (b, e) -> e <= start || finish <= b) t

let add t ~start ~finish =
  if finish < start then invalid_arg "Timeline.add: negative interval";
  if start = finish then t
  else if not (is_free t ~start ~finish) then
    invalid_arg "Timeline.add: overlapping interval"
  else
    let rec insert = function
      | [] -> [ (start, finish) ]
      | (b, e) :: rest when b < start -> (b, e) :: insert rest
      | rest -> (start, finish) :: rest
    in
    insert t

let earliest_gap t ~from ~duration =
  if duration < 0 then invalid_arg "Timeline.earliest_gap: negative duration";
  if duration = 0 then from
  else
    let rec scan candidate = function
      | [] -> candidate
      | (b, e) :: rest ->
          if candidate + duration <= b then candidate
          else scan (max candidate e) rest
    in
    scan from t

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat "; "
       (List.map (fun (b, e) -> Printf.sprintf "%d,%d" b e) t))
