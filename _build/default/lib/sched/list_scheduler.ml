type failure = {
  f_task : int;
  f_start : int;
  f_deadline : int;
  f_partial : Schedule.entry list;
}

(* Mutable placement state: a timeline per exclusive unit. *)
type state = {
  host_lines : (Schedule.host * Timeline.t ref) list;
  resource_lines : (string * Timeline.t ref array) list;
      (* shared model only: one timeline per unit of each resource *)
}

let make_state platform =
  match platform with
  | Platform.Shared_platform { procs; resources } ->
      let host_lines =
        List.concat_map
          (fun (p, count) ->
            List.init count (fun k ->
                (Schedule.On_proc (p, k), ref Timeline.empty)))
          procs
      in
      let resource_lines =
        List.map
          (fun (r, count) ->
            (r, Array.init count (fun _ -> ref Timeline.empty)))
          resources
      in
      { host_lines; resource_lines }
  | Platform.Dedicated_platform nodes ->
      let host_lines =
        List.concat_map
          (fun ((nt : Rtlb.System.node_type), count) ->
            List.init count (fun k ->
                (Schedule.On_node (nt.Rtlb.System.nt_name, k), ref Timeline.empty)))
          nodes
      in
      { host_lines; resource_lines = [] }

let capable_hosts platform state (task : Rtlb.Task.t) =
  match platform with
  | Platform.Shared_platform _ ->
      List.filter
        (fun (h, _) ->
          match h with
          | Schedule.On_proc (p, _) -> String.equal p task.Rtlb.Task.proc
          | Schedule.On_node _ -> false)
        state.host_lines
  | Platform.Dedicated_platform nodes ->
      let capable_types =
        List.filter_map
          (fun ((nt : Rtlb.System.node_type), _) ->
            if Rtlb.System.node_can_host nt task then
              Some nt.Rtlb.System.nt_name
            else None)
          nodes
      in
      List.filter
        (fun (h, _) ->
          match h with
          | Schedule.On_node (name, _) -> List.mem name capable_types
          | Schedule.On_proc _ -> false)
        state.host_lines

(* Earliest start >= [from] at which [line] and, for every demand (r, k),
   k distinct units of r are simultaneously free for [duration]; also
   returns the chosen units.  Terminates because the candidate start
   never decreases and is bounded by the last busy end among all
   timelines. *)
let earliest_joint_start state line ~needs ~from ~duration =
  let rec settle s =
    let s_host = Timeline.earliest_gap !line ~from:s ~duration in
    let s', units =
      List.fold_left
        (fun (acc, units) (r, k) ->
          let pool = List.assoc r state.resource_lines in
          let gaps =
            Array.to_list
              (Array.mapi
                 (fun u tl ->
                   (Timeline.earliest_gap !tl ~from:acc ~duration, u))
                 pool)
            |> List.sort compare
          in
          let rec take n worst chosen = function
            | (g, u) :: rest when n > 0 ->
                take (n - 1) (max worst g) ((r, u) :: chosen) rest
            | _ -> (worst, chosen)
          in
          let t_k, chosen = take k acc [] gaps in
          (max acc t_k, chosen @ units))
        (s_host, []) needs
    in
    if s' = s_host then (s_host, List.rev units) else settle s'
  in
  settle from

let default_priority app i = (Rtlb.App.task app i).Rtlb.Task.deadline

let run ?priority app platform =
  let priority =
    match priority with Some p -> p | None -> default_priority app
  in
  let n = Rtlb.App.n_tasks app in
  let state = make_state platform in
  let placed : Schedule.entry option array = Array.make n None in
  let exception Missed of failure in
  try
    (* Fail early when some task has no capable host, or needs a shared
       resource with zero units on the platform. *)
    Array.iter
      (fun (task : Rtlb.Task.t) ->
        let resources_available =
          match platform with
          | Platform.Dedicated_platform _ -> true
          | Platform.Shared_platform _ ->
              List.for_all
                (fun (r, k) ->
                  match List.assoc_opt r state.resource_lines with
                  | Some pool -> Array.length pool >= k
                  | None -> false)
                task.Rtlb.Task.demands
        in
        if capable_hosts platform state task = [] || not resources_available
        then
          raise
            (Missed
               {
                 f_task = task.Rtlb.Task.id;
                 f_start = max_int;
                 f_deadline = task.Rtlb.Task.deadline;
                 f_partial = [];
               }))
      (Rtlb.App.tasks app);
    for _round = 1 to n do
      (* Highest-priority task whose predecessors are all placed. *)
      let candidate = ref (-1) in
      for i = n - 1 downto 0 do
        if
          placed.(i) = None
          && List.for_all
               (fun p -> placed.(p) <> None)
               (Rtlb.App.preds app i)
        then
          if !candidate = -1 || priority i <= priority !candidate then
            candidate := i
      done;
      let i = !candidate in
      let task = Rtlb.App.task app i in
      let needs =
        match platform with
        | Platform.Shared_platform _ -> task.Rtlb.Task.demands
        | Platform.Dedicated_platform _ -> []
      in
      (* Best (start, host, units) over capable hosts; equal start times
         prefer the least-loaded host so early slots stay open for tasks
         that need them (a busier host would otherwise win by list
         order). *)
      let load line =
        List.fold_left
          (fun acc (b, e) -> acc + e - b)
          0
          (Timeline.busy_intervals !line)
      in
      let best = ref None in
      List.iter
        (fun (host, line) ->
          let ready =
            List.fold_left
              (fun acc p ->
                let pe = Option.get placed.(p) in
                let arrival =
                  Schedule.finish app pe
                  + (if Schedule.host_equal pe.Schedule.e_host host then 0
                     else Rtlb.App.message app ~src:p ~dst:i)
                in
                max acc arrival)
              task.Rtlb.Task.release (Rtlb.App.preds app i)
          in
          let start, units =
            earliest_joint_start state line ~needs ~from:ready
              ~duration:task.Rtlb.Task.compute
          in
          match !best with
          | Some (s, l, _, _, _) when (s, l) <= (start, load line) -> ()
          | _ -> best := Some (start, load line, host, line, units))
        (capable_hosts platform state task);
      let start, _, host, line, units = Option.get !best in
      if start + task.Rtlb.Task.compute > task.Rtlb.Task.deadline then
        raise
          (Missed
             {
               f_task = i;
               f_start = start;
               f_deadline = task.Rtlb.Task.deadline;
               f_partial =
                 Array.to_list placed |> List.filter_map Fun.id
                 |> List.sort (fun a b ->
                        compare a.Schedule.e_start b.Schedule.e_start);
             });
      let finish = start + task.Rtlb.Task.compute in
      line := Timeline.add !line ~start ~finish;
      List.iter
        (fun (r, u) ->
          let pool = List.assoc r state.resource_lines in
          pool.(u) := Timeline.add !(pool.(u)) ~start ~finish)
        units;
      placed.(i) <-
        Some
          {
            Schedule.e_task = i;
            e_start = start;
            e_host = host;
            e_resource_units = units;
          }
    done;
    Ok (Array.map Option.get placed)
  with Missed f -> Error f

let feasible ?priority app platform =
  match run ?priority app platform with
  | Error _ -> false
  | Ok schedule -> (
      match Schedule.check app platform schedule with
      | Ok () -> true
      | Error _ -> false)

let lct_priority system app =
  let windows = Rtlb.Est_lct.compute system app in
  fun i -> windows.Rtlb.Est_lct.lct.(i)
