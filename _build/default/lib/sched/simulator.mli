(** Online dispatch simulation with actual (possibly shorter-than-WCET)
    execution times.

    The list scheduler builds a plan offline; a running system instead
    {e dispatches}: whenever a processor frees up, the highest-priority
    ready task starts on it, with no knowledge of the future.  This
    simulator executes that policy event by event, taking each task's
    {e actual} execution time from a caller-supplied function.

    Its purpose in this repository is the classical sanity check behind
    WCET-based analysis: non-preemptive multiprocessor dispatch suffers
    {e timing anomalies} (Graham 1969) — finishing {e early} can reorder
    the dispatch and make a deadline that was met at WCET be missed at
    shorter execution times.  Experiment E9 measures how often. *)

type outcome = {
  o_finished : bool;  (** Every task completed within its deadline. *)
  o_makespan : int;
  o_first_miss : int option;  (** Task id of the first deadline miss. *)
  o_schedule : Schedule.t option;
      (** The executed assignment when all tasks completed (possibly with
          misses); [None] if dispatch dead-locked (cannot happen on a
          platform where every task has a capable host). *)
}

val run_online :
  ?priority:(int -> int) ->
  actual:(int -> int) ->
  Rtlb.App.t ->
  Platform.t ->
  outcome
(** [actual i] is task [i]'s real execution time, in [\[0, C_i\]]
    (checked).  [priority] as in {!List_scheduler} (default EDF by
    deadline).  Shared-model resource units are acquired with the
    processor and held for the actual duration. *)

val wcet : Rtlb.App.t -> int -> int
(** The identity profile: every task runs exactly its [C_i]. *)

val scaled : Rtlb.App.t -> percent:int -> int -> int
(** [ceil (C_i * percent / 100)], clipped to [\[0, C_i\]]. *)
