(** Optimal preemptive feasibility on identical processors (Horn 1974).

    For independent jobs with release times, deadlines and processing
    times, migratory preemptive feasibility on [m] identical processors
    is decidable exactly by a max-flow over the elementary intervals cut
    by the release/deadline endpoints: source → job (capacity [C_i]),
    job → interval (capacity = interval length, when the job's window
    covers it), interval → sink (capacity [m ×] length).  Feasible iff
    the max flow saturates all [C_i].

    This gives the exact minimum processor count the paper's preemptive
    bound (Theorem 3) is compared against in the benchmarks — greedy EDF
    is not optimal on multiprocessors, this is.

    Jobs are taken from an application's tasks; precedence edges and
    resources are {e ignored} (Horn's model has neither), so use it on
    independent task sets or treat the result as the
    relaxation-feasibility of a richer instance. *)

type job = { j_release : int; j_deadline : int; j_compute : int }

val feasible : jobs:job list -> m:int -> bool
(** @raise Invalid_argument on [m <= 0], negative fields, or a job whose
    window is smaller than its computation time (trivially infeasible
    inputs are the caller's concern — rejecting loudly beats a silent
    [false]). *)

val min_processors : jobs:job list -> int
(** Smallest [m] for which {!feasible} holds (binary search; [0] for an
    empty or zero-work job list). *)

val of_app : Rtlb.App.t -> job list
(** The tasks of an application as independent jobs using the task's own
    release/deadline (precedence, messages, processor types and resources
    dropped). *)

val density_bound : jobs:job list -> int
(** The Theorem 3 (preemptive-overlap) lower bound on processors for the
    same job set.  Always [<= min_processors] (soundness), but {e not}
    always equal: contiguous-interval density ignores that one job cannot
    use two processors at once.  Canonical gap: two full clusters of two
    unit-window jobs at [\[0,2\]] and [\[8,10\]] plus one wide job
    [\[0,10\]] with [C = 8] — every contiguous interval says 2
    processors, the flow (correctly) says 3, because the wide job can
    collect at most 6 units outside the clusters on a single processor.
    The suite pins both the inequality and this gap family down. *)
