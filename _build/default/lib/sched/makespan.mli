(** Exact minimum makespan for small instances (branch and bound).

    Model: non-preemptive tasks with precedence on [m] identical
    processors; deadlines, resources, processor types and communication
    are ignored.  Used to sandwich the Jain–Rajaraman bounds and to
    measure list-scheduling optimality gaps — strictly a test/benchmark
    oracle, exponential in the worst case. *)

val minimum :
  ?node_limit:int -> Rtlb.App.t -> m:int -> int option
(** The optimal makespan, or [None] when the search exceeds [node_limit]
    (default [500_000]) nodes.
    @raise Invalid_argument when [m <= 0]. *)

val greedy : Rtlb.App.t -> m:int -> int
(** Graham list schedule (tasks by topological order, earliest-free
    machine), whose makespan upper-bounds the optimum. *)
