(** Priority-driven non-preemptive list scheduler with communication and
    resource contention, for both platform architectures.

    Repeatedly picks the highest-priority task whose predecessors are all
    placed, and assigns it the host (and, in the shared model, the
    resource units) that lets it start earliest; message latency is paid
    exactly when producer and consumer sit on different hosts.

    The scheduler is a {e sufficient} feasibility test: a returned
    schedule is checked to be feasible, but failure does not prove
    infeasibility (greedy list scheduling is not complete).  This is the
    validation counterpart of the paper's bounds: whenever it succeeds on
    a platform, every [LB_r] must be at most the platform's unit count —
    the property the test suite exercises. *)

type failure = {
  f_task : int;  (** First task that missed its deadline. *)
  f_start : int;  (** Best achievable start time. *)
  f_deadline : int;
  f_partial : Schedule.entry list;  (** Placements made before the miss,
                                        in placement order. *)
}

val run :
  ?priority:(int -> int) ->
  Rtlb.App.t ->
  Platform.t ->
  (Schedule.t, failure) result
(** [priority] maps a task id to its key; smaller keys are served first
    (ties by id).  Defaults to the task deadline (EDF).  A task with no
    capable host on the platform fails immediately with
    [f_start = max_int]. *)

val feasible : ?priority:(int -> int) -> Rtlb.App.t -> Platform.t -> bool
(** [run] succeeded and the schedule passes {!Schedule.check}. *)

val lct_priority : Rtlb.System.t -> Rtlb.App.t -> int -> int
(** Priority by latest completion time from the Section 4 analysis —
    usually a stronger key than the raw deadline. *)
