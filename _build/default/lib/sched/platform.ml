type t =
  | Shared_platform of {
      procs : (string * int) list;
      resources : (string * int) list;
    }
  | Dedicated_platform of (Rtlb.System.node_type * int) list

let check_counts what l =
  let names = List.map fst l in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg (Printf.sprintf "Platform: duplicate %s" what);
  List.iter
    (fun (n, c) ->
      if c < 0 then
        invalid_arg (Printf.sprintf "Platform: negative count of %s" n))
    l

let shared ~procs ~resources =
  check_counts "processor type" procs;
  check_counts "resource" resources;
  Shared_platform { procs; resources }

let dedicated nodes =
  List.iter
    (fun ((nt : Rtlb.System.node_type), c) ->
      if c < 0 then
        invalid_arg
          (Printf.sprintf "Platform: negative count of %s"
             nt.Rtlb.System.nt_name))
    nodes;
  Dedicated_platform nodes

let units t r =
  match t with
  | Shared_platform { procs; resources } -> (
      match List.assoc_opt r procs with
      | Some c -> c
      | None -> ( match List.assoc_opt r resources with Some c -> c | None -> 0))
  | Dedicated_platform nodes ->
      List.fold_left
        (fun acc (nt, c) -> acc + (c * Rtlb.System.node_provides nt r))
        0 nodes

let cost ~system t =
  match (system, t) with
  | Rtlb.System.Shared costs, Shared_platform { procs; resources } ->
      List.fold_left
        (fun acc (r, c) ->
          match List.assoc_opt r costs with
          | Some unit_cost -> acc + (unit_cost * c)
          | None -> invalid_arg ("Platform.cost: no cost for " ^ r))
        0 (procs @ resources)
  | Rtlb.System.Dedicated _, Dedicated_platform nodes ->
      List.fold_left
        (fun acc ((nt : Rtlb.System.node_type), c) ->
          acc + (nt.Rtlb.System.nt_cost * c))
        0 nodes
  | _ -> invalid_arg "Platform.cost: architecture mismatch"

let generous system app =
  let tasks = Array.to_list (Rtlb.App.tasks app) in
  match system with
  | Rtlb.System.Shared _ ->
      let count_by key =
        List.fold_left
          (fun acc task ->
            List.fold_left
              (fun acc (k, units) ->
                let c = try List.assoc k acc with Not_found -> 0 in
                (k, c + units) :: List.remove_assoc k acc)
              acc (key task))
          [] tasks
      in
      let procs =
        count_by (fun (t : Rtlb.Task.t) -> [ (t.Rtlb.Task.proc, 1) ])
      in
      let resources = count_by (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.demands) in
      shared ~procs ~resources
  | Rtlb.System.Dedicated nts ->
      (* One eligible node per task, attributed to the first eligible
         type. *)
      let counts = Hashtbl.create 8 in
      List.iter
        (fun task ->
          match Rtlb.System.eligible_nodes system task with
          | nt :: _ ->
              let c =
                Option.value ~default:0
                  (Hashtbl.find_opt counts nt.Rtlb.System.nt_name)
              in
              Hashtbl.replace counts nt.Rtlb.System.nt_name (c + 1)
          | [] ->
              invalid_arg
                ("Platform.generous: no node for task "
                ^ task.Rtlb.Task.name))
        tasks;
      dedicated
        (List.filter_map
           (fun nt ->
             match Hashtbl.find_opt counts nt.Rtlb.System.nt_name with
             | Some c -> Some (nt, c)
             | None -> None)
           nts)

let of_bounds system app bounds =
  match system with
  | Rtlb.System.Shared _ ->
      let proc_types =
        Array.to_list (Rtlb.App.tasks app)
        |> List.map (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.proc)
        |> List.sort_uniq String.compare
      in
      let procs, resources =
        List.partition
          (fun (b : Rtlb.Lower_bound.bound) ->
            List.mem b.Rtlb.Lower_bound.resource proc_types)
          bounds
      in
      let pairs l =
        List.map
          (fun (b : Rtlb.Lower_bound.bound) ->
            (b.Rtlb.Lower_bound.resource, b.Rtlb.Lower_bound.lb))
          l
      in
      shared ~procs:(pairs procs) ~resources:(pairs resources)
  | Rtlb.System.Dedicated nts -> (
      match Rtlb.Cost.dedicated_bound system app bounds with
      | Error e -> invalid_arg ("Platform.of_bounds: " ^ e)
      | Ok d ->
          dedicated
            (List.filter_map
               (fun (nt : Rtlb.System.node_type) ->
                 match
                   List.assoc_opt nt.Rtlb.System.nt_name
                     d.Rtlb.Cost.d_counts
                 with
                 | Some c when c > 0 -> Some (nt, c)
                 | _ -> None)
               nts))

let pp ppf = function
  | Shared_platform { procs; resources } ->
      Format.fprintf ppf "shared platform:";
      List.iter (fun (p, c) -> Format.fprintf ppf " %dx%s" c p) procs;
      List.iter (fun (r, c) -> Format.fprintf ppf " %dx%s" c r) resources
  | Dedicated_platform nodes ->
      Format.fprintf ppf "dedicated platform:";
      List.iter
        (fun ((nt : Rtlb.System.node_type), c) ->
          Format.fprintf ppf " %dx%s" c nt.Rtlb.System.nt_name)
        nodes
