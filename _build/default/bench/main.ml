(* Benchmark harness: regenerates every table and figure-derived artefact
   of the paper (sections T1, S8-2..4, F2/F3) and runs the
   characterisation experiments E1..E6 from DESIGN.md.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- paper   -- only the paper reproduction
     dune exec bench/main.exe -- e3 e5   -- selected experiments *)

let sections =
  [
    ("t1", Paper_tables.table1);
    ("step2", Paper_tables.partitions);
    ("step3", Paper_tables.bounds);
    ("step4", Paper_tables.costs);
    ("trace", Paper_tables.traces);
    ("e1", Experiments.tightness);
    ("e2", Experiments.baselines);
    ("e3", Experiments.synthesis);
    ("e4", Experiments.preemption);
    ("e5", Experiments.partitioning);
    ("e6", Experiments.scaling);
    ("e7", Experiments.point_policies);
    ("e8", Experiments.preemptive_exactness);
    ("e9", Experiments.anomalies);
    ("e10", Experiments.time_bounds);
    ("e11", Experiments.priorities);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (( <> ) "--") args in
  let wanted =
    match args with
    | [] -> List.map fst sections
    | [ "paper" ] -> [ "t1"; "step2"; "step3"; "step4"; "trace" ]
    | [ "experiments" ] -> [ "e1"; "e2"; "e3"; "e4"; "e5"; "e6"; "e7"; "e8"; "e9"; "e10"; "e11" ]
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    wanted
