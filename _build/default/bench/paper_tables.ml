(* Reproduction of every table and figure-derived artefact in the paper:

     T1    Table 1 (EST/LCT and merge sets of the 15-task example)
     S8-2  Section 8 Step 2 (the three partitions)
     S8-3  Section 8 Step 3 (LB values and quoted demand quotients)
     S8-4  Section 8 Step 4 (shared cost; dedicated ILP and optimum)
     F2/F3 the worked merge traces for L_9 and L_5 (Figures 2/3 in action)

   Each section prints our regenerated values next to the paper's printed
   ones with a match flag; EXPERIMENTS.md records the same comparison. *)

let app = Rtlb.Paper_example.app
let shared = Rtlb.Paper_example.shared
let dedicated = Rtlb.Paper_example.dedicated
let windows = Rtlb.Est_lct.compute shared app

let name i = (Rtlb.App.task app i).Rtlb.Task.name

let set_to_string ids =
  if ids = [] then "-"
  else "{" ^ String.concat "," (List.map (fun i -> string_of_int (i + 1)) ids) ^ "}"

let table1 () =
  Bench_util.section "T1: Table 1 - EST and LCT of the example application";
  let t =
    Rtfmt.Table.create
      [ "task"; "E_i"; "paper"; "ok"; "M_i"; "L_i"; "paper"; "ok"; "G_i" ]
  in
  let mismatches = ref 0 in
  for i = 0 to Rtlb.App.n_tasks app - 1 do
    let e = windows.Rtlb.Est_lct.est.(i) and l = windows.Rtlb.Est_lct.lct.(i) in
    let pe = Rtlb.Paper_example.expected_est.(i) in
    let pl = Rtlb.Paper_example.expected_lct.(i) in
    let oke = if e = pe then "y" else "N" in
    let okl = if l = pl then "y" else "N" in
    if e <> pe || l <> pl then incr mismatches;
    Rtfmt.Table.add_row t
      [
        name i;
        string_of_int e;
        string_of_int pe;
        oke;
        set_to_string windows.Rtlb.Est_lct.est_merged.(i);
        string_of_int l;
        string_of_int pl;
        okl;
        set_to_string windows.Rtlb.Est_lct.lct_merged.(i);
      ]
  done;
  Rtfmt.Table.print t;
  Printf.printf
    "%d/30 cells differ from the paper: L_11 = 35 as printed is impossible \
     (task 11 feeds task 15, capping L_11 at lst({15}) = 30).\n"
    !mismatches

let partitions () =
  Bench_util.section "S8-2: Step 2 - partitions of ST_r";
  let est = windows.Rtlb.Est_lct.est and lct = windows.Rtlb.Est_lct.lct in
  let paper_partition = function
    | "P1" -> "{1,2,3,4,5} < {9} < {10,11,13,14} < {12,15}"
    | "P2" -> "{6,7} < {8}"
    | "r1" -> "{1,2} < {5} < {10,13,14} < {15}"
    | _ -> "?"
  in
  let t = Rtfmt.Table.create [ "resource"; "ours"; "paper"; "ok" ] in
  List.iter
    (fun r ->
      let p = Rtlb.Partition.compute ~est ~lct (Rtlb.App.tasks_using app r) in
      let ours =
        String.concat " < "
          (List.map
             (fun b -> set_to_string (List.sort compare b))
             p.Rtlb.Partition.blocks)
      in
      let paper = paper_partition r in
      Rtfmt.Table.add_row t
        [ r; ours; paper; (if ours = paper then "y" else "N") ])
    (Rtlb.App.resource_set app);
  Rtfmt.Table.print t

let bounds () =
  Bench_util.section "S8-3: Step 3 - resource lower bounds";
  let est = windows.Rtlb.Est_lct.est and lct = windows.Rtlb.Est_lct.lct in
  let t =
    Rtfmt.Table.create [ "resource"; "LB (ours)"; "LB (paper)"; "ok"; "witness" ]
  in
  List.iter
    (fun (r, expected) ->
      let b = Rtlb.Lower_bound.for_resource ~est ~lct app r in
      let witness =
        match b.Rtlb.Lower_bound.witness with
        | Some w ->
            Printf.sprintf "Theta(%s,%d,%d)=%d" r w.Rtlb.Lower_bound.w_t1
              w.Rtlb.Lower_bound.w_t2 w.Rtlb.Lower_bound.w_theta
        | None -> "-"
      in
      Rtfmt.Table.add_row t
        [
          r;
          string_of_int b.Rtlb.Lower_bound.lb;
          string_of_int expected;
          (if b.Rtlb.Lower_bound.lb = expected then "y" else "N");
          witness;
        ])
    Rtlb.Paper_example.expected_bounds;
  Rtfmt.Table.print t;
  Bench_util.subsection "quoted demand quotients (Section 8 Step 3)";
  let theta = Rtlb.Lower_bound.theta ~est ~lct app (Rtlb.App.tasks_using app "P1") in
  let q =
    Rtfmt.Table.create [ "interval"; "Theta (ours)"; "Theta (paper)"; "ceil" ]
  in
  Rtfmt.Table.add_row q [ "[0,3]"; string_of_int (theta ~t1:0 ~t2:3); "6"; "2" ];
  Rtfmt.Table.add_row q [ "[3,6]"; string_of_int (theta ~t1:3 ~t2:6); "9"; "3" ];
  Rtfmt.Table.add_row q [ "[3,8]"; string_of_int (theta ~t1:3 ~t2:8); "11"; "3" ];
  Rtfmt.Table.print q;
  Printf.printf
    "(the paper's Theta(P1,3,8) = 11 omits task 5's unavoidable tail overlap \
     alpha(9-7) = 2; both values round up to the same bound 3)\n"

let costs () =
  Bench_util.section "S8-4: Step 4 - system cost bounds";
  let a = Rtlb.Analysis.run shared app in
  Format.printf "shared model:   %a@." Rtlb.Cost.pp_outcome a.Rtlb.Analysis.cost;
  Printf.printf
    "paper:          3*CostR(P1) + 2*CostR(P2) + 2*CostR(r1)  (costs here: 5/4/3)\n";
  let d = Rtlb.Analysis.run dedicated app in
  (match d.Rtlb.Analysis.cost with
  | Rtlb.Cost.Dedicated_cost dc ->
      Format.printf "dedicated model: %a@." Rtlb.Cost.pp_outcome d.Rtlb.Analysis.cost;
      Format.printf "ILP solved:@.%a@." Lp.Problem.pp dc.Rtlb.Cost.d_problem;
      let t = Rtfmt.Table.create [ "node type"; "x (ours)"; "x (paper)"; "ok" ] in
      List.iter2
        (fun (n, x) (pn, px) ->
          assert (n = pn);
          Rtfmt.Table.add_row t
            [ n; string_of_int x; string_of_int px; (if x = px then "y" else "N") ])
        dc.Rtlb.Cost.d_counts Rtlb.Paper_example.expected_dedicated_counts;
      Rtfmt.Table.print t
  | _ -> Printf.printf "unexpected cost outcome\n");
  (* Cross-validation the paper could not do: the bound-sized platforms
     actually schedule. *)
  let ps = Sched.Platform.of_bounds shared app a.Rtlb.Analysis.bounds in
  let pd = Sched.Platform.of_bounds dedicated app d.Rtlb.Analysis.bounds in
  Format.printf
    "validation: bound-sized shared platform (%a) schedulable: %b@."
    Sched.Platform.pp ps
    (Sched.List_scheduler.feasible app ps);
  Format.printf
    "validation: bound-sized dedicated platform (%a) schedulable: %b@."
    Sched.Platform.pp pd
    (Sched.List_scheduler.feasible app pd)

let traces () =
  Bench_util.section "F2/F3: worked merge derivations (Section 8 prose)";
  Bench_util.subsection "LCT of task 9 (expected: 18 -> merge 14 -> 19, stop at 13)";
  Format.printf "%a@." (Rtlb.Est_lct.pp_trace app) windows.Rtlb.Est_lct.lct_trace.(8);
  Bench_util.subsection "LCT of task 5 (expected: lms_9=7, lms_8=15 -> 15, task 8 not mergeable)";
  Format.printf "%a@." (Rtlb.Est_lct.pp_trace app) windows.Rtlb.Est_lct.lct_trace.(4);
  Bench_util.subsection "EST of task 9 (merges task 5)";
  Format.printf "%a@." (Rtlb.Est_lct.pp_trace app) windows.Rtlb.Est_lct.est_trace.(8)

let all () =
  table1 ();
  partitions ();
  bounds ();
  costs ();
  traces ()
