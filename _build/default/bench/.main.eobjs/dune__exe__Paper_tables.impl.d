bench/paper_tables.ml: Array Bench_util Format List Lp Printf Rtfmt Rtlb Sched String
