bench/main.mli:
