bench/experiments.ml: Array Baselines Bench_util Dag List Lp Printf Rtfmt Rtlb Sched Synth Workload
