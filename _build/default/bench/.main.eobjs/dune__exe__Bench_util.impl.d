bench/bench_util.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Staged String Test Time Toolkit Unix
