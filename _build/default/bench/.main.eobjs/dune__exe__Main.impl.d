bench/main.ml: Array Experiments List Paper_tables Printf String Sys
