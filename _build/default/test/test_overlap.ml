(* Tests for Theorems 3 and 4: the task/interval overlap formulas. *)

open Helpers

let psi = Rtlb.Overlap.psi

(* Window [E, L] = [4, 14], C = 6 throughout the case tests. *)
let np = psi ~preemptive:false ~est:4 ~lct:14 ~compute:6
let pr = psi ~preemptive:true ~est:4 ~lct:14 ~compute:6

let definitions () =
  check_int "alpha positive" 5 (Rtlb.Overlap.alpha 5);
  check_int "alpha negative" 0 (Rtlb.Overlap.alpha (-5));
  check_int "alpha zero" 0 (Rtlb.Overlap.alpha 0);
  check_int "mu positive" 1 (Rtlb.Overlap.mu 3);
  check_int "mu zero" 0 (Rtlb.Overlap.mu 0);
  check_int "mu negative" 0 (Rtlb.Overlap.mu (-3))

(* Case 1: disjoint intervals -> 0. *)
let case1 () =
  check_int "interval before window (np)" 0 (np ~t1:0 ~t2:4);
  check_int "interval after window (np)" 0 (np ~t1:14 ~t2:20);
  check_int "interval before window (p)" 0 (pr ~t1:1 ~t2:3);
  check_int "interval after window (p)" 0 (pr ~t1:15 ~t2:20)

(* Case 2: window inside interval -> full C. *)
let case2 () =
  check_int "containment (np)" 6 (np ~t1:0 ~t2:20);
  check_int "containment exact (np)" 6 (np ~t1:4 ~t2:14);
  check_int "containment (p)" 6 (pr ~t1:0 ~t2:20)

(* Case 3: interval covers the tail of the window: run early. *)
let case3 () =
  (* [8, 20]: early run occupies [4, 10]; overlap = 10 - 8 = 2. *)
  check_int "tail (np)" 2 (np ~t1:8 ~t2:20);
  check_int "tail (p)" 2 (pr ~t1:8 ~t2:20);
  check_int "tail, escapes fully" 0 (np ~t1:10 ~t2:20)

(* Case 4: interval covers the head of the window: run late. *)
let case4 () =
  (* [0, 10]: late run occupies [8, 14]; overlap = 10 - 8 = 2. *)
  check_int "head (np)" 2 (np ~t1:0 ~t2:10);
  check_int "head (p)" 2 (pr ~t1:0 ~t2:10);
  check_int "head, escapes fully" 0 (np ~t1:0 ~t2:8)

(* Case 5: interval strictly inside the window — the theorems differ. *)
let case5 () =
  (* [7, 11] inside [4, 14]: non-preemptive must cross the interval by at
     least min(C - head-room, C - tail-room, len):
       head = alpha(6 - 3) = 3, tail = alpha(6 - 3) = 3, len = 4 -> 3.
     Preemptive can split: alpha(6 - 3 - 3) = 0. *)
  check_int "inside (np)" 3 (np ~t1:7 ~t2:11);
  check_int "inside (p)" 0 (pr ~t1:7 ~t2:11);
  (* Tight window: C = L - E leaves no slack for either. *)
  let tight = psi ~est:4 ~lct:10 ~compute:6 in
  check_int "no-slack (np)" 2 (tight ~preemptive:false ~t1:6 ~t2:8);
  check_int "no-slack (p)" 2 (tight ~preemptive:true ~t1:6 ~t2:8)

let degenerate () =
  check_int "zero compute" 0 (psi ~preemptive:false ~est:0 ~lct:10 ~compute:0 ~t1:2 ~t2:8);
  Alcotest.check_raises "empty interval rejected"
    (Invalid_argument "Overlap.psi: empty interval") (fun () ->
      ignore (np ~t1:5 ~t2:5))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_case =
  (* (est, window slack, compute, t1, t2 extent) with everything small *)
  QCheck.make
    ~print:(fun (e, slack, c, t1, len, p) ->
      Printf.sprintf "E=%d L=%d C=%d [%d,%d] %spreemptive" e
        (e + c + slack) c t1 (t1 + len)
        (if p then "" else "non-"))
    QCheck.Gen.(
      map
        (fun (e, slack, c, t1, len, p) -> (e, slack, c, t1, len, p))
        (tup6 (int_range 0 10) (int_range 0 10) (int_range 0 10)
           (int_range 0 25) (int_range 1 25) bool))

let params (e, slack, c, t1, len, p) =
  (e, e + c + slack, c, t1, t1 + len, p)

let prop_tests =
  [
    qtest ~count:2000 "closed form matches brute force" arb_case (fun x ->
        let est, lct, compute, t1, t2, preemptive = params x in
        psi ~preemptive ~est ~lct ~compute ~t1 ~t2
        = Rtlb.Overlap.brute_force ~preemptive ~est ~lct ~compute ~t1 ~t2);
    qtest ~count:2000 "preemptive never exceeds non-preemptive" arb_case
      (fun x ->
        let est, lct, compute, t1, t2, _ = params x in
        psi ~preemptive:true ~est ~lct ~compute ~t1 ~t2
        <= psi ~preemptive:false ~est ~lct ~compute ~t1 ~t2);
    qtest ~count:2000 "bounded by C and interval length" arb_case (fun x ->
        let est, lct, compute, t1, t2, preemptive = params x in
        let v = psi ~preemptive ~est ~lct ~compute ~t1 ~t2 in
        0 <= v && v <= compute && v <= t2 - t1);
    qtest ~count:2000 "full window demands full compute" arb_case (fun x ->
        let est, lct, compute, _, _, preemptive = params x in
        compute = 0 || est >= lct
        || psi ~preemptive ~est ~lct ~compute ~t1:est ~t2:lct = compute);
    qtest ~count:2000 "monotone in interval inclusion" arb_case (fun x ->
        let est, lct, compute, t1, t2, preemptive = params x in
        let v = psi ~preemptive ~est ~lct ~compute ~t1 ~t2 in
        let wider = psi ~preemptive ~est ~lct ~compute ~t1:(t1 - 1) ~t2:(t2 + 1) in
        v <= wider);
    qtest ~count:2000 "superadditive across a split point" arb_case (fun x ->
        let est, lct, compute, t1, t2, preemptive = params x in
        (* Psi(t1,t3) >= Psi(t1,t2) + Psi(t2,t3): mandatory work only adds *)
        let t3 = t2 + 3 in
        psi ~preemptive ~est ~lct ~compute ~t1 ~t2:t3
        >= psi ~preemptive ~est ~lct ~compute ~t1 ~t2
           + psi ~preemptive ~est ~lct ~compute ~t1:t2 ~t2:t3);
  ]

let suite =
  [
    ( "overlap",
      [
        Alcotest.test_case "alpha and mu" `Quick definitions;
        Alcotest.test_case "case 1: disjoint" `Quick case1;
        Alcotest.test_case "case 2: containment" `Quick case2;
        Alcotest.test_case "case 3: run early" `Quick case3;
        Alcotest.test_case "case 4: run late" `Quick case4;
        Alcotest.test_case "case 5: interior interval" `Quick case5;
        Alcotest.test_case "degenerate inputs" `Quick degenerate;
      ]
      @ prop_tests );
  ]
