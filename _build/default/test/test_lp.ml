(* Tests for the simplex LP solver and the branch-and-bound ILP. *)

open Helpers

let ri = Rat.of_int

let check_rat msg expected actual =
  Alcotest.(check string) msg (Rat.to_string expected) (Rat.to_string actual)

let solve_ints ~sense ~objective rows =
  Lp.Simplex.solve (Lp.Problem.of_ints ~sense ~objective rows)

let optimal = function
  | Lp.Simplex.Optimal { value; point } -> (value, point)
  | Lp.Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"
  | Lp.Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"

(* max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  (classic; opt 36 at (2,6)) *)
let textbook_max () =
  let value, point =
    optimal
      (solve_ints ~sense:Lp.Problem.Maximize ~objective:[| 3; 5 |]
         [
           ([| 1; 0 |], Lp.Problem.Le, 4);
           ([| 0; 2 |], Lp.Problem.Le, 12);
           ([| 3; 2 |], Lp.Problem.Le, 18);
         ])
  in
  check_rat "value" (ri 36) value;
  check_rat "x" (ri 2) point.(0);
  check_rat "y" (ri 6) point.(1)

(* min x + y st x + 2y >= 4, 3x + y >= 6  -> fractional optimum *)
let min_with_ge () =
  let value, point =
    optimal
      (solve_ints ~sense:Lp.Problem.Minimize ~objective:[| 1; 1 |]
         [
           ([| 1; 2 |], Lp.Problem.Ge, 4);
           ([| 3; 1 |], Lp.Problem.Ge, 6);
         ])
  in
  (* intersection: x = 8/5, y = 6/5 -> value 14/5 *)
  check_rat "value" (Rat.make 14 5) value;
  check_rat "x" (Rat.make 8 5) point.(0);
  check_rat "y" (Rat.make 6 5) point.(1)

let equality_constraint () =
  (* min 2x + 3y with x + y = 10: put everything on the cheaper x. *)
  let value, point =
    optimal
      (solve_ints ~sense:Lp.Problem.Minimize ~objective:[| 2; 3 |]
         [
           ([| 1; 1 |], Lp.Problem.Eq, 10);
           ([| 1; 0 |], Lp.Problem.Ge, 3);
         ])
  in
  check_rat "value" (ri 20) value;
  check_rat "x" (ri 10) point.(0);
  check_rat "y" Rat.zero point.(1)

let infeasible_detected () =
  match
    solve_ints ~sense:Lp.Problem.Minimize ~objective:[| 1 |]
      [
        ([| 1 |], Lp.Problem.Ge, 5);
        ([| 1 |], Lp.Problem.Le, 3);
      ]
  with
  | Lp.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let unbounded_detected () =
  match
    solve_ints ~sense:Lp.Problem.Maximize ~objective:[| 1; 0 |]
      [ ([| 0; 1 |], Lp.Problem.Le, 4) ]
  with
  | Lp.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let negative_rhs_normalised () =
  (* x >= -2 is vacuous for x >= 0: optimum at 0. *)
  let value, _ =
    optimal
      (solve_ints ~sense:Lp.Problem.Minimize ~objective:[| 1 |]
         [ ([| -1 |], Lp.Problem.Le, 2) ])
  in
  check_rat "value" Rat.zero value

let degenerate_ok () =
  (* Redundant constraints force degenerate pivots; Bland's rule must
     terminate. *)
  let value, _ =
    optimal
      (solve_ints ~sense:Lp.Problem.Maximize ~objective:[| 1; 1 |]
         [
           ([| 1; 1 |], Lp.Problem.Le, 10);
           ([| 2; 2 |], Lp.Problem.Le, 20);
           ([| 1; 0 |], Lp.Problem.Le, 10);
           ([| 0; 1 |], Lp.Problem.Le, 10);
         ])
  in
  check_rat "value" (ri 10) value

let paper_ilp () =
  (* Section 8 Step 4: min 10 x1 + 6 x2 + 7 x3
     st x1 + x2 >= 3, x1 >= 2, x3 >= 2 -> (2, 1, 2), cost 40. *)
  let p =
    Lp.Problem.of_ints ~sense:Lp.Problem.Minimize ~objective:[| 10; 6; 7 |]
      [
        ([| 1; 1; 0 |], Lp.Problem.Ge, 3);
        ([| 1; 0; 0 |], Lp.Problem.Ge, 2);
        ([| 0; 0; 1 |], Lp.Problem.Ge, 2);
      ]
  in
  match Lp.Ilp.solve p with
  | Lp.Ilp.Optimal { value; point } ->
      check_rat "cost" (ri 40) value;
      check_int_list "solution" [ 2; 1; 2 ] (Array.to_list point)
  | _ -> Alcotest.fail "expected optimal"

let ilp_needs_branching () =
  (* max x + y st 2x + 2y <= 3: LP opt 3/2 fractional, ILP opt 1. *)
  let p =
    Lp.Problem.of_ints ~sense:Lp.Problem.Maximize ~objective:[| 1; 1 |]
      [ ([| 2; 2 |], Lp.Problem.Le, 3) ]
  in
  (match Lp.Ilp.relaxation p with
  | Lp.Simplex.Optimal { value; _ } -> check_rat "relaxed" (Rat.make 3 2) value
  | _ -> Alcotest.fail "relaxation should be optimal");
  match Lp.Ilp.solve p with
  | Lp.Ilp.Optimal { value; _ } -> check_rat "integer" (ri 1) value
  | _ -> Alcotest.fail "expected optimal"

let ilp_infeasible () =
  (* 2x = 1 has no integer solution (branching must exhaust). *)
  let p =
    Lp.Problem.of_ints ~sense:Lp.Problem.Minimize ~objective:[| 1 |]
      [ ([| 2 |], Lp.Problem.Eq, 1) ]
  in
  match Lp.Ilp.solve p with
  | Lp.Ilp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let lp_format_export () =
  let p =
    Lp.Problem.of_ints ~var_names:[| "N1"; "N2" |] ~sense:Lp.Problem.Minimize
      ~objective:[| 10; 6 |]
      [ ([| 1; 1 |], Lp.Problem.Ge, 3); ([| 1; 0 |], Lp.Problem.Eq, 2) ]
  in
  let text = Lp.Problem.to_lp_format p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("lp format has " ^ needle) true
        (Helpers.string_contains ~needle text))
    [
      "Minimize"; "obj: 10 N1 + 6 N2"; "Subject To"; "c0: 1 N1 + 1 N2 >= 3";
      "c1: 1 N1 = 2"; "General"; "End";
    ]

(* ------------------------------------------------------------------ *)
(* Properties: random small covering ILPs vs exhaustive enumeration.   *)
(* ------------------------------------------------------------------ *)

type cover = {
  costs : int array;  (* 2..3 vars, costs 1..9 *)
  rows : (int array * int) list;  (* coeffs 0..3, rhs 0..6, all >= *)
}

let arb_cover =
  let gen st =
    let n = 2 + QCheck.Gen.int_bound 1 st in
    let costs = Array.init n (fun _ -> 1 + QCheck.Gen.int_bound 8 st) in
    let n_rows = 1 + QCheck.Gen.int_bound 2 st in
    let rows =
      List.init n_rows (fun _ ->
          ( Array.init n (fun _ -> QCheck.Gen.int_bound 3 st),
            QCheck.Gen.int_bound 6 st ))
    in
    { costs; rows }
  in
  let print c =
    Printf.sprintf "min %s st %s"
      (String.concat "+"
         (Array.to_list (Array.mapi (fun i c -> Printf.sprintf "%dx%d" c i) c.costs)))
      (String.concat "; "
         (List.map
            (fun (row, b) ->
              Printf.sprintf "%s >= %d"
                (String.concat "+"
                   (Array.to_list (Array.mapi (fun i c -> Printf.sprintf "%dx%d" c i) row)))
                b)
            c.rows))
  in
  QCheck.make ~print gen

let brute_force_cover { costs; rows } =
  (* Enumerate x in [0, 10]^n; 10 covers any rhs <= 6 with coeff >= 1. *)
  let n = Array.length costs in
  let best = ref None in
  let x = Array.make n 0 in
  let rec go d =
    if d = n then begin
      let ok =
        List.for_all
          (fun (row, b) ->
            let lhs = ref 0 in
            Array.iteri (fun i c -> lhs := !lhs + (c * x.(i))) row;
            !lhs >= b)
          rows
      in
      if ok then begin
        let cost = ref 0 in
        Array.iteri (fun i c -> cost := !cost + (c * x.(i))) costs;
        match !best with
        | Some b when b <= !cost -> ()
        | _ -> best := Some !cost
      end
    end
    else
      for v = 0 to 10 do
        x.(d) <- v;
        go (d + 1)
      done
  in
  go 0;
  !best

let cover_problem { costs; rows } =
  Lp.Problem.of_ints ~sense:Lp.Problem.Minimize ~objective:costs
    (List.map (fun (row, b) -> (row, Lp.Problem.Ge, b)) rows)

let prop_tests =
  [
    qtest ~count:300 "ILP matches brute force on covering problems" arb_cover
      (fun c ->
        let expected = brute_force_cover c in
        match (Lp.Ilp.solve (cover_problem c), expected) with
        | Lp.Ilp.Optimal { value; point }, Some cost ->
            Rat.equal value (ri cost)
            && Lp.Problem.satisfies (cover_problem c)
                 (Array.map ri point)
        | Lp.Ilp.Infeasible, None -> true
        | _ -> false);
    qtest ~count:300 "LP relaxation lower-bounds the ILP" arb_cover (fun c ->
        match
          (Lp.Ilp.solve (cover_problem c), Lp.Ilp.relaxation (cover_problem c))
        with
        | Lp.Ilp.Optimal { value = iv; _ }, Lp.Simplex.Optimal { value = rv; _ }
          ->
            Rat.(rv <= iv)
        | Lp.Ilp.Infeasible, _ -> true
        | _ -> false);
    qtest ~count:300 "simplex point satisfies its constraints" arb_cover
      (fun c ->
        let p = cover_problem c in
        match Lp.Simplex.solve p with
        | Lp.Simplex.Optimal { point; _ } -> Lp.Problem.satisfies p point
        | Lp.Simplex.Infeasible ->
            (* possible: a zero row with positive rhs *)
            brute_force_cover c = None
        | Lp.Simplex.Unbounded -> false);
  ]

let suite =
  [
    ( "lp",
      [
        Alcotest.test_case "textbook maximisation" `Quick textbook_max;
        Alcotest.test_case "minimisation with >= rows" `Quick min_with_ge;
        Alcotest.test_case "equality constraint" `Quick equality_constraint;
        Alcotest.test_case "infeasible detected" `Quick infeasible_detected;
        Alcotest.test_case "unbounded detected" `Quick unbounded_detected;
        Alcotest.test_case "negative rhs normalised" `Quick
          negative_rhs_normalised;
        Alcotest.test_case "degenerate pivots terminate" `Quick degenerate_ok;
        Alcotest.test_case "paper's Step 4 ILP" `Quick paper_ilp;
        Alcotest.test_case "branching needed" `Quick ilp_needs_branching;
        Alcotest.test_case "integer-infeasible detected" `Quick ilp_infeasible;
        Alcotest.test_case "LP-format export" `Quick lp_format_export;
      ]
      @ prop_tests );
  ]
