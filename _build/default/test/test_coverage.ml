(* Corner-path coverage: exercises branches the themed suites do not —
   dedicated-model rendering/encoding, the full report, file IO, and a
   handful of invariants phrased as quick properties. *)

open Helpers

let paper = Rtlb.Paper_example.app

let dedicated_platform =
  Sched.Platform.dedicated
    (List.map
       (fun (nt : Rtlb.System.node_type) ->
         (nt, match nt.Rtlb.System.nt_name with "N2" -> 1 | _ -> 2))
       (Rtlb.System.node_types Rtlb.Paper_example.dedicated))

let dedicated_gantt () =
  match Sched.List_scheduler.run paper dedicated_platform with
  | Error _ -> Alcotest.fail "setup"
  | Ok s ->
      let out = Sched.Gantt.render paper dedicated_platform s in
      List.iter
        (fun needle ->
          check_bool ("gantt row " ^ needle) true (string_contains ~needle out))
        [ "N1#0"; "N1#1"; "N2#0"; "N3#1" ]

let dedicated_json () =
  let a = Rtlb.Analysis.run Rtlb.Paper_example.dedicated paper in
  let v = Rtfmt.Json.of_analysis a in
  let v = Rtfmt.Json.parse (Rtfmt.Json.to_string v) in
  match Rtfmt.Json.member "cost" v with
  | cost -> (
      (match Rtfmt.Json.member "model" cost with
      | Rtfmt.Json.Str "dedicated" -> ()
      | _ -> Alcotest.fail "model");
      (match Rtfmt.Json.member "bound" cost with
      | Rtfmt.Json.Int 40 -> ()
      | _ -> Alcotest.fail "bound");
      match Rtfmt.Json.member "nodes" cost with
      | Rtfmt.Json.Obj nodes ->
          Alcotest.(check (list string))
            "node names" [ "N1"; "N2"; "N3" ] (List.map fst nodes)
      | _ -> Alcotest.fail "nodes")

let full_report () =
  let a = Rtlb.Analysis.run Rtlb.Paper_example.shared paper in
  let text = Rtfmt.Report.render ~demand_windows:4 a in
  List.iter
    (fun needle ->
      check_bool ("report has " ^ needle) true (string_contains ~needle text))
    [
      "task windows"; "resource bounds"; "criticality"; "demand profiles";
      "| T12  | 30 | 30 |"; "shared cost >= 29";
    ];
  (* windows/bounds tables as standalone values *)
  let wt = Rtfmt.Table.render (Rtfmt.Report.windows_table a) in
  check_bool "windows table critical flag" true (string_contains ~needle:"*" wt);
  let bt = Rtfmt.Table.render (Rtfmt.Report.bounds_table a) in
  check_bool "bounds table partition" true
    (string_contains ~needle:"{T2,T1" bt)

let sensitivity_dedicated_cost () =
  let samples =
    Rtlb.Sensitivity.deadline_sweep Rtlb.Paper_example.dedicated paper
      ~factors:[ 1.0 ]
  in
  match samples with
  | [ s ] -> Alcotest.(check (option int)) "ILP cost" (Some 40) s.Rtlb.Sensitivity.s_shared_cost
  | _ -> Alcotest.fail "one sample"

let timebound_dedicated () =
  let capacity = function "P1" -> 3 | "P2" -> 2 | "r1" -> 2 | _ -> 0 in
  match
    Rtlb.Time_bound.minimum_completion_time Rtlb.Paper_example.dedicated paper
      ~capacity
  with
  | Some tb -> check_bool "bounded" true (tb.Rtlb.Time_bound.tb_omega <= 36)
  | None -> Alcotest.fail "expected bound"

let horn_on_paper () =
  let jobs = Sched.Horn.of_app paper in
  (* precedence/type-blind relaxation: still a valid lower bound *)
  let m = Sched.Horn.min_processors ~jobs in
  check_bool "relaxation minimum sane" true (m >= 1 && m <= 5);
  check_bool "density <= flow" true (Sched.Horn.density_bound ~jobs <= m)

let preemptive_slices_counted () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:4 ~deadline:12 ~proc:"P" ~preemptive:true ();
          Rtlb.Task.make ~id:1 ~compute:2 ~release:1 ~deadline:4 ~proc:"P"
            ~preemptive:true ();
        ]
      ~edges:[]
  in
  match Sched.Preemptive.run app ~procs:[ ("P", 1) ] with
  | Error _ -> Alcotest.fail "expected feasible"
  | Ok s ->
      (* task 0 runs [0,1), preempted for task 1 [1,3), resumes [3,6) *)
      check_int "three slices total" 3 (Sched.Preemptive.total_slices s);
      check_int "task 0 split in two" 2 (List.length s.(0))

let svg_gantt () =
  let platform =
    Sched.Platform.shared ~procs:[ ("P1", 3); ("P2", 2) ] ~resources:[ ("r1", 2) ]
  in
  match Sched.List_scheduler.run paper platform with
  | Error _ -> Alcotest.fail "setup"
  | Ok s ->
      let svg = Sched.Gantt.render_svg ~show_resources:true paper platform s in
      List.iter
        (fun needle ->
          check_bool ("svg has " ^ needle) true (string_contains ~needle svg))
        [ "<svg"; "</svg>"; "P1#2"; "r1#1"; "T15"; "hsl(" ];
      (* balanced: every <rect and <text is self-contained; cheap sanity *)
      check_bool "no deadline violations drawn red" false
        (string_contains ~needle:"hsl(0, 85%, 55%)" svg);
      (* a forged late entry is drawn in red *)
      let late = Array.copy s in
      late.(14) <- { late.(14) with Sched.Schedule.e_start = 35 };
      let svg' = Sched.Gantt.render_svg paper platform late in
      check_bool "late task highlighted" true
        (string_contains ~needle:"hsl(0, 85%, 55%)" svg')

let parse_file_io () =
  let path = Filename.temp_file "rtlb" ".app" in
  let oc = open_out path in
  output_string oc "task A compute=1 deadline=5 proc=P\n";
  close_out oc;
  let { Rtfmt.Appfile.app; _ } = Rtfmt.Appfile.parse_file path in
  Sys.remove path;
  check_int "one task" 1 (Rtlb.App.n_tasks app)

let mutate_shrink_messages () =
  let app =
    Rtlb.App.make
      ~tasks:
        (List.init 2 (fun id ->
             Rtlb.Task.make ~id ~compute:1 ~deadline:20 ~proc:"P" ()))
      ~edges:[ (0, 1, 7) ]
  in
  let halved = Workload.Mutate.scale_messages app ~percent:50 in
  check_int "7 halves down to 3" 3 (Rtlb.App.message halved ~src:0 ~dst:1);
  let grown = Workload.Mutate.scale_messages app ~percent:150 in
  check_int "7 grows up to 11" 11 (Rtlb.App.message grown ~src:0 ~dst:1)

let prng_misc () =
  let g = Workload.Prng.create 5 in
  let g' = Workload.Prng.copy g in
  check_int "copy diverges independently"
    (Workload.Prng.int g 1000) (Workload.Prng.int g' 1000);
  check_bool "pick from singleton" true (Workload.Prng.pick g [ 42 ] = 42);
  (match Workload.Prng.pick g [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty pick");
  match Workload.Prng.weighted g [ ("a", 0.0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero weights"

let prop_tests =
  [
    qtest ~count:100 "hostable implies a costed system exists"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let system = dedicated_of i in
        match Rtlb.System.validate_for system i.app with
        | Error _ -> true
        | Ok () -> (
            match (Rtlb.Analysis.run system i.app).Rtlb.Analysis.cost with
            | Rtlb.Cost.Dedicated_cost _ -> true
            | Rtlb.Cost.Shared_cost _ | Rtlb.Cost.No_feasible_system _ -> false));
    qtest ~count:200 "rational comparison is a total order (sampled)"
      (QCheck.triple
         (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range 1 50))
         (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range 1 50))
         (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range 1 50)))
      (fun ((a, b), (c, d), (e, f)) ->
        let x = Rat.make a b and y = Rat.make c d and z = Rat.make e f in
        let antisym =
          not (Rat.compare x y <= 0 && Rat.compare y x <= 0)
          || Rat.equal x y
        in
        let trans =
          not (Rat.compare x y <= 0 && Rat.compare y z <= 0)
          || Rat.compare x z <= 0
        in
        antisym && trans);
    qtest ~count:150 "timeline gaps match a brute-force scan"
      (QCheck.make
         ~print:(fun l -> String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) l))
         QCheck.Gen.(
           list_size (int_range 0 6)
             (map
                (fun (s, l) -> (s, s + 1 + l))
                (pair (int_range 0 30) (int_range 0 5)))))
      (fun intervals ->
        (* build a timeline from non-overlapping subset *)
        let tl =
          List.fold_left
            (fun tl (s, f) ->
              if Sched.Timeline.is_free tl ~start:s ~finish:f then
                Sched.Timeline.add tl ~start:s ~finish:f
              else tl)
            Sched.Timeline.empty intervals
        in
        List.for_all
          (fun (from, duration) ->
            let got = Sched.Timeline.earliest_gap tl ~from ~duration in
            (* brute force: first t >= from with [t, t+duration) free *)
            let rec scan t =
              if Sched.Timeline.is_free tl ~start:t ~finish:(t + duration)
              then t
              else scan (t + 1)
            in
            got = scan from)
          [ (0, 1); (0, 3); (5, 2); (17, 4); (40, 1) ]);
  ]

let suite =
  [
    ( "coverage",
      [
        Alcotest.test_case "dedicated gantt" `Quick dedicated_gantt;
        Alcotest.test_case "dedicated JSON" `Quick dedicated_json;
        Alcotest.test_case "full report" `Quick full_report;
        Alcotest.test_case "sensitivity (dedicated cost)" `Quick
          sensitivity_dedicated_cost;
        Alcotest.test_case "time bound (dedicated)" `Quick timebound_dedicated;
        Alcotest.test_case "Horn on the paper example" `Quick horn_on_paper;
        Alcotest.test_case "preemptive slice counting" `Quick
          preemptive_slices_counted;
        Alcotest.test_case "svg gantt" `Quick svg_gantt;
        Alcotest.test_case "appfile file IO" `Quick parse_file_io;
        Alcotest.test_case "message scaling both ways" `Quick
          mutate_shrink_messages;
        Alcotest.test_case "prng odds and ends" `Quick prng_misc;
      ]
      @ prop_tests );
  ]
