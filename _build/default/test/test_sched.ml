(* Tests for the scheduling substrate: timelines, checker, list scheduler
   and searches — and the headline soundness property tying schedules back
   to the paper's bounds. *)

open Helpers

let timeline_basics () =
  let t = Sched.Timeline.empty in
  check_bool "empty free" true (Sched.Timeline.is_free t ~start:0 ~finish:100);
  let t = Sched.Timeline.add t ~start:5 ~finish:10 in
  let t = Sched.Timeline.add t ~start:20 ~finish:25 in
  check_bool "busy" false (Sched.Timeline.is_free t ~start:7 ~finish:8);
  check_bool "adjacent ok" true (Sched.Timeline.is_free t ~start:10 ~finish:20);
  check_int "gap before" 0 (Sched.Timeline.earliest_gap t ~from:0 ~duration:5);
  check_int "gap between" 10 (Sched.Timeline.earliest_gap t ~from:6 ~duration:5);
  check_int "gap after" 25 (Sched.Timeline.earliest_gap t ~from:6 ~duration:11);
  check_int "zero duration" 7 (Sched.Timeline.earliest_gap t ~from:7 ~duration:0);
  Alcotest.check_raises "overlap rejected"
    (Invalid_argument "Timeline.add: overlapping interval") (fun () ->
      ignore (Sched.Timeline.add t ~start:9 ~finish:11));
  (* zero-length add occupies nothing *)
  let t0 = Sched.Timeline.add t ~start:7 ~finish:7 in
  check_bool "empty interval free" true (Sched.Timeline.busy_intervals t0 = Sched.Timeline.busy_intervals t)

let paper = Rtlb.Paper_example.app

let paper_platform =
  Sched.Platform.shared ~procs:[ ("P1", 3); ("P2", 2) ] ~resources:[ ("r1", 2) ]

let list_scheduler_on_example () =
  match Sched.List_scheduler.run paper paper_platform with
  | Error _ -> Alcotest.fail "expected feasible on the bound-sized platform"
  | Ok schedule -> (
      match Sched.Schedule.check paper paper_platform schedule with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es))

let insufficient_platform_fails () =
  (* One P1 cannot carry 45 units of P1 work before time 36. *)
  let tiny =
    Sched.Platform.shared ~procs:[ ("P1", 1); ("P2", 2) ] ~resources:[ ("r1", 2) ]
  in
  check_bool "infeasible" false (Sched.List_scheduler.feasible paper tiny)

let missing_host_fails_cleanly () =
  let no_p2 = Sched.Platform.shared ~procs:[ ("P1", 3) ] ~resources:[ ("r1", 2) ] in
  match Sched.List_scheduler.run paper no_p2 with
  | Error f -> check_int "no start" max_int f.Sched.List_scheduler.f_start
  | Ok _ -> Alcotest.fail "expected failure"

let checker_catches_violations () =
  let sched =
    match Sched.List_scheduler.run paper paper_platform with
    | Ok s -> s
    | Error _ -> Alcotest.fail "setup"
  in
  (* Move task 0 to start before its release... it has release 0, so break
     a precedence instead: start task 3 (T4, successor of T1) at 0. *)
  let broken = Array.copy sched in
  broken.(3) <- { broken.(3) with Sched.Schedule.e_start = 0 };
  (match Sched.Schedule.check paper paper_platform broken with
  | Ok () -> Alcotest.fail "checker missed a precedence violation"
  | Error _ -> ());
  (* Claim a host beyond the platform. *)
  let broken = Array.copy sched in
  broken.(0) <- { broken.(0) with Sched.Schedule.e_host = Sched.Schedule.On_proc ("P1", 99) };
  (match Sched.Schedule.check paper paper_platform broken with
  | Ok () -> Alcotest.fail "checker missed a bogus host"
  | Error _ -> ());
  (* Wrong processor type. *)
  let broken = Array.copy sched in
  broken.(0) <- { broken.(0) with Sched.Schedule.e_host = Sched.Schedule.On_proc ("P2", 0) };
  match Sched.Schedule.check paper paper_platform broken with
  | Ok () -> Alcotest.fail "checker missed a type mismatch"
  | Error _ -> ()

let dedicated_scheduling () =
  let platform =
    Sched.Platform.dedicated
      (List.map
         (fun (nt : Rtlb.System.node_type) ->
           ( nt,
             match nt.Rtlb.System.nt_name with
             | "N1" -> 2
             | "N2" -> 1
             | _ -> 2 ))
         (Rtlb.System.node_types Rtlb.Paper_example.dedicated))
  in
  match Sched.List_scheduler.run paper platform with
  | Error _ -> Alcotest.fail "dedicated bound platform should schedule"
  | Ok s -> (
      match Sched.Schedule.check paper platform s with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es))

let min_platform_on_example () =
  match Sched.Search.min_shared_platform paper with
  | None -> Alcotest.fail "search should find a platform"
  | Some r ->
      check_int "P1 units" 3 (Sched.Platform.units r.Sched.Search.platform "P1");
      check_int "P2 units" 2 (Sched.Platform.units r.Sched.Search.platform "P2");
      check_int "r1 units" 2 (Sched.Platform.units r.Sched.Search.platform "r1")

let backtracking_on_example () =
  match Sched.Search.backtracking_feasible paper paper_platform with
  | None -> Alcotest.fail "backtracking should schedule the example"
  | Some s -> (
      match Sched.Schedule.check paper paper_platform s with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es))

let priority_policies () =
  let app = Rtlb.Paper_example.app in
  let system = Rtlb.Paper_example.shared in
  List.iter
    (fun policy ->
      let priority = Sched.Priorities.make policy system app in
      (* every policy must produce a key for every task without error *)
      for i = 0 to Rtlb.App.n_tasks app - 1 do
        ignore (priority i)
      done)
    Sched.Priorities.all;
  (* the LCT policy reproduces the Section 4 values *)
  let lct = Sched.Priorities.make Sched.Priorities.Lct system app in
  check_int "T9 key" 19 (lct 8);
  check_int "T15 key" 36 (lct 14);
  let slack = Sched.Priorities.make Sched.Priorities.Least_slack system app in
  check_int "T11 slack key" 8 (slack 10);
  let lwf = Sched.Priorities.make Sched.Priorities.Longest_work_first system app in
  check_bool "LPT orders by work" true (lwf 4 < lwf 8)
  (* T5 (C=9) before T9 (C=3) *)

let lct_priority_works () =
  let priority =
    Sched.List_scheduler.lct_priority Rtlb.Paper_example.shared paper
  in
  check_bool "feasible with LCT priority" true
    (Sched.List_scheduler.feasible ~priority paper paper_platform)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_tests =
  [
    qtest ~count:150 "schedules produced always pass the checker"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        let platform = Sched.Platform.generous (shared_of i) i.app in
        match Sched.List_scheduler.run i.app platform with
        | Error _ -> true (* greedy may fail; feasibility isn't claimed *)
        | Ok s -> Sched.Schedule.check i.app platform s = Ok ());
    qtest ~count:100 "dedicated schedules always pass the checker"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let system = dedicated_of i in
        let platform = Sched.Platform.generous system i.app in
        match Sched.List_scheduler.run i.app platform with
        | Error _ -> true
        | Ok s -> Sched.Schedule.check i.app platform s = Ok ());
    qtest ~count:60
      "SOUNDNESS: platform below any LB_r is never schedulable"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        (* Take the LB-sized platform and remove one unit of some bounded
           resource: the analysis says it cannot work, so the scheduler
           (and the backtracking search) must agree. *)
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        let bounds = a.Rtlb.Analysis.bounds in
        List.for_all
          (fun (b : Rtlb.Lower_bound.bound) ->
            if b.Rtlb.Lower_bound.lb = 0 then true
            else begin
              let shrunk =
                List.map
                  (fun (x : Rtlb.Lower_bound.bound) ->
                    let lb =
                      if
                        String.equal x.Rtlb.Lower_bound.resource
                          b.Rtlb.Lower_bound.resource
                      then x.Rtlb.Lower_bound.lb - 1
                      else
                        (* generous elsewhere: the bound must bite alone *)
                        Rtlb.App.n_tasks i.app
                    in
                    { x with Rtlb.Lower_bound.lb })
                  bounds
              in
              let platform = Sched.Platform.of_bounds system i.app shrunk in
              (not (Sched.List_scheduler.feasible i.app platform))
              && Sched.Search.backtracking_feasible ~node_limit:20_000 i.app
                   platform
                 = None
            end)
          bounds);
    qtest ~count:40 "backtracking finds whatever greedy finds"
      (arb_instance ~max_tasks:9 ()) (fun i ->
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        let platform = Sched.Platform.of_bounds system i.app a.Rtlb.Analysis.bounds in
        (not (Sched.List_scheduler.feasible i.app platform))
        || Sched.Search.backtracking_feasible i.app platform <> None);
  ]

let suite =
  [
    ( "sched",
      [
        Alcotest.test_case "timeline basics" `Quick timeline_basics;
        Alcotest.test_case "list scheduler on the example" `Quick
          list_scheduler_on_example;
        Alcotest.test_case "insufficient platform fails" `Quick
          insufficient_platform_fails;
        Alcotest.test_case "missing host type" `Quick missing_host_fails_cleanly;
        Alcotest.test_case "checker catches violations" `Quick
          checker_catches_violations;
        Alcotest.test_case "dedicated platform scheduling" `Quick
          dedicated_scheduling;
        Alcotest.test_case "minimum platform search" `Quick min_platform_on_example;
        Alcotest.test_case "backtracking search" `Quick backtracking_on_example;
        Alcotest.test_case "LCT priority" `Quick lct_priority_works;
        Alcotest.test_case "priority policies" `Quick priority_policies;
      ]
      @ prop_tests );
  ]
