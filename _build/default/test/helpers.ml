(* Shared test utilities: qcheck generators for random applications and
   systems, built on the deterministic workload generator so that every
   counterexample is reproducible from its config. *)

let shapes =
  [
    Workload.Gen.Layered { layers = 3; density = 0.5 };
    Workload.Gen.Series_parallel;
    Workload.Gen.Fork_join { width = 3 };
    Workload.Gen.Out_tree;
    Workload.Gen.In_tree;
    Workload.Gen.Chain;
    Workload.Gen.Independent;
  ]

type instance = { config : Workload.Gen.config; app : Rtlb.App.t }

let config_gen ~max_tasks =
  let open QCheck2.Gen in
  let* seed = int_bound 1_000_000 in
  let* n_tasks = int_range 2 max_tasks in
  let* shape = oneofl shapes in
  let* ccr = oneofl [ 0.0; 0.3; 1.0; 3.0 ] in
  let* laxity = oneofl [ 1.0; 1.3; 2.0; 4.0 ] in
  let* two_procs = bool in
  let* resource_density = oneofl [ 0.0; 0.3; 0.7 ] in
  let* preemptive_fraction = oneofl [ 0.0; 0.5; 1.0 ] in
  let* release_spread = oneofl [ 0.0; 0.5 ] in
  return
    {
      Workload.Gen.seed;
      n_tasks;
      shape;
      compute_range = (1, 9);
      ccr;
      laxity;
      proc_types =
        (if two_procs then [ ("P1", 0.6); ("P2", 0.4) ] else [ ("P1", 1.0) ]);
      resource_types = [ ("r1", resource_density) ];
      preemptive_fraction;
      release_spread;
    }

let instance_gen ~max_tasks =
  QCheck2.Gen.map
    (fun config -> { config; app = Workload.Gen.generate config })
    (config_gen ~max_tasks)

let print_instance i =
  Printf.sprintf "seed=%d shape=%s n=%d ccr=%f laxity=%f\n%s"
    i.config.Workload.Gen.seed
    (Workload.Gen.shape_name i.config.Workload.Gen.shape)
    i.config.Workload.Gen.n_tasks i.config.Workload.Gen.ccr
    i.config.Workload.Gen.laxity
    (Rtfmt.Appfile.to_string i.app)

(* qcheck (v1) arbitrary for use with QCheck_alcotest, sampling the
   QCheck2 generator above. *)
let arb_instance ?(max_tasks = 12) () =
  QCheck.make ~print:print_instance (fun st ->
      QCheck2.Gen.generate1 ~rand:st (instance_gen ~max_tasks))

let shared_of i = Workload.Gen.shared_system i.config
let dedicated_of i = Workload.Gen.dedicated_system i.config

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* Alcotest checkers *)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))
let check_string = Alcotest.(check string)
