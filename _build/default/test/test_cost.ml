(* Tests for the Section 7 cost bounds. *)

open Helpers

let paper = Rtlb.Paper_example.app

let analysis_shared = Rtlb.Analysis.run Rtlb.Paper_example.shared paper
let analysis_dedicated = Rtlb.Analysis.run Rtlb.Paper_example.dedicated paper

let paper_shared_cost () =
  match analysis_shared.Rtlb.Analysis.cost with
  | Rtlb.Cost.Shared_cost { s_terms; s_cost } ->
      (* 3 CostR(P1) + 2 CostR(P2) + 2 CostR(r1) with costs 5/4/3. *)
      check_int "cost" ((3 * 5) + (2 * 4) + (2 * 3)) s_cost;
      Alcotest.(check (list (triple string int int)))
        "terms"
        [ ("P1", 5, 3); ("P2", 4, 2); ("r1", 3, 2) ]
        s_terms
  | _ -> Alcotest.fail "expected shared cost"

let paper_dedicated_cost () =
  match analysis_dedicated.Rtlb.Analysis.cost with
  | Rtlb.Cost.Dedicated_cost d ->
      Alcotest.(check (list (pair string int)))
        "x = (2, 1, 2)" Rtlb.Paper_example.expected_dedicated_counts
        d.Rtlb.Cost.d_counts;
      check_int "cost 2*10 + 1*6 + 2*7" 40 d.Rtlb.Cost.d_cost;
      check_bool "relaxation <= integer cost" true
        Rat.(d.Rtlb.Cost.d_relaxed_cost <= of_int d.Rtlb.Cost.d_cost)
  | _ -> Alcotest.fail "expected dedicated cost"

let paper_ilp_formulation () =
  (* The Step 4 program has the three resource rows plus one coverage row
     per distinct eligibility set ({N1}, {N1,N2}, {N3}). *)
  let bounds = analysis_dedicated.Rtlb.Analysis.bounds in
  let p = Rtlb.Cost.dedicated_problem Rtlb.Paper_example.dedicated paper bounds in
  check_int "variables" 3 (Lp.Problem.num_vars p);
  check_int "rows" 6 (List.length p.Lp.Problem.constraints)

let zero_bound_resources_drop_out () =
  (* A resource nobody uses must not constrain the program. *)
  let bounds =
    analysis_dedicated.Rtlb.Analysis.bounds
    @ [
        {
          Rtlb.Lower_bound.resource = "unused";
          lb = 0;
          witness = None;
          partition = { Rtlb.Partition.blocks = []; spans = [] };
        };
      ]
  in
  let p = Rtlb.Cost.dedicated_problem Rtlb.Paper_example.dedicated paper bounds in
  check_int "rows unchanged" 6 (List.length p.Lp.Problem.constraints)

let infeasible_coverage () =
  (* A catalogue that cannot host P2 tasks has no feasible system. *)
  let broken =
    Rtlb.System.dedicated
      [ Rtlb.System.node_type ~name:"N1" ~proc:"P1" ~provides:[ ("r1", 1) ] ~cost:1 () ]
  in
  match Rtlb.System.validate_for broken paper with
  | Ok () -> Alcotest.fail "validation should fail"
  | Error _ -> ()

let node_multiplicity_counts () =
  (* A node carrying 2 units of r1 halves the node count r1 demands. *)
  let fat =
    Rtlb.System.dedicated
      [
        Rtlb.System.node_type ~name:"fat" ~proc:"P1" ~provides:[ ("r1", 2) ] ~cost:9 ();
        Rtlb.System.node_type ~name:"p2" ~proc:"P2" ~cost:7 ();
      ]
  in
  let analysis = Rtlb.Analysis.run fat paper in
  match analysis.Rtlb.Analysis.cost with
  | Rtlb.Cost.Dedicated_cost d ->
      (* needs: P1 >= 3 -> 3 fat nodes (each also gives 2 r1 >= 2 ✓);
         P2 >= 2. Cost 3*9 + 2*7 = 41. *)
      check_int "cost" 41 d.Rtlb.Cost.d_cost
  | _ -> Alcotest.fail "expected dedicated"

(* Exhaustive reference for the dedicated bound: enumerate node-count
   vectors up to a small cap and take the cheapest one satisfying the
   covering constraints. *)
let brute_force_dedicated system app (bounds : Rtlb.Lower_bound.bound list) =
  let nts = Array.of_list (Rtlb.System.node_types system) in
  let k = Array.length nts in
  let cap = 4 in
  let best = ref None in
  let x = Array.make k 0 in
  let eligibility =
    Array.to_list (Rtlb.App.tasks app)
    |> List.map (fun task ->
           Array.map (fun nt -> Rtlb.System.node_can_host nt task) nts)
  in
  let feasible () =
    List.for_all
      (fun (b : Rtlb.Lower_bound.bound) ->
        let supply = ref 0 in
        Array.iteri
          (fun d c ->
            supply :=
              !supply
              + c * Rtlb.System.node_provides nts.(d) b.Rtlb.Lower_bound.resource)
          x;
        !supply >= b.Rtlb.Lower_bound.lb)
      bounds
    && List.for_all
         (fun mask ->
           let ok = ref false in
           Array.iteri (fun d c -> if c > 0 && mask.(d) then ok := true) x;
           !ok)
         eligibility
  in
  let rec go d =
    if d = k then begin
      if feasible () then begin
        let cost = ref 0 in
        Array.iteri (fun d c -> cost := !cost + (c * nts.(d).Rtlb.System.nt_cost)) x;
        match !best with
        | Some b when b <= !cost -> ()
        | _ -> best := Some !cost
      end
    end
    else
      for v = 0 to cap do
        x.(d) <- v;
        go (d + 1)
      done
  in
  go 0;
  !best

let prop_tests =
  [
    qtest ~count:40 "dedicated ILP bound matches exhaustive enumeration"
      (arb_instance ~max_tasks:6 ()) (fun i ->
        let system = dedicated_of i in
        let a = Rtlb.Analysis.run system i.app in
        match
          (a.Rtlb.Analysis.cost,
           brute_force_dedicated system i.app a.Rtlb.Analysis.bounds)
        with
        | Rtlb.Cost.Dedicated_cost d, Some cost ->
            (* the cap can truncate the true search space only upward *)
            d.Rtlb.Cost.d_cost <= cost
            && (d.Rtlb.Cost.d_cost = cost
               || List.exists (fun (_, x) -> x > 4) d.Rtlb.Cost.d_counts)
        | Rtlb.Cost.Dedicated_cost _, None -> true
        | _ -> false);
    qtest ~count:100 "shared cost equals the hand sum"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        match a.Rtlb.Analysis.cost with
        | Rtlb.Cost.Shared_cost { s_terms; s_cost } ->
            s_cost
            = List.fold_left (fun acc (_, c, lb) -> acc + (c * lb)) 0 s_terms
            && List.for_all
                 (fun (r, c, lb) ->
                   c = Rtlb.System.resource_cost system r
                   && lb = Rtlb.Analysis.bound_for a r)
                 s_terms
        | _ -> false);
    qtest ~count:80 "dedicated optimum satisfies its own program"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let system = dedicated_of i in
        let a = Rtlb.Analysis.run system i.app in
        match a.Rtlb.Analysis.cost with
        | Rtlb.Cost.Dedicated_cost d ->
            let point =
              Array.of_list (List.map (fun (_, x) -> Rat.of_int x) d.Rtlb.Cost.d_counts)
            in
            Lp.Problem.satisfies d.Rtlb.Cost.d_problem point
            && Rat.(d.Rtlb.Cost.d_relaxed_cost <= of_int d.Rtlb.Cost.d_cost)
        | _ -> false);
    qtest ~count:80 "dedicated platform from bounds covers the bounds"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let system = dedicated_of i in
        let a = Rtlb.Analysis.run system i.app in
        let platform =
          Sched.Platform.of_bounds system i.app a.Rtlb.Analysis.bounds
        in
        List.for_all
          (fun (b : Rtlb.Lower_bound.bound) ->
            Sched.Platform.units platform b.Rtlb.Lower_bound.resource
            >= b.Rtlb.Lower_bound.lb)
          a.Rtlb.Analysis.bounds);
  ]

let suite =
  [
    ( "cost",
      [
        Alcotest.test_case "paper Step 4 shared" `Quick paper_shared_cost;
        Alcotest.test_case "paper Step 4 dedicated" `Quick paper_dedicated_cost;
        Alcotest.test_case "ILP formulation shape" `Quick paper_ilp_formulation;
        Alcotest.test_case "zero bounds drop out" `Quick
          zero_bound_resources_drop_out;
        Alcotest.test_case "uncoverable task detected" `Quick infeasible_coverage;
        Alcotest.test_case "multi-unit nodes" `Quick node_multiplicity_counts;
      ]
      @ prop_tests );
  ]
