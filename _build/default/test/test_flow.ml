(* Tests for the max-flow substrate and Horn's optimal preemptive
   feasibility built on it. *)

open Helpers

let simple_network () =
  (* classic: s=0, t=3; s->1 (3), s->2 (2), 1->2 (5), 1->3 (2), 2->3 (3) *)
  let net = Flow.create ~n:4 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:3;
  Flow.add_edge net ~src:0 ~dst:2 ~capacity:2;
  Flow.add_edge net ~src:1 ~dst:2 ~capacity:5;
  Flow.add_edge net ~src:1 ~dst:3 ~capacity:2;
  Flow.add_edge net ~src:2 ~dst:3 ~capacity:3;
  check_int "max flow" 5 (Flow.max_flow net ~source:0 ~sink:3);
  check_int "flow into 1" 3 (Flow.flow_on_edges net ~src:0 ~dst:1);
  check_int "flow into 2" 2 (Flow.flow_on_edges net ~src:0 ~dst:2);
  (* min cut contains the source side only *)
  let cut = Flow.min_cut net ~source:0 in
  check_bool "source in cut" true (List.mem 0 cut);
  check_bool "sink not in cut" false (List.mem 3 cut)

let disconnected () =
  let net = Flow.create ~n:3 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:7;
  check_int "no path" 0 (Flow.max_flow net ~source:0 ~sink:2)

let parallel_edges () =
  let net = Flow.create ~n:2 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:2;
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:3;
  check_int "parallel edges add" 5 (Flow.max_flow net ~source:0 ~sink:1);
  check_int "combined flow" 5 (Flow.flow_on_edges net ~src:0 ~dst:1)

let zero_capacity () =
  let net = Flow.create ~n:2 in
  Flow.add_edge net ~src:0 ~dst:1 ~capacity:0;
  check_int "zero cap" 0 (Flow.max_flow net ~source:0 ~sink:1)

let needs_augmenting_back_edges () =
  (* The textbook case where a naive greedy gets stuck without residual
     back edges: s->a, s->b, a->b, a->t, b->t, all capacity 1, plus a
     saturating first path through a->b. *)
  let net = Flow.create ~n:4 in
  let s = 0 and a = 1 and b = 2 and t = 3 in
  Flow.add_edge net ~src:s ~dst:a ~capacity:1;
  Flow.add_edge net ~src:s ~dst:b ~capacity:1;
  Flow.add_edge net ~src:a ~dst:b ~capacity:1;
  Flow.add_edge net ~src:a ~dst:t ~capacity:1;
  Flow.add_edge net ~src:b ~dst:t ~capacity:1;
  check_int "max flow" 2 (Flow.max_flow net ~source:s ~sink:t)

let invalid_inputs () =
  let net = Flow.create ~n:2 in
  Alcotest.check_raises "self loop" (Invalid_argument "Flow.add_edge: self loop")
    (fun () -> Flow.add_edge net ~src:1 ~dst:1 ~capacity:1);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Flow.add_edge: negative capacity") (fun () ->
      Flow.add_edge net ~src:0 ~dst:1 ~capacity:(-1));
  Alcotest.check_raises "source = sink"
    (Invalid_argument "Flow.max_flow: source = sink") (fun () ->
      ignore (Flow.max_flow net ~source:0 ~sink:0))

(* brute-force reference: max bipartite-ish flow via repeated DFS
   augmentation on a tiny adjacency-matrix network *)
let brute_force_max_flow caps source sink =
  let n = Array.length caps in
  let cap = Array.map Array.copy caps in
  let total = ref 0 in
  let rec augment () =
    let seen = Array.make n false in
    let rec dfs v limit =
      if v = sink then limit
      else begin
        seen.(v) <- true;
        let rec try_next w =
          if w >= n then 0
          else if (not seen.(w)) && cap.(v).(w) > 0 then begin
            let got = dfs w (min limit cap.(v).(w)) in
            if got > 0 then begin
              cap.(v).(w) <- cap.(v).(w) - got;
              cap.(w).(v) <- cap.(w).(v) + got;
              got
            end
            else try_next (w + 1)
          end
          else try_next (w + 1)
        in
        try_next 0
      end
    in
    let got = dfs source max_int in
    if got > 0 then begin
      total := !total + got;
      augment ()
    end
  in
  augment ();
  !total

let arb_network =
  let gen st =
    let n = 3 + QCheck.Gen.int_bound 3 st in
    let caps = Array.make_matrix n n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && QCheck.Gen.bool st then
          caps.(i).(j) <- QCheck.Gen.int_bound 9 st
      done
    done;
    caps
  in
  let print caps =
    let n = Array.length caps in
    String.concat ";"
      (List.concat
         (List.init n (fun i ->
              List.filter_map
                (fun j ->
                  if caps.(i).(j) > 0 then
                    Some (Printf.sprintf "%d->%d:%d" i j caps.(i).(j))
                  else None)
                (List.init n Fun.id))))
  in
  QCheck.make ~print gen

(* ---------------- Horn ---------------- *)

let j r d c = { Sched.Horn.j_release = r; j_deadline = d; j_compute = c }

let horn_basics () =
  check_bool "empty set" true (Sched.Horn.feasible ~jobs:[] ~m:1);
  check_int "empty min" 0 (Sched.Horn.min_processors ~jobs:[]);
  let two_full = [ j 0 10 10; j 0 10 10 ] in
  check_bool "two full-window jobs on 2" true
    (Sched.Horn.feasible ~jobs:two_full ~m:2);
  check_bool "two full-window jobs on 1" false
    (Sched.Horn.feasible ~jobs:two_full ~m:1);
  check_int "min" 2 (Sched.Horn.min_processors ~jobs:two_full);
  Alcotest.check_raises "impossible job"
    (Invalid_argument "Horn: job window smaller than its computation")
    (fun () -> ignore (Sched.Horn.feasible ~jobs:[ j 0 3 5 ] ~m:1))

let density_bound_not_tight () =
  (* Two saturated 2-job clusters at [0,2] and [8,10] plus a wide job
     [0,10] C=8: all contiguous intervals allow 2 processors, yet the wide
     job can gather at most 6 units outside the clusters on one processor,
     so 3 are needed — the flow test sees it, interval density cannot. *)
  let jobs =
    [ j 0 2 2; j 0 2 2; j 8 10 2; j 8 10 2; j 0 10 8 ]
  in
  check_int "density bound" 2 (Sched.Horn.density_bound ~jobs);
  check_bool "flow refutes m=2" false (Sched.Horn.feasible ~jobs ~m:2);
  check_int "true minimum" 3 (Sched.Horn.min_processors ~jobs)

let horn_migration_helps () =
  (* 3 jobs C=2 in [0,3]: work 6 over 3 time units on 2 processors needs
     migration (each processor does 3 units; some job splits). *)
  let jobs = [ j 0 3 2; j 0 3 2; j 0 3 2 ] in
  check_bool "feasible with migration on 2" true (Sched.Horn.feasible ~jobs ~m:2);
  check_int "min processors" 2 (Sched.Horn.min_processors ~jobs)

let arb_jobs =
  let gen st =
    let n = 1 + QCheck.Gen.int_bound 7 st in
    List.init n (fun _ ->
        let r = QCheck.Gen.int_bound 10 st in
        let c = QCheck.Gen.int_bound 8 st in
        let slack = QCheck.Gen.int_bound 8 st in
        j r (r + c + slack) c)
  in
  let print jobs =
    String.concat ";"
      (List.map
         (fun x ->
           Printf.sprintf "[%d,%d]C%d" x.Sched.Horn.j_release
             x.Sched.Horn.j_deadline x.Sched.Horn.j_compute)
         jobs)
  in
  QCheck.make ~print gen

let prop_tests =
  [
    qtest ~count:300 "Dinic agrees with DFS augmentation" arb_network
      (fun caps ->
        let n = Array.length caps in
        let net = Flow.create ~n in
        Array.iteri
          (fun i row ->
            Array.iteri
              (fun jx c -> if c > 0 then Flow.add_edge net ~src:i ~dst:jx ~capacity:c)
              row)
          caps;
        Flow.max_flow net ~source:0 ~sink:(n - 1)
        = brute_force_max_flow caps 0 (n - 1));
    qtest ~count:200
      "Theorem 3 density bound never exceeds Horn's optimum" arb_jobs
      (fun jobs ->
        Sched.Horn.density_bound ~jobs <= Sched.Horn.min_processors ~jobs);
    qtest ~count:200 "Horn minimum is a true threshold" arb_jobs (fun jobs ->
        let m = Sched.Horn.min_processors ~jobs in
        m = 0
        || Sched.Horn.feasible ~jobs ~m
           && (m = 1 || not (Sched.Horn.feasible ~jobs ~m:(m - 1))));
  ]

let suite =
  [
    ( "flow",
      [
        Alcotest.test_case "simple network" `Quick simple_network;
        Alcotest.test_case "disconnected" `Quick disconnected;
        Alcotest.test_case "parallel edges" `Quick parallel_edges;
        Alcotest.test_case "zero capacity" `Quick zero_capacity;
        Alcotest.test_case "residual back edges" `Quick needs_augmenting_back_edges;
        Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        Alcotest.test_case "Horn basics" `Quick horn_basics;
        Alcotest.test_case "Horn migration" `Quick horn_migration_helps;
        Alcotest.test_case "density bound not tight (gap family)" `Quick
          density_bound_not_tight;
      ]
      @ prop_tests );
  ]
