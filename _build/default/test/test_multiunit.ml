(* Tests for multi-unit resource demands: a task listing a resource k
   times holds k units simultaneously, through the model, the bounds, the
   schedulers and the file format. *)

open Helpers

let task ?(id = 0) ?(compute = 4) ?(deadline = 20) ?(resources = []) () =
  Rtlb.Task.make ~id ~compute ~deadline ~proc:"P" ~resources ()

let demand_accounting () =
  let t = task ~resources:[ "dma"; "dma"; "buf" ] () in
  Alcotest.(check (list (pair string int)))
    "demands" [ ("buf", 1); ("dma", 2) ] t.Rtlb.Task.demands;
  Alcotest.(check (list string)) "resources dedup" [ "buf"; "dma" ]
    t.Rtlb.Task.resources;
  check_int "units dma" 2 (Rtlb.Task.units t "dma");
  check_int "units proc" 1 (Rtlb.Task.units t "P");
  check_int "units other" 0 (Rtlb.Task.units t "zz")

let two_dma_app =
  (* Two overlapping tasks, each holding 2 DMA channels for 4 of the first
     8 ticks: demand on [0,8] is 2*4 + 2*4 = 16 -> at least 2 channels. *)
  Rtlb.App.make
    ~tasks:
      [
        task ~id:0 ~deadline:8 ~resources:[ "dma"; "dma" ] ();
        task ~id:1 ~deadline:8 ~resources:[ "dma"; "dma" ] ();
      ]
    ~edges:[]

let bound_scales_with_units () =
  let system = Rtlb.System.shared ~costs:[ ("P", 1); ("dma", 1) ] in
  let a = Rtlb.Analysis.run system two_dma_app in
  (* each task needs both channels for half the window; two tasks fill it *)
  check_int "LB_dma" 2 (Rtlb.Analysis.bound_for a "dma");
  check_int "LB_P" 1 (Rtlb.Analysis.bound_for a "P");
  (* tightening so both must run in [0,4] doubles the requirement *)
  let tight =
    Rtlb.App.map_tasks two_dma_app ~f:(fun t -> Rtlb.Task.with_deadline t 4)
  in
  let b = Rtlb.Analysis.run system tight in
  check_int "LB_dma doubled" 4 (Rtlb.Analysis.bound_for b "dma")

let scheduler_acquires_k_units () =
  let platform =
    Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[ ("dma", 2) ]
  in
  (* with only 2 channels the two tasks must serialise: 8 ticks needed *)
  check_bool "feasible at 8" true
    (Sched.List_scheduler.feasible two_dma_app platform);
  (match Sched.List_scheduler.run two_dma_app platform with
  | Error _ -> Alcotest.fail "expected schedule"
  | Ok s ->
      (match Sched.Schedule.check two_dma_app platform s with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es));
      check_int "serialised makespan" 8 (Sched.Schedule.makespan two_dma_app s);
      Array.iter
        (fun (e : Sched.Schedule.entry) ->
          check_int "holds two units" 2
            (List.length e.Sched.Schedule.e_resource_units))
        s);
  (* four channels let them run in parallel *)
  let wide =
    Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[ ("dma", 4) ]
  in
  match Sched.List_scheduler.run two_dma_app wide with
  | Error _ -> Alcotest.fail "expected schedule"
  | Ok s -> check_int "parallel makespan" 4 (Sched.Schedule.makespan two_dma_app s)

let checker_counts_units () =
  let platform =
    Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[ ("dma", 2) ]
  in
  match Sched.List_scheduler.run two_dma_app platform with
  | Error _ -> Alcotest.fail "setup"
  | Ok s ->
      (* forging an entry that holds only one unit must be caught *)
      let forged = Array.copy s in
      forged.(0) <-
        {
          forged.(0) with
          Sched.Schedule.e_resource_units = [ ("dma", 0) ];
        };
      (match Sched.Schedule.check two_dma_app platform forged with
      | Ok () -> Alcotest.fail "checker missed an under-allocation"
      | Error _ -> ());
      (* duplicated unit indices are not two units *)
      let forged = Array.copy s in
      forged.(0) <-
        {
          forged.(0) with
          Sched.Schedule.e_resource_units = [ ("dma", 0); ("dma", 0) ];
        };
      match Sched.Schedule.check two_dma_app platform forged with
      | Ok () -> Alcotest.fail "checker missed a duplicated unit"
      | Error _ -> ()

let dedicated_hosting_counts () =
  let small = Rtlb.System.node_type ~name:"small" ~proc:"P" ~provides:[ ("dma", 1) ] ~cost:1 () in
  let big = Rtlb.System.node_type ~name:"big" ~proc:"P" ~provides:[ ("dma", 2) ] ~cost:2 () in
  let t = task ~resources:[ "dma"; "dma" ] () in
  check_bool "small node cannot host" false (Rtlb.System.node_can_host small t);
  check_bool "big node hosts" true (Rtlb.System.node_can_host big t);
  let system = Rtlb.System.dedicated [ small; big ] in
  check_int "only the big node is eligible" 1
    (List.length (Rtlb.System.eligible_nodes system t))

let simulator_handles_units () =
  let platform =
    Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[ ("dma", 2) ]
  in
  let o =
    Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet two_dma_app)
      two_dma_app platform
  in
  check_bool "finished" true o.Sched.Simulator.o_finished;
  check_int "serialised online too" 8 o.Sched.Simulator.o_makespan

let appfile_roundtrip_units () =
  let text = "task D compute=4 deadline=8 proc=P res=2xdma,buf\n" in
  let { Rtfmt.Appfile.app; _ } = Rtfmt.Appfile.parse text in
  let t = Rtlb.App.task app 0 in
  check_int "parsed 2 units" 2 (Rtlb.Task.units t "dma");
  check_int "parsed 1 unit" 1 (Rtlb.Task.units t "buf");
  let printed = Rtfmt.Appfile.to_string app in
  check_bool "prints NxR" true (string_contains ~needle:"2xdma" printed);
  let reparsed = (Rtfmt.Appfile.parse printed).Rtfmt.Appfile.app in
  check_bool "roundtrips" true
    (Rtlb.Task.equal t (Rtlb.App.task reparsed 0))

let prop_tests =
  [
    qtest ~count:80 "doubling demands never lowers a resource bound"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let doubled =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id ~name:t.Rtlb.Task.name
                       ~compute:t.Rtlb.Task.compute ~release:t.Rtlb.Task.release
                       ~deadline:t.Rtlb.Task.deadline ~proc:t.Rtlb.Task.proc
                       ~resources:(t.Rtlb.Task.resources @ t.Rtlb.Task.resources)
                       ~preemptive:t.Rtlb.Task.preemptive ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst m -> (src, dst, m) :: acc))
        in
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        let b = Rtlb.Analysis.run system doubled in
        List.for_all2
          (fun (x : Rtlb.Lower_bound.bound) (y : Rtlb.Lower_bound.bound) ->
            y.Rtlb.Lower_bound.lb >= x.Rtlb.Lower_bound.lb)
          a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds);
    qtest ~count:80 "multi-unit schedules pass the checker"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let doubled =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id
                       ~compute:t.Rtlb.Task.compute ~release:t.Rtlb.Task.release
                       ~deadline:t.Rtlb.Task.deadline ~proc:t.Rtlb.Task.proc
                       ~resources:(t.Rtlb.Task.resources @ t.Rtlb.Task.resources)
                       ~preemptive:t.Rtlb.Task.preemptive ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst m -> (src, dst, m) :: acc))
        in
        let platform = Sched.Platform.generous (shared_of i) doubled in
        match Sched.List_scheduler.run doubled platform with
        | Error _ -> true
        | Ok s -> Sched.Schedule.check doubled platform s = Ok ());
  ]

let suite =
  [
    ( "multi-unit",
      [
        Alcotest.test_case "demand accounting" `Quick demand_accounting;
        Alcotest.test_case "bounds scale with units" `Quick
          bound_scales_with_units;
        Alcotest.test_case "scheduler acquires k units" `Quick
          scheduler_acquires_k_units;
        Alcotest.test_case "checker counts units" `Quick checker_counts_units;
        Alcotest.test_case "dedicated hosting counts" `Quick
          dedicated_hosting_counts;
        Alcotest.test_case "simulator handles units" `Quick
          simulator_handles_units;
        Alcotest.test_case "appfile NxR roundtrip" `Quick appfile_roundtrip_units;
      ]
      @ prop_tests );
  ]
