(* Tests for the synthesis search and the admissibility of lower-bound
   pruning (the paper's motivating application). *)

open Helpers

let paper = Rtlb.Paper_example.app
let catalogue = Rtlb.Paper_example.dedicated

let finds_the_paper_optimum () =
  let s = Synth.search ~system:catalogue paper in
  match s.Synth.found with
  | None -> Alcotest.fail "expected a configuration"
  | Some (platform, cost) ->
      (* The Step 4 ILP bound is 40, and the (2,1,2) platform schedules
         (verified elsewhere), so synthesis must land exactly on 40. *)
      check_int "cost" 40 cost;
      check_int "P1 units" 3 (Sched.Platform.units platform "P1");
      check_int "r1 units" 2 (Sched.Platform.units platform "r1");
      check_int "P2 units" 2 (Sched.Platform.units platform "P2")

let pruning_changes_nothing () =
  let a = Synth.search ~use_lower_bounds:true ~system:catalogue paper in
  let b = Synth.search ~use_lower_bounds:false ~system:catalogue paper in
  (match (a.Synth.found, b.Synth.found) with
  | Some (_, ca), Some (_, cb) -> check_int "same optimum" ca cb
  | _ -> Alcotest.fail "both should find a configuration");
  check_bool "pruning saves scheduler calls" true
    (a.Synth.sched_calls < b.Synth.sched_calls);
  check_int "no pruning means no pruned configs" 0 b.Synth.pruned;
  check_bool "pruned + called covers expanded (with LB)" true
    (a.Synth.pruned + a.Synth.sched_calls = a.Synth.expanded)

let infeasible_catalogue () =
  (* No catalogue node can host P2 tasks: search must terminate empty. *)
  let broken =
    Rtlb.System.dedicated
      [ Rtlb.System.node_type ~name:"only-p1" ~proc:"P1" ~provides:[ ("r1", 1) ] ~cost:2 () ]
  in
  let s = Synth.search ~max_expanded:500 ~system:broken paper in
  check_bool "nothing found" true (s.Synth.found = None)

let not_dedicated_rejected () =
  match Synth.search ~system:Rtlb.Paper_example.shared paper with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_tests =
  [
    qtest ~count:25 "pruned and unpruned searches agree"
      (arb_instance ~max_tasks:8 ()) (fun i ->
        let system = dedicated_of i in
        let a = Synth.search ~use_lower_bounds:true ~max_expanded:4000 ~system i.app in
        let b = Synth.search ~use_lower_bounds:false ~max_expanded:4000 ~system i.app in
        match (a.Synth.found, b.Synth.found) with
        | Some (_, ca), Some (_, cb) -> ca = cb && a.Synth.sched_calls <= b.Synth.sched_calls
        | None, None -> true
        | _ -> false);
    qtest ~count:25 "synthesised configurations really schedule"
      (arb_instance ~max_tasks:8 ()) (fun i ->
        let system = dedicated_of i in
        let s = Synth.search ~system i.app in
        match s.Synth.found with
        | None -> true
        | Some (platform, _) -> Sched.List_scheduler.feasible i.app platform);
    qtest ~count:25 "synthesised cost never beats the ILP bound"
      (arb_instance ~max_tasks:8 ()) (fun i ->
        let system = dedicated_of i in
        let a = Rtlb.Analysis.run system i.app in
        let s = Synth.search ~system i.app in
        match (s.Synth.found, a.Rtlb.Analysis.cost) with
        | Some (_, cost), Rtlb.Cost.Dedicated_cost d ->
            cost >= d.Rtlb.Cost.d_cost
        | None, _ -> true
        | _, (Rtlb.Cost.Shared_cost _ | Rtlb.Cost.No_feasible_system _) -> false);
  ]

let suite =
  [
    ( "synth",
      [
        Alcotest.test_case "paper example optimum" `Quick finds_the_paper_optimum;
        Alcotest.test_case "pruning is lossless" `Quick pruning_changes_nothing;
        Alcotest.test_case "infeasible catalogue" `Quick infeasible_catalogue;
        Alcotest.test_case "shared system rejected" `Quick not_dedicated_rejected;
      ]
      @ prop_tests );
  ]
