(* Tests for the DAG substrate. *)

open Helpers

let diamond () = Dag.create ~n:4 ~edges:[ (0, 1, 5); (0, 2, 3); (1, 3, 2); (2, 3, 1) ]

let construction () =
  let g = diamond () in
  check_int "vertices" 4 (Dag.n_vertices g);
  check_int "edges" 4 (Dag.n_edges g);
  check_int_list "succs of 0" [ 1; 2 ] (Dag.succ_ids g 0);
  check_int_list "preds of 3" [ 1; 2 ] (Dag.pred_ids g 3);
  check_int_list "sources" [ 0 ] (Dag.sources g);
  check_int_list "sinks" [ 3 ] (Dag.sinks g);
  Alcotest.(check (option int)) "weight 0->1" (Some 5) (Dag.edge_weight g ~src:0 ~dst:1);
  Alcotest.(check (option int)) "missing edge" None (Dag.edge_weight g ~src:1 ~dst:2)

let invalid_inputs () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Dag.create: self loop on 1") (fun () ->
      ignore (Dag.create ~n:2 ~edges:[ (1, 1, 0) ]));
  Alcotest.check_raises "duplicate edge"
    (Invalid_argument "Dag.create: duplicate edge (0,1)") (fun () ->
      ignore (Dag.create ~n:2 ~edges:[ (0, 1, 1); (0, 1, 2) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Dag.create: edge (0,5) out of range") (fun () ->
      ignore (Dag.create ~n:2 ~edges:[ (0, 5, 1) ]))

let cycle_detection () =
  match Dag.create ~n:3 ~edges:[ (0, 1, 0); (1, 2, 0); (2, 0, 0) ] with
  | exception Dag.Cycle cycle ->
      check_bool "cycle non-trivial" true (List.length cycle >= 3)
  | _ -> Alcotest.fail "expected cycle"

let topo_order_valid () =
  let g = diamond () in
  let order = Dag.topological_order g in
  let position = Array.make 4 0 in
  Array.iteri (fun idx v -> position.(v) <- idx) order;
  Dag.fold_edges g ~init:() ~f:(fun () ~src ~dst _ ->
      check_bool "src before dst" true (position.(src) < position.(dst)))

let reachability () =
  let g = Dag.create ~n:5 ~edges:[ (0, 1, 0); (1, 2, 0); (3, 4, 0) ] in
  let r = Dag.reachable g 0 in
  Alcotest.(check (list bool)) "reach from 0"
    [ true; true; true; false; false ]
    (Array.to_list r);
  let c = Dag.transitive_closure g in
  check_bool "0 reaches 2" true c.(0).(2);
  check_bool "2 not reach 0" false c.(2).(0);
  check_bool "no self" false c.(0).(0);
  check_bool "3 reaches 4" true c.(3).(4)

let longest_paths () =
  let g = diamond () in
  let w = [| 2; 3; 4; 1 |] in
  let into = Dag.longest_path_lengths g ~vertex_weight:(fun i -> w.(i)) in
  Alcotest.(check (list int)) "vertex-weight only" [ 2; 5; 6; 7 ]
    (Array.to_list into);
  check_int "critical path" 7 (Dag.critical_path_length g ~vertex_weight:(fun i -> w.(i)));
  let with_edges = Dag.longest_path_with_edges g ~vertex_weight:(fun i -> w.(i)) in
  (* 0 -(5)-> 1 -(2)-> 3: 2+5+3+2+1 = 13; via 2: 2+3+4+1+1 = 11 *)
  check_int "comm-aware" 13 with_edges.(3)

let dot_output () =
  let dot = Dag.to_dot ~name:"g" (diamond ()) in
  check_bool "has digraph" true
    (String.length dot > 10 && String.sub dot 0 9 = "digraph g");
  check_bool "mentions edge" true (string_contains ~needle:"n0 -> n1" dot)

let map_weights () =
  let g = diamond () in
  let doubled = Dag.map_weights g ~f:(fun ~src:_ ~dst:_ w -> 2 * w) in
  Alcotest.(check (option int)) "doubled" (Some 10)
    (Dag.edge_weight doubled ~src:0 ~dst:1)

(* random DAG property: generator edges always yield valid topo orders *)
let prop_tests =
  [
    qtest ~count:150 "generated graphs topo-sort correctly"
      (arb_instance ~max_tasks:20 ()) (fun i ->
        let g = Rtlb.App.graph i.app in
        let order = Dag.topological_order g in
        let position = Array.make (Dag.n_vertices g) 0 in
        Array.iteri (fun idx v -> position.(v) <- idx) order;
        Dag.fold_edges g ~init:true ~f:(fun acc ~src ~dst _ ->
            acc && position.(src) < position.(dst)));
    qtest ~count:150 "reverse topo is reverse of topo"
      (arb_instance ~max_tasks:20 ()) (fun i ->
        let g = Rtlb.App.graph i.app in
        let a = Array.to_list (Dag.topological_order g) in
        let b = Array.to_list (Dag.reverse_topological_order g) in
        a = List.rev b);
    qtest ~count:150 "closure agrees with per-vertex reachability"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let g = Rtlb.App.graph i.app in
        let n = Dag.n_vertices g in
        let c = Dag.transitive_closure g in
        List.for_all
          (fun v ->
            let r = Dag.reachable g v in
            List.for_all
              (fun w -> c.(v).(w) = (r.(w) && v <> w))
              (List.init n Fun.id))
          (List.init n Fun.id));
  ]

let suite =
  [
    ( "dag",
      [
        Alcotest.test_case "construction" `Quick construction;
        Alcotest.test_case "invalid inputs" `Quick invalid_inputs;
        Alcotest.test_case "cycle detection" `Quick cycle_detection;
        Alcotest.test_case "topological order" `Quick topo_order_valid;
        Alcotest.test_case "reachability and closure" `Quick reachability;
        Alcotest.test_case "longest paths" `Quick longest_paths;
        Alcotest.test_case "dot output" `Quick dot_output;
        Alcotest.test_case "map weights" `Quick map_weights;
      ]
      @ prop_tests );
  ]
