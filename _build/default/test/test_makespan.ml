(* Tests for the Jain–Rajaraman time bounds and the exact makespan
   oracle that sandwiches them. *)

open Helpers

let app_of computes edges =
  Rtlb.App.make
    ~tasks:
      (List.mapi
         (fun id c ->
           Rtlb.Task.make ~id ~compute:c ~deadline:1000 ~proc:"P" ())
         computes)
    ~edges

let greedy_known () =
  (* independent [3;3;2;2;2] on 2 machines: greedy in id order gives 6 *)
  let app = app_of [ 3; 3; 2; 2; 2 ] [] in
  (* id-order greedy splits the 3s across machines and pays 7; the
     optimum below is 6 *)
  check_int "greedy" 7 (Sched.Makespan.greedy app ~m:2);
  check_int "one machine is the sum" 12 (Sched.Makespan.greedy app ~m:1)

let exact_known () =
  let app = app_of [ 3; 3; 2; 2; 2 ] [] in
  Alcotest.(check (option int)) "optimal packing" (Some 6)
    (Sched.Makespan.minimum app ~m:2);
  Alcotest.(check (option int)) "three machines" (Some 5)
    (Sched.Makespan.minimum app ~m:3);
  (* 3+3 on one machine beats splitting them *)
  let app = app_of [ 5; 4; 3; 3; 3 ] [] in
  Alcotest.(check (option int)) "LPT-hard instance" (Some 9)
    (Sched.Makespan.minimum app ~m:2)

let exact_with_precedence () =
  (* chain 4 -> 4 plus independent 4, m = 2: chain dominates -> 8 *)
  let app = app_of [ 4; 4; 4 ] [ (0, 1, 0) ] in
  Alcotest.(check (option int)) "chain bound" (Some 8)
    (Sched.Makespan.minimum app ~m:2);
  (* fork: 1 -> {5,5,5}, m=2: 1 + ceil(15/2)=9? machines: after 1:
     [5,5] and [5] -> 1+10 = 11 vs balance 1+5+5: optimal 11 *)
  let app = app_of [ 1; 5; 5; 5 ] [ (0, 1, 0); (0, 2, 0); (0, 3, 0) ] in
  Alcotest.(check (option int)) "fork" (Some 11)
    (Sched.Makespan.minimum app ~m:2)

let jr_known () =
  let app = app_of [ 3; 3; 2; 2; 2 ] [] in
  let jr = Baselines.Jain_rajaraman.analyse app ~m:2 in
  check_int "work bound" 6 jr.Baselines.Jain_rajaraman.jr_work_bound;
  check_int "path bound" 3 jr.Baselines.Jain_rajaraman.jr_path_bound;
  check_int "lower" 6 jr.Baselines.Jain_rajaraman.jr_lower;
  (* Graham: cp + ceil((W - cp)/m) = 3 + ceil(9/2) = 8 *)
  check_int "upper" 8 jr.Baselines.Jain_rajaraman.jr_upper;
  Alcotest.check_raises "m = 0 rejected"
    (Invalid_argument "Jain_rajaraman.analyse: m <= 0") (fun () ->
      ignore (Baselines.Jain_rajaraman.analyse app ~m:0))

let jr_density_beats_naive () =
  (* Two chains of (4,4) and two of (1,1) on 2 machines: work bound
     ceil(20/2)=10, cp 8; density sees the [0,?] congestion...
     construct: chains A:4->4, B:4->4, m=2: W=16, work bound 8 = cp ->
     naive lower 8, and 8 is achievable. *)
  let app = app_of [ 4; 4; 4; 4 ] [ (0, 1, 0); (2, 3, 0) ] in
  let jr = Baselines.Jain_rajaraman.analyse app ~m:2 in
  check_int "lower equals optimum" 8 jr.Baselines.Jain_rajaraman.jr_lower;
  Alcotest.(check (option int)) "optimum" (Some 8)
    (Sched.Makespan.minimum app ~m:2)

let prop_tests =
  [
    qtest ~count:80 "JR sandwich: lower <= exact <= upper"
      (arb_instance ~max_tasks:8 ()) (fun i ->
        (* strip to the JR model *)
        let app =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id
                       ~compute:t.Rtlb.Task.compute ~deadline:1_000_000
                       ~proc:"P" ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst _ -> (src, dst, 0) :: acc))
        in
        List.for_all
          (fun m ->
            let jr = Baselines.Jain_rajaraman.analyse app ~m in
            match Sched.Makespan.minimum app ~m with
            | None -> true
            | Some opt ->
                jr.Baselines.Jain_rajaraman.jr_lower <= opt
                && opt <= jr.Baselines.Jain_rajaraman.jr_upper
                && opt <= Sched.Makespan.greedy app ~m)
          [ 1; 2; 3 ]);
    qtest ~count:80 "exact makespan equals total work on one machine"
      (arb_instance ~max_tasks:7 ()) (fun i ->
        let app =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id
                       ~compute:t.Rtlb.Task.compute ~deadline:1_000_000
                       ~proc:"P" ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst _ -> (src, dst, 0) :: acc))
        in
        let total = Rtlb.App.total_work app "P" in
        match Sched.Makespan.minimum app ~m:1 with
        | None -> true
        | Some opt -> opt = max total (Rtlb.App.critical_time app));
    qtest ~count:60 "more machines never hurt"
      (arb_instance ~max_tasks:7 ()) (fun i ->
        let app =
          Rtlb.App.make
            ~tasks:
              (Array.to_list (Rtlb.App.tasks i.app)
              |> List.map (fun (t : Rtlb.Task.t) ->
                     Rtlb.Task.make ~id:t.Rtlb.Task.id
                       ~compute:t.Rtlb.Task.compute ~deadline:1_000_000
                       ~proc:"P" ()))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst _ -> (src, dst, 0) :: acc))
        in
        match (Sched.Makespan.minimum app ~m:1, Sched.Makespan.minimum app ~m:2) with
        | Some a, Some b -> b <= a
        | _ -> true);
  ]

let suite =
  [
    ( "makespan",
      [
        Alcotest.test_case "greedy on known instances" `Quick greedy_known;
        Alcotest.test_case "exact on known instances" `Quick exact_known;
        Alcotest.test_case "exact with precedence" `Quick exact_with_precedence;
        Alcotest.test_case "JR bounds on known instances" `Quick jr_known;
        Alcotest.test_case "JR lower meets the optimum" `Quick
          jr_density_beats_naive;
      ]
      @ prop_tests );
  ]
