(* Tests for the Section 6 resource lower bounds, including the paper's
   Step 3 numbers and soundness against real schedules. *)

open Helpers

let paper = Rtlb.Paper_example.app
let windows = Rtlb.Est_lct.compute Rtlb.Paper_example.shared paper
let est = windows.Rtlb.Est_lct.est
let lct = windows.Rtlb.Est_lct.lct
let theta = Rtlb.Lower_bound.theta ~est ~lct paper

let paper_step3_bounds () =
  List.iter
    (fun (r, expected) ->
      let b = Rtlb.Lower_bound.for_resource ~est ~lct paper r in
      check_int ("LB_" ^ r) expected b.Rtlb.Lower_bound.lb)
    Rtlb.Paper_example.expected_bounds

let paper_step3_quotients () =
  let st_p1 = Rtlb.App.tasks_using paper "P1" in
  (* The quoted demands: Theta(P1,0,3) = 6 and Theta(P1,3,6) = 9.  (The
     paper also quotes Theta(P1,3,8) = 11 where the full Theorem 4 demand
     is 13 — task 5's tail overlap alpha(9-7) = 2 appears to have been
     dropped; both round up to the same ceil(./5) = 3.) *)
  check_int "Theta(P1,0,3)" 6 (theta st_p1 ~t1:0 ~t2:3);
  check_int "Theta(P1,3,6)" 9 (theta st_p1 ~t1:3 ~t2:6);
  check_int "Theta(P1,3,8)" 13 (theta st_p1 ~t1:3 ~t2:8);
  check_int "ceil 13/5 = ceil 11/5 = 3" 3 ((13 + 4) / 5)

let witness_is_consistent () =
  List.iter
    (fun r ->
      let b = Rtlb.Lower_bound.for_resource ~est ~lct paper r in
      match b.Rtlb.Lower_bound.witness with
      | None -> Alcotest.fail "expected witness"
      | Some w ->
          let tasks = Rtlb.App.tasks_using paper r in
          check_int
            ("witness demand recomputes for " ^ r)
            w.Rtlb.Lower_bound.w_theta
            (theta tasks ~t1:w.Rtlb.Lower_bound.w_t1 ~t2:w.Rtlb.Lower_bound.w_t2);
          let len = w.Rtlb.Lower_bound.w_t2 - w.Rtlb.Lower_bound.w_t1 in
          check_int
            ("witness attains the bound for " ^ r)
            b.Rtlb.Lower_bound.lb
            ((w.Rtlb.Lower_bound.w_theta + len - 1) / len))
    (Rtlb.App.resource_set paper)

let candidate_points () =
  let pts = Rtlb.Lower_bound.candidate_points ~est ~lct [ 0; 1 ] ~lo:0 ~hi:6 in
  (* tasks 1 and 2: E 0,0 L 3,6 *)
  check_int_list "points" [ 0; 3; 6 ] pts;
  let clipped = Rtlb.Lower_bound.candidate_points ~est ~lct [ 4 ] ~lo:0 ~hi:10 in
  (* task 5: E 6, L 15 -> 15 clipped away, boundaries kept *)
  check_int_list "clipping" [ 0; 6; 10 ] clipped

let unused_resource () =
  let b = Rtlb.Lower_bound.for_resource ~est ~lct paper "bogus" in
  check_int "unused resource LB = 0" 0 b.Rtlb.Lower_bound.lb;
  check_bool "no witness" true (b.Rtlb.Lower_bound.witness = None)

let all_in_res_order () =
  let bounds = Rtlb.Lower_bound.all ~est ~lct paper in
  Alcotest.(check (list string))
    "RES order"
    [ "P1"; "P2"; "r1" ]
    (List.map (fun (b : Rtlb.Lower_bound.bound) -> b.Rtlb.Lower_bound.resource) bounds)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let bounds_of i system =
  let w = Rtlb.Est_lct.compute system i.app in
  Rtlb.Lower_bound.all ~est:w.Rtlb.Est_lct.est ~lct:w.Rtlb.Est_lct.lct i.app

let prop_tests =
  [
    qtest ~count:200 "LB at least the average-load bound"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        (* The interval [min E, max L] contains every window whole, so
           Theta there is the total work and LB_r >= ceil(W / span). *)
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
        List.for_all
          (fun r ->
            let tasks = Rtlb.App.tasks_using i.app r in
            let work = Rtlb.App.total_work i.app r in
            let lo = List.fold_left (fun a t -> min a est.(t)) max_int tasks in
            let hi = List.fold_left (fun a t -> max a lct.(t)) min_int tasks in
            let b = Rtlb.Lower_bound.for_resource ~est ~lct i.app r in
            tasks = [] || hi <= lo
            || b.Rtlb.Lower_bound.lb >= (work + hi - lo - 1) / (hi - lo))
          (Rtlb.App.resource_set i.app));
    qtest ~count:200 "every used resource has LB >= 1"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        List.for_all
          (fun (b : Rtlb.Lower_bound.bound) ->
            let tasks = Rtlb.App.tasks_using i.app b.Rtlb.Lower_bound.resource in
            let has_work =
              List.exists
                (fun t -> (Rtlb.App.task i.app t).Rtlb.Task.compute > 0)
                tasks
            in
            (not has_work) || b.Rtlb.Lower_bound.lb >= 1)
          (bounds_of i (shared_of i)));
    qtest ~count:60 "soundness: any feasible schedule uses >= LB_r units"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        (* Schedule on a generous platform, then count, per resource, the
           peak number of simultaneously running users — LB_r may never
           exceed that. *)
        let system = shared_of i in
        let platform = Sched.Platform.generous system i.app in
        match Sched.List_scheduler.run i.app platform with
        | Error _ -> QCheck.assume_fail ()
        | Ok schedule ->
            (match Sched.Schedule.check i.app platform schedule with
            | Error _ -> false
            | Ok () ->
                let w = Rtlb.Est_lct.compute system i.app in
                let bounds =
                  Rtlb.Lower_bound.all ~est:w.Rtlb.Est_lct.est
                    ~lct:w.Rtlb.Est_lct.lct i.app
                in
                List.for_all
                  (fun (b : Rtlb.Lower_bound.bound) ->
                    let r = b.Rtlb.Lower_bound.resource in
                    let users = Rtlb.App.tasks_using i.app r in
                    (* peak concurrency of r users in this schedule *)
                    let events =
                      List.concat_map
                        (fun t ->
                          let e = schedule.(t) in
                          let f = Sched.Schedule.finish i.app e in
                          if e.Sched.Schedule.e_start = f then []
                          else
                            [ (e.Sched.Schedule.e_start, 1); (f, -1) ])
                        users
                      |> List.sort compare
                    in
                    let peak, _ =
                      List.fold_left
                        (fun (peak, cur) (_, d) ->
                          let cur = cur + d in
                          (max peak cur, cur))
                        (0, 0) events
                    in
                    b.Rtlb.Lower_bound.lb <= max peak 1
                    || b.Rtlb.Lower_bound.lb = 0)
                  bounds));
    qtest ~count:150 "preemptive relaxation never raises a bound"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let all_preemptive =
          Rtlb.App.map_tasks i.app ~f:(fun t -> Rtlb.Task.with_preemptive t true)
        in
        let b1 = bounds_of { i with app = all_preemptive } (shared_of i) in
        let b2 =
          bounds_of
            {
              i with
              app =
                Rtlb.App.map_tasks i.app ~f:(fun t ->
                    Rtlb.Task.with_preemptive t false);
            }
            (shared_of i)
        in
        List.for_all2
          (fun (p : Rtlb.Lower_bound.bound) (np : Rtlb.Lower_bound.bound) ->
            p.Rtlb.Lower_bound.lb <= np.Rtlb.Lower_bound.lb)
          b1 b2);
  ]

let suite =
  [
    ( "lower-bound",
      [
        Alcotest.test_case "paper Step 3 bounds" `Quick paper_step3_bounds;
        Alcotest.test_case "paper Step 3 demand quotients" `Quick
          paper_step3_quotients;
        Alcotest.test_case "witness intervals recompute" `Quick
          witness_is_consistent;
        Alcotest.test_case "candidate points" `Quick candidate_points;
        Alcotest.test_case "unused resource" `Quick unused_resource;
        Alcotest.test_case "RES ordering" `Quick all_in_res_order;
      ]
      @ prop_tests );
  ]
