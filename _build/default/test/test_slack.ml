(* Tests for the slack/criticality report and structural invariance
   properties of the whole analysis. *)

open Helpers

let paper = Rtlb.Paper_example.app
let analysis = Rtlb.Analysis.run Rtlb.Paper_example.shared paper
let report = Rtlb.Slack.analyse analysis

let paper_critical_tasks () =
  (* Nearly the whole example runs with zero slack — its windows equal its
     computation times everywhere except tasks 11, 13 and 14. *)
  Alcotest.(check (list int))
    "critical set"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 11; 14 ]
    (List.sort compare report.Rtlb.Slack.r_critical)

let slack_values () =
  let by_task i =
    List.find (fun s -> s.Rtlb.Slack.ts_task = i) report.Rtlb.Slack.r_slacks
  in
  check_int "T15 window" 6 (by_task 14).Rtlb.Slack.ts_window;
  check_int "T15 slack" 0 (by_task 14).Rtlb.Slack.ts_slack;
  check_int "T11 slack" 8 (by_task 10).Rtlb.Slack.ts_slack;
  (* sorted ascending by slack *)
  let slacks = List.map (fun s -> s.Rtlb.Slack.ts_slack) report.Rtlb.Slack.r_slacks in
  check_bool "sorted" true (List.sort compare slacks = slacks)

let bottlenecks_present () =
  Alcotest.(check (list string))
    "bounded resources all have witnesses"
    [ "P1"; "P2"; "r1" ]
    (List.map fst report.Rtlb.Slack.r_bottlenecks)

let report_renders () =
  let text = Rtlb.Slack.render paper report in
  List.iter
    (fun needle ->
      check_bool ("mentions " ^ needle) true (string_contains ~needle text))
    [ "critical tasks"; "T12"; "bottleneck" ]

(* ------------------------------------------------------------------ *)
(* Structural invariance: renaming/permuting task ids must not change  *)
(* any bound (the analysis is about structure, not labels).            *)
(* ------------------------------------------------------------------ *)

let permute i =
  let app = i.app in
  let n = Rtlb.App.n_tasks app in
  (* deterministic permutation derived from the seed *)
  let perm = Array.init n Fun.id in
  let rng = Workload.Prng.create (i.config.Workload.Gen.seed + 17) in
  Workload.Prng.shuffle rng perm;
  let tasks =
    Array.to_list (Rtlb.App.tasks app)
    |> List.map (fun (t : Rtlb.Task.t) ->
           Rtlb.Task.make ~id:perm.(t.Rtlb.Task.id) ~name:t.Rtlb.Task.name
             ~compute:t.Rtlb.Task.compute ~release:t.Rtlb.Task.release
             ~deadline:t.Rtlb.Task.deadline ~proc:t.Rtlb.Task.proc
             ~resources:t.Rtlb.Task.resources ~preemptive:t.Rtlb.Task.preemptive
             ())
  in
  let edges =
    Dag.fold_edges (Rtlb.App.graph app) ~init:[] ~f:(fun acc ~src ~dst m ->
        (perm.(src), perm.(dst), m) :: acc)
  in
  (Rtlb.App.make ~tasks ~edges, perm)

let prop_tests =
  [
    qtest ~count:100 "bounds invariant under task renumbering"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        let permuted, _ = permute i in
        let b = Rtlb.Analysis.run system permuted in
        List.for_all2
          (fun (x : Rtlb.Lower_bound.bound) (y : Rtlb.Lower_bound.bound) ->
            String.equal x.Rtlb.Lower_bound.resource y.Rtlb.Lower_bound.resource
            && x.Rtlb.Lower_bound.lb = y.Rtlb.Lower_bound.lb)
          a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds);
    qtest ~count:100 "windows invariant under task renumbering"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let system = shared_of i in
        let a = Rtlb.Analysis.run system i.app in
        let permuted, perm = permute i in
        let b = Rtlb.Analysis.run system permuted in
        List.for_all
          (fun t ->
            a.Rtlb.Analysis.windows.Rtlb.Est_lct.est.(t)
            = b.Rtlb.Analysis.windows.Rtlb.Est_lct.est.(perm.(t))
            && a.Rtlb.Analysis.windows.Rtlb.Est_lct.lct.(t)
               = b.Rtlb.Analysis.windows.Rtlb.Est_lct.lct.(perm.(t)))
          (List.init (Rtlb.App.n_tasks i.app) Fun.id));
    qtest ~count:150 "slack is non-negative exactly when windows feasible"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let a = Rtlb.Analysis.run (shared_of i) i.app in
        let r = Rtlb.Slack.analyse a in
        let min_slack =
          List.fold_left
            (fun acc s -> min acc s.Rtlb.Slack.ts_slack)
            max_int r.Rtlb.Slack.r_slacks
        in
        Rtlb.Analysis.is_infeasible a = (min_slack < 0));
  ]

let suite =
  [
    ( "slack",
      [
        Alcotest.test_case "paper critical tasks" `Quick paper_critical_tasks;
        Alcotest.test_case "slack values" `Quick slack_values;
        Alcotest.test_case "bottlenecks" `Quick bottlenecks_present;
        Alcotest.test_case "rendering" `Quick report_renders;
      ]
      @ prop_tests );
  ]
