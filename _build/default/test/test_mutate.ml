(* Metamorphic tests: mutate an instance in a direction whose effect on
   the analysis is provable, and check the prediction.

   Window monotonicity is exact (the optimal merge value is a monotone
   function of the neighbour windows and message sizes, by induction over
   the topological order).  Bound monotonicity holds for the exact LB;
   the finite candidate-point evaluation could in principle wiggle, so
   those properties are kept separately — if they ever fail, the
   counterexample is a finite-point artefact worth studying. *)

open Helpers

let windows system app =
  let w = Rtlb.Est_lct.compute system app in
  (w.Rtlb.Est_lct.est, w.Rtlb.Est_lct.lct)

let pointwise le a b =
  Array.for_all Fun.id (Array.mapi (fun i x -> le x b.(i)) a)

let pick_task i salt = salt mod max 1 (Rtlb.App.n_tasks i.app)

let pick_edge i salt =
  let edges =
    Dag.fold_edges (Rtlb.App.graph i.app) ~init:[] ~f:(fun acc ~src ~dst _ ->
        (src, dst) :: acc)
  in
  match edges with
  | [] -> None
  | _ -> Some (List.nth edges (salt mod List.length edges))

let with_salt = QCheck.pair (arb_instance ~max_tasks:12 ()) (QCheck.int_bound 997)

let prop_tests =
  [
    qtest ~count:150 "relaxing a deadline: EST fixed, LCT grows pointwise"
      with_salt (fun (i, salt) ->
        let system = shared_of i in
        let task = pick_task i salt in
        let mutated = Workload.Mutate.relax_deadline i.app ~task ~by:5 in
        let e0, l0 = windows system i.app in
        let e1, l1 = windows system mutated in
        e0 = e1 && pointwise ( <= ) l0 l1);
    qtest ~count:150 "delaying a release: LCT fixed, EST grows pointwise"
      with_salt (fun (i, salt) ->
        let system = shared_of i in
        let task = pick_task i salt in
        match Workload.Mutate.delay_release i.app ~task ~by:2 with
        | None -> true
        | Some mutated ->
            let e0, l0 = windows system i.app in
            let e1, l1 = windows system mutated in
            l0 = l1 && pointwise ( <= ) e0 e1);
    qtest ~count:150 "growing messages narrows every window" with_salt
      (fun (i, _) ->
        let system = shared_of i in
        let mutated = Workload.Mutate.scale_messages i.app ~percent:250 in
        let e0, l0 = windows system i.app in
        let e1, l1 = windows system mutated in
        pointwise ( <= ) e0 e1 && pointwise ( <= ) l1 l0);
    qtest ~count:150 "zeroing communication widens every window" with_salt
      (fun (i, _) ->
        let system = shared_of i in
        let mutated = Workload.Mutate.zero_communication i.app in
        let e0, l0 = windows system i.app in
        let e1, l1 = windows system mutated in
        pointwise ( <= ) e1 e0 && pointwise ( <= ) l0 l1);
    qtest ~count:150 "adding an edge narrows, dropping it restores" with_salt
      (fun (i, salt) ->
        let system = shared_of i in
        let n = Rtlb.App.n_tasks i.app in
        let src = salt mod n and dst = (salt / n) mod n in
        match Workload.Mutate.add_edge i.app ~src ~dst ~message:3 with
        | None -> true
        | Some mutated -> (
            let e0, l0 = windows system i.app in
            let e1, l1 = windows system mutated in
            pointwise ( <= ) e0 e1
            && pointwise ( <= ) l1 l0
            &&
            match Workload.Mutate.drop_edge mutated ~src ~dst with
            | None -> false
            | Some restored ->
                let e2, l2 = windows system restored in
                e2 = e0 && l2 = l0));
    qtest ~count:100 "tightening a deadline never lowers a bound" with_salt
      (fun (i, salt) ->
        let system = shared_of i in
        let task = pick_task i salt in
        match Workload.Mutate.tighten_deadline i.app ~task ~by:3 with
        | None -> true
        | Some mutated ->
            let a = Rtlb.Analysis.run system i.app in
            let b = Rtlb.Analysis.run system mutated in
            Rtlb.Analysis.is_infeasible b
            || List.for_all2
                 (fun (x : Rtlb.Lower_bound.bound) (y : Rtlb.Lower_bound.bound) ->
                   y.Rtlb.Lower_bound.lb >= x.Rtlb.Lower_bound.lb)
                 a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds);
    qtest ~count:100 "dropping an edge never raises a bound" with_salt
      (fun (i, salt) ->
        let system = shared_of i in
        match pick_edge i salt with
        | None -> true
        | Some (src, dst) -> (
            match Workload.Mutate.drop_edge i.app ~src ~dst with
            | None -> false
            | Some mutated ->
                let a = Rtlb.Analysis.run system i.app in
                let b = Rtlb.Analysis.run system mutated in
                List.for_all2
                  (fun (x : Rtlb.Lower_bound.bound) (y : Rtlb.Lower_bound.bound) ->
                    y.Rtlb.Lower_bound.lb <= x.Rtlb.Lower_bound.lb)
                  a.Rtlb.Analysis.bounds b.Rtlb.Analysis.bounds));
  ]

let unit_tests =
  [
    Alcotest.test_case "tighten below the window is rejected" `Quick (fun () ->
        let app =
          Rtlb.App.make
            ~tasks:[ Rtlb.Task.make ~id:0 ~compute:5 ~deadline:10 ~proc:"P" () ]
            ~edges:[]
        in
        check_bool "none" true
          (Workload.Mutate.tighten_deadline app ~task:0 ~by:6 = None);
        check_bool "edge of feasibility ok" true
          (Workload.Mutate.tighten_deadline app ~task:0 ~by:5 <> None));
    Alcotest.test_case "add_edge refuses cycles and duplicates" `Quick
      (fun () ->
        let app =
          Rtlb.App.make
            ~tasks:
              (List.init 2 (fun id ->
                   Rtlb.Task.make ~id ~compute:1 ~deadline:10 ~proc:"P" ()))
            ~edges:[ (0, 1, 1) ]
        in
        check_bool "duplicate" true
          (Workload.Mutate.add_edge app ~src:0 ~dst:1 ~message:1 = None);
        check_bool "cycle" true
          (Workload.Mutate.add_edge app ~src:1 ~dst:0 ~message:1 = None);
        check_bool "self loop" true
          (Workload.Mutate.add_edge app ~src:0 ~dst:0 ~message:1 = None));
  ]

let suite = [ ("mutate", unit_tests @ prop_tests) ]
