(* Tests for the online-dispatch simulator and the Graham-anomaly
   behaviour it exposes. *)

open Helpers

let two_proc = Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[]

let simple_app =
  Rtlb.App.make
    ~tasks:
      [
        Rtlb.Task.make ~id:0 ~compute:4 ~deadline:10 ~proc:"P" ();
        Rtlb.Task.make ~id:1 ~compute:3 ~deadline:10 ~proc:"P" ();
        Rtlb.Task.make ~id:2 ~compute:2 ~deadline:10 ~proc:"P" ();
      ]
    ~edges:[ (0, 2, 1) ]

let dispatch_at_wcet () =
  let o =
    Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet simple_app)
      simple_app two_proc
  in
  check_bool "finished" true o.Sched.Simulator.o_finished;
  (* T1 [0,4] on p1; T3 co-locates with T1 (no message) -> [4,6] *)
  check_int "makespan" 6 o.Sched.Simulator.o_makespan;
  match o.Sched.Simulator.o_schedule with
  | None -> Alcotest.fail "expected a schedule"
  | Some s -> (
      match Sched.Schedule.check simple_app two_proc s with
      | Ok () -> ()
      | Error es -> Alcotest.fail (String.concat "; " es))

let early_finish_helps_here () =
  let actual i = if i = 0 then 2 else Sched.Simulator.wcet simple_app i in
  let o = Sched.Simulator.run_online ~actual simple_app two_proc in
  check_bool "finished" true o.Sched.Simulator.o_finished;
  (* T1 [0,2]; T3 co-located [2,4]; T2 [0,3] *)
  check_int "shorter makespan" 4 o.Sched.Simulator.o_makespan

let zero_duration_tasks () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:0 ~deadline:5 ~proc:"P" ();
          Rtlb.Task.make ~id:1 ~compute:2 ~deadline:5 ~proc:"P" ();
        ]
      ~edges:[ (0, 1, 1) ]
  in
  let o =
    Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet app) app
      (Sched.Platform.shared ~procs:[ ("P", 1) ] ~resources:[])
  in
  check_bool "finished" true o.Sched.Simulator.o_finished;
  (* the milestone occupies nothing; its successor co-locates: [0,2] *)
  check_int "makespan" 2 o.Sched.Simulator.o_makespan

let resource_contention () =
  (* Two tasks share the single unit of r: they serialise. *)
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:3 ~deadline:10 ~proc:"P" ~resources:[ "r" ] ();
          Rtlb.Task.make ~id:1 ~compute:3 ~deadline:10 ~proc:"P" ~resources:[ "r" ] ();
        ]
      ~edges:[]
  in
  let platform =
    Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[ ("r", 1) ]
  in
  let o = Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet app) app platform in
  check_bool "finished" true o.Sched.Simulator.o_finished;
  check_int "serialised" 6 o.Sched.Simulator.o_makespan

let graham_anomaly () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:2 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:1 ~compute:2 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:2 ~compute:10 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:3 ~compute:10 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:4 ~compute:3 ~release:2 ~deadline:5 ~proc:"P" ();
        ]
      ~edges:[ (0, 2, 0); (1, 3, 0) ]
  in
  let at_wcet =
    Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet app) app two_proc
  in
  check_bool "meets at WCET" true at_wcet.Sched.Simulator.o_finished;
  let fast i = if i <= 1 then 1 else Sched.Simulator.wcet app i in
  let shorter = Sched.Simulator.run_online ~actual:fast app two_proc in
  check_bool "anomaly: faster execution misses" false
    shorter.Sched.Simulator.o_finished;
  Alcotest.(check (option int)) "the latecomer misses" (Some 4)
    shorter.Sched.Simulator.o_first_miss

let invalid_actual_times () =
  match
    Sched.Simulator.run_online ~actual:(fun _ -> 99) simple_app two_proc
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let scaled_profile () =
  check_int "100%" 4 (Sched.Simulator.scaled simple_app ~percent:100 0);
  check_int "50% of 4" 2 (Sched.Simulator.scaled simple_app ~percent:50 0);
  check_int "50% of 3 rounds up" 2 (Sched.Simulator.scaled simple_app ~percent:50 1);
  check_int "1% floors at... ceil" 1 (Sched.Simulator.scaled simple_app ~percent:1 0)

let prop_tests =
  [
    qtest ~count:100 "online WCET dispatch yields checker-valid schedules"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let platform = Sched.Platform.generous (shared_of i) i.app in
        let o =
          Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet i.app) i.app
            platform
        in
        match o.Sched.Simulator.o_schedule with
        | None -> false (* generous platform: dispatch never deadlocks *)
        | Some s ->
            (not o.Sched.Simulator.o_finished)
            || Sched.Schedule.check i.app platform s = Ok ());
    qtest ~count:100 "scaled profiles stay within WCET"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        List.for_all
          (fun percent ->
            List.for_all
              (fun t ->
                let a = Sched.Simulator.scaled i.app ~percent t in
                0 <= a && a <= Sched.Simulator.wcet i.app t)
              (List.init (Rtlb.App.n_tasks i.app) Fun.id))
          [ 0; 25; 50; 75; 100 ]);
  ]

let suite =
  [
    ( "simulator",
      [
        Alcotest.test_case "dispatch at WCET" `Quick dispatch_at_wcet;
        Alcotest.test_case "early finish helps here" `Quick
          early_finish_helps_here;
        Alcotest.test_case "zero-duration tasks" `Quick zero_duration_tasks;
        Alcotest.test_case "resource contention" `Quick resource_contention;
        Alcotest.test_case "Graham anomaly" `Quick graham_anomaly;
        Alcotest.test_case "invalid actual times" `Quick invalid_actual_times;
        Alcotest.test_case "scaled profiles" `Quick scaled_profile;
      ]
      @ prop_tests );
  ]
