(* Tests for the prior-art baselines and their relationship to the paper's
   analysis (the paper's "none of the existing algorithms deal with ..."
   claims, made checkable). *)

open Helpers

(* A hand instance from the Fernandez–Bussell setting: one processor
   type, no resources, no communication.
      0(3) -> 2(2) -> 4(4)
      1(5) -> 3(1) -> 4
   critical time: 1-3-4 = 10. *)
let fb_app =
  Rtlb.App.make
    ~tasks:
      (List.mapi
         (fun id c -> Rtlb.Task.make ~id ~compute:c ~deadline:10 ~proc:"P" ())
         [ 3; 5; 2; 1; 4 ])
    ~edges:[ (0, 2, 0); (1, 3, 0); (2, 4, 0); (3, 4, 0) ]

let fb_windows () =
  let fb = Baselines.Fernandez_bussell.analyse fb_app in
  check_int "omega = critical time" 10 fb.Baselines.Fernandez_bussell.omega;
  Alcotest.(check (array int))
    "EST" [| 0; 0; 3; 5; 6 |] fb.Baselines.Fernandez_bussell.est;
  Alcotest.(check (array int))
    "LCT" [| 4; 5; 6; 6; 10 |] fb.Baselines.Fernandez_bussell.lct;
  check_int "bound" 2 fb.Baselines.Fernandez_bussell.bound

let fb_omega_argument () =
  let fb = Baselines.Fernandez_bussell.analyse ~omega:20 fb_app in
  check_int "looser omega can only shrink the bound" 1
    fb.Baselines.Fernandez_bussell.bound;
  Alcotest.check_raises "omega below critical time"
    (Invalid_argument "Fernandez_bussell.analyse: omega below critical time")
    (fun () -> ignore (Baselines.Fernandez_bussell.analyse ~omega:5 fb_app))

let am_single_merge () =
  (* Two producers feed a consumer; only one can be co-located.
     0(4) -m=3-> 2(2), 1(4) -m=3-> 2.
     emr both 7; merging one leaves the other's message: E_2 = 7 is not
     improvable... with one merge E_2 = max(4, 7) = 7. *)
  let app =
    Rtlb.App.make
      ~tasks:
        (List.mapi
           (fun id c -> Rtlb.Task.make ~id ~compute:c ~deadline:30 ~proc:"P" ())
           [ 4; 4; 2 ])
      ~edges:[ (0, 2, 3); (1, 2, 3) ]
  in
  let est = Baselines.Al_mohammed.est_single_merge app in
  check_int "E_2 with one co-location" 7 est.(2);
  (* The paper's analysis can merge BOTH producers: est({0,1}) =
     ect = 8... which is worse than 7 here, so it keeps 7 too. *)
  let w = Rtlb.Est_lct.compute (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
  check_int "full merge analysis agrees here" 7 w.Rtlb.Est_lct.est.(2)

let am_chain_beats_fb_blindness () =
  (* On a two-task chain with a large message, FB (comm-blind) sees
     critical time 5+4 = 9; Al-Mohammed sees that splitting pays the
     message... both end with one processor, but AM's windows are
     anchored at omega >= 9. *)
  let app =
    Rtlb.App.make
      ~tasks:
        (List.mapi
           (fun id c -> Rtlb.Task.make ~id ~compute:c ~deadline:50 ~proc:"P" ())
           [ 5; 4 ])
      ~edges:[ (0, 1, 10) ]
  in
  let fb = Baselines.Fernandez_bussell.analyse app in
  let am = Baselines.Al_mohammed.analyse app in
  check_int "FB omega ignores the message" 9 fb.Baselines.Fernandez_bussell.omega;
  check_int "AM omega merges the chain" 9 am.Baselines.Al_mohammed.omega;
  check_int "both need one processor" 1
    (min fb.Baselines.Fernandez_bussell.bound am.Baselines.Al_mohammed.bound)

(* Restriction of a generated instance to the FB model. *)
let restrict_fb i =
  let tasks =
    Array.to_list (Rtlb.App.tasks i.app)
    |> List.map (fun (t : Rtlb.Task.t) ->
           Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:t.Rtlb.Task.compute
             ~deadline:1_000_000 ~proc:"P" ())
  in
  let edges =
    Dag.fold_edges (Rtlb.App.graph i.app) ~init:[] ~f:(fun acc ~src ~dst _ ->
        (src, dst, 0) :: acc)
  in
  Rtlb.App.make ~tasks ~edges

let restrict_comm i =
  (* keep messages, flatten processor/resource/deadline structure *)
  let tasks =
    Array.to_list (Rtlb.App.tasks i.app)
    |> List.map (fun (t : Rtlb.Task.t) ->
           Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:t.Rtlb.Task.compute
             ~deadline:1_000_000 ~proc:"P" ())
  in
  let edges =
    Dag.fold_edges (Rtlb.App.graph i.app) ~init:[] ~f:(fun acc ~src ~dst m ->
        (src, dst, m) :: acc)
  in
  Rtlb.App.make ~tasks ~edges

let prop_tests =
  [
    qtest ~count:150 "our analysis = FB on the FB model"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        (* Same windows, same bound, when deadlines are set to omega. *)
        let app0 = restrict_fb i in
        let fb = Baselines.Fernandez_bussell.analyse app0 in
        let app =
          Rtlb.App.map_tasks app0 ~f:(fun t ->
              Rtlb.Task.with_deadline t fb.Baselines.Fernandez_bussell.omega)
        in
        let system = Rtlb.System.shared ~costs:[ ("P", 1) ] in
        let w = Rtlb.Est_lct.compute system app in
        let ours =
          Rtlb.Lower_bound.for_resource ~est:w.Rtlb.Est_lct.est
            ~lct:w.Rtlb.Est_lct.lct app "P"
        in
        w.Rtlb.Est_lct.est = fb.Baselines.Fernandez_bussell.est
        && w.Rtlb.Est_lct.lct = fb.Baselines.Fernandez_bussell.lct
        && ours.Rtlb.Lower_bound.lb = fb.Baselines.Fernandez_bussell.bound);
    qtest ~count:150 "our windows dominate Al-Mohammed's"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        (* Same model (one proc type, no resources), deadlines at AM's
           omega: the multi-merge windows are never looser. *)
        let am0 = Baselines.Al_mohammed.analyse (restrict_comm i) in
        let app =
          Rtlb.App.map_tasks (restrict_comm i) ~f:(fun t ->
              Rtlb.Task.with_deadline t am0.Baselines.Al_mohammed.omega)
        in
        let system = Rtlb.System.shared ~costs:[ ("P", 1) ] in
        let w = Rtlb.Est_lct.compute system app in
        let n = Rtlb.App.n_tasks app in
        List.for_all
          (fun t ->
            w.Rtlb.Est_lct.est.(t) <= am0.Baselines.Al_mohammed.est.(t)
            && w.Rtlb.Est_lct.lct.(t) >= am0.Baselines.Al_mohammed.lct.(t))
          (List.init n Fun.id));
  ]

let suite =
  [
    ( "baselines",
      [
        Alcotest.test_case "FB windows and bound" `Quick fb_windows;
        Alcotest.test_case "FB omega handling" `Quick fb_omega_argument;
        Alcotest.test_case "AM single-merge EST" `Quick am_single_merge;
        Alcotest.test_case "AM vs FB on a chain" `Quick am_chain_beats_fb_blindness;
      ]
      @ prop_tests );
  ]
