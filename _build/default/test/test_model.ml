(* Tests for the application model: tasks, applications, system models and
   mergeability. *)

open Helpers

let task ?(id = 0) ?(compute = 3) ?(release = 0) ?(deadline = 20) ?(proc = "P1")
    ?(resources = []) ?(preemptive = false) () =
  Rtlb.Task.make ~id ~compute ~release ~deadline ~proc ~resources ~preemptive ()

let task_constructor () =
  let t = task ~resources:[ "b"; "a"; "b" ] () in
  Alcotest.(check (list string)) "resources sorted+deduped" [ "a"; "b" ]
    t.Rtlb.Task.resources;
  check_string "default name" "T1" t.Rtlb.Task.name;
  Alcotest.(check (list string)) "needs includes proc" [ "P1"; "a"; "b" ]
    (Rtlb.Task.needs t);
  check_bool "uses proc" true (Rtlb.Task.uses t "P1");
  check_bool "uses resource" true (Rtlb.Task.uses t "a");
  check_bool "not uses" false (Rtlb.Task.uses t "z");
  check_int "laxity" 17 (Rtlb.Task.laxity t)

let task_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "negative compute" (fun () -> task ~compute:(-1) ());
  expect_invalid "negative release" (fun () -> task ~release:(-2) ());
  expect_invalid "window too small" (fun () ->
      task ~release:15 ~compute:10 ~deadline:20 ());
  expect_invalid "empty proc" (fun () -> task ~proc:"" ());
  expect_invalid "proc among resources" (fun () ->
      task ~proc:"P1" ~resources:[ "P1" ] ());
  (* zero compute is allowed: milestone tasks (paper example task 12) *)
  check_int "zero compute ok" 0 (task ~compute:0 ()).Rtlb.Task.compute

let small_app () =
  Rtlb.App.make
    ~tasks:
      [
        task ~id:0 ~resources:[ "r1" ] ();
        task ~id:1 ~proc:"P2" ();
        task ~id:2 ~resources:[ "r2" ] ();
      ]
    ~edges:[ (0, 1, 4); (1, 2, 2) ]

let app_accessors () =
  let app = small_app () in
  check_int "n_tasks" 3 (Rtlb.App.n_tasks app);
  Alcotest.(check (list string)) "RES" [ "P1"; "P2"; "r1"; "r2" ]
    (Rtlb.App.resource_set app);
  check_int_list "ST_P1" [ 0; 2 ] (Rtlb.App.tasks_using app "P1");
  check_int_list "ST_r1" [ 0 ] (Rtlb.App.tasks_using app "r1");
  check_int "message" 4 (Rtlb.App.message app ~src:0 ~dst:1);
  check_int "total work P1" 6 (Rtlb.App.total_work app "P1");
  check_int "horizon" 20 (Rtlb.App.horizon app);
  check_int "critical time" 9 (Rtlb.App.critical_time app);
  check_int_list "preds" [ 1 ] (Rtlb.App.preds app 2);
  check_int_list "succs" [ 1 ] (Rtlb.App.succs app 0)

let app_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "duplicate ids" (fun () ->
      Rtlb.App.make ~tasks:[ task ~id:0 (); task ~id:0 () ] ~edges:[]);
  expect_invalid "id out of range" (fun () ->
      Rtlb.App.make ~tasks:[ task ~id:5 () ] ~edges:[]);
  expect_invalid "negative message" (fun () ->
      Rtlb.App.make
        ~tasks:[ task ~id:0 (); task ~id:1 () ]
        ~edges:[ (0, 1, -1) ])

let shared_system () =
  let s = Rtlb.System.shared ~costs:[ ("P1", 5); ("r1", 2) ] in
  check_int "cost" 5 (Rtlb.System.resource_cost s "P1");
  Alcotest.check_raises "unknown resource"
    (Invalid_argument "System.resource_cost: unknown resource zz") (fun () ->
      ignore (Rtlb.System.resource_cost s "zz"));
  check_bool "no node types" true (Rtlb.System.node_types s = [])

let nt name proc provides cost =
  Rtlb.System.node_type ~name ~proc ~provides ~cost ()

let dedicated_system () =
  let n1 = nt "N1" "P1" [ ("r1", 2) ] 10 in
  let s = Rtlb.System.dedicated [ n1; nt "N2" "P2" [] 5 ] in
  check_int "gamma_n,r1" 2 (Rtlb.System.node_provides n1 "r1");
  check_int "gamma_n,P1 counts the processor" 1 (Rtlb.System.node_provides n1 "P1");
  check_int "gamma unknown" 0 (Rtlb.System.node_provides n1 "zz");
  let t_ok = task ~resources:[ "r1" ] () in
  let t_bad = task ~resources:[ "r9" ] () in
  check_bool "can host" true (Rtlb.System.node_can_host n1 t_ok);
  check_bool "cannot host" false (Rtlb.System.node_can_host n1 t_bad);
  check_int "eligible count" 1 (List.length (Rtlb.System.eligible_nodes s t_ok));
  match Rtlb.System.validate_for s (small_app ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "r2 task should have no host"

let mergeability_shared () =
  let app = small_app () in
  let s = Rtlb.System.shared ~costs:[] in
  check_bool "same proc" true (Rtlb.System.mergeable s app [ 0; 2 ]);
  check_bool "diff proc" false (Rtlb.System.mergeable s app [ 0; 1 ]);
  check_bool "singleton" true (Rtlb.System.mergeable s app [ 1 ]);
  check_bool "empty" true (Rtlb.System.mergeable s app [])

let mergeability_dedicated () =
  let app = small_app () in
  (* one node type with r1 only: tasks 0 (needs r1) and 2 (needs r2) are
     individually hostable nowhere/somewhere but never together *)
  let s1 =
    Rtlb.System.dedicated [ nt "A" "P1" [ ("r1", 1) ] 1; nt "B" "P1" [ ("r2", 1) ] 1 ]
  in
  check_bool "union not covered" false (Rtlb.System.mergeable s1 app [ 0; 2 ]);
  let s2 =
    Rtlb.System.dedicated [ nt "AB" "P1" [ ("r1", 1); ("r2", 1) ] 1 ]
  in
  check_bool "union covered" true (Rtlb.System.mergeable s2 app [ 0; 2 ]);
  check_bool "proc mismatch still blocks" false
    (Rtlb.System.mergeable s2 app [ 0; 1 ])

let seq_schedules () =
  (* ect: jobs (est, c) run back to back *)
  check_int "ect chain" 9 (Rtlb.Seq_schedule.ect [ (0, 4); (2, 5) ]);
  check_int "ect with gap" 12 (Rtlb.Seq_schedule.ect [ (0, 2); (10, 2) ]);
  check_int "ect single" 7 (Rtlb.Seq_schedule.ect [ (3, 4) ]);
  (* lst mirrors ect *)
  check_int "lst chain" 21 (Rtlb.Seq_schedule.lst [ (30, 5); (25, 4) ]);
  check_int "lst paper task 9" 19 (Rtlb.Seq_schedule.lst [ (30, 5); (30, 6) ]);
  check_int "lst single" 25 (Rtlb.Seq_schedule.lst [ (30, 5) ]);
  Alcotest.check_raises "ect empty"
    (Invalid_argument "Seq_schedule.ect: empty job set") (fun () ->
      ignore (Rtlb.Seq_schedule.ect []))

let prop_tests =
  let arb_jobs =
    QCheck.make
      ~print:(fun l ->
        String.concat ";" (List.map (fun (a, c) -> Printf.sprintf "(%d,%d)" a c) l))
      QCheck.Gen.(
        list_size (int_range 1 8)
          (pair (int_range 0 30) (int_range 0 9)))
  in
  [
    qtest "ect >= every est + compute" arb_jobs (fun jobs ->
        let e = Rtlb.Seq_schedule.ect jobs in
        List.for_all (fun (est, c) -> e >= est + c) jobs);
    qtest "ect >= total work after first est" arb_jobs (fun jobs ->
        let e = Rtlb.Seq_schedule.ect jobs in
        let total = List.fold_left (fun acc (_, c) -> acc + c) 0 jobs in
        let min_est = List.fold_left (fun acc (a, _) -> min acc a) max_int jobs in
        e >= min_est + total);
    qtest "lst mirrors ect under negation" arb_jobs (fun jobs ->
        (* lst over (lct, c) == -ect over (-lct, c) *)
        let mirrored = List.map (fun (a, c) -> (-a, c)) jobs in
        Rtlb.Seq_schedule.lst jobs = -Rtlb.Seq_schedule.ect mirrored);
    qtest "mergeable is monotone under subset"
      (QCheck.pair (arb_instance ~max_tasks:8 ()) (QCheck.int_bound 100))
      (fun (i, salt) ->
        let sys = dedicated_of i in
        let n = Rtlb.App.n_tasks i.app in
        let ids =
          List.filter (fun v -> (v * 7 + salt) mod 3 = 0) (List.init n Fun.id)
        in
        let sub = List.filteri (fun k _ -> k mod 2 = 0) ids in
        (not (Rtlb.System.mergeable sys i.app ids))
        || Rtlb.System.mergeable sys i.app sub);
  ]

let suite =
  [
    ( "model",
      [
        Alcotest.test_case "task constructor" `Quick task_constructor;
        Alcotest.test_case "task validation" `Quick task_validation;
        Alcotest.test_case "app accessors" `Quick app_accessors;
        Alcotest.test_case "app validation" `Quick app_validation;
        Alcotest.test_case "shared system" `Quick shared_system;
        Alcotest.test_case "dedicated system" `Quick dedicated_system;
        Alcotest.test_case "mergeability (shared)" `Quick mergeability_shared;
        Alcotest.test_case "mergeability (dedicated)" `Quick
          mergeability_dedicated;
        Alcotest.test_case "sequential ect/lst" `Quick seq_schedules;
      ]
      @ prop_tests );
  ]
