(* Tests for the Section 5 partitioning (Figure 4) and its Theorem 5
   independence guarantee. *)

open Helpers

let paper = Rtlb.Paper_example.app
let windows = Rtlb.Est_lct.compute Rtlb.Paper_example.shared paper
let est = windows.Rtlb.Est_lct.est
let lct = windows.Rtlb.Est_lct.lct

let blocks_of r =
  (Rtlb.Partition.compute ~est ~lct (Rtlb.App.tasks_using paper r))
    .Rtlb.Partition.blocks
  |> List.map (List.map (fun i -> i + 1))
  (* paper numbering *)
  |> List.map (List.sort compare)

let paper_partitions () =
  Alcotest.(check (list (list int)))
    "ST_P1"
    [ [ 1; 2; 3; 4; 5 ]; [ 9 ]; [ 10; 11; 13; 14 ]; [ 12; 15 ] ]
    (blocks_of "P1");
  Alcotest.(check (list (list int))) "ST_P2" [ [ 6; 7 ]; [ 8 ] ] (blocks_of "P2");
  Alcotest.(check (list (list int)))
    "ST_r1"
    [ [ 1; 2 ]; [ 5 ]; [ 10; 13; 14 ]; [ 15 ] ]
    (blocks_of "r1")

let paper_spans () =
  let p = Rtlb.Partition.compute ~est ~lct (Rtlb.App.tasks_using paper "P1") in
  Alcotest.(check (list (pair int int)))
    "Step 3 evaluation intervals for P1"
    [ (0, 15); (16, 19); (19, 30); (30, 36) ]
    p.Rtlb.Partition.spans

let empty_and_singleton () =
  let p = Rtlb.Partition.compute ~est ~lct [] in
  check_bool "empty" true (p.Rtlb.Partition.blocks = []);
  let p = Rtlb.Partition.compute ~est ~lct [ 0 ] in
  Alcotest.(check (list (list int))) "singleton" [ [ 0 ] ] p.Rtlb.Partition.blocks;
  Alcotest.(check (list (pair int int))) "singleton span" [ (0, 3) ]
    p.Rtlb.Partition.spans

let validity_on_paper () =
  List.iter
    (fun r ->
      let tasks = Rtlb.App.tasks_using paper r in
      let p = Rtlb.Partition.compute ~est ~lct tasks in
      check_bool ("valid for " ^ r) true
        (Rtlb.Partition.is_valid ~est ~lct tasks p))
    (Rtlb.App.resource_set paper)

let invalid_detected () =
  (* Tasks 1 and 9 ([0,3] and [16,19]) may not share a block with task 5
     ([6,15]) out of order: splitting {1,5} | {9} is fine but {1,9} | {5}
     violates the chain condition. *)
  let bogus =
    { Rtlb.Partition.blocks = [ [ 0; 8 ]; [ 4 ] ]; spans = [ (0, 19); (6, 15) ] }
  in
  check_bool "chain violation caught" false
    (Rtlb.Partition.is_valid ~est ~lct [ 0; 8; 4 ] bogus);
  let missing = { Rtlb.Partition.blocks = [ [ 0 ] ]; spans = [ (0, 3) ] } in
  check_bool "coverage violation caught" false
    (Rtlb.Partition.is_valid ~est ~lct [ 0; 4 ] missing)

let prop_tests =
  [
    qtest ~count:250 "computed partitions are always valid"
      (arb_instance ~max_tasks:16 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
        List.for_all
          (fun r ->
            let tasks = Rtlb.App.tasks_using i.app r in
            Rtlb.Partition.is_valid ~est ~lct tasks
              (Rtlb.Partition.compute ~est ~lct tasks))
          (Rtlb.App.resource_set i.app));
    qtest ~count:250 "blocks are maximal runs (adjacent blocks truly split)"
      (arb_instance ~max_tasks:16 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
        List.for_all
          (fun r ->
            let tasks = Rtlb.App.tasks_using i.app r in
            let p = Rtlb.Partition.compute ~est ~lct tasks in
            (* consecutive spans never overlap *)
            let rec ok = function
              | (_, f1) :: ((s2, _) :: _ as rest) -> f1 <= s2 && ok rest
              | _ -> true
            in
            ok p.Rtlb.Partition.spans)
          (Rtlb.App.resource_set i.app));
    qtest ~count:120 "Theorem 5: partitioned bound = unpartitioned bound"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
        List.for_all
          (fun r ->
            let a = Rtlb.Lower_bound.for_resource ~est ~lct i.app r in
            let b = Rtlb.Lower_bound.for_resource_unpartitioned ~est ~lct i.app r in
            a.Rtlb.Lower_bound.lb = b.Rtlb.Lower_bound.lb)
          (Rtlb.App.resource_set i.app));
  ]

let suite =
  [
    ( "partition",
      [
        Alcotest.test_case "paper Step 2 partitions" `Quick paper_partitions;
        Alcotest.test_case "paper Step 3 spans" `Quick paper_spans;
        Alcotest.test_case "empty and singleton" `Quick empty_and_singleton;
        Alcotest.test_case "validity on the example" `Quick validity_on_paper;
        Alcotest.test_case "invalid partitions detected" `Quick invalid_detected;
      ]
      @ prop_tests );
  ]
