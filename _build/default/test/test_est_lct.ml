(* Tests for the Section 4 EST/LCT merging analysis, including the
   reproduction of the paper's Table 1 and the worked derivations, and
   exhaustive verification of the greedy merge (Theorems 1 and 2). *)

open Helpers

let paper = Rtlb.Paper_example.app
let paper_shared = Rtlb.Paper_example.shared
let paper_dedicated = Rtlb.Paper_example.dedicated
let windows = Rtlb.Est_lct.compute paper_shared paper

(* Paper task numbers are 1-based. *)
let est n = windows.Rtlb.Est_lct.est.(n - 1)
let lct n = windows.Rtlb.Est_lct.lct.(n - 1)

let table1_est () =
  Array.iteri
    (fun i expected ->
      check_int (Printf.sprintf "E_%d" (i + 1)) expected
        windows.Rtlb.Est_lct.est.(i))
    Rtlb.Paper_example.expected_est

let table1_lct () =
  (* All LCTs match the paper except L_11, whose printed value (35) is
     impossible: task 11 feeds task 15 (C=6, L=36), so its completion can
     never exceed lst({15}) = 30.  The repaired column pins that cell to
     30. *)
  Array.iteri
    (fun i expected ->
      check_int (Printf.sprintf "L_%d" (i + 1)) expected
        windows.Rtlb.Est_lct.lct.(i))
    Rtlb.Paper_example.expected_lct_repaired;
  let diffs = ref 0 in
  Array.iteri
    (fun i paper_value ->
      if paper_value <> windows.Rtlb.Est_lct.lct.(i) then incr diffs)
    Rtlb.Paper_example.expected_lct;
  check_int "exactly one repaired cell" 1 !diffs

let same_windows_in_dedicated_model () =
  (* Section 8: "a set of tasks which are mergeable in the shared model
     are also mergeable in the dedicated model" — the two models give the
     same Table 1 here. *)
  let w = Rtlb.Est_lct.compute paper_dedicated paper in
  Alcotest.(check (array int))
    "EST equal" windows.Rtlb.Est_lct.est w.Rtlb.Est_lct.est;
  Alcotest.(check (array int))
    "LCT equal" windows.Rtlb.Est_lct.lct w.Rtlb.Est_lct.lct

(* The worked derivation of L_9 in Section 8:
   lms_15 = 26, lms_14 = 18, lms_13 = 19; no-merge LCT 18; merging task 14
   lifts it to 19; merging 13 as well gives 19 again, so the process
   stops. *)
let worked_l9 () =
  let l = windows.Rtlb.Est_lct.lct in
  check_int "lms_15" 26 (Rtlb.Est_lct.lms paper ~lct:l ~src:8 ~dst:14);
  check_int "lms_14" 18 (Rtlb.Est_lct.lms paper ~lct:l ~src:8 ~dst:13);
  check_int "lms_13" 19 (Rtlb.Est_lct.lms paper ~lct:l ~src:8 ~dst:12);
  let tr = windows.Rtlb.Est_lct.lct_trace.(8) in
  check_int "no-merge bound" 18 tr.Rtlb.Est_lct.no_merge_bound;
  check_int "L_9" 19 (lct 9);
  (match tr.Rtlb.Est_lct.steps with
  | first :: second :: _ ->
      check_int "first candidate is task 14" 13 first.Rtlb.Est_lct.candidate;
      (match first.Rtlb.Est_lct.decision with
      | Rtlb.Est_lct.Merged 19 -> ()
      | _ -> Alcotest.fail "task 14 should merge, lifting L to 19");
      check_int "second candidate is task 13" 12 second.Rtlb.Est_lct.candidate;
      (match second.Rtlb.Est_lct.decision with
      | Rtlb.Est_lct.Rejected_no_gain 19 -> ()
      | _ -> Alcotest.fail "task 13 gives no gain (19 again)")
  | _ -> Alcotest.fail "expected two merge steps");
  check_int_list "G_9 = {14}" [ 13 ] windows.Rtlb.Est_lct.lct_merged.(8)

(* The worked derivation of L_5: lms_9 = 7, lms_8 = 15; merging task 9
   lifts the bound to 15; task 8 runs on the other processor type, so the
   merge process stops there. *)
let worked_l5 () =
  let l = windows.Rtlb.Est_lct.lct in
  check_int "lms_9" 7 (Rtlb.Est_lct.lms paper ~lct:l ~src:4 ~dst:8);
  check_int "lms_8" 15 (Rtlb.Est_lct.lms paper ~lct:l ~src:4 ~dst:7);
  check_int "L_5" 15 (lct 5);
  check_int_list "G_5 = {9}" [ 8 ] windows.Rtlb.Est_lct.lct_merged.(4);
  let tr = windows.Rtlb.Est_lct.lct_trace.(4) in
  check_bool "task 8 never considered (not mergeable)" true
    (List.for_all
       (fun s -> s.Rtlb.Est_lct.candidate <> 7)
       tr.Rtlb.Est_lct.steps)

let merge_sets () =
  let m = windows.Rtlb.Est_lct.est_merged and g = windows.Rtlb.Est_lct.lct_merged in
  check_int_list "M_4 = {1}" [ 0 ] m.(3);
  check_int_list "M_5 = {2}" [ 1 ] m.(4);
  check_int_list "M_9 = {5}" [ 4 ] m.(8);
  check_int_list "M_13 = {9}" [ 8 ] m.(12);
  check_int_list "M_14 = {9}" [ 8 ] m.(13);
  check_int_list "G_1 = {4}" [ 3 ] g.(0);
  check_int_list "G_10 = {15}" [ 14 ] g.(9);
  check_int_list "G_11 = {15}" [ 14 ] g.(10);
  check_int_list "no merges for task 8" [] m.(7)

let boundary_cases () =
  check_int "source EST = release" 10 (est 7);
  check_int "sink LCT = deadline" 36 (lct 15);
  check_int "E_12 = L_12 = 30 (milestone)" 30 (est 12);
  check_int "L_12" 30 (lct 12)

let feasibility_check () =
  (match Rtlb.Est_lct.feasible_windows paper windows with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Shrinking T15's deadline to 33 leaves [30, 33] too small for C=6. *)
  let squeezed =
    Rtlb.App.map_tasks paper ~f:(fun t ->
        if t.Rtlb.Task.id = 14 then Rtlb.Task.with_deadline t 33 else t)
  in
  let w = Rtlb.Est_lct.compute paper_shared squeezed in
  match Rtlb.Est_lct.feasible_windows squeezed w with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected infeasible window"

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let subsets l =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] l

(* Exhaustive Theorem 1/2 check: the greedy merge result equals the best
   over every mergeable subset of neighbours. *)
let optimal_vs_exhaustive system_of i =
  let app = i.app in
  let system = system_of i in
  let w = Rtlb.Est_lct.compute system app in
  let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
  List.for_all
    (fun t ->
      let best_est =
        subsets (Rtlb.App.preds app t)
        |> List.filter_map (Rtlb.Est_lct.est_of_merge_set system app ~est t)
        |> List.fold_left min max_int
      in
      let best_lct =
        subsets (Rtlb.App.succs app t)
        |> List.filter_map (Rtlb.Est_lct.lct_of_merge_set system app ~lct t)
        |> List.fold_left max min_int
      in
      let est_ok =
        if Rtlb.App.preds app t = [] then
          est.(t) = (Rtlb.App.task app t).Rtlb.Task.release
        else est.(t) = best_est
      in
      let lct_ok =
        if Rtlb.App.succs app t = [] then
          lct.(t) = (Rtlb.App.task app t).Rtlb.Task.deadline
        else lct.(t) = best_lct
      in
      est_ok && lct_ok)
    (List.init (Rtlb.App.n_tasks app) Fun.id)

let prop_tests =
  [
    qtest ~count:150 "analysis is a pure function of the instance"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let a = Rtlb.Est_lct.compute (shared_of i) i.app in
        let b = Rtlb.Est_lct.compute (shared_of i) i.app in
        a.Rtlb.Est_lct.est = b.Rtlb.Est_lct.est
        && a.Rtlb.Est_lct.lct = b.Rtlb.Est_lct.lct
        && a.Rtlb.Est_lct.est_merged = b.Rtlb.Est_lct.est_merged);
    qtest ~count:150 "traces are an accepted prefix plus one rejection"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let well_formed (tr : Rtlb.Est_lct.trace) =
          let rec shape = function
            | [] -> true
            | [ { Rtlb.Est_lct.decision = Rtlb.Est_lct.Rejected_no_gain _; _ } ]
              ->
                true
            | { Rtlb.Est_lct.decision = Rtlb.Est_lct.Merged _; _ } :: rest ->
                shape rest
            | _ -> false
          in
          shape tr.Rtlb.Est_lct.steps
          && List.length tr.Rtlb.Est_lct.merged
             = List.length
                 (List.filter
                    (fun s ->
                      match s.Rtlb.Est_lct.decision with
                      | Rtlb.Est_lct.Merged _ -> true
                      | Rtlb.Est_lct.Rejected_no_gain _ -> false)
                    tr.Rtlb.Est_lct.steps)
        in
        Array.for_all well_formed w.Rtlb.Est_lct.est_trace
        && Array.for_all well_formed w.Rtlb.Est_lct.lct_trace);
    qtest ~count:150 "greedy EST/LCT merge is optimal (shared, Thm 1-2)"
      (arb_instance ~max_tasks:9 ())
      (optimal_vs_exhaustive shared_of);
    qtest ~count:150 "greedy EST/LCT merge is optimal (dedicated, Thm 1-2)"
      (arb_instance ~max_tasks:9 ())
      (optimal_vs_exhaustive dedicated_of);
    qtest ~count:200 "E_i >= predecessor completion, L mirror"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        let e = w.Rtlb.Est_lct.est and l = w.Rtlb.Est_lct.lct in
        let compute t = (Rtlb.App.task i.app t).Rtlb.Task.compute in
        List.for_all
          (fun t ->
            List.for_all
              (fun p -> e.(t) >= e.(p) + compute p)
              (Rtlb.App.preds i.app t)
            && List.for_all
                 (fun s -> l.(t) <= l.(s) - compute s)
                 (Rtlb.App.succs i.app t))
          (List.init (Rtlb.App.n_tasks i.app) Fun.id));
    qtest ~count:200 "windows respect release and deadline"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        List.for_all
          (fun t ->
            let task = Rtlb.App.task i.app t in
            w.Rtlb.Est_lct.est.(t) >= task.Rtlb.Task.release
            && w.Rtlb.Est_lct.lct.(t) <= task.Rtlb.Task.deadline)
          (List.init (Rtlb.App.n_tasks i.app) Fun.id));
    qtest ~count:200 "dedicated windows never looser than shared"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        (* Fewer merge opportunities can only shrink windows; the
           dedicated model's mergeability is a subset of the shared
           one's. *)
        let ws = Rtlb.Est_lct.compute (shared_of i) i.app in
        let wd = Rtlb.Est_lct.compute (dedicated_of i) i.app in
        List.for_all
          (fun t ->
            wd.Rtlb.Est_lct.est.(t) >= ws.Rtlb.Est_lct.est.(t)
            && wd.Rtlb.Est_lct.lct.(t) <= ws.Rtlb.Est_lct.lct.(t))
          (List.init (Rtlb.App.n_tasks i.app) Fun.id));
    qtest ~count:200 "zero-communication windows ignore merging"
      (arb_instance ~max_tasks:14 ()) (fun i ->
        (* With m = 0 everywhere, est_i({}) is already optimal: E is the
           plain longest-path recursion. *)
        let stripped =
          Rtlb.App.make
            ~tasks:(Array.to_list (Rtlb.App.tasks i.app))
            ~edges:
              (Dag.fold_edges (Rtlb.App.graph i.app) ~init:[]
                 ~f:(fun acc ~src ~dst _ -> (src, dst, 0) :: acc))
        in
        let w = Rtlb.Est_lct.compute (shared_of i) stripped in
        List.for_all
          (fun t ->
            let expected =
              List.fold_left
                (fun acc p ->
                  max acc
                    (w.Rtlb.Est_lct.est.(p)
                    + (Rtlb.App.task stripped p).Rtlb.Task.compute))
                (Rtlb.App.task stripped t).Rtlb.Task.release
                (Rtlb.App.preds stripped t)
            in
            w.Rtlb.Est_lct.est.(t) = expected)
          (List.init (Rtlb.App.n_tasks stripped) Fun.id));
  ]

let suite =
  [
    ( "est-lct",
      [
        Alcotest.test_case "Table 1: EST column" `Quick table1_est;
        Alcotest.test_case "Table 1: LCT column" `Quick table1_lct;
        Alcotest.test_case "shared and dedicated agree on the example" `Quick
          same_windows_in_dedicated_model;
        Alcotest.test_case "worked derivation of L_9" `Quick worked_l9;
        Alcotest.test_case "worked derivation of L_5" `Quick worked_l5;
        Alcotest.test_case "merge sets of Table 1" `Quick merge_sets;
        Alcotest.test_case "sources and sinks" `Quick boundary_cases;
        Alcotest.test_case "feasibility check" `Quick feasibility_check;
      ]
      @ prop_tests );
  ]
