test/test_extensions.ml: Alcotest Array Dag Helpers List Option Rtlb Sched String
