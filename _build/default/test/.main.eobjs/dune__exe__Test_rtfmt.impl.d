test/test_rtfmt.ml: Alcotest Array Dag Helpers List QCheck Rtfmt Rtlb String
