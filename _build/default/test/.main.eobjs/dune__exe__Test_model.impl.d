test/test_model.ml: Alcotest Fun Helpers List Printf QCheck Rtlb String
