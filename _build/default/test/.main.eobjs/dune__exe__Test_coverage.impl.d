test/test_coverage.ml: Alcotest Array Filename Helpers List Printf QCheck Rat Rtfmt Rtlb Sched String Sys Workload
