test/test_makespan.ml: Alcotest Array Baselines Dag Helpers List Rtlb Sched
