test/test_multiunit.ml: Alcotest Array Dag Helpers List Rtfmt Rtlb Sched String
