test/helpers.ml: Alcotest Printf QCheck QCheck2 QCheck_alcotest Rtfmt Rtlb String Workload
