test/test_est_lct.ml: Alcotest Array Dag Fun Helpers List Printf Rtlb
