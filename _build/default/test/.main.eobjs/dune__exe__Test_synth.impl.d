test/test_synth.ml: Alcotest Helpers Rtlb Sched Synth
