test/test_overlap.ml: Alcotest Helpers Printf QCheck Rtlb
