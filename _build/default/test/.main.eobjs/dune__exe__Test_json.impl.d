test/test_json.ml: Alcotest Array Dag Helpers List Rtfmt Rtlb Sched Workload
