test/test_sched.ml: Alcotest Array Helpers List Rtlb Sched String
