test/test_cost.ml: Alcotest Array Helpers List Lp Rat Rtlb Sched
