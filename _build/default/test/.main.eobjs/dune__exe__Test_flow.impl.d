test/test_flow.ml: Alcotest Array Flow Fun Helpers List Printf QCheck Sched String
