test/test_periodic.ml: Alcotest Array Dag Helpers List Printf QCheck Rat Rtlb String
