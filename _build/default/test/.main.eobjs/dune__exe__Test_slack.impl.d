test/test_slack.ml: Alcotest Array Dag Fun Helpers List Rtlb String Workload
