test/test_lp.ml: Alcotest Array Helpers List Lp Printf QCheck Rat String
