test/test_rat.ml: Alcotest Helpers Printf QCheck Rat
