test/test_simulator.ml: Alcotest Fun Helpers List Rtlb Sched String
