test/test_mutate.ml: Alcotest Array Dag Fun Helpers List QCheck Rtlb Workload
