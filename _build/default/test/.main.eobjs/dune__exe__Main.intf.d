test/main.mli:
