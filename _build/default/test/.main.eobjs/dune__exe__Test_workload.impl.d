test/test_workload.ml: Alcotest Array Dag Helpers List Printf Rtfmt Rtlb Workload
