test/test_baselines.ml: Alcotest Array Baselines Dag Fun Helpers List Rtlb
