test/test_lower_bound.ml: Alcotest Array Helpers List QCheck Rtlb Sched
