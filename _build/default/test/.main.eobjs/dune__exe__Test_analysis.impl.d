test/test_analysis.ml: Alcotest Format Helpers List Rtlb
