test/test_partition.ml: Alcotest Helpers List Rtlb
