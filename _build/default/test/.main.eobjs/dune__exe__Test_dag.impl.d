test/test_dag.ml: Alcotest Array Dag Fun Helpers List Rtlb String
