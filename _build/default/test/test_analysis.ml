(* End-to-end tests of the Analysis driver on the paper example and on
   generated instances. *)

open Helpers

let paper = Rtlb.Paper_example.app

let end_to_end_shared () =
  let a = Rtlb.Analysis.run Rtlb.Paper_example.shared paper in
  check_int "LB_P1" 3 (Rtlb.Analysis.bound_for a "P1");
  check_int "LB_P2" 2 (Rtlb.Analysis.bound_for a "P2");
  check_int "LB_r1" 2 (Rtlb.Analysis.bound_for a "r1");
  check_int "total processors" 5 (Rtlb.Analysis.total_processors a);
  check_bool "feasible" false (Rtlb.Analysis.is_infeasible a);
  Alcotest.check_raises "unknown resource" Not_found (fun () ->
      ignore (Rtlb.Analysis.bound_for a "nope"))

let end_to_end_dedicated () =
  let a = Rtlb.Analysis.run Rtlb.Paper_example.dedicated paper in
  match a.Rtlb.Analysis.cost with
  | Rtlb.Cost.Dedicated_cost d -> check_int "cost" 40 d.Rtlb.Cost.d_cost
  | _ -> Alcotest.fail "expected dedicated cost"

let rejects_unhostable () =
  let broken =
    Rtlb.System.dedicated
      [ Rtlb.System.node_type ~name:"x" ~proc:"P1" ~cost:1 () ]
  in
  match Rtlb.Analysis.run broken paper with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let report_renders () =
  let a = Rtlb.Analysis.run Rtlb.Paper_example.shared paper in
  let text = Format.asprintf "%a" Rtlb.Analysis.pp a in
  List.iter
    (fun needle ->
      check_bool ("report mentions " ^ needle) true
        (string_contains ~needle text))
    [ "LB_P1 = 3"; "LB_P2 = 2"; "LB_r1 = 2"; "T15"; "shared cost" ]

let detects_infeasible_windows () =
  let app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~compute:5 ~deadline:20 ~proc:"P" ();
          Rtlb.Task.make ~id:1 ~compute:5 ~deadline:9 ~proc:"P" ();
        ]
      ~edges:[ (0, 1, 5) ]
      (* task 1 can start no earlier than 5 (merged with task 0), so it
         completes at 10 > 9: infeasible on any platform *)
  in
  let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
  check_bool "infeasible detected" true (Rtlb.Analysis.is_infeasible a)

let prop_tests =
  [
    qtest ~count:100 "bound_for matches the bounds list"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let a = Rtlb.Analysis.run (shared_of i) i.app in
        List.for_all
          (fun (b : Rtlb.Lower_bound.bound) ->
            Rtlb.Analysis.bound_for a b.Rtlb.Lower_bound.resource
            = b.Rtlb.Lower_bound.lb)
          a.Rtlb.Analysis.bounds);
    qtest ~count:100 "analysis is deterministic"
      (arb_instance ~max_tasks:12 ()) (fun i ->
        let a = Rtlb.Analysis.run (shared_of i) i.app in
        let b = Rtlb.Analysis.run (shared_of i) i.app in
        Format.asprintf "%a" Rtlb.Analysis.pp a
        = Format.asprintf "%a" Rtlb.Analysis.pp b);
  ]

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "end to end (shared)" `Quick end_to_end_shared;
        Alcotest.test_case "end to end (dedicated)" `Quick end_to_end_dedicated;
        Alcotest.test_case "unhostable task rejected" `Quick rejects_unhostable;
        Alcotest.test_case "report rendering" `Quick report_renders;
        Alcotest.test_case "infeasible windows surfaced" `Quick
          detects_infeasible_windows;
      ]
      @ prop_tests );
  ]
