(* Tests for the PRNG and the workload generators. *)

open Helpers

let prng_deterministic () =
  let a = Workload.Prng.create 7 and b = Workload.Prng.create 7 in
  let seq g = List.init 20 (fun _ -> Workload.Prng.int g 1000) in
  check_int_list "same seed, same stream" (seq a) (seq b);
  let c = Workload.Prng.create 8 in
  check_bool "different seed, different stream" true (seq a <> seq c)

let prng_ranges () =
  let g = Workload.Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Workload.Prng.int g 10 in
    check_bool "int in range" true (v >= 0 && v < 10);
    let v = Workload.Prng.range g 5 9 in
    check_bool "range inclusive" true (v >= 5 && v <= 9)
  done;
  check_int "range singleton" 3 (Workload.Prng.range g 3 3);
  Alcotest.check_raises "empty range"
    (Invalid_argument "Prng.range: empty range") (fun () ->
      ignore (Workload.Prng.range g 5 4))

let prng_distributions () =
  let g = Workload.Prng.create 99 in
  let hits = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Workload.Prng.int g 10 in
    hits.(v) <- hits.(v) + 1
  done;
  Array.iteri
    (fun i h ->
      check_bool
        (Printf.sprintf "bucket %d roughly uniform (%d)" i h)
        true
        (h > 700 && h < 1300))
    hits;
  let g = Workload.Prng.create 5 in
  let t = ref 0 in
  for _ = 1 to 10_000 do
    if Workload.Prng.chance g 0.3 then incr t
  done;
  check_bool "chance ~0.3" true (!t > 2500 && !t < 3500);
  check_bool "chance 0 never" false (Workload.Prng.chance g 0.0);
  check_bool "chance 1 always" true (Workload.Prng.chance g 1.0)

let prng_weighted () =
  let g = Workload.Prng.create 3 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 10_000 do
    match Workload.Prng.weighted g [ ("a", 3.0); ("b", 1.0) ] with
    | "a" -> incr a
    | _ -> incr b
  done;
  check_bool "3:1 split" true (!a > 6900 && !a < 8100);
  check_bool "b occurs" true (!b > 0)

let generator_deterministic () =
  let cfg = Workload.Gen.default in
  let a = Workload.Gen.generate cfg and b = Workload.Gen.generate cfg in
  check_string "same config, same app" (Rtfmt.Appfile.to_string a)
    (Rtfmt.Appfile.to_string b)

let generator_sizes () =
  List.iter
    (fun (shape, expected) ->
      let cfg = { Workload.Gen.default with Workload.Gen.shape; n_tasks = 24 } in
      let app = Workload.Gen.generate cfg in
      check_int (Workload.Gen.shape_name shape) expected (Rtlb.App.n_tasks app))
    [
      (Workload.Gen.Chain, 24);
      (Workload.Gen.Independent, 24);
      (Workload.Gen.Out_tree, 24);
      (Workload.Gen.Fft { points = 8 }, 32);
      (* 8 * (log2 8 + 1) *)
      (Workload.Gen.Gauss { size = 4 }, 9);
      (* 3 pivots + updates 3+2+1 *)
    ]

let fft_structure () =
  let cfg = { Workload.Gen.default with Workload.Gen.shape = Workload.Gen.Fft { points = 4 } } in
  let app = Workload.Gen.generate cfg in
  let g = Rtlb.App.graph app in
  (* 4-point FFT: 12 tasks, 2 butterfly stages of 8 edges each. *)
  check_int "tasks" 12 (Rtlb.App.n_tasks app);
  check_int "edges" 16 (Dag.n_edges g);
  (* stage-0 tasks are the only sources *)
  check_int "sources" 4 (List.length (Dag.sources g));
  check_int "sinks" 4 (List.length (Dag.sinks g))

let chain_is_a_chain () =
  let cfg = { Workload.Gen.default with Workload.Gen.shape = Workload.Gen.Chain; n_tasks = 6 } in
  let app = Workload.Gen.generate cfg in
  let g = Rtlb.App.graph app in
  check_int_list "sources" [ 0 ] (Dag.sources g);
  check_int_list "sinks" [ 5 ] (Dag.sinks g);
  check_int "edges" 5 (Dag.n_edges g)

let laxity_controls_deadline () =
  let tight = { Workload.Gen.default with Workload.Gen.laxity = 1.0; ccr = 0.0 } in
  let loose = { tight with Workload.Gen.laxity = 3.0 } in
  let d app = Rtlb.App.horizon app in
  check_bool "looser laxity, later deadline" true
    (d (Workload.Gen.generate loose) > d (Workload.Gen.generate tight))

let systems_host_everything () =
  let cfg = { Workload.Gen.default with Workload.Gen.resource_types = [ ("r1", 0.5); ("r2", 0.5) ] } in
  let app = Workload.Gen.generate cfg in
  (match Rtlb.System.validate_for (Workload.Gen.dedicated_system cfg) app with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* shared systems price every resource that can occur *)
  let system = Workload.Gen.shared_system cfg in
  List.iter
    (fun r -> ignore (Rtlb.System.resource_cost system r))
    (Rtlb.App.resource_set app)

let prop_tests =
  [
    qtest ~count:200 "generated instances are feasible by construction"
      (arb_instance ~max_tasks:16 ()) (fun i ->
        let w = Rtlb.Est_lct.compute (shared_of i) i.app in
        Rtlb.Est_lct.feasible_windows i.app w = Ok ());
    qtest ~count:200 "zero ccr generates zero-size messages"
      (arb_instance ~max_tasks:10 ()) (fun i ->
        let cfg = { i.config with Workload.Gen.ccr = 0.0 } in
        let app = Workload.Gen.generate cfg in
        Dag.fold_edges (Rtlb.App.graph app) ~init:true ~f:(fun acc ~src:_ ~dst:_ m ->
            acc && m = 0));
  ]

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "prng determinism" `Quick prng_deterministic;
        Alcotest.test_case "prng ranges" `Quick prng_ranges;
        Alcotest.test_case "prng distribution" `Quick prng_distributions;
        Alcotest.test_case "prng weighted" `Quick prng_weighted;
        Alcotest.test_case "generator determinism" `Quick generator_deterministic;
        Alcotest.test_case "intrinsic sizes" `Quick generator_sizes;
        Alcotest.test_case "fft structure" `Quick fft_structure;
        Alcotest.test_case "chain structure" `Quick chain_is_a_chain;
        Alcotest.test_case "laxity" `Quick laxity_controls_deadline;
        Alcotest.test_case "systems host generated tasks" `Quick
          systems_host_everything;
      ]
      @ prop_tests );
  ]
