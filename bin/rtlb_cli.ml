(* rtlb — command-line front end for the lower-bound analysis.

   Subcommands:
     analyze   run the four-step analysis on an application file
     check     validate an application file, one diagnostic per line
     example   reproduce the paper's Section 8 example
     schedule  run the validating list scheduler on a platform
     generate  emit a synthetic application in the appfile format
     dot       emit Graphviz for an application file *)

open Cmdliner

(* ---- signals ----------------------------------------------------- *)

(* First SIGINT/SIGTERM: request cooperative cancellation — the bound
   scans stop claiming work at their next chunk claim, the analysis
   comes back flagged partial, and the command flushes its (valid,
   partial) output before exiting 128+signum.  Second signal: the user
   insists — exit immediately. *)
let interrupted : int option ref = ref None

let install_signal_handlers () =
  let handle code _ =
    match !interrupted with
    | Some _ -> exit code
    | None ->
        interrupted := Some code;
        Rtlb_par.Pool.request_cancel ()
  in
  List.iter
    (fun (signal, code) ->
      try Sys.set_signal signal (Sys.Signal_handle (handle code))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, 130); (Sys.sigterm, 143) ]

let exit_if_interrupted () =
  match !interrupted with Some code -> exit code | None -> ()

let read_appfile path =
  try Ok (Rtfmt.Appfile.parse_file path) with
  | Rtfmt.Appfile.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error m -> Error m

(* --jobs N / RTLB_JOBS: domain count for the parallel analysis engine.
   Default is sequential; the parallel path is bit-identical, so the
   flag only changes wall time. *)
let jobs_arg =
  let doc =
    "Run the analysis on $(docv) domains (defaults to the \
     $(b,RTLB_JOBS) environment variable, or 1 = sequential)."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let with_jobs jobs f =
  let jobs =
    match jobs with
    | Some n -> max 1 n
    | None -> (
        match Sys.getenv_opt "RTLB_JOBS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some n when n >= 1 -> n
            | _ -> 1)
        | None -> 1)
  in
  if jobs <= 1 then f None
  else Rtlb_par.Pool.with_pool ~jobs (fun pool -> f (Some pool))

let system_arg =
  let doc =
    "Force the system model when the file does not declare one: $(b,uniform) \
     prices every resource at 1."
  in
  Arg.(value & opt (some string) None & info [ "system" ] ~docv:"MODEL" ~doc)

let resolve_system file_system override app =
  match (file_system, override) with
  | Some s, None -> Ok s
  | None, (Some "uniform" | None) ->
      Ok (Rtlb.System.shared_uniform ~resources:(Rtlb.App.resource_set app))
  | None, Some other ->
      Error (Printf.sprintf "unknown system override %S" other)
  | Some _, Some _ -> Error "file declares a system; drop --system"

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

(* --timeout SEC: wall-clock budget for the anytime analysis.  The scans
   stop claiming work at the deadline; whatever bounds were reached are
   reported, flagged as partial. *)
let timeout_arg =
  let doc =
    "Give the bound scans at most $(docv) seconds of wall-clock time; \
     results cut short by the budget are flagged as partial (and carry \
     $(b,partial: true) in JSON output)."
  in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)

let deadline_of = function
  | None -> None
  | Some sec ->
      let budget_ns = Int64.of_float (Float.max 0.0 sec *. 1e9) in
      Some (Int64.add (Rtlb_par.Pool.now_ns ()) budget_ns)

(* ---- observability ---------------------------------------------- *)

(* --trace FILE / --stats build one tracer shared by the whole run.
   RTLB_FAKE_CLOCK=1 swaps in the deterministic fake clock — a test
   hook (the golden trace output is byte-stable under it), documented
   in docs/OBSERVABILITY.md. *)
let trace_arg =
  let doc =
    "Write the run as Chrome trace_event JSON to $(docv) (open in \
     chrome://tracing or ui.perfetto.dev); $(b,-) writes to stdout."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the observability summary (span totals, analysis \
           counters, per-worker chunk accounting); with $(b,--json), a \
           $(b,stats) object is appended to the JSON output instead.")

let tracer_for ~trace ~stats =
  if trace = None && not stats then None
  else
    let clock =
      match Sys.getenv_opt "RTLB_FAKE_CLOCK" with
      | None | Some "" | Some "0" -> Rtlb_obs.Clock.monotonic
      | Some _ -> Rtlb_obs.Clock.fake ()
    in
    Some (Rtlb_obs.Tracer.make ~clock ())

let write_trace trace tracer =
  match (trace, tracer) with
  | None, _ | _, None -> ()
  | Some "-", Some tr -> print_string (Rtlb_obs.Trace_event.to_string tr)
  | Some file, Some tr ->
      Rtfmt.write_string_atomic file (Rtlb_obs.Trace_event.to_string tr);
      Printf.printf "wrote trace to %s\n" file

(* ---- analyze ---------------------------------------------------- *)

let analyze_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the analysis as JSON.")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Full tabular report with criticality and demand profiles.")
  in
  let engine_arg =
    let doc =
      "Analysis engine: $(b,record) walks the per-task records and keeps \
       merge traces; $(b,soa) packs the instance into flat arrays with \
       dominance pruning — value-identical results (merge traces empty) \
       and much faster on large DAGs.  Set RTLB_SOA_NO_PRUNE to disable \
       pruning within the soa engine."
    in
    Arg.(
      value
      & opt (enum [ ("record", `Record); ("soa", `Soa) ]) `Record
      & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let run path override json full jobs timeout trace stats engine =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        match resolve_system system override app with
        | Error e -> `Error (false, e)
        | Ok system ->
            let deadline_ns = deadline_of timeout in
            let tracer = tracer_for ~trace ~stats in
            let analysis =
              with_jobs jobs (fun pool ->
                  match engine with
                  | `Record ->
                      Rtlb.Analysis.run ?pool ?deadline_ns ?tracer system app
                  | `Soa ->
                      Rtlb.Soa.analyze ?pool ?deadline_ns ?tracer system app)
            in
            let summary = Option.map Rtlb_obs.Stats.of_tracer tracer in
            if json then
              print_endline
                (Rtfmt.Json.to_string
                   (Rtfmt.Json.of_analysis
                      ?stats:(if stats then summary else None)
                      analysis))
            else begin
              if full then
                print_string
                  (Rtfmt.Report.render
                     ~demand_windows:(max 1 (Rtlb.App.horizon app / 8))
                     analysis)
              else begin
                Format.printf "%a@." Rtlb.Analysis.pp analysis;
                match Rtlb.Est_lct.feasible_windows app
                        analysis.Rtlb.Analysis.windows with
                | Ok () -> ()
                | Error e ->
                    Format.printf
                      "NOTE: application infeasible on this model: %s@." e
              end;
              match (stats, summary) with
              | true, Some s ->
                  print_newline ();
                  print_string (Rtfmt.Stats_render.render s)
              | _ -> ()
            end;
            write_trace trace tracer;
            exit_if_interrupted ();
            `Ok ())
  in
  let doc = "Run the lower-bound analysis on an application file." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      ret
        (const run $ file_arg $ system_arg $ json_arg $ full_arg $ jobs_arg
       $ timeout_arg $ trace_arg $ stats_arg $ engine_arg))

(* ---- check ------------------------------------------------------ *)

let check_cmd =
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat warnings as errors (exit 2 on W2xx).")
  in
  let run path strict =
    let diags =
      match Rtfmt.Appfile.parse_spec_file path with
      | spec -> Rtfmt.Appfile.check spec
      | exception Rtfmt.Appfile.Parse_error (l, m) ->
          [
            {
              Rtlb.Validate.d_code = "E100";
              d_severity = Rtlb.Validate.Error;
              d_subject = "application";
              d_message = m;
              d_line = (if l > 0 then Some l else None);
            };
          ]
      | exception Sys_error m ->
          [
            {
              Rtlb.Validate.d_code = "E100";
              d_severity = Rtlb.Validate.Error;
              d_subject = "application";
              d_message = m;
              d_line = None;
            };
          ]
    in
    List.iter
      (fun d -> print_endline (Rtlb.Validate.to_string ~file:path d))
      diags;
    if Rtlb.Validate.has_errors diags || (strict && diags <> []) then exit 2;
    `Ok ()
  in
  let doc =
    "Validate an application file: every diagnostic, one per line \
     ($(b,FILE:LINE: CODE subject: message)).  Exit 0 when clean (or \
     warnings only), 2 when errors are found.  Codes are stable; see \
     docs/DIAGNOSTICS.md."
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(ret (const run $ file_arg $ strict_arg))

(* ---- example ---------------------------------------------------- *)

let example_cmd =
  let run () =
    let app = Rtlb.Paper_example.app in
    Format.printf "%a@.@." Rtlb.Analysis.pp
      (Rtlb.Analysis.run Rtlb.Paper_example.shared app);
    Format.printf "%a@." Rtlb.Analysis.pp
      (Rtlb.Analysis.run Rtlb.Paper_example.dedicated app)
  in
  let doc = "Reproduce the paper's Section 8 illustrative example." in
  Cmd.v (Cmd.info "example" ~doc) Term.(const run $ const ())

(* ---- schedule --------------------------------------------------- *)

let schedule_cmd =
  let counts_conv =
    let parse_kv kv =
      match String.split_on_char '=' kv with
      | [ k; v ] when k <> "" -> (
          match int_of_string_opt v with
          | Some n -> Ok (k, n)
          | None ->
              Error
                (`Msg
                   (Printf.sprintf
                      "in %S: %S is not an integer (expected NAME=COUNT)" kv v)))
      | _ ->
          Error
            (`Msg
               (Printf.sprintf
                  "bad token %S: expected NAME=COUNT pairs, e.g. P1=3,r1=2" kv))
    in
    let parse s =
      String.split_on_char ',' s
      |> List.filter (( <> ) "")
      |> List.fold_left
           (fun acc kv ->
             Result.bind acc (fun l ->
                 Result.map (fun p -> p :: l) (parse_kv kv)))
           (Ok [])
      |> Result.map List.rev
    in
    let print ppf l =
      Format.fprintf ppf "%s"
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) l))
    in
    Arg.conv (parse, print)
  in
  let units_arg =
    let doc =
      "Platform as NAME=COUNT pairs, e.g. $(b,P1=3,P2=2,r1=2).  Names \
       matching task processor types become processors, the rest resource \
       pools (or node types for a dedicated file)."
    in
    Arg.(
      required
      & opt (some counts_conv) None
      & info [ "units"; "u" ] ~docv:"COUNTS" ~doc)
  in
  let gantt_arg =
    Arg.(value & flag & info [ "gantt"; "g" ] ~doc:"Draw an ASCII Gantt chart.")
  in
  let svg_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Also write an SVG Gantt chart.")
  in
  let run path units gantt svg =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        let platform =
          match system with
          | Some (Rtlb.System.Dedicated nts) ->
              let find name =
                List.find_opt
                  (fun (nt : Rtlb.System.node_type) ->
                    String.equal nt.Rtlb.System.nt_name name)
                  nts
              in
              Result.map Sched.Platform.dedicated
                (List.fold_left
                   (fun acc (name, c) ->
                     Result.bind acc (fun l ->
                         match find name with
                         | Some nt -> Ok ((nt, c) :: l)
                         | None -> Error ("unknown node type " ^ name)))
                   (Ok []) units)
          | _ ->
              let proc_types =
                Array.to_list (Rtlb.App.tasks app)
                |> List.map (fun (t : Rtlb.Task.t) -> t.Rtlb.Task.proc)
                |> List.sort_uniq String.compare
              in
              let procs, resources =
                List.partition (fun (n, _) -> List.mem n proc_types) units
              in
              Ok (Sched.Platform.shared ~procs ~resources)
        in
        match platform with
        | Error e -> `Error (false, e)
        | Ok platform -> (
            match Sched.List_scheduler.run app platform with
            | Ok s ->
                Format.printf "feasible schedule found:@.%a@."
                  (Sched.Schedule.pp app) s;
                if gantt then
                  print_string
                    (Sched.Gantt.render ~show_resources:true app platform s);
                (match svg with
                | None -> ()
                | Some file ->
                    Rtfmt.write_string_atomic file
                      (Sched.Gantt.render_svg ~show_resources:true app
                         platform s);
                    Printf.printf "wrote %s\n" file);
                `Ok ()
            | Error f ->
                let task = Rtlb.App.task app f.Sched.List_scheduler.f_task in
                Format.printf
                  "list scheduler failed: %s (deadline %d, best start %s)@."
                  task.Rtlb.Task.name f.Sched.List_scheduler.f_deadline
                  (if f.Sched.List_scheduler.f_start = max_int then "none"
                   else string_of_int f.Sched.List_scheduler.f_start);
                `Ok ()))
  in
  let doc = "Try to schedule an application on an explicit platform." in
  Cmd.v
    (Cmd.info "schedule" ~doc)
    Term.(ret (const run $ file_arg $ units_arg $ gantt_arg $ svg_arg))

(* ---- generate --------------------------------------------------- *)

let generate_cmd =
  let shape_conv =
    let parse = function
      | "layered" -> Ok (Workload.Gen.Layered { layers = 4; density = 0.4 })
      | "series-parallel" | "sp" -> Ok Workload.Gen.Series_parallel
      | "fork-join" | "fj" -> Ok (Workload.Gen.Fork_join { width = 4 })
      | "out-tree" -> Ok Workload.Gen.Out_tree
      | "in-tree" -> Ok Workload.Gen.In_tree
      | "gauss" -> Ok (Workload.Gen.Gauss { size = 5 })
      | "fft" -> Ok (Workload.Gen.Fft { points = 8 })
      | "stencil" -> Ok (Workload.Gen.Stencil { rows = 4; cols = 5 })
      | "chain" -> Ok Workload.Gen.Chain
      | "independent" -> Ok Workload.Gen.Independent
      | s -> Error (`Msg (Printf.sprintf "unknown shape %S" s))
    in
    Arg.conv (parse, fun ppf s -> Format.fprintf ppf "%s" (Workload.Gen.shape_name s))
  in
  let shape_arg =
    Arg.(
      value
      & opt shape_conv (Workload.Gen.Layered { layers = 4; density = 0.4 })
      & info [ "shape" ] ~docv:"SHAPE")
  in
  let tasks_arg = Arg.(value & opt int 20 & info [ "tasks"; "n" ] ~docv:"N") in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let ccr_arg = Arg.(value & opt float 0.5 & info [ "ccr" ] ~docv:"CCR") in
  let laxity_arg =
    Arg.(value & opt float 1.5 & info [ "laxity" ] ~docv:"L")
  in
  let run shape n_tasks seed ccr laxity =
    let cfg =
      { Workload.Gen.default with Workload.Gen.shape; n_tasks; seed; ccr; laxity }
    in
    let app = Workload.Gen.generate cfg in
    print_string
      (Rtfmt.Appfile.to_string ~system:(Workload.Gen.shared_system cfg) app)
  in
  let doc = "Generate a synthetic application in the appfile format." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const run $ shape_arg $ tasks_arg $ seed_arg $ ccr_arg $ laxity_arg)

(* ---- profile ----------------------------------------------------- *)

let profile_cmd =
  let resource_arg =
    Arg.(required & opt (some string) None & info [ "resource"; "r" ] ~docv:"RES")
  in
  let window_arg = Arg.(value & opt int 0 & info [ "window"; "w" ] ~docv:"W") in
  let run path override resource window =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        match resolve_system system override app with
        | Error e -> `Error (false, e)
        | Ok system ->
            let w = Rtlb.Est_lct.compute system app in
            let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
            let window =
              if window > 0 then window
              else max 1 (Rtlb.App.horizon app / 8)
            in
            let profile =
              Rtlb.Demand.sliding ~est ~lct app ~resource ~window
            in
            print_string (Rtlb.Demand.render profile);
            `Ok ())
  in
  let doc = "Show the mandatory-demand profile of one resource." in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(ret (const run $ file_arg $ system_arg $ resource_arg $ window_arg))

(* ---- sensitivity -------------------------------------------------- *)

let sensitivity_cmd =
  let factors_arg =
    let doc = "Comma-separated deadline multipliers." in
    Arg.(
      value
      & opt (list float) [ 0.8; 0.9; 1.0; 1.25; 1.5; 2.0; 3.0 ]
      & info [ "factors" ] ~docv:"F,F,..." ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Write sweep progress to $(docv) (atomically, after each computed \
       factor) and, when the file already holds a checkpoint of this \
       exact instance, resume from it: completed factors are reused \
       bit-identically, only the rest are analysed.  A checkpoint of a \
       different or edited instance is reported stale and recomputed.  \
       The file is deleted when the sweep completes."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let every_arg =
    let doc = "Persist the checkpoint every $(docv) computed factors." in
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let run path override factors jobs timeout checkpoint every trace stats =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        match resolve_system system override app with
        | Error e -> `Error (false, e)
        | Ok system ->
            let deadline_ns = deadline_of timeout in
            let tracer = tracer_for ~trace ~stats in
            let kind = "sensitivity" in
            let fingerprint =
              Rtlb.Incremental.instance_fingerprint system app
            in
            let loaded =
              match checkpoint with
              | None -> None
              | Some file -> (
                  match Rtfmt.Checkpoint.load file with
                  | Ok None -> None
                  | Ok (Some t) -> (
                      match
                        Rtfmt.Checkpoint.validate ~kind ~fingerprint t
                      with
                      | Ok () -> Some t
                      | Error reason ->
                          Printf.eprintf "rtlb: ignoring %s: %s\n%!" file
                            reason;
                          None)
                  | Error reason ->
                      Printf.eprintf "rtlb: ignoring %s: %s\n%!" file reason;
                      None)
            in
            let resume =
              Option.map
                (fun t factor ->
                  Option.bind
                    (Rtfmt.Checkpoint.find t
                       (Rtfmt.Checkpoint.factor_key factor))
                    (fun j -> Result.to_option (Rtfmt.Checkpoint.sample_of_json j)))
                loaded
            in
            let state =
              ref
                (match loaded with
                | Some t -> t
                | None -> Rtfmt.Checkpoint.create ~kind ~fingerprint)
            in
            let unsaved = ref 0 in
            let on_sample =
              Option.map
                (fun file sample ->
                  (* A budget-cut sample is valid but below the exhaustive
                     value; persisting it would pin the weaker bound into a
                     resumed run, so only exhaustive samples checkpoint. *)
                  if not sample.Rtlb.Sensitivity.s_partial then begin
                    state :=
                      Rtfmt.Checkpoint.add !state
                        ~key:
                          (Rtfmt.Checkpoint.factor_key
                             sample.Rtlb.Sensitivity.s_factor)
                        (Rtfmt.Checkpoint.sample_to_json sample);
                    incr unsaved;
                    if !unsaved >= max 1 every then begin
                      unsaved := 0;
                      Rtfmt.Checkpoint.save ?tracer file !state
                    end
                  end)
                checkpoint
            in
            let samples =
              with_jobs jobs (fun pool ->
                  Rtlb.Sensitivity.deadline_sweep ?pool ?deadline_ns ?tracer
                    ?on_sample ?resume system app ~factors)
            in
            (match checkpoint with
            | Some file when !unsaved > 0 ->
                Rtfmt.Checkpoint.save ?tracer file !state
            | _ -> ());
            print_string (Rtlb.Sensitivity.render samples);
            (match (stats, tracer) with
            | true, Some tr ->
                print_newline ();
                print_string
                  (Rtfmt.Stats_render.render (Rtlb_obs.Stats.of_tracer tr))
            | _ -> ());
            write_trace trace tracer;
            (match checkpoint with
            | Some file
              when !interrupted = None
                   && List.for_all
                        (fun s -> not s.Rtlb.Sensitivity.s_partial)
                        samples ->
                Rtfmt.Checkpoint.remove file
            | _ -> ());
            exit_if_interrupted ();
            `Ok ())
  in
  let doc = "Sweep deadline tightness and report the bounds at each level." in
  Cmd.v
    (Cmd.info "sensitivity" ~doc)
    Term.(
      ret
        (const run $ file_arg $ system_arg $ factors_arg $ jobs_arg
       $ timeout_arg $ checkpoint_arg $ every_arg $ trace_arg $ stats_arg))

(* ---- whatif -------------------------------------------------------- *)

let whatif_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the what-if result as JSON (same encoding the serve \
             daemon replies with); interrupted runs still flush valid \
             JSON flagged $(b,partial: true).")
  in
  let task_arg =
    let doc = "Task id to edit (0-based vertex index)." in
    Arg.(required & opt (some int) None & info [ "task"; "t" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc = "New deadline for the task." in
    Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"D" ~doc)
  in
  let release_arg =
    let doc = "New release time for the task." in
    Arg.(value & opt (some int) None & info [ "release" ] ~docv:"R" ~doc)
  in
  let compute_arg =
    let doc = "New computation time for the task." in
    Arg.(value & opt (some int) None & info [ "compute" ] ~docv:"C" ~doc)
  in
  let cost_line = function
    | Rtlb.Cost.Shared_cost { s_cost; _ } -> Printf.sprintf "cost >= %d" s_cost
    | Rtlb.Cost.Dedicated_cost d ->
        Printf.sprintf "cost >= %d" d.Rtlb.Cost.d_cost
    | Rtlb.Cost.No_feasible_system r ->
        Printf.sprintf "no feasible system (%s)" r
  in
  let run path override task deadline release compute jobs timeout json =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        match resolve_system system override app with
        | Error e -> `Error (false, e)
        | Ok system -> (
            let edits =
              List.filter_map
                (fun e -> e)
                [
                  Option.map
                    (fun release ->
                      Rtlb.Incremental.Set_release { task; release })
                    release;
                  Option.map
                    (fun deadline ->
                      Rtlb.Incremental.Set_deadline { task; deadline })
                    deadline;
                  Option.map
                    (fun compute ->
                      Rtlb.Incremental.Set_compute { task; compute })
                    compute;
                ]
            in
            if edits = [] then
              `Error
                (true, "one of --deadline, --release or --compute is required")
            else
              let deadline_ns = deadline_of timeout in
              let tracer = Rtlb_obs.Tracer.make () in
              match
                with_jobs jobs (fun pool ->
                    let handle =
                      Rtlb.Incremental.create ?pool ?deadline_ns system app
                    in
                    ( handle,
                      Rtlb.Incremental.edit ?pool ?deadline_ns ~tracer handle
                        edits ))
              with
              | exception Invalid_argument e -> `Error (false, e)
              | handle, edited ->
                  let base = Rtlb.Incremental.base handle in
                  if json then
                    print_endline
                      (Rtfmt.Json.to_string
                         (Rtfmt.Json.of_whatif ~base ~edited))
                  else begin
                  let name = (Rtlb.App.task app task).Rtlb.Task.name in
                  Printf.printf "what-if: task %d (%s)%s%s%s\n" task name
                    (match release with
                    | Some r -> Printf.sprintf " release=%d" r
                    | None -> "")
                    (match deadline with
                    | Some d -> Printf.sprintf " deadline=%d" d
                    | None -> "")
                    (match compute with
                    | Some c -> Printf.sprintf " compute=%d" c
                    | None -> "");
                  Printf.printf "%-10s %8s %8s\n" "resource" "LB" "LB'";
                  List.iter2
                    (fun (b : Rtlb.Lower_bound.bound)
                         (b' : Rtlb.Lower_bound.bound) ->
                      Printf.printf "%-10s %8d %8d%s\n" b.Rtlb.Lower_bound.resource
                        b.Rtlb.Lower_bound.lb b'.Rtlb.Lower_bound.lb
                        (if b'.Rtlb.Lower_bound.lb <> b.Rtlb.Lower_bound.lb
                         then
                           Printf.sprintf "  (%+d)"
                             (b'.Rtlb.Lower_bound.lb - b.Rtlb.Lower_bound.lb)
                         else ""))
                    base.Rtlb.Analysis.bounds edited.Rtlb.Analysis.bounds;
                  Printf.printf "%s -> %s\n"
                    (cost_line base.Rtlb.Analysis.cost)
                    (cost_line edited.Rtlb.Analysis.cost);
                  if Rtlb.Analysis.is_partial edited then
                    print_endline "(partial: time budget expired)";
                  Printf.printf
                    "incremental: %d task window(s) recomputed, %d block \
                     scan(s) reused\n"
                    (Rtlb_obs.Tracer.counter tracer
                       Rtlb_obs.Tracer.Cone_tasks)
                    (Rtlb_obs.Tracer.counter tracer
                       Rtlb_obs.Tracer.Cache_hits)
                  end;
                  (* a SIGINT/SIGTERM mid-edit still flushed the valid
                     partial result above; acknowledge it now *)
                  exit_if_interrupted ();
                  `Ok ()))
  in
  let doc =
    "Re-analyse one task edit against a cached base analysis (what-if \
     query)."
  in
  Cmd.v
    (Cmd.info "whatif" ~doc)
    Term.(
      ret
        (const run $ file_arg $ system_arg $ task_arg $ deadline_arg
       $ release_arg $ compute_arg $ jobs_arg $ timeout_arg $ json_arg))

(* ---- timebound ----------------------------------------------------- *)

let timebound_cmd =
  let counts_arg =
    let doc = "Platform capacities as NAME=COUNT pairs." in
    Arg.(
      required
      & opt (some string) None
      & info [ "units"; "u" ] ~docv:"COUNTS" ~doc)
  in
  let run path override counts =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        match resolve_system system override app with
        | Error e -> `Error (false, e)
        | Ok system -> (
            let table =
              String.split_on_char ',' counts
              |> List.filter (( <> ) "")
              |> List.filter_map (fun kv ->
                     match String.split_on_char '=' kv with
                     | [ k; v ] -> Option.map (fun n -> (k, n)) (int_of_string_opt v)
                     | _ -> None)
            in
            let capacity r = Option.value ~default:0 (List.assoc_opt r table) in
            match Rtlb.Time_bound.minimum_completion_time system app ~capacity with
            | None ->
                Printf.printf
                  "no completion time exists: some needed resource has zero                    capacity
";
                `Ok ()
            | Some tb ->
                Printf.printf
                  "no schedule on this platform can finish before t = %d
"
                  tb.Rtlb.Time_bound.tb_omega;
                List.iter
                  (fun (r, lb) -> Printf.printf "  LB_%s at that horizon: %d
" r lb)
                  tb.Rtlb.Time_bound.tb_bounds;
                (match tb.Rtlb.Time_bound.tb_binding with
                | [] -> Printf.printf "  (window feasibility binds)
"
                | rs ->
                    Printf.printf "  binding resource(s): %s
"
                      (String.concat ", " rs));
                `Ok ()))
  in
  let doc =
    "Lower-bound the completion time of the application on a given platform."
  in
  Cmd.v
    (Cmd.info "timebound" ~doc)
    Term.(ret (const run $ file_arg $ system_arg $ counts_arg))

(* ---- critical ------------------------------------------------------ *)

let critical_cmd =
  let run path override jobs =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; system } -> (
        match resolve_system system override app with
        | Error e -> `Error (false, e)
        | Ok system ->
            let analysis =
              with_jobs jobs (fun pool -> Rtlb.Analysis.run ?pool system app)
            in
            print_string (Rtlb.Slack.render app (Rtlb.Slack.analyse analysis));
            `Ok ())
  in
  let doc = "Criticality report: zero-slack tasks and bottleneck epochs." in
  Cmd.v
    (Cmd.info "critical" ~doc)
    Term.(ret (const run $ file_arg $ system_arg $ jobs_arg))

(* ---- horn ---------------------------------------------------------- *)

let horn_cmd =
  let m_arg = Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M") in
  let run path m =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; _ } -> (
        let jobs = Sched.Horn.of_app app in
        match m with
        | Some m ->
            Printf.printf
              "preemptive relaxation (independent jobs, %d processors): %s\n" m
              (if Sched.Horn.feasible ~jobs ~m then "feasible" else "infeasible");
            `Ok ()
        | None ->
            Printf.printf
              "preemptive relaxation: minimum %d processor(s) (Theorem 3 \
               density bound: %d)\n"
              (Sched.Horn.min_processors ~jobs)
              (Sched.Horn.density_bound ~jobs);
            `Ok ())
  in
  let doc =
    "Exact preemptive feasibility of the application's jobs (precedence and \
     resources relaxed away) via Horn's flow construction."
  in
  Cmd.v (Cmd.info "horn" ~doc) Term.(ret (const run $ file_arg $ m_arg))

(* ---- recurrent ---------------------------------------------------- *)

(* Sporadic DAG task sets (lib/recurrent): the modern response-time
   baselines plus the hyperperiod-unrolling bridge into the paper's
   one-shot model.  Output mirrors analyze/check: a table by default,
   machine-readable JSON with --json. *)

let read_rfile path =
  try Ok (Recurrent.Rfile.parse_file path) with
  | Recurrent.Rfile.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" path line msg)
  | Sys_error m -> Error m

let recurrent_cmd =
  let open Recurrent in
  let m_arg =
    Arg.(
      value & opt int 2
      & info [ "m" ] ~docv:"M" ~doc:"Number of identical processors.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let rfile_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let hyperperiod_opt model =
    match Unroll.hyperperiod model with
    | h -> Some (h, Unroll.job_count model)
    | exception Invalid_argument _ -> None
  in
  let analyze_run path m json =
    if m <= 0 then `Error (false, "--m must be positive")
    else
      match read_rfile path with
      | Error e -> `Error (false, e)
      | Ok model ->
          let rows =
            List.map
              (fun (dt : Model.dtask) ->
                ( dt,
                  Model.vol dt,
                  Model.len dt,
                  Baselines.He_long_paths.graham ~m dt,
                  Baselines.He_long_paths.bound ~m dt,
                  Baselines.Multi_path.bound ~m dt ))
              model.Model.tasks
          in
          let hp = hyperperiod_opt model in
          if json then
            print_endline
              (Rtfmt.Json.to_string
                 (Rtfmt.Json.Obj
                    [
                      ("m", Rtfmt.Json.Int m);
                      ( "class",
                        Rtfmt.Json.Str
                          (Model.class_name (Model.taskset_class model)) );
                      ( "utilisation",
                        Rtfmt.Json.Str (Rat.to_string (Model.utilisation model))
                      );
                      ( "hyperperiod",
                        match hp with
                        | Some (h, _) -> Rtfmt.Json.Int h
                        | None -> Rtfmt.Json.Null );
                      ( "jobs_per_hyperperiod",
                        match hp with
                        | Some (_, j) -> Rtfmt.Json.Int j
                        | None -> Rtfmt.Json.Null );
                      ( "tasks",
                        Rtfmt.Json.List
                          (List.map
                             (fun (dt, vol, len, graham, he, mp) ->
                               Rtfmt.Json.Obj
                                 [
                                   ("name", Rtfmt.Json.Str dt.Model.dt_name);
                                   ( "vertices",
                                     Rtfmt.Json.Int
                                       (Array.length dt.Model.dt_vertices) );
                                   ("vol", Rtfmt.Json.Int vol);
                                   ("len", Rtfmt.Json.Int len);
                                   ("period", Rtfmt.Json.Int dt.Model.dt_period);
                                   ( "deadline",
                                     Rtfmt.Json.Int dt.Model.dt_deadline );
                                   ( "class",
                                     Rtfmt.Json.Str
                                       (Model.class_name (Model.classify dt)) );
                                   ("graham", Rtfmt.Json.Int graham);
                                   ("long_paths", Rtfmt.Json.Int he);
                                   ("multi_path", Rtfmt.Json.Int mp);
                                 ])
                             rows) );
                    ]))
          else begin
            Printf.printf
              "recurrent task set: %d task(s), class %s, m = %d\n"
              (List.length model.Model.tasks)
              (Model.class_name (Model.taskset_class model))
              m;
            (match hp with
            | Some (h, jobs) ->
                Printf.printf
                  "utilisation %s, hyperperiod %d, %d job(s) per hyperperiod\n\n"
                  (Rat.to_string (Model.utilisation model))
                  h jobs
            | None ->
                Printf.printf
                  "utilisation %s, hyperperiod overflows int\n\n"
                  (Rat.to_string (Model.utilisation model)));
            let table =
              Rtfmt.Table.create
                [
                  "task"; "V"; "vol"; "len"; "T"; "D"; "class"; "graham";
                  "long-paths"; "multi-path";
                ]
            in
            List.iter
              (fun (dt, vol, len, graham, he, mp) ->
                Rtfmt.Table.add_row table
                  [
                    dt.Model.dt_name;
                    string_of_int (Array.length dt.Model.dt_vertices);
                    string_of_int vol;
                    string_of_int len;
                    string_of_int dt.Model.dt_period;
                    string_of_int dt.Model.dt_deadline;
                    Model.class_name (Model.classify dt);
                    string_of_int graham;
                    string_of_int he;
                    string_of_int mp;
                  ])
              rows;
            Rtfmt.Table.print table
          end;
          `Ok ()
  in
  let feasible_run path m json =
    if m <= 0 then `Error (false, "--m must be positive")
    else
      match read_rfile path with
      | Error e -> `Error (false, e)
      | Ok model ->
          let necessary = Baselines.Bonifaci.necessary ~m model in
          let edf = Baselines.Bonifaci.edf_schedulable ~m model in
          let dm = Baselines.Bonifaci.dm_schedulable ~m model in
          let edf_bounds = Baselines.Bonifaci.edf_response_bounds ~m model in
          let dm_bounds = Baselines.Bonifaci.dm_response_bounds ~m model in
          let verdict =
            if not necessary then "infeasible"
            else if edf then "schedulable under global EDF"
            else if dm then "schedulable under deadline-monotonic"
            else "unknown"
          in
          if json then
            print_endline
              (Rtfmt.Json.to_string
                 (Rtfmt.Json.Obj
                    [
                      ("m", Rtfmt.Json.Int m);
                      ("necessary", Rtfmt.Json.Bool necessary);
                      ("edf_schedulable", Rtfmt.Json.Bool edf);
                      ("dm_schedulable", Rtfmt.Json.Bool dm);
                      ("verdict", Rtfmt.Json.Str verdict);
                      ( "tasks",
                        Rtfmt.Json.List
                          (List.map
                             (fun (dt : Model.dtask) ->
                               let opt name =
                                 match List.assoc dt.Model.dt_name name with
                                 | Some r -> Rtfmt.Json.Int r
                                 | None -> Rtfmt.Json.Null
                               in
                               Rtfmt.Json.Obj
                                 [
                                   ("name", Rtfmt.Json.Str dt.Model.dt_name);
                                   ("period", Rtfmt.Json.Int dt.Model.dt_period);
                                   ( "deadline",
                                     Rtfmt.Json.Int dt.Model.dt_deadline );
                                   ("len", Rtfmt.Json.Int (Model.len dt));
                                   ("vol", Rtfmt.Json.Int (Model.vol dt));
                                   ("edf_response", opt edf_bounds);
                                   ("dm_response", opt dm_bounds);
                                 ])
                             model.Model.tasks) );
                    ]))
          else begin
            let table =
              Rtfmt.Table.create
                [ "task"; "T"; "D"; "len"; "vol"; "R_edf"; "R_dm" ]
            in
            let cell = function Some r -> string_of_int r | None -> "-" in
            List.iter
              (fun (dt : Model.dtask) ->
                Rtfmt.Table.add_row table
                  [
                    dt.Model.dt_name;
                    string_of_int dt.Model.dt_period;
                    string_of_int dt.Model.dt_deadline;
                    string_of_int (Model.len dt);
                    string_of_int (Model.vol dt);
                    cell (List.assoc dt.Model.dt_name edf_bounds);
                    cell (List.assoc dt.Model.dt_name dm_bounds);
                  ])
              model.Model.tasks;
            Rtfmt.Table.print table;
            Printf.printf "necessary conditions (len<=D, vol<=m*D, U<=m): %s\n"
              (if necessary then "pass" else "FAIL");
            Printf.printf "global EDF schedulable (sufficient): %s\n"
              (if edf then "yes" else "no claim");
            Printf.printf "deadline-monotonic schedulable (sufficient): %s\n"
              (if dm then "yes" else "no claim");
            Printf.printf "verdict: %s\n" verdict
          end;
          `Ok ()
  in
  let doc = "Sporadic DAG task sets: response-time bounds and feasibility." in
  Cmd.group (Cmd.info "recurrent" ~doc)
    [
      Cmd.v
        (Cmd.info "analyze"
           ~doc:
             "Per-task volume, critical path and the Graham / long-paths / \
              multi-path response-time bounds.")
        Term.(ret (const analyze_run $ rfile_arg $ m_arg $ json_arg));
      Cmd.v
        (Cmd.info "feasible"
           ~doc:
             "Bonifaci et al. feasibility verdicts: necessary conditions \
              plus sufficient global-EDF and deadline-monotonic tests.")
        Term.(ret (const feasible_run $ rfile_arg $ m_arg $ json_arg));
    ]

(* ---- serve ------------------------------------------------------- *)

(* The long-lived bound-query daemon (lib/serve).  Unlike the one-shot
   commands, serve installs its own signal discipline: the first
   SIGINT/SIGTERM starts a graceful drain (finish in-flight requests,
   refuse new frames with S306, exit 0), the second exits immediately
   with 128+signum.  Cooperative cancellation (Pool.request_cancel)
   is deliberately NOT used here — it would turn in-flight answers
   into drops instead of letting them finish. *)
let serve_cmd =
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv) (JSON-lines)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc =
      "Listen on TCP at $(docv) (HOST:PORT, e.g. 127.0.0.1:7350; port 0 \
       binds an ephemeral port).  May be combined with $(b,--socket) to \
       serve both transports at once."
    in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let quota_arg =
    let doc =
      "Per-tenant token-bucket quota, $(docv) as RATE[:BURST] \
       (requests/second, sustained; burst defaults to 2*RATE rounded up). \
       Over-quota requests are rejected with $(b,S307 quota_exceeded) and \
       a retry-after hint; requests without a \"tenant\" field share the \
       anonymous bucket."
    in
    Arg.(value & opt (some string) None & info [ "quota" ] ~docv:"SPEC" ~doc)
  in
  let stdio_arg =
    let doc =
      "Serve stdin/stdout instead of a socket (one request per line; \
       used by tests and as a subprocess protocol)."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let cache_arg =
    let doc = "Keep at most $(docv) warm incremental handles (LRU)." in
    Arg.(value & opt int 8 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission queue bound; further requests are rejected with \
       $(b,S303 overloaded) and a retry-after hint."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Worker threads answering requests concurrently." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let supervised_arg =
    let doc =
      "Run under a watchdog: a tiny parent binds the listening socket(s), \
       forks the server over the inherited fds and restarts it on abnormal \
       exit with jittered exponential backoff — a crash never drops the \
       endpoint.  A crash loop ($(b,--max-crashes) abnormal exits within \
       $(b,--crash-window) seconds) exits non-zero with a diagnostic.  \
       Requires $(b,--socket)/$(b,--tcp) (not $(b,--stdio))."
    in
    Arg.(value & flag & info [ "supervised" ] ~doc)
  in
  let health_arg =
    let doc =
      "Maintain a one-word health file at $(docv), atomically rewritten on \
       every transition: $(b,ready) once listening, $(b,draining) during \
       graceful drain, $(b,degraded) (written by the watchdog) while a \
       crashed child is being replaced."
    in
    Arg.(
      value & opt (some string) None & info [ "health-file" ] ~docv:"PATH" ~doc)
  in
  let journal_arg =
    let doc =
      "Keep an append-only warm-state journal at $(docv): successful \
       analyze/what-if instances are logged (bounded, compacting, \
       corruption-tolerant), and a (re)started daemon pre-warms its cache \
       from it in the background at low priority instead of serving cold."
    in
    Arg.(
      value & opt (some string) None & info [ "journal" ] ~docv:"PATH" ~doc)
  in
  let breaker_arg =
    let doc =
      "Per-instance circuit breaker, $(docv) as THRESHOLD[:COOLDOWN_MS] \
       (default cooldown 5000).  An instance failing analysis THRESHOLD \
       times in a row fast-fails with $(b,S308 circuit_open) and a \
       retry-after hint until a half-open probe succeeds."
    in
    Arg.(value & opt (some string) None & info [ "breaker" ] ~docv:"SPEC" ~doc)
  in
  let max_crashes_arg =
    let doc = "Crash-loop threshold for $(b,--supervised)." in
    Arg.(value & opt int 5 & info [ "max-crashes" ] ~docv:"N" ~doc)
  in
  let crash_window_arg =
    let doc = "Crash-loop sliding window (seconds) for $(b,--supervised)." in
    Arg.(value & opt float 30.0 & info [ "crash-window" ] ~docv:"SEC" ~doc)
  in
  let parse_tcp spec =
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "--tcp %S: expected HOST:PORT" spec)
    | Some i -> (
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 && host <> "" ->
            Ok (Rtlb_serve.Server.Tcp (host, p))
        | _ -> Error (Printf.sprintf "--tcp %S: expected HOST:PORT" spec))
  in
  let parse_quota spec =
    let bad () =
      Error
        (Printf.sprintf
           "--quota %S: expected RATE[:BURST] with RATE > 0, BURST >= 1" spec)
    in
    let rate_s, burst_s =
      match String.index_opt spec ':' with
      | None -> (spec, None)
      | Some i ->
          ( String.sub spec 0 i,
            Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    in
    match float_of_string_opt rate_s with
    | Some rate when Float.is_finite rate && rate > 0.0 -> (
        let burst =
          match burst_s with
          | None -> Some (Float.max 1.0 (Float.ceil (2.0 *. rate)))
          | Some s -> (
              match float_of_string_opt s with
              | Some b when Float.is_finite b && b >= 1.0 -> Some b
              | _ -> None)
        in
        match burst with
        | Some burst ->
            Ok (Rtlb_serve.Quota.create ~rate_per_s:rate ~burst ())
        | None -> bad ())
    | _ -> bad ()
  in
  let parse_breaker spec =
    let bad () =
      Error
        (Printf.sprintf
           "--breaker %S: expected THRESHOLD[:COOLDOWN_MS] with THRESHOLD \
            >= 1, COOLDOWN_MS >= 1"
           spec)
    in
    let threshold_s, cooldown_s =
      match String.index_opt spec ':' with
      | None -> (spec, None)
      | Some i ->
          ( String.sub spec 0 i,
            Some (String.sub spec (i + 1) (String.length spec - i - 1)) )
    in
    match int_of_string_opt threshold_s with
    | Some threshold when threshold >= 1 -> (
        match Option.map int_of_string_opt cooldown_s with
        | None -> Ok (threshold, 5_000)
        | Some (Some ms) when ms >= 1 -> Ok (threshold, ms)
        | Some _ -> bad ())
    | _ -> bad ()
  in
  let run socket tcp quota stdio cache queue workers jobs supervised health
      journal_path breaker max_crashes crash_window =
    let tcp = Option.map parse_tcp tcp in
    let quota = Option.map parse_quota quota in
    let breaker = Option.map parse_breaker breaker in
    match (socket, tcp, quota, stdio) with
    | None, None, _, false ->
        `Error (true, "one of --socket PATH, --tcp HOST:PORT or --stdio is required")
    | (Some _, _, _, true | _, Some _, _, true) ->
        `Error (true, "--stdio is exclusive with --socket and --tcp")
    | _, Some (Error e), _, _ | _, _, Some (Error e), _ -> `Error (true, e)
    | _, _, _, true when supervised ->
        `Error (true, "--supervised requires --socket or --tcp, not --stdio")
    | socket, tcp, quota, _ -> (
        match breaker with
        | Some (Error e) -> `Error (true, e)
        | breaker ->
            (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
             with Invalid_argument _ | Sys_error _ -> ());
            let jobs =
              match jobs with
              | Some n -> max 1 n
              | None -> (
                  match Sys.getenv_opt "RTLB_JOBS" with
                  | Some s -> (
                      match int_of_string_opt (String.trim s) with
                      | Some n when n >= 1 -> n
                      | _ -> 2)
                  | None -> 2)
            in
            (* First SIGINT/SIGTERM: graceful drain, exit 0; second:
               exit 128+signum.  Installed per serving process — under
               --supervised that is the forked child, while the parent
               keeps the watchdog's forwarding handlers. *)
            let install_drain_signals () =
              let stop = Atomic.make false in
              let handle code _ =
                if Atomic.get stop then exit code else Atomic.set stop true
              in
              List.iter
                (fun (signal, code) ->
                  try Sys.set_signal signal (Sys.Signal_handle (handle code))
                  with Invalid_argument _ | Sys_error _ -> ())
                [ (Sys.sigint, 130); (Sys.sigterm, 143) ];
              fun () -> Atomic.get stop
            in
            let make_config ~generation ~journal =
              {
                Rtlb_serve.Server.default_config with
                cache_capacity = max 0 cache;
                queue_capacity = max 1 queue;
                workers = max 1 workers;
                jobs;
                tracer = Rtlb_obs.Tracer.make ();
                quota = (match quota with Some (Ok q) -> Some q | _ -> None);
                journal;
                breaker =
                  (match breaker with
                  | Some (Ok (threshold, cooldown_ms)) ->
                      Some
                        (Rtlb_serve.Breaker.create ~threshold ~cooldown_ms ())
                  | _ -> None);
                health_file = health;
                generation;
              }
            in
            let open_journal () =
              Option.map
                (fun path ->
                  Rtlb_serve.Journal.open_ ~capacity:(max 8 (2 * cache)) path)
                journal_path
            in
            let endpoints =
              (match socket with
              | Some path -> [ Rtlb_serve.Server.Unix_path path ]
              | None -> [])
              @ (match tcp with Some (Ok ep) -> [ ep ] | _ -> [])
            in
            let on_ready addrs =
              List.iter
                (fun addr ->
                  match addr with
                  | Unix.ADDR_INET (host, port) ->
                      Printf.eprintf "rtlb serve: listening on %s:%d\n%!"
                        (Unix.string_of_inet_addr host)
                        port
                  | Unix.ADDR_UNIX path ->
                      Printf.eprintf "rtlb serve: listening on %s\n%!" path)
                addrs
            in
            if supervised then begin
              let wd_config =
                {
                  Rtlb_serve.Watchdog.default_config with
                  max_crashes = max 1 max_crashes;
                  crash_window_s = Float.max 0.1 crash_window;
                  health_file = health;
                }
              in
              let child ~generation sockets =
                let stop = install_drain_signals () in
                let journal = open_journal () in
                let config = make_config ~generation ~journal in
                let server = Rtlb_serve.Server.create ~config () in
                Rtlb_serve.Server.serve_bound server ~on_ready ~cleanup:false
                  ~sockets ~stop ();
                Option.iter Rtlb_serve.Journal.close journal
              in
              let code =
                Rtlb_serve.Watchdog.run ~config:wd_config ~endpoints ~child ()
              in
              (* preserve the watchdog's exit code exactly (3 = crash
                 loop; the child's own code when terminating) *)
              if code = 0 then `Ok () else exit code
            end
            else begin
              let stop = install_drain_signals () in
              let journal = open_journal () in
              let config = make_config ~generation:0 ~journal in
              let server = Rtlb_serve.Server.create ~config () in
              (match endpoints with
              | [] -> Rtlb_serve.Server.serve_stdio server ~stop
              | endpoints ->
                  Rtlb_serve.Server.serve server ~on_ready ~endpoints ~stop ());
              Option.iter Rtlb_serve.Journal.close journal;
              `Ok ()
            end)
  in
  let doc =
    "Run the long-lived bound-query daemon (JSON-lines over a Unix \
     socket, TCP, or stdio; optional per-tenant quotas)."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ socket_arg $ tcp_arg $ quota_arg $ stdio_arg $ cache_arg
       $ queue_arg $ workers_arg $ jobs_arg $ supervised_arg $ health_arg
       $ journal_arg $ breaker_arg $ max_crashes_arg $ crash_window_arg))

(* ---- dot -------------------------------------------------------- *)

let dot_cmd =
  let run path =
    match read_appfile path with
    | Error e -> `Error (false, e)
    | Ok { Rtfmt.Appfile.app; _ } ->
        print_string (Rtlb.App.to_dot app);
        `Ok ()
  in
  let doc = "Emit the task graph of an application file as Graphviz." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(ret (const run $ file_arg))

let () =
  let doc = "lower-bound analysis for real-time applications (ICDCS 1995)" in
  let info = Cmd.info "rtlb" ~version:"1.0.0" ~doc in
  install_signal_handlers ();
  (* RTLB_CHAOS arms the deterministic fault harness for the whole
     process (docs/ROBUSTNESS.md) — the chaos CI job runs real CLI
     invocations under injected faults. *)
  (match Rtlb_par.Chaos.arm_from_env () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("rtlb: " ^ e);
      exit 2);
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             analyze_cmd; check_cmd; example_cmd; schedule_cmd; generate_cmd;
             dot_cmd; profile_cmd; sensitivity_cmd; whatif_cmd; timebound_cmd;
             horn_cmd; critical_cmd; recurrent_cmd; serve_cmd;
           ])
    with
    | Rtlb_par.Chaos.Killed ->
        (* Simulated SIGKILL at a checkpoint write: die like the real
           thing (the checkpoint just written is durable; resume must
           recover). *)
        prerr_endline "rtlb: killed at checkpoint (chaos)";
        137
    | e ->
        let bt = Printexc.get_backtrace () in
        Printf.eprintf "rtlb: internal error, uncaught exception:\n  %s\n%s"
          (Printexc.to_string e) bt;
        125
  in
  exit code
