(* Benchmark harness: regenerates every table and figure-derived artefact
   of the paper (sections T1, S8-2..4, F2/F3) and runs the
   characterisation experiments E1..E16 from DESIGN.md.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- paper   -- only the paper reproduction
     dune exec bench/main.exe -- e3 e5   -- selected experiments
     dune exec bench/main.exe -- --jobs 8 e12   -- extend the E12 curve
     dune exec bench/main.exe -- --resume e12   -- pick up a killed run
     dune exec bench/main.exe -- --sizes 1000,100000 e14   -- pinned gate sizes

   --jobs N (or the RTLB_JOBS environment variable) adds an N-domain
   point to the E12 parallel-scaling curve.  --resume reuses completed
   stages from the BENCH_*.ckpt.json checkpoints a previous killed run
   left behind (see docs/ROBUSTNESS.md). *)

let sections =
  [
    ("t1", Paper_tables.table1);
    ("step2", Paper_tables.partitions);
    ("step3", Paper_tables.bounds);
    ("step4", Paper_tables.costs);
    ("trace", Paper_tables.traces);
    ("e1", Experiments.tightness);
    ("e2", Experiments.baselines);
    ("e3", Experiments.synthesis);
    ("e4", Experiments.preemption);
    ("e5", Experiments.partitioning);
    ("e6", Experiments.scaling);
    ("e7", Experiments.point_policies);
    ("e8", Experiments.preemptive_exactness);
    ("e9", Experiments.anomalies);
    ("e10", Experiments.time_bounds);
    ("e11", Experiments.priorities);
    ("e12", Experiments.parallel_scaling);
    ("e13", Experiments.incremental_sweep);
    ("e14", Experiments.soa_scaling);
    ("e15", Experiments.serve_throughput);
    ("e16", Experiments.recurrent_baselines);
  ]

let experiment_names =
  List.filter (fun n -> String.length n > 1 && n.[0] = 'e') (List.map fst sections)

let () =
  (* RTLB_CHAOS arms the deterministic fault harness (docs/ROBUSTNESS.md);
     the kill-and-resume CI smoke runs bench under killckpt@N. *)
  (match Rtlb_par.Chaos.arm_from_env () with
  | Ok _ -> ()
  | Error e ->
      prerr_endline ("bench: " ^ e);
      exit 2);
  (match Sys.getenv_opt "RTLB_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Experiments.jobs := n
      | _ -> ())
  | None -> ());
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (( <> ) "--") args in
  let rec parse_jobs acc = function
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            Experiments.jobs := j;
            parse_jobs acc rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 1)
    | "--jobs" :: [] ->
        Printf.eprintf "--jobs expects a positive integer\n";
        exit 1
    | "--resume" :: rest ->
        Experiments.resume := true;
        parse_jobs acc rest
    | "--sizes" :: s :: rest -> (
        let sizes =
          String.split_on_char ',' s
          |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
          |> List.filter (fun n -> n >= 100)
        in
        match sizes with
        | [] ->
            Printf.eprintf
              "--sizes expects comma-separated task counts >= 100, got %S\n" s;
            exit 1
        | sizes ->
            Experiments.soa_sizes := sizes;
            parse_jobs acc rest)
    | "--sizes" :: [] ->
        Printf.eprintf "--sizes expects comma-separated task counts\n";
        exit 1
    | a :: rest -> parse_jobs (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = parse_jobs [] args in
  let wanted =
    match args with
    | [] -> List.map fst sections
    | [ "paper" ] -> [ "t1"; "step2"; "step3"; "step4"; "trace" ]
    | [ "experiments" ] -> experiment_names
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> (
          try f ()
          with Rtlb_par.Chaos.Killed ->
            (* Simulated SIGKILL at a checkpoint write; the checkpoint
               just written is durable and --resume recovers from it. *)
            prerr_endline "bench: killed at checkpoint (chaos)";
            exit 137)
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 1)
    wanted
