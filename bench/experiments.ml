(* Characterisation experiments (DESIGN.md E1-E6).  The paper's evaluation
   is a single worked example; these sweeps exercise its claims across the
   constraint space and time the implementation. *)

let mean l =
  if l = [] then 0.0
  else List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let instances ~shapes ~ccrs ~laxities ~seeds ~n ~two_procs ~resource_density
    ~preemptive_fraction =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun ccr ->
          List.concat_map
            (fun laxity ->
              List.map
                (fun seed ->
                  {
                    Workload.Gen.default with
                    Workload.Gen.seed;
                    n_tasks = n;
                    shape;
                    ccr;
                    laxity;
                    proc_types =
                      (if two_procs then [ ("P1", 0.6); ("P2", 0.4) ]
                       else [ ("P1", 1.0) ]);
                    resource_types = [ ("r1", resource_density) ];
                    preemptive_fraction;
                  })
                seeds)
            laxities)
        ccrs)
    shapes

(* ------------------------------------------------------------------ *)
(* E1: bound tightness against achievable platforms                    *)
(* ------------------------------------------------------------------ *)

let tightness () =
  Bench_util.section
    "E1: tightness - LB_r vs smallest platform the schedulers achieve";
  Printf.printf
    "For each instance: per-resource lower bound vs the smallest unit count\n\
     at which list scheduling (helped by backtracking search) succeeds with\n\
     every other dimension generous.  gap = achieved - LB >= 0; the bound\n\
     is sound, so a negative gap would be a bug (none can appear).\n";
  let t =
    Rtfmt.Table.create
      [ "ccr"; "laxity"; "instances"; "mean LB"; "mean achieved"; "mean gap"; "tight %" ]
  in
  List.iter
    (fun (ccr, laxity) ->
      let configs =
        instances
          ~shapes:
            [
              Workload.Gen.Layered { layers = 3; density = 0.5 };
              Workload.Gen.Series_parallel;
              Workload.Gen.Out_tree;
            ]
          ~ccrs:[ ccr ] ~laxities:[ laxity ]
          ~seeds:[ 1; 2; 3; 4; 5 ]
          ~n:10 ~two_procs:false ~resource_density:0.3 ~preemptive_fraction:0.0
      in
      let lbs = ref [] and achieved = ref [] and gaps = ref [] in
      let tight = ref 0 and total = ref 0 in
      List.iter
        (fun config ->
          let app = Workload.Gen.generate config in
          let system = Workload.Gen.shared_system config in
          let a = Rtlb.Analysis.run system app in
          List.iter
            (fun (b : Rtlb.Lower_bound.bound) ->
              let r = b.Rtlb.Lower_bound.resource in
              let lb = b.Rtlb.Lower_bound.lb in
              if lb > 0 then
                let generous _ = Rtlb.App.n_tasks app in
                match Sched.Search.min_units_for app ~resource:r ~generous with
                | None -> ()
                | Some k ->
                    incr total;
                    if k = lb then incr tight;
                    lbs := float_of_int lb :: !lbs;
                    achieved := float_of_int k :: !achieved;
                    gaps := float_of_int (k - lb) :: !gaps)
            a.Rtlb.Analysis.bounds)
        configs;
      Rtfmt.Table.add_row t
        [
          Printf.sprintf "%.1f" ccr;
          Printf.sprintf "%.1f" laxity;
          string_of_int !total;
          Printf.sprintf "%.2f" (mean !lbs);
          Printf.sprintf "%.2f" (mean !achieved);
          Printf.sprintf "%.2f" (mean !gaps);
          Printf.sprintf "%.0f%%" (100.0 *. float_of_int !tight /. float_of_int (max 1 !total));
        ])
    [ (0.0, 1.0); (0.0, 1.2); (0.0, 2.0); (1.0, 1.0); (1.0, 1.2); (1.0, 2.0); (3.0, 1.0); (3.0, 1.5) ];
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E2: comparison with Fernandez-Bussell and Al-Mohammed                *)
(* ------------------------------------------------------------------ *)

let strip i ~keep_messages =
  let tasks =
    Array.to_list (Rtlb.App.tasks i)
    |> List.map (fun (t : Rtlb.Task.t) ->
           Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:t.Rtlb.Task.compute
             ~deadline:1_000_000 ~proc:"P" ())
  in
  let edges =
    Dag.fold_edges (Rtlb.App.graph i) ~init:[] ~f:(fun acc ~src ~dst m ->
        (src, dst, if keep_messages then m else 0) :: acc)
  in
  Rtlb.App.make ~tasks ~edges

let baselines () =
  Bench_util.section "E2: prior-art baselines on their own model";
  Printf.printf
    "Single processor type, no resources, deadlines at Al-Mohammed's omega.\n\
     With ccr = 0 all three analyses coincide; with communication the\n\
     single-merge (AM) and comm-blind (FB) window arguments overestimate\n\
     mandatory demand, so their numbers can exceed the sound bound.\n";
  let t =
    Rtfmt.Table.create
      [ "ccr"; "instances"; "FB"; "AM"; "ours"; "ours=FB=AM"; "AM>ours"; "FB>ours" ]
  in
  List.iter
    (fun ccr ->
      let configs =
        instances
          ~shapes:
            [
              Workload.Gen.Layered { layers = 3; density = 0.5 };
              Workload.Gen.Fork_join { width = 4 };
              Workload.Gen.In_tree;
            ]
          ~ccrs:[ ccr ] ~laxities:[ 1.0 ]
          ~seeds:[ 1; 2; 3; 4; 5; 6 ]
          ~n:12 ~two_procs:false ~resource_density:0.0 ~preemptive_fraction:0.0
      in
      let fb_l = ref [] and am_l = ref [] and ours_l = ref [] in
      let agree = ref 0 and am_hi = ref 0 and fb_hi = ref 0 in
      List.iter
        (fun config ->
          let app = strip (Workload.Gen.generate config) ~keep_messages:true in
          let am = Baselines.Al_mohammed.analyse app in
          let omega = am.Baselines.Al_mohammed.omega in
          let fb =
            Baselines.Fernandez_bussell.analyse ~omega app
          in
          let ours_app =
            Rtlb.App.map_tasks app ~f:(fun task ->
                Rtlb.Task.with_deadline task omega)
          in
          let system = Rtlb.System.shared ~costs:[ ("P", 1) ] in
          let a = Rtlb.Analysis.run system ours_app in
          let ours = Rtlb.Analysis.bound_for a "P" in
          fb_l := float_of_int fb.Baselines.Fernandez_bussell.bound :: !fb_l;
          am_l := float_of_int am.Baselines.Al_mohammed.bound :: !am_l;
          ours_l := float_of_int ours :: !ours_l;
          if
            fb.Baselines.Fernandez_bussell.bound = ours
            && am.Baselines.Al_mohammed.bound = ours
          then incr agree;
          if am.Baselines.Al_mohammed.bound > ours then incr am_hi;
          if fb.Baselines.Fernandez_bussell.bound > ours then incr fb_hi)
        configs;
      let n = List.length !ours_l in
      Rtfmt.Table.add_row t
        [
          Printf.sprintf "%.1f" ccr;
          string_of_int n;
          Printf.sprintf "%.2f" (mean !fb_l);
          Printf.sprintf "%.2f" (mean !am_l);
          Printf.sprintf "%.2f" (mean !ours_l);
          string_of_int !agree;
          string_of_int !am_hi;
          string_of_int !fb_hi;
        ])
    [ 0.0; 0.5; 1.0; 3.0 ];
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E3: synthesis search pruning                                        *)
(* ------------------------------------------------------------------ *)

let synthesis () =
  Bench_util.section "E3: lower-bound pruning in architectural synthesis";
  Printf.printf
    "Uniform-cost search for the cheapest feasible dedicated system, with\n\
     and without the admissible LB filter (identical optima by construction).\n";
  let t =
    Rtfmt.Table.create
      [
        "tasks"; "instances"; "cost ok"; "sched calls (LB)"; "sched calls (no LB)";
        "saved"; "mean ms (LB)"; "mean ms (no LB)";
      ]
  in
  List.iter
    (fun n ->
      let configs =
        instances
          ~shapes:[ Workload.Gen.Layered { layers = 3; density = 0.5 } ]
          ~ccrs:[ 0.5 ] ~laxities:[ 1.5 ]
          ~seeds:[ 1; 2; 3; 4 ]
          ~n ~two_procs:true ~resource_density:0.4 ~preemptive_fraction:0.0
      in
      let with_calls = ref 0 and without_calls = ref 0 in
      let ok = ref 0 and total = ref 0 in
      let ms_with = ref [] and ms_without = ref [] in
      List.iter
        (fun config ->
          let app = Workload.Gen.generate config in
          let system = Workload.Gen.dedicated_system config in
          let a, ta =
            Bench_util.time_ms (fun () ->
                Synth.search ~use_lower_bounds:true ~system app)
          in
          let b, tb =
            Bench_util.time_ms (fun () ->
                Synth.search ~use_lower_bounds:false ~system app)
          in
          incr total;
          (match (a.Synth.found, b.Synth.found) with
          | Some (_, ca), Some (_, cb) when ca = cb -> incr ok
          | None, None -> incr ok
          | _ -> ());
          with_calls := !with_calls + a.Synth.sched_calls;
          without_calls := !without_calls + b.Synth.sched_calls;
          ms_with := ta :: !ms_with;
          ms_without := tb :: !ms_without)
        configs;
      Rtfmt.Table.add_row t
        [
          string_of_int n;
          string_of_int !total;
          Printf.sprintf "%d/%d" !ok !total;
          string_of_int !with_calls;
          string_of_int !without_calls;
          Printf.sprintf "%.1fx"
            (float_of_int !without_calls /. float_of_int (max 1 !with_calls));
          Printf.sprintf "%.1f" (mean !ms_with);
          Printf.sprintf "%.1f" (mean !ms_without);
        ])
    [ 6; 9; 12 ];
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E4: preemptive vs non-preemptive overlaps                           *)
(* ------------------------------------------------------------------ *)

let preemption () =
  Bench_util.section "E4: Theorem 3 vs Theorem 4 - preemptability and the bound";
  Printf.printf
    "Identical instances analysed with all tasks preemptive (Theorem 3\n\
     overlaps) and all non-preemptive (Theorem 4).  Theorem 4 dominates\n\
     pointwise, so per-resource bounds can only grow without preemption.\n";
  let t =
    Rtfmt.Table.create
      [ "laxity"; "bounds"; "mean LB (preempt)"; "mean LB (non-preempt)"; "np > p" ]
  in
  List.iter
    (fun laxity ->
      let configs =
        instances
          ~shapes:
            [
              Workload.Gen.Layered { layers = 4; density = 0.5 };
              Workload.Gen.Independent;
            ]
          ~ccrs:[ 0.5 ] ~laxities:[ laxity ]
          ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ]
          ~n:14 ~two_procs:false ~resource_density:0.3 ~preemptive_fraction:0.0
      in
      let p_l = ref [] and np_l = ref [] and strict = ref 0 in
      List.iter
        (fun config ->
          let base = Workload.Gen.generate config in
          let system = Workload.Gen.shared_system config in
          let flip v app =
            Rtlb.App.map_tasks app ~f:(fun task ->
                Rtlb.Task.with_preemptive task v)
          in
          let ap = Rtlb.Analysis.run system (flip true base) in
          let anp = Rtlb.Analysis.run system (flip false base) in
          List.iter2
            (fun (bp : Rtlb.Lower_bound.bound) (bnp : Rtlb.Lower_bound.bound) ->
              p_l := float_of_int bp.Rtlb.Lower_bound.lb :: !p_l;
              np_l := float_of_int bnp.Rtlb.Lower_bound.lb :: !np_l;
              if bnp.Rtlb.Lower_bound.lb > bp.Rtlb.Lower_bound.lb then
                incr strict)
            ap.Rtlb.Analysis.bounds anp.Rtlb.Analysis.bounds)
        configs;
      Rtfmt.Table.add_row t
        [
          Printf.sprintf "%.2f" laxity;
          string_of_int (List.length !p_l);
          Printf.sprintf "%.2f" (mean !p_l);
          Printf.sprintf "%.2f" (mean !np_l);
          string_of_int !strict;
        ])
    [ 1.0; 1.05; 1.2; 2.0 ];
  Rtfmt.Table.print t;
  Bench_util.subsection
    "staggered windows, where the two theorems provably part ways";
  Printf.printf
    "outer tasks span [0,12] with C=8; inner tasks span [2,10] with C=6.\n\
     On [2,10] a non-preemptive outer task is pinned for 6 units, a\n\
     preemptive one for only 4 (it splits around the interval).\n";
  let t = Rtfmt.Table.create [ "outer"; "inner"; "LB preempt"; "LB non-preempt" ] in
  List.iter
    (fun (outer, inner) ->
      let lb preemptive =
        let tasks =
          List.init (outer + inner) (fun id ->
              if id < outer then
                Rtlb.Task.make ~id ~compute:8 ~deadline:12 ~proc:"P"
                  ~preemptive ()
              else
                Rtlb.Task.make ~id ~compute:6 ~release:2 ~deadline:10 ~proc:"P"
                  ~preemptive ())
        in
        let app = Rtlb.App.make ~tasks ~edges:[] in
        let a = Rtlb.Analysis.run (Rtlb.System.shared ~costs:[ ("P", 1) ]) app in
        Rtlb.Analysis.bound_for a "P"
      in
      Rtfmt.Table.add_int_row t (string_of_int outer)
        [ inner; lb true; lb false ])
    [ (2, 1); (4, 2); (6, 3); (8, 4) ];
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E5: the partitioning payoff (Theorem 5)                             *)
(* ------------------------------------------------------------------ *)

(* A frame-structured application: [frames] frames of [per_frame]
   independent tasks, frame f released at f*40 with deadline (f+1)*40 — the
   Section 5 partition recovers exactly the frames. *)
let framed ~frames ~per_frame =
  let tasks =
    List.init (frames * per_frame) (fun id ->
        let f = id / per_frame in
        Rtlb.Task.make ~id ~compute:(3 + (id mod 5)) ~release:(40 * f)
          ~deadline:(40 * (f + 1))
          ~proc:"P" ())
  in
  Rtlb.App.make ~tasks ~edges:[]

let partitioning () =
  Bench_util.section "E5: partitioning payoff (Theorem 5)";
  let system = Rtlb.System.shared ~costs:[ ("P", 1) ] in
  let equal = ref true in
  List.iter
    (fun frames ->
      let app = framed ~frames ~per_frame:8 in
      let w = Rtlb.Est_lct.compute system app in
      let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
      let a = Rtlb.Lower_bound.for_resource ~est ~lct app "P" in
      let b = Rtlb.Lower_bound.for_resource_unpartitioned ~est ~lct app "P" in
      if a.Rtlb.Lower_bound.lb <> b.Rtlb.Lower_bound.lb then equal := false)
    [ 2; 4; 8 ];
  Printf.printf "bound equality (partitioned = monolithic): %b\n" !equal;
  Bench_util.subsection "wall time of the Section 6 scan (bechamel)";
  let bench_pair frames =
    let app = framed ~frames ~per_frame:8 in
    let w = Rtlb.Est_lct.compute system app in
    let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
    [
      ( Printf.sprintf "partitioned   n=%3d" (frames * 8),
        fun () -> ignore (Rtlb.Lower_bound.for_resource ~est ~lct app "P") );
      ( Printf.sprintf "monolithic    n=%3d" (frames * 8),
        fun () ->
          ignore (Rtlb.Lower_bound.for_resource_unpartitioned ~est ~lct app "P")
      );
    ]
  in
  let results = Bench_util.bechamel_ns (List.concat_map bench_pair [ 2; 4; 8 ]) in
  let t = Rtfmt.Table.create [ "scan"; "time/run" ] in
  List.iter
    (fun (nm, ns) -> Rtfmt.Table.add_row t [ nm; Bench_util.pp_ns ns ])
    results;
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E6: scalability of the full analysis                                *)
(* ------------------------------------------------------------------ *)

let scaling () =
  Bench_util.section "E6: analysis wall time vs application size";
  Bench_util.subsection "stage micro-benchmarks (n = 40 layered instance)";
  let cfg40 =
    {
      Workload.Gen.default with
      Workload.Gen.n_tasks = 40;
      shape = Workload.Gen.Layered { layers = 5; density = 0.4 };
      seed = 11;
    }
  in
  let app40 = Workload.Gen.generate cfg40 in
  let sys40 = Workload.Gen.shared_system cfg40 in
  let w40 = Rtlb.Est_lct.compute sys40 app40 in
  let est40 = w40.Rtlb.Est_lct.est and lct40 = w40.Rtlb.Est_lct.lct in
  let ilp =
    Lp.Problem.of_ints ~sense:Lp.Problem.Minimize ~objective:[| 10; 6; 7 |]
      [
        ([| 1; 1; 0 |], Lp.Problem.Ge, 3);
        ([| 1; 0; 0 |], Lp.Problem.Ge, 2);
        ([| 0; 0; 1 |], Lp.Problem.Ge, 2);
      ]
  in
  let micro =
    Bench_util.bechamel_ns
      [
        ("est/lct windows", fun () -> ignore (Rtlb.Est_lct.compute sys40 app40));
        ( "bound scan (all resources)",
          fun () -> ignore (Rtlb.Lower_bound.all ~est:est40 ~lct:lct40 app40) );
        ("paper ILP (simplex+b&b)", fun () -> ignore (Lp.Ilp.solve ilp));
      ]
  in
  let mt = Rtfmt.Table.create [ "stage"; "time/run" ] in
  List.iter
    (fun (nm, ns) -> Rtfmt.Table.add_row mt [ nm; Bench_util.pp_ns ns ])
    micro;
  Rtfmt.Table.print mt;
  Bench_util.subsection "end-to-end analysis";
  let bench_for n =
    let config =
      {
        Workload.Gen.default with
        Workload.Gen.n_tasks = n;
        shape = Workload.Gen.Layered { layers = 5; density = 0.4 };
        seed = 11;
      }
    in
    let app = Workload.Gen.generate config in
    let system = Workload.Gen.shared_system config in
    ( Printf.sprintf "analysis n=%3d" n,
      fun () -> ignore (Rtlb.Analysis.run system app) )
  in
  let results = Bench_util.bechamel_ns (List.map bench_for [ 10; 20; 40; 80 ]) in
  let t = Rtfmt.Table.create [ "instance"; "time/run" ] in
  List.iter
    (fun (nm, ns) -> Rtfmt.Table.add_row t [ nm; Bench_util.pp_ns ns ])
    results;
  Rtfmt.Table.print t



(* ------------------------------------------------------------------ *)
(* E7: candidate-point ablation                                        *)
(* ------------------------------------------------------------------ *)

let point_policies () =
  Bench_util.section "E7: candidate-point ablation (the LB' weakening)";
  Printf.printf
    "The paper evaluates the density bound over finitely many interval\n\
     endpoints (task ESTs/LCTs) and notes LB' <= LB.  Adding each task's\n\
     earliest-finish/latest-start points can only raise the evaluated\n\
     bound, at more scan cost.  How often does it matter?\n";
  let t =
    Rtfmt.Table.create
      [ "laxity"; "bounds"; "improved by enrichment"; "mean LB"; "mean LB+" ]
  in
  List.iter
    (fun laxity ->
      let configs =
        instances
          ~shapes:
            [
              Workload.Gen.Layered { layers = 4; density = 0.5 };
              Workload.Gen.Independent;
              Workload.Gen.Series_parallel;
            ]
          ~ccrs:[ 0.5 ] ~laxities:[ laxity ]
          ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
          ~n:14 ~two_procs:false ~resource_density:0.3 ~preemptive_fraction:0.0
      in
      let base_l = ref [] and rich_l = ref [] and improved = ref 0 in
      List.iter
        (fun config ->
          let app = Workload.Gen.generate config in
          let system = Workload.Gen.shared_system config in
          let w = Rtlb.Est_lct.compute system app in
          let est = w.Rtlb.Est_lct.est and lct = w.Rtlb.Est_lct.lct in
          List.iter
            (fun r ->
              let b = Rtlb.Lower_bound.for_resource ~est ~lct app r in
              let b' =
                Rtlb.Lower_bound.for_resource ~policy:`Enriched ~est ~lct app r
              in
              base_l := float_of_int b.Rtlb.Lower_bound.lb :: !base_l;
              rich_l := float_of_int b'.Rtlb.Lower_bound.lb :: !rich_l;
              if b'.Rtlb.Lower_bound.lb > b.Rtlb.Lower_bound.lb then
                incr improved)
            (Rtlb.App.resource_set app))
        configs;
      Rtfmt.Table.add_row t
        [
          Printf.sprintf "%.2f" laxity;
          string_of_int (List.length !base_l);
          string_of_int !improved;
          Printf.sprintf "%.2f" (mean !base_l);
          Printf.sprintf "%.2f" (mean !rich_l);
        ])
    [ 1.0; 1.1; 1.3; 2.0 ];
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E8: preemptive exactness - Theorem 3 vs Horn's flow vs EDF          *)
(* ------------------------------------------------------------------ *)

let preemptive_exactness () =
  Bench_util.section
    "E8: preemptive scheduling - Theorem 3 bound vs optimal (Horn) vs EDF";
  Printf.printf
    "Independent preemptive jobs.  Horn's max-flow test decides\n\
     feasibility exactly; global EDF is a heuristic.  The Theorem 3\n\
     bound is sound (never above Horn) but not always tight.\n";
  let t =
    Rtfmt.Table.create
      [ "laxity"; "instances"; "LB = Horn"; "LB < Horn"; "EDF needs > Horn" ]
  in
  List.iter
    (fun laxity ->
      let configs =
        instances
          ~shapes:[ Workload.Gen.Independent ]
          ~ccrs:[ 0.0 ] ~laxities:[ laxity ]
          ~seeds:(List.init 12 (fun k -> k + 1))
          ~n:10 ~two_procs:false ~resource_density:0.0
          ~preemptive_fraction:1.0
      in
      let tight = ref 0 and gap = ref 0 and edf_worse = ref 0 in
      List.iter
        (fun config ->
          let config = { config with Workload.Gen.release_spread = 0.5 } in
          let app = Workload.Gen.generate config in
          let jobs = Sched.Horn.of_app app in
          let lb = Sched.Horn.density_bound ~jobs in
          let opt = Sched.Horn.min_processors ~jobs in
          if lb = opt then incr tight else incr gap;
          let rec edf_min k =
            if k > Rtlb.App.n_tasks app then max_int
            else if Sched.Preemptive.feasible app ~procs:[ ("P1", k) ] then k
            else edf_min (k + 1)
          in
          if edf_min (max 1 opt) > opt then incr edf_worse)
        configs;
      Rtfmt.Table.add_row t
        [
          Printf.sprintf "%.2f" laxity;
          string_of_int (!tight + !gap);
          string_of_int !tight;
          string_of_int !gap;
          string_of_int !edf_worse;
        ])
    [ 1.0; 1.2; 1.5 ];
  Rtfmt.Table.print t;
  Bench_util.subsection "two structural gap families";
  Printf.printf
    "1. EDF anomaly: outers [0,12]x2 C=8 + inner [2,10] C=6 — feasible on 2\n\
     (Horn and Theorem 3 agree), global EDF needs 3.\n\
     2. Density gap: clusters [0,2]x2 + [8,10]x2 (C=2) + wide [0,10] C=8 —\n\
     Theorem 3 says 2, the true optimum is 3 (one job cannot use two\n\
     processors at once; the flow test captures this, interval density\n\
     cannot).\n";
  let jobs1 =
    [
      { Sched.Horn.j_release = 0; j_deadline = 12; j_compute = 8 };
      { Sched.Horn.j_release = 0; j_deadline = 12; j_compute = 8 };
      { Sched.Horn.j_release = 2; j_deadline = 10; j_compute = 6 };
    ]
  in
  let jobs2 =
    [
      { Sched.Horn.j_release = 0; j_deadline = 2; j_compute = 2 };
      { Sched.Horn.j_release = 0; j_deadline = 2; j_compute = 2 };
      { Sched.Horn.j_release = 8; j_deadline = 10; j_compute = 2 };
      { Sched.Horn.j_release = 8; j_deadline = 10; j_compute = 2 };
      { Sched.Horn.j_release = 0; j_deadline = 10; j_compute = 8 };
    ]
  in
  let t2 = Rtfmt.Table.create [ "family"; "Theorem 3 LB"; "Horn optimum" ] in
  Rtfmt.Table.add_row t2
    [
      "EDF anomaly";
      string_of_int (Sched.Horn.density_bound ~jobs:jobs1);
      string_of_int (Sched.Horn.min_processors ~jobs:jobs1);
    ];
  Rtfmt.Table.add_row t2
    [
      "density gap";
      string_of_int (Sched.Horn.density_bound ~jobs:jobs2);
      string_of_int (Sched.Horn.min_processors ~jobs:jobs2);
    ];
  Rtfmt.Table.print t2

(* ------------------------------------------------------------------ *)
(* E9: timing anomalies under online dispatch                          *)
(* ------------------------------------------------------------------ *)

let anomalies () =
  Bench_util.section
    "E9: timing anomalies - early completion vs online EDF dispatch";
  Printf.printf
    "Instances whose online EDF dispatch meets every deadline at WCET are\n\
     re-executed with all actual times scaled down.  Non-preemptive\n\
     multiprocessor dispatch is not sustainable (Graham 1969): running\n\
     FASTER can reorder the dispatch and miss a deadline.  The analysis'\n\
     bounds are WCET-based; this measures how treacherous the ground is.\n";
  let t =
    Rtfmt.Table.create
      [ "actual/WCET"; "instances"; "still meets"; "anomalous misses" ]
  in
  let configs =
    instances
      ~shapes:
        [
          Workload.Gen.Layered { layers = 3; density = 0.5 };
          Workload.Gen.Series_parallel;
          Workload.Gen.Fork_join { width = 3 };
        ]
      ~ccrs:[ 1.0 ] ~laxities:[ 1.1; 1.3 ]
      ~seeds:(List.init 10 (fun k -> k + 1))
      ~n:12 ~two_procs:false ~resource_density:0.3 ~preemptive_fraction:0.0
  in
  (* keep only instances schedulable online at WCET on their LB platform
     (+1 unit of headroom where needed) *)
  let base =
    List.filter_map
      (fun config ->
        let app = Workload.Gen.generate config in
        let system = Workload.Gen.shared_system config in
        let a = Rtlb.Analysis.run system app in
        let platform = Sched.Platform.of_bounds system app a.Rtlb.Analysis.bounds in
        let ok =
          (Sched.Simulator.run_online ~actual:(Sched.Simulator.wcet app) app
             platform)
            .Sched.Simulator.o_finished
        in
        if ok then Some (app, platform) else None)
      configs
  in
  List.iter
    (fun percent ->
      let still = ref 0 and miss = ref 0 in
      List.iter
        (fun (app, platform) ->
          let o =
            Sched.Simulator.run_online
              ~actual:(Sched.Simulator.scaled app ~percent)
              app platform
          in
          if o.Sched.Simulator.o_finished then incr still else incr miss)
        base;
      Rtfmt.Table.add_row t
        [
          Printf.sprintf "%d%%" percent;
          string_of_int (List.length base);
          string_of_int !still;
          string_of_int !miss;
        ])
    [ 100; 90; 75; 50 ];
  Rtfmt.Table.print t;
  Bench_util.subsection "a pinned anomaly (two early parents)";
  Printf.printf
    "P1, P2 (C=2, loose deadlines) each release a long successor (C=10);\n\
     Q arrives at t=2 with deadline 5.  At WCET the parents finish exactly\n\
     when Q arrives, EDF serves Q first, everything meets.  If the parents\n\
     finish after 1 unit instead, both processors are already committed to\n\
     the long successors when Q arrives: Q misses by 9.\n";
  let anomaly_app =
    Rtlb.App.make
      ~tasks:
        [
          Rtlb.Task.make ~id:0 ~name:"P1" ~compute:2 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:1 ~name:"P2" ~compute:2 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:2 ~name:"S1" ~compute:10 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:3 ~name:"S2" ~compute:10 ~deadline:30 ~proc:"P" ();
          Rtlb.Task.make ~id:4 ~name:"Q" ~compute:3 ~release:2 ~deadline:5
            ~proc:"P" ();
        ]
      ~edges:[ (0, 2, 0); (1, 3, 0) ]
  in
  let platform = Sched.Platform.shared ~procs:[ ("P", 2) ] ~resources:[] in
  let show label actual =
    let o = Sched.Simulator.run_online ~actual anomaly_app platform in
    Printf.printf "  %s: %s (makespan %d)\n" label
      (match o.Sched.Simulator.o_first_miss with
      | None -> "all deadlines met"
      | Some i ->
          Printf.sprintf "task %s MISSES"
            (Rtlb.App.task anomaly_app i).Rtlb.Task.name)
      o.Sched.Simulator.o_makespan
  in
  show "WCET execution     " (Sched.Simulator.wcet anomaly_app);
  show "parents finish at 1" (fun i -> if i <= 1 then 1 else Sched.Simulator.wcet anomaly_app i)


(* ------------------------------------------------------------------ *)
(* E10: time bounds - Jain-Rajaraman sandwich                          *)
(* ------------------------------------------------------------------ *)

let time_bounds () =
  Bench_util.section
    "E10: schedule-length bounds (Jain-Rajaraman model) vs the exact optimum";
  Printf.printf
    "Single processor type, no deadlines/resources/communication.  For\n\
     each m: the JR lower bound (max of work, critical-path and interval-\n\
     density bounds), the exact optimum (branch and bound), and Graham's\n\
     list-schedule upper bound.\n";
  let t =
    Rtfmt.Table.create
      [ "m"; "instances"; "lower = opt"; "mean lower"; "mean opt"; "mean upper" ]
  in
  let configs =
    instances
      ~shapes:
        [
          Workload.Gen.Layered { layers = 3; density = 0.5 };
          Workload.Gen.Out_tree;
          Workload.Gen.Series_parallel;
        ]
      ~ccrs:[ 0.0 ] ~laxities:[ 2.0 ]
      ~seeds:[ 1; 2; 3; 4; 5; 6 ]
      ~n:8 ~two_procs:false ~resource_density:0.0 ~preemptive_fraction:0.0
  in
  let apps =
    List.map
      (fun config ->
        let a = Workload.Gen.generate config in
        Rtlb.App.make
          ~tasks:
            (Array.to_list (Rtlb.App.tasks a)
            |> List.map (fun (t : Rtlb.Task.t) ->
                   Rtlb.Task.make ~id:t.Rtlb.Task.id ~compute:t.Rtlb.Task.compute
                     ~deadline:1_000_000 ~proc:"P" ()))
          ~edges:
            (Dag.fold_edges (Rtlb.App.graph a) ~init:[]
               ~f:(fun acc ~src ~dst _ -> (src, dst, 0) :: acc)))
      configs
  in
  List.iter
    (fun m ->
      let lows = ref [] and opts = ref [] and ups = ref [] in
      let tight = ref 0 and total = ref 0 in
      List.iter
        (fun app ->
          let jr = Baselines.Jain_rajaraman.analyse app ~m in
          match Sched.Makespan.minimum app ~m with
          | None -> ()
          | Some opt ->
              incr total;
              if jr.Baselines.Jain_rajaraman.jr_lower = opt then incr tight;
              lows := float_of_int jr.Baselines.Jain_rajaraman.jr_lower :: !lows;
              opts := float_of_int opt :: !opts;
              ups := float_of_int jr.Baselines.Jain_rajaraman.jr_upper :: !ups)
        apps;
      Rtfmt.Table.add_row t
        [
          string_of_int m;
          string_of_int !total;
          Printf.sprintf "%d/%d" !tight !total;
          Printf.sprintf "%.2f" (mean !lows);
          Printf.sprintf "%.2f" (mean !opts);
          Printf.sprintf "%.2f" (mean !ups);
        ])
    [ 1; 2; 3 ];
  Rtfmt.Table.print t


(* ------------------------------------------------------------------ *)
(* E11: priority policies at the bound-sized platform                  *)
(* ------------------------------------------------------------------ *)

let priorities () =
  Bench_util.section
    "E11: how much scheduler quality the bound-sized platform demands";
  Printf.printf
    "For each instance, the platform is sized exactly at the bounds; the\n\
     list scheduler then tries four priority policies.  Analysis-derived\n\
     keys (LCT, slack) see communication and co-location effects the raw\n\
     deadline cannot.\n";
  let configs =
    instances
      ~shapes:
        [
          Workload.Gen.Layered { layers = 3; density = 0.5 };
          Workload.Gen.Series_parallel;
          Workload.Gen.Fork_join { width = 3 };
          Workload.Gen.In_tree;
        ]
      ~ccrs:[ 0.5; 2.0 ] ~laxities:[ 1.1; 1.4 ]
      ~seeds:[ 1; 2; 3; 4; 5 ]
      ~n:12 ~two_procs:true ~resource_density:0.3 ~preemptive_fraction:0.0
  in
  let cases =
    List.map
      (fun config ->
        let app = Workload.Gen.generate config in
        let system = Workload.Gen.shared_system config in
        let a = Rtlb.Analysis.run system app in
        (app, system, Sched.Platform.of_bounds system app a.Rtlb.Analysis.bounds))
      configs
  in
  let t = Rtfmt.Table.create [ "policy"; "feasible on the floor"; "of" ] in
  List.iter
    (fun policy ->
      let ok = ref 0 in
      List.iter
        (fun (app, system, platform) ->
          let priority = Sched.Priorities.make policy system app in
          if Sched.List_scheduler.feasible ~priority app platform then incr ok)
        cases;
      Rtfmt.Table.add_row t
        [
          Sched.Priorities.name policy;
          string_of_int !ok;
          string_of_int (List.length cases);
        ])
    Sched.Priorities.all;
  Rtfmt.Table.print t

(* ------------------------------------------------------------------ *)
(* E12: parallel scaling of the analysis engine                        *)
(* ------------------------------------------------------------------ *)

(* Domain count requested via --jobs/RTLB_JOBS (bench/main.ml sets it);
   0 means "nothing beyond the standard 1/2/4/8 curve". *)
let jobs = ref 0

(* --resume (bench/main.ml sets it): reuse completed stages from the
   BENCH_*.ckpt.json checkpoint a previous killed run left behind.
   Each long experiment checkpoints after every stage — per workload
   for E12, per series for E13 — storing the rendered table row(s) next
   to the JSON fragment, so a resumed run replays finished stages
   verbatim (identical tables, identical final JSON) and computes only
   the rest.  Checkpoints are deleted when the experiment completes. *)
let resume = ref false

let str_row cells = Rtfmt.Json.List (List.map (fun c -> Rtfmt.Json.Str c) cells)

let row_cells = function
  | Rtfmt.Json.List l ->
      List.map (function Rtfmt.Json.Str s -> s | _ -> "") l
  | _ -> []

let load_checkpoint ~kind ~fingerprint file =
  let fresh () = Rtfmt.Checkpoint.create ~kind ~fingerprint in
  if not !resume then fresh ()
  else
    match Rtfmt.Checkpoint.load file with
    | Ok None -> fresh ()
    | Ok (Some t) -> (
        match Rtfmt.Checkpoint.validate ~kind ~fingerprint t with
        | Ok () ->
            Printf.printf "(resuming from %s: %d stage(s) already done)\n"
              file
              (List.length (Rtfmt.Checkpoint.entries t));
            t
        | Error reason ->
            Printf.printf "(ignoring %s: %s)\n" file reason;
            fresh ())
    | Error reason ->
        Printf.printf "(ignoring %s: %s)\n" file reason;
        fresh ()

let checkpoint_stage state file ~key value =
  state := Rtfmt.Checkpoint.add !state ~key value;
  Rtfmt.Checkpoint.save file !state

let resumed_stage state ~key =
  if !resume then Rtfmt.Checkpoint.find !state key else None

let parallel_scaling () =
  Bench_util.section
    "E12: parallel scaling - Analysis.run across a domain pool";
  Printf.printf
    "The e6 layered workloads analysed on an Rtlb_par.Pool of 1/2/4/8\n\
     domains (plus --jobs if given).  The parallel path is bit-identical\n\
     to the sequential analysis (asserted per run); speedups are wall\n\
     clock, best of %d, relative to the 1-domain pool.  Machine has %d\n\
     recommended domain(s).  Results also land in BENCH_parallel.json.\n"
    5
    (Domain.recommended_domain_count ());
  let domain_counts =
    [ 1; 2; 4; 8 ] @ (if !jobs > 1 then [ !jobs ] else [])
    |> List.sort_uniq compare
  in
  let best_of k f =
    let rec go k best =
      if k = 0 then best
      else
        let _, ms = Bench_util.time_ms f in
        go (k - 1) (min best ms)
    in
    go k infinity
  in
  let bounds_equal (a : Rtlb.Analysis.t) (b : Rtlb.Analysis.t) =
    a.Rtlb.Analysis.bounds = b.Rtlb.Analysis.bounds
  in
  let t =
    Rtfmt.Table.create
      ([ "tasks"; "seq ms" ]
      @ List.concat_map
          (fun d ->
            [ Printf.sprintf "%dd ms" d; Printf.sprintf "%dd speedup" d ])
          domain_counts
      @ [ "identical" ])
  in
  (* Per-phase breakdown of one traced sequential run: where inside
     Analysis.run the time goes (spans from the observability layer). *)
  let phase_names = [ "est_lct"; "lower_bounds"; "plan"; "reduce"; "cost" ] in
  let phases_t = Rtfmt.Table.create ("tasks" :: List.map (fun p -> p ^ " ms") phase_names) in
  let ckpt_file = "BENCH_parallel.ckpt.json" in
  let fingerprint =
    Digest.to_hex
      (Digest.string
         (Printf.sprintf "e12;seed=11;layered5x0.4;domains=%s"
            (String.concat "," (List.map string_of_int domain_counts))))
  in
  let state = ref (load_checkpoint ~kind:"bench-parallel" ~fingerprint ckpt_file) in
  let json_workloads =
    List.map
      (fun n ->
        let key = Printf.sprintf "tasks-%d" n in
        let cached =
          match resumed_stage state ~key with
          | Some entry -> (
              match
                ( Rtfmt.Json.member "row" entry,
                  Rtfmt.Json.member "phase_row" entry,
                  Rtfmt.Json.member "json" entry )
              with
              | row, phase_row, json ->
                  Some (row_cells row, row_cells phase_row, json)
              | exception Not_found -> None)
          | None -> None
        in
        match cached with
        | Some (row, phase_row, json) ->
            Rtfmt.Table.add_row t row;
            Rtfmt.Table.add_row phases_t phase_row;
            json
        | None ->
            let config =
              {
                Workload.Gen.default with
                Workload.Gen.n_tasks = n;
                shape = Workload.Gen.Layered { layers = 5; density = 0.4 };
                seed = 11;
              }
            in
            let app = Workload.Gen.generate config in
            let system = Workload.Gen.shared_system config in
            let reference = Rtlb.Analysis.run system app in
            let seq_ms = best_of 5 (fun () -> Rtlb.Analysis.run system app) in
            let tracer = Rtlb_obs.Tracer.make () in
            let _ = Rtlb.Analysis.run ~tracer system app in
            let stats = Rtlb_obs.Stats.of_tracer tracer in
            let phase_ms p =
              Int64.to_float (Rtlb_obs.Stats.span_total_ns stats p) /. 1e6
            in
            let phase_row =
              string_of_int n
              :: List.map
                   (fun p -> Printf.sprintf "%.3f" (phase_ms p))
                   phase_names
            in
            Rtfmt.Table.add_row phases_t phase_row;
            let identical = ref true in
            let curve =
              List.map
                (fun d ->
                  Rtlb_par.Pool.with_pool ~jobs:d (fun pool ->
                      let a = Rtlb.Analysis.run ~pool system app in
                      if not (bounds_equal a reference) then identical := false;
                      let ms =
                        best_of 5 (fun () -> Rtlb.Analysis.run ~pool system app)
                      in
                      (d, ms)))
                domain_counts
            in
            let base_ms =
              match curve with (_, ms) :: _ -> ms | [] -> seq_ms
            in
            let speedup ms = base_ms /. ms in
            let row =
              [ string_of_int n; Printf.sprintf "%.2f" seq_ms ]
              @ List.concat_map
                  (fun (_, ms) ->
                    [
                      Printf.sprintf "%.2f" ms;
                      Printf.sprintf "%.2fx" (speedup ms);
                    ])
                  curve
              @ [ (if !identical then "yes" else "NO") ]
            in
            Rtfmt.Table.add_row t row;
            let json =
              Rtfmt.Json.Obj
                [
                  ("tasks", Rtfmt.Json.Int n);
                  ("seq_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" seq_ms));
                  ("identical", Rtfmt.Json.Bool !identical);
                  ( "phases",
                    Rtfmt.Json.Obj
                      (List.map
                         (fun p ->
                           ( p,
                             Rtfmt.Json.Str
                               (Printf.sprintf "%.3f" (phase_ms p)) ))
                         phase_names) );
                  ( "curve",
                    Rtfmt.Json.List
                      (List.map
                         (fun (d, ms) ->
                           Rtfmt.Json.Obj
                             [
                               ("domains", Rtfmt.Json.Int d);
                               ("ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" ms));
                               ( "speedup",
                                 Rtfmt.Json.Str
                                   (Printf.sprintf "%.2f" (speedup ms)) );
                             ])
                         curve) );
                ]
            in
            checkpoint_stage state ckpt_file ~key
              (Rtfmt.Json.Obj
                 [
                   ("row", str_row row);
                   ("phase_row", str_row phase_row);
                   ("json", json);
                 ]);
            json)
      [ 10; 20; 40; 80 ]
  in
  Rtfmt.Table.print t;
  Bench_util.subsection
    "per-phase breakdown of one traced sequential run (span totals)";
  Rtfmt.Table.print phases_t;
  let json =
    Rtfmt.Json.Obj
      [
        ("experiment", Rtfmt.Json.Str "e12-parallel-scaling");
        ( "recommended_domains",
          Rtfmt.Json.Int (Domain.recommended_domain_count ()) );
        ("workloads", Rtfmt.Json.List json_workloads);
      ]
  in
  Rtfmt.write_atomic "BENCH_parallel.json" (fun oc ->
      output_string oc (Rtfmt.Json.to_string json);
      output_char oc '\n');
  Rtfmt.Checkpoint.remove ckpt_file;
  Printf.printf "wrote BENCH_parallel.json\n"

(* ------------------------------------------------------------------ *)
(* E13: incremental cache - sweeps and what-if queries                 *)
(* ------------------------------------------------------------------ *)

let incremental_sweep () =
  Bench_util.section "E13: incremental cache - deadline sweeps and what-ifs";
  Printf.printf
    "A fine-grained deadline sweep (16 factors probing the margin below\n\
     the operating point) and a 16-edit what-if series, each answered\n\
     cold (full Analysis.run per query) and through the Incremental\n\
     cache.  Results are asserted identical sample by sample; times are\n\
     wall clock, best of %d.\n"
    3;
  let best_of k f =
    let rec go k best =
      if k = 0 then best
      else
        let _, ms = Bench_util.time_ms f in
        go (k - 1) (min best ms)
    in
    go k infinity
  in
  let config =
    {
      Workload.Gen.default with
      Workload.Gen.n_tasks = 80;
      shape = Workload.Gen.Layered { layers = 5; density = 0.4 };
      seed = 11;
    }
  in
  let app = Workload.Gen.generate config in
  let system = Workload.Gen.shared_system config in
  let base_deadline = (Rtlb.App.task app 0).Rtlb.Task.deadline in
  let factors =
    List.init 16 (fun k -> 1.0 -. (0.002 *. float_of_int (15 - k)))
  in
  let distinct_deadlines =
    List.map
      (fun f ->
        let scaled = Rtlb.Sensitivity.scale_deadlines app ~factor:f in
        (Rtlb.App.task scaled 0).Rtlb.Task.deadline)
      factors
    |> List.sort_uniq compare
  in
  Printf.printf
    "\nworkload: %d tasks, common deadline %d; the 16 factors quantise\n\
     to %d distinct scaled deadline(s), so most sweep queries are\n\
     answered from cached block scans.\n"
    (Rtlb.App.n_tasks app) base_deadline
    (List.length distinct_deadlines);
  let ckpt_file = "BENCH_incremental.ckpt.json" in
  let state =
    ref
      (load_checkpoint ~kind:"bench-incremental"
         ~fingerprint:(Rtlb.Incremental.instance_fingerprint system app)
         ckpt_file)
  in
  (* Each series is one checkpoint stage: the rendered table row and
     the JSON fragment are stored together, so a --resume run replays a
     finished series verbatim and computes only the other. *)
  let stage key compute =
    let cached =
      match resumed_stage state ~key with
      | Some entry -> (
          match (Rtfmt.Json.member "row" entry, Rtfmt.Json.member "json" entry)
          with
          | row, json -> Some (row_cells row, json)
          | exception Not_found -> None)
      | None -> None
    in
    match cached with
    | Some v -> v
    | None ->
        let row, json = compute () in
        checkpoint_stage state ckpt_file ~key
          (Rtfmt.Json.Obj [ ("row", str_row row); ("json", json) ]);
        (row, json)
  in
  let series_row name cold incr identical =
    ( [
        name;
        Printf.sprintf "%.2f" cold;
        Printf.sprintf "%.2f" incr;
        Printf.sprintf "%.2fx" (cold /. incr);
        (if identical then "yes" else "NO");
      ],
      Rtfmt.Json.Obj
        [
          ("cold_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" cold));
          ("incremental_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" incr));
          ("speedup", Rtfmt.Json.Str (Printf.sprintf "%.2f" (cold /. incr)));
          ("identical", Rtfmt.Json.Bool identical);
        ] )
  in
  let sweep_row, sweep_json =
    stage "sweep" (fun () ->
        let reference =
          Rtlb.Sensitivity.deadline_sweep_cold system app ~factors
        in
        let incremental = Rtlb.Sensitivity.deadline_sweep system app ~factors in
        let sweep_identical = reference = incremental in
        let cold_ms =
          best_of 3 (fun () ->
              ignore (Rtlb.Sensitivity.deadline_sweep_cold system app ~factors))
        in
        let incr_ms =
          best_of 3 (fun () ->
              ignore (Rtlb.Sensitivity.deadline_sweep system app ~factors))
        in
        series_row "16-factor sweep" cold_ms incr_ms sweep_identical)
  in
  (* What-if series: 16 single-task deadline relaxations against one
     warm handle, versus a cold run per question. *)
  let whatif_row, whatif_json =
    stage "whatif" (fun () ->
        let edits k =
          let task = (7 * k) mod Rtlb.App.n_tasks app in
          [
            Rtlb.Incremental.Set_deadline
              {
                task;
                deadline = (Rtlb.App.task app task).Rtlb.Task.deadline + 1 + k;
              };
          ]
        in
        let handle = Rtlb.Incremental.create system app in
        let whatif_identical =
          List.for_all
            (fun k ->
              let a = Rtlb.Incremental.edit handle (edits k) in
              let b =
                Rtlb.Analysis.run system (Rtlb.Incremental.apply app (edits k))
              in
              a.Rtlb.Analysis.bounds = b.Rtlb.Analysis.bounds
              && a.Rtlb.Analysis.cost = b.Rtlb.Analysis.cost)
            (List.init 16 Fun.id)
        in
        let whatif_cold_ms =
          best_of 3 (fun () ->
              List.iter
                (fun k ->
                  ignore
                    (Rtlb.Analysis.run system
                       (Rtlb.Incremental.apply app (edits k))))
                (List.init 16 Fun.id))
        in
        let whatif_incr_ms =
          best_of 3 (fun () ->
              List.iter
                (fun k -> ignore (Rtlb.Incremental.edit handle (edits k)))
                (List.init 16 Fun.id))
        in
        series_row "16 what-if edits" whatif_cold_ms whatif_incr_ms
          whatif_identical)
  in
  let t =
    Rtfmt.Table.create
      [ "series"; "cold ms"; "incremental ms"; "speedup"; "identical" ]
  in
  Rtfmt.Table.add_row t sweep_row;
  Rtfmt.Table.add_row t whatif_row;
  Rtfmt.Table.print t;
  let json =
    Rtfmt.Json.Obj
      [
        ("experiment", Rtfmt.Json.Str "e13-incremental-cache");
        ("tasks", Rtfmt.Json.Int (Rtlb.App.n_tasks app));
        ("factors", Rtfmt.Json.Int (List.length factors));
        ( "distinct_scaled_deadlines",
          Rtfmt.Json.Int (List.length distinct_deadlines) );
        ("sweep", sweep_json);
        ("whatif", whatif_json);
      ]
  in
  Rtfmt.write_atomic "BENCH_incremental.json" (fun oc ->
      output_string oc (Rtfmt.Json.to_string json);
      output_char oc '\n');
  Rtfmt.Checkpoint.remove ckpt_file;
  Printf.printf "wrote BENCH_incremental.json\n"

(* ------------------------------------------------------------------ *)
(* E14: SoA engine scaling - packed arrays at 10^5..10^6 tasks         *)
(* ------------------------------------------------------------------ *)

(* --sizes (bench/main.ml sets it): task counts for the E14 curve.  The
   CI perf gate pins a small subset; the committed baseline holds the
   full trajectory. *)
let soa_sizes = ref [ 1_000; 10_000; 100_000; 1_000_000 ]

let soa_scaling () =
  Bench_util.section "E14: SoA scaling - packed engine on frame workloads";
  Printf.printf
    "Frame-structured layered DAGs (100-task frames) analysed by the\n\
     packed (Soa) engine on 1 and 4 domains; p50 of 5 repetitions.\n\
     Counters come from one single-domain traced run (deterministic);\n\
     at sizes up to 10^4 the result is checked against the record\n\
     engine.  Results land in BENCH_soa.json for the CI perf gate.\n";
  let median_of k f =
    let samples = List.init k (fun _ -> snd (Bench_util.time_ms f)) in
    List.nth (List.sort compare samples) (k / 2)
  in
  let system = Workload.Gen.frame_system () in
  let t =
    Rtfmt.Table.create
      [ "tasks"; "1d p50 ms"; "4d p50 ms"; "record ms"; "identical" ]
  in
  let json_workloads =
    List.map
      (fun n ->
        let frames = max 1 (n / 100) in
        let app = Workload.Gen.layered_frames ~seed:7 ~frames () in
        let soa = Rtlb.Soa.pack system app in
        let run ?pool () =
          Rtlb.Soa.compute_windows soa;
          Rtlb.Soa.bounds ?pool soa
        in
        let p50_1d = median_of 5 (fun () -> run ()) in
        let p50_4d =
          Rtlb_par.Pool.with_pool ~jobs:4 (fun pool ->
              median_of 5 (fun () -> run ~pool ()))
        in
        let tracer = Rtlb_obs.Tracer.make () in
        let _ =
          Rtlb.Soa.compute_windows soa;
          Rtlb.Soa.bounds ~tracer soa
        in
        let c name = Rtlb_obs.Tracer.counter tracer name in
        let record_ms, identical =
          if n <= 10_000 then begin
            let soa_res = Rtlb.Soa.analyze system app in
            let reference, ms =
              Bench_util.time_ms (fun () -> Rtlb.Analysis.run system app)
            in
            ( Some ms,
              Some
                (soa_res.Rtlb.Analysis.windows.Rtlb.Est_lct.est
                 = reference.Rtlb.Analysis.windows.Rtlb.Est_lct.est
                && soa_res.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
                   = reference.Rtlb.Analysis.windows.Rtlb.Est_lct.lct
                && soa_res.Rtlb.Analysis.bounds = reference.Rtlb.Analysis.bounds
                && soa_res.Rtlb.Analysis.cost = reference.Rtlb.Analysis.cost) )
          end
          else (None, None)
        in
        Rtfmt.Table.add_row t
          [
            string_of_int n;
            Printf.sprintf "%.2f" p50_1d;
            Printf.sprintf "%.2f" p50_4d;
            (match record_ms with Some ms -> Printf.sprintf "%.2f" ms | None -> "-");
            (match identical with
            | Some true -> "yes"
            | Some false -> "NO"
            | None -> "-");
          ];
        (match identical with
        | Some false ->
            prerr_endline "e14: SoA result diverged from the record engine";
            exit 1
        | _ -> ());
        Rtfmt.Json.Obj
          ([
             ("tasks", Rtfmt.Json.Int n);
             ("frames", Rtfmt.Json.Int frames);
             ( "counters",
               Rtfmt.Json.Obj
                 [
                   ("tasks_scanned", Rtfmt.Json.Int (c Rtlb_obs.Tracer.Tasks_scanned));
                   ("theta_evals", Rtfmt.Json.Int (c Rtlb_obs.Tracer.Theta_evals));
                   ( "candidate_intervals",
                     Rtfmt.Json.Int (c Rtlb_obs.Tracer.Candidate_intervals) );
                 ] );
             ( "curve",
               Rtfmt.Json.List
                 [
                   Rtfmt.Json.Obj
                     [
                       ("domains", Rtfmt.Json.Int 1);
                       ("p50_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" p50_1d));
                     ];
                   Rtfmt.Json.Obj
                     [
                       ("domains", Rtfmt.Json.Int 4);
                       ("p50_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" p50_4d));
                     ];
                 ] );
           ]
          @
          match identical with
          | Some b -> [ ("identical", Rtfmt.Json.Bool b) ]
          | None -> []))
      !soa_sizes
  in
  Rtfmt.Table.print t;
  let json =
    Rtfmt.Json.Obj
      [
        ("experiment", Rtfmt.Json.Str "e14-soa-scaling");
        ("prune", Rtfmt.Json.Bool (Rtlb.Soa.default_prune ()));
        ("reps", Rtfmt.Json.Int 5);
        ("workloads", Rtfmt.Json.List json_workloads);
      ]
  in
  Rtfmt.write_atomic "BENCH_soa.json" (fun oc ->
      output_string oc (Rtfmt.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote BENCH_soa.json\n"

(* [all] lives at the end of the file so it can name every experiment,
   including E15 below. *)

(* -- E15: serve daemon throughput/latency under multi-process load ---

   The acceptance experiment for the bound-query daemon: the server
   (2 worker threads x 2-domain pools, LRU-cached warm handles,
   priority admission + what-if coalescing) answers a mixed warm/cold
   analyze/whatif workload over its Unix socket from 8 forked tenant
   processes — real connections, real frames, no shared address space
   with the daemon.  Each tenant pipelines bursts (send-all, then time
   every reply individually), which is what lets the daemon coalesce
   compatible what-ifs.  Reports throughput, overall and per-tenant
   p50/p99 request latency, and the serve counters, into
   BENCH_serve.json.

   Fork discipline: every tenant process is forked BEFORE the server
   (and its worker/acceptor threads) exists, so children never inherit
   a threaded runtime; they retry-connect while the daemon binds. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (p * (n - 1) / 100))

let serve_throughput () =
  Bench_util.section "E15: serve daemon throughput and latency";
  let module Server = Rtlb_serve.Server in
  let module Client = Rtlb_serve.Client in
  let now_ns () = Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic in
  let sock_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rtlb-bench-%d.sock" (Unix.getpid ()))
  in
  (* Request templates: field lists so each tenant can stamp its own
     "tenant" field in.  Mixed warm/cold: 4 generated 80-task apps x
     {record analyze, soa analyze, record whatif} — first touch is a
     cold build, repeats hit the warm LRU, and concurrent what-ifs on
     the same text coalesce. *)
  let requests =
    List.concat_map
      (fun seed ->
        let app =
          Workload.Gen.layered_frames ~seed ~frames:2 ~tasks_per_frame:40 ()
        in
        let text = Rtfmt.Appfile.to_string app in
        let d0 = (Rtlb.App.task app 0).Rtlb.Task.deadline in
        [
          [ ("op", Rtfmt.Json.Str "analyze"); ("app", Rtfmt.Json.Str text) ];
          [
            ("op", Rtfmt.Json.Str "analyze");
            ("app", Rtfmt.Json.Str text);
            ("engine", Rtfmt.Json.Str "soa");
          ];
          [
            ("op", Rtfmt.Json.Str "whatif");
            ("app", Rtfmt.Json.Str text);
            ( "edits",
              Rtfmt.Json.List
                [
                  Rtfmt.Json.Obj
                    [
                      ("task", Rtfmt.Json.Int 0);
                      ("deadline", Rtfmt.Json.Int (d0 + 5));
                    ];
                ] );
          ];
        ])
      [ 3; 4; 5; 6 ]
  in
  let requests = Array.of_list requests in
  let clients = 8 and per_client = 100 and burst = 100 in
  let total = clients * per_client in
  let child c write_fd =
    (* tenant process: retry-connect, pipeline bursts, report one
       "<latency_ns> <ok>" line per request on its pipe *)
    let oc = Unix.out_channel_of_descr write_fd in
    let exit_code =
      match Client.connect_unix ~retry_for:10.0 sock_path with
      | exception _ -> 1
      | client ->
          let tenant = Printf.sprintf "tenant-%d" c in
          let k = ref 0 in
          while !k < per_client do
            let m = min burst (per_client - !k) in
            let frames =
              List.init m (fun i ->
                  let idx =
                    ((c * per_client) + !k + i) mod Array.length requests
                  in
                  Rtfmt.Json.Obj
                    (("tenant", Rtfmt.Json.Str tenant) :: requests.(idx)))
            in
            let t_burst = now_ns () in
            let sent =
              List.map (fun id -> (id, t_burst)) (Client.send_batch client frames)
            in
            List.iter
              (fun (id, t0) ->
                let ok =
                  match id with
                  | Error _ -> false
                  | Ok id -> (
                      match Client.recv_raw client id with
                      | Error _ -> false
                      | Ok line ->
                          (* "ok" is the field right after the echoed id *)
                          let marker = "\"ok\": true," in
                          let ml = String.length marker in
                          let rec find i =
                            i + ml <= String.length line
                            && (String.sub line i ml = marker || find (i + 1))
                          in
                          find 0)
                in
                let lat = Int64.to_float (Int64.sub (now_ns ()) t0) in
                Printf.fprintf oc "%.0f %d\n" lat (if ok then 1 else 0))
              sent;
            k := !k + m
          done;
          Client.close client;
          0
    in
    close_out oc;
    exit_code
  in
  (* fork all tenants first — the daemon's threads come afterwards *)
  let pipes = Array.init clients (fun _ -> Unix.pipe ()) in
  let pids =
    Array.init clients (fun c ->
        match Unix.fork () with
        | 0 ->
            let code =
              try
                Array.iteri
                  (fun i (r, w) ->
                    Unix.close r;
                    if i <> c then Unix.close w)
                  pipes;
                child c (snd pipes.(c))
              with _ -> 1
            in
            Unix._exit code
        | pid -> pid)
  in
  Array.iter (fun (_, w) -> Unix.close w) pipes;
  let tracer = Rtlb_obs.Tracer.make () in
  let config =
    {
      Server.default_config with
      Server.jobs = 1;
      workers = 1;
      queue_capacity = 2 * total;  (* fully pipelined tenants all fit *)
      tracer;
    }
  in
  let server = Server.create ~config () in
  let stop = Atomic.make false in
  (* throughput clock starts when the listener is actually ready — the
     tenants are retry-connecting already *)
  let t0 = ref (now_ns ()) in
  let server_thread =
    Thread.create
      (fun () ->
        Server.serve server
          ~on_ready:(fun _ -> t0 := now_ns ())
          ~endpoints:[ Server.Unix_path sock_path ]
          ~stop:(fun () -> Atomic.get stop)
          ())
      ()
  in
  (* drain every tenant's result pipe (EOF = tenant done) *)
  let per_tenant =
    Array.map
      (fun (r, _) ->
        let ic = Unix.in_channel_of_descr r in
        let rows = ref [] in
        (try
           while true do
             match String.split_on_char ' ' (input_line ic) with
             | [ lat; ok ] -> rows := (float_of_string lat, ok = "1") :: !rows
             | _ -> ()
           done
         with End_of_file | Failure _ -> ());
        close_in ic;
        List.rev !rows)
      pipes
  in
  let t1 = now_ns () in
  let failed_children =
    Array.fold_left
      (fun acc pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> acc
        | _ -> acc + 1)
      0 pids
  in
  (* the live daemon's own view, while still serving: the same shape
     the protocol's stats op reports *)
  let stats = Server.stats_snapshot server in
  Atomic.set stop true;
  Thread.join server_thread;
  let wall_ms = Int64.to_float (Int64.sub t1 !t0) /. 1e6 in
  let all_rows = Array.to_list per_tenant |> List.concat in
  let errors =
    (if List.length all_rows < total then total - List.length all_rows else 0)
    + List.length (List.filter (fun (_, ok) -> not ok) all_rows)
    + failed_children
  in
  let sorted_ms rows =
    let a = Array.of_list (List.map (fun (lat, _) -> lat /. 1e6) rows) in
    Array.sort compare a;
    a
  in
  let latencies_ms = sorted_ms all_rows in
  let p50 = percentile latencies_ms 50 in
  let p99 = percentile latencies_ms 99 in
  let throughput = float_of_int total /. (wall_ms /. 1000.0) in
  let c name = Rtlb_obs.Tracer.counter tracer name in
  let t = Rtfmt.Table.create [ "metric"; "value" ] in
  Rtfmt.Table.add_row t [ "tenant processes"; string_of_int clients ];
  Rtfmt.Table.add_row t [ "requests"; string_of_int total ];
  Rtfmt.Table.add_row t [ "errors"; string_of_int errors ];
  Rtfmt.Table.add_row t [ "wall ms"; Printf.sprintf "%.1f" wall_ms ];
  Rtfmt.Table.add_row t [ "req/s"; Printf.sprintf "%.0f" throughput ];
  Rtfmt.Table.add_row t [ "p50 ms"; Printf.sprintf "%.2f" p50 ];
  Rtfmt.Table.add_row t [ "p99 ms"; Printf.sprintf "%.2f" p99 ];
  Rtfmt.Table.add_row t
    [ "admitted"; string_of_int (c Rtlb_obs.Tracer.Requests_admitted) ];
  Rtfmt.Table.add_row t
    [ "coalesced"; string_of_int (c Rtlb_obs.Tracer.Coalesced_queries) ];
  Rtfmt.Table.add_row t
    [ "cache hits"; string_of_int (c Rtlb_obs.Tracer.Cache_hits) ];
  Rtfmt.Table.add_row t
    [ "evictions"; string_of_int (c Rtlb_obs.Tracer.Evictions) ];
  Rtfmt.Table.print t;
  if errors > 0 then begin
    prerr_endline "e15: multi-process serve run produced error replies";
    exit 1
  end;
  let tenant_json =
    List.init clients (fun cidx ->
        let rows = per_tenant.(cidx) in
        let ms = sorted_ms rows in
        Rtfmt.Json.Obj
          [
            ("tenant", Rtfmt.Json.Str (Printf.sprintf "tenant-%d" cidx));
            ("requests", Rtfmt.Json.Int (List.length rows));
            ( "p50_ms",
              Rtfmt.Json.Str (Printf.sprintf "%.3f" (percentile ms 50)) );
            ( "p99_ms",
              Rtfmt.Json.Str (Printf.sprintf "%.3f" (percentile ms 99)) );
          ])
  in
  let json =
    Rtfmt.Json.Obj
      [
        ("experiment", Rtfmt.Json.Str "e15-serve-throughput");
        ("transport", Rtfmt.Json.Str "unix-socket, 8 forked tenant processes");
        ("clients", Rtfmt.Json.Int clients);
        ("requests", Rtfmt.Json.Int total);
        ("burst", Rtfmt.Json.Int burst);
        ("workers", Rtfmt.Json.Int config.Server.workers);
        ("jobs", Rtfmt.Json.Int config.Server.jobs);
        ("throughput_rps", Rtfmt.Json.Str (Printf.sprintf "%.1f" throughput));
        ("p50_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" p50));
        ("p99_ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" p99));
        ("tenants", Rtfmt.Json.List tenant_json);
        ( "counters",
          Rtfmt.Json.Obj
            [
              ( "requests_admitted",
                Rtfmt.Json.Int (c Rtlb_obs.Tracer.Requests_admitted) );
              ( "requests_rejected",
                Rtfmt.Json.Int (c Rtlb_obs.Tracer.Requests_rejected) );
              ( "coalesced_queries",
                Rtfmt.Json.Int (c Rtlb_obs.Tracer.Coalesced_queries) );
              ( "quota_rejections",
                Rtfmt.Json.Int (c Rtlb_obs.Tracer.Quota_rejections) );
              ("evictions", Rtfmt.Json.Int (c Rtlb_obs.Tracer.Evictions));
              ( "degraded_replies",
                Rtfmt.Json.Int (c Rtlb_obs.Tracer.Degraded_replies) );
              ("cache_hits", Rtfmt.Json.Int (c Rtlb_obs.Tracer.Cache_hits));
            ] );
        ( "stats",
          Rtfmt.Json.Obj
            (List.map
               (fun field -> (field, Rtfmt.Json.member field stats))
               [ "uptime_ms"; "cache_entries"; "journal_entries" ]) );
      ]
  in
  Rtfmt.write_atomic "BENCH_serve.json" (fun oc ->
      output_string oc (Rtfmt.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote BENCH_serve.json\n"

(* -- E16: recurrent DAG baselines - long-paths vs the single-path bound

   Tightness of the sporadic-DAG response-time chain on every generator
   family: per task, [exact <= multi-path <= long-paths <= graham], so
   the interesting numbers are how much of the Graham slack the
   schedule-derived bounds recover and how often the multi-path bound is
   exactly the branch-and-bound optimum.  The closed-form long-paths
   expression is reported alongside as an estimate (it may undercut the
   optimum, which is why the sandwich pins the schedule-derived bound
   instead).  Results land in BENCH_recurrent.json. *)

let recurrent_baselines () =
  Bench_util.section
    "E16: recurrent baselines - long-paths / multi-path tightness vs Graham";
  Printf.printf
    "Per family and m: mean bounds over every task of 10 random 3-task\n\
     sets, the fraction of Graham's slack each refinement recovers, and\n\
     how often the multi-path bound equals the exact makespan (of the\n\
     tasks where the search finishes).\n";
  let shapes =
    [
      Workload.Gen.Layered { layers = 3; density = 0.5 };
      Workload.Gen.Series_parallel;
      Workload.Gen.Fork_join { width = 3 };
      Workload.Gen.Out_tree;
      Workload.Gen.In_tree;
      Workload.Gen.Chain;
      Workload.Gen.Independent;
    ]
  in
  let t =
    Rtfmt.Table.create
      [
        "shape"; "m"; "tasks"; "mean graham"; "mean long-paths";
        "mean multi-path"; "mean closed-form"; "mp=exact %"; "ms";
      ]
  in
  let rows = ref [] in
  List.iter
    (fun shape ->
      List.iter
        (fun m ->
          let grs = ref [] and hes = ref [] and mps = ref [] in
          let cfs = ref [] in
          let exact_hits = ref 0 and exact_known = ref 0 in
          let n_tasks = ref 0 in
          let (), ms =
            Bench_util.time_ms (fun () ->
                for seed = 1 to 10 do
                  let config =
                    {
                      Workload.Recurrent_gen.default with
                      seed = (97 * seed) + (13 * m);
                      shape;
                      tasks = 3;
                      vertices = 8;
                    }
                  in
                  let model = Workload.Recurrent_gen.generate config in
                  List.iter
                    (fun dt ->
                      incr n_tasks;
                      let gr = Baselines.He_long_paths.graham ~m dt in
                      let he = Baselines.He_long_paths.bound ~m dt in
                      let mp = Baselines.Multi_path.bound ~m dt in
                      let cf =
                        Baselines.He_long_paths.value ~m dt
                          (Baselines.He_long_paths.paths ~m dt)
                      in
                      grs := float_of_int gr :: !grs;
                      hes := float_of_int he :: !hes;
                      mps := float_of_int mp :: !mps;
                      cfs := float_of_int cf :: !cfs;
                      match
                        Sched.Makespan.minimum (Recurrent.Unroll.task_app dt)
                          ~m
                      with
                      | None -> ()
                      | Some exact ->
                          incr exact_known;
                          if mp = exact then incr exact_hits)
                    model.Recurrent.Model.tasks
                done)
          in
          let pct =
            if !exact_known = 0 then 0.0
            else 100.0 *. float_of_int !exact_hits /. float_of_int !exact_known
          in
          Rtfmt.Table.add_row t
            [
              Workload.Gen.shape_name shape;
              string_of_int m;
              string_of_int !n_tasks;
              Printf.sprintf "%.1f" (mean !grs);
              Printf.sprintf "%.1f" (mean !hes);
              Printf.sprintf "%.1f" (mean !mps);
              Printf.sprintf "%.1f" (mean !cfs);
              Printf.sprintf "%.0f" pct;
              Printf.sprintf "%.1f" ms;
            ];
          rows :=
            Rtfmt.Json.Obj
              [
                ("shape", Rtfmt.Json.Str (Workload.Gen.shape_name shape));
                ("m", Rtfmt.Json.Int m);
                ("tasks", Rtfmt.Json.Int !n_tasks);
                ("mean_graham", Rtfmt.Json.Str (Printf.sprintf "%.3f" (mean !grs)));
                ( "mean_long_paths",
                  Rtfmt.Json.Str (Printf.sprintf "%.3f" (mean !hes)) );
                ( "mean_multi_path",
                  Rtfmt.Json.Str (Printf.sprintf "%.3f" (mean !mps)) );
                ( "mean_closed_form",
                  Rtfmt.Json.Str (Printf.sprintf "%.3f" (mean !cfs)) );
                ("exact_known", Rtfmt.Json.Int !exact_known);
                ("multi_path_exact", Rtfmt.Json.Int !exact_hits);
                ("ms", Rtfmt.Json.Str (Printf.sprintf "%.3f" ms));
              ]
            :: !rows)
        [ 2; 4 ])
    shapes;
  Rtfmt.Table.print t;
  let json =
    Rtfmt.Json.Obj
      [
        ("experiment", Rtfmt.Json.Str "e16-recurrent-baselines");
        ("seeds", Rtfmt.Json.Int 10);
        ("tasks_per_set", Rtfmt.Json.Int 3);
        ("vertices_per_task", Rtfmt.Json.Int 8);
        ("rows", Rtfmt.Json.List (List.rev !rows));
      ]
  in
  Rtfmt.write_atomic "BENCH_recurrent.json" (fun oc ->
      output_string oc (Rtfmt.Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote BENCH_recurrent.json\n"

let all () =
  tightness ();
  baselines ();
  synthesis ();
  preemption ();
  partitioning ();
  scaling ();
  point_policies ();
  preemptive_exactness ();
  anomalies ();
  time_bounds ();
  priorities ();
  parallel_scaling ();
  incremental_sweep ();
  soa_scaling ();
  serve_throughput ();
  recurrent_baselines ()
