(* Shared helpers for the benchmark harness: section headers, wall-clock
   timing, and a thin wrapper over bechamel's measure/analyse pipeline. *)

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" line title line

let subsection title = Printf.printf "\n-- %s --\n" title

(* Monotonic (Rtlb_obs.Clock), not gettimeofday: wall-clock steps must
   not distort benchmark timings. *)
let time_ms f =
  let t0 = Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic in
  let result = f () in
  let t1 = Rtlb_obs.Clock.now_ns Rtlb_obs.Clock.monotonic in
  (result, Int64.to_float (Int64.sub t1 t0) /. 1e6)

(* Run a list of (name, thunk) micro-benchmarks under bechamel and return
   [(name, ns_per_run)] in input order. *)
let bechamel_ns tests =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map
      (fun (name, f) -> Test.make ~name (Staged.stage f))
      tests
  in
  let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (ns :: _) -> (name, ns) :: acc
      | _ -> acc)
    results []
  |> List.sort compare

let pp_ns ns =
  if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns
