(* CI perf gate over the E14 SoA scaling bench.

     dune exec bench/check_regression.exe -- BASELINE FRESH

   Compares a freshly produced BENCH_soa.json against the committed
   baseline, per (tasks, domains) point:

   - counters (tasks_scanned / theta_evals / candidate_intervals) must
     match the baseline exactly — they are deterministic functions of
     the workload and the pruning logic, so any drift means the engine's
     work changed (e.g. pruning was weakened or disabled);
   - p50 wall time must stay within a slack factor (default 20%,
     RTLB_GATE_TIME_SLACK overrides) of the baseline, after normalising
     out machine speed: the smallest common size serves as a
     calibration point, and each larger size is compared through its
     ratio to that calibration — so a uniformly slower runner passes
     while a superlinear slowdown of the big sizes fails.

   Only sizes present in BOTH files are gated, so the CI job can run a
   pinned subset of the committed trajectory.  Exit 0 = pass, 1 =
   regression, 2 = usage/parse error. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("check_regression: " ^ s); exit 2) fmt

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let ok fmt = Printf.ksprintf (fun s -> Printf.printf "ok   %s\n" s) fmt

let member name j =
  match Rtfmt.Json.member name j with
  | v -> Some v
  | exception Not_found -> None

let as_int = function Rtfmt.Json.Int n -> Some n | _ -> None

let as_float = function
  | Rtfmt.Json.Str s -> float_of_string_opt s
  | Rtfmt.Json.Int n -> Some (float_of_int n)
  | _ -> None

let get_int j name =
  match Option.bind (member name j) as_int with
  | Some n -> n
  | None -> die "missing integer field %S" name

(* (tasks, counters, [(domains, p50_ms)]) per workload entry. *)
let workloads path =
  let json =
    match Rtfmt.Json.parse (read_file path) with
    | j -> j
    | exception Rtfmt.Json.Parse_error e -> die "%s: %s" path e
    | exception Sys_error e -> die "%s" e
  in
  let entries =
    match member "workloads" json with
    | Some (Rtfmt.Json.List l) -> l
    | _ -> die "%s: no workloads list" path
  in
  List.map
    (fun w ->
      let counters =
        match member "counters" w with
        | Some c ->
            List.map
              (fun name -> (name, get_int c name))
              [ "tasks_scanned"; "theta_evals"; "candidate_intervals" ]
        | None -> die "%s: workload without counters" path
      in
      let curve =
        match member "curve" w with
        | Some (Rtfmt.Json.List pts) ->
            List.filter_map
              (fun p ->
                match
                  ( Option.bind (member "domains" p) as_int,
                    Option.bind (member "p50_ms" p) as_float )
                with
                | Some d, Some ms -> Some (d, ms)
                | _ -> None)
              pts
        | _ -> die "%s: workload without curve" path
      in
      (get_int w "tasks", counters, curve))
    entries

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ -> die "usage: check_regression BASELINE FRESH"
  in
  let slack =
    match Sys.getenv_opt "RTLB_GATE_TIME_SLACK" with
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f > 0.0 -> f
        | _ -> die "RTLB_GATE_TIME_SLACK must be a positive float, got %S" s)
    | None -> 0.20
  in
  let baseline = workloads baseline_path in
  let fresh = workloads fresh_path in
  let common =
    List.filter_map
      (fun (n, fc, fcurve) ->
        match List.find_opt (fun (bn, _, _) -> bn = n) baseline with
        | Some (_, bc, bcurve) -> Some (n, (bc, bcurve), (fc, fcurve))
        | None -> None)
      fresh
  in
  if common = [] then die "no common sizes between %s and %s" baseline_path fresh_path;
  (* Counters: exact. *)
  List.iter
    (fun (n, (bc, _), (fc, _)) ->
      List.iter
        (fun (name, bv) ->
          match List.assoc_opt name fc with
          | Some fv when fv = bv -> ok "%d tasks: %s = %d" n name fv
          | Some fv -> fail "%d tasks: %s drifted (baseline %d, fresh %d)" n name bv fv
          | None -> fail "%d tasks: %s missing from fresh run" n name)
        bc)
    common;
  (* Time: normalise machine speed through the smallest common size,
     then gate every larger size's ratio-to-calibration. *)
  let smallest =
    List.fold_left (fun a (n, _, _) -> min a n) max_int common
  in
  List.iter
    (fun dom ->
      let p50 curve = List.assoc_opt dom curve in
      let cal =
        List.find_map
          (fun (n, (_, bcurve), (_, fcurve)) ->
            if n = smallest then
              match (p50 bcurve, p50 fcurve) with
              | Some b, Some f when b > 0.0 && f > 0.0 -> Some (b, f)
              | _ -> None
            else None)
          common
      in
      match cal with
      | None -> ()
      | Some (bcal, fcal) ->
          List.iter
            (fun (n, (_, bcurve), (_, fcurve)) ->
              if n <> smallest then
                match (p50 bcurve, p50 fcurve) with
                | Some b, Some f ->
                    let bratio = b /. bcal and fratio = f /. fcal in
                    if fratio > bratio *. (1.0 +. slack) then
                      fail
                        "%d tasks, %dd: %.1fms (%.1fx calibration) exceeds \
                         baseline %.1fms (%.1fx) by more than %.0f%%"
                        n dom f fratio b bratio (slack *. 100.0)
                    else
                      ok "%d tasks, %dd: %.1fx calibration (baseline %.1fx)" n
                        dom fratio bratio
                | _ -> fail "%d tasks: missing %dd timing" n dom)
            common)
    [ 1; 4 ];
  if !failures > 0 then begin
    Printf.printf "%d regression(s) against %s\n" !failures baseline_path;
    exit 1
  end;
  Printf.printf "no regressions against %s\n" baseline_path
