let rebuild ~tasks ~edges = Rtlb.App.make ~tasks ~edges

let tasks_of app = Array.to_list (Rtlb.App.tasks app)

let edges_of app =
  Dag.fold_edges (Rtlb.App.graph app) ~init:[] ~f:(fun acc ~src ~dst m ->
      (src, dst, m) :: acc)

let with_task app ~task ~f =
  let tasks =
    List.map
      (fun (t : Rtlb.Task.t) -> if t.Rtlb.Task.id = task then f t else t)
      (tasks_of app)
  in
  rebuild ~tasks ~edges:(edges_of app)

let tighten_deadline app ~task ~by =
  let t = Rtlb.App.task app task in
  let deadline = t.Rtlb.Task.deadline - by in
  if t.Rtlb.Task.release + t.Rtlb.Task.compute > deadline then None
  else
    Some
      (with_task app ~task ~f:(fun t -> Rtlb.Task.with_deadline t deadline))

let relax_deadline app ~task ~by =
  let t = Rtlb.App.task app task in
  with_task app ~task ~f:(fun x ->
      Rtlb.Task.with_deadline x (t.Rtlb.Task.deadline + by))

let delay_release app ~task ~by =
  let t = Rtlb.App.task app task in
  let release = t.Rtlb.Task.release + by in
  if release + t.Rtlb.Task.compute > t.Rtlb.Task.deadline then None
  else
    Some
      (with_task app ~task ~f:(fun x ->
           Rtlb.Task.make ~id:x.Rtlb.Task.id ~name:x.Rtlb.Task.name
             ~compute:x.Rtlb.Task.compute ~release
             ~deadline:x.Rtlb.Task.deadline ~proc:x.Rtlb.Task.proc
             ~resources:x.Rtlb.Task.resources
             ~preemptive:x.Rtlb.Task.preemptive ()))

let scale_messages app ~percent =
  let scale m =
    if percent >= 100 then ((m * percent) + 99) / 100 else m * percent / 100
  in
  rebuild ~tasks:(tasks_of app)
    ~edges:(List.map (fun (s, d, m) -> (s, d, scale m)) (edges_of app))

let add_edge app ~src ~dst ~message =
  if src = dst then None
  else if Dag.edge_weight (Rtlb.App.graph app) ~src ~dst <> None then None
  else if (Dag.reachable (Rtlb.App.graph app) dst).(src) then None
  else
    Some
      (rebuild ~tasks:(tasks_of app)
         ~edges:((src, dst, message) :: edges_of app))

let drop_edge app ~src ~dst =
  if Dag.edge_weight (Rtlb.App.graph app) ~src ~dst = None then None
  else
    Some
      (rebuild ~tasks:(tasks_of app)
         ~edges:
           (List.filter (fun (s, d, _) -> (s, d) <> (src, dst)) (edges_of app)))

let zero_communication app =
  rebuild ~tasks:(tasks_of app)
    ~edges:(List.map (fun (s, d, _) -> (s, d, 0)) (edges_of app))

(* ---------------- validity-breaking corruptions ---------------- *)

type corruption =
  | Reverse_edge
  | Shrink_window
  | Dangling_edge
  | Negative_message
  | Negative_compute
  | Duplicate_task

let corruptions =
  [
    Reverse_edge;
    Shrink_window;
    Dangling_edge;
    Negative_message;
    Negative_compute;
    Duplicate_task;
  ]

let corruption_name = function
  | Reverse_edge -> "reverse-edge"
  | Shrink_window -> "shrink-window"
  | Dangling_edge -> "dangling-edge"
  | Negative_message -> "negative-message"
  | Negative_compute -> "negative-compute"
  | Duplicate_task -> "duplicate-task"

let corrupt app c =
  let tasks, edges = Rtlb.Validate.spec_of_app app in
  let open Rtlb.Validate in
  match (c, tasks, edges) with
  | Reverse_edge, _, e :: _ ->
      (* Closing the first edge into a 2-cycle: E101. *)
      let back =
        { es_src = e.es_dst; es_dst = e.es_src; es_message = 0; es_line = None }
      in
      Some (tasks, edges @ [ back ])
  | Reverse_edge, _, [] -> None
  | Shrink_window, _, _ -> (
      match List.find_opt (fun ts -> ts.ts_compute > 0) tasks with
      | None -> None
      | Some victim ->
          Some
            ( List.map
                (fun ts ->
                  if ts.ts_name = victim.ts_name then
                    {
                      ts with
                      ts_deadline = ts.ts_release + ts.ts_compute - 1;
                    }
                  else ts)
                tasks,
              edges ))
  | Dangling_edge, ts :: _, _ ->
      let stray =
        {
          es_src = ts.ts_name;
          es_dst = "__undeclared__";
          es_message = 0;
          es_line = None;
        }
      in
      Some (tasks, edges @ [ stray ])
  | Dangling_edge, [], _ -> None
  | Negative_message, _, e :: rest ->
      Some (tasks, { e with es_message = -1 } :: rest)
  | Negative_message, _, [] -> None
  | Negative_compute, ts :: rest, _ ->
      Some ({ ts with ts_compute = -1 } :: rest, edges)
  | Negative_compute, [], _ -> None
  | Duplicate_task, ts :: _, _ -> Some (tasks @ [ ts ], edges)
  | Duplicate_task, [], _ -> None
