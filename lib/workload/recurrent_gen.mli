(** Recurrent variants of every one-shot generator family: each sporadic
    DAG task's vertex graph is drawn from {!Gen.generate} (any
    {!Gen.shape}), and the rate parameters are derived from the drawn
    volume so utilisation is controlled by one knob.

    Per task [i], a fresh one-shot instance (seeded from [seed] and [i],
    single processor type, no resources/messages/releases) supplies the
    vertex wcets and the precedence edges; the period is
    [stretch * vol] rounded up — by default onto the [2^k / 3*2^k] grid,
    which keeps any subset's hyperperiod within [3x] the largest period
    so unrolled horizons stay small.  Per-task utilisation is therefore
    about [1 / stretch] and the set's about [tasks / stretch]. *)

type deadline_model =
  | Implicit  (** [D = T]. *)
  | Constrained of float
      (** [D = f * T] (clamped to [\[max wcet, T\]]) — [f < 1] exercises
          the constrained regime, including infeasible sets with
          [D < len]. *)
  | Arbitrary of float  (** [D = f * T], forced strictly above [T]. *)

type config = {
  seed : int;
  tasks : int;
  shape : Gen.shape;
  vertices : int;  (** Per task; [Gauss]/[Fft] keep intrinsic sizes. *)
  wcet_range : int * int;
  period_stretch : float;  (** [>= 1]; per-task utilisation [~ 1/stretch]. *)
  deadline_model : deadline_model;
  snap_periods : bool;  (** Round periods onto the lcm-friendly grid. *)
}

val default : config
(** 3 layered tasks of 8 vertices, wcets 1..9, stretch 2, implicit
    deadlines, snapped periods. *)

val generate : config -> Recurrent.Model.t
(** Deterministic in [config]. *)

val snap : int -> int
(** The period grid: smallest [2^k] or [3 * 2^k] that is [>= p]. *)
