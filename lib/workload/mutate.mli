(** Structure-preserving instance mutations, for metamorphic testing.

    Each mutation changes an application in a direction with a {e known}
    effect on the analysis: tightening a constraint can only raise lower
    bounds, relaxing one can only lower them.  The test suite applies
    random mutations and checks the predicted monotonicity — a class of
    bug that point tests rarely catch. *)

val tighten_deadline : Rtlb.App.t -> task:int -> by:int -> Rtlb.App.t option
(** Deadline reduced by [by]; [None] when the task's own window would no
    longer fit ([release + compute > deadline]). *)

val relax_deadline : Rtlb.App.t -> task:int -> by:int -> Rtlb.App.t

val delay_release : Rtlb.App.t -> task:int -> by:int -> Rtlb.App.t option
(** Release increased by [by]; [None] when the window would no longer
    fit. *)

val scale_messages : Rtlb.App.t -> percent:int -> Rtlb.App.t
(** Every message size multiplied by [percent/100] (rounded up when
    growing, down when shrinking). *)

val add_edge : Rtlb.App.t -> src:int -> dst:int -> message:int -> Rtlb.App.t option
(** [None] when the edge exists, is a self loop, or would create a
    cycle. *)

val drop_edge : Rtlb.App.t -> src:int -> dst:int -> Rtlb.App.t option
(** [None] when the edge does not exist. *)

val zero_communication : Rtlb.App.t -> Rtlb.App.t
(** All message sizes set to [0] — a pure relaxation. *)

(** {1 Validity-breaking corruptions}

    Where the mutations above stay inside the valid-instance space, a
    corruption deliberately leaves it — each in a way {!Rtlb.Validate}
    must catch with at least one [E*] diagnostic.  Corrupted instances
    cannot exist as [App.t] (the constructors reject them), so the result
    is a spec pair for {!Rtlb.Validate.check_spec}. *)

type corruption =
  | Reverse_edge  (** Close an existing edge into a 2-cycle ([E101]). *)
  | Shrink_window  (** Deadline below [release + compute] ([E102]). *)
  | Dangling_edge  (** Edge to an undeclared task ([E103]). *)
  | Negative_message  (** Message size [-1] ([E104]). *)
  | Negative_compute  (** Compute [-1] ([E104]). *)
  | Duplicate_task  (** Re-declare the first task ([E105]). *)

val corruptions : corruption list
(** Every constructor, for exhaustive property tests. *)

val corruption_name : corruption -> string

val corrupt :
  Rtlb.App.t ->
  corruption ->
  (Rtlb.Validate.task_spec list * Rtlb.Validate.edge_spec list) option
(** [None] when the application lacks the needed structure (e.g. no edge
    to reverse). *)
