type deadline_model = Implicit | Constrained of float | Arbitrary of float

type config = {
  seed : int;
  tasks : int;
  shape : Gen.shape;
  vertices : int;
  wcet_range : int * int;
  period_stretch : float;
  deadline_model : deadline_model;
  snap_periods : bool;
}

let default =
  {
    seed = 1;
    tasks = 3;
    shape = Gen.Layered { layers = 3; density = 0.5 };
    vertices = 8;
    wcet_range = (1, 9);
    period_stretch = 2.0;
    deadline_model = Implicit;
    snap_periods = true;
  }

(* Round up to the next grid value 2^k or 3*2^k, so any set of snapped
   periods has lcm at most [3 * max period] and unrolled hyperperiods
   stay small — the property tests and the differential harness depend
   on bounded horizons. *)
let snap p =
  if p <= 1 then 1
  else begin
    let best = ref max_int in
    let consider g = if g >= p && g < !best then best := g in
    let g = ref 1 in
    while !g < p && !g <= max_int / 2 do
      g := !g * 2
    done;
    consider !g;
    let g = ref 3 in
    while !g < p && !g <= max_int / 2 do
      g := !g * 2
    done;
    consider !g;
    !best
  end

let deadline_of model ~period ~max_wcet =
  match model with
  | Implicit -> period
  | Constrained f ->
      let d = int_of_float (ceil (f *. float_of_int period)) in
      min period (max max_wcet (max 1 d))
  | Arbitrary f ->
      let d = int_of_float (ceil (f *. float_of_int period)) in
      max (period + 1) d

let dtask_of_config ~name base =
  let app = Gen.generate base in
  let n = Rtlb.App.n_tasks app in
  let vertices =
    Array.init n (fun i ->
        {
          Recurrent.Model.v_name = Printf.sprintf "v%d" i;
          v_wcet = (Rtlb.App.task app i).Rtlb.Task.compute;
        })
  in
  let edges =
    List.concat
      (List.init n (fun i ->
           List.map (fun j -> (i, j)) (Rtlb.App.succs app i)))
  in
  let vol = Array.fold_left (fun acc v -> acc + v.Recurrent.Model.v_wcet) 0 vertices in
  let max_wcet =
    Array.fold_left (fun acc v -> max acc v.Recurrent.Model.v_wcet) 1 vertices
  in
  (name, vertices, edges, vol, max_wcet)

let generate config =
  if config.tasks <= 0 then
    invalid_arg "Recurrent_gen.generate: need at least one task";
  let tasks =
    List.init config.tasks (fun i ->
        let base =
          {
            Gen.seed = config.seed + (7919 * i);
            n_tasks = max 1 config.vertices;
            shape = config.shape;
            compute_range = config.wcet_range;
            ccr = 0.0;
            laxity = 16.0;
            proc_types = [ ("P", 1.0) ];
            resource_types = [];
            preemptive_fraction = 0.0;
            release_spread = 0.0;
          }
        in
        let name, vertices, edges, vol, max_wcet =
          dtask_of_config ~name:(Printf.sprintf "tau%d" i) base
        in
        let period =
          let p =
            int_of_float (ceil (config.period_stretch *. float_of_int vol))
          in
          let p = max p max_wcet in
          if config.snap_periods then snap p else max 1 p
        in
        let deadline =
          deadline_of config.deadline_model ~period ~max_wcet
        in
        Recurrent.Model.dtask ~name ~period ~deadline ~vertices ~edges ())
  in
  Recurrent.Model.make ~tasks
