type shape =
  | Layered of { layers : int; density : float }
  | Series_parallel
  | Fork_join of { width : int }
  | Out_tree
  | In_tree
  | Gauss of { size : int }
  | Fft of { points : int }
  | Stencil of { rows : int; cols : int }
  | Chain
  | Independent

type config = {
  seed : int;
  n_tasks : int;
  shape : shape;
  compute_range : int * int;
  ccr : float;
  laxity : float;
  proc_types : (string * float) list;
  resource_types : (string * float) list;
  preemptive_fraction : float;
  release_spread : float;
}

let default =
  {
    seed = 42;
    n_tasks = 20;
    shape = Layered { layers = 4; density = 0.4 };
    compute_range = (1, 10);
    ccr = 0.5;
    laxity = 1.5;
    proc_types = [ ("P1", 0.7); ("P2", 0.3) ];
    resource_types = [ ("r1", 0.3) ];
    preemptive_fraction = 0.0;
    release_spread = 0.0;
  }

let shape_name = function
  | Layered _ -> "layered"
  | Series_parallel -> "series-parallel"
  | Fork_join _ -> "fork-join"
  | Out_tree -> "out-tree"
  | In_tree -> "in-tree"
  | Gauss _ -> "gauss"
  | Fft _ -> "fft"
  | Stencil _ -> "stencil"
  | Chain -> "chain"
  | Independent -> "independent"

(* ------------------------------------------------------------------ *)
(* Edge structure per shape: returns (n, edge list without weights).   *)
(* ------------------------------------------------------------------ *)

let layered_edges rng n layers density =
  let layers = max 1 (min layers n) in
  (* Layer of each task: contiguous blocks of roughly equal size. *)
  let layer_of = Array.init n (fun i -> i * layers / n) in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let li = layer_of.(i) and lj = layer_of.(j) in
      if lj = li + 1 && Prng.chance rng density then edges := (i, j) :: !edges
      else if lj > li + 1 && Prng.chance rng (density /. 4.0) then
        edges := (i, j) :: !edges
    done
  done;
  (n, !edges)

let chain_edges n = (n, List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let fork_join_edges n width =
  if n < 3 then chain_edges n
  else
    let width = max 1 (min width (n - 2)) in
    let inner = n - 2 in
    (* chains of inner tasks distributed over [width] branches *)
    let edges = ref [] in
    let branch_of = Array.init inner (fun k -> k mod width) in
    let last_of_branch = Array.make width (-1) in
    for k = 0 to inner - 1 do
      let v = k + 1 in
      let b = branch_of.(k) in
      if last_of_branch.(b) = -1 then edges := (0, v) :: !edges
      else edges := (last_of_branch.(b), v) :: !edges;
      last_of_branch.(b) <- v
    done;
    Array.iter
      (fun last -> if last <> -1 then edges := (last, n - 1) :: !edges)
      last_of_branch;
    (n, !edges)

let out_tree_edges rng n =
  (n, List.init (max 0 (n - 1)) (fun k -> (Prng.int rng (k + 1), k + 1)))

(* Converging tree: every non-final task has exactly one successor chosen
   among the later tasks, so all chains end at task [n - 1]. *)
let in_tree_edges rng n =
  (n, List.init (max 0 (n - 1)) (fun i -> (i, Prng.range rng (i + 1) (n - 1))))

let series_parallel_edges rng n =
  (* Recursive SP construction over id ranges [lo, hi]; returns edges and
     the (entry, exit) pair.  Every range of size >= 2 is either a series
     split or a parallel split with fresh entry/exit. *)
  let edges = ref [] in
  let rec build lo hi =
    let size = hi - lo + 1 in
    if size = 1 then (lo, lo)
    else if size = 2 then begin
      edges := (lo, hi) :: !edges;
      (lo, hi)
    end
    else if Prng.bool rng then begin
      (* series: [lo, mid] then [mid+1, hi] *)
      let mid = lo + 1 + Prng.int rng (size - 2) in
      let e1, x1 = build lo mid in
      let e2, x2 = build (mid + 1) hi in
      edges := (x1, e2) :: !edges;
      (e1, x2)
    end
    else begin
      (* parallel: entry lo, exit hi, branches in between *)
      let inner_lo = lo + 1 and inner_hi = hi - 1 in
      if inner_hi < inner_lo then begin
        edges := (lo, hi) :: !edges;
        (lo, hi)
      end
      else begin
        let cut =
          if inner_hi = inner_lo then inner_lo
          else inner_lo + Prng.int rng (inner_hi - inner_lo)
        in
        let branches =
          if cut = inner_hi then [ (inner_lo, inner_hi) ]
          else [ (inner_lo, cut); (cut + 1, inner_hi) ]
        in
        List.iter
          (fun (blo, bhi) ->
            let e, x = build blo bhi in
            edges := (lo, e) :: (x, hi) :: !edges)
          branches;
        (lo, hi)
      end
    end
  in
  if n = 0 then (0, [])
  else begin
    let _ = build 0 (n - 1) in
    (n, List.sort_uniq compare !edges)
  end

(* Gaussian elimination on a k x k matrix: step s has a pivot task and
   (k - 1 - s) update tasks; the pivot feeds every update of its step, and
   each update feeds the next step's pivot and its own column's update. *)
let gauss_edges size =
  let k = max 2 size in
  let id = Hashtbl.create 16 in
  let n = ref 0 in
  let node key =
    match Hashtbl.find_opt id key with
    | Some v -> v
    | None ->
        let v = !n in
        incr n;
        Hashtbl.add id key v;
        v
  in
  let edges = ref [] in
  for s = 0 to k - 2 do
    let pivot = node (`Pivot s) in
    for c = s + 1 to k - 1 do
      let upd = node (`Update (s, c)) in
      edges := (pivot, upd) :: !edges;
      if s > 0 then edges := (node (`Update (s - 1, c)), upd) :: !edges
    done;
    if s > 0 then edges := (node (`Update (s - 1, s)), pivot) :: !edges
  done;
  (!n, List.sort_uniq compare !edges)

let fft_edges points =
  let p = max 2 points in
  let log2 =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v / 2) in
    go 0 p
  in
  if 1 lsl log2 <> p then invalid_arg "Gen: Fft points must be a power of two";
  (* stage 0 .. log2: p tasks each; butterfly edges between stages *)
  let n = p * (log2 + 1) in
  let id stage k = (stage * p) + k in
  let edges = ref [] in
  for stage = 0 to log2 - 1 do
    let span = 1 lsl (log2 - 1 - stage) in
    for k = 0 to p - 1 do
      let partner = k lxor span in
      edges := (id stage k, id (stage + 1) k) :: !edges;
      edges := (id stage k, id (stage + 1) partner) :: !edges
    done
  done;
  (n, List.sort_uniq compare !edges)

let stencil_edges rows cols =
  let rows = max 1 rows and cols = max 1 cols in
  let id i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if i + 1 < rows then edges := (id i j, id (i + 1) j) :: !edges;
      if j + 1 < cols then edges := (id i j, id i (j + 1)) :: !edges
    done
  done;
  (rows * cols, !edges)

let structure rng config =
  match config.shape with
  | Layered { layers; density } -> layered_edges rng config.n_tasks layers density
  | Series_parallel -> series_parallel_edges rng config.n_tasks
  | Fork_join { width } -> fork_join_edges config.n_tasks width
  | Out_tree -> out_tree_edges rng config.n_tasks
  | In_tree -> in_tree_edges rng config.n_tasks
  | Gauss { size } -> gauss_edges size
  | Fft { points } -> fft_edges points
  | Stencil { rows; cols } -> stencil_edges rows cols
  | Chain -> chain_edges config.n_tasks
  | Independent -> (config.n_tasks, [])

let generate config =
  let rng = Prng.create config.seed in
  let n, bare_edges = structure rng config in
  let lo, hi = config.compute_range in
  if lo < 0 || hi < lo then invalid_arg "Gen.generate: bad compute range";
  let computes = Array.init n (fun _ -> Prng.range rng lo hi) in
  let mean_compute = float_of_int (lo + hi) /. 2.0 in
  let max_msg = max 1 (int_of_float (2.0 *. config.ccr *. mean_compute)) in
  let edges =
    List.map
      (fun (src, dst) ->
        let m = if config.ccr <= 0.0 then 0 else Prng.range rng 1 max_msg in
        (src, dst, m))
      bare_edges
  in
  let procs = Array.init n (fun _ -> Prng.weighted rng config.proc_types) in
  let resources =
    Array.init n (fun _ ->
        List.filter_map
          (fun (r, p) -> if Prng.chance rng p then Some r else None)
          config.resource_types)
  in
  let preemptive =
    Array.init n (fun _ -> Prng.chance rng config.preemptive_fraction)
  in
  (* Communication-aware critical path drives deadlines and releases. *)
  let graph = Dag.create ~n ~edges in
  let cp =
    max 1
      (Array.fold_left max 0
         (Dag.longest_path_with_edges graph ~vertex_weight:(fun i ->
              computes.(i))))
  in
  let releases =
    Array.init n (fun i ->
        if Dag.pred_ids graph i = [] && config.release_spread > 0.0 then
          Prng.int rng
            (max 1 (int_of_float (config.release_spread *. float_of_int cp)))
        else 0)
  in
  let deadline =
    max
      (int_of_float (ceil (config.laxity *. float_of_int cp)))
      (Array.fold_left max 1
         (Array.init n (fun i -> releases.(i) + computes.(i))))
  in
  (* Slack for releases: a released source still needs room downstream; the
     global deadline above already covers release + compute per task, and
     path feasibility is ensured by adding the largest release. *)
  let deadline =
    deadline + Array.fold_left max 0 releases
  in
  let tasks =
    List.init n (fun i ->
        Rtlb.Task.make ~id:i ~compute:computes.(i) ~release:releases.(i)
          ~deadline ~proc:procs.(i) ~resources:resources.(i)
          ~preemptive:preemptive.(i) ())
  in
  Rtlb.App.make ~tasks ~edges

(* ------------------------------------------------------------------ *)
(* Frame-structured layered DAGs at 10^5..10^6 tasks.                  *)
(*                                                                     *)
(* [generate]'s layered shape samples every task pair (O(n^2)), and a  *)
(* single global deadline makes the whole instance one partition block *)
(* whose interval scan is quadratic in n.  Large-scale benchmarking    *)
(* needs both fixed: this generator emits [frames] independent layered *)
(* DAGs (edges only between consecutive layers, [degree] predecessors  *)
(* per task, so O(n * degree) construction) and staggers them in time, *)
(* frame f releasing its sources at f*T with deadline (f+1)*T, where T *)
(* is the laxity-scaled maximum frame critical path.  Windows are      *)
(* feasible by construction (T >= the communication-aware critical     *)
(* path bounds every task's dist + codist - C), and the Section-5      *)
(* partition recovers roughly one block per frame, which is what lets  *)
(* the scan scale and the domain pool spread blocks across workers.    *)
(* ------------------------------------------------------------------ *)

let layered_frames ?(seed = 42) ?(frames = 10) ?(tasks_per_frame = 100)
    ?(layers = 10) ?(degree = 3) ?(compute_range = (1, 4))
    ?(msg_range = (0, 2)) ?(laxity = 1.5) ?(resource_every = 4) () =
  if frames < 1 || tasks_per_frame < 1 then
    invalid_arg "Gen.layered_frames: empty shape";
  let layers = max 1 (min layers tasks_per_frame) in
  let degree = max 1 degree in
  let clo, chi = compute_range in
  if clo < 0 || chi < clo then
    invalid_arg "Gen.layered_frames: bad compute range";
  let mlo, mhi = msg_range in
  if mlo < 0 || mhi < mlo then invalid_arg "Gen.layered_frames: bad msg range";
  let rng = Prng.create seed in
  let k = tasks_per_frame in
  let n = frames * k in
  let computes = Array.init n (fun _ -> Prng.range rng clo chi) in
  (* Layer of a within-frame index: contiguous blocks, as [layered_edges]. *)
  let layer_of = Array.init k (fun v -> v * layers / k) in
  let layer_start = Array.make (layers + 1) k in
  for v = k - 1 downto 0 do
    layer_start.(layer_of.(v)) <- v
  done;
  for l = layers - 1 downto 0 do
    if layer_start.(l) > layer_start.(l + 1) then
      layer_start.(l) <- layer_start.(l + 1)
  done;
  let edges = ref [] in
  (* Longest release-to-finish path within the frame, messages included;
     drives the frame period. *)
  let dist = Array.make n 0 in
  let cp = ref 0 in
  for f = 0 to frames - 1 do
    let base = f * k in
    for v = 0 to k - 1 do
      let id = base + v in
      let l = layer_of.(v) in
      if l > 0 then begin
        let plo = layer_start.(l - 1) and phi = layer_start.(l) - 1 in
        let d = 1 + Prng.int rng degree in
        let picked = ref [] in
        for _ = 1 to d do
          let u = base + Prng.range rng plo phi in
          (* duplicate picks collapse to one edge *)
          if not (List.mem u !picked) then begin
            picked := u :: !picked;
            let m = if mhi = 0 then 0 else Prng.range rng mlo mhi in
            edges := (u, id, m) :: !edges;
            if dist.(u) + m > dist.(id) then dist.(id) <- dist.(u) + m
          end
        done
      end;
      dist.(id) <- dist.(id) + computes.(id);
      if dist.(id) > !cp then cp := dist.(id)
    done
  done;
  let period = max 1 (int_of_float (ceil (laxity *. float_of_int !cp))) in
  let resource_every = max 0 resource_every in
  let tasks =
    List.init n (fun id ->
        let f = id / k in
        let v = id mod k in
        let release = if layer_of.(v) = 0 then f * period else 0 in
        let resources =
          if resource_every > 0 && id mod resource_every = 0 then [ "R" ]
          else []
        in
        Rtlb.Task.make ~id ~compute:computes.(id) ~release
          ~deadline:((f + 1) * period) ~proc:"P" ~resources ())
  in
  Rtlb.App.make ~tasks ~edges:!edges

let frame_system ?(proc_cost = 5) ?(resource_cost = 3) () =
  Rtlb.System.shared ~costs:[ ("P", proc_cost); ("R", resource_cost) ]

let shared_system config =
  let costs =
    List.map (fun (p, _) -> (p, 5)) config.proc_types
    @ List.map (fun (r, _) -> (r, 3)) config.resource_types
  in
  Rtlb.System.shared ~costs

let dedicated_system config =
  let all_resources = List.map (fun (r, _) -> (r, 1)) config.resource_types in
  let nodes =
    List.concat_map
      (fun (p, _) ->
        let full =
          Rtlb.System.node_type ~name:(p ^ "-full") ~proc:p
            ~provides:all_resources ~cost:10 ()
        in
        let bare = Rtlb.System.node_type ~name:(p ^ "-bare") ~proc:p ~cost:6 () in
        if all_resources = [] then [ bare ] else [ full; bare ])
      config.proc_types
  in
  Rtlb.System.dedicated nodes
