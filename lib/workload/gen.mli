(** Synthetic real-time applications for experiments and property tests.

    The paper evaluates on a single hand-built example; the benchmark
    harness instead sweeps these generators over the constraint space the
    paper's analysis claims to handle: precedence shapes, communication
    intensity (CCR), deadline tightness (laxity), heterogeneous processor
    types, resource density, and preemptability. *)

type shape =
  | Layered of { layers : int; density : float }
      (** Random layered DAG: edges between consecutive (and occasionally
          skipping) layers with the given probability. *)
  | Series_parallel
      (** Recursive series/parallel composition — the classic structured
          task-graph family. *)
  | Fork_join of { width : int }
      (** A source fanning out to [width] chains joining in a sink. *)
  | Out_tree  (** Random tree rooted at task 0 (diverging). *)
  | In_tree  (** Random converging tree. *)
  | Gauss of { size : int }
      (** Gaussian-elimination dependency kernel on a [size x size]
          matrix (pivot task then column updates per step). *)
  | Fft of { points : int }
      (** Butterfly graph of a [points]-point FFT ([points] must be a
          power of two). *)
  | Stencil of { rows : int; cols : int }
      (** 2-D wavefront: task [(i,j)] feeds [(i+1,j)] and [(i,j+1)] — the
          classic dynamic-programming / systolic dependency. *)
  | Chain
  | Independent

type config = {
  seed : int;
  n_tasks : int;  (** Ignored by [Gauss]/[Fft], which have intrinsic sizes. *)
  shape : shape;
  compute_range : int * int;
  ccr : float;
      (** Communication-to-computation ratio: mean message size is
          [ccr * mean compute]. *)
  laxity : float;
      (** Global deadline = [ceil(laxity * communication-aware critical
          path)]; [1.0] is maximally tight. *)
  proc_types : (string * float) list;  (** Types with selection weights. *)
  resource_types : (string * float) list;
      (** Each resource is required by a task with the given
          probability. *)
  preemptive_fraction : float;
  release_spread : float;
      (** Source tasks get a release uniform in [\[0, spread * critical
          path\]]. *)
}

val default : config
(** 20 tasks, layered 4x, computes 1..10, ccr 0.5, laxity 1.5, two
    processor types, one resource at density 0.3, non-preemptive,
    releases 0. *)

val generate : config -> Rtlb.App.t
(** Deterministic in [config] (including the seed). *)

val shared_system : config -> Rtlb.System.t
(** A shared model pricing processors at 5 and resources at 3. *)

val dedicated_system : config -> Rtlb.System.t
(** A dedicated catalogue with, per processor type, a full node (all
    resources, cost 10) and a bare node (cost 6) — every generated task is
    hostable. *)

val shape_name : shape -> string

val layered_frames :
  ?seed:int ->
  ?frames:int ->
  ?tasks_per_frame:int ->
  ?layers:int ->
  ?degree:int ->
  ?compute_range:int * int ->
  ?msg_range:int * int ->
  ?laxity:float ->
  ?resource_every:int ->
  unit ->
  Rtlb.App.t
(** Frame-structured layered DAG scaled for 10^5–10^6-task benchmarks.
    [frames] independent layered DAGs of [tasks_per_frame] tasks each
    ([layers] contiguous layers, every non-source task drawing up to
    [degree] predecessors from the previous layer — O(n·degree)
    construction), staggered in time: frame [f] releases its sources at
    [f·T] with deadline [(f+1)·T] where [T = max 1 (ceil (laxity ·
    critical path))].  Windows are feasible by construction and the
    Section-5 partition recovers roughly one block per frame, so the
    interval scan stays near-linear in the task count.  All tasks run on
    processor ["P"]; every [resource_every]-th task also needs resource
    ["R"] ([0] disables resources).  Deterministic in [seed]. *)

val frame_system : ?proc_cost:int -> ?resource_cost:int -> unit -> Rtlb.System.t
(** The shared system matching {!layered_frames}: processor ["P"] and
    resource ["R"] with the given unit costs. *)
