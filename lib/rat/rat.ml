type t = { n : int; d : int }

exception Overflow
exception Division_by_zero

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let gcd a b = gcd (Stdlib.abs a) (Stdlib.abs b)

(* Overflow-checked primitive operations on [int].  [min_int] is rejected
   outright so that negation and [abs] are always safe. *)

let check x = if x = Stdlib.min_int then raise Overflow else x

let add_int a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then
    raise Overflow
  else check s

let mul_int a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise Overflow else check p

let make n d =
  if d = 0 then raise Division_by_zero
  else
    let n, d = if d < 0 then (check (-n), check (-d)) else (n, d) in
    let g = gcd n d in
    if g = 0 then { n = 0; d = 1 } else { n = n / g; d = d / g }

let of_int n = { n; d = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.n
let den t = t.d

(* [a/b + c/d] computed through the gcd of the denominators to delay
   overflow as long as possible. *)
let add a b =
  let g = gcd a.d b.d in
  let bd = b.d / g and ad = a.d / g in
  let n = add_int (mul_int a.n bd) (mul_int b.n ad) in
  let d = mul_int a.d bd in
  make n d

let neg a = { a with n = check (-a.n) }
let sub a b = add a (neg b)

let mul a b =
  (* Cross-reduce before multiplying to keep intermediates small. *)
  let g1 = gcd a.n b.d and g2 = gcd b.n a.d in
  let g1 = if g1 = 0 then 1 else g1 and g2 = if g2 = 0 then 1 else g2 in
  let n = mul_int (a.n / g1) (b.n / g2) in
  let d = mul_int (a.d / g2) (b.d / g1) in
  make n d

let inv a = if a.n = 0 then raise Division_by_zero else make a.d a.n
let div a b = mul a (inv b)
let abs a = if a.n < 0 then neg a else a
let sign a = compare a.n 0

let compare a b =
  (* Signs first, then cross-multiply within the positive quadrant. *)
  let sa = sign a and sb = sign b in
  if sa <> sb then Stdlib.compare sa sb
  else
    let l = mul_int a.n b.d and r = mul_int b.n a.d in
    Stdlib.compare l r

let equal a b = a.n = b.n && a.d = b.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer t = t.d = 1

let floor t =
  if t.d = 1 then t.n
  else if t.n >= 0 then t.n / t.d
  else Stdlib.(-((-t.n + t.d - 1) / t.d))

let ceil t =
  if t.d = 1 then t.n
  else if t.n >= 0 then Stdlib.((t.n + t.d - 1) / t.d)
  else Stdlib.(-(-t.n / t.d))

let to_float t = float_of_int t.n /. float_of_int t.d

(* Best rational approximation by continued-fraction convergents.  The
   convergent sequence is cut off once it reproduces the float to within
   a relative 1e-9 or the denominator cap is hit, so [approx 0.1] is
   [1/10] — the rational the user meant — rather than the exact dyadic
   expansion 3602879701896397/2^55 of the nearest double, whose ceil/floor
   behaviour is precisely the bug this function exists to avoid. *)
let approx ?(max_den = 1_000_000) x0 =
  if not (Float.is_finite x0) then invalid_arg "Rat.approx: not finite";
  if max_den < 1 then invalid_arg "Rat.approx: max_den < 1";
  if Float.abs x0 >= 1e15 then raise Overflow;
  let negative = x0 < 0.0 in
  let target = Float.abs x0 in
  let tol = 1e-9 *. Float.max 1.0 target in
  let rec go h0 k0 h1 k1 x =
    (* [h1/k1] is the current convergent, [h0/k0] the previous one. *)
    if Float.abs (target -. (float_of_int h1 /. float_of_int k1)) <= tol then
      (h1, k1)
    else
      let frac = x -. Float.floor x in
      if frac <= 1e-12 then (h1, k1)
      else
        let x' = 1.0 /. frac in
        let a = int_of_float (Float.floor x') in
        let h2 = Stdlib.((a * h1) + h0) and k2 = Stdlib.((a * k1) + k0) in
        if a <= 0 || k2 > max_den || k2 < k1 || h2 < h1 then (h1, k1)
        else go h1 k1 h2 k2 x'
  in
  let h, k = go 1 0 (int_of_float (Float.floor target)) 1 target in
  make (if negative then Stdlib.( ~- ) h else h) k

let to_int_exn t =
  if t.d = 1 then t.n else invalid_arg "Rat.to_int_exn: not an integer"

let pp ppf t =
  if t.d = 1 then Format.fprintf ppf "%d" t.n
  else Format.fprintf ppf "%d/%d" t.n t.d

let to_string t = Format.asprintf "%a" pp t
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
