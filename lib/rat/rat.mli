(** Exact rational arithmetic on machine integers.

    Values are kept in normalised form: the denominator is strictly positive
    and the numerator and denominator are coprime.  All operations detect
    [int] overflow and raise {!Overflow} instead of silently wrapping, which
    is sufficient for the small linear programs produced by the
    dedicated-model cost analysis (tens of variables, small coefficients).

    This module is the numeric substrate of the {!Lp} simplex solver and of
    the density comparisons in the lower-bound engine. *)

type t

exception Overflow
(** Raised when an intermediate product or sum does not fit in an [int]. *)

exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val num : t -> int
(** Numerator of the normalised form. *)

val den : t -> int
(** Denominator of the normalised form; always [> 0]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val is_integer : t -> bool
val floor : t -> int
val ceil : t -> int
val to_float : t -> float

val approx : ?max_den:int -> float -> t
(** [approx x] is the simplest rational reproducing the float [x] to a
    relative [1e-9], found by walking continued-fraction convergents
    ([max_den], default one million, caps the denominator).  [approx 0.1]
    is [1/10] and [approx 1.37] is [137/100]: this recovers the rational
    the literal {e meant}, where converting the nearest double exactly
    would drag in the dyadic representation error — the root cause of
    ceil/floor off-by-ones such as [ceil (0.1 *. 30.) = 4].  Sensitivity
    scaling goes through this.
    @raise Invalid_argument on NaN or infinities.
    @raise Overflow when [abs x >= 1e15]. *)

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
