type witness = { w_t1 : int; w_t2 : int; w_theta : int }

type bound = {
  resource : string;
  lb : int;
  witness : witness option;
  partition : Partition.t;
}

let theta ?resource ~est ~lct app tasks ~t1 ~t2 =
  List.fold_left
    (fun acc i ->
      let weight =
        match resource with
        | None -> 1
        | Some r -> Task.units (App.task app i) r
      in
      acc + (weight * Overlap.of_task ~est ~lct app i ~t1 ~t2))
    0 tasks

(* The Theorem 3/4 overlap of one task, as a function of t2 with t1
   fixed, is a clamped ramp: 0 until the window opens, then slope w up
   to a plateau of w*K.  Summing the per-task breakpoints once therefore
   answers every theta(t1, t2) query for that t1 in O(log n), instead of
   re-walking the task set per interval — the prefix-sum kernel behind
   the candidate-interval scan.

   Derivation from Overlap.psi (K = min(C, alpha(C - (t1 - E))) is the
   min of the constant terms; the two slope-1 terms fold into a single
   ramp started at the later breakpoint):

     non-preemptive: min(tail, t2 - t1)      = alpha(t2 - max(L - C, t1))
     preemptive:     min(tail, split)        = alpha(t2 - (L - C + alpha(t1 - E)))

   so psi(t2) = min(w*K, w * alpha(t2 - M)) for t2 > E, and 0 otherwise
   (the mu gate).  With a feasible window E + C <= L the gate is implied
   by the ramp start; with an infeasible one it can cut the ramp short,
   which the event construction below encodes as a start at E + 1. *)
module Theta_kernel = struct
  type t = {
    thr : int array;  (* ascending event thresholds *)
    slope : int array;  (* cumulative slope once thr.(i) <= t2 *)
    icept : int array;  (* cumulative intercept, same indexing *)
  }

  let make ?resource ~est ~lct app tasks ~t1 =
    let events = ref [] in
    let add thr ds di = events := (thr, ds, di) :: !events in
    List.iter
      (fun i ->
        let task = App.task app i in
        let w =
          match resource with None -> 1 | Some r -> Task.units task r
        in
        let c = task.Task.compute in
        let e = est.(i) and l = lct.(i) in
        if w > 0 && c > 0 && l > t1 then begin
          let k = min c (c - (t1 - e)) in
          if k > 0 then begin
            let m =
              if task.Task.preemptive then l - c + max 0 (t1 - e)
              else max (l - c) t1
            in
            if e >= m + k then
              (* the mu gate opens past the whole ramp: a step to w*K *)
              add (e + 1) 0 (w * k)
            else begin
              let start = max m (e + 1) in
              add start w (-w * m);
              add (m + k) (-w) (w * (m + k))
            end
          end
        end)
      tasks;
    let events =
      List.sort (fun (a, _, _) (b, _, _) -> compare a b) !events
    in
    let n = List.length events in
    let thr = Array.make n 0
    and slope = Array.make n 0
    and icept = Array.make n 0 in
    let rec fill idx s ic = function
      | [] -> idx
      | (t, ds, di) :: rest ->
          let s = s + ds and ic = ic + di in
          if idx > 0 && thr.(idx - 1) = t then begin
            slope.(idx - 1) <- s;
            icept.(idx - 1) <- ic;
            fill idx s ic rest
          end
          else begin
            thr.(idx) <- t;
            slope.(idx) <- s;
            icept.(idx) <- ic;
            fill (idx + 1) s ic rest
          end
    in
    let used = fill 0 0 0 events in
    {
      thr = Array.sub thr 0 used;
      slope = Array.sub slope 0 used;
      icept = Array.sub icept 0 used;
    }

  let eval t ~t2 =
    (* largest index with thr <= t2, by binary search *)
    let n = Array.length t.thr in
    if n = 0 || t2 < t.thr.(0) then 0
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if t.thr.(mid) <= t2 then lo := mid else hi := mid - 1
      done;
      (t.slope.(!lo) * t2) + t.icept.(!lo)
    end
end

type point_policy = [ `Endpoints | `Enriched ]

let candidate_points ?(policy = `Endpoints) ~est ~lct ?compute tasks ~lo ~hi =
  let per_task i =
    match (policy, compute) with
    | `Endpoints, _ -> [ est.(i); lct.(i) ]
    | `Enriched, Some c -> [ est.(i); lct.(i); est.(i) + c.(i); lct.(i) - c.(i) ]
    | `Enriched, None ->
        invalid_arg "Lower_bound.candidate_points: `Enriched needs ~compute"
  in
  let pts =
    List.concat_map per_task tasks |> List.filter (fun p -> p >= lo && p <= hi)
  in
  List.sort_uniq compare (lo :: hi :: pts)

(* ceil(a/b) for a >= 0, b > 0 *)
let ceil_div a b = (a + b - 1) / b

(* Merging two scan results keeps the earlier on ties (strict
   improvement only), exactly like the sequential loops; it is
   associative, so per-t1 results can be folded per block and then per
   resource without changing the winning witness. *)
let merge_scans (lb, wit) (b, w) = if b > lb then (b, w) else (lb, wit)

(* The candidate points of one block, as the scan array. *)
let block_points ?policy ~est ~lct app tasks ~lo ~hi =
  let compute =
    Array.init (App.n_tasks app) (fun i -> (App.task app i).Task.compute)
  in
  Array.of_list (candidate_points ?policy ~est ~lct ~compute tasks ~lo ~hi)

(* The densest interval starting at pts.(a): one prefix-sum kernel for
   the fixed left endpoint, then an O(log n) evaluation per right
   endpoint.  This is the unit of parallel work. *)
let scan_from ?resource ~est ~lct app tasks pts a =
  let n = Array.length pts in
  let t1 = pts.(a) in
  let kernel = Theta_kernel.make ?resource ~est ~lct app tasks ~t1 in
  let best = ref 0 and wit = ref None in
  for b = a + 1 to n - 1 do
    let t2 = pts.(b) in
    let demand = Theta_kernel.eval kernel ~t2 in
    if demand > 0 then begin
      let units = ceil_div demand (t2 - t1) in
      if units > !best then begin
        best := units;
        wit := Some { w_t1 = t1; w_t2 = t2; w_theta = demand }
      end
    end
  done;
  (!best, !wit)

(* Scan every interval generated by the candidate points of one block and
   keep the densest. *)
let scan_block ?policy ?resource ~est ~lct app tasks ~lo ~hi =
  let pts = block_points ?policy ~est ~lct app tasks ~lo ~hi in
  let acc = ref (0, None) in
  for a = 0 to Array.length pts - 2 do
    acc := merge_scans !acc (scan_from ?resource ~est ~lct app tasks pts a)
  done;
  !acc

let for_resource ?policy ~est ~lct app r =
  let tasks = App.tasks_using app r in
  let partition = Partition.compute ~est ~lct tasks in
  let lb, witness =
    List.fold_left2
      (fun (lb, wit) block (lo, hi) ->
        if lo >= hi then (lb, wit)
        else
          let b, w = scan_block ?policy ~resource:r ~est ~lct app block ~lo ~hi in
          if b > lb then (b, w) else (lb, wit))
      (0, None) partition.Partition.blocks partition.Partition.spans
  in
  { resource = r; lb; witness; partition }

let for_resource_unpartitioned ?policy ~est ~lct app r =
  let tasks = App.tasks_using app r in
  match tasks with
  | [] ->
      {
        resource = r;
        lb = 0;
        witness = None;
        partition = { Partition.blocks = []; spans = [] };
      }
  | _ ->
      let lo = List.fold_left (fun acc i -> min acc est.(i)) max_int tasks in
      let hi = List.fold_left (fun acc i -> max acc lct.(i)) min_int tasks in
      let lb, witness =
        if lo >= hi then (0, None)
        else scan_block ?policy ~resource:r ~est ~lct app tasks ~lo ~hi
      in
      {
        resource = r;
        lb;
        witness;
        partition = { Partition.blocks = [ tasks ]; spans = [ (lo, hi) ] };
      }

type completeness = [ `Complete | `Partial of float ]

(* The full scan, flattened to per-t1 granularity: one work item per
   (resource, partition block, left endpoint), so even a single dominant
   block parallelises, and a time budget can cut anywhere between two
   kernel scans.  Work items of one resource are contiguous and in the
   sequential scan order. *)
let scan_plan ?policy ~est ~lct app =
  let pointed =
    List.map
      (fun r ->
        let tasks = App.tasks_using app r in
        let partition = Partition.compute ~est ~lct tasks in
        let blocks =
          List.map2
            (fun block (lo, hi) ->
              if lo >= hi then (block, [||])
              else (block, block_points ?policy ~est ~lct app block ~lo ~hi))
            partition.Partition.blocks partition.Partition.spans
        in
        (r, partition, blocks))
      (App.resource_set app)
  in
  let work =
    List.concat_map
      (fun (r, _, blocks) ->
        List.concat_map
          (fun (block, pts) ->
            List.init
              (max 0 (Array.length pts - 1))
              (fun a -> (r, block, pts, a)))
          blocks)
      pointed
    |> Array.of_list
  in
  (pointed, work)

let all_within ?policy ?pool ?deadline_ns ?tracer ~est ~lct app =
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  let pointed, work =
    Rtlb_obs.Tracer.with_span tr "plan" (fun () ->
        scan_plan ?policy ~est ~lct app)
  in
  (* Counters are write-only telemetry: planned intervals counted here,
     executed evaluations counted inside the work-item body, so the two
     agree exactly when no deadline cut the scan short. *)
  if Rtlb_obs.Tracer.enabled tr then
    Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Candidate_intervals
      (Array.fold_left
         (fun acc (_, _, pts, a) -> acc + (Array.length pts - 1 - a))
         0 work);
  (* Results come back slotted by index and are folded in exactly the
     sequential order — merge_scans is associative and tie-breaks on the
     earlier item, so bounds, witnesses and partitions are bit-identical
     to the sequential path whenever every item ran.  Items abandoned at
     the deadline fold as `no improvement', leaving the best bound found
     so far: still a valid lower bound, every witness still real. *)
  let scanned, _status =
    Rtlb_par.Pool.map_array_partial ?pool ?deadline_ns ~tracer:tr
      (fun (r, block, pts, a) ->
        let scan = scan_from ~resource:r ~est ~lct app block pts a in
        if Rtlb_obs.Tracer.enabled tr then begin
          Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Tasks_scanned
            (List.length block);
          Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Theta_evals
            (Array.length pts - 1 - a)
        end;
        scan)
      work
  in
  let items (_, _, blocks) =
    List.fold_left
      (fun acc (_, pts) -> acc + max 0 (Array.length pts - 1))
      0 blocks
  in
  let next = ref 0 and executed = ref 0 in
  let bounds =
    Rtlb_obs.Tracer.with_span tr "reduce" (fun () ->
        List.map
          (fun ((r, partition, _) as unit) ->
            let count = items unit in
            let acc = ref (0, None) in
            for i = !next to !next + count - 1 do
              match scanned.(i) with
              | Some scan ->
                  incr executed;
                  acc := merge_scans !acc scan
              | None -> ()
            done;
            next := !next + count;
            let lb, witness = !acc in
            { resource = r; lb; witness; partition })
          pointed)
  in
  let total = Array.length work in
  let completeness =
    if !executed = total then `Complete
    else `Partial (float_of_int !executed /. float_of_int total)
  in
  (bounds, completeness)

let all ?policy ?pool ?tracer ~est ~lct app =
  fst (all_within ?policy ?pool ?tracer ~est ~lct app)

let pp_bound ppf b =
  Format.fprintf ppf "LB_%s = %d" b.resource b.lb;
  match b.witness with
  | None -> ()
  | Some w ->
      Format.fprintf ppf "  (Theta(%s, %d, %d) = %d)" b.resource w.w_t1 w.w_t2
        w.w_theta
