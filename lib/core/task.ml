type t = {
  id : int;
  name : string;
  compute : int;
  release : int;
  deadline : int;
  proc : string;
  resources : string list;
  demands : (string * int) list;
  preemptive : bool;
}

let make ?name ~id ?(release = 0) ~compute ~deadline ~proc ?(resources = [])
    ?(preemptive = false) () =
  if id < 0 then invalid_arg "Task.make: negative id";
  if compute < 0 then invalid_arg "Task.make: negative computation time";
  if release < 0 then invalid_arg "Task.make: negative release time";
  if release + compute > deadline then
    invalid_arg
      (Printf.sprintf "Task.make: task %d cannot meet deadline (%d + %d > %d)"
         id release compute deadline);
  if proc = "" then invalid_arg "Task.make: empty processor type";
  let name =
    match name with Some n -> n | None -> Printf.sprintf "T%d" (id + 1)
  in
  let sorted = List.sort String.compare resources in
  let demands =
    List.fold_left
      (fun acc r ->
        match acc with
        | (r', k) :: rest when String.equal r r' -> (r', k + 1) :: rest
        | _ -> (r, 1) :: acc)
      [] sorted
    |> List.rev
  in
  let resources = List.map fst demands in
  if List.mem proc resources then
    invalid_arg "Task.make: processor type listed among resources";
  { id; name; compute; release; deadline; proc; resources; demands; preemptive }

let make ~id ?name ~compute ?release ~deadline ~proc ?resources ?preemptive ()
    =
  make ?name ~id ?release ~compute ~deadline ~proc ?resources ?preemptive ()

let needs t = t.proc :: t.resources

let units t r =
  if String.equal r t.proc then 1
  else match List.assoc_opt r t.demands with Some k -> k | None -> 0
let uses t r = String.equal r t.proc || List.exists (String.equal r) t.resources
let laxity t = t.deadline - t.release - t.compute

let with_preemptive t preemptive = { t with preemptive }

let with_deadline t deadline =
  if t.release + t.compute > deadline then
    invalid_arg "Task.with_deadline: deadline too tight";
  { t with deadline }

let with_release t release =
  if release < 0 then invalid_arg "Task.with_release: negative release time";
  if release + t.compute > t.deadline then
    invalid_arg "Task.with_release: release too late for the deadline";
  { t with release }

let with_compute t compute =
  if compute < 0 then invalid_arg "Task.with_compute: negative computation time";
  if t.release + compute > t.deadline then
    invalid_arg "Task.with_compute: computation does not fit the window";
  { t with compute }

let equal a b =
  a.id = b.id && String.equal a.name b.name && a.compute = b.compute
  && a.release = b.release && a.deadline = b.deadline
  && String.equal a.proc b.proc
  && List.equal String.equal a.resources b.resources
  && a.demands = b.demands
  && Bool.equal a.preemptive b.preemptive

let pp ppf t =
  Format.fprintf ppf "%s[C=%d rel=%d D=%d on %s%s%s]" t.name t.compute
    t.release t.deadline t.proc
    (match t.demands with
    | [] -> ""
    | ds ->
        " +"
        ^ String.concat "+"
            (List.map
               (fun (r, k) -> if k = 1 then r else Printf.sprintf "%dx%s" k r)
               ds))
    (if t.preemptive then " preemptive" else "")
