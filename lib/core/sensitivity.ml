type sample = {
  s_factor : float;
  s_feasible : bool;
  s_bounds : (string * int) list;
  s_shared_cost : int option;
  s_partial : bool;
}

let scale_deadlines app ~factor =
  if Float.is_nan factor || factor <= 0.0 then
    invalid_arg "Sensitivity.scale_deadlines: factor <= 0";
  (* Scale in exact rational arithmetic.  The obvious
     [ceil (factor *. float deadline)] inherits the binary representation
     error of the factor: 0.1 *. 30.0 is 3.0000000000000004, which ceils
     to 4 — a deadline a third looser than asked for.  [Rat.approx]
     recovers the rational the factor literal denotes (1/10), and the
     integer ceil of [num * D / den] is then exact. *)
  let ratio = Rat.approx factor in
  App.map_tasks app ~f:(fun task ->
      let scaled = Rat.ceil (Rat.mul ratio (Rat.of_int task.Task.deadline)) in
      let floor_ = task.Task.release + task.Task.compute in
      Task.with_deadline task (max scaled floor_))

let sample_of factor analysis =
  {
    s_factor = factor;
    s_feasible = not (Analysis.is_infeasible analysis);
    s_bounds =
      List.map
        (fun (b : Lower_bound.bound) ->
          (b.Lower_bound.resource, b.Lower_bound.lb))
        analysis.Analysis.bounds;
    s_shared_cost =
      (match analysis.Analysis.cost with
      | Cost.Shared_cost { s_cost; _ } -> Some s_cost
      | Cost.Dedicated_cost d -> Some d.Cost.d_cost
      | Cost.No_feasible_system _ -> None);
    s_partial = Analysis.is_partial analysis;
  }

let deadline_sweep_cold ?pool ?deadline_ns ?tracer system app ~factors =
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  Rtlb_par.Pool.map_list ?pool
    (fun factor ->
      let scaled = scale_deadlines app ~factor in
      (* Analysis.run is not handed the pool here: a factor's analysis
         already runs inside a pool task, where a nested submit would
         degrade to inline execution anyway.  The deadline is global to
         the sweep, so once the budget is gone the remaining factors
         return immediately with trivial (but valid) partial bounds. *)
      let analyse () = Analysis.run ?deadline_ns ?tracer system scaled in
      let analysis =
        if Rtlb_obs.Tracer.enabled tr then
          Rtlb_obs.Tracer.with_span tr
            (Printf.sprintf "factor %g" factor)
            analyse
        else analyse ()
      in
      sample_of factor analysis)
    factors

let deadline_sweep ?pool ?deadline_ns ?tracer ?on_sample ?resume system app
    ~factors =
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  (* The factors of a sweep differ from the base application in deadlines
     only, so each one is an incremental query: the EST arrays and merge
     traces are computed once, the LCT pass re-runs over the dirty
     ancestor cones, and blocks whose windows a factor leaves unchanged
     (common near 1.0, where the ceil quantises small perturbations away)
     are served from the cache.  The handle is built without the tracer —
     the observable sweep trace stays one ["factor F"] span per factor,
     each containing exactly one ["analyze"], as in the cold sweep; the
     pool now parallelises within each query instead of across factors.
     Samples are bit-identical to {!deadline_sweep_cold} whenever no
     budget expires (qcheck-asserted).

     The handle is lazy so a fully-resumed sweep (every factor served by
     [?resume]) skips the base analysis entirely.  Resumed samples come
     back verbatim — a resumed sweep is bit-identical to an
     uninterrupted one because each factor's sample is a pure function
     of the instance and the factor, both pinned by the checkpoint's
     fingerprint and hex-float keys.  Partial samples are never resumed:
     a budget-cut sample is valid but below the exhaustive value, so the
     retry recomputes it. *)
  let handle = lazy (Incremental.create ?pool ?deadline_ns system app) in
  List.map
    (fun factor ->
      match Option.bind resume (fun r -> r factor) with
      | Some sample when not sample.s_partial ->
          Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Resumes 1;
          sample
      | _ ->
          let scaled = scale_deadlines app ~factor in
          let analyse () =
            Incremental.query ?pool ?deadline_ns ?tracer (Lazy.force handle)
              scaled
          in
          let analysis =
            if Rtlb_obs.Tracer.enabled tr then
              Rtlb_obs.Tracer.with_span tr
                (Printf.sprintf "factor %g" factor)
                analyse
            else analyse ()
          in
          let sample = sample_of factor analysis in
          Option.iter (fun f -> f sample) on_sample;
          sample)
    factors

let render samples =
  let buf = Buffer.create 256 in
  let resources =
    match samples with [] -> [] | s :: _ -> List.map fst s.s_bounds
  in
  Buffer.add_string buf "factor   feasible  cost";
  List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "  LB_%s" r)) resources;
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%6.2f   %-8b  %s" s.s_factor s.s_feasible
           (match s.s_shared_cost with
           | Some c -> Printf.sprintf "%4d" c
           | None -> "   -"));
      List.iter
        (fun (r, lb) ->
          Buffer.add_string buf
            (Printf.sprintf "  %*d" (String.length r + 3) lb))
        s.s_bounds;
      if s.s_partial then Buffer.add_string buf "  (partial)";
      Buffer.add_char buf '\n')
    samples;
  Buffer.contents buf
