(* Structure-of-arrays analysis engine.

   [pack] compiles an instance once into contiguous [Bigarray] int
   arrays — per-task scalars, CSR adjacency with message weights, a
   per-resource member table — and the sweeps below iterate over those
   arrays instead of chasing per-task records.  The merge search, the
   Section-5 partition and the Theta prefix-sum interval scan are
   re-derived on the packed layout with the exact integer arithmetic of
   the record path ([Est_lct] / [Partition] / [Lower_bound]), so
   windows, bounds, witnesses and costs are bit-identical; only the
   merge {e traces} (an explanation artifact) are not reconstructed.

   The interval scan adds candidate-interval dominance pruning: for a
   fixed left endpoint t1 the kernel total is bounded by

     theta_max(t1) = sum over tasks with L > t1 of w * max(0, C - max(0, t1 - E))

   and ceil(theta_max / (t2 - t1)) is non-increasing in t2, so once it
   drops strictly below the block's incumbent bound no interval starting
   at t1 can improve on it and the right-endpoint loop stops; a whole
   left endpoint is skipped when even its first gap cannot beat the
   incumbent.  Pruning is strict-inequality only and the incumbent is a
   per-block monotone maximum seeded from real interval values, so every
   interval achieving the block maximum is always evaluated and the
   fold ([Lower_bound.merge_scans], earlier-wins on ties) returns the
   same bound and the same earliest witness as the exhaustive scan, on
   the sequential and the pool path alike. *)

open Bigarray

type ia = (int, int_elt, c_layout) Array1.t

let ia n : ia = Array1.create int c_layout n

type t = {
  app : App.t;
  system : System.t;
  n : int;
  (* per-task scalars *)
  release : ia;
  deadline : ia;
  compute : ia;
  preempt : ia;  (* 0/1 *)
  proc : ia;  (* index into [procs] *)
  host : ia;  (* dedicated: bitmask over node-type indices; shared: 0 *)
  (* CSR adjacency, message weight parallel to the target *)
  succ_off : ia;
  succ_tgt : ia;
  succ_msg : ia;
  pred_off : ia;
  pred_tgt : ia;
  pred_msg : ia;
  topo : ia;
  (* resource universe, RES order *)
  res_names : string array;
  res_off : ia;
  res_task : ia;  (* member ids, ascending *)
  res_units : ia;
  (* decode tables for [unpack] *)
  names : string array;
  procs : string array;
  nts : System.node_type array;  (* [] for shared systems *)
  (* window outputs, computed in place *)
  est : ia;
  lct : ia;
}

let n_tasks t = t.n
let system t = t.system
let app t = t.app

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)
(* ------------------------------------------------------------------ *)

let max_node_types = Sys.int_size - 2

let pack system app =
  let n = App.n_tasks app in
  let g = App.graph app in
  let nts = Array.of_list (System.node_types system) in
  if Array.length nts > max_node_types then
    invalid_arg
      (Printf.sprintf "Soa.pack: more than %d node types" max_node_types);
  let release = ia n
  and deadline = ia n
  and compute = ia n
  and preempt = ia n
  and proc = ia n
  and host = ia n in
  let proc_code = Hashtbl.create 16 in
  let procs = ref [] and n_procs = ref 0 in
  let names = Array.make n "" in
  for i = 0 to n - 1 do
    let task = App.task app i in
    names.(i) <- task.Task.name;
    release.{i} <- task.Task.release;
    deadline.{i} <- task.Task.deadline;
    compute.{i} <- task.Task.compute;
    preempt.{i} <- (if task.Task.preemptive then 1 else 0);
    (proc.{i} <-
       (match Hashtbl.find_opt proc_code task.Task.proc with
       | Some c -> c
       | None ->
           let c = !n_procs in
           incr n_procs;
           Hashtbl.add proc_code task.Task.proc c;
           procs := task.Task.proc :: !procs;
           c));
    let mask = ref 0 in
    Array.iteri
      (fun k nt -> if System.node_can_host nt task then mask := !mask lor (1 lsl k))
      nts;
    host.{i} <- !mask
  done;
  let procs = Array.of_list (List.rev !procs) in
  (* CSR adjacency from the Dag lists *)
  let succ_off = ia (n + 1) and pred_off = ia (n + 1) in
  let ns = ref 0 in
  for i = 0 to n - 1 do
    succ_off.{i} <- !ns;
    ns := !ns + List.length (Dag.succs g i)
  done;
  succ_off.{n} <- !ns;
  let succ_tgt = ia !ns and succ_msg = ia !ns in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    List.iter
      (fun (dst, m) ->
        succ_tgt.{!pos} <- dst;
        succ_msg.{!pos} <- m;
        incr pos)
      (Dag.succs g i)
  done;
  let np = ref 0 in
  for i = 0 to n - 1 do
    pred_off.{i} <- !np;
    np := !np + List.length (Dag.preds g i)
  done;
  pred_off.{n} <- !np;
  let pred_tgt = ia !np and pred_msg = ia !np in
  pos := 0;
  for i = 0 to n - 1 do
    List.iter
      (fun (src, m) ->
        pred_tgt.{!pos} <- src;
        pred_msg.{!pos} <- m;
        incr pos)
      (Dag.preds g i)
  done;
  let topo = ia n in
  Array.iteri (fun k v -> topo.{k} <- v) (Dag.topological_order g);
  (* per-resource member table, RES order *)
  let res_names = Array.of_list (App.resource_set app) in
  let nr = Array.length res_names in
  let members = Array.map (fun r -> App.tasks_using app r) res_names in
  let res_off = ia (nr + 1) in
  let total = ref 0 in
  Array.iteri
    (fun k m ->
      res_off.{k} <- !total;
      total := !total + List.length m)
    members;
  res_off.{nr} <- !total;
  let res_task = ia !total and res_units = ia !total in
  pos := 0;
  Array.iteri
    (fun k m ->
      let r = res_names.(k) in
      List.iter
        (fun i ->
          res_task.{!pos} <- i;
          res_units.{!pos} <- Task.units (App.task app i) r;
          incr pos)
        m)
    members;
  {
    app;
    system;
    n;
    release;
    deadline;
    compute;
    preempt;
    proc;
    host;
    succ_off;
    succ_tgt;
    succ_msg;
    pred_off;
    pred_tgt;
    pred_msg;
    topo;
    res_names;
    res_off;
    res_task;
    res_units;
    names;
    procs;
    nts;
    est = ia n;
    lct = ia n;
  }

(* Rebuild an [App.t] from the packed arrays alone — [t.app] is only
   consulted for nothing here, which is what makes the round-trip test
   meaningful. *)
let unpack t =
  let n = t.n in
  (* invert the per-resource member table into per-task demand lists *)
  let demands = Array.make n [] in
  for k = Array.length t.res_names - 1 downto 0 do
    let r = t.res_names.(k) in
    for p = t.res_off.{k} to t.res_off.{k + 1} - 1 do
      let i = t.res_task.{p} in
      if not (String.equal r t.procs.(t.proc.{i})) then
        demands.(i) <- (r, t.res_units.{p}) :: demands.(i)
    done
  done;
  let tasks =
    List.init n (fun i ->
        let resources =
          List.concat_map (fun (r, u) -> List.init u (fun _ -> r)) demands.(i)
        in
        Task.make ~id:i ~name:t.names.(i) ~compute:t.compute.{i}
          ~release:t.release.{i} ~deadline:t.deadline.{i}
          ~proc:t.procs.(t.proc.{i}) ~resources
          ~preemptive:(t.preempt.{i} = 1) ())
  in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for p = t.succ_off.{i + 1} - 1 downto t.succ_off.{i} do
      edges := (i, t.succ_tgt.{p}, t.succ_msg.{p}) :: !edges
    done
  done;
  App.make ~tasks ~edges:!edges

(* ------------------------------------------------------------------ *)
(* In-place edits (the incremental engine's write path)                *)
(* ------------------------------------------------------------------ *)

let set_release t i v = t.release.{i} <- v
let set_deadline t i v = t.deadline.{i} <- v
let set_compute t i v = t.compute.{i} <- v

let copy_base t =
  let b = { t with release = ia t.n; deadline = ia t.n; compute = ia t.n;
            est = ia t.n; lct = ia t.n } in
  Array1.blit t.release b.release;
  Array1.blit t.deadline b.deadline;
  Array1.blit t.compute b.compute;
  Array1.blit t.est b.est;
  Array1.blit t.lct b.lct;
  b

let restore_from t ~base =
  Array1.blit base.release t.release;
  Array1.blit base.deadline t.deadline;
  Array1.blit base.compute t.compute;
  Array1.blit base.est t.est;
  Array1.blit base.lct t.lct

(* ------------------------------------------------------------------ *)
(* EST / LCT merge-search sweep over the packed arrays                  *)
(*                                                                     *)
(* Exactly [Est_lct.scan_merges] in array clothing: value every prefix *)
(* of every merge pool in msg-bound order and keep the best against    *)
(* the no-merge bound.  See est_lct.ml for why prefixes are exact.     *)
(* ------------------------------------------------------------------ *)

type sweep_ws = {
  mutable cap : int;
  mutable cm : int array;  (* pool candidate msg bounds *)
  mutable cid : int array;  (* pool candidate ids *)
  mutable suf : int array;  (* suffix combine of cm *)
  mutable sv : int array;  (* prefix jobs sorted by window value *)
  mutable sc : int array;  (* their computes *)
}

let sweep_ws () =
  { cap = 16; cm = Array.make 16 0; cid = Array.make 16 0;
    suf = Array.make 17 0; sv = Array.make 16 0; sc = Array.make 16 0 }

let ensure ws cap =
  if cap > ws.cap then begin
    let cap = max cap (2 * ws.cap) in
    ws.cap <- cap;
    ws.cm <- Array.make cap 0;
    ws.cid <- Array.make cap 0;
    ws.suf <- Array.make (cap + 1) 0;
    ws.sv <- Array.make cap 0;
    ws.sc <- Array.make cap 0
  end

(* One direction of the sweep for one task.  [is_est] selects the EST
   recursion (preds, max-combine, minimise) or the LCT mirror (succs,
   min-combine, maximise). *)
let sweep_task t ws ~is_est i =
  let off = if is_est then t.pred_off else t.succ_off in
  let tgt = if is_est then t.pred_tgt else t.succ_tgt in
  let msg = if is_est then t.pred_msg else t.succ_msg in
  let d0 = off.{i} and d1 = off.{i + 1} in
  let boundary = if is_est then t.release.{i} else t.deadline.{i} in
  if d1 = d0 then boundary
  else begin
    let identity = if is_est then min_int else max_int in
    let combine a b = if is_est then max a b else min a b in
    (* msg bound of neighbour at CSR position p *)
    let msg_of p =
      let j = tgt.{p} in
      if is_est then t.est.{j} + t.compute.{j} + msg.{p}
      else t.lct.{j} - t.compute.{j} - msg.{p}
    in
    let msg_all = ref identity in
    for p = d0 to d1 - 1 do
      msg_all := combine !msg_all (msg_of p)
    done;
    let no_merge = combine boundary !msg_all in
    let best = ref no_merge in
    let pc = t.proc.{i} in
    ensure ws (d1 - d0);
    (* Value the prefixes of one pool; [in_pool p] tests CSR positions. *)
    let scan_pool in_pool =
      let pl = ref 0 and nonpool = ref identity in
      for p = d0 to d1 - 1 do
        if in_pool p then begin
          let k = !pl in
          ws.cm.(k) <- msg_of p;
          ws.cid.(k) <- tgt.{p};
          pl := k + 1
        end
        else nonpool := combine !nonpool (msg_of p)
      done;
      let pl = !pl in
      if pl > 0 then begin
        (* sort by msg bound — decreasing emr for EST, increasing lms for
           LCT — with ascending id tie-break, as the record path does *)
        for x = 1 to pl - 1 do
          let m = ws.cm.(x) and j = ws.cid.(x) in
          let y = ref x in
          while
            !y > 0
            &&
            let pm = ws.cm.(!y - 1) and pj = ws.cid.(!y - 1) in
            if pm <> m then if is_est then pm < m else pm > m else pj > j
          do
            ws.cm.(!y) <- ws.cm.(!y - 1);
            ws.cid.(!y) <- ws.cid.(!y - 1);
            decr y
          done;
          ws.cm.(!y) <- m;
          ws.cid.(!y) <- j
        done;
        ws.suf.(pl) <- identity;
        for x = pl - 1 downto 0 do
          ws.suf.(x) <- combine ws.suf.(x + 1) ws.cm.(x)
        done;
        (* grow the prefix one candidate at a time, keeping the prefix
           jobs sorted by window value for the sequential bound *)
        for k = 1 to pl do
          let j = ws.cid.(k - 1) in
          let v = if is_est then t.est.{j} else t.lct.{j} in
          let c = t.compute.{j} in
          let x = ref (k - 1) in
          while
            !x > 0
            && (if is_est then ws.sv.(!x - 1) > v else ws.sv.(!x - 1) < v)
          do
            ws.sv.(!x) <- ws.sv.(!x - 1);
            ws.sc.(!x) <- ws.sc.(!x - 1);
            decr x
          done;
          ws.sv.(!x) <- v;
          ws.sc.(!x) <- c;
          (* ect: ascending EST fold; lst: descending LCT fold *)
          let seqv = ref identity in
          if is_est then begin
            seqv := min_int;
            for x = 0 to k - 1 do
              seqv := max !seqv ws.sv.(x) + ws.sc.(x)
            done
          end
          else begin
            seqv := max_int;
            for x = 0 to k - 1 do
              seqv := min !seqv ws.sv.(x) - ws.sc.(x)
            done
          end;
          let value =
            combine (combine (combine boundary !nonpool) ws.suf.(k)) !seqv
          in
          if is_est then (if value < !best then best := value)
          else if value > !best then best := value
        done
      end
    in
    (match t.system with
    | System.Shared _ -> scan_pool (fun p -> t.proc.{tgt.{p}} = pc)
    | System.Dedicated _ ->
        let hm = t.host.{i} in
        Array.iteri
          (fun k _ ->
            if hm land (1 lsl k) <> 0 then
              scan_pool (fun p -> t.host.{tgt.{p}} land (1 lsl k) <> 0))
          t.nts);
    !best
  end

let recompute_windows t ~est_dirty ~lct_dirty =
  let ws = sweep_ws () in
  for k = 0 to t.n - 1 do
    let i = t.topo.{k} in
    if est_dirty.(i) then t.est.{i} <- sweep_task t ws ~is_est:true i
  done;
  for k = t.n - 1 downto 0 do
    let i = t.topo.{k} in
    if lct_dirty.(i) then t.lct.{i} <- sweep_task t ws ~is_est:false i
  done

let compute_windows t =
  let ws = sweep_ws () in
  for k = 0 to t.n - 1 do
    let i = t.topo.{k} in
    t.est.{i} <- sweep_task t ws ~is_est:true i
  done;
  for k = t.n - 1 downto 0 do
    let i = t.topo.{k} in
    t.lct.{i} <- sweep_task t ws ~is_est:false i
  done

let est_array t = Array.init t.n (fun i -> t.est.{i})
let lct_array t = Array.init t.n (fun i -> t.lct.{i})

(* The windows record, values only: merge traces are an explanation
   artifact of the record engine and are left empty here. *)
let windows t =
  let est = est_array t and lct = lct_array t in
  let trace v =
    Array.init t.n (fun i ->
        {
          Est_lct.center = i;
          no_merge_bound = v.(i);
          steps = [];
          bound = v.(i);
          merged = [];
        })
  in
  {
    Est_lct.est;
    lct;
    est_merged = Array.make t.n [];
    lct_merged = Array.make t.n [];
    est_trace = trace est;
    lct_trace = trace lct;
  }

(* ------------------------------------------------------------------ *)
(* Theta kernel over the packed arrays                                  *)
(* ------------------------------------------------------------------ *)

let ceil_div a b = (a + b - 1) / b

(* Per-domain scratch: event buffers, the cumulative kernel arrays and
   a bucket accumulator for the counting-sort fast path.  Reused across
   work items so the scan allocates nothing per task. *)
type kernel_ws = {
  mutable kcap : int;
  mutable ev_thr : int array;
  mutable ev_ds : int array;
  mutable ev_di : int array;
  mutable thr : int array;
  mutable slope : int array;
  mutable icept : int array;
  mutable kn : int;  (* kernel entries in use *)
  mutable bcap : int;
  mutable bds : int array;  (* bucket slope deltas, zeroed after use *)
  mutable bdi : int array;
}

let kernel_ws () =
  {
    kcap = 32;
    ev_thr = Array.make 64 0;
    ev_ds = Array.make 64 0;
    ev_di = Array.make 64 0;
    thr = Array.make 64 0;
    slope = Array.make 64 0;
    icept = Array.make 64 0;
    kn = 0;
    bcap = 0;
    bds = [||];
    bdi = [||];
  }

let kernel_key = Domain.DLS.new_key kernel_ws

let ensure_kernel ws cap =
  if cap > ws.kcap then begin
    let cap = max cap (2 * ws.kcap) in
    ws.kcap <- cap;
    ws.ev_thr <- Array.make (2 * cap) 0;
    ws.ev_ds <- Array.make (2 * cap) 0;
    ws.ev_di <- Array.make (2 * cap) 0;
    ws.thr <- Array.make (2 * cap) 0;
    ws.slope <- Array.make (2 * cap) 0;
    ws.icept <- Array.make (2 * cap) 0
  end

let ensure_buckets ws len =
  if len > ws.bcap then begin
    let len = max len (2 * ws.bcap) in
    ws.bcap <- len;
    ws.bds <- Array.make len 0;
    ws.bdi <- Array.make len 0
  end

(* Build the cumulative (thr, slope, icept) arrays for the fixed left
   endpoint [t1] over the block members [ids]/[w].  Same events as
   [Lower_bound.Theta_kernel.make]; equal thresholds collapse into one
   cumulative entry, so evaluations are identical. *)
let build_kernel t ws ids w nb ~t1 =
  ensure_kernel ws (2 * nb);
  let nev = ref 0 in
  let push thr ds di =
    let k = !nev in
    ws.ev_thr.(k) <- thr;
    ws.ev_ds.(k) <- ds;
    ws.ev_di.(k) <- di;
    nev := k + 1
  in
  for x = 0 to nb - 1 do
    let i = ids.(x) in
    let wi = w.(x) in
    let c = t.compute.{i} in
    let l = t.lct.{i} in
    if wi > 0 && c > 0 && l > t1 then begin
      let e = t.est.{i} in
      let k = if t1 <= e then c else c - (t1 - e) in
      if k > 0 then begin
        let m =
          if t.preempt.{i} = 1 then l - c + max 0 (t1 - e) else max (l - c) t1
        in
        if e >= m + k then push (e + 1) 0 (wi * k)
        else begin
          push (max m (e + 1)) wi (-wi * m);
          push (m + k) (-wi) (wi * (m + k))
        end
      end
    end
  done;
  let nev = !nev in
  if nev = 0 then ws.kn <- 0
  else begin
    let lo = ref max_int and hi = ref min_int in
    for k = 0 to nev - 1 do
      if ws.ev_thr.(k) < !lo then lo := ws.ev_thr.(k);
      if ws.ev_thr.(k) > !hi then hi := ws.ev_thr.(k)
    done;
    let span = !hi - !lo + 1 in
    let kn = ref 0 in
    if span <= (4 * nev) + 64 then begin
      (* counting sort over the threshold span *)
      ensure_buckets ws span;
      for k = 0 to nev - 1 do
        let o = ws.ev_thr.(k) - !lo in
        ws.bds.(o) <- ws.bds.(o) + ws.ev_ds.(k);
        ws.bdi.(o) <- ws.bdi.(o) + ws.ev_di.(k)
      done;
      let s = ref 0 and ic = ref 0 in
      for o = 0 to span - 1 do
        if ws.bds.(o) <> 0 || ws.bdi.(o) <> 0 then begin
          s := !s + ws.bds.(o);
          ic := !ic + ws.bdi.(o);
          ws.bds.(o) <- 0;
          ws.bdi.(o) <- 0;
          ws.thr.(!kn) <- !lo + o;
          ws.slope.(!kn) <- !s;
          ws.icept.(!kn) <- !ic;
          incr kn
        end
      done
    end
    else begin
      (* sparse thresholds: comparison sort of the event triples *)
      let evs =
        Array.init nev (fun k -> (ws.ev_thr.(k), ws.ev_ds.(k), ws.ev_di.(k)))
      in
      Array.sort (fun (a, _, _) (b, _, _) -> compare a b) evs;
      let s = ref 0 and ic = ref 0 in
      Array.iter
        (fun (thr, ds, di) ->
          s := !s + ds;
          ic := !ic + di;
          if !kn > 0 && ws.thr.(!kn - 1) = thr then begin
            ws.slope.(!kn - 1) <- !s;
            ws.icept.(!kn - 1) <- !ic
          end
          else begin
            ws.thr.(!kn) <- thr;
            ws.slope.(!kn) <- !s;
            ws.icept.(!kn) <- !ic;
            incr kn
          end)
        evs
    end;
    ws.kn <- !kn
  end

let eval_kernel ws ~t2 =
  let n = ws.kn in
  if n = 0 || t2 < ws.thr.(0) then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if ws.thr.(mid) <= t2 then lo := mid else hi := mid - 1
    done;
    (ws.slope.(!lo) * t2) + ws.icept.(!lo)
  end

(* ------------------------------------------------------------------ *)
(* Partition, candidate points and the dominance-pruned interval scan   *)
(* ------------------------------------------------------------------ *)

(* One scannable partition block, fully planned. *)
type blk = {
  b_res : int;  (* resource index, for labels *)
  b_ids : int array;  (* member ids, partition order *)
  b_w : int array;  (* member weights for the resource *)
  b_pts : int array;  (* candidate points, ascending, deduped *)
  b_tmax : int array;  (* theta_max at each left endpoint *)
  b_inc : int Atomic.t;  (* incumbent block bound for pruning *)
  mutable b_slot0 : int;  (* first work slot of the block *)
}

(* theta_max(t1) for every candidate point of a block, by an event sweep
   over t1: a member contributes the constant w*C up to its EST, then a
   ramp of slope -w, and nothing once t1 reaches min(E + C, L). *)
let block_theta_max t ids w nb pts =
  let np = Array.length pts in
  let tmax = Array.make np 0 in
  let events = ref [] in
  let base = ref 0 in
  for x = 0 to nb - 1 do
    let i = ids.(x) in
    let wi = w.(x) in
    let c = t.compute.{i} in
    if wi > 0 && c > 0 then begin
      let e = t.est.{i} in
      let stop = min (e + c) t.lct.{i} in
      base := !base + (wi * c);
      if stop <= e then events := (stop, 0, -wi * c) :: !events
      else begin
        events := (e + 1, -wi, wi * e) :: !events;
        events := (stop, wi, -wi * (c + e)) :: !events
      end
    end
  done;
  let events =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) !events
  in
  let slope = ref 0 and icept = ref !base in
  let rec sweep a evs =
    if a < np then begin
      match evs with
      | (thr, ds, di) :: rest when thr <= pts.(a) ->
          slope := !slope + ds;
          icept := !icept + di;
          sweep a rest
      | _ ->
          tmax.(a) <- (!slope * pts.(a)) + !icept;
          sweep (a + 1) evs
    end
  in
  sweep 0 events;
  tmax

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* Scan the intervals with left endpoint [pts.(a)], pruned against the
   block incumbent.  Mirrors [Lower_bound.scan_from]; counters follow
   the record path's convention (tasks per executed kernel, executed
   evaluations). *)
let scan_item t ~prune ~tr blk a =
  let pts = blk.b_pts in
  let np = Array.length pts in
  let t1 = pts.(a) in
  (* [b_tmax] is only populated when the plan was built with pruning. *)
  let tmax = if prune then blk.b_tmax.(a) else 0 in
  let inc0 = if prune then Atomic.get blk.b_inc else 0 in
  if
    prune
    && (tmax <= 0 || (inc0 > 0 && ceil_div tmax (pts.(a + 1) - t1) < inc0))
  then (0, None)
  else begin
    let ws = Domain.DLS.get kernel_key in
    let nb = Array.length blk.b_ids in
    build_kernel t ws blk.b_ids blk.b_w nb ~t1;
    let best = ref 0 and wit = ref None and evals = ref 0 in
    (try
       for b = a + 1 to np - 1 do
         let t2 = pts.(b) in
         if prune then begin
           let inc = max !best (Atomic.get blk.b_inc) in
           if inc > 0 && ceil_div tmax (t2 - t1) < inc then raise Exit
         end;
         incr evals;
         let demand = eval_kernel ws ~t2 in
         if demand > 0 then begin
           let units = ceil_div demand (t2 - t1) in
           if units > !best then begin
             best := units;
             wit :=
               Some { Lower_bound.w_t1 = t1; w_t2 = t2; w_theta = demand };
             if prune then atomic_max blk.b_inc units
           end
         end
       done
     with Exit -> ());
    if Rtlb_obs.Tracer.enabled tr then begin
      Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Tasks_scanned nb;
      Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Theta_evals !evals
    end;
    (!best, !wit)
  end

(* Partition the members of resource [r_idx] exactly as
   [Partition.compute]: sort by (EST asc, LCT desc, id asc), then sweep
   with the strict window-overlap rule.  Returns the planned blocks
   (scannable ones carry points and theta_max) plus the partition
   record. *)
let plan_resource t ~prune r_idx =
  let m0 = t.res_off.{r_idx} and m1 = t.res_off.{r_idx + 1} in
  let nm = m1 - m0 in
  let ord = Array.init nm (fun x -> m0 + x) in
  Array.sort
    (fun pa pb ->
      let a = t.res_task.{pa} and b = t.res_task.{pb} in
      let c = compare t.est.{a} t.est.{b} in
      if c <> 0 then c
      else
        let c = compare t.lct.{b} t.lct.{a} in
        if c <> 0 then c else compare a b)
    ord;
  if nm = 0 then ({ Partition.blocks = []; spans = [] }, [])
  else begin
    (* sweep into [start, stop) ranges of [ord] with their spans *)
    let ranges = ref [] in
    let start = ref 0 in
    let first = t.res_task.{ord.(0)} in
    let s = ref t.est.{first} and f = ref t.lct.{first} in
    for x = 1 to nm - 1 do
      let i = t.res_task.{ord.(x)} in
      if t.est.{i} < !f then begin
        if t.est.{i} < !s then s := t.est.{i};
        if t.lct.{i} > !f then f := t.lct.{i}
      end
      else begin
        ranges := (!start, x, !s, !f) :: !ranges;
        start := x;
        s := t.est.{i};
        f := t.lct.{i}
      end
    done;
    ranges := (!start, nm, !s, !f) :: !ranges;
    let ranges = List.rev !ranges in
    let blocks =
      List.map
        (fun (x0, x1, _, _) ->
          List.init (x1 - x0) (fun k -> t.res_task.{ord.(x0 + k)}))
        ranges
    in
    let spans = List.map (fun (_, _, s, f) -> (s, f)) ranges in
    let planned =
      List.filter_map
        (fun (x0, x1, lo, hi) ->
          if lo >= hi then None
          else begin
            let nb = x1 - x0 in
            let ids = Array.init nb (fun k -> t.res_task.{ord.(x0 + k)}) in
            let w = Array.init nb (fun k -> t.res_units.{ord.(x0 + k)}) in
            (* candidate points: member EST/LCT clipped to the span, plus
               the span bounds, sorted and deduped *)
            let raw = Array.make ((2 * nb) + 2) lo in
            raw.(1) <- hi;
            let np = ref 2 in
            for k = 0 to nb - 1 do
              let e = t.est.{ids.(k)} and l = t.lct.{ids.(k)} in
              if e >= lo && e <= hi then begin
                raw.(!np) <- e;
                incr np
              end;
              if l >= lo && l <= hi then begin
                raw.(!np) <- l;
                incr np
              end
            done;
            let raw = Array.sub raw 0 !np in
            Array.sort compare raw;
            let pts = Array.make !np 0 in
            let u = ref 0 in
            Array.iter
              (fun p ->
                if !u = 0 || pts.(!u - 1) <> p then begin
                  pts.(!u) <- p;
                  incr u
                end)
              raw;
            let pts = Array.sub pts 0 !u in
            let tmax =
              if prune then block_theta_max t ids w nb pts else [||]
            in
            Some
              {
                b_res = r_idx;
                b_ids = ids;
                b_w = w;
                b_pts = pts;
                b_tmax = tmax;
                b_inc = Atomic.make 0;
                b_slot0 = -1;
              }
          end)
        ranges
    in
    ({ Partition.blocks; spans }, planned)
  end

let default_prune () = Sys.getenv_opt "RTLB_SOA_NO_PRUNE" = None

(* The full lower-bound pass: plan (partition + points + theta_max),
   one flat work array at (block, left endpoint) granularity through
   the pool, then a fold in plan order — the same shape, item order and
   counters as [Lower_bound.all_within]. *)
let bounds ?prune ?pool ?deadline_ns ?tracer t =
  let prune = match prune with Some p -> p | None -> default_prune () in
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  let nr = Array.length t.res_names in
  let plans =
    Rtlb_obs.Tracer.with_span tr "plan" (fun () ->
        Array.init nr (fun r_idx -> plan_resource t ~prune r_idx))
  in
  let n_items = ref 0 in
  Array.iter
    (fun (_, blks) ->
      List.iter
        (fun b ->
          b.b_slot0 <- !n_items;
          n_items := !n_items + Array.length b.b_pts - 1)
        blks)
    plans;
  let dummy =
    {
      b_res = 0;
      b_ids = [||];
      b_w = [||];
      b_pts = [||];
      b_tmax = [||];
      b_inc = Atomic.make 0;
      b_slot0 = 0;
    }
  in
  let work = Array.make (max 1 !n_items) (dummy, 0) in
  let work = if !n_items = 0 then [||] else work in
  Array.iter
    (fun (_, blks) ->
      List.iter
        (fun b ->
          for a = 0 to Array.length b.b_pts - 2 do
            work.(b.b_slot0 + a) <- (b, a)
          done)
        blks)
    plans;
  if Rtlb_obs.Tracer.enabled tr then
    Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Candidate_intervals
      (Array.fold_left
         (fun acc (b, a) -> acc + (Array.length b.b_pts - 1 - a))
         0 work);
  let scanned, _status =
    Rtlb_par.Pool.map_array_partial ?pool ?deadline_ns ~tracer:tr
      (fun (b, a) -> scan_item t ~prune ~tr b a)
      work
  in
  let executed = ref 0 in
  let bounds =
    Rtlb_obs.Tracer.with_span tr "reduce" (fun () ->
        Array.to_list
          (Array.mapi
             (fun r_idx (partition, blks) ->
               let acc = ref (0, None) in
               List.iter
                 (fun b ->
                   for k = 0 to Array.length b.b_pts - 2 do
                     match scanned.(b.b_slot0 + k) with
                     | Some s ->
                         incr executed;
                         acc := Lower_bound.merge_scans !acc s
                     | None -> ()
                   done)
                 blks;
               let lb, witness = !acc in
               {
                 Lower_bound.resource = t.res_names.(r_idx);
                 lb;
                 witness;
                 partition;
               })
             plans))
  in
  let completeness =
    if !executed = !n_items then `Complete
    else `Partial (float_of_int !executed /. float_of_int !n_items)
  in
  (bounds, completeness)

(* Block scan at the record path's call signature, for the incremental
   engine's live blocks: same kernel, fresh per-call incumbent. *)
let scan_from t ~resource ids pts a =
  let r_idx = ref (-1) in
  Array.iteri
    (fun k r -> if String.equal r resource then r_idx := k)
    t.res_names;
  if !r_idx < 0 then (0, None)
  else begin
    let m0 = t.res_off.{!r_idx} and m1 = t.res_off.{!r_idx + 1} in
    let unit_of i =
      (* members are id-ascending: binary search the CSR slice *)
      let lo = ref m0 and hi = ref (m1 - 1) and u = ref 0 in
      while !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let v = t.res_task.{mid} in
        if v = i then begin
          u := t.res_units.{mid};
          lo := !hi + 1
        end
        else if v < i then lo := mid + 1
        else hi := mid - 1
      done;
      !u
    in
    let ids = Array.of_list ids in
    let w = Array.map unit_of ids in
    let blk =
      {
        b_res = !r_idx;
        b_ids = ids;
        b_w = w;
        b_pts = pts;
        b_tmax = [||];
        b_inc = Atomic.make 0;
        b_slot0 = 0;
      }
    in
    scan_item t ~prune:false ~tr:Rtlb_obs.Tracer.null blk a
  end

let analyze ?prune ?pool ?deadline_ns ?tracer system app =
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  Rtlb_obs.Tracer.with_span tr "analyze" (fun () ->
      (match System.validate_for system app with
      | Ok () -> ()
      | Error e -> invalid_arg ("Soa.analyze: " ^ e));
      let t =
        Rtlb_obs.Tracer.with_span tr "pack" (fun () -> pack system app)
      in
      Rtlb_obs.Tracer.with_span tr "est_lct" (fun () -> compute_windows t);
      let bounds, completeness =
        Rtlb_obs.Tracer.with_span tr "lower_bounds" (fun () ->
            bounds ?prune ?pool ?deadline_ns ~tracer:tr t)
      in
      let cost =
        Rtlb_obs.Tracer.with_span tr "cost" (fun () ->
            Cost.compute system app bounds)
      in
      {
        Analysis.app;
        system;
        windows = windows t;
        bounds;
        cost;
        completeness;
      })
