(** Incremental analysis for sweeps and what-if queries.

    A handle built from one full analysis answers perturbed queries by
    recomputing only what the perturbation can reach:

    - EST values depend only on releases, computes, messages and
      predecessors; LCT values only on deadlines, computes, messages and
      successors.  A deadline edit therefore dirties the edited tasks and
      their ancestors in the LCT pass {e only} — the cached EST arrays and
      merge traces are reused verbatim — while a release edit dirties the
      descendant cone of the EST pass, and a compute edit both.
    - Partitions and candidate points are rebuilt only for resources
      whose member windows moved; a resource whose members' (EST, LCT,
      compute, preemptive) tuples are all unchanged reuses its base
      bound, witness and partition wholesale.
    - Within a rebuilt resource, blocks whose member tuples are unchanged
      reuse their cached [(lb, witness)] via a {!Lower_bound.merge_scans}
      fold, which is associative with an earlier-wins tie-break — so
      query results are bit-identical to a cold {!Analysis.run} on the
      perturbed application (property-tested across random instances and
      edit sequences).

    Queries on applications that differ in anything beyond the
    release/compute/deadline triples (names, processors, demands,
    preemptability, graph shape) fall back to a cold run transparently.

    With a [?tracer], queries report [Cache_hits] (block results served
    from the cache, wholesale-reused resources counted block by block)
    and [Cone_tasks] (per-direction EST/LCT recomputations; a
    deadline-only edit reports no EST work).  A [?deadline_ns] budget is
    honoured exactly as in {!Analysis.run}; results computed under an
    expired budget are never cached, so the cache holds only exhaustive
    block scans. *)

type t

val create :
  ?engine:[ `Record | `Soa ] ->
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  System.t -> App.t -> t
(** One full analysis (same plan, same work order, same spans and
    counters as {!Analysis.run} — the {!base} result is bit-identical to
    it), capturing per-block scan results for later reuse.

    [~engine:`Soa] runs the sweeps and block scans over a {!Soa} packed
    instance whose arrays are updated in place across queries (each
    query restores a base snapshot first).  Results are value-identical
    to the record engine — windows, bounds, witnesses, partitions, cost,
    completeness — except that merge sets and traces are empty, the one
    documented {!Soa} divergence; block cache entries are
    engine-independent.  Queries that fall back to a cold run (shape
    changes) always use the record engine.
    @raise Invalid_argument when the system cannot host some task. *)

val base : t -> Analysis.t
(** The analysis of the unperturbed application. *)

val cached_blocks : t -> int
(** Number of block scan results currently held (grows across queries). *)

val instance_fingerprint : System.t -> App.t -> string
(** Stable hex digest of the full instance — every per-task field
    (including names, processor types, demands and preemptability), the
    weighted graph, and the system model.  Equal fingerprints mean the
    analysis inputs are identical, so persisted intermediate results
    (checkpoint files, see {!Rtfmt.Checkpoint}) keyed by it can be
    reused; anything else is stale by construction. *)

val query :
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  t -> App.t -> Analysis.t
(** Analysis of a perturbed application, reusing everything outside the
    edit's cone.  Bit-identical to [Analysis.run system app] whenever no
    budget expires (and still a valid partial result when one does —
    cached items count as executed in the coverage fraction). *)

type edit =
  | Set_release of { task : int; release : int }
  | Set_deadline of { task : int; deadline : int }
  | Set_compute of { task : int; compute : int }
      (** Single-field what-if edits, addressed by task id. *)

val apply : App.t -> edit list -> App.t
(** The application with the edits applied left to right.
    @raise Invalid_argument when a task id is out of range or an edit
      breaks [release + compute <= deadline] (see {!Task.with_deadline}
      and friends). *)

val edit :
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  t -> edit list -> Analysis.t
(** [query] on [apply (base t).app edits] — the one-call what-if. *)
