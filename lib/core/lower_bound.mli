(** Resource lower bounds (paper, Section 6).

    For a resource [r], the demand of the application on an interval is
    [Theta(r, t1, t2) = sum over ST_r of Psi(i, t1, t2)]; no [LB_r]-unit
    system can be feasible unless
    [LB_r >= ceil(Theta(r, t1, t2) / (t2 - t1))] for every interval, so

    {[ LB_r = max over intervals ceil(Theta / length) ]}

    evaluated over the intervals spanned by the candidate points (the ESTs
    and LCTs of the tasks in [ST_r], as the paper suggests), block by
    block of the Section 5 partition. *)

type witness = {
  w_t1 : int;
  w_t2 : int;
  w_theta : int;  (** Demand over [\[w_t1, w_t2\]]. *)
}

type bound = {
  resource : string;
  lb : int;  (** [LB_r]. *)
  witness : witness option;  (** An interval attaining the maximum;
                                 [None] when [ST_r] is empty. *)
  partition : Partition.t;  (** The Section 5 partition of [ST_r]. *)
}

type point_policy =
  [ `Endpoints  (** Task ESTs and LCTs — the paper's suggestion. *)
  | `Enriched
    (** Additionally each task's earliest finish [E_i + C_i] and latest
        start [L_i - C_i], the natural breakpoints of the overlap
        function.  More points can only raise the evaluated bound
        (closer to the exact [LB_r]) at quadratic extra scan cost. *) ]

val theta :
  ?resource:string ->
  est:int array -> lct:int array -> App.t -> int list -> t1:int -> t2:int -> int
(** [theta ~est ~lct app tasks ~t1 ~t2]: total mandatory demand of [tasks]
    on the interval.  With [?resource], each task's overlap is weighted by
    the units of that resource it holds (multi-unit demands); without it,
    every task weighs one unit (correct for processor types).

    This is the naive O(tasks) summation — the reference the prefix-sum
    kernel below is tested against, and what one-off queries (witness
    checks, demand profiles at a single window) should keep using. *)

(** Prefix-sum evaluation of [Theta(r, t1, .)] for a fixed left endpoint.

    For fixed [t1], each task's Theorem 3/4 overlap is a clamped ramp in
    [t2] (0, then slope [w], then a plateau at [w * K]); {!Theta_kernel.make}
    accumulates the breakpoints of all tasks into prefix-summed
    (slope, intercept) arrays once, after which {!Theta_kernel.eval}
    answers any [t2] in O(log tasks).  The candidate-interval scan thus
    costs O(p^2 log n) per block instead of O(p^2 n), with values {e
    bit-identical} to {!theta} (the tests cross-check, including
    infeasible windows, where the overlap gate cuts the ramp short). *)
module Theta_kernel : sig
  type t

  val make :
    ?resource:string ->
    est:int array -> lct:int array -> App.t -> int list -> t1:int -> t

  val eval : t -> t2:int -> int
  (** Equals [theta ?resource ~est ~lct app tasks ~t1 ~t2] for every
      [t2 > t1]. *)
end

val candidate_points :
  ?policy:point_policy ->
  est:int array -> lct:int array -> ?compute:int array -> int list -> lo:int -> hi:int -> int list
(** Sorted, deduplicated candidate points of the tasks, clipped to
    [\[lo, hi\]], with [lo] and [hi] included.  [policy] defaults to
    [`Endpoints]; [`Enriched] requires [compute]. *)

(** {2 Scan toolkit}

    The three primitives below are the unit operations of the
    candidate-interval scan, exposed so the {!Incremental} engine can
    rebuild exactly the per-block slices of the plan that an edit
    dirtied while folding cached results for the rest.  Folding
    {!scan_from} results for every left endpoint of every block with
    {!merge_scans}, block by block in partition order, reproduces
    {!all} bit-identically. *)

val merge_scans :
  int * witness option -> int * witness option -> int * witness option
(** Keep the better of two scan results; ties keep the {e first}
    argument, exactly like the sequential loops.  Associative, so
    per-interval results may be folded per block and then per resource
    without changing the winning witness. *)

val block_points :
  ?policy:point_policy ->
  est:int array -> lct:int array -> App.t -> int list -> lo:int -> hi:int ->
  int array
(** The candidate points of one partition block, as the sorted scan
    array ({!candidate_points} with the app's compute vector). *)

val scan_from :
  ?resource:string ->
  est:int array -> lct:int array -> App.t -> int list -> int array -> int ->
  int * witness option
(** [scan_from ~est ~lct app block pts a]: the densest interval starting
    at [pts.(a)] — one {!Theta_kernel} for the fixed left endpoint, one
    O(log n) evaluation per right endpoint.  This is the unit of
    parallel work in {!all_within}. *)

val for_resource :
  ?policy:point_policy ->
  est:int array -> lct:int array -> App.t -> string -> bound
(** [LB_r] for one resource, using the partition-and-scan scheme. *)

val for_resource_unpartitioned :
  ?policy:point_policy ->
  est:int array -> lct:int array -> App.t -> string -> bound
(** Same bound computed with a single scan over all candidate-point
    intervals ([O(N^2)] of them) and a trivial one-block partition —
    Theorem 5 guarantees the same value; kept for testing and for the
    partitioning-payoff benchmark. *)

val all :
  ?policy:point_policy ->
  ?pool:Rtlb_par.Pool.t ->
  ?tracer:Rtlb_obs.Tracer.t ->
  est:int array -> lct:int array -> App.t -> bound list
(** One bound per element of the application's [RES], in [RES] order.
    With [?pool], every (resource, partition block) scan is fanned out
    across the pool's domains and the per-resource results are merged in
    partition order — the output (bounds, witnesses and partitions) is
    bit-identical to the sequential path.

    With [?tracer], the scan is instrumented: ["plan"] and ["reduce"]
    spans, per-chunk worker spans via the pool, and the
    [Tasks_scanned] / [Candidate_intervals] / [Theta_evals] counters
    (see {!Rtlb_obs.Tracer}).  Tracing does not change the result. *)

type completeness =
  [ `Complete
  | `Partial of float
    (** Fraction of candidate-interval scans that ran before the budget
        expired, in [\[0, 1)]. *) ]

val all_within :
  ?policy:point_policy ->
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  est:int array -> lct:int array -> App.t -> bound list * completeness
(** Anytime variant of {!all}: the candidate-interval scans stop
    claiming work once [deadline_ns] ({!Rtlb_par.Pool.now_ns} base)
    passes, and the bounds reflect the best interval found so far —
    each still a valid lower bound with a real witness, possibly below
    the exhaustive value.  Whenever the budget is not hit the result is
    [`Complete] and bit-identical to {!all} (which is this function
    without a deadline). *)

val pp_bound : Format.formatter -> bound -> unit
