(** Exhaustive validation of applications and system models, producing
    structured diagnostics instead of the first [Invalid_argument] /
    [Failure] / [Dag.Cycle] a constructor happens to raise.

    The paper's analysis rests on well-formedness assumptions it never
    states as checks: the precedence relation is acyclic (Section 2.1),
    every task window can hold its computation (Section 3, the Theorem 1
    precondition [E_i + C_i <= L_i]), and every referenced processor or
    resource exists in the system model.  The feasibility-test literature
    (Bonifaci et al.; Kermia) treats this as a first-class analysis step;
    this module is that step.  Unlike the smart constructors — which
    fail fast and therefore report only the first problem, with no
    location — validation visits {e everything} and returns a list.

    Diagnostic codes are stable (golden tests and downstream tooling key
    on them; see [docs/DIAGNOSTICS.md]):

    - [E100] file does not parse / application cannot be built
    - [E101] precedence cycle (including self-loops)
    - [E102] infeasible window: task-level ([rel + C > D]) or after the
      EST/LCT propagation ([E + C > L])
    - [E103] dangling reference: edge endpoint not declared, or a
      processor/resource the system model does not provide
    - [E104] invalid quantity: negative compute/release/deadline/message,
      non-positive period, offset outside [\[0, period)], zero resource
      units, empty name
    - [E105] duplicate task name or duplicate edge
    - [E106] mixed periodic and one-shot tasks
    - [W201] zero-compute task
    - [W202] resource in the system model used by no task
    - [W203] zero-slack task after EST/LCT (no scheduling freedom) *)

type severity = Error | Warning

type diag = {
  d_code : string;  (** Stable code, ["E101"] ... ["W203"]. *)
  d_severity : severity;
  d_subject : string;  (** Offending task/edge/resource, or ["application"]. *)
  d_message : string;
  d_line : int option;  (** 1-based source line when validated from a file. *)
}

(** Pre-construction view of a task: what an application file declares,
    before [Task.make]/[App.make] get a chance to reject it.  Produced by
    [Rtfmt.Appfile.parse_spec] (with source lines) or {!spec_of_app}. *)
type task_spec = {
  ts_name : string;
  ts_compute : int;
  ts_release : int;  (** Offset when [ts_period] is set. *)
  ts_deadline : int;  (** Relative to the period when [ts_period] is set. *)
  ts_proc : string;
  ts_demands : (string * int) list;  (** Units per resource. *)
  ts_preemptive : bool;
  ts_period : int option;
  ts_line : int option;
}

type edge_spec = {
  es_src : string;
  es_dst : string;
  es_message : int;
  es_line : int option;
}

val spec_of_app : App.t -> task_spec list * edge_spec list
(** A constructed application re-expressed as specs (no source lines) —
    the bridge that lets {!check_spec} run over [App.t] values and lets
    tests corrupt valid applications into invalid specs. *)

val check_spec :
  system:System.t option -> tasks:task_spec list -> edges:edge_spec list -> diag list
(** Every spec-level check ([E101]-[E106], [W201], [W202]), exhaustively:
    one diagnostic per offence, sorted by source line.  An empty result
    (or warnings only) means [Task.make] + [App.make] (or
    [Periodic.ptask] + [unroll]) will accept the input. *)

val check_windows :
  ?line_of:(string -> int option) -> system:System.t -> App.t -> diag list
(** The post-construction phase: runs the Section 4 EST/LCT propagation
    and reports [E102] for every task whose window cannot hold its
    computation under any assignment, and [W203] for zero-slack tasks.
    [line_of] maps a task name back to a source line.  Assumes the system
    can host every task (run {!check_spec} first); if it cannot, returns
    the [E103]s instead of raising. *)

val check : ?system:System.t -> App.t -> diag list
(** {!check_spec} on {!spec_of_app}, then — when that found no errors —
    {!check_windows}.  [system] defaults to a uniform shared model over
    the application's own resource set (which makes the system-reference
    checks vacuous but keeps the window checks meaningful). *)

val errors : diag list -> diag list
val has_errors : diag list -> bool

val to_string : ?file:string -> diag -> string
(** One stable line per diagnostic, compiler style:
    ["FILE:LINE: CODE subject: message"] (the [FILE:LINE:] prefix
    shrinks to what is known). *)

val pp_diag : Format.formatter -> diag -> unit
