(** Deadline-sensitivity analysis: how the lower bounds respond as the
    application's timing constraints are relaxed or tightened.

    The paper pitches the analysis as a design-space-exploration tool; the
    first question a designer asks is "what does the requirement level
    cost me?".  [deadline_sweep] scales every deadline (and, optionally,
    release time) by a factor and re-runs the analysis, exposing the knees
    where a slightly looser requirement drops a processor or resource
    unit. *)

type sample = {
  s_factor : float;  (** Deadline multiplier applied. *)
  s_feasible : bool;  (** Task windows all large enough. *)
  s_bounds : (string * int) list;  (** [LB_r] per resource, RES order. *)
  s_shared_cost : int option;  (** Cost bound when the system is shared. *)
  s_partial : bool;
      (** The analysis behind this sample hit the time budget; its bounds
          are valid but possibly below the exhaustive values. *)
}

val scale_deadlines : App.t -> factor:float -> App.t
(** Every deadline multiplied by [factor] (rounded up), floored at
    [release + compute] so tasks stay well-formed. *)

val deadline_sweep :
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  System.t -> App.t -> factors:float list -> sample list
(** One analysis per factor, in the given order.  With [?pool], factors
    are analysed concurrently (one pool task each); the sample list is
    identical to the sequential sweep.  With [?deadline_ns]
    ({!Rtlb_par.Pool.now_ns} base), each factor's analysis stops scanning
    at the deadline; affected samples carry [s_partial = true].  With
    [?tracer], each factor's analysis runs inside a ["factor F"] span
    (on whichever domain analysed it) with the usual per-phase children;
    results are unchanged. *)

val render : sample list -> string
(** Plain-text table of the sweep. *)
