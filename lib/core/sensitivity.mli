(** Deadline-sensitivity analysis: how the lower bounds respond as the
    application's timing constraints are relaxed or tightened.

    The paper pitches the analysis as a design-space-exploration tool; the
    first question a designer asks is "what does the requirement level
    cost me?".  [deadline_sweep] scales every deadline (and, optionally,
    release time) by a factor and re-runs the analysis, exposing the knees
    where a slightly looser requirement drops a processor or resource
    unit. *)

type sample = {
  s_factor : float;  (** Deadline multiplier applied. *)
  s_feasible : bool;  (** Task windows all large enough. *)
  s_bounds : (string * int) list;  (** [LB_r] per resource, RES order. *)
  s_shared_cost : int option;  (** Cost bound when the system is shared. *)
  s_partial : bool;
      (** The analysis behind this sample hit the time budget; its bounds
          are valid but possibly below the exhaustive values. *)
}

val scale_deadlines : App.t -> factor:float -> App.t
(** Every deadline multiplied by [factor] (rounded up), floored at
    [release + compute] so tasks stay well-formed.  The multiplication is
    exact: the factor is first recovered as a rational
    ({!Rat.approx}), so [factor:0.1] on a deadline of [30] yields [3],
    not the [4] that float ceiling produces from [3.0000000000000004].
    @raise Invalid_argument when [factor <= 0] or NaN.
    @raise Rat.Overflow when [factor * deadline] exceeds [int] range. *)

val deadline_sweep :
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  ?on_sample:(sample -> unit) ->
  ?resume:(float -> sample option) ->
  System.t -> App.t -> factors:float list -> sample list
(** One analysis per factor, in the given order, served by an
    {!Incremental} handle: the EST pass runs once for the whole sweep,
    each factor re-runs only the LCT ancestor cones of the deadlines it
    actually moved, and unchanged partition blocks reuse cached scan
    results.  Samples are bit-identical to {!deadline_sweep_cold}
    whenever no budget expires.  With [?pool], each factor's scan fans
    out across the pool's domains.  With [?deadline_ns]
    ({!Rtlb_par.Pool.now_ns} base), scans stop claiming work at the
    deadline; affected samples carry [s_partial = true].  With
    [?tracer], each factor's query runs inside a ["factor F"] span with
    the usual per-phase children plus the [Cache_hits] / [Cone_tasks]
    counters; results are unchanged.

    Checkpoint/resume hooks (see [Rtfmt.Checkpoint]): [?on_sample] is
    called after each {e computed} sample, in sweep order — the place a
    caller persists progress.  [?resume] is consulted before computing
    a factor; returning a (non-partial) sample reuses it verbatim,
    bumps the [Resumes] counter, and skips both the analysis and the
    [?on_sample] callback for that factor.  Partial samples offered by
    [?resume] are ignored and recomputed — a budget-cut sample is valid
    but below the exhaustive value.  A resumed sweep returns output
    bit-identical to an uninterrupted one (property-tested). *)

val deadline_sweep_cold :
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  System.t -> App.t -> factors:float list -> sample list
(** The pre-cache sweep: one independent {!Analysis.run} per factor
    (with [?pool], one pool task each).  Kept as the reference the
    incremental sweep is property-tested against, and for the
    [e13] benchmark's baseline. *)

val render : sample list -> string
(** Plain-text table of the sweep. *)
