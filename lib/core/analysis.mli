(** End-to-end lower-bound analysis: the paper's four steps in one call. *)

type t = {
  app : App.t;
  system : System.t;
  windows : Est_lct.t;  (** Step 1: EST/LCT. *)
  bounds : Lower_bound.bound list;
      (** Steps 2 and 3: per-resource partitions and bounds, in [RES]
          order. *)
  cost : Cost.outcome;  (** Step 4. *)
  completeness : Lower_bound.completeness;
      (** [`Complete] unless a [?deadline_ns] budget expired mid-scan, in
          which case the bounds (and the cost derived from them) are
          best-so-far: still valid lower bounds, possibly below the
          exhaustive values. *)
}

val run :
  ?pool:Rtlb_par.Pool.t ->
  ?deadline_ns:int64 ->
  ?tracer:Rtlb_obs.Tracer.t ->
  System.t -> App.t -> t
(** Runs all four steps.  With [?pool], the Step 3 bound scans are
    distributed across the pool's domains ({!Lower_bound.all}); the
    result is bit-identical to the sequential run.  With [?deadline_ns]
    ({!Rtlb_par.Pool.now_ns} base) the Step 3 scans stop claiming work
    at the deadline and the result is tagged [`Partial] with its
    coverage fraction — bit-identical to the full result whenever the
    budget is not hit.

    With [?tracer] ({!Rtlb_obs.Tracer}) the run is instrumented: an
    ["analyze"] root span with ["est_lct"] / ["lower_bounds"] / ["cost"]
    phase children, the scan-level spans and counters of
    {!Lower_bound.all_within}, and per-worker chunk accounting from the
    pool.  The default is the zero-cost no-op tracer, and a traced run
    returns bit-identical results — tracing is observation only.
    @raise Invalid_argument when the system model cannot host some task
      (see {!System.validate_for}); run {!Validate.check} first to get
      diagnostics instead of an exception. *)

val is_partial : t -> bool
val coverage : t -> float
(** Fraction of interval scans that ran ([1.0] when complete). *)

val bound_for : t -> string -> int
(** [LB_r] by resource name.  @raise Not_found for a resource outside
    [RES]. *)

val total_processors : t -> int
(** Sum of [LB_p] over the processor types that occur in the application —
    a quick headline number for benchmarks. *)

val is_infeasible : t -> bool
(** True when the analysis already proves no system of this model can meet
    the constraints (some task window is smaller than its computation
    time). *)

val pp : Format.formatter -> t -> unit
(** Multi-line report: windows, partitions, bounds and cost; partial
    results are flagged. *)
