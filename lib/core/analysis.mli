(** End-to-end lower-bound analysis: the paper's four steps in one call. *)

type t = {
  app : App.t;
  system : System.t;
  windows : Est_lct.t;  (** Step 1: EST/LCT. *)
  bounds : Lower_bound.bound list;
      (** Steps 2 and 3: per-resource partitions and bounds, in [RES]
          order. *)
  cost : Cost.outcome;  (** Step 4. *)
}

val run : ?pool:Rtlb_par.Pool.t -> System.t -> App.t -> t
(** Runs all four steps.  With [?pool], the Step 3 bound scans are
    distributed across the pool's domains ({!Lower_bound.all}); the
    result is bit-identical to the sequential run.
    @raise Invalid_argument when the system model cannot host some task
      (see {!System.validate_for}). *)

val bound_for : t -> string -> int
(** [LB_r] by resource name.  @raise Not_found for a resource outside
    [RES]. *)

val total_processors : t -> int
(** Sum of [LB_p] over the processor types that occur in the application —
    a quick headline number for benchmarks. *)

val is_infeasible : t -> bool
(** True when the analysis already proves no system of this model can meet
    the constraints (some task window is smaller than its computation
    time). *)

val pp : Format.formatter -> t -> unit
(** Multi-line report: windows, partitions, bounds and cost. *)
