type ptask = {
  pt_name : string;
  pt_period : int;
  pt_offset : int;
  pt_compute : int;
  pt_deadline : int;
  pt_proc : string;
  pt_resources : string list;
  pt_preemptive : bool;
}

let ptask ~name ~period ?(offset = 0) ~compute ?deadline ~proc
    ?(resources = []) ?(preemptive = false) () =
  if period <= 0 then invalid_arg "Periodic.ptask: non-positive period";
  if offset < 0 || offset >= period then
    invalid_arg "Periodic.ptask: offset outside [0, period)";
  let deadline = Option.value ~default:period deadline in
  if compute < 0 || compute > deadline then
    invalid_arg "Periodic.ptask: computation does not fit the deadline";
  {
    pt_name = name;
    pt_period = period;
    pt_offset = offset;
    pt_compute = compute;
    pt_deadline = deadline;
    pt_proc = proc;
    pt_resources = resources;
    pt_preemptive = preemptive;
  }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Overflow-checked: for positive [a], [b] the product [q * b] wrapped iff
   dividing it back does not recover [q] (or the sign flipped).  Coprime
   5-digit periods already push [fold lcm] past [max_int] after a handful
   of tasks, and a silently wrapped hyperperiod used to send [unroll]
   into "empty horizon" errors or absurd job counts. *)
let lcm a b =
  let q = a / gcd a b in
  let l = q * b in
  if l <= 0 || l / b <> q then
    invalid_arg
      (Printf.sprintf "Periodic.lcm: lcm of %d and %d overflows int" a b)
  else l

let hyperperiod tasks =
  List.fold_left
    (fun acc t ->
      try lcm acc t.pt_period
      with Invalid_argument _ ->
        invalid_arg
          (Printf.sprintf
             "Periodic.hyperperiod: overflow folding period %d of %s into \
              accumulated lcm %d; pass an explicit ~horizon instead"
             t.pt_period t.pt_name acc))
    1 tasks

(* Same overflow discipline as [lcm] for the derived horizons: both the
   multi-hyperperiod horizon [cycles * H] and the feasibility-analysis
   horizon [O_max + 2H] are products/sums of values that individually
   passed the lcm check, and either can still wrap.  A wrapped horizon is
   worse than an exception: the job loops below compare releases against
   it and silently enumerate nothing. *)
let checked_mul ctx a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a || p <= 0 then invalid_arg ctx else p

let checked_add ctx a b =
  let s = a + b in
  if s < 0 then invalid_arg ctx else s

let horizon_of ?(cycles = 1) tasks =
  if cycles <= 0 then invalid_arg "Periodic.horizon_of: non-positive cycles";
  let h = hyperperiod tasks in
  checked_mul
    (Printf.sprintf
       "Periodic.horizon_of: %d hyperperiods of %d overflow int; pass an \
        explicit ~horizon instead"
       cycles h)
    cycles h

let utilisation tasks =
  List.fold_left
    (fun acc t -> Rat.add acc (Rat.make t.pt_compute t.pt_period))
    Rat.zero tasks

let jobs_of ~horizon t =
  let rec go k acc =
    let release = t.pt_offset + (k * t.pt_period) in
    if release >= horizon then List.rev acc
    else go (k + 1) ((k, release) :: acc)
  in
  go 0 []

let job_count ?horizon tasks =
  let horizon = Option.value ~default:(hyperperiod tasks) horizon in
  List.fold_left
    (fun acc t -> acc + List.length (jobs_of ~horizon t))
    0 tasks

let unroll ?horizon ~tasks ~edges () =
  let names = List.map (fun t -> t.pt_name) tasks in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Periodic.unroll: duplicate task names";
  let horizon = Option.value ~default:(hyperperiod tasks) horizon in
  if horizon <= 0 then invalid_arg "Periodic.unroll: empty horizon";
  let by_name n =
    match List.find_opt (fun t -> String.equal t.pt_name n) tasks with
    | Some t -> t
    | None -> invalid_arg ("Periodic.unroll: unknown task " ^ n)
  in
  (* Assign contiguous ids task by task; remember (task, k) -> id and
     release. *)
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  let app_tasks =
    List.concat_map
      (fun t ->
        List.map
          (fun (k, release) ->
            let id = !next in
            incr next;
            Hashtbl.add index (t.pt_name, k) (id, release);
            Task.make ~id
              ~name:(Printf.sprintf "%s@%d" t.pt_name k)
              ~compute:t.pt_compute ~release
              ~deadline:(release + t.pt_deadline) ~proc:t.pt_proc
              ~resources:t.pt_resources ~preemptive:t.pt_preemptive ())
          (jobs_of ~horizon t))
      tasks
  in
  (* Sample-and-hold pairing: consumer job k reads the latest producer job
     released no later than the consumer's release. *)
  let app_edges =
    List.concat_map
      (fun (src_name, dst_name, message) ->
        let src = by_name src_name and dst = by_name dst_name in
        List.filter_map
          (fun (k, release) ->
            let producer_k =
              if release < src.pt_offset then None
              else Some ((release - src.pt_offset) / src.pt_period)
            in
            match producer_k with
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Periodic.unroll: %s@%d released at %d before any %s job"
                     dst_name k release src_name)
            | Some pk -> (
                match
                  ( Hashtbl.find_opt index (src_name, pk),
                    Hashtbl.find_opt index (dst_name, k) )
                with
                | Some (src_id, _), Some (dst_id, _) ->
                    Some (src_id, dst_id, message)
                | _ -> None))
          (jobs_of ~horizon dst))
      edges
  in
  App.make ~tasks:app_tasks ~edges:app_edges

let demand_bound_function tasks t =
  List.fold_left
    (fun acc task ->
      (* jobs k with offset + k*T >= 0 and offset + k*T + D <= t *)
      let latest = t - task.pt_deadline - task.pt_offset in
      if latest < 0 then acc
      else acc + (((latest / task.pt_period) + 1) * task.pt_compute))
    0 tasks

(* Processor demand criterion, asynchronous form: for every window
   [r, d] between a release point and a deadline point (within the
   O_max + 2H horizon that is known to suffice), the total computation of
   jobs wholly inside the window must fit. *)
let edf_uniprocessor_feasible tasks =
  let tasks = List.filter (fun t -> t.pt_compute > 0) tasks in
  tasks = []
  || Rat.(utilisation tasks <= one)
     && begin
          let h = hyperperiod tasks in
          let o_max =
            List.fold_left (fun acc t -> max acc t.pt_offset) 0 tasks
          in
          (* Checked: with h near max_int/2 the unchecked [o_max + 2*h]
             wrapped negative, both point loops collected nothing, and the
             vacuous [for_all] declared any such set feasible. *)
          let horizon =
            let ctx =
              Printf.sprintf
                "Periodic.edf_uniprocessor_feasible: analysis horizon O_max \
                 + 2H overflows int (O_max = %d, H = %d)"
                o_max h
            in
            checked_add ctx o_max (checked_mul ctx 2 h)
          in
          let releases =
            List.concat_map
              (fun t ->
                let rec go k acc =
                  let r = t.pt_offset + (k * t.pt_period) in
                  if r > horizon then acc else go (k + 1) (r :: acc)
                in
                go 0 [])
              tasks
            |> List.sort_uniq compare
          in
          let demand r d =
            List.fold_left
              (fun acc t ->
                (* jobs k with release >= r and absolute deadline <= d *)
                let k_lo =
                  let num = r - t.pt_offset in
                  if num <= 0 then 0 else (num + t.pt_period - 1) / t.pt_period
                in
                let k_hi_num = d - t.pt_deadline - t.pt_offset in
                if k_hi_num < 0 then acc
                else
                  let k_hi = k_hi_num / t.pt_period in
                  if k_hi < k_lo then acc
                  else acc + ((k_hi - k_lo + 1) * t.pt_compute))
              0 tasks
          in
          let deadlines =
            List.concat_map
              (fun t ->
                let rec go k acc =
                  let d = t.pt_offset + (k * t.pt_period) + t.pt_deadline in
                  if d > horizon then acc else go (k + 1) (d :: acc)
                in
                go 0 [])
              tasks
            |> List.sort_uniq compare
          in
          List.for_all
            (fun r ->
              List.for_all
                (fun d -> d <= r || demand r d <= d - r)
                deadlines)
            releases
        end
