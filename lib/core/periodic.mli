(** Periodic task systems, unrolled into the paper's one-shot DAG model.

    The paper analyses a single activation of an application; real-time
    systems are usually periodic.  This module bridges the two: declare
    tasks with periods, offsets and relative deadlines, plus data edges,
    and {!unroll} materialises every job in one hyperperiod (or a chosen
    horizon) as an {!App.t}, ready for the four-step analysis.  Bounds
    computed on the hyperperiod are valid for the steady state because
    the job pattern repeats.

    Edge semantics between rates follow sample-and-hold conventions:

    - equal periods: job [k] of the producer feeds job [k] of the
      consumer;
    - faster producer (period divides the consumer's): the consumer's job
      reads the {e latest} producer job released no later than it —
      undersampling;
    - faster consumer: every consumer job reads the most recent producer
      job released no later than it — oversampling (several consumers
      share one producer).

    Producer jobs with no consumer job in range simply have no outgoing
    edge for that relation. *)

type ptask = {
  pt_name : string;
  pt_period : int;  (** > 0. *)
  pt_offset : int;  (** Release of job 0; in [\[0, period)]. *)
  pt_compute : int;
  pt_deadline : int;  (** Relative deadline, in (0, period] typically. *)
  pt_proc : string;
  pt_resources : string list;
  pt_preemptive : bool;
}

val ptask :
  name:string ->
  period:int ->
  ?offset:int ->
  compute:int ->
  ?deadline:int ->
  proc:string ->
  ?resources:string list ->
  ?preemptive:bool ->
  unit ->
  ptask
(** [deadline] defaults to the period (implicit deadlines).
    @raise Invalid_argument on non-positive period, offset outside
      [\[0, period)], or [compute > deadline]. *)

val hyperperiod : ptask list -> int
(** Least common multiple of the periods ([1] for an empty list). *)

val horizon_of : ?cycles:int -> ptask list -> int
(** [cycles] (default [1]) hyperperiods, with the product overflow-checked
    under the same discipline as {!hyperperiod} itself — the multi-cycle
    horizons used to observe steady state for arbitrary-deadline sets
    must not silently wrap.
    @raise Invalid_argument on [cycles <= 0] or overflow. *)

val utilisation : ptask list -> Rat.t
(** [sum C_i / T_i] — with a single processor type, [ceil] of this is the
    classical utilisation bound that {!App} analysis must dominate. *)

val unroll :
  ?horizon:int -> tasks:ptask list -> edges:(string * string * int) list -> unit -> App.t
(** Materialise all jobs released in [\[0, horizon)] (default: one
    hyperperiod).  Job [k] of task [t] is named ["t@k"]; its release is
    [offset + k*period] and its absolute deadline [release + deadline].
    Edges are [(producer, consumer, message)] by task name.
    @raise Invalid_argument on unknown names, duplicate task names, or
      an edge whose sample-and-hold pairing would go backwards in time
      (producer job released after the consumer job). *)

val job_count : ?horizon:int -> ptask list -> int
(** Number of jobs {!unroll} would create. *)

val demand_bound_function : ptask list -> int -> int
(** [demand_bound_function tasks t]: the classical EDF demand bound —
    total computation of all jobs with both release and absolute deadline
    inside [\[0, t\]] (synchronous arrivals assumed, i.e. offsets are
    honoured as given). *)

val edf_uniprocessor_feasible : ptask list -> bool
(** The processor-demand criterion (Baruah–Mok–Rosier, asynchronous
    form): the set is EDF-schedulable on one preemptive processor iff
    [U <= 1] and, for every window from a release point to a deadline
    point within the [O_max + 2H] horizon, the computation of jobs wholly
    inside the window fits its length.

    Connects the classical theory to the paper's bound: for synchronous
    constrained-deadline sets, uniprocessor infeasibility is equivalent
    to the unrolled analysis reporting [LB >= 2] when jobs are
    preemptive — checked in the suite.

    @raise Invalid_argument when the [O_max + 2H] analysis horizon
      overflows int (previously it wrapped silently and the vacuous
      window check declared every such set feasible). *)
