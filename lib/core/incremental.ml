(* Incremental analysis: one full run builds a handle; perturbed queries
   recompute only the dirty cone.

   The engine rests on three structural facts of the pipeline:

   - EST depends only on releases, computes, messages and predecessors
     (topological order); LCT only on deadlines, computes, messages and
     successors (reverse order).  An edit therefore dirties a directed
     cone — descendants for release/compute, ancestors for
     deadline/compute — and [Est_lct.recompute] re-runs the merge search
     for exactly that cone.
   - The candidate-interval scan folds with [Lower_bound.merge_scans],
     which is associative with an earlier-wins tie-break, so per-block
     partial results can be cached and folded in plan order with the
     exact winning witness of a flat scan.
   - A block's scan result is a function of its member set and each
     member's (EST, LCT, compute, preemptive) tuple alone, which makes a
     sound cache key; a whole resource whose members' tuples are all
     unchanged can reuse its base bound (partition included) wholesale.

   [create] runs the same plan/scan/reduce as [Analysis.run] — one global
   work array in RES/block/left-endpoint order through the same budgeted
   pool map — so its result is bit-identical by construction, while the
   per-block folds feed the cache.  Blocks whose scans were cut short by
   a [?deadline_ns] budget are never cached, and a resource is wholesale-
   reusable only if every one of its items executed in the base run. *)

type fp = {
  f_est : int;
  f_lct : int;
  f_compute : int;
  f_preemptive : bool;
}

type block_key = {
  bk_resource : string;
  bk_tasks : int list;
  bk_fp : fp list;
}

type block_entry = {
  be_scan : int * Lower_bound.witness option;
  be_items : int;  (* left endpoints the block contributes to the plan *)
}

type rstate = {
  rs_bound : Lower_bound.bound;
  rs_fp : fp list;  (* member tuples at base time, ST_r order *)
  rs_items : int;
  rs_blocks : int;  (* scannable (lo < hi) blocks *)
  rs_complete : bool;  (* every item of the resource ran in the base *)
}

type t = {
  i_system : System.t;
  i_app : App.t;
  i_windows : Est_lct.t;
  i_base : Analysis.t;
  i_cache : (block_key, block_entry) Hashtbl.t;
  i_rstates : (string * rstate) list;
  i_soa : (Soa.t * Soa.t) option;
      (* packed engine: live handle + base snapshot.  Queries edit the
         live arrays in place, so each one first restores the snapshot —
         [Soa.recompute_windows] (like [Est_lct.recompute]) requires
         clean entries to hold their base values. *)
}

let base t = t.i_base
let cached_blocks t = Hashtbl.length t.i_cache

(* Stable digest over everything the analysis result depends on: the
   full per-task tuple (not just the release/compute/deadline triple),
   the graph with weights, and the system model.  Checkpoint files are
   keyed by this so a resume against an edited instance is detected as
   stale rather than silently splicing in samples of a different
   problem. *)
let instance_fingerprint system app =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match system with
  | System.Shared costs ->
      add "shared";
      List.iter (fun (r, c) -> add "|%s=%d" r c) costs
  | System.Dedicated nts ->
      add "dedicated";
      List.iter
        (fun nt ->
          add "|%s:%s:%d" nt.System.nt_name nt.System.nt_proc
            nt.System.nt_cost;
          List.iter (fun (r, c) -> add ",%s=%d" r c) nt.System.nt_provides)
        nts);
  for i = 0 to App.n_tasks app - 1 do
    let t = App.task app i in
    add "\nT%d|%s|%d|%d|%d|%s|%b" t.Task.id t.Task.name t.Task.compute
      t.Task.release t.Task.deadline t.Task.proc t.Task.preemptive;
    List.iter (fun (r, u) -> add "|%s=%d" r u) t.Task.demands
  done;
  Buffer.add_string buf "\nE";
  Dag.fold_edges (App.graph app) ~init:[] ~f:(fun acc ~src ~dst w ->
      (src, dst, w) :: acc)
  |> List.sort compare
  |> List.iter (fun (s, d, w) -> add "|%d>%d:%d" s d w);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let fingerprint app ~est ~lct tasks =
  List.map
    (fun i ->
      let task = App.task app i in
      {
        f_est = est.(i);
        f_lct = lct.(i);
        f_compute = task.Task.compute;
        f_preemptive = task.Task.preemptive;
      })
    tasks

(* One block of one resource's partition, as planned for a query. *)
type block_plan =
  | Trivial  (* lo >= hi: contributes nothing, exactly as in scan_plan *)
  | Cached of block_entry
  | Live of {
      lv_key : block_key;
      lv_tasks : int list;
      lv_pts : int array;
      mutable lv_first : int;  (* slot of the block's first work item *)
    }

type resource_plan =
  | Reused of rstate
  | Scanned of { sp_partition : Partition.t; sp_blocks : block_plan list }

(* The shared plan/scan/reduce.  [reuse r] offers a wholesale base state
   for the resource (the caller has already checked fingerprint equality
   and base completeness); everything else is planned block by block
   against the cache.  Live items flow through the same
   [map_array_partial] call as the cold path — same work-item order,
   same chunking, same counters — and the reduce folds cached and live
   block results in plan order with [merge_scans], so whenever nothing
   is cached the result is bit-identical to [Lower_bound.all_within]
   field by field; with cache hits it is bit-identical by the
   associativity argument above.  Returns the per-resource bounds (RES
   order), the refreshed per-resource states, and the completeness,
   where cached and reused items count as executed.

   [scan_from] performs one left endpoint of one live block — the record
   path's [Lower_bound.scan_from] or the packed engine's
   [Soa.scan_from].  Both are exhaustive (unpruned) scans of the same
   member tuples, so cache entries are engine-independent. *)
let scan ?pool ?deadline_ns ~tracer:tr ~cache ~reuse ~scan_from ~est ~lct app =
  let plans =
    Rtlb_obs.Tracer.with_span tr "plan" (fun () ->
        List.map
          (fun r ->
            match reuse r with
            | Some rs -> (r, Reused rs)
            | None ->
                let tasks = App.tasks_using app r in
                let partition = Partition.compute ~est ~lct tasks in
                let blocks =
                  List.map2
                    (fun block (lo, hi) ->
                      if lo >= hi then Trivial
                      else
                        let key =
                          {
                            bk_resource = r;
                            bk_tasks = block;
                            bk_fp = fingerprint app ~est ~lct block;
                          }
                        in
                        match Hashtbl.find_opt cache key with
                        | Some entry -> Cached entry
                        | None ->
                            Live
                              {
                                lv_key = key;
                                lv_tasks = block;
                                lv_pts =
                                  Lower_bound.block_points ~est ~lct app
                                    block ~lo ~hi;
                                lv_first = -1;
                              })
                    partition.Partition.blocks partition.Partition.spans
                in
                (r, Scanned { sp_partition = partition; sp_blocks = blocks }))
          (App.resource_set app))
  in
  (* Flatten live blocks into one work array in plan order — the exact
     item order of the cold scan plan restricted to the uncached part. *)
  let n_live =
    List.fold_left
      (fun acc (_, plan) ->
        match plan with
        | Reused _ -> acc
        | Scanned { sp_blocks; _ } ->
            List.fold_left
              (fun acc -> function
                | Trivial | Cached _ -> acc
                | Live lv ->
                    lv.lv_first <- acc;
                    acc + Array.length lv.lv_pts - 1)
              acc sp_blocks)
      0 plans
  in
  let work = Array.make (max 1 n_live) ("", [], [||], 0) in
  let work = if n_live = 0 then [||] else work in
  List.iter
    (fun (r, plan) ->
      match plan with
      | Reused _ -> ()
      | Scanned { sp_blocks; _ } ->
          List.iter
            (function
              | Trivial | Cached _ -> ()
              | Live lv ->
                  for a = 0 to Array.length lv.lv_pts - 2 do
                    work.(lv.lv_first + a) <- (r, lv.lv_tasks, lv.lv_pts, a)
                  done)
            sp_blocks)
    plans;
  if Rtlb_obs.Tracer.enabled tr then
    Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Candidate_intervals
      (Array.fold_left
         (fun acc (_, _, pts, a) -> acc + (Array.length pts - 1 - a))
         0 work);
  let scanned, _status =
    Rtlb_par.Pool.map_array_partial ?pool ?deadline_ns ~tracer:tr
      (fun (r, block, pts, a) ->
        let scan = scan_from ~resource:r block pts a in
        if Rtlb_obs.Tracer.enabled tr then begin
          Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Tasks_scanned
            (List.length block);
          Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Theta_evals
            (Array.length pts - 1 - a)
        end;
        scan)
      work
  in
  let executed = ref 0 and total = ref 0 and cache_hits = ref 0 in
  let states =
    Rtlb_obs.Tracer.with_span tr "reduce" (fun () ->
        List.map
          (fun (r, plan) ->
            match plan with
            | Reused rs ->
                executed := !executed + rs.rs_items;
                total := !total + rs.rs_items;
                cache_hits := !cache_hits + rs.rs_blocks;
                (r, rs)
            | Scanned { sp_partition; sp_blocks } ->
                let racc = ref (0, None) in
                let r_items = ref 0 and r_blocks = ref 0 in
                let r_complete = ref true in
                List.iter
                  (function
                    | Trivial -> ()
                    | Cached entry ->
                        incr r_blocks;
                        incr cache_hits;
                        r_items := !r_items + entry.be_items;
                        executed := !executed + entry.be_items;
                        racc := Lower_bound.merge_scans !racc entry.be_scan
                    | Live lv ->
                        incr r_blocks;
                        let items = Array.length lv.lv_pts - 1 in
                        r_items := !r_items + items;
                        let bacc = ref (0, None) and ran = ref 0 in
                        for k = 0 to items - 1 do
                          match scanned.(lv.lv_first + k) with
                          | Some s ->
                              incr ran;
                              bacc := Lower_bound.merge_scans !bacc s
                          | None -> ()
                        done;
                        executed := !executed + !ran;
                        if !ran = items then
                          Hashtbl.replace cache lv.lv_key
                            { be_scan = !bacc; be_items = items }
                        else r_complete := false;
                        racc := Lower_bound.merge_scans !racc !bacc)
                  sp_blocks;
                total := !total + !r_items;
                let lb, witness = !racc in
                let bound =
                  { Lower_bound.resource = r; lb; witness;
                    partition = sp_partition }
                in
                ( r,
                  {
                    rs_bound = bound;
                    rs_fp = fingerprint app ~est ~lct (App.tasks_using app r);
                    rs_items = !r_items;
                    rs_blocks = !r_blocks;
                    rs_complete = !r_complete;
                  } ))
          plans)
  in
  if Rtlb_obs.Tracer.enabled tr then
    Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Cache_hits !cache_hits;
  let bounds = List.map (fun (_, rs) -> rs.rs_bound) states in
  let completeness =
    if !executed = !total then `Complete
    else `Partial (float_of_int !executed /. float_of_int !total)
  in
  (bounds, states, completeness)

let record_scan_from ~est ~lct app ~resource block pts a =
  Lower_bound.scan_from ~resource ~est ~lct app block pts a

let create ?(engine = `Record) ?pool ?deadline_ns ?tracer system app =
  let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
  Rtlb_obs.Tracer.with_span tr "analyze" (fun () ->
      (match System.validate_for system app with
      | Ok () -> ()
      | Error e -> invalid_arg ("Incremental.create: " ^ e));
      let soa =
        match engine with
        | `Record -> None
        | `Soa -> Some (Soa.pack system app)
      in
      let windows =
        Rtlb_obs.Tracer.with_span tr "est_lct" (fun () ->
            match soa with
            | None -> Est_lct.compute system app
            | Some s ->
                Soa.compute_windows s;
                Soa.windows s)
      in
      let est = windows.Est_lct.est and lct = windows.Est_lct.lct in
      let scan_from =
        match soa with
        | None -> record_scan_from ~est ~lct app
        | Some s -> Soa.scan_from s
      in
      let cache = Hashtbl.create 64 in
      let bounds, states, completeness =
        Rtlb_obs.Tracer.with_span tr "lower_bounds" (fun () ->
            scan ?pool ?deadline_ns ~tracer:tr ~cache
              ~reuse:(fun _ -> None)
              ~scan_from ~est ~lct app)
      in
      let cost =
        Rtlb_obs.Tracer.with_span tr "cost" (fun () ->
            Cost.compute system app bounds)
      in
      let base =
        { Analysis.app; system; windows; bounds; cost; completeness }
      in
      {
        i_system = system;
        i_app = app;
        i_windows = windows;
        i_base = base;
        i_cache = cache;
        i_rstates = states;
        i_soa = Option.map (fun s -> (s, Soa.copy_base s)) soa;
      })

(* Per-task diff between the base application and a query's.  Anything
   beyond the release/compute/deadline triple — names, processor types,
   resource demands, preemptability, the graph itself — escapes the
   incremental path's invalidation rules, so the query falls back to a
   cold run. *)
type diff =
  | Reshaped
  | Same_shape of { d_rel : bool array; d_dl : bool array; d_comp : bool array }

let diff base app =
  if App.n_tasks base <> App.n_tasks app then Reshaped
  else begin
    let n = App.n_tasks base in
    let d_rel = Array.make n false
    and d_dl = Array.make n false
    and d_comp = Array.make n false in
    let compatible = ref true in
    for i = 0 to n - 1 do
      let a = App.task base i and b = App.task app i in
      if
        a.Task.id = b.Task.id
        && String.equal a.Task.name b.Task.name
        && String.equal a.Task.proc b.Task.proc
        && a.Task.resources = b.Task.resources
        && a.Task.demands = b.Task.demands
        && a.Task.preemptive = b.Task.preemptive
      then begin
        if a.Task.release <> b.Task.release then d_rel.(i) <- true;
        if a.Task.deadline <> b.Task.deadline then d_dl.(i) <- true;
        if a.Task.compute <> b.Task.compute then d_comp.(i) <- true
      end
      else compatible := false
    done;
    let edges g =
      Dag.fold_edges g ~init:[] ~f:(fun acc ~src ~dst w ->
          (src, dst, w) :: acc)
      |> List.sort compare
    in
    if (not !compatible) || edges (App.graph base) <> edges (App.graph app)
    then Reshaped
    else Same_shape { d_rel; d_dl; d_comp }
  end

(* Dirty cones: one linear pass in (reverse) topological order closes a
   seed set under descendants (resp. ancestors). *)
let forward_close app seed =
  let dirty = Array.copy seed in
  Array.iter
    (fun i ->
      if
        (not dirty.(i))
        && List.exists (fun j -> dirty.(j)) (App.preds app i)
      then dirty.(i) <- true)
    (Dag.topological_order (App.graph app));
  dirty

let backward_close app seed =
  let dirty = Array.copy seed in
  Array.iter
    (fun i ->
      if
        (not dirty.(i))
        && List.exists (fun j -> dirty.(j)) (App.succs app i)
      then dirty.(i) <- true)
    (Dag.reverse_topological_order (App.graph app));
  dirty

let count dirty = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 dirty

let query ?pool ?deadline_ns ?tracer t app =
  match diff t.i_app app with
  | Reshaped -> Analysis.run ?pool ?deadline_ns ?tracer t.i_system app
  | Same_shape { d_rel; d_dl; d_comp } ->
      let tr = Option.value tracer ~default:Rtlb_obs.Tracer.null in
      Rtlb_obs.Tracer.with_span tr "analyze" (fun () ->
          (match System.validate_for t.i_system app with
          | Ok () -> ()
          | Error e -> invalid_arg ("Incremental.query: " ^ e));
          let n = App.n_tasks app in
          let est_seed = Array.init n (fun i -> d_rel.(i) || d_comp.(i)) in
          let lct_seed = Array.init n (fun i -> d_dl.(i) || d_comp.(i)) in
          let est_dirty = forward_close app est_seed in
          let lct_dirty = backward_close app lct_seed in
          let cone = count est_dirty + count lct_dirty in
          if Rtlb_obs.Tracer.enabled tr then
            Rtlb_obs.Tracer.add tr Rtlb_obs.Tracer.Cone_tasks cone;
          let windows =
            Rtlb_obs.Tracer.with_span tr "est_lct" (fun () ->
                match t.i_soa with
                | None ->
                    if cone = 0 then t.i_windows
                    else
                      Est_lct.recompute t.i_system app t.i_windows ~est_dirty
                        ~lct_dirty
                | Some (s, base) ->
                    (* Undo the previous query's in-place edits, apply
                       this one's scalar diffs, then re-sweep the dirty
                       cones over the packed arrays. *)
                    Soa.restore_from s ~base;
                    if cone = 0 then t.i_windows
                    else begin
                      for i = 0 to n - 1 do
                        let task = App.task app i in
                        if d_rel.(i) then Soa.set_release s i task.Task.release;
                        if d_dl.(i) then Soa.set_deadline s i task.Task.deadline;
                        if d_comp.(i) then Soa.set_compute s i task.Task.compute
                      done;
                      Soa.recompute_windows s ~est_dirty ~lct_dirty;
                      Soa.windows s
                    end)
          in
          let est = windows.Est_lct.est and lct = windows.Est_lct.lct in
          let scan_from =
            match t.i_soa with
            | None -> record_scan_from ~est ~lct app
            | Some (s, _) -> Soa.scan_from s
          in
          let reuse r =
            match List.assoc_opt r t.i_rstates with
            | Some rs
              when rs.rs_complete
                   && rs.rs_fp = fingerprint app ~est ~lct
                                    (App.tasks_using app r) ->
                Some rs
            | _ -> None
          in
          let bounds, _states, completeness =
            Rtlb_obs.Tracer.with_span tr "lower_bounds" (fun () ->
                scan ?pool ?deadline_ns ~tracer:tr ~cache:t.i_cache ~reuse
                  ~scan_from ~est ~lct app)
          in
          let cost =
            Rtlb_obs.Tracer.with_span tr "cost" (fun () ->
                Cost.compute t.i_system app bounds)
          in
          {
            Analysis.app;
            system = t.i_system;
            windows;
            bounds;
            cost;
            completeness;
          })

type edit =
  | Set_release of { task : int; release : int }
  | Set_deadline of { task : int; deadline : int }
  | Set_compute of { task : int; compute : int }

let apply app edits =
  let n = App.n_tasks app in
  let check task =
    if task < 0 || task >= n then
      invalid_arg
        (Printf.sprintf "Incremental.apply: task %d outside [0, %d)" task n)
  in
  List.iter
    (function
      | Set_release { task; _ }
      | Set_deadline { task; _ }
      | Set_compute { task; _ } -> check task)
    edits;
  App.map_tasks app ~f:(fun task ->
      List.fold_left
        (fun acc -> function
          | Set_release { task = i; release } when i = acc.Task.id ->
              Task.with_release acc release
          | Set_deadline { task = i; deadline } when i = acc.Task.id ->
              Task.with_deadline acc deadline
          | Set_compute { task = i; compute } when i = acc.Task.id ->
              Task.with_compute acc compute
          | _ -> acc)
        task edits)

let edit ?pool ?deadline_ns ?tracer t edits =
  query ?pool ?deadline_ns ?tracer t (apply t.i_app edits)
